package crossbfs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPolicyConstructors(t *testing.T) {
	g, err := GenerateRMAT(10, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := firstSource(t, g)
	want, err := BFSTopDown(g, src)
	if err != nil {
		t.Fatal(err)
	}
	for name, policy := range map[string]Policy{
		"mn":     NewMNPolicy(64, 64),
		"beamer": NewBeamerPolicy(0, 0),
		"hong":   NewHongPolicy(),
	} {
		res, err := BFSWithPolicy(g, src, policy)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ValidateBFS(g, res); err != nil {
			t.Errorf("%s: invalid traversal: %v", name, err)
		}
		for v := range want.Level {
			if res.Level[v] != want.Level[v] {
				t.Fatalf("%s: disagrees with top-down at vertex %d", name, v)
			}
		}
	}
}

func TestMeasureBFSFacade(t *testing.T) {
	g, err := GenerateRMAT(11, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := firstSource(t, g)
	res, m, err := MeasureBFS(g, src, NewMNPolicy(64, 64), "hybrid")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, res); err != nil {
		t.Fatal(err)
	}
	if m.Total <= 0 || m.TEPS() <= 0 {
		t.Errorf("degenerate measurement: %+v", m)
	}
}

func TestMeasureAllFacade(t *testing.T) {
	g, err := GenerateRMAT(10, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	times, err := MeasureAll(g, firstSource(t, g))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"top-down", "bottom-up", "hybrid-mn", "beamer-ab"} {
		if times[name] <= 0 {
			t.Errorf("%s: no time recorded", name)
		}
	}
}

func TestLoadEdgeListGraphFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.el")
	if err := os.WriteFile(path, []byte("# g\n5 7\n7 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, ids, err := LoadEdgeListGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || len(ids) != 3 {
		t.Errorf("loaded %d vertices, %d ids", g.NumVertices(), len(ids))
	}
	if ids[0] != 5 || ids[2] != 9 {
		t.Errorf("id map = %v", ids)
	}
}

func TestGraphAnalysisViaFacade(t *testing.T) {
	// Analysis methods are reachable through the Graph alias.
	g, err := BuildGraph(6, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 3, To: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, count := g.ConnectedComponents(); count != 3 {
		t.Errorf("components = %d, want 3", count)
	}
	if d := g.ApproxDiameter(0); d != 2 {
		t.Errorf("diameter = %d, want 2", d)
	}
}
