package crossbfs

import (
	"context"
	"fmt"
	"io"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/fault"
	"crossbfs/internal/graph"
	"crossbfs/internal/graph500"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
	"crossbfs/internal/tuner"
)

// Re-exported types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Graph is an immutable CSR graph.
	Graph = graph.CSR
	// Edge is a directed edge for BuildGraph.
	Edge = graph.Edge
	// RMATParams parameterize the Graph 500 Kronecker generator.
	RMATParams = rmat.Params
	// Result is a BFS traversal's predecessor and level maps.
	Result = bfs.Result
	// Trace is the per-level work profile of a traversal.
	Trace = bfs.Trace
	// Direction selects the top-down or bottom-up kernel.
	Direction = bfs.Direction
	// Policy chooses a direction before each BFS level.
	Policy = bfs.Policy
	// Arch is a modeled execution platform.
	Arch = archsim.Arch
	// Link is a modeled interconnect between platforms.
	Link = archsim.Link
	// Plan schedules each BFS level onto a platform and direction.
	Plan = core.Plan
	// Timing is a plan's simulated cost breakdown.
	Timing = core.Timing
	// Model is a trained switching-point predictor.
	Model = tuner.Model
	// SwitchPoint is an (M, N) threshold pair for the Fig. 4 rule.
	SwitchPoint = tuner.SwitchPoint
	// TEPSReport is a Graph 500-style benchmark summary.
	TEPSReport = graph500.RunResult
	// Engine is a named, reusable BFS kernel configuration. All kernels
	// (serial, top-down, bottom-up, edge-parallel, hybrid, adaptive)
	// implement it; see NewTopDownEngine and friends.
	Engine = bfs.Engine
	// Workspace holds the pooled per-traversal buffers an Engine runs
	// in. Results returned from Engine.Run alias the workspace; Clone
	// them before reusing it.
	Workspace = bfs.Workspace
	// WorkspacePool recycles Workspaces by size class; its zero value
	// is ready to use.
	WorkspacePool = bfs.WorkspacePool
	// ManyOptions configures BFSMany / bfs.RunMany batches.
	ManyOptions = bfs.ManyOptions
	// Fabric is a modeled rank-to-rank interconnect with collective
	// costs (ring all-gather, all-to-all, all-reduce).
	Fabric = archsim.Fabric
	// ExchangeStats is one level's cross-rank communication volume from
	// a sharded traversal (Result.Exchanges).
	ExchangeStats = bfs.ExchangeStats
	// ShardedPlan prices the partitioned engine on Ranks modeled
	// devices joined by a Fabric.
	ShardedPlan = core.ShardedPlan
)

// Direction values.
const (
	TopDown  = bfs.TopDown
	BottomUp = bfs.BottomUp
)

// ---- Graphs ----

// GenerateRMAT builds the paper's R-MAT graph: 2^scale vertices,
// edgeFactor*2^scale generated edges, Graph 500 probabilities
// (A=0.57, B=0.19, C=0.19, D=0.05), symmetrized and deduplicated.
func GenerateRMAT(scale, edgeFactor int, seed uint64) (*Graph, error) {
	p := rmat.DefaultParams(scale, edgeFactor)
	p.Seed = seed
	return rmat.Generate(p)
}

// GenerateRMATWith builds an R-MAT graph with full parameter control.
func GenerateRMATWith(p RMATParams) (*Graph, error) { return rmat.Generate(p) }

// BuildGraph converts an undirected edge list into a CSR graph
// (symmetrized, self-loops dropped, parallel edges deduplicated).
func BuildGraph(numVertices int, edges []Edge) (*Graph, error) {
	return graph.Build(numVertices, edges, graph.BuildOptions{Symmetrize: true})
}

// LoadGraph reads a graph saved with SaveGraph (or cmd/rmatgen).
func LoadGraph(path string) (*Graph, error) { return graph.Load(path) }

// SaveGraph writes the graph in the binary CSR container format.
func SaveGraph(g *Graph, path string) error { return g.Save(path) }

// ---- BFS execution (real kernels on the host) ----

// BFS runs the direction-optimizing hybrid with a reasonable default
// switching point (M=N=64) and full parallelism, returning validated
// predecessor and level maps.
func BFS(g *Graph, source int32) (*Result, error) {
	return bfs.Hybrid(g, source, 64, 64, 0)
}

// BFSTopDown runs the pure top-down baseline (paper Algorithm 1).
func BFSTopDown(g *Graph, source int32) (*Result, error) {
	return bfs.RunTopDown(g, source, 0)
}

// BFSBottomUp runs the pure bottom-up baseline (paper Algorithm 2).
func BFSBottomUp(g *Graph, source int32) (*Result, error) {
	return bfs.RunBottomUp(g, source, 0)
}

// BFSHybrid runs the combination with explicit (M, N) thresholds:
// bottom-up when |E|cq >= |E|/m or |V|cq >= |V|/n (paper Fig. 4).
func BFSHybrid(g *Graph, source int32, m, n float64) (*Result, error) {
	return bfs.Hybrid(g, source, m, n, 0)
}

// NewWorkspace allocates a traversal workspace sized for g, for
// callers that manage reuse themselves instead of going through a
// WorkspacePool.
func NewWorkspace(g *Graph) *Workspace { return bfs.NewWorkspace(g.NumVertices()) }

// NewDefaultEngine returns the engine BFS uses: the hybrid combination
// with the default (M=N=64) switching point and full parallelism.
func NewDefaultEngine() Engine { return bfs.DefaultEngine() }

// NewTopDownEngine returns the pure top-down kernel as an Engine.
// workers <= 0 selects GOMAXPROCS.
func NewTopDownEngine(workers int) Engine { return bfs.TopDownEngine(workers) }

// NewBottomUpEngine returns the pure bottom-up kernel as an Engine.
func NewBottomUpEngine(workers int) Engine { return bfs.BottomUpEngine(workers) }

// NewHybridEngine returns the (M, N)-switched combination as an Engine.
func NewHybridEngine(m, n float64, workers int) Engine { return bfs.HybridEngine(m, n, workers) }

// NewShardedEngine returns the partitioned engine: ranks goroutine
// "ranks" each own one 1D vertex shard, exchange compressed frontier
// state once per level, and switch direction collectively under the
// (m, n) rule. Results carry per-level ExchangeStats in
// Result.Exchanges.
func NewShardedEngine(ranks int, m, n float64) Engine { return bfs.NewShardedEngine(ranks, m, n) }

// BFSWith runs one traversal through an Engine in a caller-held
// workspace. ws may be nil (a throwaway workspace is allocated); when
// it is reused across calls the traversal allocates nothing in steady
// state. The Result aliases ws — Clone it before the next run if it
// must survive.
func BFSWith(g *Graph, source int32, e Engine, ws *Workspace) (*Result, error) {
	if e == nil {
		e = bfs.DefaultEngine()
	}
	return e.Run(g, source, ws)
}

// BFSMany runs one traversal per root and returns durable (cloned)
// results in root order. Workspaces are drawn from the shared pool and
// the batch runs roots concurrently; see ManyOptions for control over
// the engine, concurrency, and pool.
func BFSMany(g *Graph, roots []int32, opts ManyOptions) ([]*Result, error) {
	return bfs.RunMany(g, roots, opts)
}

// BFSEach is the streaming form of BFSMany: fn observes each root's
// Result without the per-root Clone. The Result passed to fn aliases a
// pooled workspace and is only valid during the callback.
func BFSEach(g *Graph, roots []int32, opts ManyOptions, fn func(i int, root int32, r *Result) error) error {
	return bfs.RunManyFunc(g, roots, opts, fn)
}

// ---- Cancellation, deadlines, and fault tolerance ----

// Fault-tolerance surface. A FaultSchedule is a deterministic,
// seed-driven set of injected faults (device crashes, transient link
// errors, kernel slowdowns); ResilientOptions carry it into the
// executor together with the retry policy. See ExecuteResilient.
type (
	// FaultSchedule is a deterministic fault-injection registry.
	FaultSchedule = fault.Schedule
	// FaultEvent is one scheduled fault.
	FaultEvent = fault.Event
	// FaultError is the typed error returned when the degradation
	// ladder is exhausted; match it with errors.As.
	FaultError = fault.Error
	// FaultRecord documents one fault event a resilient execution
	// survived and the action taken.
	FaultRecord = core.FaultRecord
	// ResilientOptions configure fault-tolerant plan execution.
	ResilientOptions = core.ResilientOptions
	// RecoveryStats summarizes the fault-tolerance work of one sharded
	// traversal (Result.Recovery): ranks fenced, recoveries replayed,
	// exchange retries, checkpoint volume.
	RecoveryStats = bfs.RecoveryStats
)

// ParseFaultSchedule builds a schedule from the CLI grammar, e.g.
// "crash:GPU@4;transient:0.2;slow:CPU@2x1.5", seeded for reproducible
// transient-error draws.
func ParseFaultSchedule(spec string, seed uint64) (*FaultSchedule, error) {
	return fault.Parse(spec, seed)
}

// BFSContext is BFS under a context: the traversal observes ctx at
// every level boundary (and grain boundary in the parallel kernels)
// and returns ctx.Err() promptly after cancellation or deadline
// expiry. On error the partially-traversed state is discarded.
func BFSContext(ctx context.Context, g *Graph, source int32) (*Result, error) {
	return bfs.RunContext(ctx, g, source, bfs.Options{Policy: bfs.MN{M: 64, N: 64}})
}

// BFSWithContext is BFSWith under a context; see BFSContext for the
// cancellation contract and BFSWith for workspace ownership.
func BFSWithContext(ctx context.Context, g *Graph, source int32, e Engine, ws *Workspace) (*Result, error) {
	if e == nil {
		e = bfs.DefaultEngine()
	}
	return e.RunContext(ctx, g, source, ws)
}

// BFSManyContext is BFSMany under a context: cancellation stops the
// dispatch of further roots, in-flight traversals stop at their next
// level boundary, and ctx.Err() is returned.
func BFSManyContext(ctx context.Context, g *Graph, roots []int32, opts ManyOptions) ([]*Result, error) {
	return bfs.RunManyContext(ctx, g, roots, opts)
}

// BFSEachContext is BFSEach under a context; each index is delivered
// at most once, and the batch fails fast on the first error or cancel.
func BFSEachContext(ctx context.Context, g *Graph, roots []int32, opts ManyOptions, fn func(i int, root int32, r *Result) error) error {
	return bfs.RunManyFuncContext(ctx, g, roots, opts, fn)
}

// ExecuteResilient runs a plan under a context and a fault schedule:
// real, validated host kernels drive the traversal while the simulator
// prices each step, degrading through the fault ladder — retry
// transient link errors with capped backoff, replan crashed devices'
// steps onto survivors, fail with a typed *FaultError only when no
// device survives. The Timing reports Retries, Replans, and every
// fault event.
func ExecuteResilient(ctx context.Context, g *Graph, source int32, plan Plan, opts ResilientOptions) (*Result, *Timing, error) {
	res, _, timing, err := core.ExecuteResilient(ctx, g, source, plan, archsim.PCIe(), opts)
	return res, timing, err
}

// ExecuteShardedResilient runs the partitioned engine under a rank
// fault schedule: crashes, lag, and dropped collectives are injected
// at the exchange seams, survivors absorb a dead rank's shard and
// replay the level from per-level frontier checkpoints, and the
// returned Result (Result.Recovery reports the fault-tolerance work)
// is validated against the same Graph 500 rules as a clean run. The
// Timing prices the degraded traversal; if no survivor set can finish,
// the traversal replans onto a single un-sharded device before a typed
// *FaultError is the last resort.
func ExecuteShardedResilient(ctx context.Context, g *Graph, source int32, plan ShardedPlan, opts ResilientOptions) (*Result, *Timing, error) {
	return core.ExecuteShardedResilient(ctx, g, source, plan, nil, opts)
}

// ---- Observability ----

// Telemetry surface. A Recorder receives one flat TelemetryEvent per
// per-level/per-step occurrence from every engine, the simulator, the
// resilient executor, and the RunMany dispatcher; Metrics aggregates
// them into counters and histograms, and TraceWriter streams them as
// Chrome trace-event JSON for chrome://tracing or Perfetto. See
// OBSERVABILITY.md for the event taxonomy and the trace-file schema.
type (
	// Recorder consumes telemetry events; implementations must be
	// cheap and, when shared across traversals, concurrency-safe.
	Recorder = obs.Recorder
	// TelemetryEvent is the single flat event type all instrumentation
	// emits.
	TelemetryEvent = obs.Event
	// Metrics aggregates events into atomic counters, gauges, and
	// power-of-two histograms with expvar and HTTP endpoints.
	Metrics = obs.Metrics
	// TraceWriter encodes events as Chrome trace-event JSON.
	TraceWriter = obs.TraceWriter
	// StreamWriter is the serving-grade trace sink: same byte format as
	// TraceWriter, but encoded incrementally through a bounded buffer
	// that drops events under backpressure instead of growing.
	StreamWriter = obs.StreamWriter
	// StreamStats reports a StreamWriter's drop and high-water counters.
	StreamStats = obs.StreamStats
	// Sampler keeps 1-in-K traversals, whole, by TraversalID.
	Sampler = obs.Sampler
	// FlightRecorder retains the last N complete traversals in memory
	// for post-hoc dumps (obs.Ring).
	FlightRecorder = obs.Ring
	// FlightRecorderStats reports a FlightRecorder's retention counters.
	FlightRecorderStats = obs.RingStats
	// TraceSummary is the structural digest ValidateTrace returns.
	TraceSummary = obs.TraceSummary
)

// Dimensional metrics and SLO surface. A MetricsRegistry holds
// label-aware counter/gauge/histogram families rendered in Prometheus
// text exposition format v0.0.4; an SLOEngine evaluates declarative
// latency/error objectives over those families with multi-window burn
// rates. See OBSERVABILITY.md §dimensional metrics.
type (
	// MetricsRegistry is the label-aware metric registry (obs.Registry).
	MetricsRegistry = obs.Registry
	// MetricFamily is one named family of labeled cells.
	MetricFamily = obs.Family
	// MetricCell is one pre-interned label combination; Inc/Add/Set/
	// Observe on a Cell are lock-free atomics.
	MetricCell = obs.Cell
	// RegistryRecorder aggregates telemetry events into a registry's
	// dimensional families (the labeled twin of Metrics).
	RegistryRecorder = obs.RegistryRecorder
	// SLOObjective is one parsed declarative objective
	// ("oltp p99 < 2ms over 5m", "error ratio < 0.1% over 30m").
	SLOObjective = obs.Objective
	// SLOEngine evaluates objectives with multi-window burn rates and
	// fires a breach hook under a cooldown (obs.SLO).
	SLOEngine = obs.SLO
	// SLOObjectiveSource binds a parsed objective to the counter
	// source the engine samples each tick.
	SLOObjectiveSource = obs.SLOObjective
	// SLOEngineOptions tunes the evaluator (burn threshold, short
	// window divisor, breach cooldown and hook); zero values take the
	// defaults.
	SLOEngineOptions = obs.SLOOptions
	// SLOVerdict is one objective's most recent evaluation.
	SLOVerdict = obs.Verdict
	// ExpositionStats summarizes a validated exposition page.
	ExpositionStats = obs.ExpoStats
)

// NopRecorder is the explicit no-op Recorder: passing it (or nil) to
// any observed entry point keeps the traversal on the zero-allocation
// fast path, with all per-event work compiled out behind one branch.
var NopRecorder = obs.Nop

// NewMetrics returns an empty, concurrency-safe metrics aggregator.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewTraceWriter returns a recorder that streams Chrome trace-event
// JSON to w. Close flushes the file; the output is loadable in
// chrome://tracing and https://ui.perfetto.dev.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewTraceWriter(w) }

// NewStreamWriter returns the streaming trace sink over w with the
// default buffer budget; NewStreamWriterSize sets it explicitly. The
// output is byte-compatible with NewTraceWriter when no events are
// dropped; drops are counted in Stats and noted in the trace metadata.
func NewStreamWriter(w io.Writer) *StreamWriter { return obs.NewStreamWriter(w) }

// NewStreamWriterSize is NewStreamWriter with an explicit buffer cap in
// bytes.
func NewStreamWriterSize(w io.Writer, bufCap int) *StreamWriter {
	return obs.NewStreamWriterSize(w, bufCap)
}

// NewSampler wraps next so only 1-in-k traversals reach it — whole:
// the keep/drop decision is a pure seeded hash of the TraversalID, so
// every event of a kept traversal (including resilient-ladder retries
// under the same ID) lands in the sample, and none of a dropped one.
func NewSampler(next Recorder, k int, seed uint64) *Sampler {
	return obs.NewSampler(next, k, seed)
}

// NewFlightRecorder returns an in-memory ring retaining the last keep
// complete traversals (capped at maxEvents events each; 0 selects the
// defaults). Dump the retained traversals with WriteTrace after a
// fault or on SIGQUIT.
func NewFlightRecorder(keep, maxEvents int) *FlightRecorder {
	return obs.NewRing(keep, maxEvents)
}

// MultiRecorder fans events out to several recorders in order — e.g.
// one Metrics and one TraceWriter on the same run.
func MultiRecorder(recs ...Recorder) Recorder { return obs.Multi(recs...) }

// ValidateTrace parses Chrome trace-event JSON (as produced by
// TraceWriter) and checks the structural invariants documented in
// OBSERVABILITY.md, returning a summary with per-timeline direction
// sequences. cmd/tracecheck is its CLI form.
func ValidateTrace(data []byte) (*TraceSummary, error) { return obs.ValidateTrace(data) }

// NewMetricsRegistry returns an empty dimensional metric registry.
// Register families with Counter/Gauge/Histogram, pre-intern label
// combinations with With, and render the page with WriteExposition.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewRegistryRecorder returns a Recorder that aggregates telemetry
// events into reg's dimensional families, labeling each sample with
// the given engine name. It is the labeled twin of NewMetrics and
// shares its hot-path contract (atomic cells, no per-event
// allocation).
func NewRegistryRecorder(reg *MetricsRegistry, engine string) *RegistryRecorder {
	return obs.NewRegistryRecorder(reg, engine)
}

// NewSLOEngine returns an evaluator over the given objective/source
// bindings. Drive it with Tick at the poll interval; Tick(now) is
// pure in now, so tests replay synthetic timelines.
func NewSLOEngine(objs []SLOObjectiveSource, opt SLOEngineOptions) *SLOEngine {
	return obs.NewSLO(objs, opt)
}

// ParseSLOObjective parses one declarative objective spec — either
// "<selector> p<q> < <latency> over <window>" or
// "error ratio < <pct>% over <window>" — into an SLOObjective.
func ParseSLOObjective(spec string) (SLOObjective, error) { return obs.ParseObjective(spec) }

// ValidateExposition checks that r holds well-formed Prometheus text
// exposition v0.0.4 — typed families carry HELP and TYPE, samples of
// one family are contiguous, histograms end in a +Inf bucket with
// monotone cumulative counts. cmd/expcheck is its CLI form.
func ValidateExposition(r io.Reader) (ExpositionStats, error) { return obs.ValidateExposition(r) }

// HistogramQuantile reconstructs the q-quantile (0 < q <= 1) from
// cumulative le-buckets as scraped off an exposition page, returning
// the smallest bucket boundary covering the target rank.
func HistogramQuantile(q float64, buckets []obs.HistBucket) float64 {
	return obs.HistogramQuantile(q, buckets)
}

// BFSObserved is BFSWithContext with telemetry: every level emits one
// event to rec (traversal bracket, per-level counts, direction
// switches). rec == nil or NopRecorder costs nothing.
func BFSObserved(ctx context.Context, g *Graph, source int32, e Engine, ws *Workspace, rec Recorder) (*Result, error) {
	if e == nil {
		e = bfs.DefaultEngine()
	}
	return e.RunObserved(ctx, g, source, ws, rec)
}

// SimulateObserved is Simulate with telemetry on the simulated clock:
// the real host traversal emits wall-clock level events and the plan
// pricing emits per-step kernel slices and handoff transfers, so a
// TraceWriter shows the modeled cross-architecture timeline.
func SimulateObserved(ctx context.Context, g *Graph, source int32, plan Plan, rec Recorder) (*Timing, error) {
	_, _, timing, err := core.ExecuteObserved(ctx, g, source, plan, archsim.PCIe(), 0, nil, rec)
	return timing, err
}

// ValidateBFS checks a result against the Graph 500 validation rules.
func ValidateBFS(g *Graph, r *Result) error { return bfs.Validate(g, r) }

// ComputeTrace derives the per-level work profile from a traversal.
func ComputeTrace(g *Graph, r *Result) (*Trace, error) { return bfs.ComputeTrace(g, r) }

// ---- Architectures and plans ----

// CPU returns the paper's 8-core Sandy Bridge model (Table II).
func CPU() Arch { return archsim.SandyBridge() }

// GPU returns the paper's NVIDIA Kepler K20x model (Table II).
func GPU() Arch { return archsim.KeplerK20x() }

// MIC returns the paper's 60-core Knights Corner model (Table II).
func MIC() Arch { return archsim.KnightsCorner() }

// PCIe returns the default CPU<->GPU interconnect model.
func PCIe() Link { return archsim.PCIe() }

// SMPFabric returns the shared-memory fabric model for n ranks (the
// default machine for the sharded engine's priced exchanges).
func SMPFabric(n int) *Fabric { return archsim.SMP(n) }

// PCIeFabric returns a fabric of n ranks joined pairwise by PCIe.
func PCIeFabric(n int) *Fabric { return archsim.PCIeFabric(n) }

// EthernetFabric returns a 10GbE fabric for n ranks — the
// distributed-memory end of the communication-cost spectrum.
func EthernetFabric(n int) *Fabric { return archsim.Eth10G(n) }

// SimulateSharded runs the partitioned engine for real and prices the
// traversal on plan's modeled machine: per-level kernel times on
// 1/Ranks of the work plus the fabric collectives carrying the
// measured exchange volumes.
func SimulateSharded(ctx context.Context, g *Graph, source int32, plan ShardedPlan) (*Result, *Timing, error) {
	return core.ExecuteSharded(ctx, g, source, plan, nil, nil)
}

// NewBaseline returns the pure single-direction plan on arch
// (e.g. GPUTD).
func NewBaseline(arch Arch, dir Direction) Plan {
	return core.FixedDirection(arch, dir)
}

// NewCombination returns the single-architecture direction-optimizing
// combination (paper: CPUCB / GPUCB / MICCB).
func NewCombination(arch Arch, m, n float64) Plan {
	return core.Combination(arch, m, n)
}

// NewCrossPlan returns the paper's Algorithm 3: top-down on host while
// the frontier is small by (m1, n1), then a (m2, n2)-switched
// combination on the coprocessor, never returning to the host.
func NewCrossPlan(host, coprocessor Arch, m1, n1, m2, n2 float64) Plan {
	return core.CrossPlan{
		Host: host, Coprocessor: coprocessor,
		M1: m1, N1: n1, M2: m2, N2: n2,
	}
}

// ---- Simulation ----

// Simulate traces one BFS from source (real traversal on the host)
// and prices the plan's every level on the architecture models, using
// the PCIe link for transfers.
func Simulate(g *Graph, source int32, plan Plan) (*Timing, error) {
	tr, err := bfs.TraceFrom(g, source)
	if err != nil {
		return nil, err
	}
	return core.Simulate(tr, plan, archsim.PCIe()), nil
}

// SimulateTrace prices a plan on an existing trace over a specific
// link — the cheap path when comparing many plans on one traversal.
func SimulateTrace(tr *Trace, plan Plan, link Link) *Timing {
	return core.Simulate(tr, plan, link)
}

// BenchmarkTEPS runs a Graph 500-style benchmark: numRoots sampled
// search keys, a validated BFS per key priced on the plan, harmonic-
// mean TEPS aggregate.
func BenchmarkTEPS(g *Graph, plan Plan, numRoots int) (*TEPSReport, error) {
	return graph500.Run(g, plan, archsim.PCIe(), numRoots, 1)
}

// ---- Adaptive tuning (the paper's contribution) ----

// TrainDefaultModel builds the default training corpus (graphs crossed
// with architecture pairs, labelled by exhaustive search — paper
// Fig. 6) and trains the switching-point regression model. progress
// may be nil.
func TrainDefaultModel(progress func(done, total int)) (*Model, error) {
	samples, err := tuner.BuildCorpus(tuner.DefaultCorpusSpec(), progress)
	if err != nil {
		return nil, err
	}
	return tuner.Train(samples, tuner.TrainOptions{})
}

// LoadModel reads a model saved with Model.Save (or cmd/trainer).
func LoadModel(path string) (*Model, error) { return tuner.LoadModel(path) }

// PredictSwitchPoint predicts the best (M, N) for traversing a graph
// with top-down on tdArch and bottom-up on buArch — the paper's
// RegressionModel(GI, ArchTD, ArchBU) call in Algorithm 3. The graph
// is described by its generation parameters plus the built CSR.
func PredictSwitchPoint(m *Model, p RMATParams, g *Graph, tdArch, buArch Arch) SwitchPoint {
	return m.Predict(tuner.Sample{
		Graph: tuner.GraphInfoFor(p, g),
		TD:    tuner.ArchInfoOf(tdArch),
		BU:    tuner.ArchInfoOf(buArch),
	})
}

// NewAdaptiveCrossPlan assembles Algorithm 3 end to end: predict
// (M1, N1) for the host/coprocessor boundary and (M2, N2) for the
// on-coprocessor combination, then return the cross plan.
func NewAdaptiveCrossPlan(m *Model, p RMATParams, g *Graph, host, coprocessor Arch) (Plan, error) {
	if m == nil {
		return nil, fmt.Errorf("crossbfs: nil model") //lint:fault-ok argument validation, not a runtime fault; callers test for nil before dispatch
	}
	boundary := PredictSwitchPoint(m, p, g, host, coprocessor)
	onCop := PredictSwitchPoint(m, p, g, coprocessor, coprocessor)
	return NewCrossPlan(host, coprocessor, boundary.M, boundary.N, onCop.M, onCop.N), nil
}
