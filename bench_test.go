package crossbfs

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's per-experiment index), plus ablation benches for the
// design decisions the simulator rests on. Each bench regenerates its
// experiment through the same drivers cmd/experiments uses and reports
// the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation.

import (
	"sync"
	"testing"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/exp"
	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
	"crossbfs/internal/tuner"
)

// benchCfg keeps bench iterations affordable; the CLI defaults are
// one scale larger.
var benchCfg = exp.Config{Scale: 15, EdgeFactor: 16, Seed: 1, NumRoots: 4}

// Shared fixtures, built once.
var (
	fixtureOnce  sync.Once
	fixtureGraph *graph.CSR
	fixtureTrace *bfs.Trace
	fixtureErr   error
)

func fixture(b *testing.B) (*graph.CSR, *bfs.Trace) {
	b.Helper()
	fixtureOnce.Do(func() {
		p := rmat.DefaultParams(benchCfg.Scale, benchCfg.EdgeFactor)
		fixtureGraph, fixtureErr = rmat.Generate(p)
		if fixtureErr != nil {
			return
		}
		var src int32
		for v := 0; v < fixtureGraph.NumVertices(); v++ {
			if fixtureGraph.Degree(int32(v)) > 0 {
				src = int32(v)
				break
			}
		}
		fixtureTrace, fixtureErr = bfs.TraceFrom(fixtureGraph, src)
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixtureGraph, fixtureTrace
}

var (
	modelOnce sync.Once
	benchModl *tuner.Model
	modelErr  error
)

func benchModel(b *testing.B) *tuner.Model {
	b.Helper()
	modelOnce.Do(func() {
		spec := tuner.DefaultCorpusSpec()
		spec.Scales = []int{11, 12} // keep the one-time cost small
		var samples []tuner.Labeled
		samples, modelErr = tuner.BuildCorpus(spec, nil)
		if modelErr != nil {
			return
		}
		benchModl, modelErr = tuner.Train(samples, tuner.TrainOptions{})
	})
	if modelErr != nil {
		b.Fatal(modelErr)
	}
	return benchModl
}

// BenchmarkFig1FrontierVertices regenerates Fig. 1 (per-level |V|cq
// across scales) and reports the peak frontier fraction.
func BenchmarkFig1FrontierVertices(b *testing.B) {
	b.ReportAllocs()
	var peakFrac float64
	for i := 0; i < b.N; i++ {
		profiles, err := exp.FrontierProfiles([]int{12, 13, 14}, 16, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := profiles[len(profiles)-1]
		var peak, total int64
		for _, s := range last.Steps {
			if s.FrontierVertices > peak {
				peak = s.FrontierVertices
			}
			total += s.FrontierVertices
		}
		peakFrac = float64(peak) / float64(total)
	}
	b.ReportMetric(peakFrac, "peak-frontier-frac")
}

// BenchmarkFig2FrontierEdges regenerates Fig. 2 (per-level |E|cq).
func BenchmarkFig2FrontierEdges(b *testing.B) {
	b.ReportAllocs()
	var peakFrac float64
	for i := 0; i < b.N; i++ {
		profiles, err := exp.FrontierProfiles([]int{12, 13, 14}, 16, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := profiles[len(profiles)-1]
		var peak, total int64
		for _, s := range last.Steps {
			if s.FrontierEdges > peak {
				peak = s.FrontierEdges
			}
			total += s.FrontierEdges
		}
		peakFrac = float64(peak) / float64(total)
	}
	b.ReportMetric(peakFrac, "peak-edge-frac")
}

// BenchmarkFig3DirectionTimes regenerates Fig. 3 and reports how many
// levels bottom-up wins.
func BenchmarkFig3DirectionTimes(b *testing.B) {
	b.ReportAllocs()
	var buWins int
	for i := 0; i < b.N; i++ {
		rows, err := exp.DirectionComparison(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		buWins = 0
		for _, r := range rows {
			if r.BottomUp < r.TopDown {
				buWins++
			}
		}
	}
	b.ReportMetric(float64(buWins), "bu-wins-levels")
}

// BenchmarkTable3BestM regenerates Table III (exhaustive best M per
// graph) and reports the spread of best M across graphs.
func BenchmarkTable3BestM(b *testing.B) {
	b.ReportAllocs()
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.BestSwitchingPoints([]int{12, 13}, []int{16, 32}, 1)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := rows[0].BestM, rows[0].BestM
		for _, r := range rows {
			if r.BestM < lo {
				lo = r.BestM
			}
			if r.BestM > hi {
				hi = r.BestM
			}
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "bestM-spread")
}

// BenchmarkFig8Strategies regenerates Fig. 8 (Random / Average /
// Regression / Exhaustive) and reports the regression quality
// (paper: >= 95% of exhaustive).
func BenchmarkFig8Strategies(b *testing.B) {
	b.ReportAllocs()
	model := benchModel(b)
	b.ResetTimer()
	var quality float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.StrategyComparison(benchCfg, model, []int{13}, []int{16})
		if err != nil {
			b.Fatal(err)
		}
		quality = rows[0].RegressionQuality()
	}
	b.ReportMetric(quality*100, "regression-quality-%")
}

// BenchmarkTable4StepByStep regenerates Table IV and reports the
// cross-architecture speedup over GPUTD (the paper's 36.1x cell).
func BenchmarkTable4StepByStep(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := exp.StepByStepOptimization(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		speedup = t.Timings[0].Total / t.Timings[len(t.Timings)-1].Total
	}
	b.ReportMetric(speedup, "cross-over-GPUTD-x")
}

// BenchmarkTable5CrossSpeedup regenerates Table V and reports the mean
// speedup (paper: average 64x).
func BenchmarkTable5CrossSpeedup(b *testing.B) {
	b.ReportAllocs()
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.CrossSpeedups(benchCfg, [][2]int{{14, 16}, {14, 32}, {15, 16}})
		if err != nil {
			b.Fatal(err)
		}
		mean = 0
		for _, r := range rows {
			mean += r.Speedup
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "mean-speedup-x")
}

// BenchmarkFig9Combinations regenerates Fig. 9 and reports the mean
// cross-architecture speedup over the MIC combination (paper: 8.5x).
func BenchmarkFig9Combinations(b *testing.B) {
	b.ReportAllocs()
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.CombinationComparison(benchCfg, [][2]int{{15, 16}, {15, 32}})
		if err != nil {
			b.Fatal(err)
		}
		mean = 0
		for _, r := range rows {
			mean += r.SpeedupOverMIC
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "cross-over-MIC-x")
}

// BenchmarkFig10StrongScaling regenerates Fig. 10a and reports the
// CPU's 1-to-8-core speedup.
func BenchmarkFig10StrongScaling(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.StrongScaling(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var first, last float64
		for _, r := range rows {
			if r.Arch == "CPU" {
				if first == 0 {
					first = r.GTEPS
				}
				last = r.GTEPS
			}
		}
		ratio = last / first
	}
	b.ReportMetric(ratio, "cpu-8c-over-1c-x")
}

// BenchmarkFig10WeakScaling regenerates Fig. 10b and reports the CPU
// weak-scaling growth.
func BenchmarkFig10WeakScaling(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.WeakScaling(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var first, last float64
		for _, r := range rows {
			if r.Arch == "CPU" {
				if first == 0 {
					first = r.GTEPS
				}
				last = r.GTEPS
			}
		}
		ratio = last / first
	}
	b.ReportMetric(ratio, "cpu-weak-growth-x")
}

// BenchmarkTable6AvgPerformance regenerates Table VI and reports the
// large-size CPU/GPU ratio (paper: CPU overtakes at 8M vertices).
func BenchmarkTable6AvgPerformance(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.AveragePerformance(benchCfg, []int{14, 18})
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		ratio = last.CPU / last.GPU
	}
	b.ReportMetric(ratio, "large-CPU-over-GPU-x")
}

// BenchmarkComparisonGraph500Ref regenerates the §V-D comparison and
// reports the cross-architecture speedup over the Graph 500 reference
// (paper: 16-63x, average 29x).
func BenchmarkComparisonGraph500Ref(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.ExternalComparisons(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "CPUTD+GPUCB vs Graph500 reference" {
				speedup = r.Speedup
			}
		}
	}
	b.ReportMetric(speedup, "cross-over-ref-x")
}

// ---- Ablation benches (DESIGN.md §5) ----

// BenchmarkAblationReplayVsRerun/replay evaluates 1000 switching
// points by replaying one trace; .../rerun re-traverses the graph per
// candidate. The gap is why exhaustive labelling is affordable.
func BenchmarkAblationReplayVsRerun(b *testing.B) {
	b.ReportAllocs()
	g, tr := fixture(b)
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	link := archsim.PCIe()
	candidates := tuner.DefaultCandidates()

	b.Run("replay-1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tuner.Evaluate(tr, cpu, gpu, link, candidates); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rerun-10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, cand := range candidates[:10] {
				if _, err := bfs.Hybrid(g, tr.Source, cand.M, cand.N, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationFlatUtilization removes the utilization curve
// (every kernel runs at peak regardless of parallelism) and reports
// how far the cross-architecture advantage falls — the paper's §III-A
// argument that parallelism differences drive the split.
func BenchmarkAblationFlatUtilization(b *testing.B) {
	b.ReportAllocs()
	_, tr := fixture(b)
	link := archsim.PCIe()
	flat := func(a archsim.Arch) archsim.Arch {
		a.HalfUtil = 0
		a.ThreadRate = a.TDRate // no critical path either
		return a
	}
	var normal, ablated float64
	for i := 0; i < b.N; i++ {
		cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
		cross := core.CrossPlan{Host: cpu, Coprocessor: gpu, M1: 64, N1: 64, M2: 64, N2: 64}
		gpucb := core.Combination(gpu, 64, 64)
		normal = core.Simulate(tr, gpucb, link).Total / core.Simulate(tr, cross, link).Total

		fcpu, fgpu := flat(cpu), flat(gpu)
		fcross := core.CrossPlan{Host: fcpu, Coprocessor: fgpu, M1: 64, N1: 64, M2: 64, N2: 64}
		fgpucb := core.Combination(fgpu, 64, 64)
		ablated = core.Simulate(tr, fgpucb, link).Total / core.Simulate(tr, fcross, link).Total
	}
	b.ReportMetric(normal, "cross-adv-normal-x")
	b.ReportMetric(ablated, "cross-adv-flat-x")
}

// BenchmarkAblationNoEarlyExit prices bottom-up as if every unvisited
// vertex scanned its whole list (the paper's |E|un upper bound) and
// reports the slowdown relative to exact early-exit scan counts.
func BenchmarkAblationNoEarlyExit(b *testing.B) {
	b.ReportAllocs()
	_, tr := fixture(b)
	gpu := archsim.KeplerK20x()
	link := archsim.PCIe()
	noExit := *tr
	noExit.Steps = append([]bfs.LevelStats(nil), tr.Steps...)
	for i := range noExit.Steps {
		noExit.Steps[i].BottomUpScans = noExit.Steps[i].UnvisitedEdges
	}
	plan := core.Combination(gpu, 64, 64)
	var slowdown float64
	for i := 0; i < b.N; i++ {
		exact := core.Simulate(tr, plan, link).Total
		bound := core.Simulate(&noExit, plan, link).Total
		slowdown = bound / exact
	}
	b.ReportMetric(slowdown, "no-early-exit-slowdown-x")
}

// BenchmarkAblationFreeTransfers removes the PCIe cost and reports how
// much of the mistuned-switching-point spread it was responsible for.
func BenchmarkAblationFreeTransfers(b *testing.B) {
	b.ReportAllocs()
	_, tr := fixture(b)
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	sweep := []float64{1, 4, 16, 64, 256, 1024}
	spread := func(link archsim.Link) float64 {
		best, worst := -1.0, 0.0
		for _, m1 := range sweep {
			for _, m2 := range sweep {
				t := core.Simulate(tr, core.CrossPlan{
					Host: cpu, Coprocessor: gpu,
					M1: m1, N1: m1, M2: m2, N2: m2,
				}, link).Total
				if best < 0 || t < best {
					best = t
				}
				if t > worst {
					worst = t
				}
			}
		}
		return worst / best
	}
	var paid, free float64
	for i := 0; i < b.N; i++ {
		paid = spread(archsim.PCIe())
		free = spread(archsim.SameDevice())
	}
	b.ReportMetric(paid, "spread-pcie-x")
	b.ReportMetric(free, "spread-free-x")
}

// BenchmarkAblationLazyTransfers compares eager handoffs (everything
// blocks) with lazy ones (predecessor entries stream behind kernels)
// on a mistuned late switch over a stressed link, reporting how much
// transfer time a smarter runtime hides.
func BenchmarkAblationLazyTransfers(b *testing.B) {
	b.ReportAllocs()
	_, tr := fixture(b)
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	slow := archsim.Link{BandwidthGBs: 0.5, LatencySeconds: 15e-6}
	plan := core.CrossPlan{Host: cpu, Coprocessor: gpu, M1: 10, N1: 10, M2: 64, N2: 64}
	var eager, lazy float64
	for i := 0; i < b.N; i++ {
		eager = core.Simulate(tr, plan, slow).Transfers
		lazy = core.SimulateLazy(tr, plan, slow).Transfers
	}
	b.ReportMetric(eager*1e3, "eager-transfer-ms")
	b.ReportMetric(lazy*1e3, "lazy-transfer-ms")
}

// BenchmarkExtensionMultiCoprocessor sweeps 1-3 simulated GPUs on the
// partitioned bottom-up extension and reports the 3-device speedup.
func BenchmarkExtensionMultiCoprocessor(b *testing.B) {
	b.ReportAllocs()
	_, tr := fixture(b)
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	link := archsim.PCIe()
	var speedup float64
	for i := 0; i < b.N; i++ {
		var one, three float64
		for _, k := range []int{1, 3} {
			cops := make([]archsim.Arch, k)
			for j := range cops {
				cops[j] = gpu
			}
			timing, err := core.SimulateMulti(tr, core.MultiCross{
				Host: cpu, Coprocessors: cops, M1: 64, N1: 64, M2: 300, N2: 300,
			}, link)
			if err != nil {
				b.Fatal(err)
			}
			if k == 1 {
				one = timing.Total
			} else {
				three = timing.Total
			}
		}
		speedup = one / three
	}
	b.ReportMetric(speedup, "3gpu-over-1gpu-x")
}

// BenchmarkExtensionHeuristics compares the paper's tuned (M, N) rule
// against the SC'12 alpha/beta and PACT'11 heuristics (extension
// table; `experiments -run heuristics`) and reports the oracle's gain
// over the best alternative.
func BenchmarkExtensionHeuristics(b *testing.B) {
	b.ReportAllocs()
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.HeuristicComparison(benchCfg, [][2]int{{14, 16}})
		if err != nil {
			b.Fatal(err)
		}
		gain = rows[0].OracleGain
	}
	b.ReportMetric(gain, "oracle-gain-x")
}

// BenchmarkAdaptiveOverhead measures the paper's "<0.1% of execution
// time" claim: the cost of one online (M, N) prediction against the
// cost of the traversal it tunes.
func BenchmarkAdaptiveOverhead(b *testing.B) {
	b.ReportAllocs()
	model := benchModel(b)
	_, tr := fixture(b)
	sample := tuner.Sample{
		Graph: tuner.GraphInfo{NumVertices: float64(tr.NumVertices), NumEdges: float64(tr.NumEdges), A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		TD:    tuner.ArchInfoOf(archsim.SandyBridge()),
		BU:    tuner.ArchInfoOf(archsim.KeplerK20x()),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(sample)
	}
}

// BenchmarkEndToEndAdaptive runs the complete online path: predict
// thresholds, execute the real traversal, price it.
func BenchmarkEndToEndAdaptive(b *testing.B) {
	b.ReportAllocs()
	model := benchModel(b)
	g, tr := fixture(b)
	sample := tuner.Sample{
		Graph: tuner.GraphInfo{NumVertices: float64(tr.NumVertices), NumEdges: float64(tr.NumEdges), A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		TD:    tuner.ArchInfoOf(archsim.SandyBridge()),
		BU:    tuner.ArchInfoOf(archsim.KeplerK20x()),
	}
	b.ResetTimer()
	var gteps float64
	for i := 0; i < b.N; i++ {
		p := model.Predict(sample)
		plan := core.CrossPlan{
			Host: archsim.SandyBridge(), Coprocessor: archsim.KeplerK20x(),
			M1: p.M, N1: p.N, M2: p.M, N2: p.N,
		}
		_, _, timing, err := core.Execute(g, tr.Source, plan, archsim.PCIe(), 0)
		if err != nil {
			b.Fatal(err)
		}
		gteps = timing.GTEPS()
	}
	b.ReportMetric(gteps, "GTEPS")
}
