package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"crossbfs/internal/lint"
)

func TestUnknownAnalyzerExits2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-c", "nosuch"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errBuf.String())
	}
}

func TestBadFlagExits2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestCleanPackages runs the full suite over the concurrency-critical
// packages; they carry reviewed annotations and must stay clean. This
// is the same gate `make verify` applies repo-wide.
func TestCleanPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go build system")
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-v", "crossbfs/internal/bfs", "crossbfs/internal/bitmap"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no diagnostics, got:\n%s", out.String())
	}
}

// TestJSONReport exercises -json: stdout carries exactly one decodable
// report whose metadata reflects the run even when no diagnostics
// fired — CI archives this file, so "clean" must be distinguishable
// from "didn't run".
func TestJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go build system")
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-json", "crossbfs/internal/bitmap"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if report.Count != 0 || len(report.Diagnostics) != 0 {
		t.Errorf("bitmap should be clean, got count=%d diagnostics=%v", report.Count, report.Diagnostics)
	}
	if report.Packages != 1 {
		t.Errorf("packages = %d, want 1", report.Packages)
	}
	if len(report.Analyzers) != len(lint.All()) {
		t.Errorf("analyzers = %v, want all %d", report.Analyzers, len(lint.All()))
	}
	// The diagnostics list must serialize as [], not null: jq pipelines
	// iterate it unconditionally.
	if !bytes.Contains(out.Bytes(), []byte(`"diagnostics": []`)) {
		t.Errorf("empty diagnostics did not serialize as []:\n%s", out.String())
	}
}

// TestDebugTiming exercises -debug: per-analyzer wall times and loader
// cache stats land on stderr, and the second identical run hits the
// process-wide go list cache.
func TestDebugTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go build system")
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-debug", "crossbfs/internal/bitmap"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	for _, want := range []string{"go list cache", "atomicpair", "sharedwrite"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("-debug stderr missing %q:\n%s", want, errBuf.String())
		}
	}
	errBuf.Reset()
	if code := run([]string{"-debug", "crossbfs/internal/bitmap"}, &out, &errBuf); code != 0 {
		t.Fatalf("second run exit = %d\nstderr:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), " hits") || strings.Contains(errBuf.String(), " 0 hits") {
		t.Errorf("second identical run did not hit the go list cache:\n%s", errBuf.String())
	}
}
