package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUnknownAnalyzerExits2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-c", "nosuch"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errBuf.String())
	}
}

func TestBadFlagExits2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestCleanPackages runs the full suite over the concurrency-critical
// packages; they carry reviewed annotations and must stay clean. This
// is the same gate `make verify` applies repo-wide.
func TestCleanPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go build system")
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-v", "crossbfs/internal/bfs", "crossbfs/internal/bitmap"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no diagnostics, got:\n%s", out.String())
	}
}

// TestDebugTiming exercises -debug: per-analyzer wall times and loader
// cache stats land on stderr, and the second identical run hits the
// process-wide go list cache.
func TestDebugTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go build system")
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-debug", "crossbfs/internal/bitmap"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	for _, want := range []string{"go list cache", "atomicpair", "sharedwrite"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("-debug stderr missing %q:\n%s", want, errBuf.String())
		}
	}
	errBuf.Reset()
	if code := run([]string{"-debug", "crossbfs/internal/bitmap"}, &out, &errBuf); code != 0 {
		t.Fatalf("second run exit = %d\nstderr:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), " hits") || strings.Contains(errBuf.String(), " 0 hits") {
		t.Errorf("second identical run did not hit the go list cache:\n%s", errBuf.String())
	}
}
