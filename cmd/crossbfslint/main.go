// Command crossbfslint runs the codebase-specific static-analysis
// suite over the repository — the multichecker for the analyzers in
// internal/lint. It exists because the concurrent BFS core's
// correctness rests on synchronization and index-width discipline that
// the compiler does not check and that a wrong-but-plausible BFS tree
// would never reveal at runtime.
//
// Usage:
//
//	crossbfslint [-c analyzer,...] [-v] [-debug] [-json] [packages...]
//
// Packages default to ./... resolved against the current directory.
// Exit status is 0 when no diagnostics fire, 1 when any do, 2 on
// operational errors — the same contract as go vet, so `make verify`
// and CI can gate on it. -json replaces the line-per-diagnostic text
// output with a single machine-readable report on stdout (the exit
// contract is unchanged), which CI uploads as a workflow artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"crossbfs/internal/lint"
)

// jsonDiagnostic is one finding in -json output, positions resolved.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the whole -json document: the findings plus enough
// run metadata (what ran, over how many packages) that an empty
// diagnostics list is distinguishable from an analyzer that never ran.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Count       int              `json:"count"`
	Packages    int              `json:"packages"`
	Analyzers   []string         `json:"analyzers"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crossbfslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("c", "", "comma-separated analyzer names to run (default: all)")
	verbose := fs.Bool("v", false, "list analyzers and package count")
	debug := fs.Bool("debug", false, "print per-analyzer wall time and loader cache stats")
	jsonOut := fs.Bool("json", false, "emit one JSON report on stdout instead of text diagnostics")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: crossbfslint [-c analyzer,...] [-v] [-debug] [-json] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	analyzers, ok := lint.ByName(names...)
	if !ok {
		fmt.Fprintf(stderr, "crossbfslint: unknown analyzer in -c=%s\n", *checks)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "crossbfslint: %v\n", err)
		return 2
	}
	loadStart := time.Now()
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "crossbfslint: %v\n", err)
		return 2
	}
	loadTime := time.Since(loadStart)
	if *verbose {
		var an []string
		for _, a := range analyzers {
			an = append(an, a.Name)
		}
		fmt.Fprintf(stderr, "crossbfslint: %d analyzers [%s] over %d packages\n",
			len(analyzers), strings.Join(an, " "), len(pkgs))
	}
	diags, elapsed, err := lint.RunTimed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "crossbfslint: %v\n", err)
		return 2
	}
	if *debug {
		hits, misses, invalidations := lint.GoListCacheStats()
		fmt.Fprintf(stderr, "crossbfslint: load %v (go list cache: %d hits, %d misses, %d invalidated)\n",
			loadTime.Round(time.Millisecond), hits, misses, invalidations)
		names := make([]string, 0, len(elapsed))
		for name := range elapsed {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stderr, "crossbfslint: %-12s %v\n", name, elapsed[name].Round(time.Microsecond))
		}
	}
	if *jsonOut {
		report := jsonReport{
			Diagnostics: make([]jsonDiagnostic, 0, len(diags)),
			Count:       len(diags),
			Packages:    len(pkgs),
		}
		for _, a := range analyzers {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, d := range diags {
			pos := d.Position(pkgs[0].Fset)
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "crossbfslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s: %s\n", d.Position(pkgs[0].Fset), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
