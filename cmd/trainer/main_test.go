package main

import (
	"path/filepath"
	"testing"

	"crossbfs/internal/tuner"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 12, 13 ,14")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 12 || got[2] != 14 {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("12,x"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestTrainerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	out := filepath.Join(t.TempDir(), "model.gob")
	if err := run(out, "10,11", "8", 1, "", "", false, true); err != nil {
		t.Fatal(err)
	}
	m, err := tuner.LoadModel(out)
	if err != nil {
		t.Fatalf("trained model unloadable: %v", err)
	}
	p := m.Predict(tuner.Sample{Graph: tuner.GraphInfo{NumVertices: 2048, NumEdges: 32768}})
	if p.M < 1 || p.N < 1 {
		t.Errorf("prediction %v out of range", p)
	}
}

func TestTrainerBadFlags(t *testing.T) {
	if err := run("x.gob", "not-a-number", "", 0, "", "", false, true); err == nil {
		t.Error("bad -scales accepted")
	}
	if err := run("x.gob", "", "also-bad", 0, "", "", false, true); err == nil {
		t.Error("bad -edgefactors accepted")
	}
}

func TestTrainerCorpusRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a corpus")
	}
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.json")
	model1 := filepath.Join(dir, "m1.gob")
	if err := run(model1, "10", "8", 1, corpus, "", false, true); err != nil {
		t.Fatal(err)
	}
	// Retrain from the saved corpus without rebuilding graphs.
	model2 := filepath.Join(dir, "m2.gob")
	if err := run(model2, "", "", 0, "", corpus, false, true); err != nil {
		t.Fatal(err)
	}
	a, err := tuner.LoadModel(model1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tuner.LoadModel(model2)
	if err != nil {
		t.Fatal(err)
	}
	probe := tuner.Sample{Graph: tuner.GraphInfo{NumVertices: 1024, NumEdges: 16384}}
	pa, pb := a.Predict(probe), b.Predict(probe)
	if pa != pb {
		t.Errorf("corpus round trip changed the model: %v vs %v", pa, pb)
	}
}

func TestTrainerCVMode(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep")
	}
	out := filepath.Join(t.TempDir(), "cv.gob")
	if err := run(out, "10", "8", 2, "", "", true, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.LoadModel(out); err != nil {
		t.Fatal(err)
	}
}
