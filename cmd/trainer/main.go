// Command trainer runs the paper's off-line stage (Fig. 6): build a
// corpus of (graph, architecture pair) samples labelled with their
// exhaustively best switching points, train the SVM regression model,
// and save it for on-line use by the other tools.
//
//	trainer -o model.gob
//	trainer -o model.gob -scales 12,13,14 -edgefactors 8,16 -sources 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"crossbfs/internal/tuner"
)

func main() {
	var (
		out         = flag.String("o", "model.gob", "output model path")
		scales      = flag.String("scales", "", "comma-separated graph scales (default 13,14)")
		edgeFactors = flag.String("edgefactors", "", "comma-separated edge factors (default 8,16)")
		sources     = flag.Int("sources", 0, "BFS sources per graph (default 2)")
		corpusOut   = flag.String("corpus-out", "", "also save the labelled corpus as JSON")
		corpusIn    = flag.String("corpus-in", "", "train from a saved corpus instead of building one")
		cv          = flag.Bool("cv", false, "select hyperparameters by 4-fold cross-validation")
		quiet       = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if err := run(*out, *scales, *edgeFactors, *sources, *corpusOut, *corpusIn, *cv, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "trainer:", err)
		os.Exit(1)
	}
}

func run(out, scales, edgeFactors string, sources int, corpusOut, corpusIn string, cv, quiet bool) error {
	if corpusIn != "" {
		samples, err := tuner.LoadCorpus(corpusIn)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("loaded %d samples from %s\n", len(samples), corpusIn)
		}
		return trainAndSave(samples, out, cv, quiet)
	}

	spec := tuner.DefaultCorpusSpec()
	if scales != "" {
		s, err := parseInts(scales)
		if err != nil {
			return fmt.Errorf("parsing -scales: %w", err)
		}
		spec.Scales = s
	}
	if edgeFactors != "" {
		s, err := parseInts(edgeFactors)
		if err != nil {
			return fmt.Errorf("parsing -edgefactors: %w", err)
		}
		spec.EdgeFactors = s
	}
	if sources > 0 {
		spec.SourcesPerGraph = sources
	}

	var progress func(done, total int)
	if !quiet {
		fmt.Printf("building corpus: %d samples\n", spec.NumSamples())
		progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Printf("  labelled %d/%d\n", done, total)
			}
		}
	}
	samples, err := tuner.BuildCorpus(spec, progress)
	if err != nil {
		return err
	}
	if corpusOut != "" {
		if err := tuner.SaveCorpus(samples, corpusOut); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("saved corpus to %s\n", corpusOut)
		}
	}
	return trainAndSave(samples, out, cv, quiet)
}

// trainAndSave fits the model (optionally with CV model selection) and
// writes it to out.
func trainAndSave(samples []tuner.Labeled, out string, cv, quiet bool) error {
	var model *tuner.Model
	var err error
	if cv {
		var best tuner.CVResult
		model, best, _, err = tuner.SelectModel(samples, nil, 4, 1)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("cross-validation selected C=%g gamma=%g (RMSE %.3f)\n",
				best.Options.C, best.Options.Gamma, best.RMSE)
		}
	} else {
		model, err = tuner.Train(samples, tuner.TrainOptions{})
		if err != nil {
			return err
		}
	}
	if err := model.Save(out); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("trained on %d samples (%d + %d support vectors), saved to %s\n",
			len(samples), model.MModel.NumSupportVectors(), model.NModel.NumSupportVectors(), out)
	}
	return nil
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
