// Command bfsload is the open-loop load generator for bfsd. It drives
// a mixed OLTP/OLAP query stream at a target rate and reports the
// latency distribution and sustained throughput:
//
//   - OLTP: point reachability queries from zipfian-skewed roots — the
//     short-request class whose p999 the admission gate protects.
//   - OLAP: multi-source batches and k-hop sweeps — the long-request
//     class that would starve OLTP under unbounded admission.
//
// Pacing is open loop: request start times are fixed on a schedule
// before the run and latency is measured from the scheduled start, so
// a slow server accumulates lateness instead of silently slowing the
// offered rate (no coordinated omission).
//
// Examples:
//
//	bfsload -addr 127.0.0.1:8080 -qps 200 -duration 10s -mix mixed
//	bfsload -addr $(cat bfsd.addr) -qps 500 -mix oltp -out load.json
//	bfsload -addr host:8080 -mix olap -scrape-metrics m.txt -flight-out flight.json
//
// The JSON report (schema crossbfs-load/v1) is what benchreport's
// -serving flag folds into BENCH_<n>.json.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"crossbfs/internal/obs"
)

// LoadSchema names the report format; bump on breaking changes.
const LoadSchema = "crossbfs-load/v1"

// classOLTP / classOLAP label the two request classes in reports.
const (
	classOLTP = "oltp"
	classOLAP = "olap"
)

type config struct {
	addr       string
	qps        float64
	duration   time.Duration
	mix        string
	zipfS      float64
	seed       int64
	deadlineMS int64
	khop       int
	multi      int
	workers    int
	out        string
	metricsOut string
	flightOut  string
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("bfsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "bfsd address (host:port)")
	fs.Float64Var(&cfg.qps, "qps", 100, "target offered rate, queries per second")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "run length")
	fs.StringVar(&cfg.mix, "mix", "mixed", "workload: oltp, olap, or mixed (90/10)")
	fs.Float64Var(&cfg.zipfS, "zipf", 1.1, "zipf skew of OLTP roots (>1; higher = hotter)")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	fs.Int64Var(&cfg.deadlineMS, "deadline-ms", 0, "per-query deadline sent to the server (0 = server default)")
	fs.IntVar(&cfg.khop, "khop", 3, "k of OLAP k-hop sweeps")
	fs.IntVar(&cfg.multi, "multi", 8, "sources per OLAP multi-source batch")
	fs.IntVar(&cfg.workers, "workers", 64, "max in-flight requests (open-loop executor pool)")
	fs.StringVar(&cfg.out, "out", "", "write the JSON report here as well as stdout")
	fs.StringVar(&cfg.metricsOut, "scrape-metrics", "", "after the run, save the server's /metrics page here")
	fs.StringVar(&cfg.flightOut, "flight-out", "", "after the run, save the server's /debug/flight dump here")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch cfg.mix {
	case "oltp", "olap", "mixed":
	default:
		return nil, fmt.Errorf("unknown -mix %q: want oltp, olap, or mixed", cfg.mix)
	}
	if cfg.qps <= 0 {
		return nil, errors.New("-qps must be positive")
	}
	if cfg.zipfS <= 1 {
		return nil, errors.New("-zipf must be > 1")
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	return cfg, nil
}

// ClassStats summarizes one request class.
type ClassStats struct {
	Sent      int64   `json:"sent"`
	OK        int64   `json:"ok"`
	Rejected  int64   `json:"rejected"` // 429
	Deadline  int64   `json:"deadline"` // 504
	Errors    int64   `json:"errors"`   // transport + other non-2xx
	P50US     int64   `json:"p50_us"`
	P99US     int64   `json:"p99_us"`
	P999US    int64   `json:"p999_us"`
	MaxUS     int64   `json:"max_us"`
	AchvdQPS  float64 `json:"sustained_qps"`
	latencies []int64
}

// ServerSide is the server's own view of one class's latency,
// reconstructed from the crossbfs_query_latency_seconds le-histogram on
// /metrics. Client p99 includes scheduling lateness and the network;
// server p99 is pure service time — the gap between the two is queueing
// delay, which is exactly what an open-loop run is meant to expose.
type ServerSide struct {
	Count int64 `json:"count"`
	P50US int64 `json:"p50_us"`
	P99US int64 `json:"p99_us"`
}

// Report is the bfsload output document. Server is present only when
// -scrape-metrics ran (additive, so the crossbfs-load/v1 schema holds).
type Report struct {
	Schema     string                `json:"schema"`
	Addr       string                `json:"addr"`
	Graph      string                `json:"graph"`
	Vertices   int                   `json:"vertices"`
	Mix        string                `json:"mix"`
	TargetQPS  float64               `json:"target_qps"`
	DurationMS int64                 `json:"duration_ms"`
	Total      ClassStats            `json:"total"`
	Classes    map[string]ClassStats `json:"classes"`
	Server     map[string]ServerSide `json:"server,omitempty"`
}

// request is one scheduled query: the class, the ready-to-send body,
// and the open-loop start time latency is measured from.
type request struct {
	class string
	body  string
	at    time.Time
}

// outcome is one completed request.
type outcome struct {
	class     string
	status    int
	elapsedUS int64
}

// quantile reads the q-th quantile from sorted latencies (nearest-rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (c *ClassStats) finish(wall time.Duration) {
	sort.Slice(c.latencies, func(i, j int) bool { return c.latencies[i] < c.latencies[j] })
	c.P50US = quantile(c.latencies, 0.50)
	c.P99US = quantile(c.latencies, 0.99)
	c.P999US = quantile(c.latencies, 0.999)
	if n := len(c.latencies); n > 0 {
		c.MaxUS = c.latencies[n-1]
	}
	if wall > 0 {
		c.AchvdQPS = float64(c.OK) / wall.Seconds()
	}
	c.latencies = nil
}

func (c *ClassStats) observe(o outcome) {
	c.Sent++
	switch {
	case o.status == 200:
		c.OK++
		c.latencies = append(c.latencies, o.elapsedUS)
	case o.status == 429:
		c.Rejected++
	case o.status == 504:
		c.Deadline++
	default:
		c.Errors++
	}
}

// workload turns the config into a deterministic query stream over a
// graph of n vertices.
type workload struct {
	cfg  *config
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newWorkload(cfg *config, vertices int) *workload {
	rng := rand.New(rand.NewSource(cfg.seed))
	return &workload{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.zipfS, 1, uint64(vertices-1)),
		n:    vertices,
	}
}

// next produces the class and body of one query. Zipf output is
// hottest at 0, so OLTP roots concentrate on low vertex IDs — the
// skew a real point-lookup tier sees.
func (w *workload) next() (string, string) {
	olap := false
	switch w.cfg.mix {
	case "olap":
		olap = true
	case "mixed":
		olap = w.rng.Intn(10) == 0
	}
	dl := ""
	if w.cfg.deadlineMS > 0 {
		dl = fmt.Sprintf(`, "deadline_ms": %d`, w.cfg.deadlineMS)
	}
	if !olap {
		src := int(w.zipf.Uint64())
		dst := w.rng.Intn(w.n)
		return classOLTP, fmt.Sprintf(`{"kind": "reach", "source": %d, "target": %d%s}`, src, dst, dl)
	}
	if w.rng.Intn(2) == 0 {
		src := int(w.zipf.Uint64())
		return classOLAP, fmt.Sprintf(`{"kind": "khop", "source": %d, "k": %d%s}`, src, w.cfg.khop, dl)
	}
	srcs := make([]string, w.cfg.multi)
	for i := range srcs {
		srcs[i] = fmt.Sprint(w.rng.Intn(w.n))
	}
	return classOLAP, fmt.Sprintf(`{"kind": "multi", "sources": [%s]%s}`, strings.Join(srcs, ", "), dl)
}

// discoverGraph asks /graphs for the (sole) resident graph.
func discoverGraph(client *http.Client, base string) (name string, vertices int, err error) {
	resp, err := client.Get(base + "/graphs")
	if err != nil {
		return "", 0, fmt.Errorf("querying %s/graphs: %w", base, err)
	}
	defer resp.Body.Close()
	var payload struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices int    `json:"vertices"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return "", 0, fmt.Errorf("decoding /graphs: %w", err)
	}
	if len(payload.Graphs) == 0 {
		return "", 0, errors.New("server holds no graphs")
	}
	g := payload.Graphs[0]
	if g.Vertices < 2 {
		return "", 0, fmt.Errorf("graph %s too small to load-test (%d vertices)", g.Name, g.Vertices)
	}
	return g.Name, g.Vertices, nil
}

// drive runs the open-loop schedule against base and aggregates the
// outcomes into a report.
func drive(ctx context.Context, cfg *config, client *http.Client, base string) (*Report, error) {
	name, vertices, err := discoverGraph(client, base)
	if err != nil {
		return nil, err
	}
	w := newWorkload(cfg, vertices)

	total := int64(cfg.qps * cfg.duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.qps)

	reqs := make(chan request, cfg.workers)
	outs := make(chan outcome, cfg.workers)

	var workers sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for r := range reqs {
				outs <- send(ctx, client, base, r)
			}
		}()
	}

	// The pacer sleeps to each scheduled instant and hands the request
	// to whichever worker is free; if all are busy the request still
	// carries its scheduled time, so queueing here shows up as latency,
	// exactly like an overloaded open-loop client.
	go func() {
		defer close(reqs)
		start := time.Now()
		for i := int64(0); i < total; i++ {
			at := start.Add(time.Duration(i) * interval)
			if d := time.Until(at); d > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
			class, body := w.next()
			select {
			case <-ctx.Done():
				return
			case reqs <- request{class: class, body: body, at: at}:
			}
		}
	}()

	done := make(chan struct{})
	go func() { workers.Wait(); close(outs); close(done) }()

	rep := &Report{
		Schema:    LoadSchema,
		Addr:      cfg.addr,
		Graph:     name,
		Vertices:  vertices,
		Mix:       cfg.mix,
		TargetQPS: cfg.qps,
		Classes:   map[string]ClassStats{},
	}
	classes := map[string]*ClassStats{classOLTP: {}, classOLAP: {}}
	wallStart := time.Now()
	for o := range outs {
		rep.Total.observe(o)
		classes[o.class].observe(o)
	}
	<-done
	wall := time.Since(wallStart)
	rep.DurationMS = wall.Milliseconds()
	rep.Total.finish(wall)
	for name, c := range classes {
		c.finish(wall)
		if c.Sent > 0 {
			rep.Classes[name] = *c
		}
	}
	if ctx.Err() != nil {
		return rep, fmt.Errorf("run interrupted: %w", ctx.Err())
	}
	return rep, nil
}

// send issues one query, measuring latency from the scheduled start.
func send(ctx context.Context, client *http.Client, base string, r request) outcome {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/query", strings.NewReader(r.body))
	if err != nil {
		return outcome{class: r.class, status: 0}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	elapsed := time.Since(r.at).Microseconds()
	if err != nil {
		return outcome{class: r.class, status: 0, elapsedUS: elapsed}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return outcome{class: r.class, status: resp.StatusCode, elapsedUS: elapsed}
}

// scrape saves one GET endpoint's body to a file.
func scrape(client *http.Client, url, path string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serverQuantiles reads a /metrics exposition page and reconstructs
// the server-side latency view per workload class from the
// crossbfs_query_latency_seconds histogram. The server buckets in
// powers of two of a microsecond — the same shape the client quantiles
// use — so the two views disagree by at most one bucket plus genuine
// queueing delay.
func serverQuantiles(page io.Reader) (map[string]ServerSide, error) {
	families, err := obs.ParseExposition(page)
	if err != nil {
		return nil, err
	}
	var fam *obs.ExpoFamily
	for i := range families {
		if families[i].Name == "crossbfs_query_latency_seconds" {
			fam = &families[i]
			break
		}
	}
	if fam == nil {
		return nil, errors.New("/metrics has no crossbfs_query_latency_seconds family")
	}
	out := map[string]ServerSide{}
	for _, sel := range []struct {
		name string
		want map[string]string
	}{
		{"total", nil},
		{classOLTP, map[string]string{"class": classOLTP}},
		{classOLAP, map[string]string{"class": classOLAP}},
	} {
		buckets := obs.HistogramBuckets(*fam, sel.want)
		var count float64
		for _, b := range buckets {
			if math.IsInf(b.LE, 1) {
				count = b.Count
			}
		}
		if count == 0 {
			continue
		}
		toUS := func(q float64) int64 {
			v := obs.HistogramQuantile(q, buckets)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return int64(v * 1e6)
		}
		out[sel.name] = ServerSide{
			Count: int64(count),
			P50US: toUS(0.50),
			P99US: toUS(0.99),
		}
	}
	return out, nil
}

func printReport(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "bfsload: %s on %s (%d vertices), mix=%s, target %.0f qps\n",
		rep.Graph, rep.Addr, rep.Vertices, rep.Mix, rep.TargetQPS)
	line := func(label string, c ClassStats) {
		fmt.Fprintf(w, "  %-6s sent=%d ok=%d 429=%d 504=%d err=%d  p50=%dµs p99=%dµs p999=%dµs  %.1f qps sustained\n",
			label, c.Sent, c.OK, c.Rejected, c.Deadline, c.Errors, c.P50US, c.P99US, c.P999US, c.AchvdQPS)
	}
	line("total", rep.Total)
	for _, class := range []string{classOLTP, classOLAP} {
		if c, ok := rep.Classes[class]; ok {
			line(class, c)
		}
	}
	if len(rep.Server) > 0 {
		fmt.Fprintln(w, "  server-side (from /metrics le-histogram):")
		for _, class := range []string{"total", classOLTP, classOLAP} {
			if s, ok := rep.Server[class]; ok {
				fmt.Fprintf(w, "  %-6s count=%d p50=%dµs p99=%dµs\n", class, s.Count, s.P50US, s.P99US)
			}
		}
	}
}

func run(ctx context.Context, cfg *config, stdout, stderr io.Writer) error {
	base := "http://" + cfg.addr
	client := &http.Client{}
	rep, err := drive(ctx, cfg, client, base)
	if err != nil {
		return err
	}
	if cfg.metricsOut != "" {
		if err := scrape(client, base+"/metrics", cfg.metricsOut); err != nil {
			return fmt.Errorf("scraping /metrics: %w", err)
		}
		page, err := os.Open(cfg.metricsOut)
		if err != nil {
			return fmt.Errorf("rereading scraped metrics: %w", err)
		}
		rep.Server, err = serverQuantiles(page)
		page.Close()
		if err != nil {
			return fmt.Errorf("parsing scraped metrics: %w", err)
		}
	}
	printReport(stdout, rep)
	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
	}
	if cfg.flightOut != "" {
		if err := scrape(client, base+"/debug/flight", cfg.flightOut); err != nil {
			return fmt.Errorf("fetching /debug/flight: %w", err)
		}
	}
	if rep.Total.OK == 0 {
		return errors.New("no query succeeded")
	}
	return nil
}

func realMain(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintf(stderr, "bfsload: %v\n", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "bfsload: %v\n", err)
		return 1
	}
	return 0
}

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }
