package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crossbfs/internal/rmat"
	"crossbfs/internal/serve"
)

// startTestDaemon serves a small R-MAT graph over httptest and returns
// the host:port bfsload flags expect.
func startTestDaemon(t *testing.T, cfg serve.Config) string {
	t.Helper()
	p := rmat.DefaultParams(10, 8)
	p.Seed = 7
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatalf("generating graph: %v", err)
	}
	s := serve.NewServer(cfg)
	if err := s.AddGraph("g", "rmat:10:8:7", g); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"defaults", nil, true},
		{"explicit mix", []string{"-mix", "oltp"}, true},
		{"bad mix", []string{"-mix", "htap"}, false},
		{"zero qps", []string{"-qps", "0"}, false},
		{"zipf at 1", []string{"-zipf", "1.0"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, os.Stderr)
			if tc.ok != (err == nil) {
				t.Fatalf("parseFlags(%v): err = %v, want ok=%v", tc.args, err, tc.ok)
			}
		})
	}
}

func TestQuantile(t *testing.T) {
	lat := make([]int64, 1000)
	for i := range lat {
		lat[i] = int64(i)
	}
	if q := quantile(lat, 0.50); q != 500 {
		t.Errorf("p50 = %d, want 500", q)
	}
	if q := quantile(lat, 0.999); q != 999 {
		t.Errorf("p999 = %d, want 999", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

func TestWorkloadMix(t *testing.T) {
	cfg := &config{mix: "mixed", zipfS: 1.2, seed: 3, khop: 2, multi: 4}
	w := newWorkload(cfg, 1024)
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		class, body := w.next()
		counts[class]++
		if !json.Valid([]byte(body)) {
			t.Fatalf("workload emitted invalid JSON: %s", body)
		}
	}
	if counts[classOLTP] == 0 || counts[classOLAP] == 0 {
		t.Fatalf("mixed workload skipped a class: %+v", counts)
	}
	if counts[classOLAP] > counts[classOLTP] {
		t.Errorf("mixed workload is OLAP-heavy: %+v", counts)
	}

	olap := newWorkload(&config{mix: "olap", zipfS: 1.2, seed: 3, khop: 2, multi: 4}, 1024)
	for i := 0; i < 50; i++ {
		if class, _ := olap.next(); class != classOLAP {
			t.Fatalf("olap mix emitted %s", class)
		}
	}
}

func TestWorkloadDeadlinePropagates(t *testing.T) {
	cfg := &config{mix: "oltp", zipfS: 1.2, seed: 3, deadlineMS: 250}
	w := newWorkload(cfg, 64)
	_, body := w.next()
	if !strings.Contains(body, `"deadline_ms": 250`) {
		t.Errorf("deadline missing from body: %s", body)
	}
}

// TestRunEndToEnd drives a short mixed run against an in-process
// daemon and checks the report and every output artifact.
func TestRunEndToEnd(t *testing.T) {
	addr := startTestDaemon(t, serve.Config{SampleK: 1, DefaultDeadline: 5 * time.Second})
	dir := t.TempDir()
	out := filepath.Join(dir, "load.json")
	metrics := filepath.Join(dir, "metrics.txt")
	flight := filepath.Join(dir, "flight.json")

	cfg, err := parseFlags([]string{
		"-addr", addr,
		"-qps", "400",
		"-duration", "500ms",
		"-mix", "mixed",
		"-seed", "11",
		"-out", out,
		"-scrape-metrics", metrics,
		"-flight-out", flight,
	}, os.Stderr)
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	var stdout bytes.Buffer
	if err := run(context.Background(), cfg, &stdout, os.Stderr); err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "qps sustained") {
		t.Errorf("stdout misses the summary line:\n%s", stdout.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Schema != LoadSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, LoadSchema)
	}
	if rep.Total.OK == 0 || rep.Total.P50US <= 0 || rep.Total.AchvdQPS <= 0 {
		t.Errorf("report totals implausible: %+v", rep.Total)
	}
	if rep.Total.P999US < rep.Total.P99US || rep.Total.P99US < rep.Total.P50US {
		t.Errorf("quantiles out of order: %+v", rep.Total)
	}
	if _, ok := rep.Classes[classOLTP]; !ok {
		t.Error("report has no oltp class")
	}

	mtext, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("reading scraped metrics: %v", err)
	}
	if !bytes.Contains(mtext, []byte("crossbfs_serve_requests_total")) {
		t.Error("scraped metrics misses serve counters")
	}

	// -scrape-metrics also reconstructs the server-side view from the
	// le-histogram: counts must match the client's OK tally exactly, and
	// the quantiles must be ordered and positive.
	srv, ok := rep.Server["total"]
	if !ok {
		t.Fatalf("report has no server-side total: %+v", rep.Server)
	}
	if srv.Count != rep.Total.OK {
		t.Errorf("server count %d != client OK %d", srv.Count, rep.Total.OK)
	}
	if srv.P50US <= 0 || srv.P99US < srv.P50US {
		t.Errorf("server quantiles implausible: %+v", srv)
	}
	if !strings.Contains(stdout.String(), "server-side") {
		t.Errorf("stdout misses the server-side block:\n%s", stdout.String())
	}
	ftext, err := os.ReadFile(flight)
	if err != nil {
		t.Fatalf("reading flight dump: %v", err)
	}
	if !bytes.Contains(ftext, []byte("traceEvents")) {
		t.Error("flight dump is not a trace file")
	}
}

// TestRunCountsRejections pins that 429s land in the rejected column,
// not in errors, when the daemon is sized to shed load.
func TestRunCountsRejections(t *testing.T) {
	addr := startTestDaemon(t, serve.Config{
		MaxConcurrent: 1, QueueDepth: -1, DefaultDeadline: 5 * time.Second,
	})
	cfg, err := parseFlags([]string{
		"-addr", addr,
		"-qps", "800",
		"-duration", "300ms",
		"-mix", "olap",
		"-seed", "5",
	}, os.Stderr)
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	var stdout bytes.Buffer
	// Rejections are expected; the run only fails if nothing succeeds.
	_ = run(context.Background(), cfg, &stdout, os.Stderr)
	if !strings.Contains(stdout.String(), "429=") {
		t.Errorf("summary misses the 429 column:\n%s", stdout.String())
	}
}

func TestRunUnreachableServer(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:1", "-qps", "10", "-duration", "100ms"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := run(context.Background(), cfg, &stdout, os.Stderr); err == nil {
		t.Error("run against a dead server succeeded")
	}
}

func TestRealMainBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-mix", "bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("realMain = %d, want 2", code)
	}
}

// TestServerQuantiles pins the exposition → quantile reconstruction on
// a hand-written page: 3 observations at ≤1ms and 1 at ≤1s for oltp.
func TestServerQuantiles(t *testing.T) {
	page := `# HELP crossbfs_query_latency_seconds Query service time.
# TYPE crossbfs_query_latency_seconds histogram
crossbfs_query_latency_seconds_bucket{class="oltp",kind="reach",le="0.001"} 3
crossbfs_query_latency_seconds_bucket{class="oltp",kind="reach",le="1"} 4
crossbfs_query_latency_seconds_bucket{class="oltp",kind="reach",le="+Inf"} 4
crossbfs_query_latency_seconds_sum{class="oltp",kind="reach"} 1.003
crossbfs_query_latency_seconds_count{class="oltp",kind="reach"} 4
`
	srv, err := serverQuantiles(strings.NewReader(page))
	if err != nil {
		t.Fatalf("serverQuantiles: %v", err)
	}
	oltp, ok := srv[classOLTP]
	if !ok {
		t.Fatalf("no oltp entry: %+v", srv)
	}
	if oltp.Count != 4 || oltp.P50US != 1000 || oltp.P99US != 1000000 {
		t.Errorf("oltp = %+v, want count 4, p50 1000µs, p99 1000000µs", oltp)
	}
	total := srv["total"]
	if total.Count != 4 {
		t.Errorf("total count = %d, want 4", total.Count)
	}
	if _, ok := srv[classOLAP]; ok {
		t.Error("olap entry with no olap traffic")
	}
}

// TestServerQuantilesMissingFamily pins the error path: a legacy-only
// page (no histogram family) must not crash the report.
func TestServerQuantilesMissingFamily(t *testing.T) {
	if _, err := serverQuantiles(strings.NewReader("crossbfs_serve_requests_total 7\n")); err == nil {
		t.Error("page without the latency family accepted")
	}
}
