// Command bfsd is the BFS query daemon: it loads one or more graphs at
// startup, plans a kernel per graph, and serves reachability, parent
// path, k-hop, and multi-source queries over HTTP/JSON with
// per-request deadlines, bounded admission, and the repo's standard
// telemetry (metrics page + sampled flight recorder).
//
// Examples:
//
//	bfsd -graph social=rmat:18:16 -listen :8080
//	bfsd -graph web=crawl.csr -graph roads=roads.txt -shards 4
//	bfsd -graph g=rmat:14:8:42 -listen 127.0.0.1:0 -addrfile bfsd.addr
//	bfsd -graph g=rmat:16:16 -sample 1 -deadline 500ms -queue 128
//
// The serving surface, query grammar, and failure semantics are
// documented in SERVING.md; internal/serve holds the engine-facing
// logic so it is testable without sockets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
	"crossbfs/internal/serve"
)

// graphSpec is one -graph flag value: a name bound to an R-MAT recipe
// or a file path.
type graphSpec struct {
	name string
	spec string
}

// graphSpecs collects repeated -graph flags.
type graphSpecs []graphSpec

func (g *graphSpecs) String() string {
	parts := make([]string, len(*g))
	for i, s := range *g {
		parts[i] = s.name + "=" + s.spec
	}
	return strings.Join(parts, ",")
}

func (g *graphSpecs) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" || spec == "" {
		return fmt.Errorf("want name=rmat:SCALE:EF[:SEED] or name=path, got %q", v)
	}
	*g = append(*g, graphSpec{name: name, spec: spec})
	return nil
}

// sloSpecs collects repeated -slo flags.
type sloSpecs []string

func (s *sloSpecs) String() string { return strings.Join(*s, ",") }

func (s *sloSpecs) Set(v string) error {
	if _, err := serve.ParseObjectives([]string{v}); err != nil {
		return err
	}
	*s = append(*s, v)
	return nil
}

// config carries every bfsd knob so tests can drive run() without a
// flag set or a real signal.
type config struct {
	graphs   graphSpecs
	listen   string
	addrFile string

	maxConcurrent int
	queueDepth    int
	deadline      time.Duration
	maxDeadline   time.Duration
	shards        int
	sampleK       int
	sampleSeed    uint64
	flightKeep    int
	flightEvents  int

	slo         sloSpecs
	sloPoll     time.Duration
	sloCooldown time.Duration
	incidentDir string
}

func parseFlags(args []string, stderr *os.File) (*config, error) {
	fs := flag.NewFlagSet("bfsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.Var(&cfg.graphs, "graph", "graph to serve, as name=rmat:SCALE:EF[:SEED] or name=path (repeatable)")
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:8080", "address to listen on (:0 picks a free port)")
	fs.StringVar(&cfg.addrFile, "addrfile", "", "write the bound address to this file (for scripts using :0)")
	fs.IntVar(&cfg.maxConcurrent, "max-concurrent", 0, "traversals executing at once (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.queueDepth, "queue", serve.DefaultQueueDepth, "admission queue depth; beyond it requests get 429")
	fs.DurationVar(&cfg.deadline, "deadline", serve.DefaultDeadline, "default per-query deadline")
	fs.DurationVar(&cfg.maxDeadline, "max-deadline", serve.DefaultMaxDeadline, "cap on client-requested deadlines")
	fs.IntVar(&cfg.shards, "shards", 0, "goroutine ranks for the partitioned engine on large graphs (0/1 = off)")
	fs.IntVar(&cfg.sampleK, "sample", serve.DefaultSampleK, "keep 1-in-K traversals in the flight recorder")
	fs.Uint64Var(&cfg.sampleSeed, "sample-seed", 0, "sampler seed")
	fs.IntVar(&cfg.flightKeep, "flight-keep", 0, "traversals retained by the flight recorder (0 = default)")
	fs.IntVar(&cfg.flightEvents, "flight-events", 0, "event cap of the flight recorder (0 = default)")
	fs.Var(&cfg.slo, "slo", `SLO objective, e.g. "oltp p99 < 2ms over 5m" or "error ratio < 0.1% over 30m" (repeatable)`)
	fs.DurationVar(&cfg.sloPoll, "slo-poll", serve.DefaultSLOPoll, "SLO burn-rate evaluation interval")
	fs.DurationVar(&cfg.sloCooldown, "slo-cooldown", serve.DefaultSLOCooldown, "minimum spacing between incident captures")
	fs.StringVar(&cfg.incidentDir, "incident-dir", "", "write breach incident bundles (pprof + flight dump) under this directory")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(cfg.graphs) == 0 {
		return nil, errors.New("at least one -graph name=spec is required")
	}
	return cfg, nil
}

// loadGraph materializes one -graph spec: "rmat:SCALE:EF[:SEED]"
// generates, ".csr" containers go through graph.Load, anything else is
// read as a whitespace edge list.
func loadGraph(spec string) (*graph.CSR, error) {
	if rest, ok := strings.CutPrefix(spec, "rmat:"); ok {
		fields := strings.Split(rest, ":")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("rmat spec %q: want rmat:SCALE:EF[:SEED]", spec)
		}
		scale, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("rmat scale %q: %w", fields[0], err)
		}
		ef, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("rmat edge factor %q: %w", fields[1], err)
		}
		p := rmat.DefaultParams(scale, ef)
		if len(fields) == 3 {
			seed, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("rmat seed %q: %w", fields[2], err)
			}
			p.Seed = seed
		}
		return rmat.Generate(p)
	}
	if strings.HasSuffix(spec, ".csr") {
		return graph.Load(spec)
	}
	g, _, err := graph.LoadEdgeList(spec)
	return g, err
}

// buildServer constructs the serve core (no graphs yet — loadGraphs
// populates it while /readyz already answers 503).
func buildServer(cfg *config, stderr *os.File) (*serve.Server, error) {
	objectives, err := serve.ParseObjectives(cfg.slo)
	if err != nil {
		return nil, err
	}
	if len(objectives) > 0 && cfg.incidentDir != "" {
		if err := os.MkdirAll(cfg.incidentDir, 0o755); err != nil {
			return nil, fmt.Errorf("incident dir: %w", err)
		}
	}
	s := serve.NewServer(serve.Config{
		MaxConcurrent:   cfg.maxConcurrent,
		QueueDepth:      cfg.queueDepth,
		DefaultDeadline: cfg.deadline,
		MaxDeadline:     cfg.maxDeadline,
		Shards:          cfg.shards,
		SampleK:         cfg.sampleK,
		SampleSeed:      cfg.sampleSeed,
		FlightKeep:      cfg.flightKeep,
		FlightMaxEvents: cfg.flightEvents,
		Objectives:      objectives,
		SLOPoll:         cfg.sloPoll,
		SLOCooldown:     cfg.sloCooldown,
		IncidentDir:     cfg.incidentDir,
		OnIncident: func(dir string, v obs.Verdict, err error) {
			if err != nil {
				fmt.Fprintf(stderr, "bfsd: incident capture failed (%s): %v\n", v.Objective, err)
				return
			}
			fmt.Fprintf(stderr, "bfsd: SLO breach (%s, burn %.1fx): incident bundle at %s\n",
				v.Objective, v.BurnLong, dir)
		},
	})
	return s, nil
}

// loadGraphs materializes every -graph spec into the core.
func loadGraphs(s *serve.Server, cfg *config, stderr *os.File) error {
	for _, gs := range cfg.graphs {
		start := time.Now()
		g, err := loadGraph(gs.spec)
		if err != nil {
			return fmt.Errorf("loading graph %s=%s: %w", gs.name, gs.spec, err)
		}
		if err := s.AddGraph(gs.name, gs.spec, g); err != nil {
			return fmt.Errorf("registering graph %s: %w", gs.name, err)
		}
		fmt.Fprintf(stderr, "bfsd: graph %s: %d vertices, %d edges, engine %s (%.1fs)\n",
			gs.name, g.NumVertices(), g.NumEdges(),
			s.Graphs()[len(s.Graphs())-1].Engine, time.Since(start).Seconds())
	}
	return nil
}

// run is the daemon body. Order matters for the probes: bind and serve
// first (so /healthz and a 503 /readyz answer while graphs build), then
// load graphs, then arm readiness and announce the address — the
// addrfile appears only once the daemon would pass /readyz. Shutdown
// drains in reverse: readiness drops, the listener closes, then the
// serve core waits out in-flight traversals.
func run(ctx context.Context, cfg *config, stderr *os.File) error {
	core, err := buildServer(cfg, stderr)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		core.Close()
		return fmt.Errorf("listening on %s: %w", cfg.listen, err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: core.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	if err := loadGraphs(core, cfg, stderr); err != nil {
		hs.Close()
		core.Close()
		<-errc
		return err
	}
	core.SetReady(true)
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(addr+"\n"), 0o644); err != nil {
			hs.Close()
			core.Close()
			<-errc
			return fmt.Errorf("writing addrfile: %w", err)
		}
	}
	fmt.Fprintf(stderr, "bfsd: serving %d graph(s) on http://%s\n", len(core.Graphs()), addr)

	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "bfsd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "bfsd: shutdown: %v\n", err)
		}
		core.Close()
		<-errc // Serve has returned http.ErrServerClosed
		return nil
	case err := <-errc:
		core.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func realMain(args []string, stderr *os.File) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintf(stderr, "bfsd: %v\n", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, stderr); err != nil {
		fmt.Fprintf(stderr, "bfsd: %v\n", err)
		return 1
	}
	return 0
}

func main() { os.Exit(realMain(os.Args[1:], os.Stderr)) }
