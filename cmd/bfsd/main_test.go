package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"one rmat graph", []string{"-graph", "g=rmat:10:8"}, true},
		{"two graphs", []string{"-graph", "a=rmat:10:8", "-graph", "b=x.csr"}, true},
		{"no graphs", []string{"-listen", ":0"}, false},
		{"malformed graph", []string{"-graph", "nospec"}, false},
		{"empty name", []string{"-graph", "=rmat:10:8"}, false},
		{"slo objective", []string{"-graph", "g=rmat:10:8", "-slo", "oltp p99 < 2ms over 5m", "-slo", "error ratio < 1% over 10m"}, true},
		{"malformed slo", []string{"-graph", "g=rmat:10:8", "-slo", "p99 fast please"}, false},
		{"unknown slo selector", []string{"-graph", "g=rmat:10:8", "-slo", "backend p99 < 2ms over 5m"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, os.Stderr)
			if tc.ok && err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("parseFlags(%v) accepted, want error (cfg %+v)", tc.args, cfg)
			}
		})
	}
}

func TestLoadGraph(t *testing.T) {
	t.Run("rmat", func(t *testing.T) {
		g, err := loadGraph("rmat:10:8:7")
		if err != nil {
			t.Fatalf("loadGraph: %v", err)
		}
		if g.NumVertices() != 1<<10 {
			t.Errorf("vertices = %d, want %d", g.NumVertices(), 1<<10)
		}
	})
	t.Run("rmat deterministic by seed", func(t *testing.T) {
		a, err := loadGraph("rmat:9:4:5")
		if err != nil {
			t.Fatal(err)
		}
		b, err := loadGraph("rmat:9:4:5")
		if err != nil {
			t.Fatal(err)
		}
		if a.NumEdges() != b.NumEdges() {
			t.Errorf("same spec, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
		}
	})
	t.Run("edge list file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "tiny.txt")
		if err := os.WriteFile(path, []byte("0 1\n1 2\n2 3\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := loadGraph(path)
		if err != nil {
			t.Fatalf("loadGraph(%s): %v", path, err)
		}
		if g.NumVertices() != 4 {
			t.Errorf("vertices = %d, want 4", g.NumVertices())
		}
	})
	t.Run("bad specs", func(t *testing.T) {
		for _, spec := range []string{"rmat:", "rmat:x:8", "rmat:10:y", "rmat:10:8:z", "/does/not/exist.csr", "/does/not/exist.txt"} {
			if _, err := loadGraph(spec); err == nil {
				t.Errorf("loadGraph(%q) succeeded, want error", spec)
			}
		}
	})
}

// TestDaemonEndToEnd boots the daemon on a loopback :0 port, resolves
// the bound address through -addrfile, runs a query, and shuts down
// via context cancel — the same lifecycle scripts/serve-smoke.sh uses.
func TestDaemonEndToEnd(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "bfsd.addr")
	cfg, err := parseFlags([]string{
		"-graph", "g=rmat:10:8:7",
		"-listen", "127.0.0.1:0",
		"-addrfile", addrFile,
		"-sample", "1",
		"-slo", "oltp p99 < 100ms over 1m",
	}, os.Stderr)
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, os.Stderr) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(data) > 0 {
			addr = strings.TrimSpace(string(data))
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before binding: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if addr == "" {
		cancel()
		t.Fatal("addrfile never appeared")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var h struct {
		Status string `json:"status"`
		Graphs int    `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding /healthz: %v", err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Graphs != 1 {
		t.Fatalf("/healthz = %+v", h)
	}

	// The addrfile appears only after readiness is armed, so /readyz
	// must already be 200.
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz = %d after addrfile, want 200", resp.StatusCode)
	}

	// The -slo objective shows up on /debug/slo.
	resp, err = http.Get(base + "/debug/slo")
	if err != nil {
		t.Fatalf("GET /debug/slo: %v", err)
	}
	var slo struct {
		Objectives []struct {
			Objective string `json:"objective"`
		} `json:"objectives"`
	}
	sloBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(sloBody, &slo); err != nil {
		t.Fatalf("decoding /debug/slo: %v (%s)", err, sloBody)
	}
	if len(slo.Objectives) != 1 || slo.Objectives[0].Objective != "oltp p99 < 100ms over 1m" {
		t.Errorf("/debug/slo = %s", sloBody)
	}

	resp, err = http.Post(base+"/query", "application/json",
		strings.NewReader(`{"kind": "khop", "source": 1, "k": 2}`))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/query status %d: %s", resp.StatusCode, body)
	}
	var q struct {
		Kind    string `json:"kind"`
		WithinK int64  `json:"within_k"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("decoding /query: %v", err)
	}
	if q.Kind != "khop" {
		t.Errorf("kind = %q, want khop", q.Kind)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestGraphSpecsString(t *testing.T) {
	var gs graphSpecs
	if err := gs.Set("a=rmat:10:8"); err != nil {
		t.Fatal(err)
	}
	if err := gs.Set("b=web.csr"); err != nil {
		t.Fatal(err)
	}
	if got := gs.String(); got != "a=rmat:10:8,b=web.csr" {
		t.Errorf("String() = %q", got)
	}
}

func TestRealMainBadFlags(t *testing.T) {
	if code := realMain([]string{"-graph", "broken"}, os.Stderr); code != 2 {
		t.Errorf("realMain with bad flags = %d, want 2", code)
	}
	if code := realMain([]string{"-graph", "g=rmat:10:8", "-listen", "256.0.0.1:-1"}, os.Stderr); code != 1 {
		t.Errorf("realMain with bad listen = %d, want 1", code)
	}
}

func TestLoadGraphRejectsEmptyRMATFields(t *testing.T) {
	if _, err := loadGraph(fmt.Sprintf("rmat:%d:8", -1)); err == nil {
		t.Error("negative scale accepted")
	}
}
