package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodPage = `# HELP crossbfs_demo_total A demo counter.
# TYPE crossbfs_demo_total counter
crossbfs_demo_total{engine="hybrid"} 3
# HELP crossbfs_demo_seconds A demo histogram.
# TYPE crossbfs_demo_seconds histogram
crossbfs_demo_seconds_bucket{le="0.001"} 1
crossbfs_demo_seconds_bucket{le="+Inf"} 2
crossbfs_demo_seconds_sum 1.5
crossbfs_demo_seconds_count 2
crossbfs_flat_legacy 7
`

func write(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "page.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExpcheckValidFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{write(t, goodPage)}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"ok", "3 families", "1 histograms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q: %s", want, out)
		}
	}
}

func TestExpcheckRejectsMalformed(t *testing.T) {
	// The histogram misses its +Inf bucket.
	bad := "# TYPE crossbfs_h histogram\ncrossbfs_h_bucket{le=\"1\"} 1\ncrossbfs_h_sum 1\ncrossbfs_h_count 1\n"
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{write(t, bad)}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d for malformed page, want 1 (%s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "crossbfs_h") {
		t.Errorf("error does not name the family: %s", stderr.String())
	}
}

func TestExpcheckURL(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(goodPage))
	}))
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-url", ts.URL}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
}

func TestExpcheckSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-summary", write(t, goodPage)}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	for _, want := range []string{"counter", "histogram", "untyped", "crossbfs_demo_seconds"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("summary misses %q:\n%s", want, stdout.String())
		}
	}
}

func TestExpcheckUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-arg exit %d, want 2", code)
	}
	if code := realMain([]string{"-url", "http://x", "file"}, &stdout, &stderr); code != 2 {
		t.Errorf("url+file exit %d, want 2", code)
	}
}
