// Command expcheck validates a Prometheus text exposition page — a
// saved /metrics scrape or a live endpoint — against the format rules
// internal/obs renders and documents in OBSERVABILITY.md: HELP/TYPE
// metadata before samples, contiguous families, no duplicate series,
// well-formed histograms (cumulative buckets, +Inf, _count/_sum). It is
// the assertion half of `make metrics-smoke`.
//
//	bfsload -addr $(cat bfsd.addr) -scrape-metrics m.txt && expcheck m.txt
//	expcheck -url http://127.0.0.1:8080/metrics
//	expcheck -summary m.txt
//
// Exit codes: 0 the page is a valid exposition, 1 it is malformed or
// unreadable, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"crossbfs/internal/obs"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("expcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "scrape this URL instead of reading a file")
	summary := fs.Bool("summary", false, "list every family with its type and sample count")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var (
		page io.ReadCloser
		name string
	)
	switch {
	case *url != "" && fs.NArg() == 0:
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(*url)
		if err != nil {
			fmt.Fprintf(stderr, "expcheck: %v\n", err)
			return 1
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fmt.Fprintf(stderr, "expcheck: GET %s: status %d\n", *url, resp.StatusCode)
			return 1
		}
		page, name = resp.Body, *url
	case *url == "" && fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "expcheck: %v\n", err)
			return 1
		}
		page, name = f, fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "usage: expcheck <file> | expcheck -url http://host:port/metrics")
		return 2
	}
	defer page.Close()

	if *summary {
		families, err := obs.ParseExposition(page)
		if err != nil {
			fmt.Fprintf(stderr, "expcheck: %s: %v\n", name, err)
			return 1
		}
		for _, f := range families {
			fmt.Fprintf(stdout, "%-12s %-50s %d samples\n", f.Type, f.Name, len(f.Samples))
		}
		return 0
	}
	stats, err := obs.ValidateExposition(page)
	if err != nil {
		fmt.Fprintf(stderr, "expcheck: %s: %v\n", name, err)
		return 1
	}
	fmt.Fprintf(stdout, "expcheck: %s: ok (%d families, %d samples, %d histograms)\n",
		name, stats.Families, stats.Samples, stats.Histograms)
	return 0
}
