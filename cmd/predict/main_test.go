package main

import (
	"path/filepath"
	"testing"

	"crossbfs/internal/archsim"
	"crossbfs/internal/rmat"
	"crossbfs/internal/tuner"
)

// trainedModel writes a tiny model for CLI tests.
func trainedModel(t *testing.T) string {
	t.Helper()
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	spec := tuner.CorpusSpec{
		Scales:          []int{9, 10},
		EdgeFactors:     []int{8},
		ProbSets:        [][4]float64{{0.57, 0.19, 0.19, 0.05}},
		Seeds:           []uint64{1},
		SourcesPerGraph: 1,
		ArchPairs:       [][2]archsim.Arch{{cpu, gpu}, {gpu, gpu}},
		Link:            archsim.PCIe(),
		Candidates:      tuner.CandidateGrid(8, 6, 300, 300),
	}
	samples, err := tuner.BuildCorpus(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := tuner.Train(samples, tuner.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPredictGenerated(t *testing.T) {
	model := trainedModel(t)
	if err := run(model, 10, 8, 1, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestPredictFromGraphFile(t *testing.T) {
	model := trainedModel(t)
	g, err := rmat.Generate(rmat.DefaultParams(9, 8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := run(model, 9, 8, 1, path, false); err != nil {
		t.Fatal(err)
	}
}

func TestPredictMissingModel(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "none.gob"), 10, 8, 1, "", false); err == nil {
		t.Error("missing model accepted")
	}
}
