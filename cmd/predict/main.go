// Command predict is the paper's on-line stage as a standalone tool:
// load a trained switching-point model (cmd/trainer), describe a graph
// (either by R-MAT parameters or by loading a CSR file), and print the
// predicted (M1, N1) boundary and (M2, N2) coprocessor thresholds for
// Algorithm 3, optionally simulating the resulting plan.
//
//	predict -model model.gob -scale 16 -edgefactor 16
//	predict -model model.gob -graph g.csr -simulate
package main

import (
	"flag"
	"fmt"
	"os"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
	"crossbfs/internal/tuner"
)

func main() {
	var (
		modelPath  = flag.String("model", "model.gob", "trained model (see cmd/trainer)")
		scale      = flag.Int("scale", 16, "R-MAT SCALE when generating")
		edgeFactor = flag.Int("edgefactor", 16, "R-MAT edge factor when generating")
		seed       = flag.Uint64("seed", 1, "R-MAT seed")
		graphPath  = flag.String("graph", "", "load a CSR graph file instead of generating")
		simulate   = flag.Bool("simulate", false, "also simulate the adaptive plan vs a fixed one")
	)
	flag.Parse()

	if err := run(*modelPath, *scale, *edgeFactor, *seed, *graphPath, *simulate); err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
}

func run(modelPath string, scale, edgeFactor int, seed uint64, graphPath string, simulate bool) error {
	model, err := tuner.LoadModel(modelPath)
	if err != nil {
		return err
	}

	params := rmat.DefaultParams(scale, edgeFactor)
	params.Seed = seed
	var g *graph.CSR
	if graphPath != "" {
		if g, err = graph.Load(graphPath); err != nil {
			return err
		}
		// Graph files do not carry construction parameters; assume the
		// Graph 500 defaults for the A-D features and derive V, E.
		fmt.Println("note: assuming Graph 500 A/B/C/D for a loaded graph file")
	} else {
		if g, err = rmat.Generate(params); err != nil {
			return err
		}
	}
	gi := tuner.GraphInfoFor(params, g)

	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	boundary := model.Predict(tuner.Sample{Graph: gi, TD: tuner.ArchInfoOf(cpu), BU: tuner.ArchInfoOf(gpu)})
	onGPU := model.Predict(tuner.Sample{Graph: gi, TD: tuner.ArchInfoOf(gpu), BU: tuner.ArchInfoOf(gpu)})

	fmt.Printf("graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("predicted CPU->GPU boundary (M1, N1): (%.1f, %.1f)\n", boundary.M, boundary.N)
	fmt.Printf("predicted on-GPU switching  (M2, N2): (%.1f, %.1f)\n", onGPU.M, onGPU.N)

	if !simulate {
		return nil
	}
	src, ok := firstSource(g)
	if !ok {
		return fmt.Errorf("graph has no edges to traverse")
	}
	tr, err := bfs.TraceFrom(g, src)
	if err != nil {
		return err
	}
	link := archsim.PCIe()
	adaptive := core.Simulate(tr, core.CrossPlan{
		Host: cpu, Coprocessor: gpu,
		M1: boundary.M, N1: boundary.N, M2: onGPU.M, N2: onGPU.N,
	}, link)
	fixed := core.Simulate(tr, core.CrossPlan{
		Host: cpu, Coprocessor: gpu, M1: 64, N1: 64, M2: 64, N2: 64,
	}, link)
	fmt.Printf("\nsimulated from source %d:\n", src)
	fmt.Printf("  adaptive plan:  %.6fs (%.3f GTEPS)\n", adaptive.Total, adaptive.GTEPS())
	fmt.Printf("  fixed M=N=64:   %.6fs (%.3f GTEPS)\n", fixed.Total, fixed.GTEPS())
	return nil
}

func firstSource(g *graph.CSR) (int32, bool) {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v), true
		}
	}
	return 0, false
}
