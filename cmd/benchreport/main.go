// Command benchreport is the continuous perf-regression harness: it
// runs the repo's benchmarks, writes a machine-readable snapshot
// (BENCH_<n>.json at the repo root), and compares the fresh numbers
// against the previous snapshot. A regression beyond the threshold
// exits nonzero, which is what lets `make bench-report` and the CI
// bench-report job gate the perf trajectory the same way `make verify`
// gates correctness.
//
// Usage:
//
//	benchreport [flags]
//
//	-dir string        directory holding BENCH_<n>.json snapshots (default ".")
//	-pkgs string       comma-separated packages to benchmark (default "./internal/bfs")
//	-bench string      benchmark regex handed to go test (default covers the
//	                   kernel, RunMany, and recorder-overhead benches)
//	-benchtime string  go test -benchtime value (default "1x")
//	-count int         go test -count value (default 1)
//	-threshold float   relative regression tolerance (default 0.35 = 35%)
//	-out string        snapshot path to write (default: next BENCH_<n>.json in -dir)
//	-prev string       snapshot to compare against (default: highest BENCH_<n>.json in -dir)
//	-cur string        compare-only mode: skip the bench run and compare -cur against -prev
//	-serving string    bfsload report (crossbfs-load/v1) to fold into the
//	                   snapshot's "serving" section
//	-v                 log the raw go test output
//
// Snapshot schema (BENCH_<n>.json, "crossbfs-bench/v1"):
//
//	{
//	  "schema": "crossbfs-bench/v1",
//	  "go": "go1.22.x", "goos": "linux", "goarch": "amd64", "gomaxprocs": 8,
//	  "benchtime": "1x",
//	  "benchmarks": {
//	    "BenchmarkHybrid": {
//	      "iters":     <int>,    // benchmark iterations run
//	      "ns_op":     <float>,  // nanoseconds per op
//	      "b_op":      <int>,    // bytes allocated per op (-1 when unreported)
//	      "allocs_op": <int>,    // allocations per op (-1 when unreported)
//	      "mb_s":      <float>,  // throughput (0 when unreported)
//	      "mteps":     <float>   // millions of traversed edges/s (0 when unreported);
//	                             // from the MTEPS metric, else MB/s ÷ 4
//	                             // (benches SetBytes 4 bytes per edge)
//	    }, ...
//	  },
//	  "overhead_pct": {          // recorder-overhead deltas, from the
//	    "live_vs_nop": <float>,  // BenchmarkRunManyRecorderOverhead/<mode>
//	    ...                      // ns/op relative to the nop mode, percent
//	  }
//	}
//
// Comparison rules, applied per benchmark present in both snapshots:
//
//   - ns/op:  regression when cur > prev × (1 + threshold)
//   - MTEPS:  regression when cur < prev ÷ (1 + threshold)
//   - allocs/op: 0 → nonzero is ALWAYS a regression (machine-independent
//     gate — BenchmarkRunNopRecorder's 0 allocs/op contract); otherwise
//     the threshold ratio applies
//   - benchmarks missing from either side are warnings, never failures
//   - serving (when both snapshots carry the section, same mix):
//     p50/p99/p999 regress when cur > prev × (1 + threshold), sustained
//     QPS when cur < prev ÷ (1 + threshold); a section on only one side
//     (or a mix change) is a warning
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage or
// operational error (bench run failed, unreadable snapshot).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the serialized form of one benchmark run.
type Snapshot struct {
	Schema     string                `json:"schema"`
	Go         string                `json:"go"`
	GOOS       string                `json:"goos"`
	GOARCH     string                `json:"goarch"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Benchtime  string                `json:"benchtime"`
	Benchmarks map[string]BenchEntry `json:"benchmarks"`
	// OverheadPct reports each RunManyRecorderOverhead mode's ns/op
	// delta vs the nop mode, in percent (live 5.0 = live is 5% slower).
	OverheadPct map[string]float64 `json:"overhead_pct,omitempty"`
	// Serving holds the bfsd/bfsload serving numbers folded in via
	// -serving; nil when the snapshot carries none.
	Serving *ServingEntry `json:"serving,omitempty"`
}

// ServingEntry is the serving-latency section of a snapshot: the
// totals of one bfsload run (-serving report.json). Latencies regress
// like ns/op, sustained QPS regresses like MTEPS.
type ServingEntry struct {
	Mix          string  `json:"mix"`
	TargetQPS    float64 `json:"target_qps"`
	SustainedQPS float64 `json:"sustained_qps"`
	P50US        int64   `json:"p50_us"`
	P99US        int64   `json:"p99_us"`
	P999US       int64   `json:"p999_us"`
	Rejected     int64   `json:"rejected"`
	Deadline     int64   `json:"deadline"`
}

// BenchEntry is one benchmark's measured values.
type BenchEntry struct {
	Iters    int     `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
	MBs      float64 `json:"mb_s"`
	MTEPS    float64 `json:"mteps"`
}

const schemaV1 = "crossbfs-bench/v1"

// loadSchemaV1 is the bfsload report schema -serving accepts.
const loadSchemaV1 = "crossbfs-load/v1"

// readServingReport folds a bfsload JSON report's totals into a
// ServingEntry.
func readServingReport(path string) (*ServingEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep struct {
		Schema    string  `json:"schema"`
		Mix       string  `json:"mix"`
		TargetQPS float64 `json:"target_qps"`
		Total     struct {
			OK           int64   `json:"ok"`
			Rejected     int64   `json:"rejected"`
			Deadline     int64   `json:"deadline"`
			P50US        int64   `json:"p50_us"`
			P99US        int64   `json:"p99_us"`
			P999US       int64   `json:"p999_us"`
			SustainedQPS float64 `json:"sustained_qps"`
		} `json:"total"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != loadSchemaV1 {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, loadSchemaV1)
	}
	if rep.Total.OK == 0 {
		return nil, fmt.Errorf("%s: load run has no successful queries", path)
	}
	return &ServingEntry{
		Mix:          rep.Mix,
		TargetQPS:    rep.TargetQPS,
		SustainedQPS: rep.Total.SustainedQPS,
		P50US:        rep.Total.P50US,
		P99US:        rep.Total.P99US,
		P999US:       rep.Total.P999US,
		Rejected:     rep.Total.Rejected,
		Deadline:     rep.Total.Deadline,
	}, nil
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName[-P]  <iters>  <ns> ns/op  [<value> <unit>]...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op((?:\s+[\d.]+ [^\s]+)*)\s*$`)

// metricPair picks the trailing value/unit pairs off a bench line.
var metricPair = regexp.MustCompile(`([\d.]+) ([^\s]+)`)

// parseBenchOutput extracts benchmark entries from go test output.
// Sub-benchmark names keep their slashes; the -P GOMAXPROCS suffix is
// stripped so snapshots from differently-sized machines align.
func parseBenchOutput(out string) map[string]BenchEntry {
	entries := make(map[string]BenchEntry)
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		e := BenchEntry{Iters: iters, NsOp: ns, BOp: -1, AllocsOp: -1}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, _ := strconv.ParseFloat(pair[1], 64)
			switch pair[2] {
			case "B/op":
				e.BOp = int64(v)
			case "allocs/op":
				e.AllocsOp = int64(v)
			case "MB/s":
				e.MBs = v
			case "MTEPS":
				e.MTEPS = v
			}
		}
		if e.MTEPS == 0 && e.MBs > 0 {
			// The TEPS benches SetBytes(edges*4): MB/s ÷ 4 = M edges/s.
			e.MTEPS = e.MBs / 4
		}
		entries[m[1]] = e
	}
	return entries
}

// overheadDeltas derives the recorder-overhead percentages from the
// RunManyRecorderOverhead sub-benchmarks, relative to the nop mode.
func overheadDeltas(entries map[string]BenchEntry) map[string]float64 {
	const prefix = "BenchmarkRunManyRecorderOverhead/"
	nop, ok := entries[prefix+"nop"]
	if !ok || nop.NsOp == 0 {
		return nil
	}
	deltas := make(map[string]float64)
	for name, e := range entries {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		mode := strings.TrimPrefix(name, prefix)
		if mode == "nop" {
			continue
		}
		deltas[mode+"_vs_nop"] = (e.NsOp - nop.NsOp) / nop.NsOp * 100
	}
	if len(deltas) == 0 {
		return nil
	}
	return deltas
}

// Regression describes one above-threshold change.
type Regression struct {
	Bench  string
	Metric string
	Prev   float64
	Cur    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.6g -> %.6g", r.Bench, r.Metric, r.Prev, r.Cur)
}

// compare applies the regression rules; it returns the regressions and
// the names missing from either side (warnings).
func compare(prev, cur *Snapshot, threshold float64) (regs []Regression, missing []string) {
	names := make([]string, 0, len(prev.Benchmarks))
	for name := range prev.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := prev.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			missing = append(missing, name+" (gone)")
			continue
		}
		if p.NsOp > 0 && c.NsOp > p.NsOp*(1+threshold) {
			regs = append(regs, Regression{name, "ns/op", p.NsOp, c.NsOp})
		}
		if p.AllocsOp == 0 && c.AllocsOp > 0 {
			// The machine-independent gate: a 0 allocs/op benchmark that
			// starts allocating regressed no matter the threshold.
			regs = append(regs, Regression{name, "allocs/op", 0, float64(c.AllocsOp)})
		} else if p.AllocsOp > 0 && c.AllocsOp >= 0 &&
			float64(c.AllocsOp) > float64(p.AllocsOp)*(1+threshold) {
			regs = append(regs, Regression{name, "allocs/op", float64(p.AllocsOp), float64(c.AllocsOp)})
		}
		if p.MTEPS > 0 && c.MTEPS > 0 && c.MTEPS < p.MTEPS/(1+threshold) {
			regs = append(regs, Regression{name, "MTEPS", p.MTEPS, c.MTEPS})
		}
	}
	for name := range cur.Benchmarks {
		if _, ok := prev.Benchmarks[name]; !ok {
			missing = append(missing, name+" (new)")
		}
	}
	regs, missing = compareServing(prev.Serving, cur.Serving, threshold, regs, missing)
	sort.Strings(missing)
	return regs, missing
}

// compareServing applies the serving-section rules: latency quantiles
// regress upward like ns/op, sustained QPS regresses downward like
// MTEPS, and a section present on only one side is a warning (matching
// the missing-benchmark rule). Mismatched mixes aren't comparable and
// also warn.
func compareServing(p, c *ServingEntry, threshold float64, regs []Regression, missing []string) ([]Regression, []string) {
	switch {
	case p == nil && c == nil:
		return regs, missing
	case c == nil:
		return regs, append(missing, "serving section (gone)")
	case p == nil:
		return regs, append(missing, "serving section (new)")
	case p.Mix != c.Mix:
		return regs, append(missing, fmt.Sprintf("serving section (mix %s -> %s, not comparable)", p.Mix, c.Mix))
	}
	lat := []struct {
		metric    string
		prev, cur int64
	}{
		{"serving p50 µs", p.P50US, c.P50US},
		{"serving p99 µs", p.P99US, c.P99US},
		{"serving p999 µs", p.P999US, c.P999US},
	}
	for _, l := range lat {
		if l.prev > 0 && float64(l.cur) > float64(l.prev)*(1+threshold) {
			regs = append(regs, Regression{"serving", l.metric, float64(l.prev), float64(l.cur)})
		}
	}
	if p.SustainedQPS > 0 && c.SustainedQPS > 0 && c.SustainedQPS < p.SustainedQPS/(1+threshold) {
		regs = append(regs, Regression{"serving", "sustained QPS", p.SustainedQPS, c.SustainedQPS})
	}
	return regs, missing
}

var snapName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// scanSnapshots returns the numbered snapshot files in dir, sorted by
// number ascending.
func scanSnapshots(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, ent := range ents {
		if m := snapName.FindStringSubmatch(ent.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			found = append(found, numbered{n, filepath.Join(dir, ent.Name())})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths, nil
}

// nextSnapshotPath picks the lowest unused BENCH_<n>.json in dir.
func nextSnapshotPath(dir string) (string, error) {
	paths, err := scanSnapshots(dir)
	if err != nil {
		return "", err
	}
	max := 0
	for _, p := range paths {
		m := snapName.FindStringSubmatch(filepath.Base(p))
		n, _ := strconv.Atoi(m[1])
		if n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != schemaV1 {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, schemaV1)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &s, nil
}

func writeSnapshot(path string, s *Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runBenches shells out to go test and returns its combined output.
// Kept as a variable so tests can stub the bench run.
var runBenches = func(pkgs []string, benchRe, benchtime string, count int, verbose io.Writer) (string, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count)}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if verbose != nil {
		verbose.Write(out)
	}
	if err != nil {
		return "", fmt.Errorf("go test -bench: %w\n%s", err, out)
	}
	return string(out), nil
}

const defaultBench = "RunManyRecorderOverhead|KernelScales|ShardedScales|RunNopRecorder|RunLiveRecorder|RunReuseWorkspace|RunMany64Roots|Hybrid$|TopDownParallel|BottomUp$|Serial$"

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
		pkgs      = fs.String("pkgs", "./internal/bfs", "comma-separated packages to benchmark")
		benchRe   = fs.String("bench", defaultBench, "benchmark regex for go test -bench")
		benchtime = fs.String("benchtime", "1x", "go test -benchtime value")
		count     = fs.Int("count", 1, "go test -count value")
		threshold = fs.Float64("threshold", 0.35, "relative regression tolerance")
		outPath   = fs.String("out", "", "snapshot path to write (default: next BENCH_<n>.json in -dir)")
		prevPath  = fs.String("prev", "", "snapshot to compare against (default: highest BENCH_<n>.json in -dir)")
		curPath   = fs.String("cur", "", "compare-only: compare this snapshot against -prev, skip the bench run")
		servingIn = fs.String("serving", "", "bfsload report (crossbfs-load/v1) to fold into the snapshot's serving section")
		verbose   = fs.Bool("v", false, "log the raw go test output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "benchreport: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintln(stderr, "benchreport: -threshold must be positive")
		return 2
	}

	// Resolve the previous snapshot BEFORE writing the new one, so the
	// fresh file never compares against itself.
	if *prevPath == "" {
		paths, err := scanSnapshots(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: scanning %s: %v\n", *dir, err)
			return 2
		}
		if len(paths) > 0 {
			*prevPath = paths[len(paths)-1]
		}
	}

	var cur *Snapshot
	if *curPath != "" {
		s, err := readSnapshot(*curPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: %v\n", err)
			return 2
		}
		cur = s
	} else {
		var vw io.Writer
		if *verbose {
			vw = stderr
		}
		out, err := runBenches(strings.Split(*pkgs, ","), *benchRe, *benchtime, *count, vw)
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: %v\n", err)
			return 2
		}
		entries := parseBenchOutput(out)
		if len(entries) == 0 {
			fmt.Fprintf(stderr, "benchreport: no benchmark results matched %q\n", *benchRe)
			return 2
		}
		cur = &Snapshot{
			Schema:      schemaV1,
			Go:          runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Benchtime:   *benchtime,
			Benchmarks:  entries,
			OverheadPct: overheadDeltas(entries),
		}
		if *servingIn != "" {
			entry, err := readServingReport(*servingIn)
			if err != nil {
				fmt.Fprintf(stderr, "benchreport: %v\n", err)
				return 2
			}
			cur.Serving = entry
		}
		if *outPath == "" {
			p, err := nextSnapshotPath(*dir)
			if err != nil {
				fmt.Fprintf(stderr, "benchreport: %v\n", err)
				return 2
			}
			*outPath = p
		}
		if err := writeSnapshot(*outPath, cur); err != nil {
			fmt.Fprintf(stderr, "benchreport: writing snapshot: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", *outPath, len(cur.Benchmarks))
	}

	if *prevPath == "" {
		fmt.Fprintln(stdout, "no previous snapshot; baseline established, nothing to compare")
		return 0
	}
	prev, err := readSnapshot(*prevPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 2
	}
	regs, missing := compare(prev, cur, *threshold)
	for _, w := range missing {
		fmt.Fprintf(stdout, "warning: benchmark %s\n", w)
	}
	if len(regs) > 0 {
		fmt.Fprintf(stderr, "benchreport: %d regression(s) vs %s at threshold %.0f%%:\n",
			len(regs), *prevPath, *threshold*100)
		for _, r := range regs {
			fmt.Fprintf(stderr, "  REGRESSION %s\n", r)
		}
		return 1
	}
	fmt.Fprintf(stdout, "ok: %d benchmarks within %.0f%% of %s\n",
		len(cur.Benchmarks), *threshold*100, *prevPath)
	return 0
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}
