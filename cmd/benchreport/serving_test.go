package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleLoadReport is a bfsload report shaped like cmd/bfsload writes.
const sampleLoadReport = `{
  "schema": "crossbfs-load/v1",
  "addr": "127.0.0.1:9999",
  "graph": "g",
  "vertices": 16384,
  "mix": "mixed",
  "target_qps": 200,
  "duration_ms": 10000,
  "total": {
    "sent": 2000, "ok": 1980, "rejected": 12, "deadline": 8, "errors": 0,
    "p50_us": 850, "p99_us": 9400, "p999_us": 31000, "max_us": 52000,
    "sustained_qps": 198.0
  },
  "classes": {}
}`

func writeLoadReport(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "load.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadServingReport(t *testing.T) {
	entry, err := readServingReport(writeLoadReport(t, sampleLoadReport))
	if err != nil {
		t.Fatalf("readServingReport: %v", err)
	}
	want := ServingEntry{
		Mix: "mixed", TargetQPS: 200, SustainedQPS: 198,
		P50US: 850, P99US: 9400, P999US: 31000, Rejected: 12, Deadline: 8,
	}
	if *entry != want {
		t.Errorf("entry = %+v, want %+v", *entry, want)
	}

	t.Run("wrong schema", func(t *testing.T) {
		if _, err := readServingReport(writeLoadReport(t, `{"schema": "other/v1", "total": {"ok": 1}}`)); err == nil {
			t.Error("wrong schema accepted")
		}
	})
	t.Run("empty run", func(t *testing.T) {
		if _, err := readServingReport(writeLoadReport(t, `{"schema": "crossbfs-load/v1", "total": {"ok": 0}}`)); err == nil {
			t.Error("zero-OK report accepted")
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := readServingReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
			t.Error("missing file accepted")
		}
	})
}

func TestCompareServingRules(t *testing.T) {
	base := &ServingEntry{Mix: "mixed", SustainedQPS: 200, P50US: 1000, P99US: 10000, P999US: 30000}
	clone := func(mut func(*ServingEntry)) *ServingEntry {
		c := *base
		mut(&c)
		return &c
	}
	cases := []struct {
		name     string
		cur      *ServingEntry
		wantRegs []string // metric substrings
		wantWarn bool
	}{
		{"unchanged", clone(func(*ServingEntry) {}), nil, false},
		{"p99 regresses", clone(func(c *ServingEntry) { c.P99US = 20000 }), []string{"p99"}, false},
		{"p999 regresses", clone(func(c *ServingEntry) { c.P999US = 90000 }), []string{"p999"}, false},
		{"qps regresses", clone(func(c *ServingEntry) { c.SustainedQPS = 100 }), []string{"sustained QPS"}, false},
		{"everything regresses", clone(func(c *ServingEntry) {
			c.P50US, c.P99US, c.P999US, c.SustainedQPS = 5000, 50000, 150000, 50
		}), []string{"p50", "p99", "p999", "sustained QPS"}, false},
		{"within threshold", clone(func(c *ServingEntry) { c.P99US = 12000; c.SustainedQPS = 180 }), nil, false},
		{"section dropped", nil, nil, true},
		{"mix changed", clone(func(c *ServingEntry) { c.Mix = "oltp" }), nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs, missing := compareServing(base, tc.cur, 0.35, nil, nil)
			if len(regs) != len(tc.wantRegs) {
				t.Fatalf("regs = %v, want %d: %v", regs, len(tc.wantRegs), tc.wantRegs)
			}
			for i, want := range tc.wantRegs {
				if !strings.Contains(regs[i].Metric, want) {
					t.Errorf("regs[%d] = %v, want metric containing %q", i, regs[i], want)
				}
			}
			if tc.wantWarn != (len(missing) > 0) {
				t.Errorf("missing = %v, wantWarn=%v", missing, tc.wantWarn)
			}
		})
	}

	t.Run("new section warns", func(t *testing.T) {
		regs, missing := compareServing(nil, base, 0.35, nil, nil)
		if len(regs) != 0 || len(missing) != 1 || !strings.Contains(missing[0], "new") {
			t.Errorf("regs=%v missing=%v", regs, missing)
		}
	})
}

// TestDoctoredServingRegressionExitsNonzero is the ISSUE acceptance
// criterion for the serving gate: a prior snapshot claiming much
// better serving numbers than the fresh run must fail the compare.
func TestDoctoredServingRegressionExitsNonzero(t *testing.T) {
	dir := t.TempDir()
	stubBenches(t, sampleBenchOutput, nil)
	report := writeLoadReport(t, sampleLoadReport)

	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-dir", dir, "-serving", report}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline run exit %d, stderr:\n%s", code, stderr.String())
	}
	snapPath := filepath.Join(dir, "BENCH_1.json")
	snap, err := readSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Serving == nil || snap.Serving.P99US != 9400 {
		t.Fatalf("snapshot serving section = %+v", snap.Serving)
	}

	// Doctor the baseline: claim p99 used to be 5x lower and QPS 3x
	// higher, so the unchanged fresh numbers read as regressions.
	snap.Serving.P99US /= 5
	snap.Serving.SustainedQPS *= 3
	if err := writeSnapshot(snapPath, snap); err != nil {
		t.Fatal(err)
	}

	stdout.Reset()
	stderr.Reset()
	code := realMain([]string{"-dir", dir, "-serving", report}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("doctored serving compare exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "serving: serving p99") ||
		!strings.Contains(stderr.String(), "sustained QPS") {
		t.Errorf("stderr missing serving regressions:\n%s", stderr.String())
	}

	// A snapshot pair where only one side has the section warns but passes.
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"-dir", dir, "-prev", snapPath,
		"-cur", filepath.Join(dir, "BENCH_2.json")}, &stdout, &stderr); code != 1 {
		// BENCH_2 has the serving section too (written by the doctored run),
		// so this still regresses; drop it and re-compare.
		t.Fatalf("sanity compare exit %d\n%s", code, stderr.String())
	}
	cur2, err := readSnapshot(filepath.Join(dir, "BENCH_2.json"))
	if err != nil {
		t.Fatal(err)
	}
	cur2.Serving = nil
	noServing := filepath.Join(dir, "noserving.json")
	if err := writeSnapshot(noServing, cur2); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"-prev", snapPath, "-cur", noServing}, &stdout, &stderr); code != 0 {
		t.Fatalf("section-dropped compare exit %d, want 0 (warning only)\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "serving section (gone)") {
		t.Errorf("stdout missing the gone warning:\n%s", stdout.String())
	}

	t.Run("unreadable serving report", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := realMain([]string{"-dir", t.TempDir(), "-serving", "/nonexistent.json"}, &out, &errb); code != 2 {
			t.Errorf("bad -serving exit %d, want 2", code)
		}
	})
}
