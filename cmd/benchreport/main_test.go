package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleBenchOutput mirrors real `go test -bench -benchmem` output,
// including sub-benchmarks, custom metrics, and non-bench noise lines.
const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: crossbfs/internal/bfs
cpu: AMD EPYC 7B13
BenchmarkRunNopRecorder-8     	  215576	      5531 ns/op	       0 B/op	       0 allocs/op
BenchmarkRunLiveRecorder-8    	  180000	      6600 ns/op	     512 B/op	       3 allocs/op
BenchmarkRunManyRecorderOverhead/nop-8         	     237	   4960627 ns/op	       657.4 MTEPS	   29440 B/op	     723 allocs/op
BenchmarkRunManyRecorderOverhead/live-8        	     235	   4920000 ns/op	       663.0 MTEPS	   30208 B/op	     760 allocs/op
BenchmarkRunManyRecorderOverhead/stream-8      	     190	   6160000 ns/op	       529.2 MTEPS	   48000 B/op	     910 allocs/op
BenchmarkKernelScales/hybrid/scale14-8         	      98	  11840000 ns/op	2148.00 MB/s	   10000 B/op	      40 allocs/op
PASS
ok  	crossbfs/internal/bfs	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	entries := parseBenchOutput(sampleBenchOutput)
	if len(entries) != 6 {
		t.Fatalf("parsed %d entries, want 6: %v", len(entries), entries)
	}
	nop := entries["BenchmarkRunNopRecorder"]
	if nop.NsOp != 5531 || nop.AllocsOp != 0 || nop.BOp != 0 || nop.Iters != 215576 {
		t.Errorf("nop entry = %+v", nop)
	}
	over := entries["BenchmarkRunManyRecorderOverhead/nop"]
	if over.MTEPS != 657.4 || over.AllocsOp != 723 {
		t.Errorf("overhead/nop entry = %+v", over)
	}
	// MTEPS derived from MB/s ÷ 4 when the custom metric is absent.
	kern := entries["BenchmarkKernelScales/hybrid/scale14"]
	if kern.MBs != 2148 || kern.MTEPS != 537 {
		t.Errorf("kernel entry = %+v, want MB/s 2148 MTEPS 537", kern)
	}
}

func TestOverheadDeltas(t *testing.T) {
	entries := parseBenchOutput(sampleBenchOutput)
	deltas := overheadDeltas(entries)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %v, want live and stream vs nop", deltas)
	}
	if d := deltas["live_vs_nop"]; d > 0 || d < -1.5 {
		t.Errorf("live_vs_nop = %.2f%%, want ~-0.8%%", d)
	}
	if d := deltas["stream_vs_nop"]; d < 20 || d > 30 {
		t.Errorf("stream_vs_nop = %.2f%%, want ~24%%", d)
	}
}

func snapFrom(t *testing.T, out string) *Snapshot {
	t.Helper()
	return &Snapshot{
		Schema:     schemaV1,
		Benchmarks: parseBenchOutput(out),
	}
}

func TestCompareRules(t *testing.T) {
	prev := snapFrom(t, sampleBenchOutput)
	cur := snapFrom(t, sampleBenchOutput)
	regs, missing := compare(prev, cur, 0.35)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("self-compare: regs=%v missing=%v", regs, missing)
	}

	// ns/op over threshold.
	e := cur.Benchmarks["BenchmarkRunLiveRecorder"]
	e.NsOp *= 2
	cur.Benchmarks["BenchmarkRunLiveRecorder"] = e
	// allocs/op: 0 -> nonzero must regress regardless of threshold.
	e = cur.Benchmarks["BenchmarkRunNopRecorder"]
	e.AllocsOp = 1
	cur.Benchmarks["BenchmarkRunNopRecorder"] = e
	// MTEPS collapse.
	e = cur.Benchmarks["BenchmarkKernelScales/hybrid/scale14"]
	e.MTEPS /= 3
	cur.Benchmarks["BenchmarkKernelScales/hybrid/scale14"] = e

	regs, _ = compare(prev, cur, 0.35)
	found := map[string]bool{}
	for _, r := range regs {
		found[r.Bench+"|"+r.Metric] = true
	}
	for _, want := range []string{
		"BenchmarkRunLiveRecorder|ns/op",
		"BenchmarkRunNopRecorder|allocs/op",
		"BenchmarkKernelScales/hybrid/scale14|MTEPS",
	} {
		if !found[want] {
			t.Errorf("compare missed regression %s; got %v", want, regs)
		}
	}

	// Missing benchmarks warn, never fail.
	delete(cur.Benchmarks, "BenchmarkRunManyRecorderOverhead/stream")
	_, missing = compare(prev, snapFrom(t, sampleBenchOutput), 0.35)
	if len(missing) != 0 {
		t.Errorf("unexpected missing on identical sets: %v", missing)
	}
	sub := &Snapshot{Schema: schemaV1, Benchmarks: map[string]BenchEntry{}}
	regs, missing = compare(prev, sub, 0.35)
	if len(regs) != 0 {
		t.Errorf("missing benchmarks produced regressions: %v", regs)
	}
	if len(missing) != len(prev.Benchmarks) {
		t.Errorf("missing = %v, want all %d", missing, len(prev.Benchmarks))
	}
}

func TestSnapshotNumbering(t *testing.T) {
	dir := t.TempDir()
	p, err := nextSnapshotPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("empty dir -> %q, %v; want BENCH_1.json", p, err)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = nextSnapshotPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_4.json" {
		t.Fatalf("next after 1,3 -> %q, %v; want BENCH_4.json", p, err)
	}
	paths, err := scanSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range paths {
		names = append(names, filepath.Base(p))
	}
	if strings.Join(names, ",") != "BENCH_1.json,BENCH_3.json" {
		t.Errorf("scanSnapshots = %v", names)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := snapFrom(t, sampleBenchOutput)
	s.Go = "go1.22.0"
	s.Benchtime = "1x"
	s.OverheadPct = overheadDeltas(s.Benchmarks)
	path := filepath.Join(dir, "BENCH_1.json")
	if err := writeSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Go != s.Go || len(got.Benchmarks) != len(s.Benchmarks) {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if got.Benchmarks["BenchmarkKernelScales/hybrid/scale14"].MTEPS != 537 {
		t.Errorf("MTEPS lost in round trip: %+v", got.Benchmarks)
	}

	// Schema guard: wrong schema string must be rejected.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9","benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(bad); err == nil {
		t.Error("readSnapshot accepted wrong schema")
	}
}

// stubBenches redirects the go test invocation to canned output for the
// duration of one test.
func stubBenches(t *testing.T, out string, err error) {
	t.Helper()
	orig := runBenches
	runBenches = func(_ []string, _, _ string, _ int, _ io.Writer) (string, error) {
		return out, err
	}
	t.Cleanup(func() { runBenches = orig })
}

// TestDoctoredRegressionExitsNonzero is the ISSUE acceptance criterion:
// benchreport fed a doctored prior snapshot claiming far better numbers
// than the "current" run must exit nonzero.
func TestDoctoredRegressionExitsNonzero(t *testing.T) {
	dir := t.TempDir()
	stubBenches(t, sampleBenchOutput, nil)

	// Baseline run: no previous snapshot, exit 0, BENCH_1.json written.
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline run exit %d, stderr:\n%s", code, stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_1.json")); err != nil {
		t.Fatalf("baseline snapshot missing: %v", err)
	}
	if !strings.Contains(stdout.String(), "baseline established") {
		t.Errorf("baseline stdout: %q", stdout.String())
	}

	// Doctor the baseline: claim the nop bench used to be 3x faster, so
	// the unchanged "current" numbers read as a >35% ns/op regression.
	prev, err := readSnapshot(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	e := prev.Benchmarks["BenchmarkRunNopRecorder"]
	e.NsOp /= 3
	prev.Benchmarks["BenchmarkRunNopRecorder"] = e
	if err := writeSnapshot(filepath.Join(dir, "BENCH_1.json"), prev); err != nil {
		t.Fatal(err)
	}

	stdout.Reset()
	stderr.Reset()
	code := realMain([]string{"-dir", dir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("doctored compare exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION BenchmarkRunNopRecorder: ns/op") {
		t.Errorf("stderr missing the regression line:\n%s", stderr.String())
	}
	// The fresh run is still snapshotted (BENCH_2.json) so the next run
	// compares against reality, not the doctored file.
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Errorf("regressing run did not write BENCH_2.json: %v", err)
	}

	// A wide threshold lets the same pair pass.
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"-dir", dir, "-prev", filepath.Join(dir, "BENCH_1.json"),
		"-cur", filepath.Join(dir, "BENCH_2.json"), "-threshold", "9"}, &stdout, &stderr); code != 0 {
		t.Errorf("threshold 900%% compare exit %d, stderr:\n%s", code, stderr.String())
	}
}

func TestCompareOnlyMode(t *testing.T) {
	dir := t.TempDir()
	prev := snapFrom(t, sampleBenchOutput)
	cur := snapFrom(t, sampleBenchOutput)
	e := cur.Benchmarks["BenchmarkRunLiveRecorder"]
	e.NsOp *= 3
	cur.Benchmarks["BenchmarkRunLiveRecorder"] = e
	prevPath := filepath.Join(dir, "prev.json")
	curPath := filepath.Join(dir, "cur.json")
	if err := writeSnapshot(prevPath, prev); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(curPath, cur); err != nil {
		t.Fatal(err)
	}
	// No bench run happens: stub would fail loudly if invoked.
	stubBenches(t, "", os.ErrInvalid)

	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-prev", prevPath, "-cur", curPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("compare-only regression exit %d, want 1\n%s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"-prev", prevPath, "-cur", prevPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("compare-only identical exit %d, want 0\n%s", code, stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag exit %d, want 2", code)
	}
	if code := realMain([]string{"stray"}, &stdout, &stderr); code != 2 {
		t.Errorf("stray arg exit %d, want 2", code)
	}
	if code := realMain([]string{"-threshold", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("zero threshold exit %d, want 2", code)
	}
	if code := realMain([]string{"-cur", "/nonexistent.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("unreadable -cur exit %d, want 2", code)
	}
	// A failing bench run is operational (2), not a regression (1).
	stubBenches(t, "", os.ErrDeadlineExceeded)
	if code := realMain([]string{"-dir", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Errorf("failed bench run exit %d, want 2", code)
	}
}
