package main

import "testing"

func TestRunRealMode(t *testing.T) {
	if err := run(10, 8, 1, 4, "real", "", 64, 64, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimMode(t *testing.T) {
	for _, plan := range []string{"cputd", "cpucb", "gpucb", "miccb", "cross"} {
		if err := run(9, 8, 1, 2, "sim", plan, 64, 64, 0); err != nil {
			t.Fatalf("plan %s: %v", plan, err)
		}
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run(8, 8, 1, 2, "quantum", "", 64, 64, 0); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunUnknownPlan(t *testing.T) {
	if err := run(8, 8, 1, 2, "sim", "abacus", 64, 64, 0); err == nil {
		t.Error("unknown plan accepted")
	}
}
