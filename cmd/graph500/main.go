// Command graph500 runs the two-kernel Graph 500 benchmark (the
// paper's evaluation methodology, §II-D): kernel 1 constructs the CSR
// graph from a generated R-MAT edge list, kernel 2 runs a validated
// BFS from each sampled search key. Output follows the official
// key:value result layout.
//
// Two execution modes:
//
//	-mode real   times the actual Go hybrid BFS on this machine
//	-mode sim    prices a modeled plan (-plan cpucb|gpucb|miccb|cross)
//
// Examples:
//
//	graph500 -scale 16 -mode real
//	graph500 -scale 17 -mode sim -plan cross -roots 64
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/graph500"
	"crossbfs/internal/rmat"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "log2 of the number of vertices")
		edgeFactor = flag.Int("edgefactor", 16, "generated edges per vertex")
		seed       = flag.Uint64("seed", 1, "generator seed")
		numRoots   = flag.Int("roots", graph500.DefaultNumRoots, "number of BFS search keys")
		mode       = flag.String("mode", "real", "'real' (wall-clock host BFS) or 'sim' (modeled plan)")
		planName   = flag.String("plan", "cross", "sim mode plan: cputd, cpucb, gpucb, miccb, cross")
		m          = flag.Float64("m", 64, "switching threshold M")
		n          = flag.Float64("n", 64, "switching threshold N")
		workers    = flag.Int("workers", 0, "real-mode worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if err := run(*scale, *edgeFactor, *seed, *numRoots, *mode, *planName, *m, *n, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "graph500:", err)
		os.Exit(1)
	}
}

func run(scale, edgeFactor int, seed uint64, numRoots int, mode, planName string, m, n float64, workers int) error {
	// Kernel 1: edge generation + CSR construction, timed.
	params := rmat.DefaultParams(scale, edgeFactor)
	params.Seed = seed
	startK1 := time.Now()
	g, err := rmat.Generate(params)
	if err != nil {
		return err
	}
	construction := time.Since(startK1).Seconds()

	roots := graph500.SampleRoots(g, numRoots, seed)
	if len(roots) == 0 {
		return fmt.Errorf("graph has no usable search keys")
	}

	report := &graph500.Report{
		Scale:            scale,
		EdgeFactor:       edgeFactor,
		NumRoots:         len(roots),
		ConstructionTime: construction,
	}

	times := make([]float64, len(roots))
	teps := make([]float64, len(roots))
	switch mode {
	case "real":
		// One workspace serves the whole key sweep so measured wall
		// times reflect kernel work, not allocator churn between roots.
		ws := bfs.NewWorkspace(g.NumVertices())
		for i, root := range roots {
			res, timing, err := core.MeasureWith(g, root, bfs.MN{M: m, N: n}, "hybrid", workers, ws)
			if err != nil {
				return err
			}
			if err := bfs.Validate(g, res); err != nil {
				return fmt.Errorf("root %d failed validation: %w", root, err)
			}
			times[i] = timing.Total.Seconds()
			teps[i] = timing.TEPS()
		}
	case "sim":
		plan, err := selectPlan(planName, m, n)
		if err != nil {
			return err
		}
		link := archsim.PCIe()
		err = bfs.RunManyFunc(g, roots, bfs.ManyOptions{Engine: bfs.SerialEngine()},
			func(i int, root int32, res *bfs.Result) error {
				if err := bfs.Validate(g, res); err != nil {
					return fmt.Errorf("root %d failed validation: %w", root, err)
				}
				tr, err := bfs.ComputeTrace(g, res)
				if err != nil {
					return err
				}
				timing := core.Simulate(tr, plan, link)
				times[i] = timing.Total //lint:shared-ok RunManyFunc delivers each index to exactly one callback
				teps[i] = timing.TEPS() //lint:shared-ok RunManyFunc delivers each index to exactly one callback
				return nil
			})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q (want real or sim)", mode)
	}

	report.Time = graph500.Summarize(times)
	report.TEPS = graph500.Summarize(teps)
	return report.Write(os.Stdout)
}

func selectPlan(name string, m, n float64) (core.Plan, error) {
	cpu, gpu, mic := archsim.SandyBridge(), archsim.KeplerK20x(), archsim.KnightsCorner()
	switch name {
	case "cputd":
		return core.FixedDirection(cpu, bfs.TopDown), nil
	case "cpucb":
		return core.Combination(cpu, m, n), nil
	case "gpucb":
		return core.Combination(gpu, m, n), nil
	case "miccb":
		return core.Combination(mic, m, n), nil
	case "cross":
		return core.CrossPlan{Host: cpu, Coprocessor: gpu, M1: m, N1: n, M2: m, N2: n}, nil
	default:
		return nil, fmt.Errorf("unknown plan %q", name)
	}
}
