package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crossbfs/internal/exp"
)

var testCfg = exp.Config{Scale: 11, EdgeFactor: 8, Seed: 1, NumRoots: 2}

func noOpts() runOpts { return runOpts{faultSeed: 1} }

func TestRunOneLightExperiments(t *testing.T) {
	for _, id := range []string{"fig1", "fig3", "table5"} {
		if err := runOne(context.Background(), id, testCfg, noOpts()); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne(context.Background(), "fig99", testCfg, noOpts()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDispatchSingle(t *testing.T) {
	if err := dispatch(context.Background(), "fig3", testCfg, noOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchTimeoutExpired(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	err := dispatch(ctx, "fig3", testCfg, noOpts())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunOneFig8MissingModel(t *testing.T) {
	opts := noOpts()
	opts.modelPath = "/nonexistent/model.gob"
	if err := runOne(context.Background(), "fig8", testCfg, opts); err == nil {
		t.Error("missing model file accepted")
	}
}

func TestRunOneCSVOutput(t *testing.T) {
	dir := t.TempDir()
	opts := noOpts()
	opts.csvDir = dir
	if err := runOne(context.Background(), "fig3", testCfg, opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "level,topdown_s,bottomup_s") {
		t.Errorf("csv header wrong: %q", string(data[:40]))
	}
}

func TestRunOneCSVBadDir(t *testing.T) {
	opts := noOpts()
	opts.csvDir = "/nonexistent/place"
	if err := runOne(context.Background(), "fig3", testCfg, opts); err == nil {
		t.Error("unwritable csv dir accepted")
	}
}

func TestRunOneFaults(t *testing.T) {
	dir := t.TempDir()
	opts := noOpts()
	opts.csvDir = dir
	if err := runOne(context.Background(), "faults", testCfg, opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "faults.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "scenario,total_s,overhead") {
		t.Errorf("csv header wrong: %q", string(data[:40]))
	}
}

func TestRunOneFaultsBadSpec(t *testing.T) {
	opts := noOpts()
	opts.faultSpec = "meltdown:everything"
	if err := runOne(context.Background(), "faults", testCfg, opts); err == nil {
		t.Error("malformed fault spec accepted")
	}
}
