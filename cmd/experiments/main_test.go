package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossbfs/internal/exp"
)

var testCfg = exp.Config{Scale: 11, EdgeFactor: 8, Seed: 1, NumRoots: 2}

func TestRunOneLightExperiments(t *testing.T) {
	for _, id := range []string{"fig1", "fig3", "table5"} {
		if err := runOne(id, testCfg, "", ""); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("fig99", testCfg, "", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDispatchSingle(t *testing.T) {
	if err := dispatch("fig3", testCfg, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneFig8MissingModel(t *testing.T) {
	if err := runOne("fig8", testCfg, "/nonexistent/model.gob", ""); err == nil {
		t.Error("missing model file accepted")
	}
}

func TestRunOneCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := runOne("fig3", testCfg, "", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "level,topdown_s,bottomup_s") {
		t.Errorf("csv header wrong: %q", string(data[:40]))
	}
}

func TestRunOneCSVBadDir(t *testing.T) {
	if err := runOne("fig3", testCfg, "", "/nonexistent/place"); err == nil {
		t.Error("unwritable csv dir accepted")
	}
}
