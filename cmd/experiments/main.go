// Command experiments regenerates every table and figure of the
// paper's evaluation section.
//
//	experiments -run all
//	experiments -run table4 -scale 17 -edgefactor 16
//	experiments -run fig8
//
// Experiment ids: fig1, fig2, fig3, table3, fig8, table4, table5,
// fig9, fig10a, fig10b, table6, comparisons, faults, recovery, all.
// See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"crossbfs/internal/archsim"
	"crossbfs/internal/exp"
	"crossbfs/internal/tuner"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment id (fig1, fig2, fig3, table3, fig8, table4, table5, fig9, fig10a, fig10b, table6, comparisons, heuristics, multi, sharded, realtable4, faults, recovery, all)")
		scale      = flag.Int("scale", 0, "override base SCALE (default 17)")
		edgeFactor = flag.Int("edgefactor", 0, "override base edge factor (default 16)")
		seed       = flag.Uint64("seed", 0, "override R-MAT seed (default 1)")
		numRoots   = flag.Int("roots", 0, "override Graph500 root count (default 16)")
		modelPath  = flag.String("model", "", "load a trained switching-point model (fig8) instead of training one")
		csvDir     = flag.String("csv", "", "also write figure data as <id>.csv files into this directory")
		timeout    = flag.Duration("timeout", 0, "abort the suite after this duration (0 = no limit); checked between experiments")
		faults     = flag.String("faults", "", "fault schedule for the faults experiment (default: built-in scenario ladder)")
		faultSeed  = flag.Uint64("faultseed", 1, "seed for transient-fault draws in the faults experiment")
		pprofAddr  = flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address during the suite")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registered itself on the default mux.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof server:", err)
			}
		}()
		fmt.Printf("serving http://%s/debug/pprof\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := exp.Config{Scale: *scale, EdgeFactor: *edgeFactor, Seed: *seed, NumRoots: *numRoots}
	opts := runOpts{modelPath: *modelPath, csvDir: *csvDir, faultSpec: *faults, faultSeed: *faultSeed}
	if err := dispatch(ctx, *run, cfg, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runOpts carries the per-invocation extras that are not experiment
// parameters proper.
type runOpts struct {
	modelPath string
	csvDir    string
	faultSpec string
	faultSeed uint64
}

func dispatch(ctx context.Context, run string, cfg exp.Config, opts runOpts) error {
	ids := []string{run}
	if run == "all" {
		// The faults experiment is opt-in: it reprices one workload
		// under synthetic failures rather than reproducing a paper
		// artifact, so it does not belong in the replication sweep.
		ids = []string{"fig1", "fig2", "fig3", "table3", "fig8", "table4", "table5", "fig9", "fig10a", "fig10b", "table6", "comparisons", "heuristics", "multi", "sharded", "realtable4"}
	}
	for _, id := range ids {
		// The deadline cuts the suite at an experiment boundary so
		// whatever already printed stays a complete artifact.
		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Printf("==== %s ====\n", strings.ToUpper(id))
		if err := runOne(ctx, id, cfg, opts); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(ctx context.Context, id string, cfg exp.Config, opts runOpts) error {
	modelPath, csvDir := opts.modelPath, opts.csvDir
	w := os.Stdout

	// csvSink opens <csvDir>/<id>.csv when -csv is set; emit runs the
	// writer against it and is a no-op otherwise.
	emit := func(write func(io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(csvDir, id+".csv"))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	switch id {
	case "fig1", "fig2":
		// Both figures come from the same per-level profile; Fig. 1
		// reads the |V|cq column, Fig. 2 the |E|cq column.
		profiles, err := exp.FrontierProfiles(nil, cfg.EdgeFactor, cfg.Seed+1)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.FrontierProfilesCSV(cw, profiles) }); err != nil {
			return err
		}
		return exp.RenderFrontierProfiles(w, profiles)
	case "fig3":
		rows, err := exp.DirectionComparison(cfg)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.DirectionTimesCSV(cw, rows) }); err != nil {
			return err
		}
		return exp.RenderDirectionTimes(w, rows)
	case "table3":
		rows, err := exp.BestSwitchingPoints(nil, nil, max64(cfg.Seed, 1))
		if err != nil {
			return err
		}
		return exp.RenderBestM(w, rows)
	case "fig8":
		var model *tuner.Model
		if modelPath != "" {
			var err error
			model, err = tuner.LoadModel(modelPath)
			if err != nil {
				return err
			}
		} else {
			fmt.Println("training switching-point model on the default corpus...")
			var err error
			model, err = exp.TrainDefaultModel(nil)
			if err != nil {
				return err
			}
		}
		rows, err := exp.StrategyComparison(cfg, model, nil, nil)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.StrategiesCSV(cw, rows) }); err != nil {
			return err
		}
		return exp.RenderStrategies(w, rows)
	case "table4":
		t, err := exp.StepByStepOptimization(cfg)
		if err != nil {
			return err
		}
		return exp.RenderStepByStep(w, t)
	case "table5":
		rows, err := exp.CrossSpeedups(cfg, nil)
		if err != nil {
			return err
		}
		return exp.RenderCrossSpeedups(w, rows)
	case "fig9":
		rows, err := exp.CombinationComparison(cfg, nil)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.CombinationsCSV(cw, rows) }); err != nil {
			return err
		}
		return exp.RenderCombinations(w, rows)
	case "fig10a":
		rows, err := exp.StrongScaling(cfg)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.ScalingCSV(cw, rows) }); err != nil {
			return err
		}
		return exp.RenderScaling(w, rows)
	case "fig10b":
		rows, err := exp.WeakScaling(cfg)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.ScalingCSV(cw, rows) }); err != nil {
			return err
		}
		return exp.RenderScaling(w, rows)
	case "table6":
		rows, err := exp.AveragePerformance(cfg, nil)
		if err != nil {
			return err
		}
		return exp.RenderAvgPerformance(w, rows)
	case "comparisons":
		rows, err := exp.ExternalComparisons(cfg)
		if err != nil {
			return err
		}
		return exp.RenderComparisons(w, rows)
	case "heuristics":
		rows, err := exp.HeuristicComparison(cfg, nil)
		if err != nil {
			return err
		}
		return exp.RenderHeuristics(w, rows)
	case "realtable4":
		r, err := exp.MeasuredStepByStep(cfg, 3)
		if err != nil {
			return err
		}
		return r.Render(w)
	case "faults":
		rows, err := exp.FaultTolerance(ctx, cfg, opts.faultSpec, opts.faultSeed)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.FaultToleranceCSV(cw, rows) }); err != nil {
			return err
		}
		return exp.RenderFaultTolerance(w, rows)
	case "multi":
		for _, kind := range []archsim.Kind{archsim.MIC, archsim.GPU} {
			rows, err := exp.MultiCoprocessorScaling(cfg, kind, 3)
			if err != nil {
				return err
			}
			if err := exp.RenderMultiCoprocessor(w, rows); err != nil {
				return err
			}
		}
		return nil
	case "sharded":
		rows, err := exp.ShardedCrossover(cfg, nil, nil)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.ShardedCSV(cw, rows) }); err != nil {
			return err
		}
		return exp.RenderSharded(w, rows)
	case "recovery":
		rows, err := exp.Recovery(ctx, cfg, opts.faultSpec, opts.faultSeed)
		if err != nil {
			return err
		}
		if err := emit(func(cw io.Writer) error { return exp.RecoveryCSV(cw, rows) }); err != nil {
			return err
		}
		return exp.RenderRecovery(w, rows)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
