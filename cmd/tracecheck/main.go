// Command tracecheck validates a Chrome trace-event JSON file produced
// by bfsrun -trace (or any obs.TraceWriter) and summarizes what the
// telemetry reconstructs: one line per traversal timeline with its
// per-level direction sequence and the steps where the hybrid
// heuristic switched kernels — the paper's Fig. 4 switch pattern read
// back out of the trace. It exits nonzero when the file violates the
// schema documented in OBSERVABILITY.md, which makes it the assertion
// half of `make trace-smoke`.
//
//	bfsrun -scale 16 -plan cputd+gpucb -trace out.json
//	tracecheck out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crossbfs/internal/obs"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the summary; only validate")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-q] trace.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *quiet, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(path string, quiet bool, w *os.File) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := obs.ValidateTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if quiet {
		return nil
	}
	fmt.Fprintf(w, "%s: %d events (%d slices, %d instants, %d metadata) across %d processes\n",
		path, s.Events, s.Slices, s.Instants, s.Metadata, len(s.Processes))
	fmt.Fprintf(w, "levels %d, sim steps %d, switches %d, handoffs %d, faults %d\n",
		s.Levels, s.SimSteps, s.Switches, s.Handoffs, s.Faults)
	printTimelines(w, "traversal", s.LevelDirs)
	printTimelines(w, "sim", s.SimDirs)
	return nil
}

func printTimelines(w *os.File, kind string, dirs map[int][]string) {
	for _, tid := range obs.TimelineIDs(dirs) {
		seq := dirs[tid]
		line := fmt.Sprintf("%s %d: %s", kind, tid, strings.Join(seq, " "))
		if sw := obs.SwitchSteps(seq); len(sw) > 0 {
			line += fmt.Sprintf("  (switch at level %s)", joinInts(sw))
		}
		fmt.Fprintln(w, line)
	}
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ", ")
}
