// Command tracecheck validates a Chrome trace-event JSON file produced
// by bfsrun -trace (or any obs.TraceWriter) and summarizes what the
// telemetry reconstructs: one line per traversal timeline with its
// per-level direction sequence and the steps where the hybrid
// heuristic switched kernels — the paper's Fig. 4 switch pattern read
// back out of the trace. It exits nonzero when the file violates the
// schema documented in OBSERVABILITY.md, which makes it the assertion
// half of `make trace-smoke`.
//
//	bfsrun -scale 16 -plan cputd+gpucb -trace out.json
//	tracecheck out.json
//	tracecheck -summary-json out.json | jq .Levels
//
// Exit codes: 0 the trace is valid, 1 the trace is malformed or
// unreadable, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"crossbfs/internal/obs"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quiet := fs.Bool("q", false, "suppress the summary; only validate")
	summaryJSON := fs.Bool("summary-json", false, "print the parsed summary as a JSON object")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tracecheck [-q] [-summary-json] trace.json")
		return 2
	}
	if err := run(fs.Arg(0), *quiet, *summaryJSON, stdout); err != nil {
		fmt.Fprintln(stderr, "tracecheck:", err)
		return 1
	}
	return 0
}

func run(path string, quiet, summaryJSON bool, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := obs.ValidateTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if summaryJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	if quiet {
		return nil
	}
	fmt.Fprintf(w, "%s: %d events (%d slices, %d instants, %d metadata) across %d processes\n",
		path, s.Events, s.Slices, s.Instants, s.Metadata, len(s.Processes))
	fmt.Fprintf(w, "levels %d, sim steps %d, switches %d, handoffs %d, faults %d\n",
		s.Levels, s.SimSteps, s.Switches, s.Handoffs, s.Faults)
	printTimelines(w, "traversal", s.LevelDirs)
	printTimelines(w, "sim", s.SimDirs)
	return nil
}

func printTimelines(w io.Writer, kind string, dirs map[int][]string) {
	for _, tid := range obs.TimelineIDs(dirs) {
		seq := dirs[tid]
		line := fmt.Sprintf("%s %d: %s", kind, tid, strings.Join(seq, " "))
		if sw := obs.SwitchSteps(seq); len(sw) > 0 {
			line += fmt.Sprintf("  (switch at level %s)", joinInts(sw))
		}
		fmt.Fprintln(w, line)
	}
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ", ")
}
