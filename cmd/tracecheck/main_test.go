package main

import (
	"os"
	"path/filepath"
	"testing"

	"crossbfs/internal/bfs"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	p := rmat.DefaultParams(10, 8)
	p.Seed = 3
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := obs.NewTraceWriter(f)
	_, err = bfs.RunMany(g, []int32{0, 1, 2}, bfs.ManyOptions{Recorder: tw})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidTrace(t *testing.T) {
	path := writeTrace(t)
	if err := run(path, false, os.Stdout); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := run(path, true, os.Stdout); err != nil {
		t.Fatalf("quiet mode failed: %v", err)
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"traceEvents":[{"ph":"Z"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, os.Stdout); err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.json"), true, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
}
