package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossbfs/internal/bfs"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	p := rmat.DefaultParams(10, 8)
	p.Seed = 3
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := obs.NewTraceWriter(f)
	_, err = bfs.RunMany(g, []int32{0, 1, 2}, bfs.ManyOptions{Recorder: tw})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidTrace(t *testing.T) {
	path := writeTrace(t)
	var out bytes.Buffer
	if err := run(path, false, false, &out); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if !strings.Contains(out.String(), "traversal ") {
		t.Errorf("summary missing traversal timelines:\n%s", out.String())
	}
	out.Reset()
	if err := run(path, true, false, &out); err != nil {
		t.Fatalf("quiet mode failed: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("quiet mode printed output: %q", out.String())
	}
}

func TestRunSummaryJSON(t *testing.T) {
	path := writeTrace(t)
	var out bytes.Buffer
	if err := run(path, false, true, &out); err != nil {
		t.Fatalf("summary-json failed: %v", err)
	}
	var s obs.TraceSummary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("-summary-json is not a TraceSummary: %v\n%s", err, out.String())
	}
	if s.Levels == 0 || len(s.LevelDirs) != 3 {
		t.Errorf("JSON summary doesn't reflect the trace: %+v", s)
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"traceEvents":[{"ph":"Z"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, false, os.Stdout); err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.json"), true, false, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
}

// TestExitCodes pins the documented contract: 0 valid, 1 invalid, 2
// usage — what `make trace-smoke` and CI scripts branch on.
func TestExitCodes(t *testing.T) {
	valid := writeTrace(t)
	invalid := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(invalid, []byte(`{"traceEvents":[{"ph":"Z"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"valid", []string{valid}, 0},
		{"valid quiet", []string{"-q", valid}, 0},
		{"valid json", []string{"-summary-json", valid}, 0},
		{"invalid", []string{invalid}, 1},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.json")}, 1},
		{"no args", nil, 2},
		{"two args", []string{valid, valid}, 2},
		{"bad flag", []string{"-wat", valid}, 2},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if got := realMain(tc.args, &stdout, &stderr); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, got, tc.want, stderr.String())
		}
	}
}
