// Command rmatgen generates a Graph 500 R-MAT graph and saves it in
// the binary CSR container format understood by the other tools.
//
//	rmatgen -scale 18 -edgefactor 16 -seed 1 -o scale18.csr
package main

import (
	"flag"
	"fmt"
	"os"

	"crossbfs/internal/rmat"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "log2 of the number of vertices")
		edgeFactor = flag.Int("edgefactor", 16, "generated edges per vertex")
		seed       = flag.Uint64("seed", 1, "generator seed")
		a          = flag.Float64("a", 0.57, "Kronecker quadrant probability A")
		b          = flag.Float64("b", 0.19, "Kronecker quadrant probability B")
		c          = flag.Float64("c", 0.19, "Kronecker quadrant probability C")
		d          = flag.Float64("d", 0.05, "Kronecker quadrant probability D")
		noPermute  = flag.Bool("no-permute", false, "keep raw Kronecker vertex labels")
		out        = flag.String("o", "", "output path (required)")
		stats      = flag.Bool("stats", true, "print graph statistics")
	)
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "rmatgen: -o output path is required")
		flag.Usage()
		os.Exit(2)
	}

	p := rmat.Params{
		Scale: *scale, EdgeFactor: *edgeFactor,
		A: *a, B: *b, C: *c, D: *d,
		Seed: *seed, Permute: !*noPermute,
	}
	if err := generate(p, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "rmatgen:", err)
		os.Exit(1)
	}
}

func generate(p rmat.Params, out string, printStats bool) error {
	g, err := rmat.Generate(p)
	if err != nil {
		return err
	}
	if err := g.Save(out); err != nil {
		return err
	}
	if printStats {
		s := g.ComputeStats()
		fmt.Printf("wrote %s: %d vertices, %d directed edges\n", out, s.NumVertices, s.NumEdges)
		fmt.Printf("degrees: min %d, max %d, avg %.2f, %d isolated\n",
			s.MinDegree, s.MaxDegree, s.AvgDegree, s.Isolated)
	}
	return nil
}
