package main

import (
	"path/filepath"
	"testing"

	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
)

func TestGenerateWritesLoadableGraph(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.csr")
	p := rmat.DefaultParams(10, 8)
	if err := generate(p, out, true); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Load(out)
	if err != nil {
		t.Fatalf("generated file unloadable: %v", err)
	}
	if g.NumVertices() != 1024 {
		t.Errorf("loaded %d vertices", g.NumVertices())
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.csr")
	p := rmat.DefaultParams(10, 8)
	p.A = 0.99 // probabilities exceed 1
	if err := generate(p, out, false); err == nil {
		t.Error("invalid parameters accepted")
	}
}

func TestGenerateBadPath(t *testing.T) {
	p := rmat.DefaultParams(6, 4)
	if err := generate(p, filepath.Join(t.TempDir(), "missing", "dir", "g.csr"), false); err == nil {
		t.Error("unwritable path accepted")
	}
}
