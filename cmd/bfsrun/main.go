// Command bfsrun executes one BFS configuration on an R-MAT graph (or
// a graph file) and prints the per-level breakdown — the "step-by-step
// optimization" view of the paper's Table IV.
//
// Examples:
//
//	bfsrun -scale 17 -edgefactor 16 -plan all
//	bfsrun -scale 17 -plan cputd+gpucb -m1 64 -n1 64 -m2 64 -n2 64
//	bfsrun -graph g.csr -plan gpucb -m2 32 -n2 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "R-MAT SCALE (log2 vertices) when generating")
		edgeFactor = flag.Int("edgefactor", 16, "R-MAT edge factor when generating")
		seed       = flag.Uint64("seed", 1, "R-MAT seed")
		graphPath  = flag.String("graph", "", "load a CSR graph file instead of generating")
		source     = flag.Int("source", -1, "source vertex (-1 = first non-isolated)")
		planName   = flag.String("plan", "all", "plan: gputd, gpubu, gpucb, cputd, cpubu, cpucb, miccb, cputd+gpubu, cputd+gpucb, or 'all'")
		m1         = flag.Float64("m1", 64, "host/cross M threshold")
		n1         = flag.Float64("n1", 64, "host/cross N threshold")
		m2         = flag.Float64("m2", 64, "coprocessor M threshold")
		n2         = flag.Float64("n2", 64, "coprocessor N threshold")
		perLevel   = flag.Bool("levels", true, "print per-level timings")
		showTrace  = flag.Bool("trace", false, "print per-level work counts (|V|cq, |E|cq, scans)")
	)
	flag.Parse()

	if err := run(*scale, *edgeFactor, *seed, *graphPath, *source, *planName, *m1, *n1, *m2, *n2, *perLevel, *showTrace); err != nil {
		fmt.Fprintln(os.Stderr, "bfsrun:", err)
		os.Exit(1)
	}
}

func run(scale, edgeFactor int, seed uint64, graphPath string, source int, planName string, m1, n1, m2, n2 float64, perLevel, showTrace bool) error {
	// Validate the plan selection before paying for graph generation.
	plans, err := selectPlans(planName, m1, n1, m2, n2)
	if err != nil {
		return err
	}

	var g *graph.CSR
	if graphPath != "" {
		g, err = graph.Load(graphPath)
	} else {
		p := rmat.DefaultParams(scale, edgeFactor)
		p.Seed = seed
		g, err = rmat.Generate(p)
	}
	if err != nil {
		return err
	}

	src, err := pickSource(g, source)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d directed edges, source %d\n", g.NumVertices(), g.NumEdges(), src)

	ws := bfs.DefaultPool.Get(g.NumVertices())
	tr, err := bfs.TraceFromWith(g, src, ws)
	bfs.DefaultPool.Put(ws)
	if err != nil {
		return err
	}
	fmt.Printf("traversal: depth %d, %d reachable, %d edges visited\n\n", tr.Depth(), tr.Reachable, tr.EdgesVisited)

	if showTrace {
		for _, s := range tr.Steps {
			fmt.Printf("step %d: |V|cq=%d |E|cq=%d discovered=%d unvisited=%d buScans=%d meanScan=%.1f\n",
				s.Step, s.FrontierVertices, s.FrontierEdges, s.Discovered, s.UnvisitedVertices, s.BottomUpScans, s.MeanScan())
		}
		fmt.Println()
	}

	link := archsim.PCIe()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	var baseline float64
	for _, pl := range plans {
		t := core.Simulate(tr, pl, link)
		if baseline == 0 {
			baseline = t.Total
		}
		fmt.Fprintf(w, "%s\ttotal %.6fs\tspeedup %.1fx\tGTEPS %.3f\n", t.Plan, t.Total, baseline/t.Total, t.GTEPS())
		if perLevel {
			for _, st := range t.Steps {
				fmt.Fprintf(w, "\tlevel %d\t%s %s\t%.6fs", st.Step, st.Kind, st.Dir, st.Kernel)
				if st.Transfer > 0 {
					fmt.Fprintf(w, "\t(+%.6fs transfer)", st.Transfer)
				}
				fmt.Fprintln(w)
			}
		}
	}
	return w.Flush()
}

func pickSource(g *graph.CSR, requested int) (int32, error) {
	if requested >= 0 {
		if requested >= g.NumVertices() {
			return 0, fmt.Errorf("source %d out of range [0,%d)", requested, g.NumVertices())
		}
		return int32(requested), nil
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v), nil
		}
	}
	return 0, fmt.Errorf("graph has no edges")
}

func selectPlans(name string, m1, n1, m2, n2 float64) ([]core.Plan, error) {
	cpu, gpu, mic := archsim.SandyBridge(), archsim.KeplerK20x(), archsim.KnightsCorner()
	all := []core.Plan{
		core.FixedDirection(gpu, bfs.TopDown),
		core.FixedDirection(gpu, bfs.BottomUp),
		core.Combination(gpu, m2, n2),
		core.FixedDirection(cpu, bfs.TopDown),
		core.FixedDirection(cpu, bfs.BottomUp),
		core.Combination(cpu, m1, n1),
		core.Combination(mic, m1, n1),
		core.CrossTDBU{Host: cpu, Coprocessor: gpu, M1: m1, N1: n1},
		core.CrossPlan{Host: cpu, Coprocessor: gpu, M1: m1, N1: n1, M2: m2, N2: n2},
	}
	if name == "all" {
		return all, nil
	}
	for _, pl := range all {
		if strings.EqualFold(pl.Name(), name) {
			return []core.Plan{pl}, nil
		}
	}
	names := make([]string, len(all))
	for i, pl := range all {
		names[i] = pl.Name()
	}
	return nil, fmt.Errorf("unknown plan %q (have: %s, all)", name, strings.Join(names, ", "))
}
