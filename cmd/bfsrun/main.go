// Command bfsrun executes one BFS configuration on an R-MAT graph (or
// a graph file) and prints the per-level breakdown — the "step-by-step
// optimization" view of the paper's Table IV.
//
// Examples:
//
//	bfsrun -scale 17 -edgefactor 16 -plan all
//	bfsrun -scale 17 -plan cputd+gpucb -m1 64 -n1 64 -m2 64 -n2 64
//	bfsrun -graph g.csr -plan gpucb -m2 32 -n2 32
//	bfsrun -scale 17 -plan cputd+gpucb -faults 'crash:KeplerK20x@4' -timeout 30s
//	bfsrun -scale 16 -plan cputd+gpucb -trace out.json   # open in ui.perfetto.dev
//	bfsrun -scale 20 -plan all -trace-stream out.json -sample 8 -flightrec flight.json
//	bfsrun -scale 20 -plan all -pprof localhost:6060 -cpuprofile cpu.pb.gz -metrics-out m.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/fault"
	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

// config carries every knob of one bfsrun invocation so tests can
// drive run() without a flag set.
type config struct {
	scale      int
	edgeFactor int
	seed       uint64
	graphPath  string
	source     int
	planName   string
	m1, n1     float64
	m2, n2     float64
	perLevel   bool
	showCounts bool
	// timeout bounds the whole run (0 = none); the traversal checks
	// the deadline at every level boundary.
	timeout time.Duration
	// faults is a fault-schedule spec (see fault.Parse); when set the
	// plans are priced with the resilient simulator and the timing
	// report includes retries, replans, and the fault log.
	faults    string
	faultSeed uint64
	// tracePath, when set, streams the run's telemetry (real per-level
	// events from the reference traversal plus simulated per-step
	// timelines from every priced plan) to a Chrome trace-event JSON
	// file for chrome://tracing or Perfetto.
	tracePath string
	// traceStream writes the same trace through obs.StreamWriter:
	// incremental encoding with a bounded buffer, dropping events under
	// backpressure instead of growing — the serving-grade sink.
	traceStream string
	// sampleK keeps 1-in-K traversals (whole) in the trace sinks; 0 or 1
	// keeps everything. Metrics stay unsampled — counters are always-on.
	sampleK int
	// flightRec retains the last few traversals in an in-memory ring and
	// dumps them to this file at exit and on SIGQUIT.
	flightRec string
	// metricsOut writes the final counters as JSON to this file.
	metricsOut string
	// metrics prints the aggregated telemetry counters after the run.
	metrics bool
	// pprofAddr starts an HTTP server with /debug/pprof, /debug/vars,
	// and /metrics while the run executes.
	pprofAddr string
	// cpuProfile writes a CPU profile covering the whole run.
	cpuProfile string
	// shards, when > 0, also runs the partitioned engine for real with
	// that many ranks and reports the per-level exchanged bytes priced
	// through the selected fabric.
	shards int
	// fabric selects the interconnect model pricing the sharded
	// exchanges: smp, pcie, or eth10g.
	fabric string
	// chaos runs the deterministic chaos smoke suite instead of a
	// normal traversal: fixed rank-fault scenarios on small graphs,
	// each checked against the serial reference, nonzero exit on any
	// mismatch. Used by `make chaos`.
	chaos bool
}

func main() {
	var cfg config
	flag.IntVar(&cfg.scale, "scale", 16, "R-MAT SCALE (log2 vertices) when generating")
	flag.IntVar(&cfg.edgeFactor, "edgefactor", 16, "R-MAT edge factor when generating")
	flag.Uint64Var(&cfg.seed, "seed", 1, "R-MAT seed")
	flag.StringVar(&cfg.graphPath, "graph", "", "load a CSR graph file instead of generating")
	flag.IntVar(&cfg.source, "source", -1, "source vertex (-1 = first non-isolated)")
	flag.StringVar(&cfg.planName, "plan", "all", "plan: gputd, gpubu, gpucb, cputd, cpubu, cpucb, miccb, cputd+gpubu, cputd+gpucb, or 'all'")
	flag.Float64Var(&cfg.m1, "m1", 64, "host/cross M threshold")
	flag.Float64Var(&cfg.n1, "n1", 64, "host/cross N threshold")
	flag.Float64Var(&cfg.m2, "m2", 64, "coprocessor M threshold")
	flag.Float64Var(&cfg.n2, "n2", 64, "coprocessor N threshold")
	flag.BoolVar(&cfg.perLevel, "levels", true, "print per-level timings")
	flag.BoolVar(&cfg.showCounts, "counts", false, "print per-level work counts (|V|cq, |E|cq, scans)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.StringVar(&cfg.faults, "faults", "", "fault schedule, e.g. 'crash:KeplerK20x@4;transient:0.1'")
	flag.Uint64Var(&cfg.faultSeed, "faultseed", 1, "seed for transient-fault draws")
	flag.StringVar(&cfg.tracePath, "trace", "", "write Chrome trace-event JSON to this file (view in Perfetto)")
	flag.StringVar(&cfg.traceStream, "trace-stream", "", "write the trace through the bounded streaming sink (drops under backpressure)")
	flag.IntVar(&cfg.sampleK, "sample", 0, "keep 1-in-K traversals (whole) in trace sinks; 0 keeps all")
	flag.StringVar(&cfg.flightRec, "flightrec", "", "retain the last traversals in memory; dump to this file at exit and on SIGQUIT")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write final telemetry counters as JSON to this file")
	flag.BoolVar(&cfg.metrics, "metrics", false, "print aggregated telemetry counters after the run")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve /debug/pprof, /debug/vars, and /metrics on this address during the run")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.IntVar(&cfg.shards, "shards", 0, "also run the partitioned engine with this many ranks (0 = off)")
	flag.StringVar(&cfg.fabric, "fabric", "smp", "fabric model pricing sharded exchanges: smp, pcie, eth10g")
	flag.BoolVar(&cfg.chaos, "chaos", false, "run the deterministic rank-fault chaos smoke suite and exit")
	flag.Parse()

	if err := run(context.Background(), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bfsrun:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config) error {
	if cfg.chaos {
		return runChaos(ctx, cfg)
	}
	// Validate the cheap inputs (plan name, fault spec) before paying
	// for graph generation.
	plans, err := selectPlans(cfg.planName, cfg.m1, cfg.n1, cfg.m2, cfg.n2)
	if err != nil {
		return err
	}
	var sched *fault.Schedule
	if cfg.faults != "" {
		sched, err = fault.Parse(cfg.faults, cfg.faultSeed)
		if err != nil {
			return err
		}
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	tel, err := startTelemetry(cfg)
	if err != nil {
		return err
	}
	defer tel.close()

	var g *graph.CSR
	if cfg.graphPath != "" {
		g, err = graph.Load(cfg.graphPath)
	} else {
		p := rmat.DefaultParams(cfg.scale, cfg.edgeFactor)
		p.Seed = cfg.seed
		g, err = rmat.Generate(p)
	}
	if err != nil {
		return err
	}

	src, err := pickSource(g, cfg.source)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d directed edges, source %d\n", g.NumVertices(), g.NumEdges(), src)

	ws := bfs.DefaultPool.Get(g.NumVertices())
	tr, err := bfs.TraceFromObserved(ctx, g, src, ws, tel.rec)
	bfs.DefaultPool.Put(ws)
	if err != nil {
		return err
	}
	fmt.Printf("traversal: depth %d, %d reachable, %d edges visited\n\n", tr.Depth(), tr.Reachable, tr.EdgesVisited)

	if cfg.showCounts {
		for _, s := range tr.Steps {
			fmt.Printf("step %d: |V|cq=%d |E|cq=%d discovered=%d unvisited=%d buScans=%d meanScan=%.1f\n",
				s.Step, s.FrontierVertices, s.FrontierEdges, s.Discovered, s.UnvisitedVertices, s.BottomUpScans, s.MeanScan())
		}
		fmt.Println()
	}

	link := archsim.PCIe()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	var baseline float64
	for _, pl := range plans {
		if err := ctx.Err(); err != nil {
			return err
		}
		t, err := price(tr, pl, link, sched, tel.rec)
		if err != nil {
			var fe *fault.Error
			if errors.As(err, &fe) {
				// The plan cannot survive the schedule: report it and
				// keep pricing the remaining plans.
				fmt.Fprintf(w, "%s\tFAILED\t%v\n", pl.Name(), err)
				continue
			}
			return err
		}
		if baseline == 0 {
			baseline = t.Total
		}
		fmt.Fprintf(w, "%s\ttotal %.6fs\tspeedup %.1fx\tGTEPS %.3f", t.Plan, t.Total, baseline/t.Total, t.GTEPS())
		if t.Degraded() {
			fmt.Fprintf(w, "\tretries %d replans %d", t.Retries, t.Replans)
		}
		fmt.Fprintln(w)
		for _, f := range t.Faults {
			fmt.Fprintf(w, "\tfault\t%s\n", f)
		}
		if cfg.perLevel {
			for _, st := range t.Steps {
				fmt.Fprintf(w, "\tlevel %d\t%s %s\t%.6fs", st.Step, st.Kind, st.Dir, st.Kernel)
				if st.Transfer > 0 {
					fmt.Fprintf(w, "\t(+%.6fs transfer)", st.Transfer)
				}
				fmt.Fprintln(w)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if cfg.shards > 0 {
		if err := runSharded(ctx, cfg, g, src, sched, tel.rec); err != nil {
			return err
		}
	}
	if err := tel.close(); err != nil {
		return err
	}
	if cfg.metrics {
		fmt.Println()
		if err := tel.metrics.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if cfg.metricsOut != "" {
		f, err := os.Create(cfg.metricsOut)
		if err != nil {
			return err
		}
		werr := tel.metrics.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if cfg.tracePath != "" {
		fmt.Printf("trace written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", cfg.tracePath)
	}
	if cfg.traceStream != "" {
		fmt.Printf("streamed trace written to %s\n", cfg.traceStream)
	}
	if cfg.flightRec != "" {
		fmt.Printf("flight recorder dump written to %s (also on SIGQUIT)\n", cfg.flightRec)
	}
	return nil
}

// telemetry bundles the run's optional observers (trace file, streaming
// sink, sampler, flight recorder, metrics, profiling server, CPU
// profile) behind one Recorder and one teardown.
type telemetry struct {
	rec       obs.Recorder
	metrics   *obs.Metrics
	tw        *obs.TraceWriter
	traceF    *os.File
	stream    *obs.StreamWriter
	streamF   *os.File
	ring      *obs.Ring
	flightRec string
	sigC      chan os.Signal
	profF     *os.File
}

// serveOnce guards the process-global side effects of -pprof (expvar
// publication and default-mux handlers register once per process), so
// tests can drive run() repeatedly.
var serveOnce sync.Once

func startTelemetry(cfg config) (*telemetry, error) {
	tel := &telemetry{rec: obs.Nop}
	// Trace sinks are grouped so -sample gates them as one unit: a kept
	// traversal lands whole in EVERY sink, a dropped one in none.
	var traceRecs []obs.Recorder
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return nil, err
		}
		tel.traceF = f
		tel.tw = obs.NewTraceWriter(f)
		traceRecs = append(traceRecs, tel.tw)
	}
	if cfg.traceStream != "" {
		f, err := os.Create(cfg.traceStream)
		if err != nil {
			tel.close()
			return nil, err
		}
		tel.streamF = f
		tel.stream = obs.NewStreamWriter(f)
		traceRecs = append(traceRecs, tel.stream)
	}
	if cfg.flightRec != "" {
		tel.ring = obs.NewRing(obs.DefaultRingKeep, obs.DefaultRingMaxEvents)
		tel.flightRec = cfg.flightRec
		traceRecs = append(traceRecs, tel.ring)
		// SIGQUIT dumps the ring post hoc without killing the run — the
		// flight-recorder contract for a wedged or misbehaving process.
		tel.sigC = make(chan os.Signal, 1)
		signal.Notify(tel.sigC, syscall.SIGQUIT)
		go func(ring *obs.Ring, path string, c chan os.Signal) {
			for range c {
				if err := dumpRing(ring, path); err != nil {
					fmt.Fprintln(os.Stderr, "bfsrun: flight-recorder dump:", err)
				} else {
					fmt.Fprintln(os.Stderr, "bfsrun: flight recorder dumped to", path)
				}
			}
		}(tel.ring, tel.flightRec, tel.sigC)
	}
	var recs []obs.Recorder
	if len(traceRecs) > 0 {
		traced := obs.Multi(traceRecs...)
		if cfg.sampleK > 1 {
			// Seeded from -seed so a run is reproducible end to end.
			traced = obs.NewSampler(traced, cfg.sampleK, cfg.seed)
		}
		recs = append(recs, traced)
	}
	if cfg.metrics || cfg.metricsOut != "" || cfg.pprofAddr != "" {
		tel.metrics = obs.NewMetrics()
		recs = append(recs, tel.metrics)
	}
	tel.rec = obs.Multi(recs...)
	if cfg.pprofAddr != "" {
		m := tel.metrics
		serveOnce.Do(func() {
			m.Publish("crossbfs")
			http.Handle("/metrics", m.Handler())
		})
		go func() {
			// net/http/pprof registered /debug/pprof on the default mux.
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bfsrun: pprof server:", err)
			}
		}()
		fmt.Printf("serving http://%s/debug/pprof, /debug/vars, /metrics\n", cfg.pprofAddr)
	}
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			tel.close()
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			tel.close()
			return nil, err
		}
		tel.profF = f
	}
	return tel, nil
}

// close is idempotent: run() calls it explicitly to surface flush
// errors, and defers it to cover early returns.
func (t *telemetry) close() error {
	if t.profF != nil {
		pprof.StopCPUProfile()
		t.profF.Close()
		t.profF = nil
	}
	var err error
	if t.tw != nil {
		err = t.tw.Close()
		if cerr := t.traceF.Close(); err == nil {
			err = cerr
		}
		t.tw, t.traceF = nil, nil
	}
	if t.stream != nil {
		stats := t.stream.Stats()
		if cerr := t.stream.Close(); err == nil {
			err = cerr
		}
		if cerr := t.streamF.Close(); err == nil {
			err = cerr
		}
		if stats.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "bfsrun: streaming sink dropped %d events under backpressure\n", stats.Dropped)
		}
		t.stream, t.streamF = nil, nil
	}
	if t.sigC != nil {
		signal.Stop(t.sigC)
		close(t.sigC)
		t.sigC = nil
	}
	if t.ring != nil {
		if cerr := dumpRing(t.ring, t.flightRec); err == nil {
			err = cerr
		}
		t.ring = nil
	}
	return err
}

// dumpRing writes the flight recorder's retained traversals to path as
// a standalone Chrome trace.
func dumpRing(ring *obs.Ring, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := ring.WriteTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// price runs the clean simulator, or the resilient one when a fault
// schedule is in play. SimulateResilient re-arms the schedule itself,
// so one schedule prices every plan with identical transient draws.
// Either way the recorder sees the plan's simulated per-step timeline.
func price(tr *bfs.Trace, pl core.Plan, link archsim.Link, sched *fault.Schedule, rec obs.Recorder) (*core.Timing, error) {
	if sched == nil {
		return core.SimulateObserved(tr, pl, link, rec), nil
	}
	return core.SimulateResilient(tr, pl, link, core.ResilientOptions{Schedule: sched, Recorder: rec})
}

// runSharded executes the partitioned engine for real and prints the
// per-level exchange volumes priced through the selected fabric — the
// communication-vs-computation view of the 1D-sharded traversal. With
// a -faults schedule the ranks run under injection: crashes, lag, and
// dropped collectives hit the exchange seams, survivors recover from
// checkpoints, and the report carries the rank fault log and a
// RECOVERED (or FAILED) verdict instead of assuming a clean run.
func runSharded(ctx context.Context, cfg config, g *graph.CSR, src int32, sched *fault.Schedule, rec obs.Recorder) error {
	fab, err := pickFabric(cfg.fabric, cfg.shards)
	if err != nil {
		return err
	}
	plan := core.ShardedPlan{
		Device: archsim.SandyBridge(),
		Ranks:  cfg.shards,
		Fabric: fab,
		M:      cfg.m1,
		N:      cfg.n1,
	}
	start := time.Now()
	var res *bfs.Result
	var timing *core.Timing
	if sched != nil {
		res, timing, err = core.ExecuteShardedResilient(ctx, g, src, plan, nil,
			core.ResilientOptions{Schedule: sched, Recorder: rec})
	} else {
		res, timing, err = core.ExecuteSharded(ctx, g, src, plan, nil, rec)
	}
	if err != nil {
		var fe *fault.Error
		if errors.As(err, &fe) {
			// Even the single-device fallback could not finish: report
			// the failed row the way the plan table does and move on.
			fmt.Printf("\nsharded: %d ranks over %s\tFAILED\t%v\n", cfg.shards, fab.Name, err)
			return nil
		}
		return err
	}
	wall := time.Since(start)
	fmt.Printf("\nsharded: %d ranks over %s, wall %.6fs, modeled %.6fs (%.6fs on the fabric), GTEPS %.3f\n",
		cfg.shards, fab.Name, wall.Seconds(), timing.Total, timing.Transfers, timing.GTEPS())
	if rv := res.Recovery; rv.RanksLost > 0 || rv.ExchangeRetries > 0 {
		fmt.Printf("\tRECOVERED: %d rank(s) lost, %d recoveries, %d exchange retries, %dB checkpointed\n",
			rv.RanksLost, rv.Recoveries, rv.ExchangeRetries, rv.CheckpointBytes)
	}
	for _, f := range timing.Faults {
		fmt.Printf("\tfault: %s\n", f)
	}
	if !cfg.perLevel {
		return nil
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for i, ex := range res.Exchanges {
		st := timing.Steps[i]
		fmt.Fprintf(w, "\tlevel %d\t%s\tdelta %dB\tghosts %dB (%d/%d applied)\t%.6fs kernel\t%.6fs exchange\n",
			ex.Step, ex.Dir, ex.FrontierBytes, ex.GhostBytes, ex.GhostApplied, ex.GhostSent,
			st.Kernel, st.Transfer)
	}
	return w.Flush()
}

// runChaos is the -chaos smoke suite: a fixed matrix of rank-fault
// scenarios on a small R-MAT graph, every surviving traversal checked
// level-for-level against the serial reference and through the Graph
// 500 validator. Scenarios are deterministic (fixed seeds, scheduled
// crash levels), so a failure here is a recovery-protocol bug, not
// flakiness. Any mismatch makes the run return an error (exit 1).
func runChaos(ctx context.Context, cfg config) error {
	p := rmat.DefaultParams(10, 8)
	p.Seed = cfg.seed
	g, err := rmat.Generate(p)
	if err != nil {
		return err
	}
	src, err := pickSource(g, cfg.source)
	if err != nil {
		return err
	}
	ref, err := bfs.Serial(g, src)
	if err != nil {
		return err
	}
	scenarios := []string{
		"rankcrash:1@2",
		"rankcrash:0@1",
		"rankcrash:0@2;rankcrash:2@3",
		"ranklag:1x4@2",
		"exchdrop:0.25",
		"rankcrash:1@3;exchdrop:0.2",
	}
	fmt.Printf("chaos: scale-10 R-MAT, %d vertices, source %d, %d scenarios x ranks {2,4}\n",
		g.NumVertices(), src, len(scenarios))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	failures := 0
	for _, spec := range scenarios {
		for _, ranks := range []int{2, 4} {
			sched, err := fault.Parse(spec, cfg.faultSeed)
			if err != nil {
				return err
			}
			plan := core.ShardedPlan{
				Device: archsim.SandyBridge(), Ranks: ranks,
				Fabric: archsim.SMP(ranks), M: cfg.m1, N: cfg.n1,
			}
			res, _, err := core.ExecuteShardedResilient(ctx, g, src, plan, nil,
				core.ResilientOptions{Schedule: sched})
			verdict := chaosVerdict(g, ref, res, err)
			if strings.HasPrefix(verdict, "FAIL") {
				failures++
			}
			rv := bfs.RecoveryStats{}
			if res != nil {
				rv = res.Recovery
			}
			fmt.Fprintf(w, "\t%s\tranks=%d\t%s\tlost=%d recoveries=%d retries=%d ckpt=%dB\n",
				spec, ranks, verdict, rv.RanksLost, rv.Recoveries, rv.ExchangeRetries, rv.CheckpointBytes)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("chaos: %d scenario(s) failed", failures)
	}
	fmt.Println("chaos: all scenarios recovered and matched the serial reference")
	return nil
}

// chaosVerdict grades one chaos scenario: the traversal must complete
// (recovering if it must) and agree with the serial reference exactly.
func chaosVerdict(g *graph.CSR, ref, res *bfs.Result, err error) string {
	if err != nil {
		return fmt.Sprintf("FAIL (%v)", err)
	}
	if err := bfs.Validate(g, res); err != nil {
		return fmt.Sprintf("FAIL (validate: %v)", err)
	}
	for v := range ref.Level {
		if ref.Level[v] != res.Level[v] {
			return fmt.Sprintf("FAIL (level[%d]=%d, serial %d)", v, res.Level[v], ref.Level[v])
		}
	}
	return "OK"
}

// pickFabric maps the -fabric flag to its archsim model.
func pickFabric(name string, ranks int) (*archsim.Fabric, error) {
	switch strings.ToLower(name) {
	case "smp":
		return archsim.SMP(ranks), nil
	case "pcie":
		return archsim.PCIeFabric(ranks), nil
	case "eth10g":
		return archsim.Eth10G(ranks), nil
	default:
		return nil, fmt.Errorf("unknown fabric %q (have: smp, pcie, eth10g)", name)
	}
}

func pickSource(g *graph.CSR, requested int) (int32, error) {
	if requested >= 0 {
		if requested >= g.NumVertices() {
			return 0, fmt.Errorf("source %d out of range [0,%d)", requested, g.NumVertices())
		}
		return int32(requested), nil
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v), nil
		}
	}
	return 0, fmt.Errorf("graph has no edges")
}

func selectPlans(name string, m1, n1, m2, n2 float64) ([]core.Plan, error) {
	cpu, gpu, mic := archsim.SandyBridge(), archsim.KeplerK20x(), archsim.KnightsCorner()
	all := []core.Plan{
		core.FixedDirection(gpu, bfs.TopDown),
		core.FixedDirection(gpu, bfs.BottomUp),
		core.Combination(gpu, m2, n2),
		core.FixedDirection(cpu, bfs.TopDown),
		core.FixedDirection(cpu, bfs.BottomUp),
		core.Combination(cpu, m1, n1),
		core.Combination(mic, m1, n1),
		core.CrossTDBU{Host: cpu, Coprocessor: gpu, M1: m1, N1: n1},
		core.CrossPlan{Host: cpu, Coprocessor: gpu, M1: m1, N1: n1, M2: m2, N2: n2},
	}
	if name == "all" {
		return all, nil
	}
	for _, pl := range all {
		if strings.EqualFold(pl.Name(), name) {
			return []core.Plan{pl}, nil
		}
	}
	names := make([]string, len(all))
	for i, pl := range all {
		names[i] = pl.Name()
	}
	return nil, fmt.Errorf("unknown plan %q (have: %s, all)", name, strings.Join(names, ", "))
}
