package main

import (
	"path/filepath"
	"testing"

	"crossbfs/internal/rmat"
)

func TestRunAllPlans(t *testing.T) {
	if err := run(10, 8, 1, "", -1, "all", 64, 64, 64, 64, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSinglePlan(t *testing.T) {
	if err := run(9, 8, 1, "", -1, "cputd+gpucb", 64, 64, 64, 64, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownPlan(t *testing.T) {
	if err := run(8, 8, 1, "", -1, "warpdrive", 64, 64, 64, 64, false, false); err == nil {
		t.Error("unknown plan accepted")
	}
}

func TestRunFromGraphFile(t *testing.T) {
	g, err := rmat.Generate(rmat.DefaultParams(9, 8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 0, 0, path, -1, "cpucb", 64, 64, 64, 64, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSource(t *testing.T) {
	if err := run(8, 8, 1, "", 1<<20, "cpucb", 64, 64, 64, 64, false, false); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestSelectPlansNames(t *testing.T) {
	plans, err := selectPlans("all", 64, 64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 9 {
		t.Errorf("%d plans in 'all', want 9", len(plans))
	}
}
