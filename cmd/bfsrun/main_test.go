package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

func cfg(scale int, plan string) config {
	return config{
		scale:      scale,
		edgeFactor: 8,
		seed:       1,
		source:     -1,
		planName:   plan,
		m1:         64, n1: 64, m2: 64, n2: 64,
		faultSeed: 1,
	}
}

func TestRunAllPlans(t *testing.T) {
	c := cfg(10, "all")
	c.perLevel = true
	c.showCounts = true
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceExport is the CLI half of the observability acceptance
// test: bfsrun -trace must produce a Chrome trace whose per-level
// events reconstruct the hybrid's exact TD->BU->TD switch pattern.
func TestRunTraceExport(t *testing.T) {
	c := cfg(12, "cputd+gpucb")
	c.metrics = true
	c.tracePath = filepath.Join(t.TempDir(), "out.json")
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := obs.ValidateTrace(data)
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if s.Levels == 0 || s.SimSteps == 0 {
		t.Fatalf("trace missing timelines: %d levels, %d sim steps", s.Levels, s.SimSteps)
	}
	// The reference traversal is serial top-down, so the real timeline
	// never switches; the simulated cross plan must show the paper's
	// TD-then-BU shape: at least one switch into bottom-up.
	for _, tid := range obs.TimelineIDs(s.LevelDirs) {
		for _, d := range s.LevelDirs[tid] {
			if d != "TD" {
				t.Errorf("reference traversal lane has non-TD level %q", d)
			}
		}
	}
	sawBU := false
	for _, tid := range obs.TimelineIDs(s.SimDirs) {
		if steps := obs.SwitchSteps(s.SimDirs[tid]); len(steps) > 0 {
			sawBU = true
		}
	}
	if !sawBU {
		t.Error("no simulated timeline ever switches direction; cross plan trace is wrong")
	}
	if s.Handoffs == 0 {
		t.Error("cross plan trace has no device handoff")
	}
}

// TestRunStreamedTrace drives -trace-stream: the bounded streaming sink
// must produce a trace just as valid as the buffered TraceWriter's.
func TestRunStreamedTrace(t *testing.T) {
	c := cfg(11, "cputd+gpucb")
	c.traceStream = filepath.Join(t.TempDir(), "stream.json")
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.traceStream)
	if err != nil {
		t.Fatal(err)
	}
	s, err := obs.ValidateTrace(data)
	if err != nil {
		t.Fatalf("streamed trace invalid: %v", err)
	}
	if s.Levels == 0 || s.SimSteps == 0 {
		t.Errorf("streamed trace missing timelines: %d levels, %d sim steps", s.Levels, s.SimSteps)
	}
}

// TestRunSampledTrace drives -sample: every timeline — the reference
// traversal and the 9 plan timelines all carry engine-stamped
// TraversalIDs — is kept or dropped whole, and whatever survives is
// still a valid trace. Which IDs land in the sample depends on the
// process-wide ID counter, so assert on the aggregate, not on any
// specific timeline surviving.
func TestRunSampledTrace(t *testing.T) {
	c := cfg(10, "all")
	c.sampleK = 2
	c.tracePath = filepath.Join(t.TempDir(), "sampled.json")
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := obs.ValidateTrace(data)
	if err != nil {
		t.Fatalf("sampled trace invalid: %v", err)
	}
	lanes := len(obs.TimelineIDs(s.LevelDirs)) + len(obs.TimelineIDs(s.SimDirs))
	if lanes == 0 || lanes >= 10 {
		t.Errorf("sampled trace has %d timelines, want a strict nonzero subset of the 10 recorded", lanes)
	}
}

// TestRunFlightRecorder drives -flightrec: the exit-time dump must be a
// valid standalone trace holding the most recent plan timelines.
func TestRunFlightRecorder(t *testing.T) {
	c := cfg(10, "all")
	c.flightRec = filepath.Join(t.TempDir(), "flight.json")
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.flightRec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := obs.ValidateTrace(data)
	if err != nil {
		t.Fatalf("flight-recorder dump invalid: %v", err)
	}
	if n := len(obs.TimelineIDs(s.SimDirs)); n == 0 || n > obs.DefaultRingKeep {
		t.Errorf("dump has %d sim timelines, want 1..%d", n, obs.DefaultRingKeep)
	}
}

// TestRunMetricsOut drives -metrics-out: a JSON counters file matching
// the run, with the documented stable shape.
func TestRunMetricsOut(t *testing.T) {
	c := cfg(10, "cputd+gpucb")
	c.metricsOut = filepath.Join(t.TempDir(), "metrics.json")
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("-metrics-out is not a JSON object: %v\n%s", err, data)
	}
	if m["traversals_total"] < 1 || m["levels_total"] == 0 || m["sim_steps_total"] == 0 {
		t.Errorf("counters don't reflect the run: %v", m)
	}
}

func TestRunSinglePlan(t *testing.T) {
	if err := run(context.Background(), cfg(9, "cputd+gpucb")); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownPlan(t *testing.T) {
	if err := run(context.Background(), cfg(8, "warpdrive")); err == nil {
		t.Error("unknown plan accepted")
	}
}

func TestRunFromGraphFile(t *testing.T) {
	g, err := rmat.Generate(rmat.DefaultParams(9, 8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	c := cfg(0, "cpucb")
	c.graphPath = path
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSource(t *testing.T) {
	c := cfg(8, "cpucb")
	c.source = 1 << 20
	if err := run(context.Background(), c); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	c := cfg(8, "cpucb")
	c.faults = "meltdown:everything"
	if err := run(context.Background(), c); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

func TestRunWithFaults(t *testing.T) {
	// A dead GPU must not abort the run: cross plans replan onto the
	// host, GPU-only plans report FAILED, and the command still exits
	// cleanly.
	c := cfg(10, "all")
	c.faults = "crash:KeplerK20x@1;transient:0.2"
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeoutExpired(t *testing.T) {
	c := cfg(10, "all")
	c.timeout = time.Nanosecond
	err := run(context.Background(), c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSelectPlansNames(t *testing.T) {
	plans, err := selectPlans("all", 64, 64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 9 {
		t.Errorf("%d plans in 'all', want 9", len(plans))
	}
}
