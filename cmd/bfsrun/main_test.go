package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

func cfg(scale int, plan string) config {
	return config{
		scale:      scale,
		edgeFactor: 8,
		seed:       1,
		source:     -1,
		planName:   plan,
		m1:         64, n1: 64, m2: 64, n2: 64,
		faultSeed: 1,
	}
}

func TestRunAllPlans(t *testing.T) {
	c := cfg(10, "all")
	c.perLevel = true
	c.showCounts = true
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceExport is the CLI half of the observability acceptance
// test: bfsrun -trace must produce a Chrome trace whose per-level
// events reconstruct the hybrid's exact TD->BU->TD switch pattern.
func TestRunTraceExport(t *testing.T) {
	c := cfg(12, "cputd+gpucb")
	c.metrics = true
	c.tracePath = filepath.Join(t.TempDir(), "out.json")
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := obs.ValidateTrace(data)
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if s.Levels == 0 || s.SimSteps == 0 {
		t.Fatalf("trace missing timelines: %d levels, %d sim steps", s.Levels, s.SimSteps)
	}
	// The reference traversal is serial top-down, so the real timeline
	// never switches; the simulated cross plan must show the paper's
	// TD-then-BU shape: at least one switch into bottom-up.
	for _, tid := range obs.TimelineIDs(s.LevelDirs) {
		for _, d := range s.LevelDirs[tid] {
			if d != "TD" {
				t.Errorf("reference traversal lane has non-TD level %q", d)
			}
		}
	}
	sawBU := false
	for _, tid := range obs.TimelineIDs(s.SimDirs) {
		if steps := obs.SwitchSteps(s.SimDirs[tid]); len(steps) > 0 {
			sawBU = true
		}
	}
	if !sawBU {
		t.Error("no simulated timeline ever switches direction; cross plan trace is wrong")
	}
	if s.Handoffs == 0 {
		t.Error("cross plan trace has no device handoff")
	}
}

func TestRunSinglePlan(t *testing.T) {
	if err := run(context.Background(), cfg(9, "cputd+gpucb")); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownPlan(t *testing.T) {
	if err := run(context.Background(), cfg(8, "warpdrive")); err == nil {
		t.Error("unknown plan accepted")
	}
}

func TestRunFromGraphFile(t *testing.T) {
	g, err := rmat.Generate(rmat.DefaultParams(9, 8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	c := cfg(0, "cpucb")
	c.graphPath = path
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSource(t *testing.T) {
	c := cfg(8, "cpucb")
	c.source = 1 << 20
	if err := run(context.Background(), c); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	c := cfg(8, "cpucb")
	c.faults = "meltdown:everything"
	if err := run(context.Background(), c); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

func TestRunWithFaults(t *testing.T) {
	// A dead GPU must not abort the run: cross plans replan onto the
	// host, GPU-only plans report FAILED, and the command still exits
	// cleanly.
	c := cfg(10, "all")
	c.faults = "crash:KeplerK20x@1;transient:0.2"
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeoutExpired(t *testing.T) {
	c := cfg(10, "all")
	c.timeout = time.Nanosecond
	err := run(context.Background(), c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSelectPlansNames(t *testing.T) {
	plans, err := selectPlans("all", 64, 64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 9 {
		t.Errorf("%d plans in 'all', want 9", len(plans))
	}
}
