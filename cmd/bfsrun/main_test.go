package main

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"crossbfs/internal/rmat"
)

func cfg(scale int, plan string) config {
	return config{
		scale:      scale,
		edgeFactor: 8,
		seed:       1,
		source:     -1,
		planName:   plan,
		m1:         64, n1: 64, m2: 64, n2: 64,
		faultSeed: 1,
	}
}

func TestRunAllPlans(t *testing.T) {
	c := cfg(10, "all")
	c.perLevel = true
	c.showTrace = true
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunSinglePlan(t *testing.T) {
	if err := run(context.Background(), cfg(9, "cputd+gpucb")); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownPlan(t *testing.T) {
	if err := run(context.Background(), cfg(8, "warpdrive")); err == nil {
		t.Error("unknown plan accepted")
	}
}

func TestRunFromGraphFile(t *testing.T) {
	g, err := rmat.Generate(rmat.DefaultParams(9, 8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	c := cfg(0, "cpucb")
	c.graphPath = path
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSource(t *testing.T) {
	c := cfg(8, "cpucb")
	c.source = 1 << 20
	if err := run(context.Background(), c); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	c := cfg(8, "cpucb")
	c.faults = "meltdown:everything"
	if err := run(context.Background(), c); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

func TestRunWithFaults(t *testing.T) {
	// A dead GPU must not abort the run: cross plans replan onto the
	// host, GPU-only plans report FAILED, and the command still exits
	// cleanly.
	c := cfg(10, "all")
	c.faults = "crash:KeplerK20x@1;transient:0.2"
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeoutExpired(t *testing.T) {
	c := cfg(10, "all")
	c.timeout = time.Nanosecond
	err := run(context.Background(), c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSelectPlansNames(t *testing.T) {
	plans, err := selectPlans("all", 64, 64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 9 {
		t.Errorf("%d plans in 'all', want 9", len(plans))
	}
}
