// Archcompare reproduces the paper's third contribution — a pairwise
// comparison of CPU, GPU and MIC for BFS-shaped workloads — over a
// sweep of graph sizes, and prints the conclusions the paper draws
// (Table VI, §VII): the GPU wins small and mid-sized graphs, the CPU
// overtakes on large ones whose frontier bitmaps no longer fit the
// GPU's small cache, and the MIC trails both without SIMD-specific
// tuning.
package main

import (
	"fmt"
	"log"

	"crossbfs"
)

func main() {
	archs := []crossbfs.Arch{crossbfs.CPU(), crossbfs.GPU(), crossbfs.MIC()}

	fmt.Println("architecture datasheets (paper Table II):")
	for _, a := range archs {
		fmt.Printf("  %-18s %4.2f GHz, %6.0f SP Gflops, %5.0f GB/s measured, RCMB %.1f\n",
			a.Name, a.ClockGHz, a.PeakSPGflops, a.MeasuredBW, a.RCMB())
	}
	fmt.Println("\nBFS is memory-bound everywhere: algorithmic flops/byte ~0.5 vs")
	fmt.Println("the RCMB figures above (paper §III-B).")

	fmt.Println("\ntuned combination, harmonic-mean TEPS over 8 roots per graph:")
	fmt.Printf("%8s %12s", "scale", "edges")
	for _, a := range archs {
		fmt.Printf(" %12s", a.Kind)
	}
	fmt.Println(" winner")

	for _, scale := range []int{13, 14, 15, 16, 17, 18} {
		g, err := crossbfs.GenerateRMAT(scale, 16, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d", scale, g.NumEdges())
		bestName, bestTEPS := "", 0.0
		for _, a := range archs {
			plan := crossbfs.NewCombination(a, 64, 64)
			rep, err := crossbfs.BenchmarkTEPS(g, plan, 8)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.3f GT", rep.GTEPS())
			if rep.Harmonic > bestTEPS {
				bestTEPS, bestName = rep.Harmonic, a.Kind.String()
			}
		}
		fmt.Printf(" %s\n", bestName)
	}

	fmt.Println("\nand the cross-architecture combination on the largest graph:")
	g, err := crossbfs.GenerateRMAT(18, 16, 1)
	if err != nil {
		log.Fatal(err)
	}
	cross := crossbfs.NewCrossPlan(crossbfs.CPU(), crossbfs.GPU(), 64, 64, 64, 64)
	rep, err := crossbfs.BenchmarkTEPS(g, cross, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s %.3f GTEPS (harmonic mean over %d roots)\n", rep.Plan, rep.GTEPS(), rep.NumRoots)
}
