// Roadnetwork is the counter-case to the paper's scale-free graphs: a
// grid-like road network with bounded degree and huge diameter. Here
// the frontier never bulges (it grows like the perimeter of a disc),
// so bottom-up should rarely or never win — a good adaptive heuristic
// must recognize that and keep the traversal top-down, while a
// combination mistuned for social graphs would pay dearly.
package main

import (
	"fmt"
	"log"

	"crossbfs"
)

const side = 256 // side x side intersections

func main() {
	g, err := buildGrid(side)
	if err != nil {
		log.Fatal(err)
	}
	stats := g.ComputeStats()
	fmt.Printf("road network: %d intersections, %d road segments, max degree %d\n",
		stats.NumVertices, stats.NumEdges/2, stats.MaxDegree)
	fmt.Printf("diameter (double sweep): %d\n\n", g.ApproxDiameter(0))

	source := int32(0) // a corner: worst case for frontier growth
	res, err := crossbfs.BFS(g, source)
	if err != nil {
		log.Fatal(err)
	}
	if err := crossbfs.ValidateBFS(g, res); err != nil {
		log.Fatal(err)
	}

	td, bu := 0, 0
	for _, d := range res.Directions {
		if d == crossbfs.TopDown {
			td++
		} else {
			bu++
		}
	}
	fmt.Printf("hybrid BFS from corner: %d levels, %d top-down, %d bottom-up\n", res.NumLevels(), td, bu)
	fmt.Println("(on a road network the frontier stays narrow, so the hybrid should")
	fmt.Println(" stay top-down for nearly the whole traversal)")

	// Compare the engines for real on this machine.
	fmt.Println("\nmeasured wall times on this machine:")
	times, err := crossbfs.MeasureAll(g, source)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"top-down", "hybrid-mn", "beamer-ab", "bottom-up"} {
		fmt.Printf("  %-10s %v\n", name, times[name])
	}

	// And on the simulator: with ~300 tiny levels, per-level launch
	// overhead dominates everything, so the device with the cheapest
	// kernel dispatch wins — the same effect that makes the paper's
	// GPU faster than the CPU on the *last* levels of Table IV.
	// Bottom-up and cross-architecture handoffs never pay here.
	fmt.Println("\nsimulated platform comparison (launch-overhead bound):")
	for _, plan := range []crossbfs.Plan{
		crossbfs.NewCombination(crossbfs.CPU(), 64, 64),
		crossbfs.NewCombination(crossbfs.GPU(), 64, 64),
		crossbfs.NewCrossPlan(crossbfs.CPU(), crossbfs.GPU(), 64, 64, 64, 64),
	} {
		timing, err := crossbfs.Simulate(g, source, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.6fs\n", timing.Plan, timing.Total)
	}
}

// buildGrid makes a side x side 4-connected grid with a few diagonal
// shortcuts (highways) to keep it road-like rather than perfectly
// regular.
func buildGrid(n int) (*crossbfs.Graph, error) {
	id := func(r, c int) int32 { return int32(r*n + c) } //lint:narrow-ok example grid side n stays in the hundreds
	var edges []crossbfs.Edge
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				edges = append(edges, crossbfs.Edge{From: id(r, c), To: id(r, c+1)})
			}
			if r+1 < n {
				edges = append(edges, crossbfs.Edge{From: id(r, c), To: id(r+1, c)})
			}
			// A sparse highway grid every 32 blocks.
			if r%32 == 0 && c+8 < n {
				edges = append(edges, crossbfs.Edge{From: id(r, c), To: id(r, c+8)})
			}
		}
	}
	return crossbfs.BuildGraph(n*n, edges) //lint:narrow-ok example grid side n stays in the hundreds
}
