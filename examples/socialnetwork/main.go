// Social network analysis — the paper's opening motivation (§I cites
// user-interaction graphs). This example synthesizes a community-
// structured network with hub users, then uses BFS to answer the
// questions such graphs get asked: degrees of separation, reachable
// audience by hop count, and which engine to use for the workload.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"crossbfs"
)

const (
	numUsers      = 1 << 15
	numCommunity  = 64
	friendsPerUsr = 12
	hubDivisor    = 500 // one celebrity per 500 users
)

func main() {
	g, err := buildNetwork()
	if err != nil {
		log.Fatal(err)
	}
	stats := g.ComputeStats()
	fmt.Printf("network: %d users, %d friendships, max friends %d, avg %.1f\n",
		stats.NumVertices, stats.NumEdges/2, stats.MaxDegree, stats.AvgDegree)

	// Degrees of separation from a random user, computed with the
	// direction-optimizing hybrid (real execution).
	source := int32(42)
	res, err := crossbfs.BFS(g, source)
	if err != nil {
		log.Fatal(err)
	}
	if err := crossbfs.ValidateBFS(g, res); err != nil {
		log.Fatal(err)
	}

	hops := make(map[int32]int64)
	for _, l := range res.Level {
		if l >= 0 {
			hops[l]++
		}
	}
	fmt.Printf("\naudience of user %d by hop count (reachable: %d of %d):\n",
		source, res.VisitedCount, g.NumVertices())
	var cumulative int64
	for h := int32(0); h <= res.Depth(); h++ {
		cumulative += hops[h]
		fmt.Printf("  <= %d hops: %8d users (%.1f%%)\n",
			h, cumulative, 100*float64(cumulative)/float64(g.NumVertices()))
	}
	fmt.Printf("degrees of separation (diameter from user %d): %d\n", source, res.Depth())

	// Which engine fits this workload? Compare all three for real and
	// report where the hybrid switched.
	fmt.Println("\nengine comparison (directions chosen per level):")
	for name, run := range map[string]func(*crossbfs.Graph, int32) (*crossbfs.Result, error){
		"top-down ": crossbfs.BFSTopDown,
		"bottom-up": crossbfs.BFSBottomUp,
		"hybrid   ": crossbfs.BFS,
	} {
		r, err := run(g, source)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s levels=%d directions=%v\n", name, r.NumLevels(), r.Directions)
	}

	// And on which hardware? Price the tuned plans.
	fmt.Println("\nsimulated platform comparison:")
	for _, plan := range []crossbfs.Plan{
		crossbfs.NewCombination(crossbfs.CPU(), 64, 64),
		crossbfs.NewCombination(crossbfs.GPU(), 64, 64),
		crossbfs.NewCombination(crossbfs.MIC(), 64, 64),
		crossbfs.NewCrossPlan(crossbfs.CPU(), crossbfs.GPU(), 64, 64, 64, 64),
	} {
		timing, err := crossbfs.Simulate(g, source, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.6fs (%.3f GTEPS)\n", timing.Plan, timing.Total, timing.GTEPS())
	}
}

// buildNetwork synthesizes a community-clustered friendship graph:
// most edges stay inside a user's community, a few bridge communities,
// and a small set of hub users (celebrities) attract long-range edges.
func buildNetwork() (*crossbfs.Graph, error) {
	rng := rand.New(rand.NewSource(7))
	communitySize := numUsers / numCommunity
	numHubs := numUsers / hubDivisor

	var edges []crossbfs.Edge
	for u := 0; u < numUsers; u++ {
		community := u / communitySize
		base := community * communitySize //lint:narrow-ok bounded by numUsers, an example-sized constant
		for f := 0; f < friendsPerUsr; f++ {
			var v int
			switch {
			case rng.Float64() < 0.75:
				// Friend within the community.
				v = base + rng.Intn(communitySize)
			case rng.Float64() < 0.5 && numHubs > 0:
				// Follow a celebrity.
				v = rng.Intn(numHubs)
			default:
				// Long-range acquaintance.
				v = rng.Intn(numUsers)
			}
			if v != u {
				edges = append(edges, crossbfs.Edge{From: int32(u), To: int32(v)})
			}
		}
	}
	return crossbfs.BuildGraph(numUsers, edges)
}
