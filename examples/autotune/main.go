// Autotune walks the paper's full adaptive loop (Fig. 6): build a
// training corpus off-line, train the SVM regression model, then — at
// "runtime" — predict switching points for a graph the model has never
// seen, assemble Algorithm 3 with them, and compare against fixed and
// badly tuned switching points.
package main

import (
	"fmt"
	"log"

	"crossbfs"
)

func main() {
	// ---- Off-line stage (one-time cost, paper Fig. 6 left) ----
	fmt.Println("training switching-point model (exhaustive labelling on the simulator)...")
	model, err := crossbfs.TrainDefaultModel(func(done, total int) {
		if done%36 == 0 || done == total {
			fmt.Printf("  %d/%d samples labelled\n", done, total)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// ---- On-line stage: a graph outside the training corpus ----
	params := crossbfs.RMATParams{
		Scale: 15, EdgeFactor: 12,
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Seed: 99, Permute: true,
	}
	g, err := crossbfs.GenerateRMATWith(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnew graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())

	host, cop := crossbfs.CPU(), crossbfs.GPU()
	boundary := crossbfs.PredictSwitchPoint(model, params, g, host, cop)
	onGPU := crossbfs.PredictSwitchPoint(model, params, g, cop, cop)
	fmt.Printf("predicted boundary (CPU->GPU): %s\n", boundary)
	fmt.Printf("predicted on-GPU switching:    %s\n", onGPU)

	adaptive, err := crossbfs.NewAdaptiveCrossPlan(model, params, g, host, cop)
	if err != nil {
		log.Fatal(err)
	}

	// Compare the adaptive plan against alternatives on one traversal.
	source := firstNonIsolated(g)
	fmt.Printf("\nsimulated cross-architecture timings (source %d):\n", source)
	for _, entry := range []struct {
		label string
		plan  crossbfs.Plan
	}{
		{"adaptive (regression)", adaptive},
		{"fixed M=N=64", crossbfs.NewCrossPlan(host, cop, 64, 64, 64, 64)},
		{"mistuned M=N=1", crossbfs.NewCrossPlan(host, cop, 1, 1, 1, 1)},
		{"mistuned M=N=1e6", crossbfs.NewCrossPlan(host, cop, 1e6, 1e6, 1e6, 1e6)},
	} {
		timing, err := crossbfs.Simulate(g, source, entry.plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %.6fs (%.3f GTEPS)\n", entry.label, timing.Total, timing.GTEPS())
	}
	fmt.Println("\nprediction cost is two SVR evaluations — microseconds against a")
	fmt.Println("multi-millisecond traversal, the paper's <0.1% overhead claim.")
}

func firstNonIsolated(g *crossbfs.Graph) int32 {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v)
		}
	}
	return 0
}
