// Quickstart: generate an R-MAT graph, run a real hybrid BFS on it,
// then price the paper's cross-architecture plan (Algorithm 3) on the
// simulated CPU+GPU pair and compare it with the single-device
// baselines.
package main

import (
	"fmt"
	"log"

	"crossbfs"
)

func main() {
	// A Graph 500-style graph: 2^14 vertices, 16*2^14 generated edges.
	g, err := crossbfs.GenerateRMAT(14, 16, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())

	// Pick a source and run the direction-optimizing hybrid for real.
	source := firstNonIsolated(g)
	res, err := crossbfs.BFS(g, source)
	if err != nil {
		log.Fatal(err)
	}
	if err := crossbfs.ValidateBFS(g, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS from %d: %d reachable, depth %d, directions %v\n",
		source, res.VisitedCount, res.Depth(), res.Directions)

	// Price three plans on the architecture simulator.
	plans := []crossbfs.Plan{
		crossbfs.NewBaseline(crossbfs.GPU(), crossbfs.TopDown),
		crossbfs.NewCombination(crossbfs.GPU(), 64, 64),
		crossbfs.NewCrossPlan(crossbfs.CPU(), crossbfs.GPU(), 64, 64, 64, 64),
	}
	fmt.Println("\nsimulated timings:")
	var baseline float64
	for _, plan := range plans {
		timing, err := crossbfs.Simulate(g, source, plan)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = timing.Total
		}
		fmt.Printf("  %-12s %.6fs  (%.1fx over GPUTD, %.3f GTEPS)\n",
			timing.Plan, timing.Total, baseline/timing.Total, timing.GTEPS())
	}
}

func firstNonIsolated(g *crossbfs.Graph) int32 {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v)
		}
	}
	return 0
}
