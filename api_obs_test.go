package crossbfs

import (
	"bytes"
	"testing"
)

// TestPublicObservabilitySurface drives the re-exported serving-grade
// sinks end to end: a BFSMany batch recorded through a Sampler into a
// StreamWriter and a FlightRecorder, all via the public constructors.
func TestPublicObservabilitySurface(t *testing.T) {
	g, err := GenerateRMAT(10, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	roots := make([]int32, 12)
	for i := range roots {
		roots[i] = int32(i)
	}

	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	ring := NewFlightRecorder(4, 0)
	sampler := NewSampler(MultiRecorder(sw, ring), 2, 99)

	if _, err := BFSMany(g, roots, ManyOptions{Recorder: sampler, Concurrency: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	if sampler.Seen() != uint64(len(roots)) {
		t.Errorf("sampler saw %d traversals, want %d", sampler.Seen(), len(roots))
	}
	kept := sampler.Kept()
	if kept == 0 || kept == uint64(len(roots)) {
		t.Fatalf("sampler kept %d of %d at k=2 — degenerate; pick another seed", kept, len(roots))
	}

	if sw.Stats().Dropped == 0 {
		s, err := ValidateTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("streamed trace invalid: %v", err)
		}
		if len(s.LevelDirs) != int(kept) {
			t.Errorf("stream has %d traversal lanes, sampler kept %d", len(s.LevelDirs), kept)
		}
	}

	want := kept
	if want > 4 {
		want = 4
	}
	if st := ring.Stats(); st.Retained != int(want) {
		t.Errorf("flight recorder stats %+v, want %d retained", st, want)
	}
	var dump bytes.Buffer
	if err := ring.WriteTrace(&dump); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(dump.Bytes()); err != nil {
		t.Fatalf("flight-recorder dump invalid: %v", err)
	}
}
