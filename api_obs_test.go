package crossbfs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestPublicObservabilitySurface drives the re-exported serving-grade
// sinks end to end: a BFSMany batch recorded through a Sampler into a
// StreamWriter and a FlightRecorder, all via the public constructors.
func TestPublicObservabilitySurface(t *testing.T) {
	g, err := GenerateRMAT(10, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	roots := make([]int32, 12)
	for i := range roots {
		roots[i] = int32(i)
	}

	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	ring := NewFlightRecorder(4, 0)
	sampler := NewSampler(MultiRecorder(sw, ring), 2, 99)

	if _, err := BFSMany(g, roots, ManyOptions{Recorder: sampler, Concurrency: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	if sampler.Seen() != uint64(len(roots)) {
		t.Errorf("sampler saw %d traversals, want %d", sampler.Seen(), len(roots))
	}
	kept := sampler.Kept()
	if kept == 0 || kept == uint64(len(roots)) {
		t.Fatalf("sampler kept %d of %d at k=2 — degenerate; pick another seed", kept, len(roots))
	}

	if sw.Stats().Dropped == 0 {
		s, err := ValidateTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("streamed trace invalid: %v", err)
		}
		if len(s.LevelDirs) != int(kept) {
			t.Errorf("stream has %d traversal lanes, sampler kept %d", len(s.LevelDirs), kept)
		}
	}

	want := kept
	if want > 4 {
		want = 4
	}
	if st := ring.Stats(); st.Retained != int(want) {
		t.Errorf("flight recorder stats %+v, want %d retained", st, want)
	}
	var dump bytes.Buffer
	if err := ring.WriteTrace(&dump); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(dump.Bytes()); err != nil {
		t.Fatalf("flight-recorder dump invalid: %v", err)
	}
}

// TestPublicDimensionalSurface drives the re-exported dimensional
// metrics and SLO layer through the public aliases: a BFSMany batch
// aggregated by a RegistryRecorder, the rendered exposition validated
// with ValidateExposition, and an SLOEngine breaching on a synthetic
// error-ratio source built from a registry counter.
func TestPublicDimensionalSurface(t *testing.T) {
	g, err := GenerateRMAT(10, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	roots := make([]int32, 8)
	for i := range roots {
		roots[i] = int32(i)
	}

	reg := NewMetricsRegistry()
	rec := NewRegistryRecorder(reg, "hybrid")
	if _, err := BFSMany(g, roots, ManyOptions{Recorder: rec, Concurrency: 2}); err != nil {
		t.Fatal(err)
	}

	var page bytes.Buffer
	if err := reg.WriteExposition(&page); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateExposition(bytes.NewReader(page.Bytes()))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, page.String())
	}
	if stats.Families == 0 || stats.Histograms == 0 {
		t.Fatalf("exposition stats %+v, want families and histograms", stats)
	}
	if !strings.Contains(page.String(), `crossbfs_engine_traversals_total{engine="hybrid"} 8`) {
		t.Errorf("exposition misses the labeled traversal counter:\n%s", page.String())
	}

	obj, err := ParseSLOObjective("error ratio < 1% over 1m")
	if err != nil {
		t.Fatal(err)
	}
	errs := reg.Counter("crossbfs_api_test_errors_total", "synthetic error counter.", "reason").With("server_error")
	total := 0.0
	eng := func() *SLOEngine {
		src := func() (float64, float64) { total += 100; errs.Add(5); return total, errs.Value() }
		return NewSLOEngine([]SLOObjectiveSource{{Objective: obj, Source: src}}, SLOEngineOptions{})
	}()
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		now = now.Add(5 * time.Second)
		eng.Tick(now)
	}
	vs := eng.Verdicts()
	if len(vs) != 1 || !vs[0].Breaching {
		t.Fatalf("verdicts %+v, want one breaching verdict for a 5%% error rate against a 1%% objective", vs)
	}
}
