module crossbfs

go 1.22
