// Package crossbfs is a reproduction of "Designing a Heuristic
// Cross-Architecture Combination for Breadth-First Search" (You, Bader,
// Dehnavi — ICPP 2014) as a Go library.
//
// The paper combines Beamer-style direction-optimizing BFS (top-down
// while the frontier is small, bottom-up while it is large) with two
// additions: a regression model that predicts the switching thresholds
// (M, N) at runtime instead of hand-tuning them, and a
// cross-architecture execution plan (Algorithm 3) that runs the early
// top-down levels on a CPU, hands the frontier to a GPU for the
// bottom-up middle, and finishes top-down on the GPU.
//
// Because this reproduction has neither a K20x GPU nor a Knights
// Corner MIC, device execution is replaced by an analytical cost model
// (see DESIGN.md): BFS levels execute for real on the host — correct
// predecessor and level maps, validated Graph 500-style — while each
// level is priced by the modeled device. All reported times and TEPS
// figures are simulated and meaningful relative to each other.
//
// Typical use:
//
//	g, _ := crossbfs.GenerateRMAT(17, 16, 1)
//	res, _ := crossbfs.BFS(g, 0)                   // hybrid BFS, real execution
//	plan := crossbfs.NewCrossPlan(crossbfs.CPU(), crossbfs.GPU(), 64, 64, 64, 64)
//	timing, _ := crossbfs.Simulate(g, 0, plan)     // priced on the simulator
//	fmt.Println(timing.GTEPS())
//
// The examples/ directory walks through graph generation, engine
// comparison, offline tuning and online prediction; cmd/experiments
// regenerates every table and figure of the paper.
package crossbfs
