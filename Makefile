# Verification entry points for crossbfs. `make verify` is the gate
# the repo's CI-equivalent runs: vet, the project's own analyzers, the
# unit suite, and the race detector over the concurrent core.

GO ?= go

.PHONY: all build test lint race verify fuzz

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus crossbfslint, the codebase-specific analyzer
# suite (sharedwrite, atomicpair, indexarith, grainloop). See
# internal/lint and the README's "Verification & static analysis".
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/crossbfslint ./...

# race exercises the concurrent kernels and the parallelGrains
# scheduler under the race detector. bfs and bitmap are the packages
# with goroutine-shared state; the rest of the tree is serial.
race:
	$(GO) test -race ./internal/bfs/... ./internal/bitmap/...

verify: build lint test race

# fuzz gives the heuristic-switch fuzzer a short budget; CI-style
# smoke, not a soak. Override FUZZTIME for longer runs.
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/bfs/ -fuzz FuzzHeuristicSwitch -fuzztime $(FUZZTIME)
