# Verification entry points for crossbfs. `make verify` is the gate
# the repo's CI-equivalent runs: vet, the project's own analyzers, the
# unit suite, the race detector over the concurrent core, the trace
# smoke, the sharded fault-injection chaos suite, and the serving
# smoke (bfsd + bfsload end to end).

GO ?= go

.PHONY: all build test lint lint-json race trace-smoke chaos serve-smoke metrics-smoke bench-report verify fuzz fuzz-faults

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus crossbfslint, the codebase-specific analyzer
# suite (sharedwrite, atomicpair, indexarith, grainloop, ctxcheck,
# hotalloc, obsdiscipline, faulterr). See internal/lint and LINTING.md.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/crossbfslint ./...

# lint-json writes the same findings as a machine-readable report (CI
# uploads it as a workflow artifact). The exit code still gates: a
# report full of diagnostics fails the target just like `lint`.
LINTOUT ?= /tmp/crossbfslint.json
lint-json:
	$(GO) run ./cmd/crossbfslint -json ./... > $(LINTOUT)

# race exercises the concurrent kernels, the parallelGrains scheduler,
# and the cancellation/fault paths under the race detector. bfs and
# bitmap hold the goroutine-shared state; core drives the resilient
# executor's context plumbing.
race:
	$(GO) test -race ./internal/bfs/... ./internal/bitmap/... ./internal/core/... ./internal/obs/... ./internal/serve/...

# trace-smoke is the end-to-end observability gate: export a Chrome
# trace from a real run (scale-14 keeps it a few seconds), then have
# tracecheck verify the schema and reprint the TD/BU switch pattern
# the per-level events reconstruct. See OBSERVABILITY.md.
TRACEOUT ?= /tmp/crossbfs-trace-smoke.json
trace-smoke:
	$(GO) run ./cmd/bfsrun -scale 14 -edgefactor 8 -plan cputd+gpucb -levels=false -trace $(TRACEOUT)
	$(GO) run ./cmd/tracecheck $(TRACEOUT)

# chaos is the fault-tolerance gate: the sharded chaos suite under
# the race detector (rank crashes, lag, dropped exchanges across the
# graph-family × rank-count matrix, each recovered run checked against
# the serial reference), then bfsrun's built-in injection smoke
# matrix. See DESIGN.md §4e.
chaos:
	$(GO) test -race -run ShardedChaos -count=1 ./internal/bfs/
	$(GO) run ./cmd/bfsrun -chaos

# serve-smoke is the end-to-end serving gate: boot bfsd on a loopback
# port with a scale-14 graph and an impossible SLO, drive a short
# mixed bfsload run, check the /metrics scrape for the serve counters,
# tracecheck the flight-recorder dump, and assert the injected breach
# captured exactly one incident bundle. See SERVING.md.
serve-smoke:
	GO="$(GO)" sh scripts/serve-smoke.sh

# metrics-smoke is the exposition-format gate: boot bfsd, push a
# little traffic, and validate the live /metrics page with expcheck
# (HELP/TYPE metadata, family contiguity, histogram bucket
# discipline), plus the /healthz vs /readyz split. See
# OBSERVABILITY.md.
metrics-smoke:
	GO="$(GO)" sh scripts/metrics-smoke.sh

# bench-report runs the benchmark suite and snapshots the numbers to
# the next BENCH_<n>.json at the repo root, failing when any benchmark
# regressed more than BENCHTHRESHOLD vs the previous snapshot. It is
# deliberately NOT part of `verify` — benchmarks need a quiet machine
# and minutes of wall time; CI runs it as its own job.
# Set SERVINGREPORT to a bfsload -out file to fold its latency/QPS
# totals into the snapshot's "serving" section (gated like the rest).
BENCHTIME ?= 1x
BENCHTHRESHOLD ?= 0.35
SERVINGREPORT ?=
bench-report:
	$(GO) run ./cmd/benchreport -benchtime $(BENCHTIME) -threshold $(BENCHTHRESHOLD) $(if $(SERVINGREPORT),-serving $(SERVINGREPORT))

verify: build lint test race trace-smoke chaos serve-smoke metrics-smoke

# fuzz gives the heuristic-switch fuzzer a short budget; CI-style
# smoke, not a soak. Override FUZZTIME for longer runs.
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/bfs/ -fuzz FuzzHeuristicSwitch -fuzztime $(FUZZTIME)

# fuzz-faults throws arbitrary fault schedules at the resilient
# executor: every outcome must be a validated traversal or a typed
# *fault.Error — never a panic, never a wrong parent tree.
fuzz-faults:
	$(GO) test ./internal/core/ -fuzz FuzzFaultSchedule -fuzztime $(FUZZTIME)
