package crossbfs

import (
	"path/filepath"
	"testing"
)

func TestGenerateAndBFS(t *testing.T) {
	g, err := GenerateRMAT(10, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	src := firstSource(t, g)
	res, err := BFS(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, res); err != nil {
		t.Fatalf("hybrid result invalid: %v", err)
	}

	td, err := BFSTopDown(g, src)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := BFSBottomUp(g, src)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := BFSHybrid(g, src, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Level {
		if td.Level[v] != res.Level[v] || bu.Level[v] != res.Level[v] || hy.Level[v] != res.Level[v] {
			t.Fatalf("engines disagree at vertex %d", v)
		}
	}
}

func TestBuildGraphFacade(t *testing.T) {
	g, err := BuildGraph(3, []Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Errorf("edges = %d, want 4 (symmetrized)", g.NumEdges())
	}
}

func TestSaveLoadGraphFacade(t *testing.T) {
	g, err := GenerateRMAT(8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := SaveGraph(g, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() != g.NumEdges() {
		t.Error("round trip changed the graph")
	}
}

func TestSimulatePlans(t *testing.T) {
	g, err := GenerateRMAT(11, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := firstSource(t, g)
	plans := []Plan{
		NewBaseline(GPU(), TopDown),
		NewBaseline(CPU(), BottomUp),
		NewCombination(MIC(), 64, 64),
		NewCrossPlan(CPU(), GPU(), 64, 64, 64, 64),
	}
	for _, plan := range plans {
		timing, err := Simulate(g, src, plan)
		if err != nil {
			t.Fatalf("%s: %v", plan.Name(), err)
		}
		if timing.Total <= 0 || timing.GTEPS() <= 0 {
			t.Errorf("%s: degenerate timing %+v", plan.Name(), timing)
		}
	}
}

func TestBenchmarkTEPSFacade(t *testing.T) {
	g, err := GenerateRMAT(10, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BenchmarkTEPS(g, NewCombination(CPU(), 64, 64), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumRoots != 4 || rep.GTEPS() <= 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestAdaptivePipelineFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	model, err := TrainDefaultModel(nil)
	if err != nil {
		t.Fatal(err)
	}

	params := RMATParams{Scale: 12, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: 5, Permute: true}
	g, err := GenerateRMATWith(params)
	if err != nil {
		t.Fatal(err)
	}
	point := PredictSwitchPoint(model, params, g, CPU(), GPU())
	if point.M < 1 || point.N < 1 {
		t.Errorf("predicted switch point %v out of range", point)
	}
	plan, err := NewAdaptiveCrossPlan(model, params, g, CPU(), GPU())
	if err != nil {
		t.Fatal(err)
	}
	timing, err := Simulate(g, firstSource(t, g), plan)
	if err != nil {
		t.Fatal(err)
	}
	if timing.Total <= 0 {
		t.Error("adaptive plan produced degenerate timing")
	}
	if _, err := NewAdaptiveCrossPlan(nil, params, g, CPU(), GPU()); err == nil {
		t.Error("nil model accepted")
	}

	// Persistence via the facade.
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	p2 := PredictSwitchPoint(loaded, params, g, CPU(), GPU())
	if p2 != point {
		t.Errorf("loaded model predicts %v, original %v", p2, point)
	}
}

func TestComputeTraceFacade(t *testing.T) {
	g, err := GenerateRMAT(9, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := firstSource(t, g)
	res, err := BFS(g, src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ComputeTrace(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reachable != res.VisitedCount {
		t.Error("trace and result disagree")
	}
	timing := SimulateTrace(tr, NewCombination(GPU(), 64, 64), PCIe())
	if timing.Total <= 0 {
		t.Error("degenerate timing from trace")
	}
}

func firstSource(t *testing.T, g *Graph) int32 {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v)
		}
	}
	t.Fatal("no edges in graph")
	return 0
}
