package bitmap

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		if got := New(n).Len(); got != n {
			t.Errorf("New(%d).Len() = %d", n, got)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestCountAndAny(t *testing.T) {
	b := New(200)
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	if got, want := b.Count(), (199/3)+1; got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if !b.Any() {
		t.Error("Any = false with bits set")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestSetAtomicClaimsOnce(t *testing.T) {
	b := New(64)
	if !b.SetAtomic(5) {
		t.Fatal("first SetAtomic returned false")
	}
	if b.SetAtomic(5) {
		t.Fatal("second SetAtomic returned true")
	}
	if !b.Get(5) {
		t.Fatal("bit not set")
	}
}

func TestSetAtomicConcurrentSingleWinner(t *testing.T) {
	// Many goroutines race for each bit: exactly one winner per bit.
	const n = 512
	const workers = 8
	b := New(n)
	wins := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if b.SetAtomic(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Errorf("total wins = %d, want %d", total, n)
	}
	if b.Count() != n {
		t.Errorf("Count = %d, want %d", b.Count(), n)
	}
}

func TestRangeOrderAndCompleteness(t *testing.T) {
	b := New(300)
	want := []int{0, 1, 64, 65, 128, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.Range(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("Range visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAppendSetMatchesRange(t *testing.T) {
	f := func(seed uint64) bool {
		b := New(256)
		for i := 0; i < 256; i++ {
			if (seed>>(uint(i)%64))&1 == 1 && i%3 == int(seed%3) {
				b.Set(i)
			}
		}
		var fromRange []int32
		b.Range(func(i int) { fromRange = append(fromRange, int32(i)) })
		fromAppend := b.AppendSet(nil)
		if len(fromRange) != len(fromAppend) {
			return false
		}
		for i := range fromRange {
			if fromRange[i] != fromAppend[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOr(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(64)
	b.Set(64)
	b.Set(99)
	a.Or(b)
	for _, i := range []int{3, 64, 99} {
		if !a.Get(i) {
			t.Errorf("bit %d missing after Or", i)
		}
	}
	if a.Count() != 3 {
		t.Errorf("Count after Or = %d, want 3", a.Count())
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths did not panic")
		}
	}()
	New(10).Or(New(20))
}

func TestCopyFrom(t *testing.T) {
	a, b := New(128), New(128)
	b.Set(7)
	b.Set(127)
	a.CopyFrom(b)
	if !a.Get(7) || !a.Get(127) || a.Count() != 2 {
		t.Error("CopyFrom did not copy exactly")
	}
	// Copy must be independent.
	b.Set(50)
	if a.Get(50) {
		t.Error("CopyFrom aliases source storage")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(64).SizeBytes(); got != 8 {
		t.Errorf("SizeBytes(64 bits) = %d, want 8", got)
	}
	if got := New(65).SizeBytes(); got != 16 {
		t.Errorf("SizeBytes(65 bits) = %d, want 16", got)
	}
	if got := New(0).SizeBytes(); got != 0 {
		t.Errorf("SizeBytes(0 bits) = %d, want 0", got)
	}
}

func TestGetAtomicSeesSet(t *testing.T) {
	b := New(70)
	b.Set(69)
	if !b.GetAtomic(69) {
		t.Error("GetAtomic does not see Set bit")
	}
	if b.GetAtomic(0) {
		t.Error("GetAtomic sees unset bit")
	}
}

func TestSetIdempotent(t *testing.T) {
	f := func(bit uint8) bool {
		b := New(256)
		i := int(bit)
		b.Set(i)
		b.Set(i)
		return b.Get(i) && b.Count() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
