// Package bitmap implements a dense bitset over vertex IDs with both
// plain and atomic mutation paths.
//
// Direction-optimizing BFS represents the frontier two ways: top-down
// keeps an explicit vertex queue, bottom-up keeps a bitmap so that a
// candidate child can test "is this neighbor in the current frontier?"
// in O(1) (paper §IV: "use bitmap for the CQ"). The atomic path lets
// parallel top-down workers claim vertices without locks.
package bitmap

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitmap is a fixed-size bitset over [0, Len()). The zero value is an
// empty bitmap of length 0; use New for a sized one.
type Bitmap struct {
	words []uint64
	n     int
}

// New returns a bitmap able to hold n bits, all clear. n must be >= 0.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative size")
	}
	return &Bitmap{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// Len returns the number of bits the bitmap holds.
func (b *Bitmap) Len() int { return b.n }

// Resize sets the bitmap's length to n and clears every bit. The
// backing array is reused when it is already large enough, so a pooled
// traversal workspace can recycle one bitmap across graphs of
// different sizes without reallocating. Serial-phase only, like Reset.
func (b *Bitmap) Resize(n int) {
	if n < 0 {
		panic("bitmap: negative size")
	}
	words := (n + wordBits - 1) / wordBits
	if cap(b.words) < words {
		b.words = make([]uint64, words) //lint:shared-ok serial-phase API by contract, like Reset
	} else {
		b.words = b.words[:words] //lint:shared-ok serial-phase API by contract, like Reset
		for i := range b.words {
			b.words[i] = 0 //lint:shared-ok serial-phase API by contract, like Reset
		}
	}
	b.n = n
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i. Not safe for concurrent use with other writers; use
// SetAtomic in parallel sections.
func (b *Bitmap) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits) //lint:shared-ok serial-phase API by contract; parallel sections use SetAtomic
}

// Clear clears bit i. Like Set, it is a serial-phase operation.
func (b *Bitmap) Clear(i int) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits) //lint:shared-ok serial-phase API by contract; parallel sections use SetAtomic
}

// SetAtomic sets bit i with a CAS loop and reports whether this call
// changed it (i.e. the caller won the race to claim i).
func (b *Bitmap) SetAtomic(i int) bool {
	addr := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// GetAtomic reports whether bit i is set, with an atomic load.
func (b *Bitmap) GetAtomic(i int) bool {
	return atomic.LoadUint64(&b.words[i/wordBits])&(1<<(uint(i)%wordBits)) != 0
}

// Reset clears every bit. Serial-phase only: the BFS runner resets
// scratch bitmaps between level expansions, never during one.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0 //lint:shared-ok serial-phase API by contract; no workers run between levels
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// CopyFrom makes b an exact copy of src. The bitmaps must have the
// same length.
func (b *Bitmap) CopyFrom(src *Bitmap) {
	if b.n != src.n {
		panic("bitmap: CopyFrom length mismatch")
	}
	copy(b.words, src.words)
}

// Or sets b to the bitwise union of b and src. The bitmaps must have
// the same length.
func (b *Bitmap) Or(src *Bitmap) {
	if b.n != src.n {
		panic("bitmap: Or length mismatch")
	}
	for i, w := range src.words {
		b.words[i] |= w //lint:shared-ok serial-phase API by contract; no workers run between levels
	}
}

// Range calls fn for every set bit in increasing order.
func (b *Bitmap) Range(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*wordBits + bit)
			w &= w - 1
		}
	}
}

// AppendSet appends the indices of all set bits to dst and returns it.
func (b *Bitmap) AppendSet(dst []int32) []int32 {
	for wi, w := range b.words {
		base := int32(wi * wordBits)
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, base+int32(bit))
			w &= w - 1
		}
	}
	return dst
}

// Words exposes the backing words for size accounting (e.g. modelling
// a frontier transfer across a PCIe link). The slice must not be
// mutated.
func (b *Bitmap) Words() []uint64 { return b.words }

// SizeBytes returns the in-memory size of the bit data in bytes, which
// is also the transfer size when the bitmap is shipped to another
// device.
func (b *Bitmap) SizeBytes() int64 { return int64(len(b.words) * 8) }
