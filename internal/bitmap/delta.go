package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Word-level access and delta (de)serialization.
//
// A 1D-partitioned BFS gives each rank ownership of a word-aligned
// vertex range, so per-level frontier exchange reduces to shipping the
// nonzero words of the owned range and OR-ing them into every replica.
// The wire format is sparse and self-delimiting: for each nonzero word,
// a uvarint gap from the previous index (starting at the encoding base)
// followed by the uvarint word value. Frontiers are sparse on most
// levels, so this is far smaller than the dense word range; on the
// saturated mid-levels it degrades to ~9/8 of dense, which the fabric
// model prices honestly either way.

// NumWords returns the number of 64-bit backing words.
func (b *Bitmap) NumWords() int { return len(b.words) }

// Word returns backing word i (bits [64i, 64i+64)).
func (b *Bitmap) Word(i int) uint64 { return b.words[i] }

// tailMask returns the valid-bit mask for word i: all ones except in
// the final word of a bitmap whose length is not a multiple of 64.
func (b *Bitmap) tailMask(i int) uint64 {
	if i == len(b.words)-1 && b.n%wordBits != 0 {
		return (uint64(1) << (uint(b.n) % wordBits)) - 1
	}
	return ^uint64(0)
}

// SetWord replaces backing word i. Bits beyond Len() are masked off so
// Count/Any stay exact. Serial-phase only, like Set: callers in
// parallel sections must own word i exclusively (e.g. a rank writing
// its word-aligned owned range).
func (b *Bitmap) SetWord(i int, w uint64) {
	b.words[i] = w & b.tailMask(i) //lint:shared-ok single-writer API by contract: callers own word i exclusively (word-aligned rank ranges)
}

// OrWord ORs w into backing word i, masking bits beyond Len(). Same
// ownership contract as SetWord.
func (b *Bitmap) OrWord(i int, w uint64) {
	b.words[i] |= w & b.tailMask(i) //lint:shared-ok single-writer API by contract: callers own word i exclusively (word-aligned rank ranges)
}

// ClearWords zeroes backing words [lo, hi). Same ownership contract as
// SetWord.
func (b *Bitmap) ClearWords(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.words[i] = 0 //lint:shared-ok single-writer API by contract: callers own [lo,hi) exclusively (word-aligned rank ranges)
	}
}

// CountWords returns the number of set bits in backing words [lo, hi).
func (b *Bitmap) CountWords(lo, hi int) int {
	c := 0
	for _, w := range b.words[lo:hi] {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendSetWords appends the indices of all set bits in backing words
// [lo, hi) to dst and returns it. Indices are global bit positions,
// like AppendSet.
func (b *Bitmap) AppendSetWords(dst []int32, lo, hi int) []int32 {
	for wi := lo; wi < hi; wi++ {
		w := b.words[wi]
		base := int32(wi * wordBits)
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, base+int32(bit))
			w &= w - 1
		}
	}
	return dst
}

// AppendDelta appends a sparse encoding of backing words [lo, hi) to
// dst and returns it. Only nonzero words are encoded, each as a uvarint
// index gap (from lo for the first word, from the previous encoded
// index+1 after that) followed by the uvarint word value. Decode with
// ApplyDelta using the same base lo. An all-zero range encodes to zero
// bytes.
func (b *Bitmap) AppendDelta(dst []byte, lo, hi int) []byte {
	var buf [2 * binary.MaxVarintLen64]byte
	prev := lo // next un-gapped index
	for wi := lo; wi < hi; wi++ {
		w := b.words[wi]
		if w == 0 {
			continue
		}
		n := binary.PutUvarint(buf[:], uint64(wi-prev))
		n += binary.PutUvarint(buf[n:], w)
		dst = append(dst, buf[:n]...)
		prev = wi + 1
	}
	return dst
}

// ApplyDelta ORs a delta produced by AppendDelta into b, interpreting
// indices relative to base word lo. It returns the number of words
// OR'd. Malformed input — truncated varints, trailing bytes, or an
// index beyond NumWords() — returns an error with b left partially
// updated (frontier union is idempotent, so callers simply abort the
// traversal). Same ownership contract as OrWord: the caller must own
// the destination words (each rank applies deltas into its private
// frontier replica).
func (b *Bitmap) ApplyDelta(data []byte, lo int) (int, error) {
	if lo < 0 || lo > len(b.words) {
		return 0, fmt.Errorf("bitmap: delta: base word %d out of range (have %d words)", lo, len(b.words))
	}
	wi := lo
	applied := 0
	for len(data) > 0 {
		gap, n := binary.Uvarint(data)
		if n <= 0 {
			return applied, fmt.Errorf("bitmap: delta: truncated index varint at word %d", wi)
		}
		data = data[n:]
		w, n := binary.Uvarint(data)
		if n <= 0 {
			return applied, fmt.Errorf("bitmap: delta: truncated word varint at word %d", wi)
		}
		data = data[n:]
		// wi <= len(b.words), so the subtraction cannot go negative and
		// the comparison rejects any gap that would land past the end
		// (including ones that would overflow wi+gap).
		if gap >= uint64(len(b.words)-wi) {
			return applied, fmt.Errorf("bitmap: delta: word index %d+%d out of range (have %d words)", wi, gap, len(b.words))
		}
		idx := wi + int(gap)
		b.OrWord(idx, w)
		applied++
		wi = idx + 1
	}
	return applied, nil
}
