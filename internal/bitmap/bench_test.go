package bitmap

import "testing"

const benchBits = 1 << 20

func BenchmarkSet(b *testing.B) {
	bm := New(benchBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (benchBits - 1))
	}
}

func BenchmarkSetAtomic(b *testing.B) {
	bm := New(benchBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.SetAtomic(i & (benchBits - 1))
	}
}

func BenchmarkGet(b *testing.B) {
	bm := New(benchBits)
	for i := 0; i < benchBits; i += 3 {
		bm.Set(i)
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = bm.Get(i & (benchBits - 1))
	}
	_ = sink
}

func BenchmarkCount(b *testing.B) {
	bm := New(benchBits)
	for i := 0; i < benchBits; i += 7 {
		bm.Set(i)
	}
	b.SetBytes(benchBits / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Count()
	}
}

func BenchmarkAppendSet(b *testing.B) {
	bm := New(benchBits)
	for i := 0; i < benchBits; i += 64 {
		bm.Set(i)
	}
	buf := make([]int32, 0, benchBits/64+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = bm.AppendSet(buf[:0])
	}
}

func BenchmarkOr(b *testing.B) {
	x, y := New(benchBits), New(benchBits)
	for i := 0; i < benchBits; i += 5 {
		y.Set(i)
	}
	b.SetBytes(benchBits / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}
