package bitmap

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestWordAccess(t *testing.T) {
	b := New(130) // 3 words, 2-bit tail
	if got := b.NumWords(); got != 3 {
		t.Fatalf("NumWords = %d, want 3", got)
	}
	b.SetWord(0, 0xDEADBEEF)
	if b.Word(0) != 0xDEADBEEF {
		t.Fatalf("Word(0) = %#x", b.Word(0))
	}
	b.OrWord(0, 0xF000_0000)
	if b.Word(0) != 0xFEADBEEF {
		t.Fatalf("OrWord: Word(0) = %#x", b.Word(0))
	}
	// The tail word only holds 2 valid bits; the rest must be masked
	// so Count stays exact.
	b.SetWord(2, ^uint64(0))
	if b.Word(2) != 0b11 {
		t.Fatalf("tail word not masked: %#x", b.Word(2))
	}
	if got := b.Count(); got != 25+2 { // popcount(0xFEADBEEF) + 2 tail bits
		t.Fatalf("Count = %d, want 27", got)
	}
	b.ClearWords(0, 2)
	if b.Word(0) != 0 || b.Word(1) != 0 || b.Word(2) != 0b11 {
		t.Fatalf("ClearWords: %#x %#x %#x", b.Word(0), b.Word(1), b.Word(2))
	}
}

func TestCountAppendSetWords(t *testing.T) {
	b := New(256)
	set := []int{0, 63, 64, 127, 128, 200, 255}
	for _, i := range set {
		b.Set(i)
	}
	if got := b.CountWords(1, 3); got != 3 { // bits 64..191: 64,127,128
		t.Fatalf("CountWords(1,3) = %d, want 3", got)
	}
	got := b.AppendSetWords(nil, 1, 3)
	want := []int32{64, 127, 128}
	if len(got) != len(want) {
		t.Fatalf("AppendSetWords = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSetWords = %v, want %v", got, want)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(1500)
		src := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(9) == 0 {
				src.Set(i)
			}
		}
		lo := rng.Intn(src.NumWords() + 1)
		hi := lo + rng.Intn(src.NumWords()-lo+1)

		delta := src.AppendDelta(nil, lo, hi)
		dst := New(n)
		applied, err := dst.ApplyDelta(delta, lo)
		if err != nil {
			t.Fatalf("n=%d lo=%d hi=%d: ApplyDelta: %v", n, lo, hi, err)
		}
		wantWords := 0
		for wi := lo; wi < hi; wi++ {
			if src.Word(wi) != 0 {
				wantWords++
			}
			if dst.Word(wi) != src.Word(wi) {
				t.Fatalf("n=%d lo=%d hi=%d: word %d = %#x, want %#x", n, lo, hi, wi, dst.Word(wi), src.Word(wi))
			}
		}
		if applied != wantWords {
			t.Fatalf("applied %d words, want %d", applied, wantWords)
		}
		for wi := 0; wi < dst.NumWords(); wi++ {
			if (wi < lo || wi >= hi) && dst.Word(wi) != 0 {
				t.Fatalf("delta leaked outside [%d,%d): word %d = %#x", lo, hi, wi, dst.Word(wi))
			}
		}
	}
}

func TestDeltaIsUnion(t *testing.T) {
	// ApplyDelta ORs: pre-existing bits survive, duplicates are idempotent.
	a, b := New(128), New(128)
	a.Set(3)
	a.Set(100)
	b.Set(3)
	b.Set(64)
	delta := a.AppendDelta(nil, 0, a.NumWords())
	if _, err := b.ApplyDelta(delta, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyDelta(delta, 0); err != nil { // apply twice
		t.Fatal(err)
	}
	for _, i := range []int{3, 64, 100} {
		if !b.Get(i) {
			t.Fatalf("bit %d lost", i)
		}
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
}

func TestDeltaEmpty(t *testing.T) {
	b := New(512)
	if d := b.AppendDelta(nil, 0, b.NumWords()); len(d) != 0 {
		t.Fatalf("empty range encoded to %d bytes", len(d))
	}
	if n, err := b.ApplyDelta(nil, 0); n != 0 || err != nil {
		t.Fatalf("ApplyDelta(nil) = %d, %v", n, err)
	}
}

func TestApplyDeltaRejectsMalformed(t *testing.T) {
	b := New(128)
	cases := map[string][]byte{
		"truncated index": {0x80},             // unterminated varint
		"missing word":    {0x00},             // index with no word value
		"truncated word":  {0x00, 0x80},       // word varint unterminated
		"out of range":    {0x7F, 0x01},       // gap 127 >= 2 words
		"huge gap": append(bytes.Repeat([]byte{0xFF}, 9), 0x01, 0x01), // ~2^63 gap
	}
	for name, data := range cases {
		if _, err := b.ApplyDelta(data, 0); err == nil {
			t.Errorf("%s: ApplyDelta accepted %x", name, data)
		}
	}
	if _, err := b.ApplyDelta([]byte{0x00, 0x01}, 99); err == nil {
		t.Error("base beyond NumWords accepted")
	}
	if _, err := b.ApplyDelta([]byte{0x00, 0x01}, -1); err == nil {
		t.Error("negative base accepted")
	}
}

// FuzzApplyDelta: arbitrary bytes must decode to an error or a valid
// union — never a panic, never a bit outside the bitmap.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{}, uint16(64), uint8(0))
	f.Add([]byte{0x00, 0xFF}, uint16(130), uint8(1))
	f.Add([]byte{0x02, 0x01, 0x00, 0x80, 0x01}, uint16(512), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, size uint16, lo uint8) {
		b := New(int(size))
		_, _ = b.ApplyDelta(data, int(lo))
		if b.n%wordBits != 0 && len(b.words) > 0 {
			tail := b.words[len(b.words)-1]
			if tail&^b.tailMask(len(b.words)-1) != 0 {
				t.Fatalf("bits set beyond Len(): tail %#x", tail)
			}
		}
	})
}

// FuzzDeltaRoundTrip: encode/apply over fuzz-chosen bit patterns must
// reproduce the source range exactly.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{0xFF, 0x00, 0x01}, uint16(200), uint8(0), uint8(4))
	f.Add([]byte{}, uint16(1), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, bits []byte, size uint16, lo, span uint8) {
		n := int(size)%2048 + 1
		src := New(n)
		for i, by := range bits {
			for j := 0; j < 8; j++ {
				if by&(1<<j) != 0 {
					if idx := (i*8 + j) % n; true {
						src.Set(idx)
					}
				}
			}
		}
		loW := int(lo) % (src.NumWords() + 1)
		hiW := loW + int(span)
		if hiW > src.NumWords() {
			hiW = src.NumWords()
		}
		delta := src.AppendDelta(nil, loW, hiW)
		dst := New(n)
		if _, err := dst.ApplyDelta(delta, loW); err != nil {
			t.Fatalf("round-trip ApplyDelta: %v", err)
		}
		for wi := 0; wi < src.NumWords(); wi++ {
			want := uint64(0)
			if wi >= loW && wi < hiW {
				want = src.Word(wi)
			}
			if dst.Word(wi) != want {
				t.Fatalf("word %d = %#x, want %#x", wi, dst.Word(wi), want)
			}
		}
	})
}
