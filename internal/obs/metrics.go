package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"sync/atomic"
)

// Metrics is a Recorder that aggregates the event stream into
// counters, gauges, and histograms — the always-on, cheap half of the
// observability layer (TraceWriter is the detailed, per-run half).
// Every update is a single atomic add, so a Metrics instance can be
// shared by any number of concurrent traversals without contention
// beyond cache-line bouncing.
//
// Export paths:
//
//   - Snapshot returns the current values as a plain map (stable keys).
//   - WriteText renders a Prometheus-style text page.
//   - Handler serves WriteText over HTTP (mount it wherever the
//     process serves debug endpoints, e.g. next to net/http/pprof).
//   - Publish registers the snapshot under a name in expvar, making it
//     visible on /debug/vars alongside the runtime's own counters.
type Metrics struct {
	// Traversal lifecycle.
	traversals    atomic.Int64 // KindTraversalStart
	traversalErrs atomic.Int64 // KindTraversalEnd with Detail set
	wsReuses      atomic.Int64 // KindTraversalStart with Reused
	rootsStarted  atomic.Int64 // KindRootDispatch
	rootsDone     atomic.Int64 // KindRootDone

	// Per-level work.
	levels     atomic.Int64
	tdLevels   atomic.Int64
	buLevels   atomic.Int64
	switches   atomic.Int64
	discovered atomic.Int64 // vertices assigned a parent
	scans      atomic.Int64 // bottom-up adjacency entries scanned
	grains     atomic.Int64 // grain blocks dispatched

	// Simulated executions.
	planRuns atomic.Int64
	// planSimMicros totals the priced seconds of completed plan
	// timelines (KindPlanEnd's SimDur), in microseconds.
	planSimMicros atomic.Int64
	simSteps      atomic.Int64
	handoffs      atomic.Int64
	// handoffBytes totals the modeled payload moved between devices.
	handoffBytes atomic.Int64

	// Degradation ladder.
	retries atomic.Int64
	replans atomic.Int64
	faults  atomic.Int64

	// Sharded traversals.
	exchanges atomic.Int64 // KindExchangeEnd (completed exchanges)
	// exchangeBytes totals the compressed frontier/ghost payload the
	// ranks contributed across all exchanges.
	exchangeBytes atomic.Int64
	collectives   atomic.Int64 // KindCollective (global switch decisions)
	ghostUpdates  atomic.Int64 // KindGhostUpdate events
	ghostApplied  atomic.Int64 // remote claims that won their vertex

	// Rank fault tolerance.
	ranksLost       atomic.Int64 // KindRankLost
	recoveries      atomic.Int64 // KindRecoverEnd (completed recoveries)
	checkpoints     atomic.Int64 // KindCheckpoint
	checkpointBytes atomic.Int64 // encoded checkpoint delta payload

	// frontierHist[b] counts levels whose |V|cq had bit-length b
	// (power-of-two buckets: bucket b covers [2^(b-1), 2^b)).
	frontierHist [48]atomic.Int64
	// levelWallHist[b] counts levels whose wall time had bit-length b
	// in microseconds.
	levelWallHist [48]atomic.Int64
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics { return &Metrics{} }

// Event implements Recorder.
func (m *Metrics) Event(e Event) {
	switch e.Kind {
	case KindTraversalStart:
		m.traversals.Add(1)
		if e.Reused {
			m.wsReuses.Add(1)
		}
	case KindTraversalEnd:
		if e.Detail != "" {
			m.traversalErrs.Add(1)
		}
	case KindLevel:
		m.levels.Add(1)
		if e.Dir == BottomUp {
			m.buLevels.Add(1)
		} else {
			m.tdLevels.Add(1)
		}
		m.discovered.Add(e.Discovered)
		m.scans.Add(e.Scans)
		m.grains.Add(e.Grains)
		m.frontierHist[histBucket(e.FrontierVertices)].Add(1)
		m.levelWallHist[histBucket(e.WallDur.Microseconds())].Add(1)
	case KindSwitch:
		m.switches.Add(1)
	case KindRootDispatch:
		m.rootsStarted.Add(1)
	case KindRootDone:
		m.rootsDone.Add(1)
	case KindPlanStart:
		m.planRuns.Add(1)
	case KindPlanEnd:
		m.planSimMicros.Add(int64(e.SimDur * 1e6))
	case KindSimStep:
		m.simSteps.Add(1)
	case KindHandoff:
		m.handoffs.Add(1)
		m.handoffBytes.Add(e.Bytes)
	case KindRetry:
		m.retries.Add(1)
	case KindReplan:
		m.replans.Add(1)
	case KindFault:
		m.faults.Add(1)
	case KindExchangeStart:
		// Counted on the paired KindExchangeEnd, which carries the bytes.
	case KindExchangeEnd:
		m.exchanges.Add(1)
		m.exchangeBytes.Add(e.Bytes)
	case KindCollective:
		m.collectives.Add(1)
	case KindGhostUpdate:
		m.ghostUpdates.Add(1)
		m.ghostApplied.Add(e.Discovered)
	case KindRankLost:
		m.ranksLost.Add(1)
	case KindRecoverStart:
		// Counted on the paired KindRecoverEnd.
	case KindRecoverEnd:
		m.recoveries.Add(1)
	case KindCheckpoint:
		m.checkpoints.Add(1)
		m.checkpointBytes.Add(e.Bytes)
	}
}

// histBucket maps a non-negative value to its power-of-two bucket,
// clamped to the histogram range.
func histBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= 48 {
		b = 47
	}
	return b
}

// Snapshot returns every scalar metric keyed by its stable name, plus
// the non-empty histogram buckets as "<name>_le_2e<exp>" entries.
func (m *Metrics) Snapshot() map[string]int64 {
	s := map[string]int64{
		"traversals_total":          m.traversals.Load(),
		"traversal_errors_total":    m.traversalErrs.Load(),
		"workspace_reuses_total":    m.wsReuses.Load(),
		"roots_dispatched_total":    m.rootsStarted.Load(),
		"roots_done_total":          m.rootsDone.Load(),
		"levels_total":              m.levels.Load(),
		"levels_topdown_total":      m.tdLevels.Load(),
		"levels_bottomup_total":     m.buLevels.Load(),
		"direction_switches_total":  m.switches.Load(),
		"vertices_discovered_total": m.discovered.Load(),
		"bottomup_scans_total":      m.scans.Load(),
		"grains_dispatched_total":   m.grains.Load(),
		"plan_runs_total":           m.planRuns.Load(),
		"plan_sim_micros_total":     m.planSimMicros.Load(),
		"sim_steps_total":           m.simSteps.Load(),
		"handoffs_total":            m.handoffs.Load(),
		"handoff_bytes_total":       m.handoffBytes.Load(),
		"retries_total":             m.retries.Load(),
		"replans_total":             m.replans.Load(),
		"faults_total":              m.faults.Load(),
		"exchanges_total":           m.exchanges.Load(),
		"exchange_bytes_total":      m.exchangeBytes.Load(),
		"collectives_total":         m.collectives.Load(),
		"ghost_updates_total":       m.ghostUpdates.Load(),
		"ghost_applied_total":       m.ghostApplied.Load(),
		"ranks_lost_total":          m.ranksLost.Load(),
		"recoveries_total":          m.recoveries.Load(),
		"checkpoints_total":         m.checkpoints.Load(),
		"checkpoint_bytes_total":    m.checkpointBytes.Load(),
	}
	for i := range m.frontierHist {
		if v := m.frontierHist[i].Load(); v > 0 {
			s[fmt.Sprintf("frontier_vertices_bucket_2e%02d", i)] = v
		}
	}
	for i := range m.levelWallHist {
		if v := m.levelWallHist[i].Load(); v > 0 {
			s[fmt.Sprintf("level_wall_us_bucket_2e%02d", i)] = v
		}
	}
	return s
}

// WriteText renders the snapshot as a Prometheus-style text page:
// "# HELP"-free, one "crossbfs_<name> <value>" line per metric, keys
// sorted so diffs and scrapes are stable.
func (m *Metrics) WriteText(w io.Writer) error {
	s := m.Snapshot()
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "crossbfs_%s %d\n", k, s[k]); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as an indented JSON object with keys
// in sorted order (encoding/json sorts map keys), the scriptable
// counterpart to WriteText: bfsrun -metrics-out writes this format so
// dashboards and jq pipelines consume counters without scraping text.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// Handler returns the pull-based text endpoint: GET it to scrape the
// current counters.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = m.WriteText(w)
	})
}

// Publish registers the metrics under name in the process-wide expvar
// registry (visible at /debug/vars when an HTTP server with the
// default mux is running). Like expvar.Publish, registering the same
// name twice panics — publish once per process, at wiring time.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
