package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The dimensional metrics layer. A Registry holds metric *families* —
// a name, a HELP string, a type, and a fixed label set — and each
// family holds *cells*, one per label-value tuple. The contract that
// keeps the hot path allocation-free is interning: a recorder resolves
// every label tuple it will ever emit to *Cell handles at construction
// time (Family.With takes the family lock once), and the per-event
// path is then nothing but atomic adds on those handles. Rendering
// (WriteExposition) produces Prometheus text exposition format v0.0.4;
// the legacy flat crossbfs_* page (Metrics.WriteText, serveStats) is
// untouched and may follow the typed families on the same scrape,
// since bare "name value" lines are valid untyped samples.

// Label name vocabulary. Families register only names from this fixed
// set — dimensional metrics stay cheap exactly because the label space
// is small and enumerable at construction time, never derived from
// request data.
const (
	LabelEngine    = "engine"    // kernel name: "hybrid(64,64)", "serial", ...
	LabelDir       = "dir"       // traversal direction: "td" | "bu"
	LabelKind      = "kind"      // query kind: "reach" | "path" | "khop" | "multi"
	LabelRank      = "rank"      // shard rank index: "0", "1", ...
	LabelGraph     = "graph"     // resident graph name
	LabelClass     = "class"     // workload class: "oltp" | "olap"
	LabelReason    = "reason"    // admission outcome: "ok", "queue_full", ...
	LabelObjective = "objective" // SLO objective spec string
)

var labelVocabulary = map[string]bool{
	LabelEngine: true, LabelDir: true, LabelKind: true, LabelRank: true,
	LabelGraph: true, LabelClass: true, LabelReason: true, LabelObjective: true,
}

// MetricType is a family's declared exposition type.
type MetricType uint8

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// metricNameRe is the Prometheus metric-name grammar; label names use
// the same shape minus the colon.
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is a set of metric families rendered together as one
// exposition page. Registration takes a lock; the returned families
// and cells are lock-free to update. The zero value is not usable —
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Counter registers (or re-fetches) a counter family. Registration is
// idempotent: a second call with the same name must carry the same
// type, help, and label set, otherwise it panics — conflicting
// registrations are a wiring bug, caught at construction time like
// expvar's. Counter names end in _total by convention; the
// obsdiscipline analyzer enforces it.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.register(TypeCounter, name, help, nil, labels)
}

// Gauge registers (or re-fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.register(TypeGauge, name, help, nil, labels)
}

// Histogram registers (or re-fetches) a histogram family with the
// given ascending upper bounds (the le values; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Family {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds not strictly ascending at %d", name, i))
		}
	}
	bounds := append([]float64(nil), buckets...)
	return r.register(TypeHistogram, name, help, bounds, labels)
}

func (r *Registry) register(typ MetricType, name, help string, bounds []float64, labels []string) *Family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if help == "" {
		panic(fmt.Sprintf("obs: metric %q registered without HELP text", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %q has invalid label name %q", name, l))
		}
		if !labelVocabulary[l] {
			panic(fmt.Sprintf("obs: metric %q uses label %q outside the fixed vocabulary", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || f.help != help || !sameStrings(f.labels, labels) || !sameFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a conflicting shape", name))
		}
		return f
	}
	f := &Family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		cells:  make(map[string]*Cell),
	}
	r.families[name] = f
	return f
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Family is one registered metric family. Cells are interned by label
// tuple; resolve them once at construction time, not per event.
type Family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	bounds []float64 // histogram upper bounds, ascending, no +Inf

	mu    sync.Mutex
	cells map[string]*Cell
}

// Name returns the family's metric name.
func (f *Family) Name() string { return f.name }

// Type returns the family's declared exposition type.
func (f *Family) Type() MetricType { return f.typ }

// Bounds returns the histogram family's upper bounds (nil otherwise).
func (f *Family) Bounds() []float64 { return append([]float64(nil), f.bounds...) }

// cellKey joins label values with a byte that cannot appear in them.
func cellKey(values []string) string {
	return strings.Join(values, "\xff")
}

// With interns the cell for one label-value tuple, creating it on
// first use. It takes the family lock — call it at recorder
// construction, then hold the *Cell for the lifetime of the emitter.
func (f *Family) With(values ...string) *Cell {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	for _, v := range values {
		if strings.ContainsRune(v, '\xff') {
			panic(fmt.Sprintf("obs: metric %q label value %q contains reserved byte", f.name, v))
		}
	}
	key := cellKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.cells[key]; ok {
		return c
	}
	c := &Cell{values: append([]string(nil), values...)}
	if f.typ == TypeHistogram {
		c.counts = make([]atomic.Uint64, len(f.bounds)+1) // last is +Inf
		c.bounds = f.bounds
	}
	f.cells[key] = c
	return c
}

// WithFunc interns a gauge cell whose value is computed at render time
// by fn — the shape for gauges that mirror external state (ring
// occupancy, SLO burn) without a write path.
func (f *Family) WithFunc(fn func() float64, values ...string) {
	if f.typ != TypeGauge {
		panic(fmt.Sprintf("obs: WithFunc on non-gauge metric %q", f.name))
	}
	c := f.With(values...)
	c.fn = fn
}

// Cell is one (family, label tuple) series. Counter/gauge cells hold
// one float64 as atomic bits; histogram cells hold per-bucket counts
// plus a running sum. All mutators are lock-free.
type Cell struct {
	values []string
	bits   atomic.Uint64 // counter/gauge value, float64 bits
	fn     func() float64

	// Histogram state. counts is non-cumulative; the final slot is the
	// +Inf bucket. bounds aliases the family's bound slice.
	bounds  []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// Add increments the cell by v (CAS loop over the float bits).
func (c *Cell) Add(v float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds one.
func (c *Cell) Inc() { c.Add(1) }

// Set stores v (gauges).
func (c *Cell) Set(v float64) { c.bits.Store(math.Float64bits(v)) }

// Value reads the current counter/gauge value.
func (c *Cell) Value() float64 {
	if c.fn != nil {
		return c.fn()
	}
	return math.Float64frombits(c.bits.Load())
}

// Observe records one histogram observation: binary search for the
// first bound >= v (hand-rolled so the hot path provably allocates
// nothing), bump that bucket, add to the sum.
func (c *Cell) Observe(v float64) {
	lo, hi := 0, len(c.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.counts[lo].Add(1)
	for {
		old := c.sumBits.Load()
		if c.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// BucketCounts returns the non-cumulative per-bucket counts; the last
// entry is the +Inf bucket.
func (c *Cell) BucketCounts() []uint64 {
	out := make([]uint64, len(c.counts))
	for i := range c.counts {
		out[i] = c.counts[i].Load()
	}
	return out
}

// Count returns the histogram's total observation count.
func (c *Cell) Count() uint64 {
	var n uint64
	for i := range c.counts {
		n += c.counts[i].Load()
	}
	return n
}

// Sum returns the histogram's running sum.
func (c *Cell) Sum() float64 { return math.Float64frombits(c.sumBits.Load()) }

// CountAtMost returns (total, atMost): the number of observations
// whose bucket upper bound is <= bound. Because assignment is by
// bucket, an observation only counts toward atMost when its whole
// bucket is below the bound — the conservative reading SLO latency
// objectives want (see LatencySource).
func (c *Cell) CountAtMost(bound float64) (total, atMost uint64) {
	k := 0
	for k < len(c.bounds) && c.bounds[k] <= bound {
		k++
	}
	for i := range c.counts {
		v := c.counts[i].Load()
		total += v
		if i < k {
			atMost += v
		}
	}
	return total, atMost
}

// Pow2Buckets returns unit*2^k for k in [lo, hi] — the exposition-side
// twin of the power-of-two histograms obs.Metrics and serveStats keep,
// so quantiles reconstructed from either agree to within one bucket.
func Pow2Buckets(lo, hi int, unit float64) []float64 {
	if hi < lo {
		panic("obs: Pow2Buckets hi < lo")
	}
	out := make([]float64, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		out = append(out, unit*math.Pow(2, float64(k)))
	}
	return out
}

// LatencyBuckets is the standard latency bound set: 1µs to ~67s in
// powers of two, expressed in seconds. Matches the microsecond
// bit-length histogram serveStats keeps, bucket for bucket.
func LatencyBuckets() []float64 { return Pow2Buckets(0, 26, 1e-6) }

// SizeBuckets is the standard cardinality bound set (frontier sizes,
// byte counts): 1 to 2^31 in powers of two.
func SizeBuckets() []float64 { return Pow2Buckets(0, 31, 1) }

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {a="x",b="y"} for the given names/values, with
// extra appended (the le pair); empty input renders nothing.
func labelPairs(sb *strings.Builder, names, values []string, extraName, extraValue string) {
	n := len(names)
	if extraName != "" {
		n++
	}
	if n == 0 {
		return
	}
	sb.WriteByte('{')
	for i := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(names[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(extraValue)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// WriteExposition renders every family in name order as Prometheus
// text exposition format v0.0.4: # HELP, # TYPE, then one sample line
// per series (histograms expand to cumulative _bucket/_sum/_count).
func (r *Registry) WriteExposition(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var sb strings.Builder
	for _, f := range fams {
		f.writeExposition(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *Family) writeExposition(sb *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.cells))
	for k := range f.cells {
		keys = append(keys, k)
	}
	cells := make([]*Cell, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		cells = append(cells, f.cells[k])
	}
	f.mu.Unlock()

	fmt.Fprintf(sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range cells {
		switch f.typ {
		case TypeHistogram:
			counts := c.BucketCounts()
			var cum uint64
			for i, bound := range f.bounds {
				cum += counts[i]
				sb.WriteString(f.name)
				sb.WriteString("_bucket")
				labelPairs(sb, f.labels, c.values, "le", formatValue(bound))
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatUint(cum, 10))
				sb.WriteByte('\n')
			}
			cum += counts[len(counts)-1]
			sb.WriteString(f.name)
			sb.WriteString("_bucket")
			labelPairs(sb, f.labels, c.values, "le", "+Inf")
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(cum, 10))
			sb.WriteByte('\n')
			sb.WriteString(f.name)
			sb.WriteString("_sum")
			labelPairs(sb, f.labels, c.values, "", "")
			sb.WriteByte(' ')
			sb.WriteString(formatValue(c.Sum()))
			sb.WriteByte('\n')
			sb.WriteString(f.name)
			sb.WriteString("_count")
			labelPairs(sb, f.labels, c.values, "", "")
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(cum, 10))
			sb.WriteByte('\n')
		default:
			sb.WriteString(f.name)
			labelPairs(sb, f.labels, c.values, "", "")
			sb.WriteByte(' ')
			sb.WriteString(formatValue(c.Value()))
			sb.WriteByte('\n')
		}
	}
}

// RegisterRingGauges exports a Ring's flight-recorder stats as gauges:
// retained/open/evicted/truncated/ignored traversal groups. Open
// growing while the service is at rest is the leak signal
// OBSERVABILITY.md warns about — this is the series that watches it.
func RegisterRingGauges(r *Registry, ring *Ring) {
	r.Gauge("crossbfs_flight_retained",
		"Completed traversal groups currently held by the flight recorder.").
		WithFunc(func() float64 { return float64(ring.Stats().Retained) })
	r.Gauge("crossbfs_flight_open",
		"Traversal groups started but not yet finished in the flight recorder; growth at rest signals leaked traversals.").
		WithFunc(func() float64 { return float64(ring.Stats().Open) })
	r.Gauge("crossbfs_flight_evicted",
		"Traversal groups evicted from the flight recorder to honor the keep bound.").
		WithFunc(func() float64 { return float64(ring.Stats().Evicted) })
	r.Gauge("crossbfs_flight_truncated",
		"Traversal groups that hit the per-traversal event cap and were truncated.").
		WithFunc(func() float64 { return float64(ring.Stats().Truncated) })
	r.Gauge("crossbfs_flight_ignored",
		"Events dropped because they carried no traversal ID.").
		WithFunc(func() float64 { return float64(ring.Stats().Ignored) })
}
