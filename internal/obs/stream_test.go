package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStreamWriterByteCompat pins the tentpole contract: a drop-free
// StreamWriter produces exactly the bytes TraceWriter would for the
// same event sequence (and therefore also matches the golden file).
func TestStreamWriterByteCompat(t *testing.T) {
	var want bytes.Buffer
	tw := NewTraceWriter(&want)
	for _, e := range goldenEvents() {
		tw.Event(e)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("TraceWriter Close: %v", err)
	}

	var got bytes.Buffer
	sw := NewStreamWriter(&got)
	for _, e := range goldenEvents() {
		sw.Event(e)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("StreamWriter Close: %v", err)
	}
	if st := sw.Stats(); st.Dropped != 0 {
		t.Fatalf("dropped %d events on an idle writer", st.Dropped)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("StreamWriter output differs from TraceWriter:\nstream:\n%s\nbuffered:\n%s", got.Bytes(), want.Bytes())
	}
	if _, err := ValidateTrace(got.Bytes()); err != nil {
		t.Errorf("StreamWriter output invalid: %v", err)
	}
}

// TestStreamWriterBoundedMemory is the acceptance criterion: a 10k-level
// synthetic run must never push the pending buffer past its fixed cap.
func TestStreamWriterBoundedMemory(t *testing.T) {
	const levels = 10_000
	var out countingWriter
	sw := NewStreamWriterSize(&out, 16<<10)
	at := func(us int64) time.Time { return time.UnixMicro(1700000000000000 + us) }
	sw.Event(Event{Kind: KindTraversalStart, TraversalID: 7, Root: 1, Engine: "synthetic", Wall: at(0)})
	for i := 1; i <= levels; i++ {
		sw.Event(Event{
			Kind: KindLevel, TraversalID: 7, Root: 1, Step: int32(i), Dir: TopDown,
			FrontierVertices: int64(i), FrontierEdges: int64(16 * i), Discovered: int64(i),
			Grains: 1, Workers: 1, Wall: at(int64(i)), WallDur: time.Microsecond,
		})
	}
	sw.Event(Event{Kind: KindTraversalEnd, TraversalID: 7, Root: 1, Discovered: levels, Wall: at(levels + 1)})
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := sw.Stats()
	if st.MaxBuffered > st.BufferCap {
		t.Fatalf("pending buffer reached %d bytes, cap %d", st.MaxBuffered, st.BufferCap)
	}
	t.Logf("levels=%d wrote=%d bytes, high-water %d of cap %d, dropped %d",
		levels, out.n, st.MaxBuffered, st.BufferCap, st.Dropped)
	if st.Dropped == 0 {
		// Fast writer: the file should be complete and fully valid.
		if s, err := ValidateTrace(out.buf.Bytes()); err != nil {
			t.Errorf("drop-free stream invalid: %v", err)
		} else if s.Levels != levels {
			t.Errorf("trace has %d levels, want %d", s.Levels, levels)
		}
	}
}

// TestStreamWriterDropsUnderBackpressure wedges the writer and keeps
// emitting: events past the buffer cap must be dropped whole (counted,
// never blocking the caller), and the closed document must still be
// well-formed JSON carrying the drop count.
func TestStreamWriterDropsUnderBackpressure(t *testing.T) {
	w := newBlockingWriter()
	sw := NewStreamWriterSize(w, 4<<10)
	// Instant (ph "i") fault events have no step-continuity invariant,
	// so the surviving subset still validates.
	for i := 0; i < 5000; i++ {
		sw.Event(Event{Kind: KindFault, TraversalID: 3, Step: int32(i), Device: "KeplerK20x", Detail: "slow"})
	}
	st := sw.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops despite a wedged writer and 5000 events")
	}
	if st.MaxBuffered > st.BufferCap {
		t.Fatalf("pending buffer reached %d bytes, cap %d", st.MaxBuffered, st.BufferCap)
	}
	w.release()
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := ValidateTrace(w.buf.Bytes()); err != nil {
		t.Fatalf("lossy stream must still be structurally valid: %v", err)
	}
	// The drop count must be recorded in the document itself.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(w.buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "stream_dropped_events" {
			args, _ := ev["args"].(map[string]any)
			if n, _ := args["dropped"].(float64); uint64(n) != sw.Stats().Dropped {
				t.Errorf("dropped metadata %v != Stats().Dropped %d", args["dropped"], sw.Stats().Dropped)
			}
			found = true
		}
	}
	if !found {
		t.Error("stream_dropped_events metadata missing from lossy trace")
	}
}

// TestStreamWriterFlush verifies Flush is a true barrier: every byte
// accepted before Flush has reached the writer when it returns.
func TestStreamWriterFlush(t *testing.T) {
	var out countingWriter
	sw := NewStreamWriter(&out)
	for _, e := range goldenEvents() {
		sw.Event(e)
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if out.n == 0 {
		t.Fatal("Flush returned but nothing reached the writer")
	}
	// After Flush the written prefix must equal what TraceWriter would
	// have buffered so far (everything but the epilogue). TraceWriter
	// only writes on Close, so peek at its internal buffer.
	tw := NewTraceWriter(new(bytes.Buffer))
	for _, e := range goldenEvents() {
		tw.Event(e)
	}
	if !bytes.Equal(out.buf.Bytes(), tw.buf.Bytes()) {
		t.Error("flushed prefix differs from TraceWriter's buffer at the same point")
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestStreamWriterEmptyClose(t *testing.T) {
	var want bytes.Buffer
	if err := NewTraceWriter(&want).Close(); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := NewStreamWriter(&got).Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("empty stream %q != empty buffered trace %q", got.Bytes(), want.Bytes())
	}
}

func TestStreamWriterCloseIdempotentAndDropsLate(t *testing.T) {
	var out countingWriter
	sw := NewStreamWriter(&out)
	sw.Event(Event{Kind: KindLevel, TraversalID: 9, Step: 1, Dir: TopDown, FrontierVertices: 1})
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n := out.n
	sw.Event(Event{Kind: KindLevel, TraversalID: 9, Step: 2, Dir: TopDown})
	if err := sw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if out.n != n {
		t.Error("events or bytes leaked after Close")
	}
	if _, err := ValidateTrace(out.buf.Bytes()); err != nil {
		t.Errorf("closed stream invalid: %v", err)
	}
}

func TestStreamWriterWriteErrorSurfaces(t *testing.T) {
	sw := NewStreamWriter(failWriter{})
	sw.Event(Event{Kind: KindLevel, TraversalID: 1, Step: 1, Dir: TopDown})
	if err := sw.Flush(); err == nil {
		t.Error("Flush swallowed the write error")
	}
	if err := sw.Close(); err == nil {
		t.Error("Close swallowed the write error")
	}
}

// TestStreamWriterConcurrent exercises the mutex/cond paths under the
// race detector: concurrent emitters, a flusher, and periodic Flushes.
func TestStreamWriterConcurrent(t *testing.T) {
	var out countingWriter
	sw := NewStreamWriterSize(&out, 64<<10)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := uint64(g + 1)
			for i := 1; i <= 200; i++ {
				sw.Event(Event{Kind: KindLevel, TraversalID: id, Step: int32(i), Dir: TopDown,
					FrontierVertices: 1, Grains: 1, Workers: 1})
				if i%50 == 0 {
					_ = sw.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := sw.Stats(); st.Dropped == 0 {
		if s, err := ValidateTrace(out.buf.Bytes()); err != nil {
			t.Errorf("concurrent stream invalid: %v", err)
		} else if s.Levels != 800 {
			t.Errorf("trace has %d levels, want 800", s.Levels)
		}
	}
}

// countingWriter tallies bytes while retaining them for inspection.
type countingWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
	n   int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n += len(p)
	return w.buf.Write(p)
}

// blockingWriter blocks every Write until released, then records.
type blockingWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	gate    chan struct{}
	release func()
}

func newBlockingWriter() *blockingWriter {
	w := &blockingWriter{gate: make(chan struct{})}
	var once sync.Once
	w.release = func() { once.Do(func() { close(w.gate) }) }
	return w
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errors.New("sink unavailable")
}
