package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// traversal feeds one complete synthetic traversal into rec.
func feedTraversal(rec Recorder, id uint64, levels int, base time.Time) {
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	rec.Event(Event{Kind: KindTraversalStart, TraversalID: id, Root: int32(id), Engine: "synthetic", Wall: at(0)})
	for i := 1; i <= levels; i++ {
		rec.Event(Event{Kind: KindLevel, TraversalID: id, Root: int32(id), Step: int32(i), Dir: TopDown,
			FrontierVertices: 1, Grains: 1, Workers: 1, Wall: at(int64(i)), WallDur: time.Microsecond})
	}
	rec.Event(Event{Kind: KindTraversalEnd, TraversalID: id, Root: int32(id), Discovered: int64(levels), Wall: at(int64(levels) + 1)})
}

// TestRingRetainsLastN: only the newest keep complete traversals
// survive; older ones are evicted in FIFO order.
func TestRingRetainsLastN(t *testing.T) {
	r := NewRing(3, 0)
	base := time.UnixMicro(1700000000000000)
	for id := uint64(1); id <= 10; id++ {
		feedTraversal(r, id, 2, base.Add(time.Duration(id)*time.Millisecond))
	}
	st := r.Stats()
	if st.Retained != 3 || st.Open != 0 || st.Evicted != 7 {
		t.Fatalf("stats = %+v, want 3 retained, 0 open, 7 evicted", st)
	}
	var ids []uint64
	r.DumpTo(recorderFunc(func(e Event) {
		if e.Kind == KindTraversalStart {
			ids = append(ids, e.TraversalID)
		}
	}))
	if len(ids) != 3 || ids[0] != 8 || ids[1] != 9 || ids[2] != 10 {
		t.Errorf("retained IDs %v, want [8 9 10]", ids)
	}
}

// TestRingDumpIsValidTrace: the flight-recorder dump must be a fully
// valid Chrome trace with each group contiguous and complete.
func TestRingDumpIsValidTrace(t *testing.T) {
	r := NewRing(4, 0)
	base := time.UnixMicro(1700000000000000)
	// Feed out of wall order: the later-started traversal completes
	// first. The dump must still order groups by wall instant so the
	// replayed TraceWriter latches the earliest epoch (no negative ts).
	feedTraversal(r, 2, 3, base.Add(50*time.Millisecond))
	feedTraversal(r, 1, 4, base)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("flight-recorder dump invalid: %v", err)
	}
	if s.Levels != 7 {
		t.Errorf("dump has %d levels, want 7", s.Levels)
	}
	if len(s.LevelDirs) != 2 {
		t.Errorf("dump has %d traversal lanes, want 2", len(s.LevelDirs))
	}
}

// TestRingOpenGroupsIncluded: a traversal still in flight at dump time
// appears with the events recorded so far.
func TestRingOpenGroupsIncluded(t *testing.T) {
	r := NewRing(2, 0)
	base := time.UnixMicro(1700000000000000)
	feedTraversal(r, 1, 2, base)
	// Open traversal: started but no TraversalEnd yet.
	r.Event(Event{Kind: KindTraversalStart, TraversalID: 9, Root: 9, Wall: base.Add(time.Second)})
	r.Event(Event{Kind: KindLevel, TraversalID: 9, Step: 1, Dir: TopDown, Grains: 1, Workers: 1,
		Wall: base.Add(time.Second + time.Microsecond), WallDur: time.Microsecond})
	st := r.Stats()
	if st.Retained != 1 || st.Open != 1 {
		t.Fatalf("stats = %+v, want 1 retained + 1 open", st)
	}
	n := 0
	starts := 0
	r.DumpTo(recorderFunc(func(e Event) {
		n++
		if e.Kind == KindTraversalStart {
			starts++
		}
	}))
	if starts != 2 {
		t.Errorf("dump has %d traversal starts, want 2 (completed + open)", starts)
	}
	if n != 4+2 {
		t.Errorf("dump has %d events, want 6", n)
	}
}

// TestRingTruncation: groups over the per-traversal cap keep their
// prefix and count the overflow.
func TestRingTruncation(t *testing.T) {
	r := NewRing(2, 8)
	feedTraversal(r, 1, 100, time.UnixMicro(1700000000000000))
	st := r.Stats()
	if st.Retained != 1 {
		t.Fatalf("stats = %+v, want 1 retained", st)
	}
	// 102 events total (start + 100 levels + end), capped at 8 kept.
	if st.Truncated != 102-8 {
		t.Errorf("truncated = %d, want %d", st.Truncated, 102-8)
	}
	n := 0
	r.DumpTo(recorderFunc(func(Event) { n++ }))
	if n != 8 {
		t.Errorf("dump replayed %d events, want the 8-event prefix", n)
	}
}

// TestRingIgnoresUnattributed: ID-0 events have no group and are
// counted, not stored.
func TestRingIgnoresUnattributed(t *testing.T) {
	r := NewRing(2, 0)
	for i := 0; i < 5; i++ {
		r.Event(Event{Kind: KindRootDispatch})
	}
	if st := r.Stats(); st.Ignored != 5 || st.Open != 0 {
		t.Errorf("stats = %+v, want 5 ignored, 0 open", st)
	}
}

// TestRingConcurrent hammers the shards from parallel emitters while a
// dumper reads — the lock-light claim under the race detector.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(8, 64)
	base := time.UnixMicro(1700000000000000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := uint64(g*1000 + i + 1)
				feedTraversal(r, id, 5, base.Add(time.Duration(id)*time.Microsecond))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.DumpTo(Nop)
			r.Stats()
		}
	}()
	wg.Wait()
	<-done
	st := r.Stats()
	if st.Retained != 8 || st.Open != 0 {
		t.Fatalf("stats = %+v, want 8 retained, 0 open after all complete", st)
	}
	if st.Evicted != 8*25-8 {
		t.Errorf("evicted = %d, want %d", st.Evicted, 8*25-8)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Errorf("post-stress dump invalid: %v", err)
	}
}
