package obs_test

import (
	"bytes"
	"sync"
	"testing"

	"crossbfs/internal/bfs"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

// lockedTrace serializes a TraceWriter plus a side-channel capture of
// the per-traversal direction sequences, so the test can cross-check
// the trace file against what the recorder actually saw.
//
// TraceWriter is already concurrency-safe; the extra lock only
// protects the test's own map.
type dirCapture struct {
	mu   sync.Mutex
	dirs map[uint64][]obs.Direction
	next obs.Recorder
}

func (c *dirCapture) Event(e obs.Event) {
	if e.Kind == obs.KindLevel {
		c.mu.Lock()
		c.dirs[e.TraversalID] = append(c.dirs[e.TraversalID], e.Dir)
		c.mu.Unlock()
	}
	c.next.Event(e)
}

// TestRunManySharedRecorderTrace drives concurrent RunMany roots into
// ONE shared TraceWriter and asserts the result is a well-formed trace:
// parseable JSON with no torn/interleaved events, per-lane level steps
// strictly sequential, and each lane's direction sequence matching the
// corresponding Result.Directions exactly. Run under -race this is the
// concurrency gate for the whole recorder path (ISSUE 4 satellite).
func TestRunManySharedRecorderTrace(t *testing.T) {
	p := rmat.DefaultParams(10, 8)
	p.Seed = 42
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	roots := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	cap := &dirCapture{dirs: make(map[uint64][]obs.Direction), next: tw}
	metrics := obs.NewMetrics()

	results, err := bfs.RunMany(g, roots, bfs.ManyOptions{
		Engine:      bfs.HybridEngine(bfs.DefaultM, bfs.DefaultN, 2),
		Concurrency: 4,
		Recorder:    obs.Multi(cap, metrics),
	})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("shared-recorder trace is malformed: %v", err)
	}
	if len(s.LevelDirs) != len(roots) {
		t.Fatalf("trace has %d traversal lanes, want %d", len(s.LevelDirs), len(roots))
	}

	// Total level count must agree across all three observers: the
	// engine results, the recorder capture, and the trace file.
	wantLevels := 0
	for _, r := range results {
		wantLevels += r.NumLevels()
	}
	if s.Levels != wantLevels {
		t.Errorf("trace has %d level slices, results have %d levels", s.Levels, wantLevels)
	}
	if got := metrics.Snapshot()["levels_total"]; got != int64(wantLevels) {
		t.Errorf("metrics counted %d levels, results have %d", got, wantLevels)
	}

	// Every traversal lane in the trace must replay one root's exact
	// per-level direction sequence. Lane tids are traversal IDs, which
	// are not root-ordered under concurrency, so match as multisets of
	// sequences via the capture side channel.
	wantSeqs := make(map[string]int)
	for _, r := range results {
		wantSeqs[dirKey(r.Directions)]++
	}
	cap.mu.Lock()
	gotSeqs := make(map[string]int)
	for _, dirs := range cap.dirs {
		gotSeqs[dirKey(dirs)]++
	}
	cap.mu.Unlock()
	for k, n := range wantSeqs {
		if gotSeqs[k] != n {
			t.Errorf("direction sequence %q: recorder saw %d traversals, results have %d", k, gotSeqs[k], n)
		}
	}
	traceSeqs := make(map[string]int)
	for _, tid := range obs.TimelineIDs(s.LevelDirs) {
		traceSeqs[strKey(s.LevelDirs[tid])]++
	}
	for _, r := range results {
		k := strKey(dirStrings(r.Directions))
		if traceSeqs[k] == 0 {
			t.Errorf("no trace lane replays direction sequence %q", k)
			continue
		}
		traceSeqs[k]--
	}
}

func dirKey[D interface{ String() string }](dirs []D) string {
	return strKey(dirStrings(dirs))
}

func dirStrings[D interface{ String() string }](dirs []D) []string {
	out := make([]string, len(dirs))
	for i, d := range dirs {
		out[i] = d.String()
	}
	return out
}

func strKey(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + ","
	}
	return out
}

// TestRunManySampledTrace is the sampling acceptance criterion: with an
// obs.Sampler between RunMany and the TraceWriter, every kept traversal
// appears in the trace WHOLE — valid per ValidateTrace, with a
// direction sequence identical to some Result.Directions — and dropped
// traversals leave no events at all.
func TestRunManySampledTrace(t *testing.T) {
	p := rmat.DefaultParams(10, 8)
	p.Seed = 43
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	roots := make([]int32, 32)
	for i := range roots {
		roots[i] = int32(i)
	}
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	cap := &dirCapture{dirs: make(map[uint64][]obs.Direction), next: tw}
	sampler := obs.NewSampler(cap, 3, 2024)

	results, err := bfs.RunMany(g, roots, bfs.ManyOptions{
		Engine:      bfs.HybridEngine(bfs.DefaultM, bfs.DefaultN, 2),
		Concurrency: 4,
		Recorder:    sampler,
	})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if sampler.Seen() != uint64(len(roots)) {
		t.Fatalf("sampler saw %d traversal starts, want %d", sampler.Seen(), len(roots))
	}
	kept := int(sampler.Kept())
	if kept == 0 || kept == len(roots) {
		t.Fatalf("sampler kept %d of %d at k=3 — degenerate; pick another seed", kept, len(roots))
	}

	s, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("sampled trace is malformed: %v", err)
	}
	if len(s.LevelDirs) != kept {
		t.Fatalf("trace has %d traversal lanes, sampler kept %d", len(s.LevelDirs), kept)
	}

	// Each kept lane must be a COMPLETE traversal: its direction
	// sequence matches some result's Directions exactly (ValidateTrace
	// already enforced step contiguity, so a partially-kept traversal
	// could not have sneaked through unless it lost a suffix — the
	// sequence-length match closes that hole too).
	wantSeqs := make(map[string]int)
	for _, r := range results {
		wantSeqs[strKey(dirStrings(r.Directions))]++
	}
	for _, tid := range obs.TimelineIDs(s.LevelDirs) {
		k := strKey(s.LevelDirs[tid])
		if wantSeqs[k] == 0 {
			t.Errorf("trace lane %d direction sequence %q matches no result", tid, k)
			continue
		}
		wantSeqs[k]--
	}

	// The capture sits after the sampler: every traversal it saw must
	// be fully kept (start..end contiguous levels), never split.
	cap.mu.Lock()
	defer cap.mu.Unlock()
	if len(cap.dirs) != kept {
		t.Errorf("recorder saw %d traversals, sampler kept %d", len(cap.dirs), kept)
	}
}

// TestRunManyFlightRecorder drives RunMany into an obs.Ring and checks
// the flight-recorder dump: the last N roots, whole, as a valid trace.
func TestRunManyFlightRecorder(t *testing.T) {
	p := rmat.DefaultParams(10, 8)
	p.Seed = 44
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	roots := make([]int32, 16)
	for i := range roots {
		roots[i] = int32(i)
	}
	ring := obs.NewRing(4, 0)
	if _, err := bfs.RunMany(g, roots, bfs.ManyOptions{
		Engine:      bfs.HybridEngine(bfs.DefaultM, bfs.DefaultN, 2),
		Concurrency: 2,
		Recorder:    ring,
	}); err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	st := ring.Stats()
	if st.Retained != 4 {
		t.Fatalf("ring stats = %+v, want 4 retained", st)
	}
	if st.Open != 0 {
		// Trailing root_done events must merge into their retained
		// group (or retire as stubs), never linger open — an open stub
		// per root would be a leak in a long-running service.
		t.Errorf("ring left %d groups open at rest", st.Open)
	}
	var buf bytes.Buffer
	if err := ring.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("flight-recorder dump invalid: %v", err)
	}
	if len(s.LevelDirs) < 4 {
		t.Errorf("dump has %d complete traversal lanes, want >= 4", len(s.LevelDirs))
	}
}

// TestMetricsSnapshotMidRunMany scrapes Snapshot repeatedly WHILE a
// RunMany batch is recording into the same Metrics: every snapshot
// must be internally sane (monotonic counters, no torn negative
// values), and the final state must agree with the results.
func TestMetricsSnapshotMidRunMany(t *testing.T) {
	p := rmat.DefaultParams(12, 8)
	p.Seed = 45
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	roots := make([]int32, 24)
	for i := range roots {
		roots[i] = int32(i)
	}
	metrics := obs.NewMetrics()
	done := make(chan []*bfs.Result, 1)
	go func() {
		results, err := bfs.RunMany(g, roots, bfs.ManyOptions{
			Engine:      bfs.HybridEngine(bfs.DefaultM, bfs.DefaultN, 2),
			Concurrency: 4,
			Recorder:    metrics,
		})
		if err != nil {
			t.Errorf("RunMany: %v", err)
		}
		done <- results
	}()

	var prev map[string]int64
	monotone := []string{"traversals_total", "levels_total", "roots_dispatched_total", "roots_done_total",
		"vertices_discovered_total", "grains_dispatched_total"}
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		s := metrics.Snapshot()
		for k, v := range s {
			if v < 0 {
				t.Fatalf("mid-run snapshot has negative %s = %d", k, v)
			}
		}
		if s["roots_done_total"] > s["roots_dispatched_total"] {
			t.Fatalf("mid-run snapshot: %d roots done > %d dispatched",
				s["roots_done_total"], s["roots_dispatched_total"])
		}
		if prev != nil {
			for _, k := range monotone {
				if s[k] < prev[k] {
					t.Fatalf("counter %s went backwards: %d -> %d", k, prev[k], s[k])
				}
			}
		}
		prev = s
	}
	s := metrics.Snapshot()
	if s["traversals_total"] != int64(len(roots)) || s["roots_done_total"] != int64(len(roots)) {
		t.Errorf("final snapshot: traversals=%d roots_done=%d, want %d each",
			s["traversals_total"], s["roots_done_total"], len(roots))
	}
}
