package obs_test

import (
	"bytes"
	"sync"
	"testing"

	"crossbfs/internal/bfs"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

// lockedTrace serializes a TraceWriter plus a side-channel capture of
// the per-traversal direction sequences, so the test can cross-check
// the trace file against what the recorder actually saw.
//
// TraceWriter is already concurrency-safe; the extra lock only
// protects the test's own map.
type dirCapture struct {
	mu   sync.Mutex
	dirs map[uint64][]obs.Direction
	next obs.Recorder
}

func (c *dirCapture) Event(e obs.Event) {
	if e.Kind == obs.KindLevel {
		c.mu.Lock()
		c.dirs[e.TraversalID] = append(c.dirs[e.TraversalID], e.Dir)
		c.mu.Unlock()
	}
	c.next.Event(e)
}

// TestRunManySharedRecorderTrace drives concurrent RunMany roots into
// ONE shared TraceWriter and asserts the result is a well-formed trace:
// parseable JSON with no torn/interleaved events, per-lane level steps
// strictly sequential, and each lane's direction sequence matching the
// corresponding Result.Directions exactly. Run under -race this is the
// concurrency gate for the whole recorder path (ISSUE 4 satellite).
func TestRunManySharedRecorderTrace(t *testing.T) {
	p := rmat.DefaultParams(10, 8)
	p.Seed = 42
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	roots := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	cap := &dirCapture{dirs: make(map[uint64][]obs.Direction), next: tw}
	metrics := obs.NewMetrics()

	results, err := bfs.RunMany(g, roots, bfs.ManyOptions{
		Engine:      bfs.HybridEngine(bfs.DefaultM, bfs.DefaultN, 2),
		Concurrency: 4,
		Recorder:    obs.Multi(cap, metrics),
	})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("shared-recorder trace is malformed: %v", err)
	}
	if len(s.LevelDirs) != len(roots) {
		t.Fatalf("trace has %d traversal lanes, want %d", len(s.LevelDirs), len(roots))
	}

	// Total level count must agree across all three observers: the
	// engine results, the recorder capture, and the trace file.
	wantLevels := 0
	for _, r := range results {
		wantLevels += r.NumLevels()
	}
	if s.Levels != wantLevels {
		t.Errorf("trace has %d level slices, results have %d levels", s.Levels, wantLevels)
	}
	if got := metrics.Snapshot()["levels_total"]; got != int64(wantLevels) {
		t.Errorf("metrics counted %d levels, results have %d", got, wantLevels)
	}

	// Every traversal lane in the trace must replay one root's exact
	// per-level direction sequence. Lane tids are traversal IDs, which
	// are not root-ordered under concurrency, so match as multisets of
	// sequences via the capture side channel.
	wantSeqs := make(map[string]int)
	for _, r := range results {
		wantSeqs[dirKey(r.Directions)]++
	}
	cap.mu.Lock()
	gotSeqs := make(map[string]int)
	for _, dirs := range cap.dirs {
		gotSeqs[dirKey(dirs)]++
	}
	cap.mu.Unlock()
	for k, n := range wantSeqs {
		if gotSeqs[k] != n {
			t.Errorf("direction sequence %q: recorder saw %d traversals, results have %d", k, gotSeqs[k], n)
		}
	}
	traceSeqs := make(map[string]int)
	for _, tid := range obs.TimelineIDs(s.LevelDirs) {
		traceSeqs[strKey(s.LevelDirs[tid])]++
	}
	for _, r := range results {
		k := strKey(dirStrings(r.Directions))
		if traceSeqs[k] == 0 {
			t.Errorf("no trace lane replays direction sequence %q", k)
			continue
		}
		traceSeqs[k]--
	}
}

func dirKey[D interface{ String() string }](dirs []D) string {
	return strKey(dirStrings(dirs))
}

func dirStrings[D interface{ String() string }](dirs []D) []string {
	out := make([]string, len(dirs))
	for i, d := range dirs {
		out[i] = d.String()
	}
	return out
}

func strKey(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + ","
	}
	return out
}
