package obs

import (
	"math"
	"testing"
	"time"
)

func TestParseObjective(t *testing.T) {
	cases := []struct {
		spec     string
		selector string
		kind     ObjectiveKind
		quantile float64
		thresh   float64
		window   time.Duration
	}{
		{"oltp p99 < 2ms over 5m", "oltp", LatencyObjective, 0.99, 0.002, 5 * time.Minute},
		{"reach p999 < 500us over 1h", "reach", LatencyObjective, 0.999, 0.0005, time.Hour},
		{"total p50 < 1s over 30s", "total", LatencyObjective, 0.5, 1, 30 * time.Second},
		{"error ratio < 0.1% over 30m", "error", ErrorRatioObjective, 0, 0.001, 30 * time.Minute},
		{"error ratio < 5% over 1m", "error", ErrorRatioObjective, 0, 0.05, time.Minute},
	}
	for _, tc := range cases {
		o, err := ParseObjective(tc.spec)
		if err != nil {
			t.Errorf("ParseObjective(%q): %v", tc.spec, err)
			continue
		}
		if o.Selector != tc.selector || o.Kind != tc.kind || o.Window != tc.window {
			t.Errorf("ParseObjective(%q) = %+v", tc.spec, o)
		}
		if math.Abs(o.Threshold-tc.thresh) > 1e-12 {
			t.Errorf("ParseObjective(%q) threshold = %v, want %v", tc.spec, o.Threshold, tc.thresh)
		}
		if tc.kind == LatencyObjective && math.Abs(o.Quantile-tc.quantile) > 1e-12 {
			t.Errorf("ParseObjective(%q) quantile = %v, want %v", tc.spec, o.Quantile, tc.quantile)
		}
	}
}

func TestParseObjectiveRejects(t *testing.T) {
	for _, spec := range []string{
		"",
		"p99 < 2ms over 5m",
		"oltp p99 2ms over 5m",
		"oltp p99 < 2ms 5m",
		"oltp q99 < 2ms over 5m",
		"oltp p0 < 2ms over 5m",
		"oltp p99 < fast over 5m",
		"oltp p99 < 2ms over never",
		"oltp p99 < 2ms over -5m",
		"error ratio < 0.1 over 30m",
		"error ratio < 110% over 30m",
		"error budget < 1% over 30m",
	} {
		if _, err := ParseObjective(spec); err == nil {
			t.Errorf("ParseObjective(%q) accepted", spec)
		}
	}
}

func TestObjectiveBudget(t *testing.T) {
	o, _ := ParseObjective("oltp p99 < 2ms over 5m")
	if b := o.Budget(); math.Abs(b-0.01) > 1e-12 {
		t.Errorf("p99 budget = %v, want 0.01", b)
	}
	e, _ := ParseObjective("error ratio < 0.1% over 30m")
	if b := e.Budget(); math.Abs(b-0.001) > 1e-12 {
		t.Errorf("error budget = %v, want 0.001", b)
	}
}

// fakeSource is a settable cumulative counter pair.
type fakeSource struct{ total, bad float64 }

func (f *fakeSource) src() SLOSource {
	return func() (float64, float64) { return f.total, f.bad }
}

func sloFixture(t *testing.T, opt SLOOptions) (*SLO, *fakeSource) {
	t.Helper()
	o, err := ParseObjective("oltp p99 < 2ms over 60s")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeSource{}
	return NewSLO([]SLOObjective{{Objective: o, Source: fs.src()}}, opt), fs
}

func TestSLOBurnAndBreach(t *testing.T) {
	var fired []Verdict
	s, fs := sloFixture(t, SLOOptions{
		Cooldown: time.Hour,
		OnBreach: func(v Verdict) { fired = append(fired, v) },
	})
	t0 := time.Unix(1000, 0)

	// Healthy traffic: 1000 requests per tick, 1 bad (0.1% << 1% budget).
	now := t0
	for i := 0; i < 13; i++ {
		fs.total += 1000
		fs.bad += 1
		vs := s.Tick(now)
		if vs[0].Breaching {
			t.Fatalf("tick %d: breaching on healthy traffic: %+v", i, vs[0])
		}
		now = now.Add(5 * time.Second)
	}
	healthy := s.Verdicts()[0]
	if healthy.BurnLong <= 0 || healthy.BurnLong >= 1 {
		t.Errorf("healthy burn = %v, want in (0,1)", healthy.BurnLong)
	}

	// Regression: 5% of traffic goes bad — burn 5x the budget.
	for i := 0; i < 13; i++ {
		fs.total += 1000
		fs.bad += 50
		s.Tick(now)
		now = now.Add(5 * time.Second)
	}
	v := s.Verdicts()[0]
	if !v.Breaching {
		t.Fatalf("not breaching after sustained 5%% bad: %+v", v)
	}
	if v.BurnLong < 2 || v.BurnShort < 2 {
		t.Errorf("burns = (%v, %v), want both well above 1", v.BurnLong, v.BurnShort)
	}
	if len(fired) != 1 {
		t.Fatalf("OnBreach fired %d times under one cooldown, want exactly 1", len(fired))
	}
	if fired[0].Objective != "oltp p99 < 2ms over 60s" {
		t.Errorf("verdict objective = %q", fired[0].Objective)
	}
	if s.Breaches() != 1 {
		t.Errorf("Breaches = %d, want 1", s.Breaches())
	}
}

// TestSLOShortWindowVetoes pins the multi-window rule: an old burst
// inside the long window but outside the short one must not breach —
// the incident already ended.
func TestSLOShortWindowVetoes(t *testing.T) {
	s, fs := sloFixture(t, SLOOptions{Cooldown: time.Hour})
	now := time.Unix(1000, 0)

	// A bad burst: 50% bad for 15s.
	for i := 0; i < 3; i++ {
		fs.total += 1000
		fs.bad += 500
		s.Tick(now)
		now = now.Add(5 * time.Second)
	}
	// Recovery: clean traffic for 30s. The long (60s) window still
	// holds the burst; the short (5s) window is clean.
	var last []Verdict
	for i := 0; i < 6; i++ {
		fs.total += 1000
		last = s.Tick(now)
		now = now.Add(5 * time.Second)
	}
	v := last[0]
	if v.BurnLong < 1 {
		t.Fatalf("long burn = %v, expected the burst still in window", v.BurnLong)
	}
	if v.BurnShort >= 1 {
		t.Fatalf("short burn = %v, expected clean recent traffic", v.BurnShort)
	}
	if v.Breaching {
		t.Error("breaching although the burst already ended")
	}
}

func TestSLOCooldownSpacesBreaches(t *testing.T) {
	var fired int
	s, fs := sloFixture(t, SLOOptions{
		Cooldown: 30 * time.Second,
		OnBreach: func(Verdict) { fired++ },
	})
	now := time.Unix(1000, 0)
	// Permanently breaching traffic.
	for i := 0; i < 20; i++ {
		fs.total += 1000
		fs.bad += 500
		s.Tick(now)
		now = now.Add(5 * time.Second)
	}
	// 20 ticks over 95s with a 30s cooldown: first breach plus at most
	// three more re-arms.
	if fired < 2 || fired > 4 {
		t.Errorf("OnBreach fired %d times over 95s with 30s cooldown, want 2..4", fired)
	}
}

func TestSLONoTrafficNoBurn(t *testing.T) {
	s, _ := sloFixture(t, SLOOptions{})
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		vs := s.Tick(now)
		if vs[0].BurnLong != 0 || vs[0].BurnShort != 0 || vs[0].Breaching {
			t.Fatalf("idle verdict not quiet: %+v", vs[0])
		}
		now = now.Add(5 * time.Second)
	}
}

func TestLatencySourceConservative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("crossbfs_query_latency_seconds", "Latency.", LatencyBuckets(), LabelClass)
	c := h.With("oltp")
	// 2ms is exactly the 2048µs bound times 1000/1024 — not a bound.
	// Observations in (1024µs, 2048µs] count bad under a 2ms objective
	// even though some are under 2ms: conservative by one bucket.
	c.Observe(500e-6)  // good
	c.Observe(1500e-6) // bucket (1024µs,2048µs]: counted bad
	c.Observe(5e-3)    // bad outright
	src := LatencySource(2e-3, c)
	total, bad := src()
	if total != 3 || bad != 2 {
		t.Errorf("LatencySource = (%v,%v), want (3,2)", total, bad)
	}
}
