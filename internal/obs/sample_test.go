package obs

import (
	"bytes"
	"testing"
)

// TestSamplerWholeTraversal is the core invariant: for any ID the
// sampler either forwards every event of the traversal or none —
// the decision is per-traversal, never per-event.
func TestSamplerWholeTraversal(t *testing.T) {
	const k = 4
	counts := make(map[uint64]int)
	s := NewSampler(recorderFunc(func(e Event) { counts[e.TraversalID]++ }), k, 12345)

	const traversals = 400
	const eventsPer = 5
	for id := uint64(1); id <= traversals; id++ {
		s.Event(Event{Kind: KindTraversalStart, TraversalID: id})
		for step := int32(1); step < eventsPer-1; step++ {
			s.Event(Event{Kind: KindLevel, TraversalID: id, Step: step, Dir: TopDown})
		}
		s.Event(Event{Kind: KindTraversalEnd, TraversalID: id})
	}
	kept := 0
	for id := uint64(1); id <= traversals; id++ {
		switch counts[id] {
		case 0:
			if s.KeepTraversal(id) {
				t.Fatalf("id %d: KeepTraversal true but no events forwarded", id)
			}
		case eventsPer:
			if !s.KeepTraversal(id) {
				t.Fatalf("id %d: KeepTraversal false but events forwarded", id)
			}
			kept++
		default:
			t.Fatalf("id %d: %d of %d events forwarded — traversal split", id, counts[id], eventsPer)
		}
	}
	if kept == 0 || kept == traversals {
		t.Fatalf("kept %d of %d traversals at k=%d — sampling is degenerate", kept, traversals, k)
	}
	// SplitMix64 over sequential IDs should land near 1/k. Allow 2x slack.
	if lo, hi := traversals/(2*k), 2*traversals/k; kept < lo || kept > hi {
		t.Errorf("kept %d of %d at k=%d, want within [%d, %d]", kept, traversals, k, lo, hi)
	}
	if s.Seen() != traversals || s.Kept() != uint64(kept) {
		t.Errorf("counters seen=%d kept=%d, want %d/%d", s.Seen(), s.Kept(), traversals, kept)
	}
}

// TestSamplerDeterministic: same (id, k, seed) always decides the same
// way — the property that lets independent emitters agree without
// coordination — and different seeds select different subsets.
func TestSamplerDeterministic(t *testing.T) {
	a := NewSampler(Nop, 8, 42)
	b := NewSampler(Nop, 8, 42)
	c := NewSampler(Nop, 8, 43)
	differ := false
	for id := uint64(1); id <= 1000; id++ {
		if a.KeepTraversal(id) != b.KeepTraversal(id) {
			t.Fatalf("id %d: same seed disagrees", id)
		}
		if a.KeepTraversal(id) != c.KeepTraversal(id) {
			differ = true
		}
	}
	if !differ {
		t.Error("seeds 42 and 43 selected identical subsets over 1000 IDs")
	}
}

// TestSamplerUnattributedPassThrough: ID-0 events (emitters that never
// drew an ID) bypass sampling at any rate.
func TestSamplerUnattributedPassThrough(t *testing.T) {
	n := 0
	s := NewSampler(recorderFunc(func(Event) { n++ }), 1<<30, 7)
	for i := 0; i < 10; i++ {
		s.Event(Event{Kind: KindRootDispatch})
	}
	if n != 10 {
		t.Errorf("%d of 10 unattributed events forwarded", n)
	}
}

func TestSamplerKeepAll(t *testing.T) {
	n := 0
	s := NewSampler(recorderFunc(func(Event) { n++ }), 0, 0) // k<1 -> keep all
	for id := uint64(1); id <= 50; id++ {
		s.Event(Event{Kind: KindLevel, TraversalID: id, Step: 1, Dir: TopDown})
	}
	if n != 50 {
		t.Errorf("k=0 sampler forwarded %d of 50", n)
	}
}

// TestSampledTraceValidates: a kept traversal routed through a Sampler
// into a TraceWriter yields a valid trace with the full direction
// sequence — nothing of the kept traversal is missing.
func TestSampledTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	s := NewSampler(tw, 3, 99)

	// Find a kept ID and a dropped ID, then replay the golden traversal
	// (re-stamped) under each.
	var keptID, dropID uint64
	for id := uint64(1); id < 100 && (keptID == 0 || dropID == 0); id++ {
		if s.KeepTraversal(id) {
			if keptID == 0 {
				keptID = id
			}
		} else if dropID == 0 {
			dropID = id
		}
	}
	for _, id := range []uint64{keptID, dropID} {
		for _, e := range goldenEvents() {
			if e.TraversalID == 0 {
				continue // skip the dispatch bracket: keep lanes per-ID here
			}
			if e.TraversalID == 3 {
				// Skip the sharded traversal: re-stamping it onto the same
				// ID as the hybrid one would merge two step sequences into
				// one lane.
				continue
			}
			e.TraversalID = id
			s.Event(e)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("sampled trace invalid: %v", err)
	}
	if sum.Levels != 4 || sum.SimSteps != 4 {
		t.Errorf("kept traversal incomplete: %d levels, %d sim steps (want 4, 4)", sum.Levels, sum.SimSteps)
	}
	if len(sum.LevelDirs) != 1 {
		t.Fatalf("trace has %d traversal lanes, want only the kept one", len(sum.LevelDirs))
	}
	for _, tid := range TimelineIDs(sum.LevelDirs) {
		want := []string{"TD", "TD", "BU", "TD"}
		got := sum.LevelDirs[tid]
		if len(got) != len(want) {
			t.Fatalf("kept lane has %d levels, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("kept lane level %d = %s, want %s", i+1, got[i], want[i])
			}
		}
	}
}

func TestWithTraversalID(t *testing.T) {
	var got []uint64
	rec := recorderFunc(func(e Event) { got = append(got, e.TraversalID) })
	w := WithTraversalID(77, rec)
	w.Event(Event{Kind: KindLevel, TraversalID: 0})
	w.Event(Event{Kind: KindLevel, TraversalID: 12})
	for i, id := range got {
		if id != 77 {
			t.Errorf("event %d forwarded with ID %d, want 77", i, id)
		}
	}
	got = got[:0]
	WithTraversalID(0, rec).Event(Event{Kind: KindLevel, TraversalID: 12})
	if len(got) != 1 || got[0] != 12 {
		t.Errorf("id 0 wrapper altered events: %v", got)
	}
	if WithTraversalID(5, nil) != Nop {
		t.Error("nil recorder should collapse to Nop")
	}
	if WithTraversalID(5, Nop) != Nop {
		t.Error("Nop recorder should stay Nop")
	}
}

// recorderFunc adapts a function to the Recorder interface for tests.
type recorderFunc func(Event)

func (f recorderFunc) Event(e Event) { f(e) }
