package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func feedMetrics(m *Metrics) {
	events := []Event{
		{Kind: KindTraversalStart, Reused: true},
		{Kind: KindRootDispatch},
		{Kind: KindLevel, Dir: TopDown, FrontierVertices: 1, Discovered: 10, Grains: 1, WallDur: 3 * time.Microsecond},
		{Kind: KindSwitch, Dir: BottomUp},
		{Kind: KindLevel, Dir: BottomUp, FrontierVertices: 10, Discovered: 100, Scans: 500, Grains: 4, WallDur: 9 * time.Microsecond},
		{Kind: KindTraversalEnd},
		{Kind: KindRootDone},
		{Kind: KindTraversalStart},
		{Kind: KindTraversalEnd, Detail: "context canceled"},
		{Kind: KindPlanStart},
		{Kind: KindSimStep},
		{Kind: KindSimStep},
		{Kind: KindHandoff, Bytes: 4096},
		{Kind: KindPlanEnd},
		{Kind: KindRetry},
		{Kind: KindReplan},
		{Kind: KindFault},
	}
	for _, e := range events {
		m.Event(e)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	feedMetrics(m)
	s := m.Snapshot()
	want := map[string]int64{
		"traversals_total":          2,
		"traversal_errors_total":    1,
		"workspace_reuses_total":    1,
		"roots_dispatched_total":    1,
		"roots_done_total":          1,
		"levels_total":              2,
		"levels_topdown_total":      1,
		"levels_bottomup_total":     1,
		"direction_switches_total":  1,
		"vertices_discovered_total": 110,
		"bottomup_scans_total":      500,
		"grains_dispatched_total":   5,
		"plan_runs_total":           1,
		"sim_steps_total":           2,
		"handoffs_total":            1,
		"handoff_bytes_total":       4096,
		"retries_total":             1,
		"replans_total":             1,
		"faults_total":              1,
		// |V|cq 1 → bit-length 1; |V|cq 10 → bit-length 4.
		"frontier_vertices_bucket_2e01": 1,
		"frontier_vertices_bucket_2e04": 1,
		// 3us → bit-length 2; 9us → bit-length 4.
		"level_wall_us_bucket_2e02": 1,
		"level_wall_us_bucket_2e04": 1,
	}
	for k, v := range want {
		if s[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, s[k], v)
		}
	}
}

func TestHistBucket(t *testing.T) {
	cases := map[int64]int{-5: 0, 0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1 << 40: 41, 1<<62 + 5: 47}
	for v, want := range cases {
		if got := histBucket(v); got != want {
			t.Errorf("histBucket(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestMetricsTextEndpoint(t *testing.T) {
	m := NewMetrics()
	feedMetrics(m)

	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := sb.String()
	if !strings.Contains(text, "crossbfs_levels_total 2\n") {
		t.Errorf("text page missing levels_total:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("text page not sorted: %q after %q", lines[i], lines[i-1])
		}
	}

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
}

func TestMetricsConcurrentEvents(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Event(Event{Kind: KindLevel, Dir: TopDown, FrontierVertices: int64(i), Discovered: 1})
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s["levels_total"] != workers*per {
		t.Errorf("levels_total = %d, want %d", s["levels_total"], workers*per)
	}
	if s["vertices_discovered_total"] != workers*per {
		t.Errorf("vertices_discovered_total = %d, want %d", s["vertices_discovered_total"], workers*per)
	}
}

func TestMetricsWriteJSON(t *testing.T) {
	m := NewMetrics()
	feedMetrics(m)
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got map[string]int64
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, sb.String())
	}
	want := m.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("JSON has %d keys, snapshot has %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("json[%q] = %d, want %d", k, got[k], v)
		}
	}
	// Stable key order: encoding/json sorts map keys, so two renders of
	// the same state must be byte-identical — the property scripts that
	// diff -metrics-out files rely on.
	var sb2 strings.Builder
	if err := m.WriteJSON(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("two WriteJSON renders of the same state differ")
	}
	keys := make([]string, 0, len(got))
	dec := json.NewDecoder(strings.NewReader(sb.String()))
	if _, err := dec.Token(); err != nil { // consume '{'
		t.Fatal(err)
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		if k, ok := tok.(string); ok {
			keys = append(keys, k)
		}
		if _, err := dec.Token(); err != nil { // consume the value
			t.Fatal(err)
		}
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("JSON keys not sorted: %v", keys)
	}
}

// TestMetricsScrapeWhileRecording is the race-mode gate for the pull
// endpoints: HTTP scrapes (Handler), expvar reads (Publish), and text
// renders all run concurrently with a storm of recording goroutines.
func TestMetricsScrapeWhileRecording(t *testing.T) {
	m := NewMetrics()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	// Publish panics on duplicate names; a unique per-test name keeps
	// repeated -count runs inside one process safe.
	m.Publish(fmt.Sprintf("crossbfs_scrape_test_%d", time.Now().UnixNano()))

	stop := make(chan struct{})
	var rec sync.WaitGroup
	for w := 0; w < 4; w++ {
		rec.Add(1)
		go func(w int) {
			defer rec.Done()
			i := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				m.Event(Event{Kind: KindTraversalStart, TraversalID: uint64(i)})
				m.Event(Event{Kind: KindLevel, Dir: TopDown, FrontierVertices: i, Discovered: 1,
					Grains: 1, WallDur: time.Duration(i) * time.Microsecond})
				m.Event(Event{Kind: KindTraversalEnd, TraversalID: uint64(i)})
			}
		}(w)
	}
	var scr sync.WaitGroup
	for s := 0; s < 4; s++ {
		scr.Add(1)
		go func() {
			defer scr.Done()
			for i := 0; i < 25; i++ {
				resp, err := srv.Client().Get(srv.URL)
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("read scrape: %v", err)
					return
				}
				if !strings.Contains(string(body), "crossbfs_traversals_total") {
					t.Errorf("scrape missing traversals_total:\n%s", body)
					return
				}
				var sb strings.Builder
				if err := m.WriteJSON(&sb); err != nil {
					t.Errorf("WriteJSON during recording: %v", err)
					return
				}
			}
		}()
	}
	scr.Wait()
	close(stop)
	rec.Wait()
	s := m.Snapshot()
	if s["traversals_total"] == 0 || s["levels_total"] == 0 {
		t.Errorf("no events recorded during scrape storm: %v", s)
	}
}
