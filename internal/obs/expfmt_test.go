package obs

import (
	"math"
	"strings"
	"testing"
)

const goodPage = `# HELP crossbfs_engine_traversals_total Traversals started.
# TYPE crossbfs_engine_traversals_total counter
crossbfs_engine_traversals_total{engine="serial"} 3
# HELP crossbfs_query_latency_seconds Query latency.
# TYPE crossbfs_query_latency_seconds histogram
crossbfs_query_latency_seconds_bucket{class="oltp",le="0.001"} 1
crossbfs_query_latency_seconds_bucket{class="oltp",le="0.01"} 3
crossbfs_query_latency_seconds_bucket{class="oltp",le="+Inf"} 4
crossbfs_query_latency_seconds_sum{class="oltp"} 0.42
crossbfs_query_latency_seconds_count{class="oltp"} 4
crossbfs_serve_requests_total 17
crossbfs_traversals_total 9
`

func TestValidateExpositionAccepts(t *testing.T) {
	st, err := ValidateExposition(strings.NewReader(goodPage))
	if err != nil {
		t.Fatalf("good page rejected: %v", err)
	}
	if st.Families != 4 || st.Typed != 2 {
		t.Errorf("stats = %+v, want 4 families / 2 typed", st)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		page string
		want string
	}{
		{"bad metric name", "1metric 3\n", "invalid metric name"},
		{"missing value", "crossbfs_x_total\n", "no value"},
		{"bad value", "crossbfs_x_total pancake\n", "bad value"},
		{"unknown type", "# TYPE crossbfs_x_total pie\n", "unknown type"},
		{"duplicate TYPE", "# TYPE crossbfs_x_total counter\n# TYPE crossbfs_x_total counter\n", "second TYPE"},
		{"duplicate HELP", "# HELP crossbfs_x_total a\n# HELP crossbfs_x_total b\n", "second HELP"},
		{"type after samples", "crossbfs_x_total 1\n# TYPE crossbfs_x_total counter\n", "after its samples"},
		{"duplicate series", "crossbfs_x_total 1\ncrossbfs_x_total 2\n", "duplicate series"},
		{"duplicate labeled series", `crossbfs_x_total{engine="a"} 1` + "\n" + `crossbfs_x_total{engine="a"} 2` + "\n", "duplicate series"},
		{"duplicate label", `crossbfs_x_total{engine="a",engine="b"} 1` + "\n", "duplicate label"},
		{"unquoted label value", `crossbfs_x_total{engine=a} 1` + "\n", "not quoted"},
		{"interleaved families", "crossbfs_a_total 1\ncrossbfs_b_total 1\ncrossbfs_a_total{engine=\"x\"} 1\n", "reappears"},
		{"histogram stray base sample", "# TYPE crossbfs_h histogram\ncrossbfs_h 1\n", "stray sample"},
		{"histogram without +Inf", "# TYPE crossbfs_h histogram\ncrossbfs_h_bucket{le=\"1\"} 1\ncrossbfs_h_sum 1\ncrossbfs_h_count 1\n", "no +Inf"},
		{"histogram count mismatch", "# TYPE crossbfs_h histogram\ncrossbfs_h_bucket{le=\"+Inf\"} 3\ncrossbfs_h_sum 1\ncrossbfs_h_count 2\n", "_count"},
		{"histogram decreasing buckets", "# TYPE crossbfs_h histogram\ncrossbfs_h_bucket{le=\"1\"} 5\ncrossbfs_h_bucket{le=\"2\"} 3\ncrossbfs_h_bucket{le=\"+Inf\"} 5\ncrossbfs_h_sum 1\ncrossbfs_h_count 5\n", "decrease"},
		{"histogram missing sum", "# TYPE crossbfs_h histogram\ncrossbfs_h_bucket{le=\"+Inf\"} 1\ncrossbfs_h_count 1\n", "missing _sum"},
		{"bucket without le", "# TYPE crossbfs_h histogram\ncrossbfs_h_bucket 1\ncrossbfs_h_sum 1\ncrossbfs_h_count 1\n", "without le"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateExposition(strings.NewReader(tc.page))
			if err == nil {
				t.Fatalf("page accepted:\n%s", tc.page)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseExpositionRoundTrip(t *testing.T) {
	fams, err := ParseExposition(strings.NewReader(goodPage))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	byName := make(map[string]ExpoFamily)
	for _, f := range fams {
		byName[f.Name] = f
	}
	trav := byName["crossbfs_engine_traversals_total"]
	if trav.Type != "counter" || len(trav.Samples) != 1 || trav.Samples[0].Value != 3 {
		t.Errorf("traversals family parsed wrong: %+v", trav)
	}
	if trav.Samples[0].Labels["engine"] != "serial" {
		t.Errorf("label lost: %+v", trav.Samples[0])
	}
	lat := byName["crossbfs_query_latency_seconds"]
	if lat.Type != "histogram" || len(lat.Samples) != 5 {
		t.Errorf("latency family parsed wrong: %+v", lat)
	}
	if flat := byName["crossbfs_serve_requests_total"]; flat.Type != "untyped" || flat.Samples[0].Value != 17 {
		t.Errorf("untyped legacy line parsed wrong: %+v", flat)
	}
}

func TestParseLabelEscapes(t *testing.T) {
	page := `crossbfs_x_total{graph="a\"b\\c\nd"} 1` + "\n"
	fams, err := ParseExposition(strings.NewReader(page))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	got := fams[0].Samples[0].Labels["graph"]
	if got != "a\"b\\c\nd" {
		t.Errorf("unescaped label = %q", got)
	}
	// Round-trip through the encoder's escaping.
	if esc := escapeLabel(got); esc != `a\"b\\c\nd` {
		t.Errorf("escapeLabel = %q", esc)
	}
}

func TestHistogramQuantile(t *testing.T) {
	buckets := []HistBucket{
		{LE: 0.001, Count: 10},
		{LE: 0.002, Count: 70},
		{LE: 0.004, Count: 95},
		{LE: math.Inf(1), Count: 100},
	}
	if got := HistogramQuantile(0.5, buckets); got != 0.002 {
		t.Errorf("p50 = %v, want 0.002", got)
	}
	if got := HistogramQuantile(0.99, buckets); !math.IsInf(got, 1) {
		t.Errorf("p99 = %v, want +Inf", got)
	}
	if got := HistogramQuantile(0.9, buckets); got != 0.004 {
		t.Errorf("p90 = %v, want 0.004", got)
	}
	if got := HistogramQuantile(0.5, nil); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}

// TestQuantileAgreesWithEncoder replays one latency stream through the
// le-bucket encoder and checks that quantiles reconstructed from the
// exposition match the exact nearest-rank quantiles to within one
// power-of-two bucket — the resolution contract bfsload's server-side
// view depends on.
func TestQuantileAgreesWithEncoder(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("crossbfs_query_latency_seconds", "Latency.", LatencyBuckets(), LabelClass)
	c := h.With("oltp")
	// A long-tailed stream in seconds: mostly ~100-800µs, tail to 40ms.
	var stream []float64
	for i := 0; i < 1000; i++ {
		v := 100e-6 + float64(i%17)*43e-6
		if i%100 == 0 {
			v = 10e-3 + float64(i%5)*6e-3
		}
		stream = append(stream, v)
		c.Observe(v)
	}

	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	fams, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	buckets := HistogramBuckets(fams[0], map[string]string{"class": "oltp"})

	exact := append([]float64(nil), stream...)
	sortFloats(exact)
	for _, q := range []float64{0.5, 0.99} {
		est := HistogramQuantile(q, buckets)
		idx := int(math.Ceil(q*float64(len(exact)))) - 1
		truth := exact[idx]
		// Within one bucket: the estimate is the upper bound of the
		// bucket holding the true value, so truth <= est <= 2*truth
		// rounded up to the next power-of-two bound.
		if est < truth || est > nextPow2Bound(truth) {
			t.Errorf("q=%v: estimate %v outside [%v, %v]", q, est, truth, nextPow2Bound(truth))
		}
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// nextPow2Bound returns the smallest bound in LatencyBuckets() at or
// above v, times two (one bucket of slack).
func nextPow2Bound(v float64) float64 {
	for _, b := range LatencyBuckets() {
		if b >= v {
			return 2 * b
		}
	}
	return math.Inf(1)
}
