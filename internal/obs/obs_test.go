package obs

import (
	"testing"
	"time"
)

// capture is a test recorder that stores events in order.
type capture struct {
	events []Event
}

func (c *capture) Event(e Event) { c.events = append(c.events, e) }

func TestLiveAndOrNop(t *testing.T) {
	if Live(nil) {
		t.Error("Live(nil) = true, want false")
	}
	if Live(Nop) {
		t.Error("Live(Nop) = true, want false")
	}
	c := &capture{}
	if !Live(c) {
		t.Error("Live(recorder) = false, want true")
	}
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	if OrNop(c) != Recorder(c) {
		t.Error("OrNop(rec) did not return rec")
	}
	// Nop must accept events without effect.
	Nop.Event(Event{Kind: KindLevel})
}

func TestMulti(t *testing.T) {
	a, b := &capture{}, &capture{}

	if got := Multi(); got != Nop {
		t.Errorf("Multi() = %v, want Nop", got)
	}
	if got := Multi(nil, Nop); got != Nop {
		t.Errorf("Multi(nil, Nop) = %v, want Nop", got)
	}
	if got := Multi(nil, a, Nop); got != Recorder(a) {
		t.Errorf("Multi with one live recorder should unwrap it")
	}

	m := Multi(a, nil, b)
	m.Event(Event{Kind: KindSwitch, Step: 3})
	m.Event(Event{Kind: KindLevel, Step: 4})
	for name, c := range map[string]*capture{"a": a, "b": b} {
		if len(c.events) != 2 {
			t.Fatalf("recorder %s got %d events, want 2", name, len(c.events))
		}
		if c.events[0].Kind != KindSwitch || c.events[1].Step != 4 {
			t.Errorf("recorder %s got events out of order: %+v", name, c.events)
		}
	}
}

func TestNextTraversalIDUnique(t *testing.T) {
	const n = 1000
	ids := make(chan uint64, n)
	for i := 0; i < n/10; i++ {
		go func() {
			for j := 0; j < 10; j++ {
				ids <- NextTraversalID()
			}
		}()
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		id := <-ids
		if id == 0 {
			t.Fatal("NextTraversalID returned 0; 0 is reserved for unattributed events")
		}
		if seen[id] {
			t.Fatalf("duplicate traversal ID %d", id)
		}
		seen[id] = true
	}
}

func TestKindAndDirectionStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindTraversalStart: "traversal_start",
		KindLevel:          "level",
		KindSwitch:         "switch",
		KindTraversalEnd:   "traversal_end",
		KindRootDispatch:   "root_dispatch",
		KindRootDone:       "root_done",
		KindPlanStart:      "plan_start",
		KindSimStep:        "sim_step",
		KindHandoff:        "handoff",
		KindPlanEnd:        "plan_end",
		KindRetry:          "retry",
		KindReplan:         "replan",
		KindFault:          "fault",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("unknown Kind should stringify as unknown")
	}
	if TopDown.String() != "TD" || BottomUp.String() != "BU" || DirNone.String() != "" {
		t.Error("Direction strings drifted from TD/BU/empty")
	}
}

func TestEventIsFlat(t *testing.T) {
	// The zero-alloc contract relies on Event being a pure value: a
	// stack copy with no heap-reachable parts beyond interned strings.
	// Passing one through an interface method must not allocate.
	var sink Recorder = Nop
	e := Event{Kind: KindLevel, Step: 7, Wall: time.Now()}
	allocs := testing.AllocsPerRun(100, func() { sink.Event(e) })
	if allocs != 0 {
		t.Errorf("emitting to Nop allocated %v times per call, want 0", allocs)
	}
}
