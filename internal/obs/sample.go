package obs

import "sync/atomic"

// splitmix64 is the SplitMix64 finalizer — the same mixing discipline
// internal/xrand uses for deterministic fault replay. It is inlined
// here (obs imports nothing from the stack it observes) to hash
// TraversalIDs into a uniform keep/drop decision: sequential IDs are
// the worst-case input for a modulus, and the finalizer's avalanche
// makes 1-in-K selection unbiased over them.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampler wraps a Recorder and keeps 1-in-K traversals — whole
// traversals, never individual events. The keep/drop decision is a
// pure function of the event's TraversalID (hashed with SplitMix64
// against the sampler's seed), so every emitter that stamps the same
// ID — the traversal's level/switch events, its RunMany dispatch
// bracket, the resilient ladder's retry/replan mirror of the same run
// — lands on the same side of the decision with no shared mutable
// state and no coordination. A kept traversal's trace is therefore
// complete and passes ValidateTrace exactly as an unsampled one would.
//
// Events with TraversalID 0 (unattributed: emitters that never drew an
// ID) always pass through, so coarse bookkeeping events survive any
// sampling rate.
//
// Sampler adds two atomic counters to the hot path and is otherwise
// stateless; it is safe for concurrent use whenever the wrapped
// recorder is.
type Sampler struct {
	next Recorder
	k    uint64
	seed uint64

	seen atomic.Uint64 // traversal/plan starts observed
	kept atomic.Uint64 // traversal/plan starts forwarded
}

// NewSampler returns a Sampler forwarding 1-in-k traversals to next.
// k < 1 is treated as 1 (keep everything); the seed varies which
// residue class of hashed IDs is kept, so two samplers with different
// seeds select independent subsets.
func NewSampler(next Recorder, k int, seed uint64) *Sampler {
	if k < 1 {
		k = 1
	}
	return &Sampler{next: OrNop(next), k: uint64(k), seed: seed}
}

// KeepTraversal reports the sampling decision for one TraversalID —
// exposed so tests (and dump tooling) can predict which traversals a
// trace will contain. ID 0 is always kept.
func (s *Sampler) KeepTraversal(id uint64) bool {
	if id == 0 {
		return true
	}
	return splitmix64(id^s.seed)%s.k == 0
}

// Event implements Recorder.
func (s *Sampler) Event(e Event) {
	keep := s.KeepTraversal(e.TraversalID)
	if e.Kind == KindTraversalStart || e.Kind == KindPlanStart {
		s.seen.Add(1)
		if keep {
			s.kept.Add(1)
		}
	}
	if keep {
		s.next.Event(e)
	}
}

// Seen returns how many traversal/plan starts the sampler observed.
func (s *Sampler) Seen() uint64 { return s.seen.Load() }

// Kept returns how many of those starts were forwarded.
func (s *Sampler) Kept() uint64 { return s.kept.Load() }

// scoped stamps a fixed TraversalID on every event passing through.
// It is a value wrapper (one word of state beyond the interface), so
// WithTraversalID costs a single small allocation per traversal on
// the live path only.
type scoped struct {
	id   uint64
	next Recorder
}

func (s scoped) Event(e Event) {
	e.TraversalID = s.id
	s.next.Event(e)
}

// WithTraversalID returns a recorder that overwrites each event's
// TraversalID with id before forwarding to rec. The RunMany dispatcher
// and the resilient executor use it to bind a dispatch bracket, the
// traversal it launches, and any simulated retry timeline to one ID —
// the invariant that makes whole-traversal sampling (and flight-
// recorder grouping) sound. With id 0 or a non-live rec it returns
// OrNop(rec) unchanged.
func WithTraversalID(id uint64, rec Recorder) Recorder {
	if id == 0 || !Live(rec) {
		return OrNop(rec)
	}
	return scoped{id: id, next: rec}
}
