package obs

import "strconv"

// RegistryRecorder bridges the event seam onto labeled families: one
// instance aggregates the traversal-level event stream for one engine
// into Registry cells. The dimensional contract is honored by
// construction — every (engine, dir) and (engine, rank) tuple the
// recorder will ever touch is interned in NewRegistryRecorder, so
// Event is nothing but atomic adds on pre-resolved cells: 0 allocs/op,
// gated by TestRegistryRecorderAllocs and the "labeled" mode of
// BenchmarkRunManyRecorderOverhead.
type RegistryRecorder struct {
	traversals *Cell
	levels     [2]*Cell // indexed by Direction (td, bu)
	discovered [2]*Cell
	frontier   [2]*Cell // histogram of per-level |V|cq
	levelWall  [2]*Cell // histogram of per-level wall seconds
	rankBytes  []*Cell  // exchange bytes per rank, when WithRanks ran

	// engine and rankFamily let WithRanks intern late (rank count is
	// known at plan time, after construction).
	engine     string
	rankFamily *Family
}

// Direction label values.
const (
	dirTDLabel = "td"
	dirBULabel = "bu"
)

// NewRegistryRecorder registers the engine-level families on reg (a
// no-op when another recorder already did) and interns the cells for
// one engine label. Construct once per engine, at wiring time.
func NewRegistryRecorder(reg *Registry, engine string) *RegistryRecorder {
	trav := reg.Counter("crossbfs_engine_traversals_total",
		"Traversals started, by engine.", LabelEngine)
	levels := reg.Counter("crossbfs_engine_levels_total",
		"Completed expansion levels, by engine and direction.", LabelEngine, LabelDir)
	disc := reg.Counter("crossbfs_engine_discovered_total",
		"Vertices discovered across levels, by engine and direction.", LabelEngine, LabelDir)
	frontier := reg.Histogram("crossbfs_engine_frontier_vertices",
		"Per-level frontier size |V|cq, by engine and direction.", SizeBuckets(), LabelEngine, LabelDir)
	wall := reg.Histogram("crossbfs_engine_level_seconds",
		"Per-level wall time, by engine and direction.", LatencyBuckets(), LabelEngine, LabelDir)
	rr := &RegistryRecorder{traversals: trav.With(engine)}
	for i, dir := range []string{dirTDLabel, dirBULabel} {
		rr.levels[i] = levels.With(engine, dir)
		rr.discovered[i] = disc.With(engine, dir)
		rr.frontier[i] = frontier.With(engine, dir)
		rr.levelWall[i] = wall.With(engine, dir)
	}
	rr.rankFamily = reg.Counter("crossbfs_engine_exchange_bytes_total",
		"Frontier-exchange payload bytes, by engine and rank.", LabelEngine, LabelRank)
	rr.engine = engine
	return rr
}

// WithRanks interns rank cells 0..n-1 for the sharded exchange
// counter, so KindExchangeEnd events resolve their rank without a
// lookup. Call at wiring time, before serving events.
func (rr *RegistryRecorder) WithRanks(n int) *RegistryRecorder {
	rr.rankBytes = make([]*Cell, n)
	for i := 0; i < n; i++ {
		rr.rankBytes[i] = rr.rankFamily.With(rr.engine, strconv.Itoa(i))
	}
	return rr
}

// Event aggregates one telemetry event into the labeled cells. Only
// the kinds with a dimensional story are counted; everything else is
// already covered by the flat Metrics taxonomy.
func (rr *RegistryRecorder) Event(e Event) {
	switch e.Kind {
	case KindTraversalStart:
		rr.traversals.Inc()
	case KindLevel:
		d := 0
		if e.Dir == BottomUp {
			d = 1
		}
		rr.levels[d].Inc()
		rr.discovered[d].Add(float64(e.Discovered))
		rr.frontier[d].Observe(float64(e.FrontierVertices))
		rr.levelWall[d].Observe(e.WallDur.Seconds())
	case KindExchangeEnd:
		if i := int(e.Index); i >= 0 && i < len(rr.rankBytes) {
			rr.rankBytes[i].Add(float64(e.Bytes))
		}
	default:
	}
}
