package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// TraceSummary is what ValidateTrace learns about a trace file. Beyond
// raw counts it reconstructs, per timeline, the direction each step
// ran in — the per-level record that lets a reader (or a test, or
// make trace-smoke) recover the exact top-down→bottom-up→top-down
// switch levels a heuristic chose.
type TraceSummary struct {
	Events   int // total elements of traceEvents
	Slices   int // ph "X"
	Instants int // ph "i"
	Metadata int // ph "M"

	Levels   int // cat "level" slices (real traversals)
	SimSteps int // cat "sim" slices (priced plans)
	Handoffs int // cat "handoff" slices
	Switches int // cat "switch" instants
	Faults   int // cat "fault" instants

	// Sharded-traversal events (see DESIGN.md, partition layer).
	Exchanges    int // cat "exchange" slices (per-rank frontier exchanges)
	Collectives  int // cat "collective" instants (global switch decisions)
	GhostUpdates int // cat "ghost" instants (remote claim application)

	// Rank fault tolerance (see DESIGN.md §4e, recovery protocol).
	RanksLost   int // cat "recover" instants carrying args.survivors (rank_lost)
	Recoveries  int // cat "recover" slices (completed survivor recoveries)
	Checkpoints int // cat "checkpoint" instants (per-level frontier deltas)

	// Processes maps pid to its process_name metadata.
	Processes map[int]string
	// Threads maps "pid/tid" to its thread_name metadata.
	Threads map[string]string

	// LevelDirs and SimDirs map tid to the per-step direction sequence
	// ("TD"/"BU", index 0 = step 1) recovered from level and sim_step
	// slices respectively. The switch schedule of a traversal is read
	// directly off this sequence.
	LevelDirs map[int][]string
	SimDirs   map[int][]string
}

// SwitchSteps returns the 1-based steps at which dirs changes
// direction, e.g. [TD TD BU BU TD] → [3 5].
func SwitchSteps(dirs []string) []int {
	var steps []int
	for i := 1; i < len(dirs); i++ {
		if dirs[i] != dirs[i-1] {
			steps = append(steps, i+1)
		}
	}
	return steps
}

// rawTrace mirrors the JSON object format's envelope.
type rawTrace struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// rawEvent holds the fields ValidateTrace checks. Pointers distinguish
// "absent" from zero.
type rawEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	Pid   *int           `json:"pid"`
	Tid   *int           `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

// ValidateTrace parses data as Chrome trace-event JSON and checks the
// structural invariants TraceWriter promises (and chrome://tracing /
// Perfetto require):
//
//   - the document is a JSON object with a traceEvents array;
//   - every event has a name, a known phase (X/i/M), and integer
//     pid/tid; X and i events have a finite ts >= 0, X events a dur;
//   - level and sim_step slices carry step/dir args, and within one
//     tid their steps increase by exactly 1 from 1 (sim timelines) or
//     from their first step (traversal lanes) — the property that
//     makes per-level switch reconstruction sound;
//   - directions are "TD" or "BU";
//   - exchange slices carry bytes/rank args, collective instants a
//     positive step and a direction, ghost instants a rank;
//   - recovery events carry rank and positive step args (recover
//     slices and instants), checkpoint instants additionally bytes.
//
// On success it returns the summary; the first violation returns an
// error naming the offending event index.
func ValidateTrace(data []byte) (*TraceSummary, error) {
	var doc rawTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("trace has no traceEvents array")
	}
	s := &TraceSummary{
		Events:    len(doc.TraceEvents),
		Processes: make(map[int]string),
		Threads:   make(map[string]string),
		LevelDirs: make(map[int][]string),
		SimDirs:   make(map[int][]string),
	}
	type laneKey struct {
		sim bool
		tid int
	}
	lastStep := make(map[laneKey]int)
	for i, raw := range doc.TraceEvents {
		var ev rawEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("event %d: not an object: %w", i, err)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("event %d: missing name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return nil, fmt.Errorf("event %d (%s): missing pid/tid", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
			s.Metadata++
			name, _ := ev.Args["name"].(string)
			switch ev.Name {
			case "process_name":
				if name == "" {
					return nil, fmt.Errorf("event %d: process_name without args.name", i)
				}
				s.Processes[*ev.Pid] = name
			case "thread_name":
				if name == "" {
					return nil, fmt.Errorf("event %d: thread_name without args.name", i)
				}
				s.Threads[fmt.Sprintf("%d/%d", *ev.Pid, *ev.Tid)] = name
			}
			continue
		case "X", "i":
			if ev.TS == nil || *ev.TS < 0 {
				return nil, fmt.Errorf("event %d (%s): missing or negative ts", i, ev.Name)
			}
		default:
			return nil, fmt.Errorf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Ph == "i" {
			s.Instants++
			switch ev.Cat {
			case "switch":
				s.Switches++
			case "fault":
				s.Faults++
			case "collective":
				s.Collectives++
				step, ok := argInt(ev.Args, "step")
				if !ok || step < 1 {
					return nil, fmt.Errorf("event %d (%s): collective instant without positive args.step", i, ev.Name)
				}
				if dir, _ := ev.Args["dir"].(string); dir != "TD" && dir != "BU" {
					return nil, fmt.Errorf("event %d (%s): collective dir %q is neither TD nor BU", i, ev.Name, dir)
				}
			case "ghost":
				s.GhostUpdates++
				if _, ok := argInt(ev.Args, "rank"); !ok {
					return nil, fmt.Errorf("event %d (%s): ghost instant without args.rank", i, ev.Name)
				}
			case "recover":
				if _, ok := argInt(ev.Args, "rank"); !ok {
					return nil, fmt.Errorf("event %d (%s): recover instant without args.rank", i, ev.Name)
				}
				if step, ok := argInt(ev.Args, "step"); !ok || step < 1 {
					return nil, fmt.Errorf("event %d (%s): recover instant without positive args.step", i, ev.Name)
				}
				if _, lost := ev.Args["survivors"]; lost {
					s.RanksLost++
				}
			case "checkpoint":
				s.Checkpoints++
				if _, ok := argInt(ev.Args, "rank"); !ok {
					return nil, fmt.Errorf("event %d (%s): checkpoint instant without args.rank", i, ev.Name)
				}
				if b, ok := argInt(ev.Args, "bytes"); !ok || b < 0 {
					return nil, fmt.Errorf("event %d (%s): checkpoint instant without non-negative args.bytes", i, ev.Name)
				}
			}
			continue
		}
		// ph == "X".
		s.Slices++
		if ev.Dur == nil || *ev.Dur < 0 {
			return nil, fmt.Errorf("event %d (%s): X event missing or negative dur", i, ev.Name)
		}
		switch ev.Cat {
		case "level", "sim":
			step, ok := argInt(ev.Args, "step")
			if !ok || step < 1 {
				return nil, fmt.Errorf("event %d (%s): %s slice without positive args.step", i, ev.Name, ev.Cat)
			}
			dir, _ := ev.Args["dir"].(string)
			if dir != "TD" && dir != "BU" {
				return nil, fmt.Errorf("event %d (%s): dir %q is neither TD nor BU", i, ev.Name, dir)
			}
			key := laneKey{sim: ev.Cat == "sim", tid: *ev.Tid}
			if prev, seen := lastStep[key]; seen && step != prev+1 {
				return nil, fmt.Errorf("event %d (%s): tid %d step %d follows step %d (want %d)",
					i, ev.Name, *ev.Tid, step, prev, prev+1)
			}
			lastStep[key] = step
			if ev.Cat == "level" {
				s.Levels++
				s.LevelDirs[*ev.Tid] = append(s.LevelDirs[*ev.Tid], dir)
			} else {
				s.SimSteps++
				s.SimDirs[*ev.Tid] = append(s.SimDirs[*ev.Tid], dir)
			}
		case "handoff":
			s.Handoffs++
			if _, ok := argInt(ev.Args, "bytes"); !ok {
				return nil, fmt.Errorf("event %d (%s): handoff slice without args.bytes", i, ev.Name)
			}
		case "exchange":
			s.Exchanges++
			if _, ok := argInt(ev.Args, "bytes"); !ok {
				return nil, fmt.Errorf("event %d (%s): exchange slice without args.bytes", i, ev.Name)
			}
			if _, ok := argInt(ev.Args, "rank"); !ok {
				return nil, fmt.Errorf("event %d (%s): exchange slice without args.rank", i, ev.Name)
			}
		case "recover":
			s.Recoveries++
			if _, ok := argInt(ev.Args, "rank"); !ok {
				return nil, fmt.Errorf("event %d (%s): recover slice without args.rank", i, ev.Name)
			}
			if step, ok := argInt(ev.Args, "step"); !ok || step < 1 {
				return nil, fmt.Errorf("event %d (%s): recover slice without positive args.step", i, ev.Name)
			}
		}
	}
	return s, nil
}

// argInt fetches an integral numeric arg (JSON numbers decode as
// float64 through map[string]any).
func argInt(args map[string]any, key string) (int, bool) {
	v, ok := args[key].(float64)
	if !ok || v != float64(int(v)) {
		return 0, false
	}
	return int(v), true
}

// TimelineIDs returns the tids present in m in ascending order —
// convenient for deterministic iteration over LevelDirs/SimDirs.
func TimelineIDs(m map[int][]string) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
