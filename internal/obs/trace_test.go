package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a miniature cross-architecture run: one real
// traversal (TD, TD, BU, TD — two switches), its RunMany dispatch
// bracket, and one simulated plan timeline with a handoff and a retry.
// Wall times are fixed offsets from an arbitrary epoch so the encoded
// file is byte-stable.
func goldenEvents() []Event {
	at := func(us int64) time.Time { return time.UnixMicro(1700000000000000 + us) }
	return []Event{
		{Kind: KindRootDispatch, Root: 5, Index: 0, Dir: DirNone, Workers: 2, Wall: at(0)},
		{Kind: KindTraversalStart, TraversalID: 1, Root: 5, Engine: "hybrid(64,64)", Dir: DirNone,
			FrontierVertices: 1024, FrontierEdges: 16384, Reused: true, Wall: at(3)},
		{Kind: KindLevel, TraversalID: 1, Root: 5, Engine: "hybrid(64,64)", Step: 1, Dir: TopDown,
			FrontierVertices: 1, FrontierEdges: 12, Discovered: 12, Unvisited: 1023,
			Grains: 1, Workers: 1, Wall: at(5), WallDur: 40 * time.Microsecond},
		{Kind: KindLevel, TraversalID: 1, Root: 5, Engine: "hybrid(64,64)", Step: 2, Dir: TopDown,
			FrontierVertices: 12, FrontierEdges: 300, Discovered: 200, Unvisited: 1011,
			Grains: 1, Workers: 1, Wall: at(50), WallDur: 60 * time.Microsecond},
		{Kind: KindSwitch, TraversalID: 1, Root: 5, Engine: "hybrid(64,64)", Step: 3, Dir: BottomUp, Wall: at(115)},
		{Kind: KindLevel, TraversalID: 1, Root: 5, Engine: "hybrid(64,64)", Step: 3, Dir: BottomUp,
			FrontierVertices: 200, FrontierEdges: 9000, Discovered: 700, Unvisited: 811,
			Scans: 2100, Grains: 1, Workers: 1, Wall: at(115), WallDur: 30 * time.Microsecond},
		{Kind: KindSwitch, TraversalID: 1, Root: 5, Engine: "hybrid(64,64)", Step: 4, Dir: TopDown, Wall: at(150)},
		{Kind: KindLevel, TraversalID: 1, Root: 5, Engine: "hybrid(64,64)", Step: 4, Dir: TopDown,
			FrontierVertices: 700, FrontierEdges: 4000, Discovered: 0, Unvisited: 111,
			Grains: 3, Workers: 3, Wall: at(150), WallDur: 25 * time.Microsecond},
		{Kind: KindTraversalEnd, TraversalID: 1, Root: 5, Engine: "hybrid(64,64)", Dir: DirNone,
			Discovered: 913, Scans: 16000, Wall: at(180), WallDur: 177 * time.Microsecond},
		{Kind: KindRootDone, Root: 5, Index: 0, Dir: DirNone, Workers: 2, Wall: at(185), WallDur: 185 * time.Microsecond},

		{Kind: KindPlanStart, TraversalID: 2, Root: 5, Engine: "CPUTD+GPUCB", Dir: DirNone},
		{Kind: KindSimStep, TraversalID: 2, Root: 5, Engine: "CPUTD+GPUCB", Step: 1, Dir: TopDown,
			Device: "SandyBridge-8c", FrontierVertices: 1, FrontierEdges: 12, Discovered: 12,
			Unvisited: 1023, Scans: 15000, SimStart: 0, SimDur: 0.0007},
		{Kind: KindSimStep, TraversalID: 2, Root: 5, Engine: "CPUTD+GPUCB", Step: 2, Dir: TopDown,
			Device: "SandyBridge-8c", FrontierVertices: 12, FrontierEdges: 300, Discovered: 200,
			Unvisited: 1011, Scans: 14000, SimStart: 0.0007, SimDur: 0.0009},
		{Kind: KindRetry, TraversalID: 2, Root: 5, Engine: "CPUTD+GPUCB", Step: 3, Dir: DirNone,
			Device: "KeplerK20x", Detail: "retry: transfer succeeded after 1 retries", SimStart: 0.0016},
		{Kind: KindHandoff, TraversalID: 2, Root: 5, Engine: "CPUTD+GPUCB", Step: 3, Dir: DirNone,
			From: "SandyBridge-8c", Device: "KeplerK20x", Bytes: 2048, SimStart: 0.0016, SimDur: 0.0004},
		{Kind: KindSimStep, TraversalID: 2, Root: 5, Engine: "CPUTD+GPUCB", Step: 3, Dir: BottomUp,
			Device: "KeplerK20x", FrontierVertices: 200, FrontierEdges: 9000, Discovered: 700,
			Unvisited: 811, Scans: 2100, SimStart: 0.002, SimDur: 0.0002},
		{Kind: KindSimStep, TraversalID: 2, Root: 5, Engine: "CPUTD+GPUCB", Step: 4, Dir: TopDown,
			Device: "KeplerK20x", FrontierVertices: 700, FrontierEdges: 4000, Discovered: 0,
			Unvisited: 111, Scans: 900, SimStart: 0.0022, SimDur: 0.0001},
		{Kind: KindPlanEnd, TraversalID: 2, Root: 5, Engine: "CPUTD+GPUCB", Dir: DirNone,
			SimStart: 0.0023, SimDur: 0.0023},

		// One sharded traversal (2 ranks, TD then BU): the collective
		// decision instants on the traversal lane, paired exchange
		// events and ghost updates on the per-rank lanes.
		{Kind: KindTraversalStart, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Dir: DirNone,
			FrontierVertices: 1024, FrontierEdges: 16384, Wall: at(200)},
		{Kind: KindCollective, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 1, Dir: TopDown,
			FrontierVertices: 1, FrontierEdges: 9, Unvisited: 1023, Workers: 2, Wall: at(205)},
		{Kind: KindExchangeStart, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 1, Dir: TopDown,
			Index: 0, Workers: 2, Wall: at(210)},
		{Kind: KindExchangeStart, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 1, Dir: TopDown,
			Index: 1, Workers: 2, Wall: at(211)},
		{Kind: KindExchangeEnd, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 1, Dir: TopDown,
			Index: 0, Bytes: 0, Wall: at(214), WallDur: 4 * time.Microsecond},
		{Kind: KindExchangeEnd, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 1, Dir: TopDown,
			Index: 1, Bytes: 96, Wall: at(215), WallDur: 4 * time.Microsecond},
		{Kind: KindGhostUpdate, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 1, Dir: DirNone,
			Index: 0, Scans: 3, Discovered: 2, Bytes: 24, Wall: at(216)},
		{Kind: KindGhostUpdate, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 1, Dir: DirNone,
			Index: 1, Scans: 1, Discovered: 1, Bytes: 8, Wall: at(217)},
		{Kind: KindLevel, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 1, Dir: TopDown,
			FrontierVertices: 1, FrontierEdges: 9, Discovered: 9, Unvisited: 1023,
			Grains: 2, Workers: 2, Wall: at(205), WallDur: 15 * time.Microsecond},
		{Kind: KindSwitch, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 2, Dir: BottomUp, Wall: at(225)},
		{Kind: KindCollective, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 2, Dir: BottomUp,
			FrontierVertices: 9, FrontierEdges: 820, Unvisited: 1014, Workers: 2, Wall: at(225)},
		{Kind: KindExchangeStart, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 2, Dir: BottomUp,
			Index: 0, Workers: 2, Wall: at(227)},
		{Kind: KindExchangeStart, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 2, Dir: BottomUp,
			Index: 1, Workers: 2, Wall: at(228)},
		{Kind: KindExchangeEnd, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 2, Dir: BottomUp,
			Index: 0, Bytes: 40, Wall: at(230), WallDur: 3 * time.Microsecond},
		{Kind: KindExchangeEnd, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 2, Dir: BottomUp,
			Index: 1, Bytes: 36, Wall: at(231), WallDur: 3 * time.Microsecond},
		{Kind: KindLevel, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Step: 2, Dir: BottomUp,
			FrontierVertices: 9, FrontierEdges: 820, Discovered: 1014, Unvisited: 1014,
			Scans: 3000, Grains: 2, Workers: 2, Wall: at(225), WallDur: 20 * time.Microsecond},
		{Kind: KindTraversalEnd, TraversalID: 3, Root: 9, Engine: "sharded(2,hybrid(14,24))", Dir: DirNone,
			Discovered: 1024, Scans: 16384, Wall: at(250), WallDur: 50 * time.Microsecond},
	}
}

// TestTraceWriterGolden pins the exact bytes of the Chrome trace JSON:
// field order, lane assignment, metadata placement, timestamp
// arithmetic. If an intentional schema change lands, regenerate with
// `go test ./internal/obs -run Golden -update` and review the diff —
// OBSERVABILITY.md documents this file as the schema reference.
func TestTraceWriterGolden(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, e := range goldenEvents() {
		tw.Event(e)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace JSON drifted from golden file %s\ngot:\n%s", golden, got)
	}
}

func TestTraceWriterOutputValidates(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, e := range goldenEvents() {
		tw.Event(e)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateTrace rejected TraceWriter output: %v", err)
	}
	if s.Levels != 6 || s.SimSteps != 4 || s.Handoffs != 1 || s.Switches != 3 || s.Faults != 1 {
		t.Errorf("summary = %+v, want 6 levels, 4 sim steps, 1 handoff, 3 switches, 1 fault", s)
	}
	if s.Exchanges != 4 || s.Collectives != 2 || s.GhostUpdates != 2 {
		t.Errorf("summary = %+v, want 4 exchanges, 2 collectives, 2 ghost updates", s)
	}
	if s.Processes[1] != "host" || s.Processes[2] != "interconnect" {
		t.Errorf("reserved lanes missing: %v", s.Processes)
	}

	// The per-level record must reconstruct each traversal's exact
	// switch schedule — the acceptance criterion bfsrun -trace and
	// make trace-smoke rely on. The hybrid traversal ran TD,TD,BU,TD
	// and the sharded one TD,BU; each is its own lane.
	wantByLen := map[int][]string{
		4: {"TD", "TD", "BU", "TD"},
		2: {"TD", "BU"},
	}
	if len(s.LevelDirs) != 2 {
		t.Fatalf("%d traversal lanes, want 2", len(s.LevelDirs))
	}
	for _, tid := range TimelineIDs(s.LevelDirs) {
		dirs := s.LevelDirs[tid]
		wantDirs, ok := wantByLen[len(dirs)]
		if !ok {
			t.Fatalf("tid %d has %d levels, want 4 or 2", tid, len(dirs))
		}
		for i := range dirs {
			if dirs[i] != wantDirs[i] {
				t.Errorf("tid %d level %d direction %s, want %s", tid, i+1, dirs[i], wantDirs[i])
			}
		}
	}
	wantDirs := wantByLen[4]
	if got := SwitchSteps(wantDirs); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("SwitchSteps = %v, want [3 4]", got)
	}
	for _, tid := range TimelineIDs(s.SimDirs) {
		if got := SwitchSteps(s.SimDirs[tid]); len(got) != 2 || got[0] != 3 || got[1] != 4 {
			t.Errorf("sim timeline %d switch steps = %v, want [3 4]", tid, got)
		}
	}
}

func TestTraceWriterCloseIdempotentAndDropsLate(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Event(Event{Kind: KindLevel, TraversalID: 9, Step: 1, Dir: TopDown, FrontierVertices: 1})
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n := buf.Len()
	tw.Event(Event{Kind: KindLevel, TraversalID: 9, Step: 2, Dir: TopDown})
	if err := tw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if buf.Len() != n {
		t.Error("events after Close leaked into the output")
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Errorf("closed trace invalid: %v", err)
	}
}

func TestTraceWriterEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTraceWriter(&buf).Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if s.Events != 0 {
		t.Errorf("empty trace has %d events", s.Events)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":         `{]`,
		"no traceEvents":   `{"foo": []}`,
		"missing name":     `{"traceEvents":[{"ph":"i","ts":0,"pid":1,"tid":1}]}`,
		"unknown phase":    `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":1}]}`,
		"missing ts":       `{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":1}]}`,
		"missing pid":      `{"traceEvents":[{"name":"x","ph":"i","ts":0,"tid":1}]}`,
		"X without dur":    `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`,
		"level bad dir":    `{"traceEvents":[{"name":"x","cat":"level","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"step":1,"dir":"sideways"}}]}`,
		"level no step":    `{"traceEvents":[{"name":"x","cat":"level","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"dir":"TD"}}]}`,
		"handoff no bytes":   `{"traceEvents":[{"name":"x","cat":"handoff","ph":"X","ts":0,"dur":1,"pid":2,"tid":1,"args":{}}]}`,
		"exchange no bytes":  `{"traceEvents":[{"name":"x","cat":"exchange","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"rank":0}}]}`,
		"exchange no rank":   `{"traceEvents":[{"name":"x","cat":"exchange","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"bytes":8}}]}`,
		"collective no step": `{"traceEvents":[{"name":"x","cat":"collective","ph":"i","ts":0,"pid":1,"tid":1,"args":{"dir":"TD"}}]}`,
		"collective bad dir": `{"traceEvents":[{"name":"x","cat":"collective","ph":"i","ts":0,"pid":1,"tid":1,"args":{"step":1,"dir":"sideways"}}]}`,
		"ghost no rank":      `{"traceEvents":[{"name":"x","cat":"ghost","ph":"i","ts":0,"pid":1,"tid":1,"args":{"step":1}}]}`,
		"step gap": `{"traceEvents":[
			{"name":"a","cat":"level","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"step":1,"dir":"TD"}},
			{"name":"b","cat":"level","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"args":{"step":3,"dir":"TD"}}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("ValidateTrace accepted %s", name)
		}
	}
}
