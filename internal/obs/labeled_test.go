package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryRecorderAggregates(t *testing.T) {
	reg := NewRegistry()
	rr := NewRegistryRecorder(reg, "hybrid(64,64)").WithRanks(2)

	rr.Event(Event{Kind: KindTraversalStart, Engine: "hybrid(64,64)"})
	rr.Event(Event{Kind: KindLevel, Dir: TopDown, FrontierVertices: 10, Discovered: 9, WallDur: 500 * time.Microsecond})
	rr.Event(Event{Kind: KindLevel, Dir: BottomUp, FrontierVertices: 100, Discovered: 80, WallDur: 2 * time.Millisecond})
	rr.Event(Event{Kind: KindExchangeEnd, Index: 1, Bytes: 4096})
	rr.Event(Event{Kind: KindExchangeEnd, Index: 7, Bytes: 1 << 20}) // rank out of range: dropped
	rr.Event(Event{Kind: KindFault, Detail: "ignored kind"})

	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	page := sb.String()
	for _, want := range []string{
		`crossbfs_engine_traversals_total{engine="hybrid(64,64)"} 1`,
		`crossbfs_engine_levels_total{engine="hybrid(64,64)",dir="td"} 1`,
		`crossbfs_engine_levels_total{engine="hybrid(64,64)",dir="bu"} 1`,
		`crossbfs_engine_discovered_total{engine="hybrid(64,64)",dir="bu"} 80`,
		`crossbfs_engine_exchange_bytes_total{engine="hybrid(64,64)",rank="1"} 4096`,
		`crossbfs_engine_exchange_bytes_total{engine="hybrid(64,64)",rank="0"} 0`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition misses %q:\n%s", want, page)
		}
	}
	if _, err := ValidateExposition(strings.NewReader(page)); err != nil {
		t.Errorf("labeled exposition fails validation: %v", err)
	}
}

// TestRegistryRecorderSharesCells pins the interning contract: two
// recorders for the same engine share cells, so a multi-graph server
// with a repeated engine aggregates rather than clobbering.
func TestRegistryRecorderSharesCells(t *testing.T) {
	reg := NewRegistry()
	a := NewRegistryRecorder(reg, "serial")
	b := NewRegistryRecorder(reg, "serial")
	a.Event(Event{Kind: KindTraversalStart})
	b.Event(Event{Kind: KindTraversalStart})
	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	if !strings.Contains(sb.String(), `crossbfs_engine_traversals_total{engine="serial"} 2`) {
		t.Errorf("recorders did not share the cell:\n%s", sb.String())
	}
}

// TestRegistryRecorderAllocs is the labeled half of the hot-path
// contract: with every label tuple pre-interned, Event performs only
// atomic operations — 0 allocs/op, same as Nop and Metrics.
func TestRegistryRecorderAllocs(t *testing.T) {
	reg := NewRegistry()
	rr := NewRegistryRecorder(reg, "hybrid(64,64)").WithRanks(4)
	level := Event{Kind: KindLevel, Dir: BottomUp, FrontierVertices: 1 << 14, Discovered: 1 << 12, WallDur: time.Millisecond}
	exch := Event{Kind: KindExchangeEnd, Index: 2, Bytes: 8192}
	allocs := testing.AllocsPerRun(1000, func() {
		rr.Event(Event{Kind: KindTraversalStart})
		rr.Event(level)
		rr.Event(exch)
	})
	if allocs != 0 {
		t.Fatalf("RegistryRecorder.Event allocates %v per run, want 0", allocs)
	}
}
