package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Parser and validator for Prometheus text exposition format v0.0.4 —
// the promtool-style checker `make metrics-smoke` (cmd/expcheck) runs
// against a live bfsd /metrics page, and the reader bfsload uses to
// reconstruct server-side latency quantiles from the labeled
// histograms. Self-contained on purpose: the container has no
// prometheus dependency, and our own encoder (Registry.WriteExposition
// plus the legacy untyped flat sections) is exactly the dialect it
// accepts.

// ExpoSample is one parsed sample line.
type ExpoSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ExpoFamily groups the samples of one metric family, with whatever
// HELP/TYPE metadata the page declared ("untyped" when none).
type ExpoFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ExpoSample
}

// ExpoStats summarizes a validated page.
type ExpoStats struct {
	Families   int
	Typed      int
	Samples    int
	Histograms int
}

// histogramSuffixes maps a sample name back to its histogram family.
var histogramSuffixes = []string{"_bucket", "_sum", "_count"}

// familyOf resolves which family a sample belongs to given the
// declared types seen so far.
func familyOf(name string, types map[string]string) string {
	for _, suf := range histogramSuffixes {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// ParseExposition reads a text exposition page into families, in page
// order. It performs full syntactic validation (the same checks
// ValidateExposition applies) and returns the first problem with its
// line number.
func ParseExposition(r io.Reader) ([]ExpoFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	help := make(map[string]string)
	types := make(map[string]string)
	order := []string{}
	samples := make(map[string][]ExpoSample)
	// closed marks families already interrupted by another family's
	// samples: exposition requires all lines of a family contiguous.
	lastFamily := ""
	closed := make(map[string]bool)
	seenSeries := make(map[string]bool)

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kw, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if kw == "" { // plain comment
				continue
			}
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q in # %s", lineNo, name, kw)
			}
			switch kw {
			case "HELP":
				if _, dup := help[name]; dup {
					return nil, fmt.Errorf("line %d: second HELP for %q", lineNo, name)
				}
				help[name] = rest
			case "TYPE":
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("line %d: second TYPE for %q", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q for %q", lineNo, rest, name)
				}
				if len(samples[name]) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				types[name] = rest
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyOf(s.Name, types)
		if typ, ok := types[fam]; ok {
			if err := checkSampleName(s.Name, fam, typ); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		if fam != lastFamily {
			if closed[fam] {
				return nil, fmt.Errorf("line %d: family %q reappears after other families (samples must be contiguous)", lineNo, fam)
			}
			if lastFamily != "" {
				closed[lastFamily] = true
			}
			lastFamily = fam
		}
		key := seriesKey(s)
		if seenSeries[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seenSeries[key] = true
		if len(samples[fam]) == 0 {
			order = append(order, fam)
		}
		samples[fam] = append(samples[fam], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make([]ExpoFamily, 0, len(order))
	for _, fam := range order {
		f := ExpoFamily{
			Name:    fam,
			Help:    help[fam],
			Type:    types[fam],
			Samples: samples[fam],
		}
		if f.Type == "" {
			f.Type = "untyped"
		}
		if f.Type == "histogram" {
			if err := checkHistogramFamily(f); err != nil {
				return nil, err
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// ValidateExposition checks a page end to end and reports summary
// stats — the promtool-equivalent entry point.
func ValidateExposition(r io.Reader) (ExpoStats, error) {
	fams, err := ParseExposition(r)
	if err != nil {
		return ExpoStats{}, err
	}
	st := ExpoStats{Families: len(fams)}
	for _, f := range fams {
		if f.Type != "untyped" {
			st.Typed++
		}
		if f.Type == "histogram" {
			st.Histograms++
		}
		st.Samples += len(f.Samples)
	}
	return st, nil
}

// parseComment splits a # line: returns ("", ...) for plain comments,
// or the keyword (HELP/TYPE), metric name, and remainder.
func parseComment(line string) (kw, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	word, tail, _ := strings.Cut(body, " ")
	if word != "HELP" && word != "TYPE" {
		return "", "", "", nil
	}
	name, rest, ok := strings.Cut(tail, " ")
	if name == "" {
		return "", "", "", fmt.Errorf("# %s without a metric name", word)
	}
	if word == "TYPE" && !ok {
		return "", "", "", fmt.Errorf("# TYPE %s without a type", name)
	}
	if word == "HELP" {
		rest = unescapeHelp(rest)
	}
	return word, name, rest, nil
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// parseSampleLine parses `name{label="value",...} value [timestamp]`.
func parseSampleLine(line string) (ExpoSample, error) {
	s := ExpoSample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " \t")
	valStr, tsStr, _ := strings.Cut(rest, " ")
	if valStr == "" {
		return s, fmt.Errorf("sample %q has no value", s.Name)
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", s.Name, valStr)
	}
	s.Value = v
	if tsStr = strings.TrimSpace(tsStr); tsStr != "" {
		if _, err := strconv.ParseInt(tsStr, 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp %q", s.Name, tsStr)
		}
	}
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels consumes a {..} label block and returns the remainder.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(s[start:i])
		if !labelNameRe.MatchString(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return nil, "", fmt.Errorf("label %q: bad escape \\%c", name, s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return nil, "", fmt.Errorf("label %q value unterminated", name)
		}
		i++ // past closing quote
		labels[name] = val.String()
	}
}

// seriesKey identifies one series: name plus sorted label pairs.
func seriesKey(s ExpoSample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(s.Name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, s.Labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// checkSampleName enforces which sample names a declared family may
// emit: histograms expand to _bucket/_sum/_count, everything else uses
// the bare family name.
func checkSampleName(sample, fam, typ string) error {
	if typ == "histogram" {
		switch sample {
		case fam + "_bucket", fam + "_sum", fam + "_count":
			return nil
		}
		return fmt.Errorf("histogram %q has stray sample %q", fam, sample)
	}
	if sample != fam {
		return fmt.Errorf("%s %q has stray sample %q", typ, fam, sample)
	}
	return nil
}

// checkHistogramFamily verifies per label-set (le excluded): le values
// parse, buckets are cumulative and non-decreasing in le order, a +Inf
// bucket exists, _count matches it, and _sum is present.
func checkHistogramFamily(f ExpoFamily) error {
	type series struct {
		buckets  []HistBucket
		count    float64
		hasCount bool
		hasSum   bool
	}
	groups := make(map[string]*series)
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k == "le" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%q,", k, labels[k])
		}
		return sb.String()
	}
	for _, s := range f.Samples {
		key := keyOf(s.Labels)
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
		}
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %q: _bucket without le label", f.Name)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %q: bad le %q", f.Name, leStr)
			}
			g.buckets = append(g.buckets, HistBucket{LE: le, Count: s.Value})
		case f.Name + "_count":
			g.count, g.hasCount = s.Value, true
		case f.Name + "_sum":
			g.hasSum = true
		}
	}
	for key, g := range groups {
		if len(g.buckets) == 0 {
			return fmt.Errorf("histogram %q{%s}: no buckets", f.Name, key)
		}
		sort.Slice(g.buckets, func(i, j int) bool { return g.buckets[i].LE < g.buckets[j].LE })
		last := g.buckets[len(g.buckets)-1]
		if !math.IsInf(last.LE, 1) {
			return fmt.Errorf("histogram %q{%s}: no +Inf bucket", f.Name, key)
		}
		for i := 1; i < len(g.buckets); i++ {
			if g.buckets[i].Count < g.buckets[i-1].Count {
				return fmt.Errorf("histogram %q{%s}: bucket counts decrease at le=%v", f.Name, key, g.buckets[i].LE)
			}
		}
		if !g.hasCount {
			return fmt.Errorf("histogram %q{%s}: missing _count", f.Name, key)
		}
		if g.count != last.Count {
			return fmt.Errorf("histogram %q{%s}: _count %v != +Inf bucket %v", f.Name, key, g.count, last.Count)
		}
		if !g.hasSum {
			return fmt.Errorf("histogram %q{%s}: missing _sum", f.Name, key)
		}
	}
	return nil
}

// HistBucket is one cumulative histogram bucket: the upper bound
// and the count of observations at or below it.
type HistBucket struct {
	LE    float64
	Count float64
}

// HistogramQuantile reconstructs the q-quantile from cumulative
// buckets (nearest-rank over bucket upper bounds): the smallest le
// whose cumulative count covers q of the observations. Buckets need
// not be sorted. With only the +Inf bucket populated it returns +Inf;
// with no observations it returns NaN. Resolution is the bucket width,
// which for power-of-two bounds means client- and server-side
// quantiles agree to within one bucket.
func HistogramQuantile(q float64, buckets []HistBucket) float64 {
	bs := append([]HistBucket(nil), buckets...)
	sort.Slice(bs, func(i, j int) bool { return bs[i].LE < bs[j].LE })
	if len(bs) == 0 {
		return math.NaN()
	}
	total := bs[len(bs)-1].Count
	if total == 0 {
		return math.NaN()
	}
	rank := q * total
	for _, b := range bs {
		if b.Count >= rank && b.Count > 0 {
			return b.LE
		}
	}
	return bs[len(bs)-1].LE
}

// HistogramBuckets extracts the cumulative buckets of one histogram
// series group from a parsed family, summing across samples that share
// the selecting labels (pass nil to merge every series). The le label
// is consumed; all other labels must match want exactly on the keys
// want names.
func HistogramBuckets(f ExpoFamily, want map[string]string) []HistBucket {
	byLE := make(map[float64]float64)
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" {
			continue
		}
		leStr, ok := s.Labels["le"]
		if !ok {
			continue
		}
		le, err := parseValue(leStr)
		if err != nil {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		byLE[le] += s.Value
	}
	out := make([]HistBucket, 0, len(byLE))
	for le, c := range byLE {
		out = append(out, HistBucket{LE: le, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LE < out[j].LE })
	return out
}
