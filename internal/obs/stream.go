package obs

import (
	"bytes"
	"io"
	"sync"
)

// DefaultStreamBuffer is the pending-byte cap for NewStreamWriter.
const DefaultStreamBuffer = 256 << 10

// StreamWriter is a Recorder that encodes the same Chrome trace-event
// byte stream as TraceWriter, but incrementally: events are framed
// into a small fixed-capacity pending buffer and a background flusher
// copies it to the underlying writer. Memory stays bounded regardless
// of run length — the sink a long-running service can leave attached —
// and a drop-free stream is byte-for-byte identical to TraceWriter's
// output for the same event sequence.
//
// Backpressure policy: Event never blocks and never grows the buffer
// past its cap. If the writer cannot keep up and an encoded event
// would push the pending bytes over the cap, that event is dropped
// whole and counted (Stats). Dropped KindLevel slices make the lane's
// step sequence non-contiguous, so a trace with Stats().Dropped > 0
// may fail ValidateTrace's continuity check — by design: the stream
// is lossy under backpressure, and the drop count says so. Lane
// registrations (pids, tids, thread names) performed while encoding a
// dropped event persist, so at worst a lane loses its display name,
// never its identity.
//
// Close drains the pending buffer, appends a "stream_dropped_events"
// metadata record when anything was dropped, writes the document
// epilogue, and returns the first write error. Flush blocks until
// everything buffered so far has reached the writer.
type StreamWriter struct {
	mu   sync.Mutex
	cond *sync.Cond
	w    io.Writer

	lanes *laneState
	frame framer

	// pending accumulates framed bytes under mu; flip is the buffer
	// the flusher is writing from. They are pointer-swapped so the
	// kernel-side Event call never waits on the writer.
	pending *bytes.Buffer
	flip    *bytes.Buffer
	// scratch holds one event's framed encoding (possibly several
	// traceEvents: registration metadata plus the event itself) so the
	// cap check can accept or drop it atomically.
	scratch bytes.Buffer

	cap        int
	dropped    uint64
	maxPending int
	flushing   bool
	closing    bool
	closed     bool
	err        error
	done       chan struct{}
}

// StreamStats is a point-in-time view of a StreamWriter's buffering
// behaviour.
type StreamStats struct {
	// Dropped counts events discarded whole because the pending buffer
	// was full.
	Dropped uint64
	// MaxBuffered is the high-water mark of pending bytes.
	MaxBuffered int
	// BufferCap is the configured pending-byte cap.
	BufferCap int
}

// NewStreamWriter returns a StreamWriter with the default buffer cap.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return NewStreamWriterSize(w, DefaultStreamBuffer)
}

// NewStreamWriterSize returns a StreamWriter whose pending buffer is
// capped at bufCap bytes (minimum 4 KiB). Total memory is bounded by
// roughly twice the cap (pending plus in-flight flip buffer) plus one
// event's encoding.
func NewStreamWriterSize(w io.Writer, bufCap int) *StreamWriter {
	if bufCap < 4<<10 {
		bufCap = 4 << 10
	}
	s := &StreamWriter{
		w:       w,
		pending: new(bytes.Buffer),
		flip:    new(bytes.Buffer),
		cap:     bufCap,
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.lanes = newLaneState(func(ev traceEvent) {
		s.frame.appendEvent(&s.scratch, ev)
	})
	go s.flushLoop()
	return s
}

// Event implements Recorder. It never blocks on the underlying writer:
// the encoded event is either queued within the buffer cap or dropped
// whole and counted.
func (s *StreamWriter) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing || s.closed {
		return
	}
	// Encode into scratch first so acceptance is all-or-nothing even
	// when one Event expands to several traceEvents. The framer's only
	// state is whether the preamble was written, so it can be rolled
	// back if the bytes are discarded.
	frameBefore := s.frame
	s.scratch.Reset()
	s.lanes.event(e)
	if s.scratch.Len() == 0 {
		return // registration-only kinds (KindPlanStart) emit nothing
	}
	if s.pending.Len()+s.scratch.Len() > s.cap {
		s.frame = frameBefore
		s.dropped++
		return
	}
	s.pending.Write(s.scratch.Bytes())
	if s.pending.Len() > s.maxPending {
		s.maxPending = s.pending.Len()
	}
	s.cond.Broadcast()
}

// flushLoop moves pending bytes to the writer outside the lock.
func (s *StreamWriter) flushLoop() {
	s.mu.Lock()
	for {
		for !s.closing && s.pending.Len() == 0 {
			s.cond.Wait()
		}
		if s.pending.Len() == 0 {
			break // closing and fully drained
		}
		s.pending, s.flip = s.flip, s.pending
		s.flushing = true
		out := s.flip
		s.mu.Unlock()
		_, werr := s.w.Write(out.Bytes())
		s.mu.Lock()
		out.Reset()
		s.flushing = false
		if werr != nil && s.err == nil {
			s.err = werr
		}
		s.cond.Broadcast() // wake Flush waiters
	}
	s.mu.Unlock()
	close(s.done)
}

// Flush blocks until every event accepted so far has been handed to
// the underlying writer, and returns the first write error seen.
func (s *StreamWriter) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed && (s.pending.Len() > 0 || s.flushing) {
		s.cond.Wait()
	}
	return s.err
}

// Close drains the buffer, writes the drop-count metadata (only when
// events were dropped, so a drop-free stream stays byte-identical to
// TraceWriter) and the document epilogue, and shuts the flusher down.
// Events arriving after Close are dropped silently. Close is
// idempotent; only the first call writes.
func (s *StreamWriter) Close() error {
	s.mu.Lock()
	if s.closing || s.closed {
		err := s.err
		s.mu.Unlock()
		<-s.done
		return err
	}
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done // flusher has drained pending and exited

	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var tail bytes.Buffer
	if s.dropped > 0 {
		s.frame.appendEvent(&tail, traceEvent{
			Name: "stream_dropped_events", Ph: "M", Pid: hostPid, Tid: 0,
			Args: map[string]any{"dropped": s.dropped},
		})
	}
	s.frame.finish(&tail)
	if _, werr := s.w.Write(tail.Bytes()); werr != nil && s.err == nil {
		s.err = werr
	}
	return s.err
}

// Stats reports drop and buffering counters. Safe to call at any time,
// including after Close.
func (s *StreamWriter) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StreamStats{Dropped: s.dropped, MaxBuffered: s.maxPending, BufferCap: s.cap}
}
