package obs

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("crossbfs_engine_traversals_total", "Traversals started.", LabelEngine)
	c.With("hybrid(64,64)").Add(3)
	c.With("serial").Inc()
	g := r.Gauge("crossbfs_flight_open", "Open traversal groups.")
	g.With().Set(2)

	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	page := sb.String()
	for _, want := range []string{
		"# HELP crossbfs_engine_traversals_total Traversals started.\n",
		"# TYPE crossbfs_engine_traversals_total counter\n",
		`crossbfs_engine_traversals_total{engine="hybrid(64,64)"} 3` + "\n",
		`crossbfs_engine_traversals_total{engine="serial"} 1` + "\n",
		"# TYPE crossbfs_flight_open gauge\n",
		"crossbfs_flight_open 2\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition misses %q:\n%s", want, page)
		}
	}
	if _, err := ValidateExposition(strings.NewReader(page)); err != nil {
		t.Errorf("own exposition fails validation: %v", err)
	}
}

func TestRegistryInterningReturnsSameCell(t *testing.T) {
	r := NewRegistry()
	f := r.Counter("crossbfs_engine_levels_total", "Levels.", LabelEngine, LabelDir)
	a := f.With("hybrid(64,64)", "td")
	b := f.With("hybrid(64,64)", "td")
	if a != b {
		t.Fatal("With returned distinct cells for the same tuple")
	}
	if c := f.With("hybrid(64,64)", "bu"); c == a {
		t.Fatal("distinct tuples share a cell")
	}
	// Re-registration with the identical shape is idempotent.
	if f2 := r.Counter("crossbfs_engine_levels_total", "Levels.", LabelEngine, LabelDir); f2 != f {
		t.Fatal("re-registration returned a new family")
	}
}

func TestRegistryRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"empty help", func(r *Registry) { r.Counter("crossbfs_x_total", "") }},
		{"bad name", func(r *Registry) { r.Counter("crossbfs x", "Help.") }},
		{"label outside vocabulary", func(r *Registry) { r.Counter("crossbfs_x_total", "Help.", "user_id") }},
		{"conflicting re-registration", func(r *Registry) {
			r.Counter("crossbfs_x_total", "Help.")
			r.Gauge("crossbfs_x_total", "Help.")
		}},
		{"arity mismatch", func(r *Registry) {
			r.Counter("crossbfs_x_total", "Help.", LabelEngine).With("a", "b")
		}},
		{"unsorted buckets", func(r *Registry) {
			r.Histogram("crossbfs_h", "Help.", []float64{2, 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("crossbfs_query_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, LabelClass)
	c := h.With("oltp")
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 5} {
		c.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	page := sb.String()
	for _, want := range []string{
		`crossbfs_query_latency_seconds_bucket{class="oltp",le="0.001"} 1`,
		`crossbfs_query_latency_seconds_bucket{class="oltp",le="0.01"} 3`,
		`crossbfs_query_latency_seconds_bucket{class="oltp",le="0.1"} 4`,
		`crossbfs_query_latency_seconds_bucket{class="oltp",le="+Inf"} 5`,
		`crossbfs_query_latency_seconds_count{class="oltp"} 5`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition misses %q:\n%s", want, page)
		}
	}
	if got := c.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := c.Sum(); math.Abs(got-5.0545) > 1e-9 {
		t.Errorf("Sum = %v, want 5.0545", got)
	}
	if _, err := ValidateExposition(strings.NewReader(page)); err != nil {
		t.Errorf("histogram exposition fails validation: %v", err)
	}
}

// TestHistogramBucketBoundaries pins the le-bucket encoder's edges:
// values exactly at a power-of-two bound land in that bound's bucket
// (le is inclusive), zero lands in the first bucket, and max-int lands
// in +Inf when it exceeds the top bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("crossbfs_engine_frontier_vertices", "Frontier sizes.", SizeBuckets(), LabelEngine)
	c := h.With("serial")

	c.Observe(0)                    // below every bound -> first bucket (le=1)
	c.Observe(1)                    // exactly 2^0 -> le=1 (inclusive)
	c.Observe(2)                    // exactly 2^1 -> le=2
	c.Observe(1 << 20)              // exactly 2^20 -> le=2^20
	c.Observe(float64(1<<31) + 0.5) // above top bound -> +Inf
	c.Observe(math.MaxInt64)        // max-int -> +Inf

	counts := c.BucketCounts()
	bounds := h.Bounds()
	if counts[0] != 2 { // 0 and 1
		t.Errorf("bucket le=1 count = %d, want 2", counts[0])
	}
	if counts[1] != 1 { // exactly 2
		t.Errorf("bucket le=2 count = %d, want 1", counts[1])
	}
	i20 := -1
	for i, b := range bounds {
		if b == float64(int64(1)<<20) {
			i20 = i
		}
	}
	if i20 < 0 || counts[i20] != 1 {
		t.Errorf("bucket le=2^20 count wrong (idx %d, counts %v)", i20, counts)
	}
	if inf := counts[len(counts)-1]; inf != 2 {
		t.Errorf("+Inf bucket count = %d, want 2", inf)
	}
	if c.Count() != 6 {
		t.Errorf("Count = %d, want 6", c.Count())
	}
}

// TestMetricsPow2HistBoundaries pins the legacy power-of-two histogram
// (obs.Metrics / histBucket) at the same edges: zero, exact powers of
// two, and max-int clamped to the top bucket.
func TestMetricsPow2HistBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1, 1},         // bit length 1
		{2, 2},         // exactly 2^1
		{1 << 20, 21},  // exactly 2^20 -> bucket 21 (bit length)
		{(1 << 20) - 1, 20},
		{math.MaxInt64, 47}, // clamped to the top bucket
	}
	for _, tc := range cases {
		if got := histBucket(tc.v); got != tc.want {
			t.Errorf("histBucket(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestCountAtMost(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("crossbfs_query_latency_seconds", "Latency.", []float64{0.001, 0.002, 0.004}, LabelClass)
	c := h.With("oltp")
	for _, v := range []float64{0.0005, 0.0015, 0.003, 0.01} {
		c.Observe(v)
	}
	// Threshold 0.002 covers buckets le=0.001 and le=0.002 whole.
	total, atMost := c.CountAtMost(0.002)
	if total != 4 || atMost != 2 {
		t.Errorf("CountAtMost(0.002) = (%d,%d), want (4,2)", total, atMost)
	}
	// A threshold between bounds is conservative: only whole buckets
	// below it count.
	if _, atMost := c.CountAtMost(0.003); atMost != 2 {
		t.Errorf("CountAtMost(0.003) atMost = %d, want 2", atMost)
	}
	// The +Inf bucket never counts toward atMost: an observation there
	// has no upper bound to compare against the threshold.
	if _, atMost := c.CountAtMost(1); atMost != 3 {
		t.Errorf("CountAtMost(1) atMost = %d, want 3", atMost)
	}
}

func TestRegisterRingGauges(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(4, 64)
	RegisterRingGauges(r, ring)
	rec := WithTraversalID(NextTraversalID(), ring)
	rec.Event(Event{Kind: KindTraversalStart})
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	page := sb.String()
	if !strings.Contains(page, "crossbfs_flight_open 1\n") {
		t.Errorf("open gauge not reflecting the ring:\n%s", page)
	}
	for _, want := range []string{"crossbfs_flight_retained", "crossbfs_flight_evicted", "crossbfs_flight_truncated", "crossbfs_flight_ignored"} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition misses %s", want)
		}
	}
}
