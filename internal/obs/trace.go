package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file holds the Chrome trace-event encoder shared by the two
// trace-producing recorders: TraceWriter (buffer whole run in memory,
// write on Close — exact, lossless) and StreamWriter (stream.go:
// bounded memory, incremental writes, drops under backpressure). Both
// compose the same two pieces so their output is byte-compatible:
//
//   - laneState: the Event -> traceEvent translation plus all lane
//     bookkeeping (pid/tid registration, plan names, thread_name
//     metadata, the wall epoch). Encoded events leave through a sink
//     callback, so the owner decides where bytes accumulate.
//   - framer: the JSON document framing (preamble with the well-known
//     host/interconnect metadata, ",\n" separators, epilogue).

// Reserved lane pids.
const (
	hostPid = 1
	linkPid = 2
)

// traceEvent is one element of the trace file's traceEvents array.
// Field order is fixed (and args maps marshal with sorted keys), so a
// given event sequence always serializes identically — the property
// the golden-file test pins.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// laneState owns the Event -> traceEvent translation and every piece
// of registration state behind it. It is not safe for concurrent use;
// owners serialize access (TraceWriter and StreamWriter both hold a
// mutex across event).
type laneState struct {
	// Wall epoch: latched from the first wall-clocked event so the
	// timeline starts at ts 0 regardless of when the process began.
	epoch     time.Time
	haveEpoch bool

	pids     map[string]int  // lane name -> pid
	tids     map[uint64]int  // TraversalID -> tid
	rankTids map[rankKey]int // (TraversalID, rank) -> tid (sharded lanes)
	nextPid  int
	nextTid  int
	planName map[uint64]string // TraversalID -> plan name (simulated)
	named    map[[2]int]bool   // (pid,tid) pairs with thread_name emitted

	// emit receives each encoded traceEvent in order. Registration
	// metadata (process_name, thread_name) is emitted through the same
	// sink, interleaved exactly where TraceWriter historically placed
	// it — that ordering is part of the golden-file contract.
	emit func(traceEvent)
}

func newLaneState(emit func(traceEvent)) *laneState {
	return &laneState{
		pids:     map[string]int{"host": hostPid, "interconnect": linkPid},
		tids:     make(map[uint64]int),
		rankTids: make(map[rankKey]int),
		nextPid:  linkPid + 1,
		nextTid:  1,
		planName: make(map[uint64]string),
		named:    make(map[[2]int]bool),
		emit:     emit,
	}
}

// event translates one telemetry event into zero or more traceEvents
// delivered to the sink.
func (t *laneState) event(e Event) {
	switch e.Kind {
	case KindTraversalStart:
		tid := t.tid(e.TraversalID)
		label := e.Engine
		if label == "" {
			label = "bfs"
		}
		t.threadName(hostPid, tid, fmt.Sprintf("root %d (%s)", e.Root, label))
		t.emit(traceEvent{
			Name: "traversal start", Cat: "traversal", Ph: "i", Scope: "t",
			TS: t.wallTS(e.Wall), Pid: hostPid, Tid: tid,
			Args: map[string]any{
				"root": e.Root, "engine": label,
				"vertices": e.FrontierVertices, "edges": e.FrontierEdges,
				"reusedWorkspace": e.Reused,
			},
		})
	case KindLevel:
		dur := float64(e.WallDur) / float64(time.Microsecond)
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d %s", e.Step, e.Dir), Cat: "level", Ph: "X",
			TS: t.wallTS(e.Wall), Dur: &dur, Pid: hostPid, Tid: t.tid(e.TraversalID),
			Args: map[string]any{
				"step": e.Step, "dir": e.Dir.String(),
				"frontierVertices": e.FrontierVertices, "frontierEdges": e.FrontierEdges,
				"discovered": e.Discovered, "unvisited": e.Unvisited,
				"scans": e.Scans, "grains": e.Grains, "workers": e.Workers,
			},
		})
	case KindSwitch:
		t.emit(traceEvent{
			Name: "switch to " + e.Dir.String(), Cat: "switch", Ph: "i", Scope: "t",
			TS: t.wallTS(e.Wall), Pid: hostPid, Tid: t.tid(e.TraversalID),
			Args: map[string]any{"step": e.Step, "dir": e.Dir.String()},
		})
	case KindTraversalEnd:
		args := map[string]any{
			"reachable": e.Discovered, "traversedEdges": e.Scans,
			"wallSeconds": e.WallDur.Seconds(),
		}
		if e.Detail != "" {
			args["error"] = e.Detail
		}
		t.emit(traceEvent{
			Name: "traversal end", Cat: "traversal", Ph: "i", Scope: "t",
			TS: t.wallTS(e.Wall), Pid: hostPid, Tid: t.tid(e.TraversalID),
			Args: args,
		})
	case KindRootDispatch, KindRootDone:
		name := "dispatch"
		args := map[string]any{"index": e.Index, "root": e.Root}
		if e.Kind == KindRootDone {
			name = "done"
			args["wallSeconds"] = e.WallDur.Seconds()
			if e.Detail != "" {
				args["error"] = e.Detail
			}
		}
		tid := int(e.Workers) + 1 // dispatch lane per RunMany worker
		t.threadName(hostPid, -tid, fmt.Sprintf("dispatch worker %d", e.Workers))
		t.emit(traceEvent{
			Name: fmt.Sprintf("%s root %d", name, e.Root), Cat: "dispatch",
			Ph: "i", Scope: "t", TS: t.wallTS(e.Wall), Pid: hostPid, Tid: -tid,
			Args: args,
		})
	case KindPlanStart:
		t.planName[e.TraversalID] = e.Engine
		t.tid(e.TraversalID)
	case KindSimStep:
		dur := e.SimDur * 1e6
		pid, tid := t.pid(e.Device), t.tid(e.TraversalID)
		t.threadName(pid, tid, t.planLabel(e.TraversalID))
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d %s", e.Step, e.Dir), Cat: "sim", Ph: "X",
			TS: e.SimStart * 1e6, Dur: &dur, Pid: pid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "dir": e.Dir.String(),
				"device": e.Device, "plan": t.planLabel(e.TraversalID),
				"kernelSeconds": e.SimDur,
			},
		})
	case KindHandoff:
		dur := e.SimDur * 1e6
		tid := t.tid(e.TraversalID)
		t.threadName(linkPid, tid, t.planLabel(e.TraversalID))
		t.emit(traceEvent{
			Name: e.From + " to " + e.Device, Cat: "handoff", Ph: "X",
			TS: e.SimStart * 1e6, Dur: &dur, Pid: linkPid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "from": e.From, "to": e.Device,
				"bytes": e.Bytes, "plan": t.planLabel(e.TraversalID),
				"linkSeconds": e.SimDur,
			},
		})
	case KindPlanEnd:
		pid, tid := linkPid, t.tid(e.TraversalID)
		t.emit(traceEvent{
			Name: "plan end", Cat: "sim", Ph: "i", Scope: "t",
			TS: e.SimStart * 1e6, Pid: pid, Tid: tid,
			Args: map[string]any{
				"plan": t.planLabel(e.TraversalID), "totalSeconds": e.SimDur,
			},
		})
	case KindRetry, KindReplan, KindFault:
		pid, tid := t.pid(e.Device), t.tid(e.TraversalID)
		t.threadName(pid, tid, t.planLabel(e.TraversalID))
		t.emit(traceEvent{
			Name: e.Kind.String(), Cat: "fault", Ph: "i", Scope: "g",
			TS: e.SimStart * 1e6, Pid: pid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "device": e.Device, "detail": e.Detail,
				"plan": t.planLabel(e.TraversalID),
			},
		})
	case KindExchangeStart:
		tid := t.rankTid(e.TraversalID, e.Index, e.Root)
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d exchange start", e.Step), Cat: "exchange",
			Ph: "i", Scope: "t", TS: t.wallTS(e.Wall), Pid: hostPid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "dir": e.Dir.String(),
				"rank": e.Index, "ranks": e.Workers,
			},
		})
	case KindExchangeEnd:
		dur := float64(e.WallDur) / float64(time.Microsecond)
		tid := t.rankTid(e.TraversalID, e.Index, e.Root)
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d exchange", e.Step), Cat: "exchange", Ph: "X",
			TS: t.wallTS(e.Wall), Dur: &dur, Pid: hostPid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "dir": e.Dir.String(),
				"rank": e.Index, "bytes": e.Bytes,
			},
		})
	case KindCollective:
		// The collective is a traversal-wide decision, so it rides the
		// traversal's own lane, between the level slices it separates.
		t.emit(traceEvent{
			Name: fmt.Sprintf("collective L%d %s", e.Step, e.Dir), Cat: "collective",
			Ph: "i", Scope: "t", TS: t.wallTS(e.Wall), Pid: hostPid, Tid: t.tid(e.TraversalID),
			Args: map[string]any{
				"step": e.Step, "dir": e.Dir.String(),
				"frontierVertices": e.FrontierVertices, "frontierEdges": e.FrontierEdges,
				"unvisited": e.Unvisited, "ranks": e.Workers,
			},
		})
	case KindGhostUpdate:
		tid := t.rankTid(e.TraversalID, e.Index, e.Root)
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d ghosts", e.Step), Cat: "ghost",
			Ph: "i", Scope: "t", TS: t.wallTS(e.Wall), Pid: hostPid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "rank": e.Index,
				"received": e.Scans, "applied": e.Discovered, "bytes": e.Bytes,
			},
		})
	case KindRankLost:
		// Losing a rank reshapes the whole traversal, so like the
		// collective it rides the traversal's own lane.
		t.emit(traceEvent{
			Name: fmt.Sprintf("rank %d lost", e.Index), Cat: "recover",
			Ph: "i", Scope: "g", TS: t.wallTS(e.Wall), Pid: hostPid, Tid: t.tid(e.TraversalID),
			Args: map[string]any{
				"step": e.Step, "rank": e.Index,
				"survivors": e.Workers, "detail": e.Detail,
			},
		})
	case KindRecoverStart:
		tid := t.rankTid(e.TraversalID, e.Index, e.Root)
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d recover start", e.Step), Cat: "recover",
			Ph: "i", Scope: "t", TS: t.wallTS(e.Wall), Pid: hostPid, Tid: tid,
			Args: map[string]any{"step": e.Step, "rank": e.Index},
		})
	case KindRecoverEnd:
		dur := float64(e.WallDur) / float64(time.Microsecond)
		tid := t.rankTid(e.TraversalID, e.Index, e.Root)
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d recover", e.Step), Cat: "recover", Ph: "X",
			TS: t.wallTS(e.Wall), Dur: &dur, Pid: hostPid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "rank": e.Index, "restored": e.Scans,
			},
		})
	case KindCheckpoint:
		tid := t.rankTid(e.TraversalID, e.Index, e.Root)
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d checkpoint", e.Step), Cat: "checkpoint",
			Ph: "i", Scope: "t", TS: t.wallTS(e.Wall), Pid: hostPid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "rank": e.Index,
				"segments": e.Grains, "bytes": e.Bytes,
			},
		})
	}
}

// rankKey identifies one rank lane of one sharded traversal.
type rankKey struct {
	id   uint64
	rank int32
}

// rankTid returns the lane for one rank of a sharded traversal,
// registering its thread_name on first use. Rank lanes live on the
// host pid next to the traversal's own lane.
func (t *laneState) rankTid(id uint64, rank, root int32) int {
	key := rankKey{id, rank}
	if tid, ok := t.rankTids[key]; ok {
		return tid
	}
	tid := t.nextTid
	t.nextTid++
	t.rankTids[key] = tid
	t.threadName(hostPid, tid, fmt.Sprintf("rank %d (root %d)", rank, root))
	return tid
}

// planLabel names a simulated timeline for display.
func (t *laneState) planLabel(id uint64) string {
	if name := t.planName[id]; name != "" {
		return name
	}
	return "plan"
}

// wallTS converts a wall instant to trace microseconds, latching the
// epoch on first use. Zero instants (events from emitters that had no
// clock in hand) map to the epoch.
func (t *laneState) wallTS(w time.Time) float64 {
	if w.IsZero() {
		return 0
	}
	if !t.haveEpoch {
		t.epoch, t.haveEpoch = w, true
	}
	return float64(w.Sub(t.epoch)) / float64(time.Microsecond)
}

// pid returns the lane for a device name, registering it (plus its
// process_name metadata) on first use.
func (t *laneState) pid(device string) int {
	if device == "" {
		device = "host"
	}
	if p, ok := t.pids[device]; ok {
		return p
	}
	p := t.nextPid
	t.nextPid++
	t.pids[device] = p
	t.emit(traceEvent{
		Name: "process_name", Ph: "M", Pid: p, Tid: 0,
		Args: map[string]any{"name": device},
	})
	t.emit(traceEvent{
		Name: "process_sort_index", Ph: "M", Pid: p, Tid: 0,
		Args: map[string]any{"sort_index": p},
	})
	return p
}

// tid returns the thread lane for a traversal/timeline ID.
func (t *laneState) tid(id uint64) int {
	if tid, ok := t.tids[id]; ok {
		return tid
	}
	tid := t.nextTid
	t.nextTid++
	t.tids[id] = tid
	return tid
}

// threadName emits thread_name metadata once per (pid, tid) pair.
func (t *laneState) threadName(pid, tid int, name string) {
	key := [2]int{pid, tid}
	if t.named[key] {
		return
	}
	t.named[key] = true
	t.emit(traceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// framer writes the JSON document structure around encoded events. Its
// whole state is one bool, which lets StreamWriter snapshot and roll
// it back when an event is dropped after partial encoding.
type framer struct {
	started bool
}

// appendEvent writes ev to buf with the correct framing: the document
// preamble plus the well-known host/interconnect lane metadata before
// the first event, a ",\n" separator before every later one.
func (f *framer) appendEvent(buf *bytes.Buffer, ev traceEvent) {
	if !f.started {
		f.started = true
		buf.WriteString(`{"traceEvents":[`)
		for _, meta := range []traceEvent{
			{Name: "process_name", Ph: "M", Pid: hostPid, Args: map[string]any{"name": "host"}},
			{Name: "process_sort_index", Ph: "M", Pid: hostPid, Args: map[string]any{"sort_index": hostPid}},
			{Name: "process_name", Ph: "M", Pid: linkPid, Args: map[string]any{"name": "interconnect"}},
			{Name: "process_sort_index", Ph: "M", Pid: linkPid, Args: map[string]any{"sort_index": linkPid}},
		} {
			writeTraceEvent(buf, meta)
			buf.WriteString(",\n")
		}
		writeTraceEvent(buf, ev)
		return
	}
	buf.WriteString(",\n")
	writeTraceEvent(buf, ev)
}

// finish writes the document epilogue. A document that never saw an
// event still gets a valid (empty) traceEvents array.
func (f *framer) finish(buf *bytes.Buffer) {
	if !f.started {
		f.started = true
		buf.WriteString(`{"traceEvents":[`)
	}
	buf.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
}

func writeTraceEvent(buf *bytes.Buffer, ev traceEvent) {
	b, err := json.Marshal(ev)
	if err != nil {
		// traceEvent contains only marshalable fields; a failure here
		// is a programming error worth surfacing loudly in tests, but
		// must not kill a traced production run.
		b = []byte(fmt.Sprintf(`{"name":"encode error","ph":"i","ts":0,"pid":1,"tid":0,"s":"g","args":{"error":%q}}`, err))
	}
	buf.Write(b)
}

// TraceWriter is a Recorder that renders the event stream as Chrome
// trace-event JSON (the catapult "JSON object format"), loadable in
// chrome://tracing and https://ui.perfetto.dev. A whole
// cross-architecture run — CPU top-down levels, the GPU bottom-up
// middle, the GPU top-down tail, the PCIe handoffs between them —
// becomes a timeline with one track group (pid) per device.
//
// Track model (see OBSERVABILITY.md for the full schema):
//
//   - pid 1 "host": real traversals. One thread (tid) per traversal;
//     each expansion step is a complete ("X") slice whose args carry
//     the per-level work counts, with instants for direction switches
//     and traversal start/end. Timestamps are wall-clock microseconds
//     since the first recorded event.
//   - pid 2 "interconnect": simulated device-to-device handoffs as
//     slices on the modeled link, args carrying the payload bytes.
//   - pid 3+: one per modeled device (lazily registered under its
//     archsim label). Simulated plan timelines place each priced step
//     on its device's track, sharing one tid per plan run, on the
//     simulated clock (modeled seconds rendered as microseconds).
//
// Events are encoded under one mutex as they arrive, so a TraceWriter
// shared by concurrent RunMany roots never produces interleaved or
// torn JSON; the file is buffered in memory and written on Close. For
// runs whose length (or lifetime) makes an unbounded buffer wrong,
// StreamWriter produces the same byte stream incrementally.
type TraceWriter struct {
	mu     sync.Mutex
	w      io.Writer
	buf    bytes.Buffer
	closed bool

	lanes *laneState
	frame framer
}

// NewTraceWriter returns a TraceWriter that will emit the trace file
// to w when Close is called.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: w}
	t.lanes = newLaneState(func(ev traceEvent) {
		t.frame.appendEvent(&t.buf, ev)
	})
	return t
}

// Event implements Recorder.
func (t *TraceWriter) Event(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.lanes.event(e)
}

// Close finalizes the JSON document and writes it to the underlying
// writer. Events arriving after Close are dropped. Close is
// idempotent; only the first call writes.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	t.frame.finish(&t.buf)
	_, err := t.w.Write(t.buf.Bytes())
	return err
}
