package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceWriter is a Recorder that renders the event stream as Chrome
// trace-event JSON (the catapult "JSON object format"), loadable in
// chrome://tracing and https://ui.perfetto.dev. A whole
// cross-architecture run — CPU top-down levels, the GPU bottom-up
// middle, the GPU top-down tail, the PCIe handoffs between them —
// becomes a timeline with one track group (pid) per device.
//
// Track model (see OBSERVABILITY.md for the full schema):
//
//   - pid 1 "host": real traversals. One thread (tid) per traversal;
//     each expansion step is a complete ("X") slice whose args carry
//     the per-level work counts, with instants for direction switches
//     and traversal start/end. Timestamps are wall-clock microseconds
//     since the first recorded event.
//   - pid 2 "interconnect": simulated device-to-device handoffs as
//     slices on the modeled link, args carrying the payload bytes.
//   - pid 3+: one per modeled device (lazily registered under its
//     archsim label). Simulated plan timelines place each priced step
//     on its device's track, sharing one tid per plan run, on the
//     simulated clock (modeled seconds rendered as microseconds).
//
// Events are encoded under one mutex as they arrive, so a TraceWriter
// shared by concurrent RunMany roots never produces interleaved or
// torn JSON; the file is buffered in memory and written on Close.
type TraceWriter struct {
	mu     sync.Mutex
	w      io.Writer
	buf    bytes.Buffer
	closed bool

	// Wall epoch: latched from the first wall-clocked event so the
	// timeline starts at ts 0 regardless of when the process began.
	epoch     time.Time
	haveEpoch bool

	pids     map[string]int // lane name -> pid
	tids     map[uint64]int // TraversalID -> tid
	nextPid  int
	nextTid  int
	planName map[uint64]string // TraversalID -> plan name (simulated)
	named    map[[2]int]bool   // (pid,tid) pairs with thread_name emitted
}

// Reserved lane pids.
const (
	hostPid = 1
	linkPid = 2
)

// NewTraceWriter returns a TraceWriter that will emit the trace file
// to w when Close is called.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{
		w:        w,
		pids:     map[string]int{"host": hostPid, "interconnect": linkPid},
		tids:     make(map[uint64]int),
		nextPid:  linkPid + 1,
		nextTid:  1,
		planName: make(map[uint64]string),
		named:    make(map[[2]int]bool),
	}
}

// traceEvent is one element of the trace file's traceEvents array.
// Field order is fixed (and args maps marshal with sorted keys), so a
// given event sequence always serializes identically — the property
// the golden-file test pins.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Event implements Recorder.
func (t *TraceWriter) Event(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	switch e.Kind {
	case KindTraversalStart:
		tid := t.tid(e.TraversalID)
		label := e.Engine
		if label == "" {
			label = "bfs"
		}
		t.threadName(hostPid, tid, fmt.Sprintf("root %d (%s)", e.Root, label))
		t.emit(traceEvent{
			Name: "traversal start", Cat: "traversal", Ph: "i", Scope: "t",
			TS: t.wallTS(e.Wall), Pid: hostPid, Tid: tid,
			Args: map[string]any{
				"root": e.Root, "engine": label,
				"vertices": e.FrontierVertices, "edges": e.FrontierEdges,
				"reusedWorkspace": e.Reused,
			},
		})
	case KindLevel:
		dur := float64(e.WallDur) / float64(time.Microsecond)
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d %s", e.Step, e.Dir), Cat: "level", Ph: "X",
			TS: t.wallTS(e.Wall), Dur: &dur, Pid: hostPid, Tid: t.tid(e.TraversalID),
			Args: map[string]any{
				"step": e.Step, "dir": e.Dir.String(),
				"frontierVertices": e.FrontierVertices, "frontierEdges": e.FrontierEdges,
				"discovered": e.Discovered, "unvisited": e.Unvisited,
				"scans": e.Scans, "grains": e.Grains, "workers": e.Workers,
			},
		})
	case KindSwitch:
		t.emit(traceEvent{
			Name: "switch to " + e.Dir.String(), Cat: "switch", Ph: "i", Scope: "t",
			TS: t.wallTS(e.Wall), Pid: hostPid, Tid: t.tid(e.TraversalID),
			Args: map[string]any{"step": e.Step, "dir": e.Dir.String()},
		})
	case KindTraversalEnd:
		args := map[string]any{
			"reachable": e.Discovered, "traversedEdges": e.Scans,
			"wallSeconds": e.WallDur.Seconds(),
		}
		if e.Detail != "" {
			args["error"] = e.Detail
		}
		t.emit(traceEvent{
			Name: "traversal end", Cat: "traversal", Ph: "i", Scope: "t",
			TS: t.wallTS(e.Wall), Pid: hostPid, Tid: t.tid(e.TraversalID),
			Args: args,
		})
	case KindRootDispatch, KindRootDone:
		name := "dispatch"
		args := map[string]any{"index": e.Index, "root": e.Root}
		if e.Kind == KindRootDone {
			name = "done"
			args["wallSeconds"] = e.WallDur.Seconds()
			if e.Detail != "" {
				args["error"] = e.Detail
			}
		}
		tid := int(e.Workers) + 1 // dispatch lane per RunMany worker
		t.threadName(hostPid, -tid, fmt.Sprintf("dispatch worker %d", e.Workers))
		t.emit(traceEvent{
			Name: fmt.Sprintf("%s root %d", name, e.Root), Cat: "dispatch",
			Ph: "i", Scope: "t", TS: t.wallTS(e.Wall), Pid: hostPid, Tid: -tid,
			Args: args,
		})
	case KindPlanStart:
		t.planName[e.TraversalID] = e.Engine
		t.tid(e.TraversalID)
	case KindSimStep:
		dur := e.SimDur * 1e6
		pid, tid := t.pid(e.Device), t.tid(e.TraversalID)
		t.threadName(pid, tid, t.planLabel(e.TraversalID))
		t.emit(traceEvent{
			Name: fmt.Sprintf("L%d %s", e.Step, e.Dir), Cat: "sim", Ph: "X",
			TS: e.SimStart * 1e6, Dur: &dur, Pid: pid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "dir": e.Dir.String(),
				"device": e.Device, "plan": t.planLabel(e.TraversalID),
				"kernelSeconds": e.SimDur,
			},
		})
	case KindHandoff:
		dur := e.SimDur * 1e6
		tid := t.tid(e.TraversalID)
		t.threadName(linkPid, tid, t.planLabel(e.TraversalID))
		t.emit(traceEvent{
			Name: e.From + " to " + e.Device, Cat: "handoff", Ph: "X",
			TS: e.SimStart * 1e6, Dur: &dur, Pid: linkPid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "from": e.From, "to": e.Device,
				"bytes": e.Bytes, "plan": t.planLabel(e.TraversalID),
				"linkSeconds": e.SimDur,
			},
		})
	case KindPlanEnd:
		pid, tid := linkPid, t.tid(e.TraversalID)
		t.emit(traceEvent{
			Name: "plan end", Cat: "sim", Ph: "i", Scope: "t",
			TS: e.SimStart * 1e6, Pid: pid, Tid: tid,
			Args: map[string]any{
				"plan": t.planLabel(e.TraversalID), "totalSeconds": e.SimDur,
			},
		})
	case KindRetry, KindReplan, KindFault:
		pid, tid := t.pid(e.Device), t.tid(e.TraversalID)
		t.threadName(pid, tid, t.planLabel(e.TraversalID))
		t.emit(traceEvent{
			Name: e.Kind.String(), Cat: "fault", Ph: "i", Scope: "g",
			TS: e.SimStart * 1e6, Pid: pid, Tid: tid,
			Args: map[string]any{
				"step": e.Step, "device": e.Device, "detail": e.Detail,
				"plan": t.planLabel(e.TraversalID),
			},
		})
	}
}

// planLabel names a simulated timeline for display.
func (t *TraceWriter) planLabel(id uint64) string {
	if name := t.planName[id]; name != "" {
		return name
	}
	return "plan"
}

// wallTS converts a wall instant to trace microseconds, latching the
// epoch on first use. Zero instants (events from emitters that had no
// clock in hand) map to the epoch.
func (t *TraceWriter) wallTS(w time.Time) float64 {
	if w.IsZero() {
		return 0
	}
	if !t.haveEpoch {
		t.epoch, t.haveEpoch = w, true
	}
	return float64(w.Sub(t.epoch)) / float64(time.Microsecond)
}

// pid returns the lane for a device name, registering it (plus its
// process_name metadata) on first use.
func (t *TraceWriter) pid(device string) int {
	if device == "" {
		device = "host"
	}
	if p, ok := t.pids[device]; ok {
		return p
	}
	p := t.nextPid
	t.nextPid++
	t.pids[device] = p
	t.emit(traceEvent{
		Name: "process_name", Ph: "M", Pid: p, Tid: 0,
		Args: map[string]any{"name": device},
	})
	t.emit(traceEvent{
		Name: "process_sort_index", Ph: "M", Pid: p, Tid: 0,
		Args: map[string]any{"sort_index": p},
	})
	return p
}

// tid returns the thread lane for a traversal/timeline ID.
func (t *TraceWriter) tid(id uint64) int {
	if tid, ok := t.tids[id]; ok {
		return tid
	}
	tid := t.nextTid
	t.nextTid++
	t.tids[id] = tid
	return tid
}

// threadName emits thread_name metadata once per (pid, tid) pair.
func (t *TraceWriter) threadName(pid, tid int, name string) {
	key := [2]int{pid, tid}
	if t.named[key] {
		return
	}
	t.named[key] = true
	t.emit(traceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// emit appends one encoded event to the buffer. Callers hold t.mu.
func (t *TraceWriter) emit(ev traceEvent) {
	// Well-known process names are registered eagerly so every file
	// has them exactly once, before any event that uses the lanes.
	if t.buf.Len() == 0 {
		t.buf.WriteString(`{"traceEvents":[`)
		for _, meta := range []traceEvent{
			{Name: "process_name", Ph: "M", Pid: hostPid, Args: map[string]any{"name": "host"}},
			{Name: "process_sort_index", Ph: "M", Pid: hostPid, Args: map[string]any{"sort_index": hostPid}},
			{Name: "process_name", Ph: "M", Pid: linkPid, Args: map[string]any{"name": "interconnect"}},
			{Name: "process_sort_index", Ph: "M", Pid: linkPid, Args: map[string]any{"sort_index": linkPid}},
		} {
			t.writeEvent(meta)
			t.buf.WriteString(",\n")
		}
		t.writeEvent(ev)
		return
	}
	t.buf.WriteString(",\n")
	t.writeEvent(ev)
}

func (t *TraceWriter) writeEvent(ev traceEvent) {
	b, err := json.Marshal(ev)
	if err != nil {
		// traceEvent contains only marshalable fields; a failure here
		// is a programming error worth surfacing loudly in tests, but
		// must not kill a traced production run.
		b = []byte(fmt.Sprintf(`{"name":"encode error","ph":"i","ts":0,"pid":1,"tid":0,"s":"g","args":{"error":%q}}`, err))
	}
	t.buf.Write(b)
}

// Close finalizes the JSON document and writes it to the underlying
// writer. Events arriving after Close are dropped. Close is
// idempotent; only the first call writes.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	if t.buf.Len() == 0 {
		t.buf.WriteString(`{"traceEvents":[`)
	}
	t.buf.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	_, err := t.w.Write(t.buf.Bytes())
	return err
}
