// Package obs is the observability layer of the cross-architecture BFS
// stack: a zero-alloc-on-hot-path event stream that makes per-level
// behaviour — frontier sizes, edges scanned per direction, where the
// top-down/bottom-up switch lands, retries/replans/faults, device
// handoffs — visible while a run is in flight, instead of only as
// end-of-run aggregates.
//
// The paper's whole contribution hinges on per-level visibility
// (Fig. 4's |V|cq/|E|cq switch quantities, Table IV's per-level
// breakdown), and the ROADMAP's production north star demands the
// telemetry a serving stack would have. This package provides both
// through one seam: the Recorder interface. Emitters (the BFS engines
// in internal/bfs, the simulator and resilient executor in
// internal/core, the RunMany dispatcher) publish flat Event values;
// consumers aggregate (Metrics: counters/gauges/histograms via expvar
// and a pull-based text endpoint) or export (TraceWriter: Chrome
// trace-event JSON for chrome://tracing and Perfetto).
//
// Layering: obs imports nothing from the layers it observes, so every
// package in the stack can import it without cycles. Quantities that
// have typed homes elsewhere (bfs.Direction, archsim.Arch) appear here
// as primitives (Direction, device-name strings).
//
// Hot-path contract:
//
//   - An Event is a flat value struct — no pointers, no slices — so
//     emitting one is a stack copy, never a heap allocation.
//   - Nop is the default recorder; emitting to it is a dynamic call
//     that discards the value. The steady-state 0 allocs/op gate
//     (bfs.TestRunAllocsSteadyState, BenchmarkRunNopRecorder) holds
//     with Nop attached.
//   - Live(rec) lets emitters skip work that exists only to fill
//     events (wall-clock reads, |E|cq sums a policy did not ask for).
//   - Any string placed in an Event on a hot path must be static or
//     already-allocated (engine names, device names); per-event
//     formatting belongs in consumers.
//
// Concurrency contract: one Recorder may be shared by many concurrent
// traversals (RunMany fans a whole batch into a single recorder), so
// implementations must be safe for concurrent Event calls. Events of
// one traversal share a TraversalID; the traversal-lane events
// (start/level/switch/end, collective) are emitted in step order by a
// single goroutine, while the per-rank sharded events (exchange,
// ghost-update) ride their own lanes and may be emitted concurrently
// by the rank goroutines. Events of different traversals interleave
// arbitrarily. See OBSERVABILITY.md for the full taxonomy and ordering
// guarantees.
package obs

import (
	"sync/atomic"
	"time"
)

// Kind discriminates telemetry events.
type Kind uint8

const (
	// KindTraversalStart opens a real traversal: Root, Engine, Total*,
	// Reused (workspace recycled vs fresh), Wall.
	KindTraversalStart Kind = iota
	// KindLevel reports one completed expansion step of a real
	// traversal: Step, Dir, FrontierVertices, FrontierEdges (-1 when
	// skipped), Discovered, Unvisited, Scans, Grains, Workers, Wall,
	// WallDur.
	KindLevel
	// KindSwitch marks a direction change between consecutive steps of
	// a real traversal (Dir is the new direction, Step the first step
	// run in it).
	KindSwitch
	// KindTraversalEnd closes a real traversal: Discovered carries the
	// reachable-vertex count, Scans the traversed-edge count, WallDur
	// the whole traversal; Detail is "" on success or an error string.
	KindTraversalEnd
	// KindRootDispatch marks a RunMany worker claiming one root:
	// Root, Index, Workers (the claiming worker id).
	KindRootDispatch
	// KindRootDone marks the claimed root's delivery (or failure, with
	// Detail set): Root, Index, WallDur.
	KindRootDone
	// KindPlanStart opens a simulated (priced) timeline: Engine is the
	// plan name.
	KindPlanStart
	// KindSimStep is one priced expansion step on a modeled device:
	// Step, Dir, Device, SimStart, SimDur (kernel seconds).
	KindSimStep
	// KindHandoff is a cross-device migration of the traversal state:
	// From, Device (target), Bytes, SimStart, SimDur (link seconds).
	KindHandoff
	// KindPlanEnd closes a simulated timeline: SimDur is the plan's
	// total priced seconds.
	KindPlanEnd
	// KindRetry reports a dropped transfer re-attempted by the
	// resilient ladder (Device, Step, Detail).
	KindRetry
	// KindReplan reports a placement change forced by a fault
	// (Device, Step, Detail).
	KindReplan
	// KindFault reports any other fault event the ladder handled or
	// died on: slowdowns and fatal rungs (Device, Step, Detail).
	KindFault
	// KindExchangeStart opens one rank's per-level frontier exchange in
	// a sharded traversal: Step, Dir, Index (rank), Workers (total
	// ranks), Wall. Exchange events ride per-rank lanes, so unlike the
	// traversal's own events they may be emitted concurrently by the
	// rank goroutines.
	KindExchangeStart
	// KindExchangeEnd closes the rank's exchange: Step, Dir, Index
	// (rank), Bytes (payload this rank contributed), Wall, WallDur.
	KindExchangeEnd
	// KindCollective reports the per-level all-reduce of a sharded
	// traversal — the global switch decision: Step, Dir (the direction
	// chosen for this step), FrontierVertices/FrontierEdges/Unvisited
	// (global sums; FrontierEdges -1 when skipped), Workers (ranks),
	// Wall. Emitted once per step by the reduction leader.
	KindCollective
	// KindGhostUpdate reports a rank applying remote top-down claims to
	// vertices it owns: Step, Index (rank), Scans (claims received),
	// Discovered (claims that won), Bytes, Wall.
	KindGhostUpdate
	// KindRankLost reports a sharded rank detected as failed (injected
	// crash, exhausted exchange retries, or watchdog-fenced straggler):
	// Step (level being traversed), Index (the dead rank), Workers
	// (survivors left), Detail (cause), Wall. Emitted under the
	// barrier lock by whichever participant detected the failure.
	KindRankLost
	// KindRecoverStart opens one survivor's recovery: Step (the level
	// about to be replayed), Index (rank), Wall. Per-rank lane; may be
	// emitted concurrently by the surviving rank goroutines.
	KindRecoverStart
	// KindRecoverEnd closes the survivor's recovery: Step, Index
	// (rank), Scans (frontier vertices restored from checkpoints),
	// Wall, WallDur.
	KindRecoverEnd
	// KindCheckpoint reports a rank writing its per-level frontier
	// checkpoint deltas: Step (the level the checkpoint can replay),
	// Index (rank), Grains (segments covered), Bytes (total encoded
	// delta size), Wall. Per-rank lane.
	KindCheckpoint
)

func (k Kind) String() string {
	switch k {
	case KindTraversalStart:
		return "traversal_start"
	case KindLevel:
		return "level"
	case KindSwitch:
		return "switch"
	case KindTraversalEnd:
		return "traversal_end"
	case KindRootDispatch:
		return "root_dispatch"
	case KindRootDone:
		return "root_done"
	case KindPlanStart:
		return "plan_start"
	case KindSimStep:
		return "sim_step"
	case KindHandoff:
		return "handoff"
	case KindPlanEnd:
		return "plan_end"
	case KindRetry:
		return "retry"
	case KindReplan:
		return "replan"
	case KindFault:
		return "fault"
	case KindExchangeStart:
		return "exchange_start"
	case KindExchangeEnd:
		return "exchange_end"
	case KindCollective:
		return "collective"
	case KindGhostUpdate:
		return "ghost_update"
	case KindRankLost:
		return "rank_lost"
	case KindRecoverStart:
		return "recover_start"
	case KindRecoverEnd:
		return "recover_end"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return "unknown"
	}
}

// Direction mirrors bfs.Direction without importing it: 0 is top-down,
// 1 is bottom-up, DirNone marks events with no direction payload.
type Direction int8

const (
	TopDown  Direction = 0
	BottomUp Direction = 1
	DirNone  Direction = -1
)

func (d Direction) String() string {
	switch d {
	case TopDown:
		return "TD"
	case BottomUp:
		return "BU"
	default:
		return ""
	}
}

// Event is one telemetry record. It is a flat value struct by design:
// emitting an event is a stack copy (zero heap allocations), and a
// recorder shared across goroutines can never observe a torn event —
// each call receives its own copy. Which fields are meaningful depends
// on Kind (see the Kind constants); unused fields are zero.
type Event struct {
	Kind Kind
	// TraversalID groups the events of one traversal or one simulated
	// plan timeline. IDs are process-unique (NextTraversalID), so
	// events from concurrent RunMany roots sharing a recorder can be
	// demultiplexed.
	TraversalID uint64
	// Root is the traversal's source vertex; Index its position in a
	// RunMany batch.
	Root  int32
	Index int32
	// Step is the paper's 1-based level number.
	Step int32
	// Dir is the direction of the step (DirNone when not applicable).
	Dir Direction

	// Per-level work counts (KindLevel), mirroring bfs.StepInfo plus
	// the step outcome. FrontierEdges is -1 when collection was
	// skipped (no live recorder and the policy opted out).
	FrontierVertices int64
	FrontierEdges    int64
	Discovered       int64
	Unvisited        int64
	Scans            int64
	// Grains and Workers are the dispatch-level scheduling inputs of
	// the step: how many grain-sized blocks the level was split into
	// and how many workers were requested for them.
	Grains  int64
	Workers int32

	// Reused reports (on KindTraversalStart) whether the traversal ran
	// in a caller-supplied (recycled) workspace rather than a fresh
	// one-shot allocation.
	Reused bool

	// Wall-clock fields for real executions. Wall is the event's start
	// instant, WallDur its duration (levels, whole traversals).
	Wall    time.Time
	WallDur time.Duration

	// Simulated-clock fields for priced executions, in modeled
	// seconds from the plan timeline's origin.
	SimStart float64
	SimDur   float64

	// Identity strings. These must be static or long-lived — engine
	// names, archsim device names — never formatted per event on a hot
	// path. Bytes is the payload size of a KindHandoff.
	Engine string
	Device string
	From   string
	Bytes  int64
	// Detail carries human-readable context on cold paths only
	// (fault actions, error strings).
	Detail string
}

// Recorder receives telemetry events. Implementations must be safe for
// concurrent use by multiple goroutines: RunMany shares one recorder
// across every in-flight root, and the parallel kernels' coordinating
// goroutines emit concurrently with the dispatcher. Event must not
// block on the hot path (buffer or drop instead) and must not retain
// the event past the call (it receives a copy, so retention is safe
// but copying into owned storage is the contract).
type Recorder interface {
	Event(e Event)
}

// nop discards every event.
type nop struct{}

func (nop) Event(Event) {}

// Nop is the default recorder: it discards events and costs one
// dynamic call per emission — no allocations, no synchronization.
var Nop Recorder = nop{}

// OrNop returns rec, or Nop when rec is nil, so emitters can hold an
// always-callable recorder without nil checks at every site.
func OrNop(rec Recorder) Recorder {
	if rec == nil {
		return Nop
	}
	return rec
}

// Live reports whether rec actually consumes events. Emitters use it
// to gate work that exists only to fill events — wall-clock reads,
// frontier-edge sums a policy did not ask for — keeping the Nop path
// identical to no instrumentation at all.
func Live(rec Recorder) bool {
	return rec != nil && rec != Nop
}

// traversalID is the process-wide ID spring for NextTraversalID.
var traversalID atomic.Uint64

// NextTraversalID returns a process-unique ID for one traversal's (or
// one simulated plan timeline's) event group. Emitters draw an ID only
// when a live recorder is attached; ID 0 therefore never appears in a
// trace and can be used as "unattributed".
func NextTraversalID() uint64 { return traversalID.Add(1) }

// multi fans events out to several recorders in order.
type multi []Recorder

func (m multi) Event(e Event) {
	for _, r := range m {
		r.Event(e)
	}
}

// Multi returns a recorder that forwards every event to each non-nil,
// non-Nop recorder in recs. With zero live recorders it returns Nop
// (so Live stays false and emitters skip event-only work); with one it
// returns that recorder unwrapped.
func Multi(recs ...Recorder) Recorder {
	live := make(multi, 0, len(recs))
	for _, r := range recs {
		if Live(r) {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return live
}
