package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The SLO engine: declarative objectives over the labeled metric
// families, evaluated with multi-window burn rates. An objective like
// "oltp p99 < 2ms over 5m" grants an error budget of 1% (the
// complement of the quantile): up to 1% of queries in any 5-minute
// window may exceed 2ms. The burn rate is how fast that budget is
// being consumed — bad-fraction divided by budget — and the engine
// breaches only when BOTH a long window (the objective's) and a short
// window (window/12, the SRE multi-window rule) burn at or above the
// threshold: the long window proves it matters, the short window
// proves it is still happening, so a breach never fires on a spike
// that already ended, nor on a slow bleed that a scrape blip mimics.
//
// Sources are cumulative (total, bad) pairs read at every Tick; the
// engine differences timestamped snapshots internally, so it composes
// with any monotone counter pair — histogram cells via LatencySource,
// admission counters via a closure.

// ObjectiveKind discriminates the two objective grammars.
type ObjectiveKind uint8

const (
	// LatencyObjective bounds a latency quantile: "<sel> p99 < 2ms over 5m".
	LatencyObjective ObjectiveKind = iota
	// ErrorRatioObjective bounds the failure fraction: "error ratio < 0.1% over 30m".
	ErrorRatioObjective
)

// Objective is one parsed SLO declaration.
type Objective struct {
	// Spec is the original declaration, the objective's identity in
	// verdicts and labels.
	Spec string
	// Selector scopes a latency objective: a class ("oltp", "olap"), a
	// query kind ("reach", ...), or "total". "error" for error-ratio
	// objectives.
	Selector string
	Kind     ObjectiveKind
	// Quantile is the bounded quantile (0.99 for p99); latency only.
	Quantile float64
	// Threshold is the bound: seconds for latency, a ratio (0.001 for
	// 0.1%) for error objectives.
	Threshold float64
	// Window is the long evaluation window.
	Window time.Duration
}

// Budget is the tolerated bad fraction: the quantile's complement for
// latency (p99 tolerates 1%), the ratio itself for errors.
func (o Objective) Budget() float64 {
	if o.Kind == ErrorRatioObjective {
		return o.Threshold
	}
	return 1 - o.Quantile
}

// ParseObjective parses one declaration. Two grammars:
//
//	<selector> p<digits> < <duration> over <window>   e.g. "oltp p99 < 2ms over 5m"
//	error ratio < <percent>% over <window>            e.g. "error ratio < 0.1% over 30m"
func ParseObjective(spec string) (Objective, error) {
	f := strings.Fields(spec)
	bad := func(why string) (Objective, error) {
		return Objective{}, fmt.Errorf("objective %q: %s", spec, why)
	}
	if len(f) != 6 {
		return bad(`want "<sel> p<q> < <dur> over <win>" or "error ratio < <pct>% over <win>"`)
	}
	if f[2] != "<" || f[4] != "over" {
		return bad(`want "... < ... over ..."`)
	}
	window, err := time.ParseDuration(f[5])
	if err != nil || window <= 0 {
		return bad(fmt.Sprintf("bad window %q", f[5]))
	}
	o := Objective{Spec: spec, Selector: f[0], Window: window}
	if f[0] == "error" {
		if f[1] != "ratio" {
			return bad(`error objectives read "error ratio < <pct>% over <win>"`)
		}
		pctStr, ok := strings.CutSuffix(f[3], "%")
		if !ok {
			return bad(fmt.Sprintf("threshold %q needs a %% suffix", f[3]))
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return bad(fmt.Sprintf("bad error percentage %q", f[3]))
		}
		o.Kind = ErrorRatioObjective
		o.Threshold = pct / 100
		return o, nil
	}
	digits, ok := strings.CutPrefix(f[1], "p")
	if !ok || digits == "" || len(digits) > 4 {
		return bad(fmt.Sprintf("bad quantile %q (want p50, p99, p999, ...)", f[1]))
	}
	n, err := strconv.ParseUint(digits, 10, 32)
	if err != nil {
		return bad(fmt.Sprintf("bad quantile %q", f[1]))
	}
	div := 1.0
	for range digits {
		div *= 10
	}
	o.Quantile = float64(n) / div
	if o.Quantile <= 0 || o.Quantile >= 1 {
		return bad(fmt.Sprintf("quantile %q out of (0,1)", f[1]))
	}
	threshold, err := time.ParseDuration(f[3])
	if err != nil || threshold <= 0 {
		return bad(fmt.Sprintf("bad latency threshold %q", f[3]))
	}
	o.Kind = LatencyObjective
	o.Threshold = threshold.Seconds()
	return o, nil
}

// SLOSource reads one objective's cumulative (total, bad) counters.
// Must be safe for concurrent use and cheap — it runs every Tick.
type SLOSource func() (total, bad float64)

// LatencySource adapts labeled histogram cells into an SLOSource for a
// latency objective: total is the observation count, bad the
// observations NOT provably at or under the threshold. Attribution is
// by bucket, so the reading is conservative — an observation only
// counts as good when its whole bucket lies at or under the threshold
// (CountAtMost). With power-of-two bounds that overstates badness by
// at most one bucket's width, which errs toward paging, never toward
// missing a breach.
func LatencySource(thresholdSeconds float64, cells ...*Cell) SLOSource {
	return func() (total, bad float64) {
		for _, c := range cells {
			t, atMost := c.CountAtMost(thresholdSeconds)
			total += float64(t)
			bad += float64(t - atMost)
		}
		return total, bad
	}
}

// SLOObjective binds a parsed objective to its counter source.
type SLOObjective struct {
	Objective
	Source SLOSource
}

// SLOOptions tunes the evaluator; zero values take the defaults.
type SLOOptions struct {
	// Burn is the burn-rate threshold both windows must reach to
	// breach; default 1 (consuming budget exactly at the sustainable
	// rate).
	Burn float64
	// ShortDiv divides the objective window into the short
	// confirmation window; default 12 (5m for a 1h objective).
	ShortDiv int
	// Cooldown spaces OnBreach firings: at most one per cooldown
	// across all objectives. Default 10m.
	Cooldown time.Duration
	// OnBreach fires (outside the engine lock) with the breaching
	// verdict — the hook serve uses for incident capture.
	OnBreach func(Verdict)
}

// Verdict is one objective's evaluation at a Tick — the /debug/slo
// payload element.
type Verdict struct {
	Objective string  `json:"objective"`
	WindowSec float64 `json:"window_sec"`
	Budget    float64 `json:"budget"`
	BurnLong  float64 `json:"burn_long"`
	BurnShort float64 `json:"burn_short"`
	Breaching bool    `json:"breaching"`
	// Total and Bad are the cumulative source readings at this tick.
	Total float64 `json:"total"`
	Bad   float64 `json:"bad"`
}

type sloSample struct {
	t          time.Time
	total, bad float64
}

type sloState struct {
	obj     SLOObjective
	samples []sloSample
}

// SLO evaluates a set of objectives from Tick to Tick. Drive it with a
// ticker at the poll interval; Tick(now) is pure in now, so tests
// replay synthetic timelines.
type SLO struct {
	opt SLOOptions

	mu         sync.Mutex
	objs       []*sloState
	verdicts   []Verdict
	lastBreach time.Time
	breaches   uint64
}

// NewSLO builds an evaluator over the given objectives.
func NewSLO(objs []SLOObjective, opt SLOOptions) *SLO {
	if opt.Burn <= 0 {
		opt.Burn = 1
	}
	if opt.ShortDiv <= 0 {
		opt.ShortDiv = 12
	}
	if opt.Cooldown <= 0 {
		opt.Cooldown = 10 * time.Minute
	}
	s := &SLO{opt: opt}
	for _, o := range objs {
		s.objs = append(s.objs, &sloState{obj: o})
	}
	return s
}

// Tick reads every source, evaluates burn rates at now, stores the
// verdicts, and fires OnBreach (once per cooldown, across objectives)
// when any objective breaches. Call from one goroutine.
func (s *SLO) Tick(now time.Time) []Verdict {
	s.mu.Lock()
	verdicts := make([]Verdict, 0, len(s.objs))
	var breach *Verdict
	for _, st := range s.objs {
		total, bad := st.obj.Source()
		st.samples = append(st.samples, sloSample{t: now, total: total, bad: bad})
		st.prune(now, 2*st.obj.Window)

		short := st.obj.Window / time.Duration(s.opt.ShortDiv)
		if short <= 0 {
			short = time.Second
		}
		v := Verdict{
			Objective: st.obj.Spec,
			WindowSec: st.obj.Window.Seconds(),
			Budget:    st.obj.Budget(),
			BurnLong:  st.burnOver(now, st.obj.Window),
			BurnShort: st.burnOver(now, short),
			Total:     total,
			Bad:       bad,
		}
		v.Breaching = v.BurnLong >= s.opt.Burn && v.BurnShort >= s.opt.Burn
		if v.Breaching && breach == nil {
			breach = &v
		}
		verdicts = append(verdicts, v)
	}
	s.verdicts = verdicts
	fire := false
	if breach != nil && now.Sub(s.lastBreach) >= s.opt.Cooldown {
		s.lastBreach = now
		s.breaches++
		fire = true
	}
	hook := s.opt.OnBreach
	s.mu.Unlock()
	// The hook runs outside the lock: incident capture takes a CPU
	// profile for around a second, and /debug/slo must stay readable
	// meanwhile.
	if fire && hook != nil {
		hook(*breach)
	}
	return verdicts
}

// Verdicts returns the last Tick's evaluations (a copy).
func (s *SLO) Verdicts() []Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Verdict(nil), s.verdicts...)
}

// Verdict returns the i-th objective's last evaluation (objectives
// keep their construction order) — the accessor burn gauges poll.
func (s *SLO) Verdict(i int) (Verdict, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.verdicts) {
		return Verdict{}, false
	}
	return s.verdicts[i], true
}

// Breaches reports how many times the breach hook window opened.
func (s *SLO) Breaches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breaches
}

// prune drops samples older than keep, always retaining the newest
// sample older than the window as the long-window anchor.
func (st *sloState) prune(now time.Time, keep time.Duration) {
	cut := now.Add(-keep)
	i := 0
	for i < len(st.samples)-1 && st.samples[i].t.Before(cut) {
		i++
	}
	if i > 0 {
		st.samples = append(st.samples[:0], st.samples[i:]...)
	}
}

// burnOver computes the burn rate over the trailing lookback: the bad
// fraction of the traffic delta between the anchor sample (the newest
// one at or before now-lookback, else the oldest held) and the current
// reading, divided by the budget. No traffic in the window burns
// nothing.
func (st *sloState) burnOver(now time.Time, lookback time.Duration) float64 {
	n := len(st.samples)
	if n < 2 {
		return 0
	}
	cut := now.Add(-lookback)
	anchor := st.samples[0]
	for _, s := range st.samples[:n-1] {
		if s.t.After(cut) {
			break
		}
		anchor = s
	}
	cur := st.samples[n-1]
	dTotal := cur.total - anchor.total
	if dTotal <= 0 {
		return 0
	}
	dBad := cur.bad - anchor.bad
	if dBad < 0 {
		dBad = 0
	}
	budget := st.obj.Budget()
	if budget <= 0 {
		return 0
	}
	return (dBad / dTotal) / budget
}
