package obs

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ringShards buckets in-flight traversals by TraversalID so concurrent
// RunMany roots contend on different mutexes. 8 covers the default
// dispatch widths; contention is one shard-mutex per event.
const ringShards = 8

// Defaults for NewRing arguments <= 0.
const (
	DefaultRingKeep      = 8
	DefaultRingMaxEvents = 4096
)

// Ring is a flight recorder: a Recorder that retains the last N
// *complete* traversals (and simulated plan timelines) in memory and
// discards older ones, so a long-running service can dump "what just
// happened" after a fault or on SIGQUIT without paying for a full
// trace of everything that ever ran.
//
// Events are grouped by TraversalID. A group accumulates in a
// per-shard map while open and is retired into the ring when its
// KindTraversalEnd / KindPlanEnd / KindRootDone arrives; retiring the
// keep+1'th group evicts the oldest. Events that trail a group's
// completion under the same ID — RunMany's root_done bracket, the
// resilient ladder's priced replay — are appended to the retained
// group, so one logical run stays one flight-recorder entry. Groups
// exceeding the per-traversal event cap keep their prefix and count
// the rest as truncated — memory is bounded by keep × maxEvents events
// plus whatever is in flight. Events with TraversalID 0 have no group
// to belong to and are counted as ignored.
//
// DumpTo replays the retained groups into any Recorder (each group
// contiguously, groups ordered by their first wall instant so a
// TraceWriter replay latches the correct epoch); WriteTrace is the
// one-call dump to a Chrome trace file. Both may run while traversals
// are still being recorded.
type Ring struct {
	keep      int
	maxEvents int

	shards [ringShards]ringShard

	done struct {
		sync.Mutex
		groups []*ringGroup          // retirement order; len <= keep
		index  map[uint64]*ringGroup // id -> retained group, for late events
	}

	evicted   atomic.Uint64
	truncated atomic.Uint64
	ignored   atomic.Uint64
}

type ringShard struct {
	mu   sync.Mutex
	open map[uint64]*ringGroup
}

type ringGroup struct {
	id     uint64
	events []Event
	// firstWall orders groups for replay. Within a group events arrive
	// in time order (the obs ordering contract), so the first
	// wall-clocked event carries the group's earliest instant.
	firstWall time.Time
	haveWall  bool
	truncated uint64
}

// RingStats is a point-in-time view of a Ring's retention counters.
type RingStats struct {
	Retained  int    // complete traversals currently held
	Open      int    // traversals still accumulating
	Evicted   uint64 // complete traversals pushed out by newer ones
	Truncated uint64 // events dropped by the per-traversal cap
	Ignored   uint64 // events with TraversalID 0
}

// NewRing returns a flight recorder retaining the last keep complete
// traversals, each capped at maxEvents events. Non-positive arguments
// take the package defaults.
func NewRing(keep, maxEvents int) *Ring {
	if keep <= 0 {
		keep = DefaultRingKeep
	}
	if maxEvents <= 0 {
		maxEvents = DefaultRingMaxEvents
	}
	r := &Ring{keep: keep, maxEvents: maxEvents}
	for i := range r.shards {
		r.shards[i].open = make(map[uint64]*ringGroup)
	}
	r.done.index = make(map[uint64]*ringGroup)
	return r
}

// Event implements Recorder.
func (r *Ring) Event(e Event) {
	if e.TraversalID == 0 {
		r.ignored.Add(1)
		return
	}
	sh := &r.shards[e.TraversalID%ringShards]
	sh.mu.Lock()
	g := sh.open[e.TraversalID]
	if g == nil {
		// Events can trail the group's completion: RunMany's root_done
		// bracket lands after the engine's traversal_end, and the
		// resilient ladder's sim timeline starts after the real
		// traversal ended. Append them to the retained group instead of
		// reopening — a reopened stub would never complete and would
		// accumulate forever in a long-running service.
		r.done.Lock()
		if dg := r.done.index[e.TraversalID]; dg != nil {
			if len(dg.events) < r.maxEvents {
				dg.events = append(dg.events, e)
			} else {
				r.truncated.Add(1)
			}
			r.done.Unlock()
			sh.mu.Unlock()
			return
		}
		r.done.Unlock()
		g = &ringGroup{id: e.TraversalID}
		sh.open[e.TraversalID] = g
	}
	if len(g.events) < r.maxEvents {
		g.events = append(g.events, e)
	} else {
		g.truncated++
	}
	if !g.haveWall && !e.Wall.IsZero() {
		g.firstWall, g.haveWall = e.Wall, true
	}
	// root_done also completes: if a dispatch bracket's closing event
	// opened a fresh group (its traversal group was already evicted),
	// the stub must still retire rather than linger open forever.
	complete := e.Kind == KindTraversalEnd || e.Kind == KindPlanEnd || e.Kind == KindRootDone
	if complete {
		delete(sh.open, e.TraversalID)
	}
	sh.mu.Unlock()
	if !complete {
		return
	}
	if g.truncated > 0 {
		r.truncated.Add(g.truncated)
	}
	r.done.Lock()
	r.done.groups = append(r.done.groups, g)
	r.done.index[g.id] = g
	if len(r.done.groups) > r.keep {
		evict := len(r.done.groups) - r.keep
		for _, old := range r.done.groups[:evict] {
			if r.done.index[old.id] == old {
				delete(r.done.index, old.id)
			}
		}
		n := copy(r.done.groups, r.done.groups[evict:])
		clear(r.done.groups[n:])
		r.done.groups = r.done.groups[:n]
		r.evicted.Add(uint64(evict))
	}
	r.done.Unlock()
}

// snapshot collects retained groups plus copies of still-open ones,
// ordered for replay: groups without wall instants (pure simulated
// timelines, whose timestamps are epoch-independent) first, then by
// first wall instant so a TraceWriter replay latches the earliest
// epoch and never produces negative timestamps.
func (r *Ring) snapshot() []*ringGroup {
	r.done.Lock()
	groups := make([]*ringGroup, 0, len(r.done.groups))
	for _, g := range r.done.groups {
		// Copy: retained groups can still receive trailing events
		// (dispatch brackets, sim timelines) while we replay.
		groups = append(groups, &ringGroup{id: g.id, firstWall: g.firstWall, haveWall: g.haveWall,
			events: append([]Event(nil), g.events...)})
	}
	r.done.Unlock()
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, g := range sh.open {
			cp := &ringGroup{id: g.id, firstWall: g.firstWall, haveWall: g.haveWall,
				events: append([]Event(nil), g.events...)}
			groups = append(groups, cp)
		}
		sh.mu.Unlock()
	}
	sort.SliceStable(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		if a.haveWall != b.haveWall {
			return !a.haveWall
		}
		return a.firstWall.Before(b.firstWall)
	})
	return groups
}

// DumpTo replays every retained (and still-open) traversal into rec,
// each group contiguous, and returns the number of groups replayed.
// Safe to call while recording continues; events arriving during the
// dump may or may not be included.
func (r *Ring) DumpTo(rec Recorder) int {
	rec = OrNop(rec)
	groups := r.snapshot()
	for _, g := range groups {
		for _, e := range g.events {
			rec.Event(e)
		}
	}
	return len(groups)
}

// WriteTrace dumps the retained traversals as a complete Chrome trace
// file to w — the flight-recorder dump format (see OBSERVABILITY.md).
func (r *Ring) WriteTrace(w io.Writer) error {
	tw := NewTraceWriter(w)
	r.DumpTo(tw)
	return tw.Close()
}

// Stats reports the retention counters.
func (r *Ring) Stats() RingStats {
	var open int
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		open += len(sh.open)
		sh.mu.Unlock()
	}
	r.done.Lock()
	retained := len(r.done.groups)
	r.done.Unlock()
	return RingStats{
		Retained:  retained,
		Open:      open,
		Evicted:   r.evicted.Load(),
		Truncated: r.truncated.Load(),
		Ignored:   r.ignored.Load(),
	}
}
