// Package xrand provides small deterministic pseudo-random number
// generators whose output is stable across Go releases and platforms.
//
// Experiment reproducibility requires that a (seed, SCALE, edgefactor)
// triple always yields the same graph. The standard library reserves
// the right to change the stream behind math/rand's top-level
// functions, so the generators here are implemented from their
// published reference algorithms instead: SplitMix64 (Steele et al.,
// "Fast splittable pseudorandom number generators") and xoshiro256**
// (Blackman & Vigna).
package xrand

import "math"

// SplitMix64 is a tiny 64-bit generator mainly used to seed other
// generators and to derive independent per-worker streams. The zero
// value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator: fast, 256 bits of state, and
// equidistributed enough for graph generation and sampling.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, as
// recommended by the xoshiro authors (an all-zero state is invalid, and
// SplitMix64 never produces one from four consecutive outputs).
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Uint64()
	}
	return &r
}

// Split returns a new generator with a stream independent of r's,
// suitable for handing to a parallel worker. It advances r.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the high bits to avoid modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller; the polar
// variant avoids trig and is fully portable).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
