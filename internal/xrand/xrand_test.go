package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 1234567 from the published SplitMix64
	// reference implementation (Vigna).
	sm := NewSplitMix64(1234567)
	got := []uint64{sm.Uint64(), sm.Uint64(), sm.Uint64()}
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	a := make([]uint64, 50)
	for i := range a {
		a[i] = child.Uint64()
	}
	b := make([]uint64, 50)
	for i := range b {
		b[i] = parent.Uint64()
	}
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("split stream matches parent at %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(99)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish sanity: 10 buckets, 100k draws, each bucket
	// within 5% of expectation.
	r := New(2024)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d has %d draws, want %d +/- 5%%", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func TestIntnCoversRange(t *testing.T) {
	r := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(8)] = true
	}
	if len(seen) != 8 {
		t.Errorf("Intn(8) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63() = %d is negative", v)
		}
	}
}
