package part

import (
	"testing"

	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
)

func rmatGraph(t *testing.T, scale, ef int, seed uint64) *graph.CSR {
	t.Helper()
	p := rmat.DefaultParams(scale, ef)
	p.Seed = seed
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatalf("rmat.Generate: %v", err)
	}
	return g
}

func lattice(t *testing.T, side int) *graph.CSR {
	t.Helper()
	var edges []graph.Edge
	id := func(x, y int) int32 { return int32(x*side + y) }
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			if x+1 < side {
				edges = append(edges, graph.Edge{From: id(x, y), To: id(x+1, y)})
			}
			if y+1 < side {
				edges = append(edges, graph.Edge{From: id(x, y), To: id(x, y+1)})
			}
		}
	}
	g, err := graph.Build(side*side, edges, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatalf("graph.Build: %v", err)
	}
	return g
}

func TestPartitionValidates(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"rmat10":    rmatGraph(t, 10, 8, 1),
		"rmat8":     rmatGraph(t, 8, 16, 5),
		"lattice20": lattice(t, 20),
	}
	for name, g := range graphs {
		for _, ranks := range []int{1, 2, 3, 4, 8, 16} {
			p, err := Partition(g, ranks)
			if err != nil {
				t.Fatalf("%s ranks=%d: %v", name, ranks, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s ranks=%d: %v", name, ranks, err)
			}
		}
	}
}

func TestPartitionRejectsBadRanks(t *testing.T) {
	g := lattice(t, 4)
	for _, ranks := range []int{0, -1} {
		if _, err := Partition(g, ranks); err == nil {
			t.Errorf("ranks=%d accepted", ranks)
		}
	}
}

func TestPartitionEdgeBalance(t *testing.T) {
	// On an R-MAT graph the edge-balanced cut must do much better than
	// a naive vertex-count cut would: no rank should hold more than
	// ~2.5x its fair share of adjacency entries (alignment and the
	// heavy head of the degree distribution cost some slack).
	g := rmatGraph(t, 12, 16, 3)
	const ranks = 4
	p, err := Partition(g, ranks)
	if err != nil {
		t.Fatal(err)
	}
	fair := float64(g.NumEdges()) / ranks
	for r, s := range p.Shards {
		edges := float64(len(s.Sub.Adj))
		if edges > 2.5*fair {
			t.Errorf("rank %d holds %.0f adjacency entries, fair share %.0f", r, edges, fair)
		}
	}
}

func TestWordRangesDisjoint(t *testing.T) {
	g := rmatGraph(t, 10, 8, 2)
	for _, ranks := range []int{2, 3, 7} {
		p, err := Partition(g, ranks)
		if err != nil {
			t.Fatal(err)
		}
		prevHi := 0
		for r := 0; r < ranks; r++ {
			lo, hi := p.Layout.WordRange(r)
			if lo < prevHi {
				t.Fatalf("ranks=%d: rank %d word range [%d,%d) overlaps previous end %d", ranks, r, lo, hi, prevHi)
			}
			if hi > lo {
				prevHi = hi
			}
		}
	}
}

func TestOwnerAndZeroCopy(t *testing.T) {
	g := rmatGraph(t, 9, 8, 4)
	p, err := Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		r := p.Layout.Owner(v)
		if !p.Shards[r].Owns(v) {
			t.Fatalf("Owner(%d) = %d but shard does not own it", v, r)
		}
	}
	// Zero-copy contract: each shard's Adj aliases the parent storage.
	for _, s := range p.Shards {
		if len(s.Sub.Adj) == 0 {
			continue
		}
		base := g.Offsets[s.Lo]
		if &s.Sub.Adj[0] != &g.Adj[base] {
			t.Fatalf("rank %d Adj is a copy, want alias", s.Rank)
		}
	}
}

func TestHasGhost(t *testing.T) {
	g := lattice(t, 10) // 100 vertices; with 64-alignment, 2 ranks split 64/36
	p, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Shards {
		for _, u := range s.Ghosts {
			if !s.HasGhost(u) {
				t.Fatalf("rank %d: HasGhost(%d) = false for listed ghost", s.Rank, u)
			}
			if s.Owns(u) {
				t.Fatalf("rank %d: owned vertex %d in ghost set", s.Rank, u)
			}
		}
		if s.HasGhost(s.Lo) && s.NumOwned() > 0 {
			t.Fatalf("rank %d: owned vertex reported as ghost", s.Rank)
		}
	}
}

func TestShrinkAdoptsOrphans(t *testing.T) {
	// Four ranks, each owning its home segment; rank 2 dies.
	owner := []int{0, 1, 2, 3}
	next, err := Shrink(owner, []bool{false, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 3} // lowest-loaded (tie → lowest rank) adopts
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("Shrink = %v, want %v", next, want)
		}
	}
	// The input is not mutated.
	for i, r := range []int{0, 1, 2, 3} {
		if owner[i] != r {
			t.Fatalf("Shrink mutated its input: %v", owner)
		}
	}
}

func TestShrinkBalancesLoad(t *testing.T) {
	// Rank 0 already carries segment 1 from an earlier death; when rank
	// 2 dies, its segment goes to rank 3 (load 1), not rank 0 (load 2).
	next, err := Shrink([]int{0, 0, 2, 3}, []bool{false, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 3, 3}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("Shrink = %v, want %v", next, want)
		}
	}
}

func TestShrinkCascades(t *testing.T) {
	// Kill ranks one at a time until a single survivor owns everything;
	// every intermediate map must assign each segment to a live rank.
	const n = 8
	owner := make([]int, n)
	for i := range owner {
		owner[i] = i
	}
	dead := make([]bool, n)
	for kill := 0; kill < n-1; kill++ {
		dead[kill] = true
		next, err := Shrink(owner, dead)
		if err != nil {
			t.Fatalf("kill %d: %v", kill, err)
		}
		for seg, r := range next {
			if r < 0 || r >= n || dead[r] {
				t.Fatalf("kill %d: segment %d assigned to dead/out-of-range rank %d", kill, seg, r)
			}
		}
		// Deterministic: the same inputs reassign identically.
		again, err := Shrink(owner, dead)
		if err != nil {
			t.Fatal(err)
		}
		for seg := range next {
			if next[seg] != again[seg] {
				t.Fatalf("kill %d: Shrink not deterministic at segment %d", kill, seg)
			}
		}
		owner = next
	}
	for seg, r := range owner {
		if r != n-1 {
			t.Fatalf("last survivor should own every segment, got owner[%d]=%d", seg, r)
		}
	}
}

func TestShrinkRejects(t *testing.T) {
	if _, err := Shrink([]int{0, 1}, []bool{false}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Shrink([]int{0, 1}, []bool{true, true}); err == nil {
		t.Error("no-survivor map accepted")
	}
	if _, err := Shrink([]int{0, 7}, []bool{false, false}); err == nil {
		t.Error("out-of-range owner accepted")
	}
}
