// Package part implements 1D vertex partitioning of a CSR graph for
// sharded BFS.
//
// The partitioner tiles the vertex space [0, |V|) into one contiguous,
// word-aligned (multiple-of-64) owned range per rank, balancing by
// adjacency entries rather than vertex count so power-law graphs don't
// starve low-numbered ranks. Each rank gets a zero-copy sub-CSR view
// of its owned rows plus a ghost map: the sorted set of remote
// vertices its edges reference. Word alignment is what lets every rank
// write its owned slice of a shared bitmap with plain (non-atomic)
// stores — no two ranks ever touch the same 64-bit word — and it makes
// the per-level frontier exchange a word-delta per owned range
// (bitmap.AppendDelta / ApplyDelta).
//
// This is the 1D decomposition of Buluç–Beamer's distributed
// direction-optimizing BFS (PAPERS.md): local row ownership, global
// column IDs, per-level frontier all-gather, collective direction
// decision.
package part

import (
	"fmt"
	"sort"

	"crossbfs/internal/graph"
)

// align is the ownership-boundary alignment in vertices. It matches
// the bitmap word size so per-rank bit ranges never share a word.
const align = 64

// Layout records where each rank's owned vertex range starts. Rank r
// owns [Starts[r], Starts[r+1]); Starts has Ranks()+1 entries, the
// first 0 and the last |V|. All interior boundaries are multiples of
// 64.
type Layout struct {
	Starts []int32
}

// Ranks returns the number of ranks in the layout.
func (l *Layout) Ranks() int { return len(l.Starts) - 1 }

// NumVertices returns the size of the partitioned vertex space.
func (l *Layout) NumVertices() int { return int(l.Starts[len(l.Starts)-1]) }

// Range returns rank r's owned vertex range [lo, hi).
func (l *Layout) Range(r int) (lo, hi int32) {
	return l.Starts[r], l.Starts[r+1]
}

// WordRange returns rank r's owned range in 64-bit bitmap words
// [loWord, hiWord). Because interior boundaries are 64-aligned, word
// ranges of distinct ranks are disjoint.
func (l *Layout) WordRange(r int) (loWord, hiWord int) {
	lo, hi := l.Range(r)
	return int(lo) / align, (int(hi) + align - 1) / align
}

// Owner returns the rank owning vertex v, by binary search over the
// boundary array.
func (l *Layout) Owner(v int32) int {
	// Find the first boundary strictly greater than v; the rank before
	// it owns v.
	lo, hi := 1, len(l.Starts)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if l.Starts[mid] > v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo - 1
}

// Shard is one rank's share of the graph.
//
// Sub is a zero-copy adjacency view of the owned rows: Sub's row v
// holds the neighbors of global vertex Lo+v, and its column IDs stay
// GLOBAL — a neighbor u belongs to this shard iff Lo <= u < Hi. Sub is
// not a standalone graph (its column space exceeds its row space), so
// it must not be passed to code expecting a self-contained CSR; the
// BFS kernels index it by local row and route columns through
// Layout.Owner.
type Shard struct {
	Rank   int
	Lo, Hi int32 // owned global vertex range [Lo, Hi)
	Sub    *graph.CSR

	// Ghosts lists, sorted ascending, every remote vertex referenced
	// by this shard's edges — the vertices whose frontier membership
	// this rank needs each bottom-up level, and the destinations of
	// its top-down claim messages.
	Ghosts []int32
}

// NumOwned returns the number of vertices this shard owns.
func (s *Shard) NumOwned() int { return int(s.Hi - s.Lo) }

// Owns reports whether global vertex v is owned by this shard.
func (s *Shard) Owns(v int32) bool { return v >= s.Lo && v < s.Hi }

// HasGhost reports whether remote vertex v is referenced by this
// shard's edges, by binary search over the sorted ghost set.
func (s *Shard) HasGhost(v int32) bool {
	i := sort.Search(len(s.Ghosts), func(i int) bool { return s.Ghosts[i] >= v })
	return i < len(s.Ghosts) && s.Ghosts[i] == v
}

// Partitioned is a graph cut into per-rank shards under one layout.
type Partitioned struct {
	Graph  *graph.CSR
	Layout Layout
	Shards []*Shard
}

// Partition tiles g's vertices across ranks contiguous, 64-aligned,
// edge-balanced owned ranges and builds each rank's shard. ranks must
// be >= 1; ranks exceeding |V|/64 produce trailing empty shards, which
// the sharded engine tolerates.
func Partition(g *graph.CSR, ranks int) (*Partitioned, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("part: ranks must be >= 1, got %d", ranks)
	}
	n := g.NumVertices()
	starts := make([]int32, ranks+1)
	// Greedy edge-balanced sweep: advance each boundary until the
	// cumulative adjacency share reaches r/ranks of the total, then
	// round up to the next 64-vertex alignment point.
	total := g.NumEdges()
	v := 0
	for r := 1; r < ranks; r++ {
		target := total * int64(r) / int64(ranks)
		for v < n && g.Offsets[v] < target {
			v++
		}
		v = (v + align - 1) / align * align
		if v > n {
			v = n
		}
		if int(starts[r-1]) > v {
			v = int(starts[r-1]) // keep boundaries monotone
		}
		starts[r] = int32(v)
	}
	starts[ranks] = int32(n)
	// A tiny graph can leave a later boundary below an earlier one
	// only via the monotone clamp above; the final entry may still
	// undershoot n for empty tails, which is fine (empty shards).
	p := &Partitioned{Graph: g, Layout: Layout{Starts: starts}}
	p.Shards = make([]*Shard, ranks)
	for r := 0; r < ranks; r++ {
		p.Shards[r] = buildShard(g, &p.Layout, r)
	}
	return p, nil
}

// buildShard cuts rank r's rows out of g. The offset slice is rebased
// (one small allocation per shard); the adjacency storage is aliased,
// not copied.
func buildShard(g *graph.CSR, l *Layout, r int) *Shard {
	lo, hi := l.Range(r)
	nOwned := int(hi - lo)
	offs := make([]int64, nOwned+1)
	base := g.Offsets[lo]
	for i := 0; i <= nOwned; i++ {
		offs[i] = g.Offsets[int(lo)+i] - base
	}
	sub := &graph.CSR{
		Offsets: offs,
		Adj:     g.Adj[base:g.Offsets[hi]],
	}
	// Collect the distinct remote endpoints.
	seen := make(map[int32]struct{})
	for _, u := range sub.Adj {
		if u < lo || u >= hi {
			seen[u] = struct{}{}
		}
	}
	ghosts := make([]int32, 0, len(seen))
	for u := range seen {
		ghosts = append(ghosts, u)
	}
	sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })
	return &Shard{Rank: r, Lo: lo, Hi: hi, Sub: sub, Ghosts: ghosts}
}

// Validate checks the partition's structural invariants: the layout
// tiles [0, |V|) with 64-aligned monotone boundaries, every shard's
// sub-CSR reproduces the owned rows of the source graph exactly, and
// the ghost set is sorted, distinct, and exactly the set of remote
// endpoints. Quadratic-ish in edges; test and tooling use only.
func (p *Partitioned) Validate() error {
	l := &p.Layout
	n := p.Graph.NumVertices()
	if len(l.Starts) < 2 || l.Starts[0] != 0 || int(l.Starts[len(l.Starts)-1]) != n {
		return fmt.Errorf("part: layout does not tile [0,%d): %v", n, l.Starts)
	}
	for r := 1; r < len(l.Starts)-1; r++ {
		if l.Starts[r] < l.Starts[r-1] {
			return fmt.Errorf("part: boundary %d decreases: %v", r, l.Starts)
		}
		if l.Starts[r]%align != 0 {
			return fmt.Errorf("part: boundary %d = %d not %d-aligned", r, l.Starts[r], align)
		}
	}
	if len(p.Shards) != l.Ranks() {
		return fmt.Errorf("part: %d shards for %d ranks", len(p.Shards), l.Ranks())
	}
	for r, s := range p.Shards {
		lo, hi := l.Range(r)
		if s.Rank != r || s.Lo != lo || s.Hi != hi {
			return fmt.Errorf("part: shard %d range mismatch: [%d,%d) vs layout [%d,%d)", r, s.Lo, s.Hi, lo, hi)
		}
		if s.Sub.NumVertices() != s.NumOwned() {
			return fmt.Errorf("part: shard %d has %d rows, owns %d", r, s.Sub.NumVertices(), s.NumOwned())
		}
		ghostWant := make(map[int32]struct{})
		for v := lo; v < hi; v++ {
			want := p.Graph.Neighbors(v)
			got := s.Sub.Neighbors(v - lo)
			if len(want) != len(got) {
				return fmt.Errorf("part: shard %d row %d degree %d, want %d", r, v, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					return fmt.Errorf("part: shard %d row %d neighbor %d is %d, want %d", r, v, i, got[i], want[i])
				}
				if !s.Owns(want[i]) {
					ghostWant[want[i]] = struct{}{}
				}
			}
			if o := l.Owner(v); o != r {
				return fmt.Errorf("part: Owner(%d) = %d, want %d", v, o, r)
			}
		}
		if len(s.Ghosts) != len(ghostWant) {
			return fmt.Errorf("part: shard %d has %d ghosts, want %d", r, len(s.Ghosts), len(ghostWant))
		}
		for i, u := range s.Ghosts {
			if i > 0 && s.Ghosts[i-1] >= u {
				return fmt.Errorf("part: shard %d ghosts not sorted-distinct at %d", r, i)
			}
			if _, ok := ghostWant[u]; !ok {
				return fmt.Errorf("part: shard %d ghost %d is not a remote endpoint", r, u)
			}
		}
	}
	return nil
}

// Shrink reassigns every segment currently owned by a dead rank onto
// the surviving ranks. owner[seg] is the rank owning segment seg (the
// identity mapping before any failure), dead[r] marks failed ranks.
// Orphaned segments are adopted deterministically: segments are walked
// in ascending order and each goes to the live rank owning the fewest
// segments at that point (ties break toward the lowest rank), so every
// survivor set yields the same balanced handoff on every run. The
// input slice is not modified; Shrink returns the new assignment, or
// an error when no rank survives.
func Shrink(owner []int, dead []bool) ([]int, error) {
	if len(owner) != len(dead) {
		return nil, fmt.Errorf("part: shrink: %d segments vs %d ranks", len(owner), len(dead))
	}
	load := make([]int, len(dead))
	anyLive := false
	for _, d := range dead {
		if !d {
			anyLive = true
			break
		}
	}
	if !anyLive {
		return nil, fmt.Errorf("part: shrink: no surviving ranks")
	}
	next := make([]int, len(owner))
	copy(next, owner)
	for seg, r := range next {
		if r < 0 || r >= len(dead) {
			return nil, fmt.Errorf("part: shrink: segment %d owned by out-of-range rank %d", seg, r)
		}
		if !dead[r] {
			load[r]++
			continue
		}
		next[seg] = -1 // orphaned; adopted below once live loads are known
	}
	for seg, r := range next {
		if r >= 0 {
			continue
		}
		best := -1
		for cand, d := range dead {
			if d {
				continue
			}
			if best < 0 || load[cand] < load[best] {
				best = cand
			}
		}
		next[seg] = best
		load[best]++
	}
	return next, nil
}
