package bfs

import (
	"math"
	"testing"

	"crossbfs/internal/invariant"
)

// mnReference recomputes the Fig. 4 switching rule from scratch with
// explicit normalization, independently of MN.Choose, so the fuzzer
// can catch a divergence between the implementation and the paper's
// published rule.
func mnReference(m, n float64, s StepInfo) Direction {
	if !(m > 0) {
		m = DefaultM
	}
	if !(n > 0) {
		n = DefaultN
	}
	if float64(s.FrontierEdges) >= float64(s.TotalEdges)/m ||
		float64(s.FrontierVertices) >= float64(s.TotalVertices)/n {
		return BottomUp
	}
	return TopDown
}

// FuzzHeuristicSwitch fuzzes the hybrid switching policies over
// arbitrary (including degenerate) parameters and frontier traces:
//
//   - Choose must return a valid Direction, never panic, and for MN it
//     must match an independently computed normalized Fig. 4 rule.
//   - Non-positive/NaN M or N must behave exactly like the
//     DefaultM/DefaultN fallback (the M/N=0 guard).
//   - Driven through a real traversal, the policy must yield a valid
//     direction sequence: step 1 expands the single-vertex source
//     frontier, so on a connected seed it is top-down unless the
//     normalized thresholds are genuinely crossed already (tiny
//     graphs), and never an unknown direction.
func FuzzHeuristicSwitch(f *testing.F) {
	f.Add(64.0, 64.0, uint64(1), []byte{1, 10, 200, 50, 3})
	f.Add(0.0, 0.0, uint64(2), []byte{1, 1, 1})
	f.Add(-3.5, math.Inf(1), uint64(3), []byte{255, 0, 255})
	f.Add(math.NaN(), 2.0, uint64(4), []byte{4, 4, 4, 4})
	f.Add(1e-300, 1e300, uint64(5), []byte{7})

	f.Fuzz(func(t *testing.T, m, n float64, seed uint64, trace []byte) {
		policy := MN{M: m, N: n}
		fallback := MN{M: DefaultM, N: DefaultN}
		degenerate := !(m > 0) && !(n > 0)

		// Synthetic trace: each byte pair becomes a frontier snapshot
		// against fixed graph totals, plus hand-picked extremes.
		const totalV, totalE = 1 << 20, 16 << 20
		infos := []StepInfo{
			{Step: 1, FrontierVertices: 1, FrontierEdges: 0, UnvisitedVertices: totalV - 1, TotalVertices: totalV, TotalEdges: totalE},
			{Step: 2, FrontierVertices: totalV, FrontierEdges: totalE, TotalVertices: totalV, TotalEdges: totalE},
			{Step: 3, TotalVertices: 0, TotalEdges: 0}, // empty graph guard
		}
		for i := 0; i+1 < len(trace) && i < 64; i += 2 {
			fv := int64(trace[i]) * (totalV / 256)
			fe := int64(trace[i+1]) * (totalE / 256)
			infos = append(infos, StepInfo{
				Step:              2 + i/2,
				FrontierVertices:  fv,
				FrontierEdges:     fe,
				UnvisitedVertices: totalV - fv,
				TotalVertices:     totalV,
				TotalEdges:        totalE,
			})
		}
		for _, info := range infos {
			d := policy.Choose(info)
			if d != TopDown && d != BottomUp {
				t.Fatalf("MN{%g,%g}.Choose(%+v) = %v, not a valid direction", m, n, info, d)
			}
			if want := mnReference(m, n, info); d != want {
				t.Fatalf("MN{%g,%g}.Choose(%+v) = %s, reference rule says %s", m, n, info, d, want)
			}
			if degenerate {
				if want := fallback.Choose(info); d != want {
					t.Fatalf("degenerate MN{%g,%g} chose %s, DefaultM/DefaultN fallback says %s", m, n, d, want)
				}
			}
		}

		// Stateful policies must also never emit an invalid direction,
		// whatever their parameters.
		ab := &AlphaBeta{Alpha: m, Beta: n}
		hh := &HongHybrid{Threshold: m}
		for _, info := range infos {
			if d := ab.Choose(info); d != TopDown && d != BottomUp {
				t.Fatalf("AlphaBeta{%g,%g}.Choose = %v", m, n, d)
			}
			if d := hh.Choose(info); d != TopDown && d != BottomUp {
				t.Fatalf("HongHybrid{%g}.Choose = %v", m, d)
			}
		}

		// End-to-end: drive a real hybrid traversal on a small connected
		// graph and check the recorded direction sequence.
		g, src, err := randomGraph(seed)
		if err != nil {
			t.Skip("graph build rejected fuzz input")
		}
		r, err := Run(g, src, Options{Policy: policy, CheckInvariants: true})
		if !(m > 0) || !(n > 0) {
			// Run validates up front; degenerate thresholds must be
			// rejected there, not limp through on the fallback.
			if err == nil {
				t.Fatalf("Run accepted degenerate MN{%g,%g}", m, n)
			}
			return
		}
		if err != nil {
			t.Fatalf("Run(MN{%g,%g}): %v", m, n, err)
		}
		if err := invariant.Check(g, src, r.Parent, r.Level); err != nil {
			t.Fatalf("invariants after hybrid run: %v", err)
		}
		// Replay the trace: every recorded direction must match what a
		// fresh policy would choose for that step's frontier, and step 1
		// (frontier = {source}) must follow the rule exactly — bottom-up
		// there is only legal if the thresholds are genuinely crossed by
		// a single vertex, which on non-trivial graphs means top-down.
		tr, err := TraceFrom(g, src)
		if err != nil {
			t.Fatalf("TraceFrom: %v", err)
		}
		if len(tr.Steps) != len(r.Directions) {
			t.Fatalf("trace has %d steps, run recorded %d directions", len(tr.Steps), len(r.Directions))
		}
		for i, s := range tr.Steps {
			info := StepInfo{
				Step:             i + 1,
				FrontierVertices: s.FrontierVertices,
				FrontierEdges:    s.FrontierEdges,
				TotalVertices:    s.GraphVertices,
				TotalEdges:       g.NumEdges(),
			}
			if want := mnReference(m, n, info); r.Directions[i] != want {
				t.Fatalf("step %d: recorded %s, rule says %s (info %+v)", i+1, r.Directions[i], want, info)
			}
		}
	})
}
