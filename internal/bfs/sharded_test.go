package bfs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
)

// latticeGraph returns a side×side 4-neighbor grid — the high-diameter
// counterpoint to R-MAT's low-diameter skew, exercising many levels
// (and therefore many collective rounds) per traversal.
func latticeGraph(t *testing.T, side int) *graph.CSR {
	t.Helper()
	var edges []graph.Edge
	at := func(r, c int) int32 { return int32(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				edges = append(edges, graph.Edge{From: at(r, c), To: at(r, c+1)})
			}
			if r+1 < side {
				edges = append(edges, graph.Edge{From: at(r, c), To: at(r + 1, c)})
			}
		}
	}
	return mustBuild(t, side*side, edges)
}

// shardedTestGraphs is the cross-family equivalence corpus: skewed
// low-diameter R-MAT, a high-diameter lattice, and the degenerate
// path/star shapes that stress single-rank ownership of the whole
// frontier.
func shardedTestGraphs(t *testing.T) map[string]*graph.CSR {
	t.Helper()
	return map[string]*graph.CSR{
		"rmat10":  testRMAT(t, 10, 8, 11),
		"rmat9":   testRMAT(t, 9, 16, 5),
		"lattice": latticeGraph(t, 24),
		"path":    pathGraph(t, 300),
		"star":    starGraph(t, 300),
	}
}

// TestShardedMatchesSerial is the tentpole equivalence property: for
// every graph family and every rank count, the partitioned engine's
// level map and invariant-checked parent tree agree with the serial
// reference — remote claims, delta exchanges and the collective switch
// included.
func TestShardedMatchesSerial(t *testing.T) {
	for name, g := range shardedTestGraphs(t) {
		src := firstUsable(t, g)
		want, err := Serial(g, src)
		if err != nil {
			t.Fatalf("%s: Serial: %v", name, err)
		}
		for _, ranks := range []int{1, 2, 3, 4, 8} {
			e := NewShardedEngine(ranks, 14, 24)
			e.SetCheckInvariants(true)
			ws := NewWorkspace(g.NumVertices())
			// Two traversals on the same workspace: the second also
			// proves the rank-state pool and exchange slots reset.
			for round := 0; round < 2; round++ {
				label := fmt.Sprintf("%s ranks=%d round=%d", name, ranks, round)
				got, err := e.Run(g, src, ws)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				sameTraversal(t, label, want, got)
				mustInvariants(t, label, g, got)
				if err := Validate(g, got); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(got.Exchanges) != got.NumLevels() {
					t.Fatalf("%s: %d exchange records for %d levels",
						label, len(got.Exchanges), got.NumLevels())
				}
			}
		}
	}
}

// TestShardedDirectionsMatchHybrid pins the collective direction
// switch: because the ranks all-reduce the exact global (|V|cq, |E|cq,
// unvisited) triple, the sharded engine must make the same per-level
// direction choices as the single-box hybrid under the same (M, N) —
// at every rank count.
func TestShardedDirectionsMatchHybrid(t *testing.T) {
	for name, g := range shardedTestGraphs(t) {
		src := firstUsable(t, g)
		for _, mn := range [][2]float64{{14, 24}, {64, 64}, {4, 4}} {
			want, err := Hybrid(g, src, mn[0], mn[1], 1)
			if err != nil {
				t.Fatalf("%s: Hybrid: %v", name, err)
			}
			for _, ranks := range []int{1, 2, 4, 8} {
				label := fmt.Sprintf("%s mn=%v ranks=%d", name, mn, ranks)
				got, err := NewShardedEngine(ranks, mn[0], mn[1]).Run(g, src, nil)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(got.Directions) != len(want.Directions) {
					t.Fatalf("%s: %d levels, hybrid ran %d",
						label, len(got.Directions), len(want.Directions))
				}
				for i := range want.Directions {
					if got.Directions[i] != want.Directions[i] {
						t.Fatalf("%s: step %d ran %v, hybrid ran %v",
							label, i+1, got.Directions[i], want.Directions[i])
					}
				}
			}
		}
	}
}

// TestShardedExchangeAccounting checks the per-level communication
// records: byte counts land on the matching direction, bottom-up
// levels exchange deltas only when there is more than one rank, and
// the exactly-once arbitration shows up as GhostApplied <= GhostSent
// with every applied claim accounted for by a discovered vertex.
func TestShardedExchangeAccounting(t *testing.T) {
	g := testRMAT(t, 10, 8, 11)
	src := firstUsable(t, g)
	for _, ranks := range []int{2, 4, 8} {
		r, err := NewShardedEngine(ranks, 14, 24).Run(g, src, nil)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		var applied int64
		for i, ex := range r.Exchanges {
			if ex.Step != i+1 || ex.Dir != r.Directions[i] {
				t.Fatalf("ranks=%d: exchange %d is (step %d, %v), want (step %d, %v)",
					ranks, i, ex.Step, ex.Dir, i+1, r.Directions[i])
			}
			switch ex.Dir {
			case TopDown:
				if ex.FrontierBytes != 0 {
					t.Errorf("ranks=%d step %d: top-down level reports %d frontier delta bytes",
						ranks, ex.Step, ex.FrontierBytes)
				}
			case BottomUp:
				if ex.GhostBytes != 0 || ex.GhostSent != 0 {
					t.Errorf("ranks=%d step %d: bottom-up level reports ghost traffic (%d bytes, %d sent)",
						ranks, ex.Step, ex.GhostBytes, ex.GhostSent)
				}
				if ex.FrontierBytes == 0 {
					t.Errorf("ranks=%d step %d: bottom-up level exchanged no delta bytes", ranks, ex.Step)
				}
			}
			if ex.GhostApplied > ex.GhostSent {
				t.Errorf("ranks=%d step %d: %d ghosts applied but only %d sent",
					ranks, ex.Step, ex.GhostApplied, ex.GhostSent)
			}
			applied += ex.GhostApplied
		}
		// Every applied ghost is a discovered vertex (minus source, which
		// is never a ghost), so the total can't exceed the visited count.
		if applied >= r.VisitedCount {
			t.Fatalf("ranks=%d: %d ghosts applied, only %d vertices visited", ranks, applied, r.VisitedCount)
		}
		// On a skewed R-MAT with several ranks some duplicate claims must
		// lose arbitration — that's the exactly-once mechanism working.
		var sent int64
		for _, ex := range r.Exchanges {
			sent += ex.GhostSent
		}
		if sent > 0 && applied == sent {
			t.Logf("ranks=%d: no duplicate ghost claims on this graph (sent=%d)", ranks, sent)
		}
	}
}

// lockedRecorder is a goroutine-safe event sink: sharded traversals
// emit per-rank exchange/ghost events concurrently.
type lockedRecorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *lockedRecorder) Event(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// TestShardedObservedEvents checks the telemetry contract: one
// collective decision per level, exchange start/end paired per rank
// per level, ghost updates only on top-down levels, and all per-rank
// indices in range.
func TestShardedObservedEvents(t *testing.T) {
	g := testRMAT(t, 10, 8, 11)
	src := firstUsable(t, g)
	const ranks = 4
	rec := &lockedRecorder{}
	e := NewShardedEngine(ranks, 14, 24)
	r, err := e.RunObserved(context.Background(), g, src, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	levels := r.NumLevels()
	var collectives, levelEvents, starts, ends, ghosts int
	type lane struct {
		step int32
		rank int32
	}
	open := make(map[lane]int)
	for _, ev := range rec.events {
		switch ev.Kind {
		case obs.KindCollective:
			collectives++
			if ev.Workers != ranks {
				t.Errorf("collective at step %d reports %d ranks, want %d", ev.Step, ev.Workers, ranks)
			}
		case obs.KindLevel:
			levelEvents++
		case obs.KindExchangeStart:
			starts++
			open[lane{ev.Step, ev.Index}]++
		case obs.KindExchangeEnd:
			ends++
			open[lane{ev.Step, ev.Index}]--
			if ev.Index < 0 || ev.Index >= ranks {
				t.Errorf("exchange end with rank %d out of [0,%d)", ev.Index, ranks)
			}
			if ev.Bytes < 0 {
				t.Errorf("exchange end at step %d reports negative bytes", ev.Step)
			}
		case obs.KindGhostUpdate:
			ghosts++
			if r.Directions[ev.Step-1] != TopDown {
				t.Errorf("ghost update on step %d, which ran %v", ev.Step, r.Directions[ev.Step-1])
			}
		}
	}
	if collectives != levels {
		t.Errorf("%d collective events for %d levels", collectives, levels)
	}
	if levelEvents != levels {
		t.Errorf("%d level events for %d levels", levelEvents, levels)
	}
	if starts != levels*ranks || ends != levels*ranks {
		t.Errorf("exchange events: %d starts, %d ends, want %d each", starts, ends, levels*ranks)
	}
	for l, n := range open {
		if n != 0 {
			t.Errorf("step %d rank %d: %+d unpaired exchange events", l.step, l.rank, n)
		}
	}
	var tdLevels int
	for _, d := range r.Directions {
		if d == TopDown {
			tdLevels++
		}
	}
	if ghosts != tdLevels*ranks {
		t.Errorf("%d ghost updates, want %d (td levels %d × ranks %d)", ghosts, tdLevels*ranks, tdLevels, ranks)
	}
}

// TestShardedCancelMidTraversal is the pool-hygiene property under
// cancellation: a traversal cancelled between collective rounds must
// return context.Canceled, terminate every rank goroutine before Run
// returns, and leave the workspace so clean the next traversal on it
// reproduces the serial reference.
func TestShardedCancelMidTraversal(t *testing.T) {
	g := testRMAT(t, 10, 8, 2)
	src := firstUsable(t, g)
	want, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for _, ranks := range []int{1, 2, 4, 8} {
		e := NewShardedEngine(ranks, 14, 24)
		ws := NewWorkspace(g.NumVertices())
		// Cancel after a handful of Err() polls: with ranks polling once
		// per level each, this lands mid-traversal, often mid-exchange.
		for _, after := range []int{1, 2, 4} {
			ctx := newStepCancelCtx(after)
			r, err := e.RunContext(ctx, g, src, ws)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("ranks=%d after=%d: err = %v, want context.Canceled", ranks, after, err)
			}
			if r != nil {
				t.Fatalf("ranks=%d after=%d: cancelled traversal returned a result", ranks, after)
			}
			settleGoroutines(t, fmt.Sprintf("sharded ranks=%d", ranks), base)
		}
		got, err := e.Run(g, src, ws)
		if err != nil {
			t.Fatalf("ranks=%d: post-cancel reuse: %v", ranks, err)
		}
		sameTraversal(t, fmt.Sprintf("sharded ranks=%d post-cancel reuse", ranks), want, got)
	}
	settleGoroutines(t, "sharded all ranks", base)
}

// TestShardedPolicyPanicContained checks fault containment across the
// collective: a panic inside the leader's policy call must surface as
// a *PanicError from Run with every rank goroutine released (a naive
// barrier would deadlock the other ranks forever).
func TestShardedPolicyPanicContained(t *testing.T) {
	g := testRMAT(t, 9, 8, 2)
	src := firstUsable(t, g)
	base := runtime.NumGoroutine()
	e := NewShardedAdaptive(4, "boom", func() Policy {
		return PolicyFunc(func(s StepInfo) Direction {
			if s.Step == 3 {
				panic("collective kaboom")
			}
			return TopDown
		})
	})
	ws := NewWorkspace(g.NumVertices())
	_, err := e.Run(g, src, ws)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "collective kaboom" {
		t.Errorf("PanicError.Value = %v, want %q", pe.Value, "collective kaboom")
	}
	settleGoroutines(t, "sharded panic", base)

	// Workspace survives pool-clean.
	want, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewShardedEngine(4, 14, 24).Run(g, src, ws)
	if err != nil {
		t.Fatalf("post-panic reuse: %v", err)
	}
	sameTraversal(t, "sharded post-panic reuse", want, got)
}

// TestShardedRejectsBadInputs covers the validation edges: bad source,
// non-positive rank count, invalid (M, N).
func TestShardedRejectsBadInputs(t *testing.T) {
	g := pathGraph(t, 8)
	if _, err := NewShardedEngine(2, 14, 24).Run(g, 99, nil); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := NewShardedEngine(0, 14, 24).Run(g, 0, nil); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := NewShardedEngine(2, -1, 24).Run(g, 0, nil); err == nil {
		t.Error("negative M accepted")
	}
}

// TestShardedName pins the engine's self-description (reports and
// benchmark labels key on it).
func TestShardedName(t *testing.T) {
	if got, want := NewShardedEngine(4, 14, 24).Name(), "sharded(4,hybrid(14,24))"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
}
