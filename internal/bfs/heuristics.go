package bfs

import "fmt"

// This file implements the switching heuristics from the work the
// paper builds on and compares against (§VI), as alternative Policy
// implementations:
//
//   - Beamer, Asanovic, Patterson (SC'12): the original
//     direction-optimizing heuristic with alpha/beta tuning constants.
//   - Hong, Oguntebi, Olukotun (PACT'11): a read-based (bitmap)
//     switch driven by frontier growth.
//
// Having them lets the experiments compare the paper's (M, N) rule
// against its ancestors on equal footing.

// AlphaBeta is Beamer's SC'12 heuristic, which is stateful: while
// top-down, switch to bottom-up when the frontier's edge work m_f
// exceeds the unexplored edge work m_u scaled by 1/alpha; while
// bottom-up, switch back to top-down when the frontier has shrunk
// below |V|/beta vertices. Beamer's tuned defaults are alpha=14,
// beta=24. Use NewAlphaBeta for each traversal (the phase is
// per-traversal state).
type AlphaBeta struct {
	Alpha, Beta float64
	bottomUp    bool // current phase
}

// NewAlphaBeta returns a fresh per-traversal policy. Non-positive
// arguments select Beamer's published constants (14, 24).
func NewAlphaBeta(alpha, beta float64) *AlphaBeta {
	if alpha <= 0 {
		alpha = 14
	}
	if beta <= 0 {
		beta = 24
	}
	return &AlphaBeta{Alpha: alpha, Beta: beta}
}

// Validate reports whether the constants are usable.
func (p *AlphaBeta) Validate() error {
	if p.Alpha <= 0 || p.Beta <= 0 {
		return fmt.Errorf("bfs: alpha/beta must be positive, got (%g, %g)", p.Alpha, p.Beta)
	}
	return nil
}

// Choose implements Policy. Non-positive or NaN constants (a policy
// built without NewAlphaBeta) fall back to Beamer's published values
// rather than producing a divide-by-zero comparison that freezes the
// policy in one direction.
func (p *AlphaBeta) Choose(s StepInfo) Direction {
	alpha, beta := p.Alpha, p.Beta
	if !(alpha > 0) { // catches zero, negatives, and NaN
		alpha = 14
	}
	if !(beta > 0) {
		beta = 24
	}
	if !p.bottomUp {
		// m_u: edges incident to unexplored vertices. StepInfo does
		// not carry the exact figure; the unexplored share of all
		// edges is the standard approximation (exact in expectation
		// for degree-uncorrelated level sets).
		mf := float64(s.FrontierEdges)
		mu := float64(s.TotalEdges)
		if s.TotalVertices > 0 {
			mu *= float64(s.UnvisitedVertices) / float64(s.TotalVertices)
		}
		if mf > mu/alpha {
			p.bottomUp = true
		}
	} else {
		if float64(s.FrontierVertices) < float64(s.TotalVertices)/beta {
			p.bottomUp = false
		}
	}
	if p.bottomUp {
		return BottomUp
	}
	return TopDown
}

// HongHybrid is the PACT'11 heuristic of Hong et al.: switch from the
// queue-based kernel to the read-based (bitmap) kernel once the
// frontier exceeds a fixed fraction of the vertices, and never switch
// back. The original switches between two top-down implementations;
// mapped onto this codebase's kernels, the read-based phase is the
// bitmap bottom-up. Stateful: use NewHongHybrid per traversal.
type HongHybrid struct {
	// Threshold is the frontier fraction of |V| that triggers the
	// switch; Hong et al. use ~3%.
	Threshold float64
	switched  bool
}

// NewHongHybrid returns a per-traversal policy instance with the
// published threshold.
func NewHongHybrid() *HongHybrid { return &HongHybrid{Threshold: 0.03} }

// NeedsFrontierEdges implements EdgeCountOptOut: the rule compares
// only |V|cq against the threshold, so the runner can skip the
// per-level degree pass.
func (p *HongHybrid) NeedsFrontierEdges() bool { return false }

// Choose implements Policy. A non-positive or NaN threshold (a
// zero-value policy built without NewHongHybrid) falls back to the
// published 3% rather than switching on the very first frontier.
func (p *HongHybrid) Choose(s StepInfo) Direction {
	threshold := p.Threshold
	if !(threshold > 0) { // catches zero, negatives, and NaN
		threshold = 0.03
	}
	if !p.switched && float64(s.FrontierVertices) >= threshold*float64(s.TotalVertices) {
		p.switched = true
	}
	if p.switched {
		return BottomUp
	}
	return TopDown
}
