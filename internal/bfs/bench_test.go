package bfs

import (
	"sync"
	"testing"

	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
)

var (
	benchOnce sync.Once
	benchG    *graph.CSR
	benchSrc  int32
	benchErr  error
)

func benchGraph(b *testing.B) (*graph.CSR, int32) {
	b.Helper()
	benchOnce.Do(func() {
		benchG, benchErr = rmat.Generate(rmat.DefaultParams(15, 16))
		if benchErr != nil {
			return
		}
		for v := 0; v < benchG.NumVertices(); v++ {
			if benchG.Degree(int32(v)) > 0 {
				benchSrc = int32(v)
				return
			}
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchG, benchSrc
}

func benchTEPS(b *testing.B, r *Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(r.TraversedEdges * 4) // adjacency bytes touched
}

func BenchmarkSerial(b *testing.B) {
	g, src := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Serial(g, src)
		benchTEPS(b, r, err)
	}
}

func BenchmarkTopDownSerialKernels(b *testing.B) {
	g, src := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunTopDown(g, src, 1)
		benchTEPS(b, r, err)
	}
}

func BenchmarkTopDownParallel(b *testing.B) {
	g, src := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunTopDown(g, src, 0)
		benchTEPS(b, r, err)
	}
}

func BenchmarkBottomUp(b *testing.B) {
	g, src := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunBottomUp(g, src, 0)
		benchTEPS(b, r, err)
	}
}

func BenchmarkHybrid(b *testing.B) {
	g, src := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Hybrid(g, src, 64, 64, 0)
		benchTEPS(b, r, err)
	}
}

func BenchmarkComputeTrace(b *testing.B) {
	g, src := benchGraph(b)
	r, err := Serial(g, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeTrace(g, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	g, src := benchGraph(b)
	r, err := Serial(g, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Validate(g, r); err != nil {
			b.Fatal(err)
		}
	}
}
