package bfs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
)

var (
	benchOnce sync.Once
	benchG    *graph.CSR
	benchSrc  int32
	benchErr  error
)

func benchGraph(b *testing.B) (*graph.CSR, int32) {
	b.Helper()
	benchOnce.Do(func() {
		benchG, benchErr = rmat.Generate(rmat.DefaultParams(15, 16))
		if benchErr != nil {
			return
		}
		for v := 0; v < benchG.NumVertices(); v++ {
			if benchG.Degree(int32(v)) > 0 {
				benchSrc = int32(v)
				return
			}
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchG, benchSrc
}

func benchTEPS(b *testing.B, r *Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(r.TraversedEdges * 4) // adjacency bytes touched
}

func BenchmarkSerial(b *testing.B) {
	g, src := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Serial(g, src)
		benchTEPS(b, r, err)
	}
}

func BenchmarkTopDownSerialKernels(b *testing.B) {
	g, src := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunTopDown(g, src, 1)
		benchTEPS(b, r, err)
	}
}

func BenchmarkTopDownParallel(b *testing.B) {
	g, src := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunTopDown(g, src, 0)
		benchTEPS(b, r, err)
	}
}

func BenchmarkBottomUp(b *testing.B) {
	g, src := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunBottomUp(g, src, 0)
		benchTEPS(b, r, err)
	}
}

func BenchmarkHybrid(b *testing.B) {
	g, src := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Hybrid(g, src, 64, 64, 0)
		benchTEPS(b, r, err)
	}
}

// BenchmarkRunReuseWorkspace is BenchmarkHybrid through a caller-held
// workspace — the steady-state pooled path. allocs/op here vs
// BenchmarkHybrid is the pooling win the issue's acceptance gate
// measures.
func BenchmarkRunReuseWorkspace(b *testing.B) {
	g, src := benchGraph(b)
	ws := NewWorkspace(g.NumVertices())
	opts := Options{Policy: MN{M: 64, N: 64}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunWith(g, src, opts, ws)
		benchTEPS(b, r, err)
	}
}

// BenchmarkRunMany64Roots measures the batched multi-root path: 64
// search keys (the Graph 500 default) through pooled workspaces with
// concurrent roots.
func BenchmarkRunMany64Roots(b *testing.B) {
	g, _ := benchGraph(b)
	var roots []int32
	stride := g.NumVertices()/64 + 1
	for v := 0; v < g.NumVertices() && len(roots) < 64; v += stride {
		for u := v; u < g.NumVertices(); u++ {
			if g.Degree(int32(u)) > 0 {
				roots = append(roots, int32(u))
				break
			}
		}
	}
	if len(roots) != 64 {
		b.Fatalf("sampled %d roots, want 64", len(roots))
	}
	var edges atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edges.Store(0)
		err := RunManyFunc(g, roots, ManyOptions{}, func(_ int, _ int32, r *Result) error {
			edges.Add(r.TraversedEdges)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(edges.Load() * 4)
}

func BenchmarkComputeTrace(b *testing.B) {
	g, src := benchGraph(b)
	r, err := Serial(g, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeTrace(g, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	g, src := benchGraph(b)
	r, err := Serial(g, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Validate(g, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedScales sweeps the partitioned engine across rank
// counts and graph scales. Besides wall time it reports MTEPS and the
// per-traversal exchange payload (compressed frontier deltas plus
// ghost-claim scatter) — the two axes of the communication-vs-
// computation crossover the sharded experiment tables plot.
func BenchmarkShardedScales(b *testing.B) {
	graphs := map[int]*graph.CSR{}
	sources := map[int]int32{}
	for _, scale := range []int{12, 14} {
		g, err := rmat.Generate(rmat.DefaultParams(scale, 16))
		if err != nil {
			b.Fatal(err)
		}
		graphs[scale] = g
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(int32(v)) > 0 {
				sources[scale] = int32(v)
				break
			}
		}
	}
	for _, scale := range []int{12, 14} {
		for _, ranks := range []int{1, 2, 4, 8} {
			g, src := graphs[scale], sources[scale]
			eng := NewShardedEngine(ranks, DefaultM, DefaultN)
			ws := NewWorkspace(g.NumVertices())
			b.Run(fmt.Sprintf("scale%d/ranks%d", scale, ranks), func(b *testing.B) {
				var edges, bytes int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := eng.RunContext(context.Background(), g, src, ws)
					if err != nil {
						b.Fatal(err)
					}
					edges += r.TraversedEdges
					bytes = 0
					for _, ex := range r.Exchanges {
						bytes += ex.TotalBytes()
					}
				}
				b.StopTimer()
				mteps := float64(edges) / 1e6 / b.Elapsed().Seconds()
				b.ReportMetric(mteps, "MTEPS")
				b.ReportMetric(float64(bytes), "exchanged-B/op")
			})
		}
	}
}
