package bfs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stepCancelCtx is a context that reports cancellation after a fixed
// number of Err() polls. The traversal entry points poll Err() once up
// front and once per level boundary, so an after of k cancels a
// traversal deterministically partway through — no sleeps, no timing
// races, reproducible under -race and -count=100.
type stepCancelCtx struct {
	context.Context
	after int64
	calls atomic.Int64
	once  sync.Once
	done  chan struct{}
}

func newStepCancelCtx(after int) *stepCancelCtx {
	return &stepCancelCtx{Context: context.Background(), after: int64(after), done: make(chan struct{})}
}

func (c *stepCancelCtx) Err() error {
	if c.calls.Add(1) > c.after {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *stepCancelCtx) Done() <-chan struct{} { return c.done }

// settleGoroutines waits for the goroutine count to return to base,
// giving exiting workers time to be reaped. Cancellation abandons
// grain claims, so workers need a moment to observe the stop flag and
// unwind — but they must all get there.
func settleGoroutines(t *testing.T, name string, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s: goroutine leak: %d goroutines alive, started with %d", name, runtime.NumGoroutine(), base)
}

func allEngines() []Engine {
	return []Engine{
		SerialEngine(),
		TopDownEngine(4),
		BottomUpEngine(4),
		EdgeParallelEngine(4),
		HybridEngine(64, 64, 4),
		BeamerEngine(0, 0, 4),
		HongEngine(4),
	}
}

// TestCancelMidTraversalAllEngines is the headline robustness test:
// every kernel, cancelled mid-traversal, must return context.Canceled,
// leak no goroutines, and leave its workspace so clean that the very
// next traversal on it matches the serial reference exactly.
func TestCancelMidTraversalAllEngines(t *testing.T) {
	g := testRMAT(t, 10, 8, 2)
	src := firstUsable(t, g)
	want, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if want.NumLevels() < 5 {
		t.Fatalf("test graph too shallow (%d levels); mid-traversal cancel needs >= 5", want.NumLevels())
	}
	base := runtime.NumGoroutine()
	for _, e := range allEngines() {
		ws := NewWorkspace(g.NumVertices())
		ctx := newStepCancelCtx(3)
		r, err := e.RunContext(ctx, g, src, ws)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", e.Name(), err)
		}
		if r != nil {
			t.Fatalf("%s: cancelled traversal returned a non-nil result", e.Name())
		}
		settleGoroutines(t, e.Name(), base)

		// The cancelled workspace must be pool-clean: reusing it must
		// reproduce the reference traversal.
		got, err := e.RunContext(context.Background(), g, src, ws)
		if err != nil {
			t.Fatalf("%s: post-cancel reuse: %v", e.Name(), err)
		}
		sameTraversal(t, e.Name()+" (post-cancel reuse)", want, got)
		if err := Validate(g, got); err != nil {
			t.Fatalf("%s: post-cancel reuse: %v", e.Name(), err)
		}
	}
	settleGoroutines(t, "all engines", base)
}

// TestRecycledWorkspaceBitIdentical pins the strongest form of the
// pool-hygiene contract: with a deterministic (Workers: 1) engine, a
// workspace recycled after a mid-traversal cancel produces a Result
// bit-identical — every field — to one from a fresh workspace.
func TestRecycledWorkspaceBitIdentical(t *testing.T) {
	g := testRMAT(t, 10, 8, 3)
	src := firstUsable(t, g)
	engines := []Engine{
		SerialEngine(),
		TopDownEngine(1),
		BottomUpEngine(1),
		EdgeParallelEngine(1),
		HybridEngine(64, 64, 1),
	}
	for _, e := range engines {
		fresh, err := e.Run(g, src, NewWorkspace(g.NumVertices()))
		if err != nil {
			t.Fatalf("%s: fresh: %v", e.Name(), err)
		}
		fresh = fresh.Clone()

		ws := NewWorkspace(g.NumVertices())
		if _, err := e.RunContext(newStepCancelCtx(2), g, src, ws); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cancel: err = %v, want context.Canceled", e.Name(), err)
		}
		recycled, err := e.Run(g, src, ws)
		if err != nil {
			t.Fatalf("%s: recycled: %v", e.Name(), err)
		}
		exactSame(t, e.Name()+" (recycled vs fresh)", fresh, recycled)
	}
}

// TestDeadlineExceededAllEngines checks the deadline path returns
// context.DeadlineExceeded verbatim, so callers can match on it.
func TestDeadlineExceededAllEngines(t *testing.T) {
	g := testRMAT(t, 9, 8, 1)
	src := firstUsable(t, g)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	for _, e := range allEngines() {
		if _, err := e.RunContext(ctx, g, src, nil); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", e.Name(), err)
		}
	}
	if _, err := RunContext(ctx, g, src, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("RunContext: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestPreCancelledContext checks the fast path: a context cancelled
// before the traversal starts never touches the graph.
func TestPreCancelledContext(t *testing.T) {
	g := pathGraph(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range allEngines() {
		if _, err := e.RunContext(ctx, g, 0, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", e.Name(), err)
		}
	}
	err := RunManyFuncContext(ctx, g, []int32{0, 1}, ManyOptions{}, func(int, int32, *Result) error {
		t.Error("callback ran under a pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunManyFuncContext: err = %v, want context.Canceled", err)
	}
}

// TestPolicyPanicContained checks that a panic in the policy's Choose
// surfaces as a *PanicError instead of killing the process, with the
// panic value and a stack preserved.
func TestPolicyPanicContained(t *testing.T) {
	g := testRMAT(t, 9, 8, 2)
	src := firstUsable(t, g)
	boom := PolicyFunc(func(s StepInfo) Direction {
		if s.Step == 3 {
			panic("policy kaboom")
		}
		return TopDown
	})
	ws := NewWorkspace(g.NumVertices())
	_, err := RunWith(g, src, Options{Policy: boom, Workers: 2}, ws)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "policy kaboom" {
		t.Errorf("PanicError.Value = %v, want %q", pe.Value, "policy kaboom")
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	// The workspace survives the panic pool-clean.
	want, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWith(g, src, Options{Workers: 1}, ws)
	if err != nil {
		t.Fatalf("post-panic reuse: %v", err)
	}
	sameTraversal(t, "post-panic reuse", want, got)
}

// TestParallelGrainsWorkerPanic checks panic containment inside the
// worker pool itself: a panicking grain function must come back as a
// *PanicError from the coordinating call, with every worker exited.
func TestParallelGrainsWorkerPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, workers := range []int{1, 4} {
		err := parallelGrains(context.Background(), 1000, 16, workers, func(_, start, _ int) {
			if start >= 500 {
				panic(fmt.Sprintf("grain kaboom at %d", start))
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v (%T), want *PanicError", workers, err, err)
		}
		settleGoroutines(t, fmt.Sprintf("parallelGrains workers=%d", workers), base)
	}
}

// TestParallelGrainsCancelStopsClaims checks the grain-boundary
// cancellation point: after cancel, workers stop claiming new grains.
func TestParallelGrainsCancelStopsClaims(t *testing.T) {
	// Single worker: deterministic — the grain after the cancelling one
	// is never run.
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := parallelGrains(ctx, 1000, 10, 1, func(_, _, _ int) {
		if calls.Add(1) == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("workers=1: err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("workers=1: %d grains ran after cancel-on-first, want 1", n)
	}

	// Multi worker: each in-flight worker may finish its current grain,
	// but the bulk of the range must be abandoned.
	ctx2, cancel2 := context.WithCancel(context.Background())
	const totalGrains = 100000 / 16
	var calls2 atomic.Int64
	err = parallelGrains(ctx2, 100000, 16, 8, func(_, _, _ int) {
		if calls2.Add(1) == 1 {
			cancel2()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("workers=8: err = %v, want context.Canceled", err)
	}
	if n := calls2.Load(); n > totalGrains/2 {
		t.Fatalf("workers=8: %d of %d grains ran after early cancel", n, totalGrains)
	}
}

// TestRunManyContextCancellation cancels a batch partway through and
// checks the fail-fast + at-most-once contract: context.Canceled comes
// back, each index is delivered at most once, and almost all of the
// batch is abandoned.
func TestRunManyContextCancellation(t *testing.T) {
	g := testRMAT(t, 9, 8, 3)
	src := firstUsable(t, g)
	roots := make([]int32, 256)
	for i := range roots {
		roots[i] = src
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	counts := make([]atomic.Int32, len(roots))
	var delivered atomic.Int64
	err := RunManyFuncContext(ctx, g, roots, ManyOptions{Concurrency: 4}, func(i int, _ int32, _ *Result) error {
		counts[i].Add(1)
		if delivered.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range counts {
		if n := counts[i].Load(); n > 1 {
			t.Errorf("index %d delivered %d times", i, n)
		}
	}
	if n := delivered.Load(); n > int64(len(roots))/2 {
		t.Errorf("%d of %d roots delivered after cancel at the 3rd", n, len(roots))
	}
}
