package bfs

import (
	"math"
	"testing"
)

func TestAlphaBetaDefaults(t *testing.T) {
	p := NewAlphaBeta(0, 0)
	if p.Alpha != 14 || p.Beta != 24 {
		t.Errorf("defaults = (%g, %g), want Beamer's (14, 24)", p.Alpha, p.Beta)
	}
	if p.Validate() != nil {
		t.Error("default policy invalid")
	}
	bad := &AlphaBeta{Alpha: -1, Beta: 24}
	if bad.Validate() == nil {
		t.Error("negative alpha accepted")
	}
}

func TestAlphaBetaPhases(t *testing.T) {
	p := NewAlphaBeta(14, 24)
	small := StepInfo{
		Step: 1, FrontierVertices: 1, FrontierEdges: 10,
		UnvisitedVertices: 9999, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := p.Choose(small); d != TopDown {
		t.Fatalf("small frontier: %s, want TD", d)
	}
	// Frontier edge work overtakes unexplored/alpha: m_f = 50000,
	// m_u ~= 160000*0.5 = 80000, 80000/14 ~= 5714 < 50000.
	big := StepInfo{
		Step: 3, FrontierVertices: 3000, FrontierEdges: 50000,
		UnvisitedVertices: 5000, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := p.Choose(big); d != BottomUp {
		t.Fatalf("big frontier: %s, want BU", d)
	}
	// Still bottom-up while the frontier stays above |V|/beta.
	mid := StepInfo{
		Step: 4, FrontierVertices: 1000, FrontierEdges: 9000,
		UnvisitedVertices: 2000, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := p.Choose(mid); d != BottomUp {
		t.Fatalf("mid frontier in BU phase: %s, want BU", d)
	}
	// Shrunk below |V|/beta = 416: back to top-down.
	tail := StepInfo{
		Step: 5, FrontierVertices: 100, FrontierEdges: 900,
		UnvisitedVertices: 500, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := p.Choose(tail); d != TopDown {
		t.Fatalf("tail frontier: %s, want TD", d)
	}
}

func TestAlphaBetaTraversalCorrect(t *testing.T) {
	g := testRMAT(t, 10, 16, 3)
	want, err := Serial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, 0, Options{Policy: NewAlphaBeta(0, 0), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameTraversal(t, "alphabeta", want, got)
	if err := Validate(g, got); err != nil {
		t.Errorf("alpha/beta traversal invalid: %v", err)
	}
	// It must actually have used both directions on an R-MAT graph.
	var td, bu bool
	for _, d := range got.Directions {
		td = td || d == TopDown
		bu = bu || d == BottomUp
	}
	if !td || !bu {
		t.Errorf("alpha/beta never switched: %v", got.Directions)
	}
}

func TestHongHybridNeverSwitchesBack(t *testing.T) {
	p := NewHongHybrid()
	big := StepInfo{FrontierVertices: 500, TotalVertices: 10000}
	small := StepInfo{FrontierVertices: 1, TotalVertices: 10000}
	if d := p.Choose(small); d != TopDown {
		t.Fatalf("before threshold: %s", d)
	}
	if d := p.Choose(big); d != BottomUp {
		t.Fatalf("at threshold: %s", d)
	}
	if d := p.Choose(small); d != BottomUp {
		t.Fatalf("after switch with small frontier: %s, want BU (one-way switch)", d)
	}
}

func TestHongHybridTraversalCorrect(t *testing.T) {
	g := testRMAT(t, 10, 8, 5)
	want, err := Serial(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, 1, Options{Policy: NewHongHybrid(), Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	sameTraversal(t, "hong", want, got)
	if err := Validate(g, got); err != nil {
		t.Errorf("hong traversal invalid: %v", err)
	}
}

// Regression: non-positive (or NaN) policy parameters must fall back
// to the published constants instead of the divide-by-zero behaviour
// that silently froze the policy in one direction. Before the fix,
// MN{M: 0}.Choose produced |E|/0 = +Inf thresholds: bottom-up was
// unreachable, and the simulator's policy replay (which calls Choose
// directly, bypassing Run's Validate) priced a pure top-down traversal
// while claiming a hybrid.
func TestDegenerateParametersFallBack(t *testing.T) {
	nan := math.NaN()

	// A frontier large enough that the default (64, 64) rule says
	// bottom-up: |V|cq = 1000 >= 10000/64.
	big := StepInfo{
		Step: 3, FrontierVertices: 1000, FrontierEdges: 50000,
		UnvisitedVertices: 5000, TotalVertices: 10000, TotalEdges: 160000,
	}
	want := MN{M: DefaultM, N: DefaultN}.Choose(big)
	if want != BottomUp {
		t.Fatalf("test premise: default rule on big frontier = %s, want BU", want)
	}
	for _, p := range []MN{{}, {M: 0, N: 64}, {M: 64, N: 0}, {M: -5, N: -5}, {M: nan, N: nan}} {
		if d := p.Choose(big); d != want {
			t.Errorf("MN{%g,%g}.Choose = %s, want %s (default fallback)", p.M, p.N, d, want)
		}
	}

	// Zero-value AlphaBeta (built without NewAlphaBeta) must behave
	// like Beamer's constants, not freeze top-down forever.
	var ab AlphaBeta
	ref := NewAlphaBeta(0, 0)
	huge := StepInfo{
		Step: 3, FrontierVertices: 3000, FrontierEdges: 50000,
		UnvisitedVertices: 5000, TotalVertices: 10000, TotalEdges: 160000,
	}
	if got, want := ab.Choose(huge), ref.Choose(huge); got != want {
		t.Errorf("zero-value AlphaBeta.Choose = %s, want %s", got, want)
	}

	// Zero-value HongHybrid must use the 3%% threshold, not switch to
	// bottom-up on the first single-vertex frontier.
	var hh HongHybrid
	tiny := StepInfo{
		Step: 1, FrontierVertices: 1, FrontierEdges: 8,
		UnvisitedVertices: 9999, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := hh.Choose(tiny); d != TopDown {
		t.Errorf("zero-value HongHybrid switched on a single-vertex frontier")
	}
	over := StepInfo{
		Step: 4, FrontierVertices: 400, FrontierEdges: 6400,
		UnvisitedVertices: 9000, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := hh.Choose(over); d != BottomUp {
		t.Errorf("zero-value HongHybrid did not switch above 3%% of |V|")
	}

	// Run still rejects an unusable MN policy up front: the fallback
	// is for direct Choose callers, not a license for bad config.
	if _, err := Run(pathGraph(t, 3), 0, Options{Policy: MN{M: -1, N: -1}}); err == nil {
		t.Error("Run accepted negative MN policy")
	}
}
