package bfs

import (
	"testing"
)

func TestAlphaBetaDefaults(t *testing.T) {
	p := NewAlphaBeta(0, 0)
	if p.Alpha != 14 || p.Beta != 24 {
		t.Errorf("defaults = (%g, %g), want Beamer's (14, 24)", p.Alpha, p.Beta)
	}
	if p.Validate() != nil {
		t.Error("default policy invalid")
	}
	bad := &AlphaBeta{Alpha: -1, Beta: 24}
	if bad.Validate() == nil {
		t.Error("negative alpha accepted")
	}
}

func TestAlphaBetaPhases(t *testing.T) {
	p := NewAlphaBeta(14, 24)
	small := StepInfo{
		Step: 1, FrontierVertices: 1, FrontierEdges: 10,
		UnvisitedVertices: 9999, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := p.Choose(small); d != TopDown {
		t.Fatalf("small frontier: %s, want TD", d)
	}
	// Frontier edge work overtakes unexplored/alpha: m_f = 50000,
	// m_u ~= 160000*0.5 = 80000, 80000/14 ~= 5714 < 50000.
	big := StepInfo{
		Step: 3, FrontierVertices: 3000, FrontierEdges: 50000,
		UnvisitedVertices: 5000, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := p.Choose(big); d != BottomUp {
		t.Fatalf("big frontier: %s, want BU", d)
	}
	// Still bottom-up while the frontier stays above |V|/beta.
	mid := StepInfo{
		Step: 4, FrontierVertices: 1000, FrontierEdges: 9000,
		UnvisitedVertices: 2000, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := p.Choose(mid); d != BottomUp {
		t.Fatalf("mid frontier in BU phase: %s, want BU", d)
	}
	// Shrunk below |V|/beta = 416: back to top-down.
	tail := StepInfo{
		Step: 5, FrontierVertices: 100, FrontierEdges: 900,
		UnvisitedVertices: 500, TotalVertices: 10000, TotalEdges: 160000,
	}
	if d := p.Choose(tail); d != TopDown {
		t.Fatalf("tail frontier: %s, want TD", d)
	}
}

func TestAlphaBetaTraversalCorrect(t *testing.T) {
	g := testRMAT(t, 10, 16, 3)
	want, err := Serial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, 0, Options{Policy: NewAlphaBeta(0, 0), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameTraversal(t, "alphabeta", want, got)
	if err := Validate(g, got); err != nil {
		t.Errorf("alpha/beta traversal invalid: %v", err)
	}
	// It must actually have used both directions on an R-MAT graph.
	var td, bu bool
	for _, d := range got.Directions {
		td = td || d == TopDown
		bu = bu || d == BottomUp
	}
	if !td || !bu {
		t.Errorf("alpha/beta never switched: %v", got.Directions)
	}
}

func TestHongHybridNeverSwitchesBack(t *testing.T) {
	p := NewHongHybrid()
	big := StepInfo{FrontierVertices: 500, TotalVertices: 10000}
	small := StepInfo{FrontierVertices: 1, TotalVertices: 10000}
	if d := p.Choose(small); d != TopDown {
		t.Fatalf("before threshold: %s", d)
	}
	if d := p.Choose(big); d != BottomUp {
		t.Fatalf("at threshold: %s", d)
	}
	if d := p.Choose(small); d != BottomUp {
		t.Fatalf("after switch with small frontier: %s, want BU (one-way switch)", d)
	}
}

func TestHongHybridTraversalCorrect(t *testing.T) {
	g := testRMAT(t, 10, 8, 5)
	want, err := Serial(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, 1, Options{Policy: NewHongHybrid(), Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	sameTraversal(t, "hong", want, got)
	if err := Validate(g, got); err != nil {
		t.Errorf("hong traversal invalid: %v", err)
	}
}
