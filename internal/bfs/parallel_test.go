package bfs

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolveWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name                 string
		requested, workItems int
		want                 int
	}{
		{"zero means automatic", 0, 1 << 20, maxprocs},
		{"negative means automatic", -3, 1 << 20, maxprocs},
		{"explicit request honored", 3, 1 << 20, 3},
		{"capped by work items", 8, 2, 2},
		{"no work still yields one worker", 4, 0, 1},
		{"negative work still yields one worker", 4, -1, 1},
		{"automatic capped by work items", 0, 1, 1},
		{"single item single worker", 1, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := resolveWorkers(tc.requested, tc.workItems); got != tc.want {
				t.Errorf("resolveWorkers(%d, %d) = %d, want %d",
					tc.requested, tc.workItems, got, tc.want)
			}
		})
	}
}

// coverageOf runs parallelGrains and returns how many times each index
// in [0, n) was covered, plus the number of callback invocations.
func coverageOf(n, grain, workers int) (counts []int32, calls int64) {
	counts = make([]int32, max(n, 0))
	var callCount atomic.Int64
	parallelGrains(context.Background(), n, grain, workers, func(worker, start, end int) {
		callCount.Add(1)
		for i := start; i < end; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	return counts, callCount.Load()
}

func TestParallelGrainsEdgeCases(t *testing.T) {
	cases := []struct {
		name              string
		n, grain, workers int
	}{
		{"empty range", 0, 4, 4},
		{"negative range", -5, 4, 4},
		{"grain larger than n", 3, 100, 4},
		{"workers larger than n", 4, 1, 64},
		{"grain zero normalized to one", 7, 0, 3},
		{"grain negative normalized to one", 7, -2, 3},
		{"single worker fast path", 100, 8, 1},
		{"automatic workers", 257, 16, 0},
		{"uneven tail block", 10, 3, 2},
		{"n equals grain", 8, 8, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			counts, calls := coverageOf(tc.n, tc.grain, tc.workers)
			if tc.n <= 0 {
				if calls != 0 {
					t.Fatalf("fn called %d times on n=%d, want 0", calls, tc.n)
				}
				return
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("index %d covered %d times, want exactly once", i, c)
				}
			}
		})
	}
}

func TestParallelGrainsSingleWorkerInOrder(t *testing.T) {
	// The single-worker fast path spawns no goroutines but still walks
	// the range grain by grain — each grain boundary is a cancellation
	// point — in ascending order on worker 0.
	var calls []([3]int)
	if err := parallelGrains(context.Background(), 50, 8, 1, func(worker, start, end int) {
		calls = append(calls, [3]int{worker, start, end})
	}); err != nil {
		t.Fatal(err)
	}
	want := [][3]int{{0, 0, 8}, {0, 8, 16}, {0, 16, 24}, {0, 24, 32}, {0, 32, 40}, {0, 40, 48}, {0, 48, 50}}
	if len(calls) != len(want) {
		t.Fatalf("single-worker calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %v, want %v", i, calls[i], want[i])
		}
	}
}

func TestParallelGrainsWorkerIDsInRange(t *testing.T) {
	// Worker IDs index per-worker shards in the kernels, so they must
	// stay within [0, effective workers).
	const n, grain, workers = 1000, 7, 5
	var bad atomic.Int32
	parallelGrains(context.Background(), n, grain, workers, func(worker, start, end int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d callbacks saw an out-of-range worker ID", bad.Load())
	}
}

// TestParallelGrainsSharedCounterStress is the satellite's
// race-detector stress test: many workers hammering one shared atomic
// counter plus disjoint per-index writes. Under -race this exercises
// the claim loop (cursor.Add) and proves the grain ranges never
// overlap; without -race it still verifies the total.
func TestParallelGrainsSharedCounterStress(t *testing.T) {
	const n = 100000
	for _, workers := range []int{2, 4, 8, 0} {
		var shared atomic.Int64
		touched := make([]int32, n)
		var mu sync.Mutex
		order := 0
		parallelGrains(context.Background(), n, 64, workers, func(worker, start, end int) {
			shared.Add(int64(end - start))
			for i := start; i < end; i++ {
				touched[i]++ // safe without atomics iff grains are disjoint
			}
			mu.Lock()
			order++ // intentionally contended: stresses the detector
			mu.Unlock()
		})
		if shared.Load() != n {
			t.Errorf("workers=%d: shared counter %d, want %d", workers, shared.Load(), n)
		}
		for i, c := range touched {
			if c != 1 {
				t.Fatalf("workers=%d: index %d written %d times", workers, i, c)
			}
		}
	}
}
