package bfs

import (
	"math/bits"
	"sync"

	"crossbfs/internal/bitmap"
	"crossbfs/internal/graph"
)

// Workspace holds every per-traversal buffer a BFS engine needs:
// the result's parent/level maps, the direction and scan logs, both
// frontier queues, the per-worker output shards of the parallel
// top-down kernels, the edge-parallel degree prefix sum, and the
// visited/frontier/next bitmaps. Reusing one Workspace across
// traversals turns the entire working set into a reset, not a
// reallocation — the first-order optimization for repeated-traversal
// workloads (the Graph 500 64-root runner, the tuner's labelling
// sweep), where buffer lifecycle, not kernel arithmetic, dominates.
//
// Ownership rules:
//
//   - The caller acquires a Workspace (NewWorkspace, or WorkspacePool.Get)
//     and owns it until it releases it (WorkspacePool.Put).
//   - The engine resets it: every Engine.Run / RunWith begins by
//     re-preparing all buffers for the new (graph, source), so a
//     recycled Workspace can never leak prior traversal state.
//   - A Result produced with a Workspace aliases the workspace's
//     parent/level/direction storage. It is valid only until the
//     workspace's next traversal (or its return to a pool); callers
//     that need the maps afterwards must Clone the result first.
//   - A Workspace is not safe for concurrent use; concurrent roots
//     need one workspace each (RunMany handles this via its pool).
type Workspace struct {
	// Result storage lent to the current traversal.
	result     Result
	parent     []int32
	level      []int32
	directions []Direction
	stepScans  []int64
	exchanges  []ExchangeStats

	// Frontier queues. The runner ping-pongs between them level by
	// level, so both stabilize at the widest frontier seen.
	queue []int32
	spare []int32

	// Per-worker output shards for the parallel top-down kernels,
	// hoisted here so they are built once per traversal set, not once
	// per level.
	locals [][]int32

	// Edge-parallel degree prefix sum (one entry per frontier vertex).
	prefix []int64

	// visited is the claim bitmap; front/next are the bottom-up
	// frontier representations.
	visited *bitmap.Bitmap
	front   *bitmap.Bitmap
	next    *bitmap.Bitmap
}

// NewWorkspace returns a workspace prepared for graphs of up to n
// vertices. It grows transparently if later used on a larger graph.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

// Capacity returns the vertex count the workspace can currently serve
// without reallocating.
func (w *Workspace) Capacity() int { return cap(w.parent) }

// ensure sizes every vertex-indexed buffer for an n-vertex graph,
// reusing backing arrays whenever they are large enough.
func (w *Workspace) ensure(n int) {
	if cap(w.parent) < n {
		w.parent = make([]int32, n)
		w.level = make([]int32, n)
	} else {
		w.parent = w.parent[:n]
		w.level = w.level[:n]
	}
	if w.visited == nil {
		w.visited = bitmap.New(n)
		w.front = bitmap.New(n)
		w.next = bitmap.New(n)
	} else {
		w.visited.Resize(n)
		w.front.Resize(n)
		w.next.Resize(n)
	}
}

// begin resets the workspace for a traversal of g from source and
// returns the result shell backed by the workspace's buffers. This is
// the single reset point that guarantees pool hygiene: parent/level
// are refilled with NotVisited, the bitmaps are cleared, and the logs
// and queues are truncated, so no prior traversal state survives.
func (w *Workspace) begin(g *graph.CSR, source int32) *Result {
	w.ensure(g.NumVertices())
	for i := range w.parent {
		w.parent[i] = NotVisited
		w.level[i] = NotVisited
	}
	w.parent[source] = source
	w.level[source] = 0
	w.result = Result{
		Source:     source,
		Parent:     w.parent,
		Level:      w.level,
		Directions: w.directions[:0],
		StepScans:  w.stepScans[:0],
		Exchanges:  w.exchanges[:0],
	}
	return &w.result
}

// retain stores a finished traversal's grown slices back into the
// workspace so their capacity carries over to the next traversal.
func (w *Workspace) retain(r *Result, queue, spare []int32) {
	w.directions = r.Directions
	w.stepScans = r.StepScans
	w.exchanges = r.Exchanges
	w.queue = queue
	w.spare = spare
}

// workerShards returns k per-worker output slices, each truncated to
// zero length but keeping its capacity from earlier levels.
func (w *Workspace) workerShards(k int) [][]int32 {
	if k > len(w.locals) {
		grown := make([][]int32, k)
		copy(grown, w.locals)
		w.locals = grown
	}
	shards := w.locals[:k]
	for i := range shards {
		shards[i] = shards[i][:0]
	}
	return shards
}

// prefixBuf returns a length-k scratch slice for degree prefix sums.
func (w *Workspace) prefixBuf(k int) []int64 {
	if cap(w.prefix) < k {
		w.prefix = make([]int64, k)
	}
	return w.prefix[:k]
}

// Clone returns a deep copy of r that aliases no workspace storage, so
// it stays valid after the workspace moves on to another traversal.
func (r *Result) Clone() *Result {
	c := *r
	c.Parent = append([]int32(nil), r.Parent...)
	c.Level = append([]int32(nil), r.Level...)
	c.Directions = append([]Direction(nil), r.Directions...)
	c.StepScans = append([]int64(nil), r.StepScans...)
	c.Exchanges = append([]ExchangeStats(nil), r.Exchanges...)
	return &c
}

// WorkspacePool is a size-keyed, sync.Pool-backed cache of Workspaces.
// Workspaces are bucketed by the power-of-two class of their vertex
// capacity, so a pool serving mixed graph sizes (the tuner's M/N sweep
// crosses scales) hands each request a workspace that already fits —
// Get never returns a workspace that must shrink-copy, and Put files a
// grown workspace under its new class. The zero value is ready to use.
type WorkspacePool struct {
	// classes[c] caches workspaces whose capacity class is c, i.e.
	// capacity in (2^(c-1), 2^c]. 64 classes cover any int.
	classes [64]sync.Pool
}

// DefaultPool is the process-wide pool used by RunMany and the
// workspace-aware helpers when the caller does not supply one.
var DefaultPool = &WorkspacePool{}

// sizeClass returns the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a workspace prepared for an n-vertex graph, recycling a
// pooled one when available.
func (p *WorkspacePool) Get(n int) *Workspace {
	c := sizeClass(n)
	if ws, ok := p.classes[c].Get().(*Workspace); ok {
		ws.ensure(n)
		return ws
	}
	// Allocate at the full class capacity so every future Get in this
	// class is served without growing.
	return NewWorkspace(1 << c)
}

// Put returns a workspace to the pool for reuse. The workspace must
// not be used (nor any Result still aliasing it read) after Put.
func (p *WorkspacePool) Put(ws *Workspace) {
	if ws == nil {
		return
	}
	p.classes[sizeClass(ws.Capacity())].Put(ws)
}
