package bfs

import "crossbfs/internal/graph"

// Serial runs a textbook queue-based BFS from source. It is the
// correctness reference for every other kernel and the model of the
// "serial version" the paper uses to explain the CPU/MIC gap (§V-C).
func Serial(g *graph.CSR, source int32) (*Result, error) {
	if err := checkSource(g, source); err != nil {
		return nil, err
	}
	r := newResult(g, source)
	cq := []int32{source}
	for len(cq) > 0 {
		var nq []int32
		for _, u := range cq {
			for _, v := range g.Neighbors(u) {
				if r.Parent[v] == NotVisited {
					r.Parent[v] = u
					r.Level[v] = r.Level[u] + 1
					nq = append(nq, v)
				}
			}
		}
		r.Directions = append(r.Directions, TopDown)
		r.StepScans = append(r.StepScans, 0)
		cq = nq
	}
	r.finish(g)
	return r, nil
}
