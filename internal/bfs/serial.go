package bfs

import (
	"context"

	"crossbfs/internal/graph"
)

// serialEngine is the textbook queue-based BFS as an Engine. It is the
// correctness reference for every other kernel and the model of the
// "serial version" the paper uses to explain the CPU/MIC gap (§V-C).
type serialEngine struct{}

// SerialEngine returns the serial reference kernel as an Engine.
func SerialEngine() Engine { return serialEngine{} }

// Name implements Engine.
func (serialEngine) Name() string { return "serial" }

// Run implements Engine.
func (e serialEngine) Run(g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunContext(context.Background(), g, source, ws)
}

// RunContext implements Engine. The serial kernel has no goroutines
// to contain, so cancellation is observed once per level.
func (serialEngine) RunContext(ctx context.Context, g *graph.CSR, source int32, ws *Workspace) (_ *Result, err error) {
	defer func() { recoverToError(recover(), &err) }()
	if err := checkSource(g, source); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = NewWorkspace(g.NumVertices())
	}
	r := ws.begin(g, source)
	cq := append(ws.queue[:0], source)
	nq := ws.spare[:0]
	for len(cq) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nq = nq[:0]
		for _, u := range cq {
			for _, v := range g.Neighbors(u) {
				if r.Parent[v] == NotVisited {
					r.Parent[v] = u
					r.Level[v] = r.Level[u] + 1
					nq = append(nq, v)
				}
			}
		}
		r.Directions = append(r.Directions, TopDown)
		r.StepScans = append(r.StepScans, 0)
		cq, nq = nq, cq
	}
	ws.retain(r, cq, nq)
	r.finish(g)
	return r, nil
}

// Serial runs a textbook queue-based BFS from source with one-shot
// buffers — the free-function form of SerialEngine.
func Serial(g *graph.CSR, source int32) (*Result, error) {
	return serialEngine{}.Run(g, source, nil)
}
