package bfs

import (
	"context"
	"time"

	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
)

// serialEngine is the textbook queue-based BFS as an Engine. It is the
// correctness reference for every other kernel and the model of the
// "serial version" the paper uses to explain the CPU/MIC gap (§V-C).
type serialEngine struct{}

// SerialEngine returns the serial reference kernel as an Engine.
func SerialEngine() Engine { return serialEngine{} }

// Name implements Engine.
func (serialEngine) Name() string { return "serial" }

// Run implements Engine.
func (e serialEngine) Run(g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunContext(context.Background(), g, source, ws)
}

// RunContext implements Engine. The serial kernel has no goroutines
// to contain, so cancellation is observed once per level.
func (e serialEngine) RunContext(ctx context.Context, g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunObserved(ctx, g, source, ws, nil)
}

// RunObserved implements Engine. Serial levels are all top-down, so
// the event stream has no switch events; per-level events still carry
// the exact |V|cq and per-step wall time.
func (e serialEngine) RunObserved(ctx context.Context, g *graph.CSR, source int32, ws *Workspace, rec obs.Recorder) (_ *Result, err error) {
	var (
		o    tobs
		done *Result
	)
	defer func() { o.end(done, err) }()
	defer func() { recoverToError(recover(), &err) }()
	if err := checkSource(g, source); err != nil {
		return nil, err
	}
	reusedWS := ws != nil
	if ws == nil {
		ws = NewWorkspace(g.NumVertices())
	}
	o = observeStart(rec, g, source, e.Name(), reusedWS)
	r := ws.begin(g, source)
	unvisited := int64(g.NumVertices()) - 1
	step := int32(1)
	cq := append(ws.queue[:0], source)
	nq := ws.spare[:0]
	for len(cq) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var stepStart time.Time
		if o.live {
			stepStart = time.Now()
		}
		nq = nq[:0]
		for _, u := range cq {
			for _, v := range g.Neighbors(u) {
				if r.Parent[v] == NotVisited {
					r.Parent[v] = u
					r.Level[v] = r.Level[u] + 1
					nq = append(nq, v)
				}
			}
		}
		r.Directions = append(r.Directions, TopDown)
		r.StepScans = append(r.StepScans, 0)
		if o.live {
			o.event(obs.Event{
				Kind: obs.KindLevel, Step: step, Dir: obs.TopDown,
				FrontierVertices: int64(len(cq)),
				FrontierEdges:    frontierEdges(g, cq, nil, true),
				Discovered:       int64(len(nq)),
				Unvisited:        unvisited,
				Grains:           1,
				Workers:          1,
				Wall:             stepStart,
				WallDur:          time.Since(stepStart),
			})
		}
		unvisited -= int64(len(nq))
		step++
		cq, nq = nq, cq
	}
	ws.retain(r, cq, nq)
	r.finish(g)
	done = r
	return r, nil
}

// Serial runs a textbook queue-based BFS from source with one-shot
// buffers — the free-function form of SerialEngine.
func Serial(g *graph.CSR, source int32) (*Result, error) {
	return serialEngine{}.Run(g, source, nil)
}
