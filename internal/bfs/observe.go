package bfs

import (
	"time"

	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
)

// tobs bundles the per-traversal telemetry state every engine shares:
// the recorder, the traversal's process-unique ID, and its identity
// fields, so emission sites stay one call. The zero value is inert
// (live == false), which lets engines register the end() defer before
// they know whether a recorder is attached.
//
// Hot-path discipline: when no live recorder is attached, observeStart
// does no clock read and draws no ID, and every event/end call is a
// branch on a bool — the Nop path is identical to no instrumentation
// (gated by TestRunAllocsSteadyState and BenchmarkRunNopRecorder).
type tobs struct {
	rec   obs.Recorder
	live  bool
	id    uint64
	root  int32
	label string
	start time.Time
}

// observeStart opens a traversal's event group: it draws the
// TraversalID, emits KindTraversalStart (carrying the graph totals and
// whether the workspace was recycled), and returns the handle the
// runner threads through its level loop.
func observeStart(rec obs.Recorder, g *graph.CSR, root int32, label string, reused bool) tobs {
	o := tobs{rec: rec, live: obs.Live(rec), root: root, label: label}
	if !o.live {
		return o
	}
	o.id = obs.NextTraversalID()
	o.start = time.Now()
	o.rec.Event(obs.Event{
		Kind:             obs.KindTraversalStart,
		TraversalID:      o.id,
		Root:             root,
		Engine:           label,
		Dir:              obs.DirNone,
		FrontierVertices: int64(g.NumVertices()),
		FrontierEdges:    g.NumEdges(),
		Reused:           reused,
		Wall:             o.start,
	})
	return o
}

// event stamps the traversal's identity onto e and emits it. Callers
// must check o.live first so the event struct is never built on the
// Nop path.
func (o *tobs) event(e obs.Event) {
	e.TraversalID = o.id
	e.Root = o.root
	e.Engine = o.label
	o.rec.Event(e)
}

// end closes the event group with KindTraversalEnd: the reachable
// vertex and traversed edge totals on success, the error string on
// failure (including contained panics — engines register end via a
// defer that runs after recoverToError).
func (o *tobs) end(r *Result, err error) {
	if !o.live {
		return
	}
	e := obs.Event{
		Kind:        obs.KindTraversalEnd,
		TraversalID: o.id,
		Root:        o.root,
		Engine:      o.label,
		Dir:         obs.DirNone,
		Wall:        time.Now(),
		WallDur:     time.Since(o.start),
	}
	if err != nil {
		e.Detail = err.Error()
	} else if r != nil {
		e.Discovered = r.VisitedCount
		e.Scans = r.TraversedEdges
	}
	o.rec.Event(e)
}

// stepSchedule reproduces the kernels' dispatch arithmetic for
// telemetry: how many grain blocks one level splits into and how many
// workers the scheduler runs them on. It is kept in lockstep with
// topDownLevel/bottomUpLevel (same resolveWorkers inputs, same grain
// constants) instead of being threaded out of them, so the kernels'
// hot signatures stay untouched; a serial fallback reports one grain
// on one worker.
func stepSchedule(dir Direction, frontierVertices, totalVertices int64, requested int) (grains int64, workers int) {
	switch dir {
	case BottomUp:
		n := int(totalVertices)
		blocks := (n + buGrain - 1) / buGrain
		w := resolveWorkers(requested, blocks)
		if w == 1 {
			return 1, 1
		}
		return int64(blocks), w
	default:
		items := int(frontierVertices)
		w := resolveWorkers(requested, items)
		if w == 1 {
			return 1, 1
		}
		blocks := (items + tdGrain - 1) / tdGrain
		return int64(blocks), resolveWorkers(w, blocks)
	}
}
