package bfs

import (
	"testing"

	"crossbfs/internal/graph"
)

func TestEdgeParallelMatchesSerial(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"path":   pathGraph(t, 20),
		"star":   starGraph(t, 500), // one hub: the case this kernel exists for
		"rmat10": testRMAT(t, 10, 16, 1),
		"rmat9":  testRMAT(t, 9, 8, 4),
	}
	for name, g := range graphs {
		var src int32
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(int32(v)) > 0 {
				src = int32(v)
				break
			}
		}
		want, err := Serial(g, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := RunTopDownEdgeParallel(g, src, workers)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, workers, err)
			}
			sameTraversal(t, name+"/edge-parallel", want, got)
			if err := Validate(g, got); err != nil {
				t.Errorf("%s/%d workers: invalid: %v", name, workers, err)
			}
			mustInvariants(t, name+"/edge-parallel", g, got)
		}
	}
}

func TestEdgeParallelIsolatedSource(t *testing.T) {
	g := mustBuild(t, 4, []graph.Edge{{From: 1, To: 2}})
	r, err := RunTopDownEdgeParallel(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.VisitedCount != 1 {
		t.Errorf("isolated source visited %d", r.VisitedCount)
	}
}

func TestEdgeParallelBadSource(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := RunTopDownEdgeParallel(g, 9, 2); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func BenchmarkTopDownEdgeParallelStar(b *testing.B) {
	// A star is the worst case for vertex-parallel division: the hub's
	// whole list lands on one worker.
	n := 1 << 16
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{From: 0, To: int32(i)})
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("vertex-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunTopDown(g, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("edge-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunTopDownEdgeParallel(g, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
