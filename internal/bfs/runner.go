package bfs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"crossbfs/internal/bitmap"
	"crossbfs/internal/graph"
	"crossbfs/internal/invariant"
	"crossbfs/internal/obs"
)

// StepInfo is what a switching policy sees before each expansion step:
// the quantities of the paper's Fig. 4 plus the graph totals they are
// compared against.
type StepInfo struct {
	// Step is the paper's 1-based level number: step 1 expands the
	// frontier {source}.
	Step int
	// FrontierVertices is |V|cq, the current-queue vertex count.
	FrontierVertices int64
	// FrontierEdges is |E|cq, the sum of frontier vertex degrees.
	// It is -1 when collection was skipped: the policy opted out via
	// EdgeCountOptOut and no live recorder asked for it either.
	FrontierEdges int64
	// UnvisitedVertices counts vertices without a level yet.
	UnvisitedVertices int64
	// TotalVertices and TotalEdges are |V| and |E| (directed entries).
	TotalVertices int64
	TotalEdges    int64
}

// Policy selects the direction for each expansion step.
type Policy interface {
	Choose(StepInfo) Direction
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(StepInfo) Direction

// Choose implements Policy.
func (f PolicyFunc) Choose(s StepInfo) Direction { return f(s) }

// EdgeCountOptOut is the optional interface a Policy implements to
// decline the per-step |E|cq sum. Computing StepInfo.FrontierEdges
// costs an O(|V|cq) degree pass per level; policies that never read it
// (the fixed-direction baselines, Hong's vertex-count rule) return
// false here and the runner skips the pass, leaving FrontierEdges at
// -1 — unless a live telemetry recorder is attached, in which case the
// sum is collected anyway because the per-level events carry it.
// Policies without the method are assumed to need edges.
type EdgeCountOptOut interface {
	NeedsFrontierEdges() bool
}

// fixedPolicy always chooses one direction; it opts out of the |E|cq
// computation it would never read.
type fixedPolicy Direction

// Choose implements Policy.
func (p fixedPolicy) Choose(StepInfo) Direction { return Direction(p) }

// NeedsFrontierEdges implements EdgeCountOptOut.
func (p fixedPolicy) NeedsFrontierEdges() bool { return false }

// AlwaysTopDown and AlwaysBottomUp are the single-direction baselines
// (the paper's *TD and *BU columns).
var (
	AlwaysTopDown  Policy = fixedPolicy(TopDown)
	AlwaysBottomUp Policy = fixedPolicy(BottomUp)
)

// DefaultM and DefaultN are the fallback switching thresholds: the
// repo-wide tuned defaults used by the cmd tools and experiments.
const (
	DefaultM = 64
	DefaultN = 64
)

// MN is the paper's switching rule (Fig. 4): run bottom-up when
// |E|cq >= |E|/M or |V|cq >= |V|/N, top-down otherwise. Larger M or N
// switches to bottom-up earlier. Both must be positive; a
// non-positive or NaN threshold makes Choose fall back to the
// DefaultM/DefaultN constants (Run still rejects such a policy up
// front via Validate — the fallback exists for direct Choose callers
// like the simulator's policy replay, where a degenerate M would
// otherwise silently disable bottom-up through a division by zero).
type MN struct {
	M, N float64
}

// normalized returns p with non-positive or NaN thresholds replaced
// by the defaults, giving Choose defined behaviour on any input.
func (p MN) normalized() MN {
	if !(p.M > 0) { // catches zero, negatives, and NaN
		p.M = DefaultM
	}
	if !(p.N > 0) {
		p.N = DefaultN
	}
	return p
}

// Choose implements Policy.
func (p MN) Choose(s StepInfo) Direction {
	p = p.normalized()
	if float64(s.FrontierEdges) >= float64(s.TotalEdges)/p.M ||
		float64(s.FrontierVertices) >= float64(s.TotalVertices)/p.N {
		return BottomUp
	}
	return TopDown
}

// Validate reports whether the thresholds are usable. The comparisons
// are written so NaN fails them too — FuzzHeuristicSwitch caught that
// `p.M <= 0` lets NaN through.
func (p MN) Validate() error {
	if !(p.M > 0) || !(p.N > 0) {
		return fmt.Errorf("bfs: MN policy requires positive M and N, got (%g, %g)", p.M, p.N)
	}
	return nil
}

// Options configure a traversal.
type Options struct {
	// Policy picks the direction per step. nil means AlwaysTopDown.
	Policy Policy
	// Workers is the parallelism level; 0 means GOMAXPROCS, 1 forces
	// the serial kernels.
	Workers int
	// CheckInvariants enables the runtime verification layer
	// (internal/invariant): per-step frontier/visited coherence checks
	// and a post-traversal parent-tree + level-monotonicity check.
	// A violation aborts the traversal with an error. Costs O(V/64)
	// per step plus O(V+E) once; the test suites keep it on, and
	// production callers can enable it to fence suspected races.
	CheckInvariants bool
	// Recorder receives the traversal's telemetry events (see
	// internal/obs): traversal start/end, one event per expansion step
	// with the Fig. 4 work counts, and direction switches. nil (or
	// obs.Nop) disables telemetry entirely — no clock reads, no event
	// construction — preserving the steady-state 0 allocs/op gate.
	Recorder obs.Recorder
	// Label names the engine in emitted events (obs.Event.Engine).
	// Empty means "policy".
	Label string
}

// Run executes a level-synchronized BFS from source, choosing the
// direction of each step with opts.Policy and switching the frontier
// representation (queue for top-down, bitmap for bottom-up) as needed.
// Each call allocates one-shot buffers; repeated-traversal callers
// should prefer RunWith (or RunMany) with a pooled Workspace.
func Run(g *graph.CSR, source int32, opts Options) (*Result, error) {
	return RunWithContext(context.Background(), g, source, opts, nil)
}

// RunWith is Run with an explicit traversal workspace: every buffer —
// the result's parent/level maps, both frontier queues, the worker
// shards, and the visited/frontier bitmaps — comes from ws and is
// reset, not reallocated, so steady-state repeated traversals allocate
// nothing. ws may be nil (a one-shot workspace is created). The
// returned Result aliases ws's storage and is valid only until ws's
// next traversal; Clone it for durability.
func RunWith(g *graph.CSR, source int32, opts Options, ws *Workspace) (*Result, error) {
	return RunWithContext(context.Background(), g, source, opts, ws)
}

// RunContext is Run under a context: the traversal observes ctx at
// every level boundary and (in the parallel kernels) at every grain
// boundary, returning ctx.Err() — context.Canceled or
// context.DeadlineExceeded — promptly after cancellation.
func RunContext(ctx context.Context, g *graph.CSR, source int32, opts Options) (*Result, error) {
	return RunWithContext(ctx, g, source, opts, nil)
}

// RunWithContext is the full-control traversal entry point: RunWith
// plus cancellation, deadline enforcement, and panic containment.
//
// Fault-tolerance contract:
//
//   - Cancellation is honored within one level boundary (serial
//     kernels) or one grain boundary (parallel kernels); the error is
//     ctx.Err() verbatim so callers can match context.Canceled /
//     context.DeadlineExceeded.
//   - A panic anywhere in the traversal — a kernel worker, the policy's
//     Choose, the invariant checker — is recovered and returned as a
//     *PanicError instead of killing the process. Worker goroutines
//     recover their own panics and hand them to the coordinating
//     goroutine; by the time an error returns, every worker has exited.
//   - On any error the workspace is quiescent and pool-clean: no
//     goroutine holds a reference, and the next ws.begin fully resets
//     it, so a recycled post-cancel workspace behaves bit-identically
//     to a fresh one.
func RunWithContext(ctx context.Context, g *graph.CSR, source int32, opts Options, ws *Workspace) (_ *Result, err error) {
	var (
		o    tobs
		done *Result
	)
	// Registered before the recover defer so it runs after it (LIFO)
	// and sees the final error — including a contained panic.
	defer func() { o.end(done, err) }()
	defer func() { recoverToError(recover(), &err) }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := checkSource(g, source); err != nil {
		return nil, err
	}
	policy := opts.Policy
	if policy == nil {
		policy = AlwaysTopDown
	}
	if mn, ok := policy.(MN); ok {
		if err := mn.Validate(); err != nil {
			return nil, err
		}
	}
	// The |E|cq degree pass is opt-out (EdgeCountOptOut) but a live
	// recorder re-enables it: the per-level events carry the count.
	needEdges := true
	if oo, ok := policy.(EdgeCountOptOut); ok {
		needEdges = oo.NeedsFrontierEdges()
	}
	reusedWS := ws != nil
	if ws == nil {
		ws = NewWorkspace(g.NumVertices())
	}
	o = observeStart(opts.Recorder, g, source, opts.label(), reusedWS)
	needEdges = needEdges || o.live

	n := g.NumVertices()
	r := ws.begin(g, source)
	visited := ws.visited
	visited.Set(int(source))

	queue := append(ws.queue[:0], source) // valid when queueValid
	spare := ws.spare                     // top-down output buffer
	front := ws.front                     // valid when !queueValid
	next := ws.next                       // bottom-up scratch
	queueValid := true
	frontierVertices := int64(1)
	unvisited := int64(n) - 1
	level := int32(1) // distance assigned by the upcoming step
	totalEdges := g.NumEdges()
	prevDir := Direction(-1) // no direction chosen yet

	for frontierVertices > 0 {
		// Level-boundary cancellation point: between two expansion
		// steps no kernel goroutine is alive, so stopping here leaves
		// the workspace quiescent for its next begin().
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		info := StepInfo{
			Step:              int(level),
			FrontierVertices:  frontierVertices,
			FrontierEdges:     -1,
			UnvisitedVertices: unvisited,
			TotalVertices:     int64(n),
			TotalEdges:        totalEdges,
		}
		if needEdges {
			info.FrontierEdges = frontierEdges(g, queue, front, queueValid)
		}
		dir := policy.Choose(info)

		var stepStart time.Time
		if o.live {
			stepStart = time.Now()
			if prevDir >= 0 && dir != prevDir {
				o.event(obs.Event{
					Kind: obs.KindSwitch, Step: level,
					Dir: obs.Direction(dir), Wall: stepStart,
				})
			}
		}
		prevDir = dir

		var foundCount, scanCount int64
		switch dir {
		case TopDown:
			if !queueValid {
				queue = front.AppendSet(queue[:0])
				queueValid = true
			}
			out, err := topDownLevel(ctx, g, r, visited, queue, spare[:0], level, opts.Workers, ws)
			if err != nil {
				return nil, err
			}
			queue, spare = out, queue
			foundCount = int64(len(queue))
		case BottomUp:
			if queueValid {
				front.Reset()
				for _, v := range queue {
					front.Set(int(v))
				}
				queueValid = false
			}
			if opts.CheckInvariants {
				if err := invariant.FrontierSubset(front, visited); err != nil {
					return nil, fmt.Errorf("bfs: step %d: %w", level, err)
				}
			}
			next.Reset()
			var err error
			foundCount, scanCount, err = bottomUpLevel(ctx, g, r, visited, front, next, level, opts.Workers)
			if err != nil {
				return nil, err
			}
			if opts.CheckInvariants {
				// Before the merge: a bottom-up step must only have
				// discovered vertices that were still unvisited.
				if err := invariant.NextDisjoint(next, visited); err != nil {
					return nil, fmt.Errorf("bfs: step %d: %w", level, err)
				}
			}
			visited.Or(next)
			front, next = next, front
		default:
			return nil, errors.New("bfs: policy returned unknown direction")
		}

		r.Directions = append(r.Directions, dir)
		r.StepScans = append(r.StepScans, scanCount)
		if o.live {
			grains, nworkers := stepSchedule(dir, frontierVertices, int64(n), opts.Workers)
			o.event(obs.Event{
				Kind: obs.KindLevel, Step: level, Dir: obs.Direction(dir),
				FrontierVertices: info.FrontierVertices,
				FrontierEdges:    info.FrontierEdges,
				Discovered:       foundCount,
				Unvisited:        info.UnvisitedVertices,
				Scans:            scanCount,
				Grains:           grains,
				Workers:          int32(nworkers),
				Wall:             stepStart,
				WallDur:          time.Since(stepStart),
			})
		}
		frontierVertices = foundCount
		unvisited -= foundCount
		level++
	}

	if opts.CheckInvariants {
		if err := invariant.Check(g, source, r.Parent, r.Level); err != nil {
			return nil, fmt.Errorf("bfs: post-traversal: %w", err)
		}
	}
	ws.retain(r, queue, spare)
	r.finish(g)
	done = r
	return r, nil
}

// label names the traversal in telemetry events.
func (o Options) label() string {
	if o.Label != "" {
		return o.Label
	}
	return "policy"
}

// frontierEdges computes |E|cq for the active representation.
func frontierEdges(g *graph.CSR, queue []int32, front *bitmap.Bitmap, queueValid bool) int64 {
	var sum int64
	if queueValid {
		for _, v := range queue {
			sum += g.Degree(v)
		}
		return sum
	}
	front.Range(func(v int) { sum += g.Degree(int32(v)) })
	return sum
}

// Hybrid runs the direction-optimizing combination with the paper's
// (M, N) switching rule.
func Hybrid(g *graph.CSR, source int32, m, n float64, workers int) (*Result, error) {
	return Run(g, source, Options{Policy: MN{M: m, N: n}, Workers: workers})
}
