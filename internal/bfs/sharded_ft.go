package bfs

import (
	"errors"
	"fmt"
	"time"

	"crossbfs/internal/bitmap"
	"crossbfs/internal/fault"
	"crossbfs/internal/obs"
	"crossbfs/internal/part"
)

// This file is the sharded engine's fault-tolerance layer: rank fault
// injection at the exchange seam, per-level frontier checkpoints, a
// barrier watchdog, and checkpoint-replay recovery onto survivor
// ranks. It is armed only when the installed fault.Schedule carries
// rank-targeted events — the no-fault traversal never branches past a
// single `c.ft != nil` check. DESIGN.md §4e documents the protocol.
//
// The safety argument, in brief: every membership change happens while
// the dying rank is quiescent at a seam (injected crashes and retry
// exhaustion fence the rank at its own seam; the watchdog only fences
// ranks that parked themselves under the barrier mutex before
// sleeping). The park/fence/adopt operations are all mutex ops, so
// every kernel write of a dead rank happens-before the survivors'
// rollback and adoption — the race detector agrees (`make chaos`).

// errEpochChanged unwinds a survivor out of the level loop when the
// rank membership changed underneath it; the rank rolls back its
// partial level, restores the checkpointed frontier, and replays.
var errEpochChanged = errors.New("bfs: sharded membership changed")

// errFenced terminates a rank that has been declared dead (injected
// crash, exhausted exchange retries, or watchdog-fenced straggler).
var errFenced = errors.New("bfs: rank fenced")

// FTOptions tune the sharded engine's fault-tolerance machinery. The
// zero value of each field means "use the default".
type FTOptions struct {
	// MaxRetries bounds the exchange re-attempts per rank per level
	// before the rank declares itself failed (default 3).
	MaxRetries int
	// RetryBackoff is the first retry's backoff; it doubles per
	// attempt (default 200µs).
	RetryBackoff time.Duration
	// BackoffCap caps the exponential backoff (default 5ms).
	BackoffCap time.Duration
	// LagUnit converts a ranklag factor into wall time: a lagging rank
	// sleeps factor×LagUnit at its exchange seam (default 2ms).
	LagUnit time.Duration
	// StallTimeout is the barrier watchdog's per-collective deadline:
	// a round stalled this long gets its parked absentees fenced, and
	// a round stalled 4× this long with nobody to fence fails the
	// traversal with a typed *fault.Error instead of hanging
	// (default 250ms).
	StallTimeout time.Duration
	// WatchdogPoll is the watchdog's polling interval (default 5ms).
	WatchdogPoll time.Duration
}

func (o FTOptions) withDefaults() FTOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Microsecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 5 * time.Millisecond
	}
	if o.LagUnit <= 0 {
		o.LagUnit = 2 * time.Millisecond
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 250 * time.Millisecond
	}
	if o.WatchdogPoll <= 0 {
		o.WatchdogPoll = 5 * time.Millisecond
	}
	return o
}

// RecoveryStats summarizes the fault-tolerance work of one sharded
// traversal; Result.Recovery carries it back to the caller.
type RecoveryStats struct {
	// RanksLost counts ranks fenced during the traversal.
	RanksLost int
	// Recoveries counts membership changes the survivors recovered
	// from (each fence of a non-final rank is one recovery).
	Recoveries int
	// ExchangeRetries counts exchange attempts re-run after an
	// injected drop.
	ExchangeRetries int
	// CheckpointBytes totals the encoded per-level frontier deltas.
	CheckpointBytes int64
}

// ckptSlot is one segment's checkpoint for one level: the compressed
// frontier delta that, replayed, reconstructs the queue entering level
// Step on that segment. Slots are double-buffered per segment (see
// shardedFT.ckpt): writing level S+1 overwrites level S-1 and keeps
// level S — exactly the replay window recovery needs.
type ckptSlot struct {
	step  int32
	delta []byte
}

// shardedFT is the shared fault-tolerance state of one traversal.
// Every field is guarded by shardedRun.mu except sched (immutable
// during the run) and opts.
type shardedFT struct {
	sched *fault.Schedule
	opts  FTOptions

	live    int
	dead    []bool
	parked  []bool // rank is asleep at a seam (lag or retry backoff)
	present []bool // rank has arrived at the in-progress round
	// parkStep[r] is the level rank r was traversing when it parked;
	// the watchdog stamps fences with it.
	parkStep []int32
	// owner[seg] is the rank currently owning segment seg. Segments
	// are the original 1D partition ranges; ownership moves only when
	// a rank dies (part.Shrink).
	owner []int
	// epoch counts membership changes; every barrier call carries the
	// caller's epoch so stale participants are turned away.
	epoch uint64
	// ckpt[seg][parity] double-buffers each segment's per-level
	// frontier checkpoints (parity = step%2).
	ckpt [][2]ckptSlot

	// wdStop/wdDone bound the watchdog goroutine's lifetime. They
	// live here rather than as locals in RunObserved so the no-fault
	// path pays no escape-analysis allocation for them.
	wdStop chan struct{}
	wdDone chan struct{}

	stats RecoveryStats
}

func newShardedFT(sched *fault.Schedule, opts FTOptions, ranks int) *shardedFT {
	ft := &shardedFT{
		sched:    sched,
		opts:     opts.withDefaults(),
		live:     ranks,
		dead:     make([]bool, ranks),
		parked:   make([]bool, ranks),
		present:  make([]bool, ranks),
		parkStep: make([]int32, ranks),
		owner:    make([]int, ranks),
		ckpt:     make([][2]ckptSlot, ranks),
		wdStop:   make(chan struct{}),
		wdDone:   make(chan struct{}),
	}
	for seg := range ft.owner {
		ft.owner[seg] = seg
	}
	return ft
}

// rankView is one rank's private snapshot of the membership: refreshed
// only under the barrier mutex (at recovery), read freely by the
// kernels. Between refreshes the membership cannot change without the
// rank seeing errEpochChanged first, so stale reads are impossible.
type rankView struct {
	epoch uint64
	owned []int  // segments this rank owns, ascending
	live  []int  // live ranks, ascending
	mine  []bool // mine[seg]: segment is owned by this rank
}

// refresh snapshots the current membership for rank. Caller holds mu.
func (v *rankView) refresh(ft *shardedFT, rank int) {
	v.epoch = ft.epoch
	v.owned = v.owned[:0]
	v.live = v.live[:0]
	if v.mine == nil {
		v.mine = make([]bool, len(ft.owner))
	}
	for seg, r := range ft.owner {
		v.mine[seg] = r == rank
		if r == rank {
			v.owned = append(v.owned, seg)
		}
	}
	for r, d := range ft.dead {
		if !d {
			v.live = append(v.live, r)
		}
	}
}

// fenceLocked declares rank r dead at level step: it leaves the live
// set, its segments move to survivors, the epoch advances, and every
// waiter is woken so the round in progress aborts into recovery. When
// r was the last live rank the traversal fails with the typed
// *fault.Error the degradation ladder in internal/core escalates on.
// Caller holds mu.
func (c *shardedRun) fenceLocked(r int, step int32, kind fault.Kind, reason string) {
	ft := c.ft
	if ft.dead[r] || c.err != nil {
		return
	}
	ft.dead[r] = true
	ft.parked[r] = false
	ft.live--
	ft.stats.RanksLost++
	if c.o.live {
		c.o.event(obs.Event{
			Kind: obs.KindRankLost, Step: step, Dir: obs.DirNone,
			Index: int32(r), Workers: int32(ft.live),
			Detail: reason, Wall: time.Now(),
		})
	}
	if ft.live == 0 {
		c.err = &fault.Error{
			Kind: kind, Device: fmt.Sprintf("rank%d", r), Step: int(step),
			Reason: "no surviving ranks: " + reason,
		}
		c.cond.Broadcast()
		return
	}
	owner, err := part.Shrink(ft.owner, ft.dead)
	if err != nil {
		c.err = err // unreachable: live > 0 guarantees a survivor
		c.cond.Broadcast()
		return
	}
	ft.owner = owner
	ft.epoch++
	ft.stats.Recoveries++
	// Abort the round in progress: partial collective sums are stale
	// the moment membership changes; the replay's choose leader rebuilds
	// them from the survivors' fresh arrivals.
	c.arrived = 0
	for i := range ft.present {
		ft.present[i] = false
	}
	c.vcq, c.ecq, c.unvisited = 0, 0, 0
	c.cond.Broadcast()
}

// die fences the calling rank itself (injected crash or exhausted
// exchange retries).
func (c *shardedRun) die(rank int, step int32, kind fault.Kind, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fenceLocked(rank, step, kind, reason)
}

// watchdog converts a stalled collective into a detected failure
// instead of a hang. It polls the barrier state; when a round makes no
// progress past StallTimeout it fences the live absentees that are
// parked at a seam (the only ranks known quiescent, hence safe to
// fence), and if a stall persists 4× the deadline with nobody safely
// fenceable it fails the whole traversal with a typed *fault.Error.
func (c *shardedRun) watchdog(stop <-chan struct{}) {
	defer close(c.ft.wdDone)
	ticker := time.NewTicker(c.ft.opts.WatchdogPoll)
	defer ticker.Stop()
	var (
		lastGen, lastEpoch uint64
		lastArrived        = -1
		stallStart         time.Time
	)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		ft := c.ft
		if c.err != nil || c.runDone {
			c.mu.Unlock()
			return
		}
		if c.gen != lastGen || ft.epoch != lastEpoch || c.arrived != lastArrived || c.arrived == 0 {
			lastGen, lastEpoch, lastArrived = c.gen, ft.epoch, c.arrived
			stallStart = time.Now()
			c.mu.Unlock()
			continue
		}
		stalled := time.Since(stallStart)
		if stalled < ft.opts.StallTimeout {
			c.mu.Unlock()
			continue
		}
		fenced := false
		for r := 0; r < c.ranks; r++ {
			if !ft.dead[r] && !ft.present[r] && ft.parked[r] {
				c.fenceLocked(r, ft.parkStep[r], fault.RankCrash,
					"watchdog: rank stalled past collective deadline")
				fenced = true
				if c.err != nil {
					break
				}
			}
		}
		if fenced {
			lastGen, lastEpoch, lastArrived = c.gen, ft.epoch, c.arrived
			stallStart = time.Now()
		} else if stalled > 4*ft.opts.StallTimeout {
			// Nobody parked, nobody arriving: an absent rank is stuck
			// somewhere the fencing argument cannot reach. Converting
			// the hang into a typed error keeps the contract that every
			// traversal terminates.
			c.err = &fault.Error{
				Kind: fault.RankCrash, Device: "collective", Step: int(c.ft.parkStepMax()),
				Reason: "barrier stalled with no recoverable rank",
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
	}
}

// parkStepMax is a best-effort level stamp for watchdog failures.
// Caller holds mu.
func (ft *shardedFT) parkStepMax() int32 {
	var max int32
	for _, s := range ft.parkStep {
		if s > max {
			max = s
		}
	}
	return max
}

// parkAndSleep marks the rank quiescent at its seam (making it safe
// for the watchdog to fence) and sleeps d. On wake it reports whether
// the rank is still alive; a fence that landed mid-sleep surfaces as
// errFenced here, and a membership change surfaces at the next
// barrier via the caller's stale epoch.
func (c *shardedRun) parkAndSleep(rank int, step int32, d time.Duration) error {
	ft := c.ft
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return c.err
	}
	if ft.dead[rank] {
		c.mu.Unlock()
		return errFenced
	}
	ft.parked[rank] = true
	ft.parkStep[rank] = step
	c.mu.Unlock()

	time.Sleep(d)

	c.mu.Lock()
	ft.parked[rank] = false
	err := c.err
	dead := ft.dead[rank]
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if dead {
		return errFenced
	}
	return nil
}

// injectSeam runs the rank's fault schedule at the pre-exchange seam
// of each level: injected crashes fence the rank here, lag parks it,
// and exchange drops burn capped-backoff retries that fence the rank
// when exhausted. Every sleep goes through parkAndSleep so the
// watchdog only ever fences quiescent ranks.
func (c *shardedRun) injectSeam(rank int, step int32) error {
	ft := c.ft
	sched := ft.sched
	if _, crashed := sched.RankCrashedBy(rank, int(step)); crashed {
		c.die(rank, step, fault.RankCrash, "injected rank crash")
		return errFenced
	}
	if f := sched.RankLagAt(rank, int(step)); f > 1 {
		d := time.Duration(f * float64(ft.opts.LagUnit))
		if err := c.parkAndSleep(rank, step, d); err != nil {
			return err
		}
	}
	backoff := ft.opts.RetryBackoff
	for attempt := 0; sched.ExchangeDrops(rank, int(step), attempt); attempt++ {
		if attempt >= ft.opts.MaxRetries {
			c.die(rank, step, fault.ExchangeDrop, "exchange retries exhausted")
			return errFenced
		}
		c.mu.Lock()
		ft.stats.ExchangeRetries++
		c.mu.Unlock()
		if err := c.parkAndSleep(rank, step, backoff); err != nil {
			return err
		}
		backoff *= 2
		if backoff > ft.opts.BackoffCap {
			backoff = ft.opts.BackoffCap
		}
	}
	return nil
}

// writeCheckpoint encodes the frontier entering level step (the bits
// of next) as one compressed word delta per owned segment, stamped
// into the segment's parity slot. Written after the exchange applied
// and before the level commits, so at any instant the slots hold the
// current level and the next — the exact window a replay can need.
func (c *shardedRun) writeCheckpoint(rank int, view *rankView, rs *rankState, next []int32, step int32) {
	ft := c.ft
	layout := &c.p.Layout
	rs.ck.Resize(c.g.NumVertices()) // clear + fit
	for _, v := range next {
		rs.ck.Set(int(v))
	}
	var total int64
	for _, seg := range view.owned {
		loW, hiW := layout.WordRange(seg)
		slot := &ft.ckpt[seg][step%2]
		slot.delta = rs.ck.AppendDelta(slot.delta[:0], loW, hiW)
		slot.step = step
		total += int64(len(slot.delta))
	}
	c.mu.Lock()
	ft.stats.CheckpointBytes += total
	c.mu.Unlock()
	if c.o.live {
		c.o.event(obs.Event{
			Kind: obs.KindCheckpoint, Step: step, Dir: obs.DirNone,
			Index: int32(rank), Grains: int64(len(view.owned)),
			Bytes: total, Wall: time.Now(),
		})
	}
}

// recoverFT handles a barrier error in the FT level loop. For
// errEpochChanged it performs one survivor's recovery — refresh the
// membership view (possibly adopting a dead rank's segments), roll
// back this level's partial writes in every owned segment, restore the
// level's entry frontier from the checkpoints, recompute the local
// unvisited count — and returns true so the caller replays the level.
// Any other error (fenced, failed, canceled) returns false and the
// rank exits.
func (c *shardedRun) recoverFT(err error, rank int, view *rankView, rs *rankState, queue *[]int32, unvisitedLocal *int64, step int32) bool {
	if err != errEpochChanged {
		return false
	}
	ft := c.ft
	c.mu.Lock()
	if c.err != nil || ft.dead[rank] {
		c.mu.Unlock()
		return false
	}
	view.refresh(ft, rank)
	c.mu.Unlock()

	start := time.Now()
	restored := int64(-1)
	if c.o.live {
		c.o.event(obs.Event{
			Kind: obs.KindRecoverStart, Step: step, Dir: obs.DirNone,
			Index: int32(rank), Wall: start,
		})
		defer func() {
			c.o.event(obs.Event{
				Kind: obs.KindRecoverEnd, Step: step, Dir: obs.DirNone,
				Index: int32(rank), Scans: restored,
				Wall: time.Now(), WallDur: time.Since(start),
			})
		}()
	}

	// Roll back this level's partial writes: any vertex discovered at
	// the aborted level loses its parent again, in every segment this
	// rank now owns (its own and any just adopted — segment ownership
	// is disjoint across live ranks, so coverage is exact and
	// write-exclusive).
	parent, level := c.res.Parent, c.res.Level
	layout := &c.p.Layout
	for _, seg := range view.owned {
		lo, hi := layout.Range(seg)
		for v := lo; v < hi; v++ {
			if level[v] == step {
				parent[v] = NotVisited //lint:shared-ok owned segment: ownership is exclusive per epoch and the epoch fence ordered the dead rank's writes before this
				level[v] = NotVisited  //lint:shared-ok owned segment: ownership is exclusive per epoch and the epoch fence ordered the dead rank's writes before this
				c.visited.Clear(int(v))
			}
		}
	}

	// Restore the level's entry frontier from the checkpoints. A dead
	// rank's last slot write happened before its final barrier
	// operation, which happened before the fence — so the adopter's
	// read here is ordered.
	q := (*queue)[:0]
	rs.ck.Resize(c.g.NumVertices())
	for _, seg := range view.owned {
		slot := &ft.ckpt[seg][step%2]
		if slot.step != step {
			c.fail(&fault.Error{
				Kind: fault.RankCrash, Device: fmt.Sprintf("segment%d", seg), Step: int(step),
				Reason: fmt.Sprintf("checkpoint for replay level missing (have level %d)", slot.step),
			})
			return false
		}
		loW, hiW := layout.WordRange(seg)
		if _, err := rs.ck.ApplyDelta(slot.delta, loW); err != nil {
			c.fail(fmt.Errorf("bfs: sharded rank %d restoring segment %d: %w", rank, seg, err))
			return false
		}
		q = rs.ck.AppendSetWords(q, loW, hiW)
	}
	*queue = q
	restored = int64(len(q))

	// Recompute the local unvisited count over the (possibly grown)
	// owned set; the rollback already removed this level's discoveries
	// from the visited bitmap.
	var uv int64
	for _, seg := range view.owned {
		lo, hi := layout.Range(seg)
		loW, hiW := layout.WordRange(seg)
		uv += int64(hi-lo) - int64(c.visited.CountWords(loW, hiW))
	}
	*unvisitedLocal = uv
	return true
}

// rankLoopFT is rankLoop's fault-tolerant twin: same level structure,
// but with multi-segment kernels (a rank may own several segments
// after adoption), the injection seam before each exchange, per-level
// checkpoints, and errEpochChanged recovery.
func (c *shardedRun) rankLoopFT(rank int, rs *rankState) {
	layout := &c.p.Layout
	n := c.g.NumVertices()
	if rs.ck == nil {
		rs.ck = bitmap.New(n)
	}
	if len(rs.segDeltas) < c.ranks {
		grown := make([][]byte, c.ranks)
		copy(grown, rs.segDeltas)
		rs.segDeltas = grown
	}

	view := &rankView{}
	c.mu.Lock()
	view.refresh(c.ft, rank)
	c.mu.Unlock()

	queue := rs.queue[:0]
	next := rs.next[:0]
	defer func() { rs.queue, rs.next = queue, next }()

	sh0 := c.p.Shards[rank]
	unvisitedLocal := int64(sh0.Hi - sh0.Lo)
	if sh0.Owns(c.source) {
		queue = append(queue, c.source)
		unvisitedLocal--
	}
	step := int32(1)
	// The frontier entering level 1 is checkpointed before any level
	// runs, so even a first-level death is replayable.
	c.writeCheckpoint(rank, view, rs, queue, step)

	for {
		if err := c.ctx.Err(); err != nil {
			c.fail(err)
			return
		}
		var ecq int64
		if c.needEdges {
			for _, u := range queue {
				sh := c.p.Shards[layout.Owner(u)]
				ecq += sh.Sub.Degree(u - sh.Lo)
			}
		}
		dir, runDone, err := c.chooseRound(rank, view.epoch, int64(len(queue)), ecq, unvisitedLocal, step)
		if err != nil {
			if c.recoverFT(err, rank, view, rs, &queue, &unvisitedLocal, step) {
				continue
			}
			return
		}
		if runDone {
			return
		}

		next = next[:0]
		var found, scans int64
		var frontierBytes, ghostSentBytes int64
		var ghostRecv, ghostApplied int64
		parent, level := c.res.Parent, c.res.Level

		switch dir {
		case TopDown:
			out := rs.out[:c.ranks]
			for d := range out {
				out[d] = out[d][:0]
			}
			for i, u := range queue {
				if i%ctxStride == ctxStride-1 {
					if err := c.ctx.Err(); err != nil {
						c.fail(err)
						return
					}
				}
				useg := layout.Owner(u)
				sh := c.p.Shards[useg]
				for _, v := range sh.Sub.Neighbors(u - sh.Lo) {
					dseg := useg
					if v < sh.Lo || v >= sh.Hi {
						dseg = layout.Owner(v)
					}
					if view.mine[dseg] {
						if !c.visited.Get(int(v)) {
							c.visited.Set(int(v))
							parent[v] = u   //lint:shared-ok owned segment: v is in a segment this rank owns this epoch and ownership is exclusive
							level[v] = step //lint:shared-ok owned segment: v is in a segment this rank owns this epoch and ownership is exclusive
							next = append(next, v)
						}
					} else {
						out[dseg] = append(out[dseg], v, u)
					}
				}
			}
			c.outboxes[rank] = out
			for d, pairs := range out {
				if !view.mine[d] {
					ghostSentBytes += int64(len(pairs)) * 4
				}
			}
			if err := c.injectSeam(rank, step); err != nil {
				if c.recoverFT(err, rank, view, rs, &queue, &unvisitedLocal, step) {
					continue
				}
				return
			}
			applyGhosts := func() error {
				if err := c.round(rank, view.epoch, nil, nil); err != nil {
					return err
				}
				// The round completing proves the membership did not
				// change inside it, so the snapshot's live set is exact
				// here. The own-rank outbox rows for owned segments are
				// empty by construction, so s ranges over remote sources.
				for _, s := range view.live {
					if s == rank {
						continue
					}
					for _, seg := range view.owned {
						in := c.outboxes[s][seg]
						for i := 0; i+1 < len(in); i += 2 {
							v, u := in[i], in[i+1]
							ghostRecv++
							if !c.visited.Get(int(v)) {
								c.visited.Set(int(v))
								parent[v] = u   //lint:shared-ok owned segment: the outbox routed v to its owning segment and only the current owner applies it
								level[v] = step //lint:shared-ok owned segment: the outbox routed v to its owning segment and only the current owner applies it
								next = append(next, v)
								ghostApplied++
							}
						}
					}
				}
				return nil
			}
			if err := c.observeExchange(rank, step, dir, &ghostSentBytes, applyGhosts); err != nil {
				if c.recoverFT(err, rank, view, rs, &queue, &unvisitedLocal, step) {
					continue
				}
				return
			}
			if c.o.live && c.ranks > 1 {
				c.o.event(obs.Event{
					Kind: obs.KindGhostUpdate, Step: step, Dir: obs.DirNone,
					Index: int32(rank), Scans: ghostRecv, Discovered: ghostApplied,
					Bytes: ghostRecv * 8, Wall: time.Now(),
				})
			}
			found = int64(len(next))

		case BottomUp:
			rs.front.Resize(n) // clear + fit
			for _, v := range queue {
				rs.front.Set(int(v))
			}
			for _, seg := range view.owned {
				loW, hiW := layout.WordRange(seg)
				delta := rs.front.AppendDelta(rs.segDeltas[seg][:0], loW, hiW)
				rs.segDeltas[seg] = delta
				c.deltas[seg] = delta
				frontierBytes += int64(len(delta))
			}
			if err := c.injectSeam(rank, step); err != nil {
				if c.recoverFT(err, rank, view, rs, &queue, &unvisitedLocal, step) {
					continue
				}
				return
			}
			gatherFrontier := func() error {
				if err := c.round(rank, view.epoch, nil, nil); err != nil {
					return err
				}
				for seg := 0; seg < c.ranks; seg++ {
					if view.mine[seg] {
						continue
					}
					segLoW, _ := layout.WordRange(seg)
					if _, err := rs.front.ApplyDelta(c.deltas[seg], segLoW); err != nil {
						err = fmt.Errorf("bfs: sharded rank %d: %w", rank, err)
						c.fail(err)
						return err
					}
				}
				return nil
			}
			if err := c.observeExchange(rank, step, dir, &frontierBytes, gatherFrontier); err != nil {
				if c.recoverFT(err, rank, view, rs, &queue, &unvisitedLocal, step) {
					continue
				}
				return
			}
			for _, seg := range view.owned {
				sh := c.p.Shards[seg]
				lo, hi := int(sh.Lo), int(sh.Hi)
				for v := lo; v < hi; v++ {
					if v%ctxStride == ctxStride-1 {
						if err := c.ctx.Err(); err != nil {
							c.fail(err)
							return
						}
					}
					if c.visited.Get(v) {
						continue
					}
					for _, u := range sh.Sub.Neighbors(int32(v - lo)) {
						scans++
						if rs.front.Get(int(u)) {
							c.visited.Set(v)
							parent[v] = u   //lint:shared-ok owned segment: v iterates segments this rank owns this epoch only
							level[v] = step //lint:shared-ok owned segment: v iterates segments this rank owns this epoch only
							next = append(next, int32(v))
							break
						}
					}
				}
			}
			found = int64(len(next))

		default:
			c.fail(fmt.Errorf("bfs: policy returned unknown direction %d", dir))
			return
		}

		// Checkpoint the next level's entry frontier before committing
		// this one: after endRound succeeds, any rank may need to
		// replay level step+1, and this is the delta it will read.
		c.writeCheckpoint(rank, view, rs, next, step+1)

		if err := c.endRound(rank, view.epoch, step, dir, found, scans, frontierBytes, ghostSentBytes, ghostRecv, ghostApplied); err != nil {
			if c.recoverFT(err, rank, view, rs, &queue, &unvisitedLocal, step) {
				continue
			}
			return
		}
		unvisitedLocal -= found
		queue, next = next, queue
		step++
	}
}
