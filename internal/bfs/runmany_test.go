package bfs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// sampleRoots picks up to max distinct non-isolated vertices, evenly
// spread over the id range. (graph500.SampleRoots is the public
// sampler; it cannot be imported here without a cycle.)
func sampleRoots(t *testing.T, g interface {
	NumVertices() int
	Degree(int32) int64
}, max int) []int32 {
	t.Helper()
	n := g.NumVertices()
	stride := n/max + 1
	var roots []int32
	for v := 0; v < n && len(roots) < max; v += stride {
		for u := v; u < n; u++ {
			if g.Degree(int32(u)) > 0 {
				roots = append(roots, int32(u))
				break
			}
		}
	}
	if len(roots) == 0 {
		t.Fatal("no usable roots")
	}
	return roots
}

// TestRunManyMatchesIndependentRuns is the batching property test:
// with a deterministic (Workers: 1) engine, RunMany over N roots is
// element-wise identical to N independent Run calls, at every
// concurrency setting.
func TestRunManyMatchesIndependentRuns(t *testing.T) {
	g := testRMAT(t, 10, 8, 2)
	roots := sampleRoots(t, g, 12)
	for _, e := range []Engine{SerialEngine(), HybridEngine(64, 64, 1)} {
		for _, conc := range []int{1, 4, 0} {
			got, err := RunMany(g, roots, ManyOptions{Engine: e, Concurrency: conc})
			if err != nil {
				t.Fatalf("%s conc=%d: %v", e.Name(), conc, err)
			}
			if len(got) != len(roots) {
				t.Fatalf("%s conc=%d: %d results, want %d", e.Name(), conc, len(got), len(roots))
			}
			for i, root := range roots {
				want, err := e.Run(g, root, nil)
				if err != nil {
					t.Fatal(err)
				}
				exactSame(t, fmt.Sprintf("%s conc=%d root[%d]=%d", e.Name(), conc, i, root), want, got[i])
			}
		}
	}
}

// TestRunManyParallelEnginesValid covers the default (parallel)
// engine, whose Parent tie-breaks are nondeterministic: levels must
// still match the serial reference and every tree must validate.
func TestRunManyParallelEnginesValid(t *testing.T) {
	g := testRMAT(t, 10, 8, 4)
	roots := sampleRoots(t, g, 8)
	results, err := RunMany(g, roots, ManyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, root := range roots {
		want, err := Serial(g, root)
		if err != nil {
			t.Fatal(err)
		}
		sameTraversal(t, fmt.Sprintf("root[%d]=%d", i, root), want, results[i])
		if err := Validate(g, results[i]); err != nil {
			t.Fatalf("root[%d]=%d: %v", i, root, err)
		}
	}
}

// TestRunManyFuncDeliversEachIndexOnce checks the dispatch contract
// that makes unsynchronized indexed writes in callbacks safe.
func TestRunManyFuncDeliversEachIndexOnce(t *testing.T) {
	g := testRMAT(t, 9, 8, 1)
	roots := sampleRoots(t, g, 16)
	counts := make([]atomic.Int32, len(roots))
	err := RunManyFunc(g, roots, ManyOptions{Concurrency: 4}, func(i int, root int32, r *Result) error {
		if roots[i] != root {
			return fmt.Errorf("callback got root %d at index %d, want %d", root, i, roots[i])
		}
		if r.Source != root {
			return fmt.Errorf("result source %d, want %d", r.Source, root)
		}
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Errorf("index %d delivered %d times", i, n)
		}
	}
}

func TestRunManyPropagatesCallbackError(t *testing.T) {
	g := pathGraph(t, 20)
	roots := []int32{0, 5, 10, 15}
	sentinel := errors.New("boom")
	for _, conc := range []int{1, 3} {
		err := RunManyFunc(g, roots, ManyOptions{Concurrency: conc}, func(i int, _ int32, _ *Result) error {
			if i == 2 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("conc=%d: err = %v, want sentinel", conc, err)
		}
	}
}

// TestRunManyFuncFailFastSequential pins the fail-fast contract in
// its deterministic form: with Concurrency 1, an error at index 2
// means exactly indexes 0, 1, 2 were delivered, in order.
func TestRunManyFuncFailFastSequential(t *testing.T) {
	g := pathGraph(t, 20)
	roots := []int32{0, 3, 6, 9, 12, 15}
	sentinel := errors.New("boom")
	var seen []int
	err := RunManyFunc(g, roots, ManyOptions{Concurrency: 1}, func(i int, _ int32, _ *Result) error {
		seen = append(seen, i)
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("delivered indexes %v, want [0 1 2]", seen)
	}
}

// TestRunManyFuncFailFastConcurrent is the regression test for the
// check-then-claim race: before the post-claim failed re-check, a
// worker could observe no failure, claim a root, and start a fresh
// traversal after a sibling had already failed the batch. With many
// cheap roots, a first-callback error must abandon almost all of them.
func TestRunManyFuncFailFastConcurrent(t *testing.T) {
	g := pathGraph(t, 64)
	roots := make([]int32, 4096)
	sentinel := errors.New("boom")
	counts := make([]atomic.Int32, len(roots))
	var delivered atomic.Int64
	err := RunManyFunc(g, roots, ManyOptions{Concurrency: 8}, func(i int, _ int32, _ *Result) error {
		counts[i].Add(1)
		if delivered.Add(1) == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	for i := range counts {
		if n := counts[i].Load(); n > 1 {
			t.Errorf("index %d delivered %d times", i, n)
		}
	}
	if n := delivered.Load(); n > int64(len(roots))/8 {
		t.Errorf("%d of %d roots delivered after first-callback error; fail-fast regressed", n, len(roots))
	}
}

func TestRunManyPropagatesEngineError(t *testing.T) {
	g := pathGraph(t, 6)
	for _, conc := range []int{1, 2} {
		_, err := RunMany(g, []int32{0, 99, 3}, ManyOptions{Concurrency: conc})
		if err == nil {
			t.Errorf("conc=%d: out-of-range root accepted", conc)
		}
	}
}

func TestRunManyEmptyRoots(t *testing.T) {
	g := pathGraph(t, 4)
	results, err := RunMany(g, nil, ManyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results for zero roots", len(results))
	}
}
