package bfs

import (
	"testing"

	"crossbfs/internal/graph"
	"crossbfs/internal/invariant"
	"crossbfs/internal/rmat"
)

// mustInvariants runs the runtime verification layer over a completed
// traversal — every kernel test calls it so a silently corrupted
// parent tree can never pass the suite.
func mustInvariants(t *testing.T, name string, g *graph.CSR, r *Result) {
	t.Helper()
	if err := invariant.Check(g, r.Source, r.Parent, r.Level); err != nil {
		t.Errorf("%s: invariant violated: %v", name, err)
	}
}

// pathGraph returns 0-1-2-...-(n-1).
func pathGraph(t *testing.T, n int) *graph.CSR {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1)})
	}
	return mustBuild(t, n, edges)
}

// starGraph returns a hub 0 connected to 1..n-1.
func starGraph(t *testing.T, n int) *graph.CSR {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{From: 0, To: int32(i)})
	}
	return mustBuild(t, n, edges)
}

func mustBuild(t *testing.T, n int, edges []graph.Edge) *graph.CSR {
	t.Helper()
	g, err := graph.Build(n, edges, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func testRMAT(t *testing.T, scale, ef int, seed uint64) *graph.CSR {
	t.Helper()
	p := rmat.DefaultParams(scale, ef)
	p.Seed = seed
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatalf("rmat.Generate: %v", err)
	}
	return g
}

func TestSerialPath(t *testing.T) {
	g := pathGraph(t, 5)
	r, err := Serial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 5; v++ {
		if r.Level[v] != v {
			t.Errorf("Level[%d] = %d, want %d", v, r.Level[v], v)
		}
	}
	if r.Parent[0] != 0 {
		t.Error("source parent wrong")
	}
	for v := int32(1); v < 5; v++ {
		if r.Parent[v] != v-1 {
			t.Errorf("Parent[%d] = %d, want %d", v, r.Parent[v], v-1)
		}
	}
	if r.VisitedCount != 5 {
		t.Errorf("VisitedCount = %d, want 5", r.VisitedCount)
	}
	if r.Depth() != 4 {
		t.Errorf("Depth = %d, want 4", r.Depth())
	}
	if err := Validate(g, r); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSerialStar(t *testing.T) {
	g := starGraph(t, 100)
	r, err := Serial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(1); v < 100; v++ {
		if r.Level[v] != 1 || r.Parent[v] != 0 {
			t.Fatalf("leaf %d: level %d parent %d", v, r.Level[v], r.Parent[v])
		}
	}
	// Search from a leaf: hub at 1, other leaves at 2.
	r2, err := Serial(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Level[0] != 1 || r2.Level[17] != 2 {
		t.Errorf("from leaf: hub level %d, other leaf level %d", r2.Level[0], r2.Level[17])
	}
}

func TestSerialDisconnected(t *testing.T) {
	g := mustBuild(t, 6, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 3, To: 4}})
	r, err := Serial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int32{3, 4, 5} {
		if r.Level[v] != NotVisited || r.Parent[v] != NotVisited {
			t.Errorf("vertex %d in other component was visited", v)
		}
	}
	if r.VisitedCount != 3 {
		t.Errorf("VisitedCount = %d, want 3", r.VisitedCount)
	}
	if err := Validate(g, r); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSerialIsolatedSource(t *testing.T) {
	g := mustBuild(t, 3, []graph.Edge{{From: 1, To: 2}})
	r, err := Serial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VisitedCount != 1 || r.Level[0] != 0 {
		t.Error("isolated source traversal wrong")
	}
	if r.NumLevels() != 1 {
		t.Errorf("NumLevels = %d, want 1", r.NumLevels())
	}
}

func TestSourceOutOfRange(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := Serial(g, 7); err == nil {
		t.Error("out-of-range source accepted by Serial")
	}
	if _, err := Serial(g, -1); err == nil {
		t.Error("negative source accepted by Serial")
	}
	if _, err := Run(g, 99, Options{}); err == nil {
		t.Error("out-of-range source accepted by Run")
	}
}

// sameTraversal checks two results agree on levels (parents may
// differ legitimately — any parent one level up is a valid BFS tree).
func sameTraversal(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if len(want.Level) != len(got.Level) {
		t.Fatalf("%s: level map sizes differ", name)
	}
	for v := range want.Level {
		if want.Level[v] != got.Level[v] {
			t.Fatalf("%s: Level[%d] = %d, want %d", name, v, got.Level[v], want.Level[v])
		}
	}
	if want.VisitedCount != got.VisitedCount {
		t.Fatalf("%s: VisitedCount %d, want %d", name, got.VisitedCount, want.VisitedCount)
	}
	if want.TraversedEdges != got.TraversedEdges {
		t.Fatalf("%s: TraversedEdges %d, want %d", name, got.TraversedEdges, want.TraversedEdges)
	}
}

func TestKernelsAgreeWithSerial(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"path":  pathGraph(t, 17),
		"star":  starGraph(t, 33),
		"rmat9": testRMAT(t, 9, 8, 1),
		"rmat8": testRMAT(t, 8, 16, 7),
	}
	for name, g := range graphs {
		src := int32(0)
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(int32(v)) > 0 {
				src = int32(v)
				break
			}
		}
		want, err := Serial(g, src)
		if err != nil {
			t.Fatalf("%s: Serial: %v", name, err)
		}
		for _, workers := range []int{1, 4} {
			td, err := RunTopDown(g, src, workers)
			if err != nil {
				t.Fatalf("%s: top-down: %v", name, err)
			}
			sameTraversal(t, name+"/topdown", want, td)
			if err := Validate(g, td); err != nil {
				t.Errorf("%s: top-down invalid: %v", name, err)
			}
			mustInvariants(t, name+"/topdown", g, td)

			bu, err := RunBottomUp(g, src, workers)
			if err != nil {
				t.Fatalf("%s: bottom-up: %v", name, err)
			}
			sameTraversal(t, name+"/bottomup", want, bu)
			if err := Validate(g, bu); err != nil {
				t.Errorf("%s: bottom-up invalid: %v", name, err)
			}
			mustInvariants(t, name+"/bottomup", g, bu)

			for _, mn := range [][2]float64{{1, 1}, {10, 10}, {64, 64}, {300, 300}, {2, 500}} {
				hy, err := Hybrid(g, src, mn[0], mn[1], workers)
				if err != nil {
					t.Fatalf("%s: hybrid(%v): %v", name, mn, err)
				}
				sameTraversal(t, name+"/hybrid", want, hy)
				if err := Validate(g, hy); err != nil {
					t.Errorf("%s: hybrid(%v) invalid: %v", name, mn, err)
				}
				mustInvariants(t, name+"/hybrid", g, hy)
			}
		}
	}
}

func TestHybridActuallySwitches(t *testing.T) {
	g := testRMAT(t, 10, 16, 3)
	r, err := Hybrid(g, 0, 300, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawTD, sawBU bool
	for _, d := range r.Directions {
		switch d {
		case TopDown:
			sawTD = true
		case BottomUp:
			sawBU = true
		}
	}
	if !sawTD || !sawBU {
		t.Errorf("hybrid with M=N=300 used directions %v; want both", r.Directions)
	}
}

func TestMNPolicy(t *testing.T) {
	info := StepInfo{
		FrontierVertices: 100, FrontierEdges: 1000,
		TotalVertices: 10000, TotalEdges: 100000,
	}
	// |E|/M = 1000 exactly: >= threshold switches to bottom-up.
	if d := (MN{M: 100, N: 1}).Choose(info); d != BottomUp {
		t.Errorf("edge threshold: got %s", d)
	}
	// Just under both thresholds: top-down.
	if d := (MN{M: 99, N: 99}).Choose(info); d != TopDown {
		t.Errorf("under thresholds: got %s", d)
	}
	// Vertex threshold alone triggers.
	if d := (MN{M: 1, N: 100}).Choose(info); d != BottomUp {
		t.Errorf("vertex threshold: got %s", d)
	}
}

func TestMNValidate(t *testing.T) {
	if (MN{M: 1, N: 1}).Validate() != nil {
		t.Error("valid MN rejected")
	}
	if (MN{M: 0, N: 1}).Validate() == nil {
		t.Error("M=0 accepted")
	}
	if (MN{M: 1, N: -3}).Validate() == nil {
		t.Error("negative N accepted")
	}
	if _, err := Run(pathGraph(t, 3), 0, Options{Policy: MN{}}); err == nil {
		t.Error("Run accepted zero-value MN policy")
	}
}

func TestRunRejectsUnknownDirection(t *testing.T) {
	g := pathGraph(t, 4)
	bad := PolicyFunc(func(StepInfo) Direction { return Direction(9) })
	if _, err := Run(g, 0, Options{Policy: bad}); err == nil {
		t.Error("unknown direction accepted")
	}
}

func TestDirectionString(t *testing.T) {
	if TopDown.String() != "TD" || BottomUp.String() != "BU" {
		t.Error("direction strings wrong")
	}
	if Direction(5).String() == "" {
		t.Error("unknown direction has empty string")
	}
}

func TestValidateCatchesCorruptedResults(t *testing.T) {
	g := testRMAT(t, 9, 8, 2)
	var src int32
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			src = int32(v)
			break
		}
	}
	r, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, r); err != nil {
		t.Fatalf("clean result invalid: %v", err)
	}

	corrupt := func(mutate func(*Result)) error {
		c := &Result{
			Source: r.Source,
			Parent: append([]int32(nil), r.Parent...),
			Level:  append([]int32(nil), r.Level...),
		}
		mutate(c)
		return Validate(g, c)
	}

	// Find a visited non-source vertex with level >= 2.
	var deep int32 = -1
	for v, l := range r.Level {
		if l >= 2 {
			deep = int32(v)
			break
		}
	}
	if deep < 0 {
		t.Fatal("test graph too shallow")
	}

	if corrupt(func(c *Result) { c.Level[deep]++ }) == nil {
		t.Error("wrong level not caught")
	}
	if corrupt(func(c *Result) { c.Parent[deep] = deep }) == nil {
		t.Error("self-parent cycle not caught")
	}
	if corrupt(func(c *Result) { c.Parent[deep] = NotVisited }) == nil {
		t.Error("parent/level visitedness disagreement not caught")
	}
	if corrupt(func(c *Result) { c.Level[r.Source] = 1 }) == nil {
		t.Error("non-zero source level not caught")
	}
	if corrupt(func(c *Result) { c.Parent[r.Source] = NotVisited; c.Level[r.Source] = NotVisited }) == nil {
		t.Error("unvisited source not caught")
	}
	// Mark a visited vertex unvisited entirely: breaks component rule.
	if corrupt(func(c *Result) { c.Parent[deep] = NotVisited; c.Level[deep] = NotVisited }) == nil {
		t.Error("hole in visited component not caught")
	}
}

func TestValidateCatchesNonTreeEdgeParent(t *testing.T) {
	// Parent not adjacent to child: levels can still be consistent on
	// a 4-cycle if we claim the wrong parent.
	g := mustBuild(t, 4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0}})
	r, err := Serial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices 1 and 3 are both level 1; vertex 2 is level 2 with
	// parent 1 or 3. Claim a parent that is level-consistent but, for
	// vertex 1, not adjacent: parent of 1 := 3? (1,3) is not an edge,
	// but both are level 1 so the level rule can't catch it alone.
	c := &Result{Source: 0, Parent: append([]int32(nil), r.Parent...), Level: append([]int32(nil), r.Level...)}
	c.Parent[2] = 0 // (0,2) is not an edge; levels 0 -> 2 also break
	if Validate(g, c) == nil {
		t.Error("non-edge parent not caught")
	}
}

func TestResultCounters(t *testing.T) {
	g := testRMAT(t, 9, 8, 5)
	r, err := Serial(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var visited, traversed int64
	for v, l := range r.Level {
		if l != NotVisited {
			visited++
			traversed += g.Degree(int32(v))
		}
	}
	if r.VisitedCount != visited || r.TraversedEdges != traversed {
		t.Errorf("counters: visited %d/%d traversed %d/%d",
			r.VisitedCount, visited, r.TraversedEdges, traversed)
	}
}

// TestRunCheckInvariants exercises the in-traversal verification
// layer: with CheckInvariants on, every policy and worker count must
// still complete (the per-step frontier checks hold on correct
// kernels), and the result must match the serial reference.
func TestRunCheckInvariants(t *testing.T) {
	g := testRMAT(t, 10, 16, 9)
	var src int32
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			src = int32(v)
			break
		}
	}
	want, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	policies := map[string]Policy{
		"topdown":  AlwaysTopDown,
		"bottomup": AlwaysBottomUp,
		"mn":       MN{M: 64, N: 64},
		"alpha":    NewAlphaBeta(0, 0),
	}
	for name, p := range policies {
		for _, workers := range []int{1, 4} {
			r, err := Run(g, src, Options{Policy: p, Workers: workers, CheckInvariants: true})
			if err != nil {
				t.Fatalf("%s/%d workers: %v", name, workers, err)
			}
			sameTraversal(t, name+"/checked", want, r)
		}
	}
}

func TestBottomUpScansMatchKernel(t *testing.T) {
	// The kernels report actual scan counts; the serial and parallel
	// bottom-up kernels must agree exactly (same early-exit order).
	g := testRMAT(t, 9, 16, 11)
	r1, err := RunBottomUp(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunBottomUp(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.StepScans) != len(r4.StepScans) {
		t.Fatalf("step counts differ: %d vs %d", len(r1.StepScans), len(r4.StepScans))
	}
	for i := range r1.StepScans {
		if r1.StepScans[i] != r4.StepScans[i] {
			t.Errorf("step %d scans: serial %d vs parallel %d", i+1, r1.StepScans[i], r4.StepScans[i])
		}
	}
}
