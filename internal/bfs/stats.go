package bfs

import (
	"context"
	"fmt"

	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
)

// LevelStats holds the exact work counts of one expansion step,
// independent of the direction that actually executed it.
type LevelStats struct {
	// Step is the paper's 1-based level number.
	Step int
	// FrontierVertices is |V|cq: vertices at distance Step-1.
	FrontierVertices int64
	// FrontierEdges is |E|cq: the adjacency entries a top-down step
	// must traverse (paper §II-A: "top-down will always visit |E|cq").
	FrontierEdges int64
	// Discovered is the number of vertices assigned distance Step.
	Discovered int64
	// UnvisitedVertices is the number of vertices without a level when
	// the step starts — the vertices a bottom-up step iterates.
	UnvisitedVertices int64
	// UnvisitedEdges is the sum of their degrees, the paper's |E|un
	// upper bound on bottom-up work.
	UnvisitedEdges int64
	// BottomUpScans is the exact number of adjacency entries a
	// bottom-up step scans, accounting for the early exit at the first
	// parent found.
	BottomUpScans int64
	// MaxFrontierDegree is the largest degree among frontier vertices:
	// the critical path of a vertex-parallel top-down step, since one
	// thread walks a hub's whole adjacency list serially.
	MaxFrontierDegree int64
	// MaxScan is the longest single-vertex scan a bottom-up step
	// performs — the analogous critical path for bottom-up.
	MaxScan int64
	// GraphVertices is |V|, carried on every step so cost models can
	// size the traversal's bitmap working set against device caches.
	GraphVertices int64
}

// Trace is the complete per-level work profile of one (graph, source)
// traversal. Because BFS level sets are direction-independent, a
// single trace prices *any* switching policy: replaying a policy over
// the trace is pure arithmetic. This is what makes exhaustive
// switching-point search (1000 candidates, paper Fig. 8) affordable.
type Trace struct {
	Source       int32
	NumVertices  int64
	NumEdges     int64
	Reachable    int64 // vertices in the source's component
	EdgesVisited int64 // TraversedEdges of the underlying result
	Steps        []LevelStats
}

// NumSteps returns the number of expansion steps (the last step
// expands the deepest frontier and discovers nothing).
func (t *Trace) NumSteps() int { return len(t.Steps) }

// Depth returns the largest BFS level reached.
func (t *Trace) Depth() int {
	if len(t.Steps) == 0 {
		return 0
	}
	return len(t.Steps) - 1
}

// MeanScan returns the average bottom-up scan length of step s — the
// divergence driver for wide-SIMT devices (long fruitless scans on
// early levels, short early-exit scans once the frontier is large).
func (s LevelStats) MeanScan() float64 {
	if s.UnvisitedVertices == 0 {
		return 0
	}
	return float64(s.BottomUpScans) / float64(s.UnvisitedVertices)
}

// ComputeTrace derives the full per-level work profile from a
// completed traversal. Cost: one pass over all vertices per level
// plus one adjacency pass to find each vertex's earliest potential
// parent — O(D*V + E) for depth D.
func ComputeTrace(g *graph.CSR, r *Result) (*Trace, error) {
	if err := Validate(g, r); err != nil {
		return nil, fmt.Errorf("bfs: trace requires a valid result: %w", err)
	}
	n := g.NumVertices()
	depth := int(r.Depth())
	steps := depth + 1 // the final step expands level `depth` and finds nothing

	countAt := make([]int64, depth+1)      // vertices per level
	degAt := make([]int64, depth+1)        // degree sum per level
	maxDegAt := make([]int64, depth+1)     // max degree per level
	scanFound := make([]int64, depth+2)    // early-exit scans of vertices discovered at each level
	maxScanFound := make([]int64, depth+2) // longest early-exit scan per level
	var unreachableCount, unreachableDeg, unreachableMaxDeg int64

	for v := 0; v < n; v++ {
		l := r.Level[v]
		deg := g.Degree(int32(v))
		if l == NotVisited {
			unreachableCount++
			unreachableDeg += deg
			unreachableMaxDeg = max(unreachableMaxDeg, deg)
			continue
		}
		countAt[l]++
		degAt[l] += deg
		maxDegAt[l] = max(maxDegAt[l], deg)
		if l == 0 {
			continue
		}
		// Early-exit position: a bottom-up step at level l scans v's
		// neighbors in CSR order until the first one in the frontier
		// (level l-1). The BFS edge property guarantees one exists.
		pos := int64(-1)
		for i, u := range g.Neighbors(int32(v)) {
			if r.Level[u] == l-1 {
				pos = int64(i)
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("bfs: vertex %d at level %d has no neighbor at level %d", v, l, l-1)
		}
		scanFound[l] += pos + 1
		maxScanFound[l] = max(maxScanFound[l], pos+1)
	}

	// Suffix aggregates: vertices/edges/max degree at level >= i.
	// Sized depth+3 so that index i+1 is in range (and zero) for the
	// final step i = depth+1.
	suffixCount := make([]int64, depth+3)
	suffixDeg := make([]int64, depth+3)
	suffixMaxDeg := make([]int64, depth+3)
	for l := depth; l >= 0; l-- {
		suffixCount[l] = suffixCount[l+1] + countAt[l]
		suffixDeg[l] = suffixDeg[l+1] + degAt[l]
		suffixMaxDeg[l] = max(suffixMaxDeg[l+1], maxDegAt[l])
	}

	t := &Trace{
		Source:       r.Source,
		NumVertices:  int64(n),
		NumEdges:     g.NumEdges(),
		Reachable:    r.VisitedCount,
		EdgesVisited: r.TraversedEdges,
		Steps:        make([]LevelStats, steps),
	}
	for i := 1; i <= steps; i++ {
		s := &t.Steps[i-1]
		s.Step = i
		s.GraphVertices = int64(n)
		s.FrontierVertices = countAt[i-1]
		s.FrontierEdges = degAt[i-1]
		if i <= depth {
			s.Discovered = countAt[i]
		}
		s.UnvisitedVertices = suffixCount[i] + unreachableCount
		s.UnvisitedEdges = suffixDeg[i] + unreachableDeg
		// Scans: discovered vertices stop at their first parent; still-
		// deeper and unreachable vertices scan their whole list in vain.
		s.BottomUpScans = scanFound[i] + suffixDeg[i+1] + unreachableDeg
		s.MaxFrontierDegree = maxDegAt[i-1]
		s.MaxScan = max(maxScanFound[i], max(suffixMaxDeg[i+1], unreachableMaxDeg))
	}
	return t, nil
}

// TraceFrom runs a BFS (serial reference) and returns its trace — the
// usual entry point for experiment drivers.
func TraceFrom(g *graph.CSR, source int32) (*Trace, error) {
	return TraceFromWith(g, source, nil)
}

// TraceFromWith is TraceFrom with a reusable traversal workspace: the
// serial reference BFS runs out of ws, so sweep drivers (the tuner's
// corpus builder, the multi-root TEPS loops) stop reallocating the
// traversal working set per root. The returned Trace owns its memory
// and stays valid after ws is reused.
func TraceFromWith(g *graph.CSR, source int32, ws *Workspace) (*Trace, error) {
	r, err := SerialEngine().Run(g, source, ws)
	if err != nil {
		return nil, err
	}
	return ComputeTrace(g, r)
}

// TraceFromContext is TraceFromWith under a context: the reference
// traversal checks ctx at every level boundary, so deadline-bound
// drivers (bfsrun -timeout) abandon a too-large graph promptly instead
// of tracing it to completion first.
func TraceFromContext(ctx context.Context, g *graph.CSR, source int32, ws *Workspace) (*Trace, error) {
	r, err := SerialEngine().RunContext(ctx, g, source, ws)
	if err != nil {
		return nil, err
	}
	return ComputeTrace(g, r)
}

// TraceFromObserved is TraceFromContext with a telemetry recorder on
// the reference traversal, so drivers that both price plans and export
// a trace file (bfsrun -trace) get the real per-level events and the
// analytical Trace from one BFS instead of two.
//
// Note the division of labour: live per-level telemetry flows through
// the Recorder as the traversal runs, while the Trace's exhaustive
// work profile (|E|un, bottom-up scan counts for directions that did
// not execute) is derived afterwards by ComputeTrace. The runner
// collects nothing for either unless asked — policies that opt out of
// |E|cq via EdgeCountOptOut skip the per-level degree pass whenever no
// live recorder is attached.
func TraceFromObserved(ctx context.Context, g *graph.CSR, source int32, ws *Workspace, rec obs.Recorder) (*Trace, error) {
	r, err := SerialEngine().RunObserved(ctx, g, source, ws, rec)
	if err != nil {
		return nil, err
	}
	return ComputeTrace(g, r)
}
