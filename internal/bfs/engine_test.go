package bfs

import (
	"strings"
	"testing"

	"crossbfs/internal/graph"
)

// TestEnginesAgreeWithSerial checks every Engine implementation, with
// both a fresh and a reused workspace, against the serial reference:
// same level map, same reachable set, Graph 500-valid parent tree.
func TestEnginesAgreeWithSerial(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"path": pathGraph(t, 17),
		"star": starGraph(t, 33),
		"rmat": testRMAT(t, 10, 8, 1),
	}
	engines := []Engine{
		SerialEngine(),
		TopDownEngine(0),
		BottomUpEngine(0),
		EdgeParallelEngine(0),
		HybridEngine(64, 64, 0),
		BeamerEngine(0, 0, 0),
		HongEngine(0),
		DefaultEngine(),
		EngineFor(Options{Policy: MN{M: 32, N: 32}, CheckInvariants: true}),
	}
	for gname, g := range graphs {
		src := firstUsable(t, g)
		want, err := Serial(g, src)
		if err != nil {
			t.Fatalf("%s: serial reference: %v", gname, err)
		}
		for _, e := range engines {
			name := gname + "/" + e.Name()
			ws := NewWorkspace(g.NumVertices())
			for _, mode := range []struct {
				tag string
				ws  *Workspace
			}{{"fresh", nil}, {"reused-1", ws}, {"reused-2", ws}} {
				got, err := e.Run(g, src, mode.ws)
				if err != nil {
					t.Fatalf("%s (%s): %v", name, mode.tag, err)
				}
				sameTraversal(t, name+" ("+mode.tag+")", want, got)
				if err := Validate(g, got); err != nil {
					t.Fatalf("%s (%s): validate: %v", name, mode.tag, err)
				}
			}
		}
	}
}

// TestEngineResultAliasesWorkspace pins the ownership contract: the
// Result returned from a workspace run is backed by the workspace, so
// the next traversal overwrites it — and Clone detaches it.
func TestEngineResultAliasesWorkspace(t *testing.T) {
	g := pathGraph(t, 12)
	e := SerialEngine()
	ws := NewWorkspace(g.NumVertices())

	first, err := e.Run(g, 0, ws)
	if err != nil {
		t.Fatal(err)
	}
	clone := first.Clone()
	if _, err := e.Run(g, 11, ws); err != nil {
		t.Fatal(err)
	}
	if first.Source != 11 {
		t.Errorf("aliased result kept Source = %d; expected the second run (source 11) to overwrite it", first.Source)
	}
	if clone.Source != 0 || clone.Level[11] != 11 {
		t.Errorf("clone mutated by workspace reuse: source %d, Level[11] = %d", clone.Source, clone.Level[11])
	}
}

func TestEngineNames(t *testing.T) {
	cases := []struct {
		e    Engine
		want string
	}{
		{SerialEngine(), "serial"},
		{TopDownEngine(0), "topdown"},
		{BottomUpEngine(0), "bottomup"},
		{EdgeParallelEngine(0), "edgeparallel"},
		{HybridEngine(64, 64, 0), "hybrid(64,64)"},
		{HongEngine(0), "hong"},
		{EngineFor(Options{}), "topdown"},
		{EngineFor(Options{Policy: MN{M: 10, N: 20}}), "hybrid(10,20)"},
	}
	for _, c := range cases {
		if got := c.e.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
	// EngineFor must never compare the (possibly non-comparable) Policy
	// value; a PolicyFunc both exercises that and gets the generic name.
	f := EngineFor(Options{Policy: PolicyFunc(func(StepInfo) Direction { return TopDown })})
	if got := f.Name(); got != "policy" {
		t.Errorf("EngineFor(PolicyFunc).Name() = %q, want %q", got, "policy")
	}
	if !strings.HasPrefix(BeamerEngine(0, 0, 0).Name(), "beamer(") {
		t.Errorf("BeamerEngine name = %q", BeamerEngine(0, 0, 0).Name())
	}
}

func TestEngineRejectsBadSource(t *testing.T) {
	g := pathGraph(t, 4)
	for _, e := range []Engine{SerialEngine(), DefaultEngine(), EdgeParallelEngine(0)} {
		if _, err := e.Run(g, 99, nil); err == nil {
			t.Errorf("%s: out-of-range source accepted", e.Name())
		}
	}
}
