package bfs

import (
	"testing"
	"testing/quick"

	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
	"crossbfs/internal/xrand"
)

func TestTracePath(t *testing.T) {
	g := pathGraph(t, 4) // 0-1-2-3
	tr, err := TraceFrom(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSteps() != 4 || tr.Depth() != 3 {
		t.Fatalf("steps %d depth %d, want 4/3", tr.NumSteps(), tr.Depth())
	}
	// Step 1: frontier {0} (deg 1), discovers {1}.
	s := tr.Steps[0]
	if s.FrontierVertices != 1 || s.FrontierEdges != 1 || s.Discovered != 1 {
		t.Errorf("step 1 = %+v", s)
	}
	if s.UnvisitedVertices != 3 {
		t.Errorf("step 1 unvisited = %d, want 3", s.UnvisitedVertices)
	}
	// Bottom-up at step 1: vertex 1 scans {0,2}, 0 is frontier -> 1 scan.
	// Vertex 2 scans {1,3}: 2 scans, no hit. Vertex 3 scans {2}: 1 scan.
	if s.BottomUpScans != 1+2+1 {
		t.Errorf("step 1 BU scans = %d, want 4", s.BottomUpScans)
	}
	// Step 2: frontier {1} (deg 2), discovers {2}.
	s = tr.Steps[1]
	if s.FrontierVertices != 1 || s.FrontierEdges != 2 || s.Discovered != 1 {
		t.Errorf("step 2 = %+v", s)
	}
	// Final step: frontier {3}, discovers nothing.
	s = tr.Steps[3]
	if s.FrontierVertices != 1 || s.Discovered != 0 || s.UnvisitedVertices != 0 {
		t.Errorf("final step = %+v", s)
	}
}

func TestTraceStar(t *testing.T) {
	g := starGraph(t, 10)
	tr, err := TraceFrom(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSteps() != 2 {
		t.Fatalf("steps = %d, want 2", tr.NumSteps())
	}
	s := tr.Steps[0]
	if s.FrontierEdges != 9 || s.Discovered != 9 || s.MaxFrontierDegree != 9 {
		t.Errorf("star step 1 = %+v", s)
	}
	// Bottom-up step 1: each leaf scans its single neighbor (the hub,
	// in the frontier): 9 scans, max scan 1.
	if s.BottomUpScans != 9 || s.MaxScan != 1 {
		t.Errorf("star BU scans = %d max %d, want 9/1", s.BottomUpScans, s.MaxScan)
	}
}

func TestTraceInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := rmat.DefaultParams(7+rng.Intn(3), 4+rng.Intn(12))
		p.Seed = seed
		g, err := rmat.Generate(p)
		if err != nil {
			return false
		}
		src := int32(rng.Intn(g.NumVertices()))
		tr, err := TraceFrom(g, src)
		if err != nil {
			return false
		}
		// (1) Frontier vertex counts over all steps = reachable count.
		var frontierSum, discoveredSum int64
		for _, s := range tr.Steps {
			frontierSum += s.FrontierVertices
			discoveredSum += s.Discovered
		}
		if frontierSum != tr.Reachable || discoveredSum != tr.Reachable-1 {
			return false
		}
		// (2) Frontier edges over all steps = edges visited (each
		// reachable vertex's degree counted at its own level).
		var edgeSum int64
		for _, s := range tr.Steps {
			edgeSum += s.FrontierEdges
		}
		if edgeSum != tr.EdgesVisited {
			return false
		}
		// (3) Per step: scans bounded by unvisited edges; discovered
		// vertices each scanned at least once; unvisited monotone.
		prevUnvisited := tr.NumVertices
		for _, s := range tr.Steps {
			if s.BottomUpScans > s.UnvisitedEdges {
				return false
			}
			if s.Discovered > 0 && s.BottomUpScans < s.Discovered {
				return false
			}
			if s.UnvisitedVertices > prevUnvisited {
				return false
			}
			if s.MaxScan > s.BottomUpScans {
				return false
			}
			if s.FrontierVertices > 0 && s.MaxFrontierDegree > s.FrontierEdges {
				return false
			}
			prevUnvisited = s.UnvisitedVertices
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTraceMatchesKernelScans is the key soundness check for the whole
// replay approach: the analytical BottomUpScans must equal what the
// real bottom-up kernel actually scans, level by level.
func TestTraceMatchesKernelScans(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		p := rmat.DefaultParams(9, 8)
		p.Seed = seed
		g, err := rmat.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		var src int32
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(int32(v)) > 0 {
				src = int32(v)
				break
			}
		}
		r, err := RunBottomUp(g, src, 1)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ComputeTrace(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Steps) != len(r.StepScans) {
			t.Fatalf("seed %d: %d trace steps vs %d kernel steps", seed, len(tr.Steps), len(r.StepScans))
		}
		for i, s := range tr.Steps {
			if s.BottomUpScans != r.StepScans[i] {
				t.Errorf("seed %d step %d: trace predicts %d scans, kernel did %d",
					seed, i+1, s.BottomUpScans, r.StepScans[i])
			}
		}
	}
}

// TestTraceDirectionIndependent: traces computed from different
// traversal strategies of the same (graph, source) must be identical —
// the property that justifies pricing any policy from one trace.
func TestTraceDirectionIndependent(t *testing.T) {
	g := testRMAT(t, 9, 16, 4)
	src := int32(5)
	serial, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := RunBottomUp(g, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Hybrid(g, src, 64, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ComputeTrace(g, serial)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"bottomup": bu, "hybrid": hy} {
		tr, err := ComputeTrace(g, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Steps) != len(base.Steps) {
			t.Fatalf("%s: step count %d vs %d", name, len(tr.Steps), len(base.Steps))
		}
		for i := range tr.Steps {
			if tr.Steps[i] != base.Steps[i] {
				t.Errorf("%s: step %d differs:\n  %+v\nvs %+v", name, i+1, tr.Steps[i], base.Steps[i])
			}
		}
	}
}

func TestTraceRejectsInvalidResult(t *testing.T) {
	g := pathGraph(t, 4)
	r, err := Serial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Level[3]++ // corrupt
	if _, err := ComputeTrace(g, r); err == nil {
		t.Error("trace of corrupted result succeeded")
	}
}

func TestTraceIsolatedSource(t *testing.T) {
	g := mustBuild(t, 5, []graph.Edge{{From: 1, To: 2}})
	tr, err := TraceFrom(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSteps() != 1 || tr.Reachable != 1 {
		t.Errorf("isolated source trace: %d steps, %d reachable", tr.NumSteps(), tr.Reachable)
	}
	s := tr.Steps[0]
	if s.FrontierVertices != 1 || s.Discovered != 0 {
		t.Errorf("isolated step = %+v", s)
	}
	// Unvisited vertices include the other component.
	if s.UnvisitedVertices != 4 {
		t.Errorf("unvisited = %d, want 4", s.UnvisitedVertices)
	}
}

func TestMeanScan(t *testing.T) {
	s := LevelStats{BottomUpScans: 30, UnvisitedVertices: 10}
	if got := s.MeanScan(); got != 3 {
		t.Errorf("MeanScan = %g, want 3", got)
	}
	empty := LevelStats{}
	if got := empty.MeanScan(); got != 0 {
		t.Errorf("MeanScan of empty = %g, want 0", got)
	}
}
