package bfs

import (
	"context"
	"fmt"

	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
)

// Engine is the unified execution interface over every BFS kernel in
// the package: the serial reference, the parallel top-down and
// bottom-up baselines, the edge-parallel kernel, the (M, N) hybrid,
// and the adaptive heuristics. It replaces the free-function zoo
// (RunTopDown / RunBottomUp / Run with hand-built Options) with one
// shape that every layer — the simulator's Execute, the Graph 500
// runner, the tuner, the CLI tools — can hold without knowing which
// kernel is behind it, and it is the seam where pooled workspaces
// plug in.
type Engine interface {
	// Name identifies the engine in reports, e.g. "hybrid(64,64)".
	Name() string
	// Run executes one traversal from source. ws may be nil, in which
	// case the engine allocates one-shot buffers; with a Workspace the
	// traversal allocates nothing in steady state, and the returned
	// Result aliases the workspace's buffers — it is valid only until
	// the workspace's next traversal, so Clone it (or finish consuming
	// it) before reusing the workspace.
	Run(g *graph.CSR, source int32, ws *Workspace) (*Result, error)
	// RunContext is Run under a context: the traversal observes ctx at
	// level boundaries (and grain boundaries in parallel kernels) and
	// returns ctx.Err() promptly on cancellation or deadline expiry.
	// Panics inside the traversal are contained and returned as a
	// *PanicError. On error the workspace is quiescent and safe to
	// reuse or return to a pool.
	RunContext(ctx context.Context, g *graph.CSR, source int32, ws *Workspace) (*Result, error)
	// RunObserved is RunContext with a telemetry recorder attached
	// (see internal/obs): the traversal emits a start event, one event
	// per expansion step carrying the per-level work counts, a switch
	// event at each direction change, and an end event — all sharing
	// one process-unique TraversalID. rec may be nil or obs.Nop, in
	// which case RunObserved is exactly RunContext: no clock reads, no
	// event construction, the steady-state 0 allocs/op gate holds.
	RunObserved(ctx context.Context, g *graph.CSR, source int32, ws *Workspace, rec obs.Recorder) (*Result, error)
}

// policyEngine is the direction-policy-driven level-synchronized
// runner behind the top-down, bottom-up, hybrid, and adaptive engines.
type policyEngine struct {
	name string
	// policy is a stateless policy shared across runs; newPolicy, when
	// set, builds a fresh policy per traversal for stateful heuristics
	// (Beamer's alpha/beta phases, Hong's one-way switch).
	policy          Policy
	newPolicy       func() Policy
	workers         int
	checkInvariants bool
}

// Name implements Engine.
func (e *policyEngine) Name() string { return e.name }

// Run implements Engine.
func (e *policyEngine) Run(g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunContext(context.Background(), g, source, ws)
}

// RunContext implements Engine.
func (e *policyEngine) RunContext(ctx context.Context, g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunObserved(ctx, g, source, ws, nil)
}

// RunObserved implements Engine.
func (e *policyEngine) RunObserved(ctx context.Context, g *graph.CSR, source int32, ws *Workspace, rec obs.Recorder) (*Result, error) {
	pol := e.policy
	if e.newPolicy != nil {
		pol = e.newPolicy()
	}
	opts := Options{
		Policy: pol, Workers: e.workers, CheckInvariants: e.checkInvariants,
		Recorder: rec, Label: e.name,
	}
	return RunWithContext(ctx, g, source, opts, ws)
}

// TopDownEngine returns the pure top-down baseline (paper Algorithm 1)
// as an Engine. workers <= 0 uses GOMAXPROCS.
func TopDownEngine(workers int) Engine {
	return &policyEngine{name: "topdown", policy: AlwaysTopDown, workers: workers}
}

// BottomUpEngine returns the pure bottom-up baseline (paper
// Algorithm 2) as an Engine.
func BottomUpEngine(workers int) Engine {
	return &policyEngine{name: "bottomup", policy: AlwaysBottomUp, workers: workers}
}

// HybridEngine returns the direction-optimizing combination with the
// paper's (M, N) switching rule as an Engine.
func HybridEngine(m, n float64, workers int) Engine {
	return &policyEngine{
		name:    fmt.Sprintf("hybrid(%g,%g)", m, n),
		policy:  MN{M: m, N: n},
		workers: workers,
	}
}

// AdaptiveEngine wraps a stateful switching heuristic as an Engine:
// newPolicy is invoked once per traversal, so per-traversal phase
// state (alpha/beta direction phase, Hong's one-way switch) never
// leaks between roots.
func AdaptiveEngine(name string, newPolicy func() Policy, workers int) Engine {
	return &policyEngine{name: name, newPolicy: newPolicy, workers: workers}
}

// BeamerEngine returns Beamer et al.'s SC'12 alpha/beta heuristic as
// an Engine (non-positive arguments select the published constants).
func BeamerEngine(alpha, beta float64, workers int) Engine {
	return AdaptiveEngine(
		fmt.Sprintf("beamer(%g,%g)", alpha, beta),
		func() Policy { return NewAlphaBeta(alpha, beta) },
		workers,
	)
}

// HongEngine returns Hong et al.'s PACT'11 one-way switching heuristic
// as an Engine.
func HongEngine(workers int) Engine {
	return AdaptiveEngine("hong", func() Policy { return NewHongHybrid() }, workers)
}

// EngineFor adapts an Options value to the Engine interface — the
// bridge for callers that already hold a policy (core.Execute,
// core.Measure). The options' Policy instance is used as-is; hand
// stateful policies to AdaptiveEngine instead so each traversal gets a
// fresh one. The options' Recorder and Label are not captured:
// telemetry attaches per call through Engine.RunObserved (callers that
// want a recorder baked into an Options value should call
// RunWithContext directly).
func EngineFor(opts Options) Engine {
	name := "policy"
	switch p := opts.Policy.(type) {
	case nil:
		name = "topdown"
	case MN:
		name = fmt.Sprintf("hybrid(%g,%g)", p.M, p.N)
	}
	return &policyEngine{
		name:            name,
		policy:          opts.Policy,
		workers:         opts.Workers,
		checkInvariants: opts.CheckInvariants,
	}
}

// DefaultEngine returns the package's flagship configuration: the
// direction-optimizing hybrid at the repo-wide default thresholds with
// automatic parallelism.
func DefaultEngine() Engine { return HybridEngine(DefaultM, DefaultN, 0) }
