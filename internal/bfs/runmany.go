package bfs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
)

// ManyOptions configure a batched multi-root execution.
type ManyOptions struct {
	// Engine runs each traversal; nil selects DefaultEngine (the
	// direction-optimizing hybrid at the default thresholds).
	Engine Engine
	// Concurrency is the number of roots traversed in flight at once:
	// 0 (or negative) means GOMAXPROCS, 1 forces sequential execution.
	// Each in-flight root holds one workspace.
	Concurrency int
	// Pool supplies the traversal workspaces; nil uses DefaultPool.
	Pool *WorkspacePool
	// Recorder receives the batch's telemetry: a root_dispatch /
	// root_done pair per claimed root from the dispatcher, plus every
	// traversal-level event from the engine (via Engine.RunObserved).
	// The dispatcher assigns one TraversalID per root and stamps it on
	// the bracket and the traversal's events alike, so samplers and
	// flight recorders (obs.Sampler, obs.Ring) see each root as one
	// unit. One recorder instance is shared by all in-flight roots, so
	// it must be safe for concurrent use — obs.Metrics, obs.TraceWriter,
	// obs.StreamWriter, obs.Sampler, and obs.Ring all are. nil disables
	// telemetry.
	Recorder obs.Recorder
}

func (o ManyOptions) withDefaults() ManyOptions {
	if o.Engine == nil {
		o.Engine = DefaultEngine()
	}
	if o.Pool == nil {
		o.Pool = DefaultPool
	}
	return o
}

// RunMany traverses g from every root and returns one durable Result
// per root, in root order — the batched shape the Graph 500 runner
// (64 search keys on one graph) and the tuner's labelling sweeps need.
// Workspace acquisition is amortized across the batch: each in-flight
// worker checks one workspace out of the pool and reuses it for all
// the roots it claims. The results are deep copies that own their
// memory; callers that can consume each result in place should use
// RunManyFunc, which skips the copies entirely.
//
// With the default parallel kernels, per-root results are
// deterministic in their Level maps and validity but may differ in
// tie-broken Parent choices run to run, exactly as repeated Run calls
// do; with Workers: 1 engines, RunMany(g, roots) is element-wise
// identical to len(roots) independent Run calls.
func RunMany(g *graph.CSR, roots []int32, opts ManyOptions) ([]*Result, error) {
	return RunManyContext(context.Background(), g, roots, opts)
}

// RunManyContext is RunMany under a context; see RunManyFuncContext
// for the cancellation contract.
func RunManyContext(ctx context.Context, g *graph.CSR, roots []int32, opts ManyOptions) ([]*Result, error) {
	results := make([]*Result, len(roots))
	err := RunManyFuncContext(ctx, g, roots, opts, func(i int, _ int32, r *Result) error {
		results[i] = r.Clone() //lint:shared-ok the atomic root cursor hands index i to exactly one callback
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunManyFunc traverses g from every root and streams each result to
// fn(i, roots[i], r) without copying: r aliases the traversal's
// workspace and is valid only for the duration of the call. fn may run
// concurrently from multiple goroutines when Concurrency != 1.
//
// Delivery guarantees:
//
//   - Each index is delivered AT MOST once, so indexed writes to
//     caller-owned slices are safe without locking.
//   - When no error occurs, every index is delivered exactly once.
//   - The batch fails fast: the first error — from a traversal or from
//     fn — stops the dispatch of further roots, and the claim of any
//     root not yet started is abandoned. Roots whose traversal was
//     already in flight when the error surfaced finish and are
//     delivered (or discarded if their own traversal errored); no new
//     ones begin. The first error is returned.
func RunManyFunc(g *graph.CSR, roots []int32, opts ManyOptions, fn func(i int, root int32, r *Result) error) error {
	return RunManyFuncContext(context.Background(), g, roots, opts, fn)
}

// RunManyFuncContext is RunManyFunc under a context. Cancellation is
// treated exactly like a callback error: in-flight traversals stop at
// their next level/grain boundary, no new roots are dispatched, and
// ctx.Err() is returned. Every worker goroutine has exited and every
// workspace is back in the pool (clean) by the time it returns.
func RunManyFuncContext(ctx context.Context, g *graph.CSR, roots []int32, opts ManyOptions, fn func(i int, root int32, r *Result) error) error {
	opts = opts.withDefaults()
	if len(roots) == 0 {
		return ctx.Err()
	}
	workers := resolveWorkers(opts.Concurrency, len(roots))
	n := g.NumVertices()
	rec := opts.Recorder
	live := obs.Live(rec)

	if workers == 1 {
		ws := opts.Pool.Get(n)
		defer opts.Pool.Put(ws)
		for i, root := range roots {
			if err := runManyOne(ctx, g, opts, ws, rec, live, 0, i, root, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			ws := opts.Pool.Get(n)
			defer opts.Pool.Put(ws)
			for !failed.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= len(roots) {
					return
				}
				// Fail-fast: a sibling may have failed between this
				// worker's loop check and its claim. Re-checking after
				// the claim closes that window — without it, a worker
				// could start a fresh multi-second traversal after the
				// batch already failed. The claimed index is abandoned,
				// which the at-most-once contract allows.
				if failed.Load() {
					return
				}
				if err := runManyOne(ctx, g, opts, ws, rec, live, worker, i, roots[i], fn); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// runManyOne traverses one claimed root and delivers it to fn,
// bracketing the work with dispatch telemetry: root_dispatch when the
// claim starts, root_done when the result has been delivered (Detail
// set if the traversal or the callback failed). The engine's own
// traversal events land between the pair on the same recorder.
//
// The dispatcher owns the root's TraversalID: it draws one per claim,
// stamps it on the dispatch bracket, and rebinds the engine's events
// to it via obs.WithTraversalID. Every event of one logical root —
// bracket and traversal alike — therefore shares one ID, which is what
// lets obs.Sampler keep or drop the root whole and obs.Ring group it
// as one flight-recorder entry. The Nop path draws no ID and wraps
// nothing, preserving the 0 allocs/op gate.
func runManyOne(ctx context.Context, g *graph.CSR, opts ManyOptions, ws *Workspace, rec obs.Recorder, live bool, worker, i int, root int32, fn func(i int, root int32, r *Result) error) error {
	var start time.Time
	runRec := rec
	var id uint64
	if live {
		id = obs.NextTraversalID()
		runRec = obs.WithTraversalID(id, rec)
		start = time.Now()
		rec.Event(obs.Event{
			Kind: obs.KindRootDispatch, TraversalID: id, Root: root, Index: int32(i),
			Dir: obs.DirNone, Workers: int32(worker), Wall: start,
		})
	}
	r, err := opts.Engine.RunObserved(ctx, g, root, ws, runRec)
	if err == nil {
		err = fn(i, root, r)
	}
	if live {
		e := obs.Event{
			Kind: obs.KindRootDone, TraversalID: id, Root: root, Index: int32(i),
			Dir: obs.DirNone, Workers: int32(worker),
			Wall: time.Now(), WallDur: time.Since(start),
		}
		if err != nil {
			e.Detail = err.Error()
		}
		rec.Event(e)
	}
	return err
}
