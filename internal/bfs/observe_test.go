package bfs

import (
	"context"
	"testing"

	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

// benchRMAT and firstUsableB are the testing.TB forms of testRMAT and
// firstUsable, usable from benchmarks.
func benchRMAT(tb testing.TB, scale, ef int, seed uint64) *graph.CSR {
	tb.Helper()
	p := rmat.DefaultParams(scale, ef)
	p.Seed = seed
	g, err := rmat.Generate(p)
	if err != nil {
		tb.Fatalf("rmat.Generate: %v", err)
	}
	return g
}

func firstUsableB(tb testing.TB, g *graph.CSR) int32 {
	tb.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v)
		}
	}
	tb.Fatal("graph has no non-isolated vertex")
	return 0
}

// TestRunAllocsNopRecorder extends the steady-state allocation gate to
// the telemetry seam: threading an explicit obs.Nop recorder through
// RunWithContext must stay as alloc-free as passing no recorder at
// all. This is the contract OBSERVABILITY.md promises — the default
// path pays for observability only when a live recorder is attached.
func TestRunAllocsNopRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement on a scale-12 graph")
	}
	g := testRMAT(t, 12, 8, 7)
	src := firstUsable(t, g)
	opts := Options{Policy: MN{M: 64, N: 64}, Workers: 1, Recorder: obs.Nop, Label: "gate"}
	ws := NewWorkspace(g.NumVertices())
	ctx := context.Background()
	run := func() {
		if _, err := RunWithContext(ctx, g, src, opts, ws); err != nil {
			t.Fatal(err)
		}
	}
	run() // warmup: grow queues and shards to this graph's working set
	run()
	if allocs := testing.AllocsPerRun(5, run); allocs > 4 {
		t.Errorf("traversal with Nop recorder allocates %.0f objects/run after warmup; want ~0", allocs)
	}
}

// countRecorder counts events without retaining them, so benchmarks
// measure the emission path rather than slice growth.
type countRecorder struct{ n int64 }

func (c *countRecorder) Event(obs.Event) { c.n++ }

// BenchmarkRunNopRecorder and BenchmarkRunLiveRecorder bracket the
// cost of the telemetry seam on a pooled hybrid traversal: the Nop
// variant must report 0 allocs/op, and the live variant shows what a
// minimal recorder costs (event construction + interface call per
// level, plus the re-enabled |E|cq pass).
func BenchmarkRunNopRecorder(b *testing.B)  { benchRecorder(b, obs.Nop) }
func BenchmarkRunLiveRecorder(b *testing.B) { benchRecorder(b, &countRecorder{}) }

func benchRecorder(b *testing.B, rec obs.Recorder) {
	g := benchRMAT(b, 14, 8, 7)
	src := firstUsableB(b, g)
	opts := Options{Policy: MN{M: 64, N: 64}, Workers: 1, Recorder: rec, Label: "bench"}
	ws := NewWorkspace(g.NumVertices())
	ctx := context.Background()
	// Warmup grows the workspace queues to this graph's working set so
	// allocs/op reflects steady state, not first-run growth.
	if _, err := RunWithContext(ctx, g, src, opts, ws); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWithContext(ctx, g, src, opts, ws); err != nil {
			b.Fatal(err)
		}
	}
}
