package bfs

import (
	"testing"
)

// TestDegreeOrderingReducesScans checks the Chhugani-style adjacency
// reordering actually helps bottom-up: with hubs first in every list,
// early exits happen sooner, so total scans must drop on a scale-free
// graph while the traversal itself stays identical.
func TestDegreeOrderingReducesScans(t *testing.T) {
	g := testRMAT(t, 12, 16, 1)
	var src int32
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			src = int32(v)
			break
		}
	}
	base, err := TraceFrom(g, src)
	if err != nil {
		t.Fatal(err)
	}

	reordered := g.Clone().SortNeighborsByDegree()
	res, err := RunBottomUp(reordered, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(reordered, res); err != nil {
		t.Fatalf("reordered traversal invalid: %v", err)
	}
	after, err := ComputeTrace(reordered, res)
	if err != nil {
		t.Fatal(err)
	}

	// Identical traversal structure (level sets unchanged).
	if after.Reachable != base.Reachable || after.NumSteps() != base.NumSteps() {
		t.Fatalf("reordering changed the traversal: %d/%d steps, %d/%d reachable",
			after.NumSteps(), base.NumSteps(), after.Reachable, base.Reachable)
	}
	var baseScans, afterScans int64
	for i := range base.Steps {
		baseScans += base.Steps[i].BottomUpScans
		afterScans += after.Steps[i].BottomUpScans
		if base.Steps[i].FrontierVertices != after.Steps[i].FrontierVertices {
			t.Fatalf("step %d frontier changed", i+1)
		}
	}
	if afterScans >= baseScans {
		t.Errorf("degree ordering did not reduce scans: %d -> %d", baseScans, afterScans)
	}
	t.Logf("bottom-up scans: %d -> %d (%.1f%% reduction)",
		baseScans, afterScans, 100*(1-float64(afterScans)/float64(baseScans)))
}
