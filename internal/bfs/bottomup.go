package bfs

import (
	"context"
	"sync/atomic"

	"crossbfs/internal/bitmap"
	"crossbfs/internal/graph"
)

// buGrain is the vertex block size for bottom-up workers. Bottom-up
// scans the whole vertex range, so blocks can be larger than top-down's.
const buGrain = 4096

// bottomUpLevel expands one level in the bottom-up direction: every
// unvisited vertex scans its neighbors for a member of the current
// frontier and adopts the first hit as parent (paper Algorithm 2,
// lines 7-12, including the early-exit "break"). front is the current
// frontier as a bitmap; next receives the new frontier (it must arrive
// cleared). Returns the number of vertices discovered and the number
// of edges scanned — the quantity the paper bounds by |E|un and the
// simulator prices.
//
// Cancellation is observed at grain boundaries (see parallelGrains);
// on error the counts are meaningless and the caller must abandon the
// traversal.
func bottomUpLevel(ctx context.Context, g *graph.CSR, r *Result, visited, front, next *bitmap.Bitmap, level int32, workers int) (found, scans int64, err error) {
	n := g.NumVertices()
	if resolveWorkers(workers, (n+buGrain-1)/buGrain) == 1 {
		found, scans = bottomUpLevelSerial(g, r, visited, front, next, level)
		return found, scans, nil
	}
	var foundTotal, scanTotal atomic.Int64
	err = parallelGrains(ctx, n, buGrain, workers, func(_, start, end int) {
		var localFound, localScans int64
		for v := start; v < end; v++ {
			if visited.Get(v) {
				continue
			}
			for _, u := range g.Neighbors(int32(v)) {
				localScans++
				if front.Get(int(u)) {
					// Safe without a claim: v iterates this worker's
					// [start, end) grain, and parallelGrains hands out
					// disjoint grains, so exactly one worker ever
					// writes slot v.
					r.Parent[v] = u    //lint:shared-ok single writer: v is in this worker's disjoint grain
					r.Level[v] = level //lint:shared-ok single writer: v is in this worker's disjoint grain
					next.SetAtomic(v)
					localFound++
					break
				}
			}
		}
		foundTotal.Add(localFound)
		scanTotal.Add(localScans)
	})
	if err != nil {
		return 0, 0, err
	}
	return foundTotal.Load(), scanTotal.Load(), nil
}

func bottomUpLevelSerial(g *graph.CSR, r *Result, visited, front, next *bitmap.Bitmap, level int32) (found, scans int64) {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if visited.Get(v) {
			continue
		}
		for _, u := range g.Neighbors(int32(v)) {
			scans++
			if front.Get(int(u)) {
				r.Parent[v] = u
				r.Level[v] = level
				next.Set(v)
				found++
				break
			}
		}
	}
	return found, scans
}

// RunBottomUp runs a pure bottom-up BFS (the paper's GPUBU/CPUBU
// baseline). workers <= 0 uses GOMAXPROCS.
func RunBottomUp(g *graph.CSR, source int32, workers int) (*Result, error) {
	return Run(g, source, Options{Policy: AlwaysBottomUp, Workers: workers})
}
