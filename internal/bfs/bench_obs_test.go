package bfs

import (
	"fmt"
	"io"
	"testing"

	"crossbfs/internal/obs"
)

// Recorder-overhead benches for cmd/benchreport: the same RunMany
// batch under each recorder mode, so the obs-overhead deltas (Nop vs
// Live vs Sampled vs Stream vs Ring) fall out of one snapshot. The
// custom MTEPS metric makes cross-mode throughput comparable even
// though per-op work is a whole batch, not one traversal.
func BenchmarkRunManyRecorderOverhead(b *testing.B) {
	g := benchRMAT(b, 13, 16, 7)
	roots := make([]int32, 0, 16)
	for v := int32(0); v < int32(g.NumVertices()) && len(roots) < 16; v++ {
		if g.Degree(v) > 0 {
			roots = append(roots, v)
		}
	}
	modes := []struct {
		name string
		rec  func() obs.Recorder
	}{
		{"nop", func() obs.Recorder { return obs.Nop }},
		{"live", func() obs.Recorder { return &countRecorder{} }},
		{"sampled", func() obs.Recorder { return obs.NewSampler(&countRecorder{}, 8, 1) }},
		{"stream", func() obs.Recorder { return obs.NewStreamWriter(io.Discard) }},
		{"ring", func() obs.Recorder { return obs.NewRing(8, 0) }},
		{"labeled", func() obs.Recorder {
			return obs.NewRegistryRecorder(obs.NewRegistry(), "hybrid(64,64)")
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			opts := ManyOptions{
				Engine:      HybridEngine(DefaultM, DefaultN, 2),
				Concurrency: 2,
				Recorder:    mode.rec(),
			}
			var edges int64
			warm := func() {
				edges = 0
				err := RunManyFunc(g, roots, opts, func(_ int, _ int32, r *Result) error {
					edges += r.TraversedEdges
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			warm() // grow pool workspaces to this graph's working set
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				warm()
			}
			b.StopTimer()
			if sw, ok := opts.Recorder.(*obs.StreamWriter); ok {
				_ = sw.Close()
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(edges)*float64(b.N)/secs/1e6, "MTEPS")
			}
		})
	}
}

// Per-kernel × per-scale MTEPS for the perf-regression trajectory:
// the paper's Fig. 4 / Table IV claims rest on these kernels, so
// BENCH_<n>.json tracks each one at two scales.
func BenchmarkKernelScales(b *testing.B) {
	kernels := []struct {
		name string
		eng  Engine
	}{
		{"topdown", TopDownEngine(0)},
		{"bottomup", BottomUpEngine(0)},
		{"hybrid", HybridEngine(DefaultM, DefaultN, 0)},
	}
	for _, scale := range []int{12, 14} {
		g := benchRMAT(b, scale, 16, 7)
		src := firstUsableB(b, g)
		for _, k := range kernels {
			b.Run(fmt.Sprintf("%s/scale%d", k.name, scale), func(b *testing.B) {
				ws := NewWorkspace(g.NumVertices())
				r, err := k.eng.Run(g, src, ws) // warmup
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.SetBytes(r.TraversedEdges * 4) // adjacency bytes touched; MTEPS = MB/s ÷ 4
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.eng.Run(g, src, ws); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
