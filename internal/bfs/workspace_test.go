package bfs

import (
	"testing"

	"crossbfs/internal/graph"
)

// firstUsable returns the first non-isolated vertex — the smallest
// valid BFS source for graphs whose vertex 0 may be isolated.
func firstUsable(t *testing.T, g *graph.CSR) int32 {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v)
		}
	}
	t.Fatal("graph has no non-isolated vertex")
	return 0
}

// exactSame is the strict, field-by-field form of sameTraversal, for
// deterministic (Workers: 1) engines where even Parent tie-breaks and
// the per-step logs must match.
func exactSame(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if got.Source != want.Source {
		t.Fatalf("%s: Source = %d, want %d", name, got.Source, want.Source)
	}
	if len(got.Parent) != len(want.Parent) || len(got.Level) != len(want.Level) {
		t.Fatalf("%s: map sizes differ: parent %d/%d level %d/%d",
			name, len(got.Parent), len(want.Parent), len(got.Level), len(want.Level))
	}
	for v := range want.Parent {
		if got.Parent[v] != want.Parent[v] {
			t.Fatalf("%s: Parent[%d] = %d, want %d", name, v, got.Parent[v], want.Parent[v])
		}
		if got.Level[v] != want.Level[v] {
			t.Fatalf("%s: Level[%d] = %d, want %d", name, v, got.Level[v], want.Level[v])
		}
	}
	if len(got.Directions) != len(want.Directions) {
		t.Fatalf("%s: %d direction entries, want %d", name, len(got.Directions), len(want.Directions))
	}
	for i := range want.Directions {
		if got.Directions[i] != want.Directions[i] {
			t.Fatalf("%s: Directions[%d] = %s, want %s", name, i, got.Directions[i], want.Directions[i])
		}
	}
	if len(got.StepScans) != len(want.StepScans) {
		t.Fatalf("%s: %d step-scan entries, want %d", name, len(got.StepScans), len(want.StepScans))
	}
	for i := range want.StepScans {
		if got.StepScans[i] != want.StepScans[i] {
			t.Fatalf("%s: StepScans[%d] = %d, want %d", name, i, got.StepScans[i], want.StepScans[i])
		}
	}
	if got.VisitedCount != want.VisitedCount {
		t.Fatalf("%s: VisitedCount = %d, want %d", name, got.VisitedCount, want.VisitedCount)
	}
	if got.TraversedEdges != want.TraversedEdges {
		t.Fatalf("%s: TraversedEdges = %d, want %d", name, got.TraversedEdges, want.TraversedEdges)
	}
}

// TestWorkspaceReuseMatchesFresh drives one workspace through a
// big -> small -> big graph sequence under every deterministic engine
// and demands bit-identical agreement with fresh-workspace runs. Any
// state leaking across traversals — a stale parent, an unshrunk level
// map, an uncleaned bitmap word, a leftover Directions entry — shows
// up as a field mismatch.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	big := testRMAT(t, 11, 8, 3)
	small := mustBuild(t, 40, []graph.Edge{
		// Two components plus isolated tail vertices: unreachable slots
		// are exactly where stale state from the big graph would leak.
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3},
		{From: 10, To: 11}, {From: 11, To: 12},
	})
	engines := []Engine{
		SerialEngine(),
		TopDownEngine(1),
		BottomUpEngine(1),
		EdgeParallelEngine(1),
		HybridEngine(64, 64, 1),
		BeamerEngine(0, 0, 1),
		HongEngine(1),
	}
	runs := []struct {
		name string
		g    *graph.CSR
		src  int32
	}{
		{"big", big, firstUsable(t, big)},
		{"small", small, 0},
		{"big-again", big, firstUsable(t, big)},
	}
	for _, e := range engines {
		ws := NewWorkspace(16) // deliberately undersized: ensure() must grow it
		for _, rn := range runs {
			got, err := e.Run(rn.g, rn.src, ws)
			if err != nil {
				t.Fatalf("%s/%s: reused ws: %v", e.Name(), rn.name, err)
			}
			want, err := e.Run(rn.g, rn.src, nil)
			if err != nil {
				t.Fatalf("%s/%s: fresh ws: %v", e.Name(), rn.name, err)
			}
			exactSame(t, e.Name()+"/"+rn.name, want, got)
			if err := Validate(rn.g, got); err != nil {
				t.Fatalf("%s/%s: validate: %v", e.Name(), rn.name, err)
			}
		}
	}
}

// TestPoolRecycledWorkspaceNoLeak proves the pool-hygiene contract:
// a workspace that went through Put/Get carries nothing observable
// from its previous traversal.
func TestPoolRecycledWorkspaceNoLeak(t *testing.T) {
	big := testRMAT(t, 10, 8, 5)
	small := pathGraph(t, 9)
	pool := &WorkspacePool{}
	e := HybridEngine(64, 64, 1)

	ws := pool.Get(big.NumVertices())
	if _, err := e.Run(big, firstUsable(t, big), ws); err != nil {
		t.Fatal(err)
	}
	pool.Put(ws)

	// sync.Pool gives no recycling guarantee, so force the interesting
	// case too: reuse the very same workspace object directly.
	for i, ws2 := range []*Workspace{pool.Get(small.NumVertices()), ws} {
		got, err := e.Run(small, 0, ws2)
		if err != nil {
			t.Fatalf("recycled run %d: %v", i, err)
		}
		want, err := e.Run(small, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		exactSame(t, "recycled", want, got)
		if len(got.Parent) != small.NumVertices() {
			t.Fatalf("recycled result spans %d vertices, want %d", len(got.Parent), small.NumVertices())
		}
	}
}

func TestWorkspacePoolSizeClasses(t *testing.T) {
	pool := &WorkspacePool{}
	for _, n := range []int{0, 1, 2, 3, 63, 64, 65, 1000, 1 << 14} {
		ws := pool.Get(n)
		if ws.Capacity() < n {
			t.Fatalf("Get(%d) returned capacity %d", n, ws.Capacity())
		}
		pool.Put(ws)
	}
}

// TestRunAllocsSteadyState is the acceptance gate for pooling: after
// warmup, a hybrid traversal of the SCALE-12 R-MAT graph through a
// reused workspace must allocate ~nothing — at least a 95% reduction
// against the fresh-buffers path.
func TestRunAllocsSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement on a scale-12 graph")
	}
	g := testRMAT(t, 12, 8, 7)
	src := firstUsable(t, g)
	// Workers: 1 keeps the kernels on their serial paths;
	// testing.AllocsPerRun pins GOMAXPROCS to 1 anyway.
	opts := Options{Policy: MN{M: 64, N: 64}, Workers: 1}
	ws := NewWorkspace(g.NumVertices())
	run := func() {
		if _, err := RunWith(g, src, opts, ws); err != nil {
			t.Fatal(err)
		}
	}
	run() // warmup: grow queues and shards to this graph's working set
	run()

	pooled := testing.AllocsPerRun(5, run)
	unpooled := testing.AllocsPerRun(5, func() {
		if _, err := Run(g, src, opts); err != nil {
			t.Fatal(err)
		}
	})
	if unpooled < 5 {
		t.Fatalf("unpooled baseline allocates only %.0f objects/run; measurement is broken", unpooled)
	}
	if pooled > unpooled*0.05 {
		t.Errorf("pooled traversal allocates %.0f objects/run vs %.0f unpooled (%.1f%% — want >=95%% reduction)",
			pooled, unpooled, 100*(1-pooled/unpooled))
	}
	if pooled > 4 {
		t.Errorf("pooled traversal allocates %.0f objects/run after warmup; want ~0", pooled)
	}
}
