package bfs

import (
	"context"
	"sort"
	"time"

	"crossbfs/internal/bitmap"
	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
)

// Edge-parallel top-down kernel. The vertex-parallel kernel assigns a
// frontier vertex per worker grain, so one hub's adjacency list is
// walked serially — the critical path the cost model charges GPUs for
// (Arch.ThreadRate) and the reason the paper's GPU suffers on hub
// levels. This kernel parallelizes over the frontier's *edge space*
// instead: workers claim fixed-size ranges of the concatenated
// adjacency lists, locating the owning vertices by binary search over
// a degree prefix sum. Hub lists get split across workers.

// epGrain is the edge-range grain size per claim.
const epGrain = 2048

// topDownLevelEdgeParallel expands one level top-down with
// edge-parallel work division. Semantics match topDownLevel; the
// prefix-sum and shard buffers come from ws so the level loop stops
// allocating once the traversal warms up. Cancellation is observed at
// grain boundaries; on error the traversal must be abandoned.
func topDownLevelEdgeParallel(ctx context.Context, g *graph.CSR, r *Result, visited *bitmap.Bitmap, queue, out []int32, level int32, workers int, ws *Workspace) ([]int32, error) {
	// Degree prefix sum over the frontier.
	prefix := ws.prefixBuf(len(queue) + 1)
	prefix[0] = 0
	for i, v := range queue {
		prefix[i+1] = prefix[i] + g.Degree(v)
	}
	totalEdges := prefix[len(queue)]
	if totalEdges == 0 {
		return out, nil
	}
	nworkers := resolveWorkers(workers, int(totalEdges/epGrain)+1)
	if nworkers == 1 {
		return topDownLevelSerial(g, r, visited, queue, out, level), nil
	}

	locals := ws.workerShards(nworkers)
	err := parallelGrains(ctx, int(totalEdges), epGrain, nworkers, func(worker, start, end int) {
		local := locals[worker]
		// First frontier vertex whose edge range intersects [start, end).
		//lint:alloc-ok one predicate closure per grain, amortised over the grain's whole edge range
		qi := sort.Search(len(queue), func(i int) bool { return prefix[i+1] > int64(start) })
		for pos := int64(start); pos < int64(end) && qi < len(queue); {
			u := queue[qi]
			adjStart := g.Offsets[u] + (pos - prefix[qi])
			adjEnd := g.Offsets[u] + (min64(int64(end), prefix[qi+1]) - prefix[qi])
			for _, v := range g.Adj[adjStart:adjEnd] {
				if visited.GetAtomic(int(v)) {
					continue
				}
				if visited.SetAtomic(int(v)) {
					r.Parent[v] = u
					r.Level[v] = level
					local = append(local, v)
				}
			}
			pos = prefix[qi+1]
			qi++
		}
		locals[worker] = local
	})
	if err != nil {
		return nil, err
	}

	for _, l := range locals {
		out = append(out, l...)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// edgeParallelEngine is the edge-parallel top-down kernel as an Engine.
type edgeParallelEngine struct {
	workers int
}

// EdgeParallelEngine returns the edge-parallel top-down kernel as an
// Engine. workers <= 0 uses GOMAXPROCS.
func EdgeParallelEngine(workers int) Engine { return edgeParallelEngine{workers: workers} }

// Name implements Engine.
func (edgeParallelEngine) Name() string { return "edgeparallel" }

// Run implements Engine.
func (e edgeParallelEngine) Run(g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunContext(context.Background(), g, source, ws)
}

// RunContext implements Engine.
func (e edgeParallelEngine) RunContext(ctx context.Context, g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunObserved(ctx, g, source, ws, nil)
}

// RunObserved implements Engine. The level events report the
// edge-space scheduling inputs: grains count epGrain-sized edge
// ranges, not frontier blocks.
func (e edgeParallelEngine) RunObserved(ctx context.Context, g *graph.CSR, source int32, ws *Workspace, rec obs.Recorder) (_ *Result, err error) {
	var (
		o    tobs
		done *Result
	)
	defer func() { o.end(done, err) }()
	defer func() { recoverToError(recover(), &err) }()
	if err := checkSource(g, source); err != nil {
		return nil, err
	}
	reusedWS := ws != nil
	if ws == nil {
		ws = NewWorkspace(g.NumVertices())
	}
	o = observeStart(rec, g, source, e.Name(), reusedWS)
	r := ws.begin(g, source)
	visited := ws.visited
	visited.Set(int(source))
	unvisited := int64(g.NumVertices()) - 1
	queue := append(ws.queue[:0], source)
	spare := ws.spare
	level := int32(1)
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var (
			stepStart time.Time
			fe        int64
		)
		if o.live {
			stepStart = time.Now()
			fe = frontierEdges(g, queue, nil, true)
		}
		out, err := topDownLevelEdgeParallel(ctx, g, r, visited, queue, spare[:0], level, e.workers, ws)
		if err != nil {
			return nil, err
		}
		if o.live {
			grains := fe/epGrain + 1
			nworkers := resolveWorkers(e.workers, int(grains))
			o.event(obs.Event{
				Kind: obs.KindLevel, Step: level, Dir: obs.TopDown,
				FrontierVertices: int64(len(queue)),
				FrontierEdges:    fe,
				Discovered:       int64(len(out)),
				Unvisited:        unvisited,
				Grains:           grains,
				Workers:          int32(nworkers),
				Wall:             stepStart,
				WallDur:          time.Since(stepStart),
			})
		}
		unvisited -= int64(len(out))
		queue, spare = out, queue
		r.Directions = append(r.Directions, TopDown)
		r.StepScans = append(r.StepScans, 0)
		level++
	}
	ws.retain(r, queue, spare)
	r.finish(g)
	done = r
	return r, nil
}

// RunTopDownEdgeParallel runs a pure top-down BFS with the
// edge-parallel kernel and one-shot buffers.
func RunTopDownEdgeParallel(g *graph.CSR, source int32, workers int) (*Result, error) {
	return edgeParallelEngine{workers: workers}.Run(g, source, nil)
}
