package bfs

import (
	"sort"

	"crossbfs/internal/bitmap"
	"crossbfs/internal/graph"
)

// Edge-parallel top-down kernel. The vertex-parallel kernel assigns a
// frontier vertex per worker grain, so one hub's adjacency list is
// walked serially — the critical path the cost model charges GPUs for
// (Arch.ThreadRate) and the reason the paper's GPU suffers on hub
// levels. This kernel parallelizes over the frontier's *edge space*
// instead: workers claim fixed-size ranges of the concatenated
// adjacency lists, locating the owning vertices by binary search over
// a degree prefix sum. Hub lists get split across workers.

// epGrain is the edge-range grain size per claim.
const epGrain = 2048

// topDownLevelEdgeParallel expands one level top-down with
// edge-parallel work division. Semantics match topDownLevel.
func topDownLevelEdgeParallel(g *graph.CSR, r *Result, visited *bitmap.Bitmap, queue []int32, level int32, workers int) []int32 {
	// Degree prefix sum over the frontier.
	prefix := make([]int64, len(queue)+1)
	for i, v := range queue {
		prefix[i+1] = prefix[i] + g.Degree(v)
	}
	totalEdges := prefix[len(queue)]
	if totalEdges == 0 {
		return nil
	}
	nworkers := resolveWorkers(workers, int(totalEdges/epGrain)+1)
	if nworkers == 1 {
		return topDownLevelSerial(g, r, visited, queue, level)
	}

	locals := make([][]int32, nworkers)
	parallelGrains(int(totalEdges), epGrain, nworkers, func(worker, start, end int) {
		local := locals[worker]
		// First frontier vertex whose edge range intersects [start, end).
		qi := sort.Search(len(queue), func(i int) bool { return prefix[i+1] > int64(start) })
		for pos := int64(start); pos < int64(end) && qi < len(queue); {
			u := queue[qi]
			adjStart := g.Offsets[u] + (pos - prefix[qi])
			adjEnd := g.Offsets[u] + (min64(int64(end), prefix[qi+1]) - prefix[qi])
			for _, v := range g.Adj[adjStart:adjEnd] {
				if visited.GetAtomic(int(v)) {
					continue
				}
				if visited.SetAtomic(int(v)) {
					r.Parent[v] = u
					r.Level[v] = level
					local = append(local, v)
				}
			}
			pos = prefix[qi+1]
			qi++
		}
		locals[worker] = local
	})

	var total int
	for _, l := range locals {
		total += len(l)
	}
	next := make([]int32, 0, total)
	for _, l := range locals {
		next = append(next, l...)
	}
	return next
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// RunTopDownEdgeParallel runs a pure top-down BFS with the
// edge-parallel kernel.
func RunTopDownEdgeParallel(g *graph.CSR, source int32, workers int) (*Result, error) {
	if err := checkSource(g, source); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	r := newResult(g, source)
	visited := bitmap.New(n)
	visited.Set(int(source))
	queue := []int32{source}
	level := int32(1)
	for len(queue) > 0 {
		queue = topDownLevelEdgeParallel(g, r, visited, queue, level, workers)
		r.Directions = append(r.Directions, TopDown)
		r.StepScans = append(r.StepScans, 0)
		level++
	}
	r.finish(g)
	return r, nil
}
