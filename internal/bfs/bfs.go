// Package bfs implements the paper's BFS kernels: the serial reference,
// parallel top-down (Algorithm 1), parallel bottom-up (Algorithm 2),
// and the direction-optimizing hybrid that switches between them under
// an (M, N) policy (paper Fig. 4).
//
// Every kernel produces the Graph 500 outputs — a predecessor map and a
// level map — and the package can derive exact per-level work counts
// (|V|cq, |E|cq, bottom-up scan counts) from any completed traversal,
// because BFS level sets do not depend on which direction computed
// them. Those counts are what the architecture simulator prices.
package bfs

import (
	"errors"
	"fmt"

	"crossbfs/internal/graph"
)

// NotVisited marks unvisited entries in parent and level maps.
const NotVisited int32 = -1

// Direction selects the kernel used to expand one BFS level.
type Direction int8

const (
	// TopDown expands the frontier outward: each frontier vertex offers
	// itself as parent to its unvisited neighbors (paper Algorithm 1).
	TopDown Direction = iota
	// BottomUp expands inward: each unvisited vertex searches the
	// frontier for a parent and stops at the first hit (Algorithm 2).
	BottomUp
)

func (d Direction) String() string {
	switch d {
	case TopDown:
		return "TD"
	case BottomUp:
		return "BU"
	default:
		return fmt.Sprintf("Direction(%d)", int8(d))
	}
}

// Result is the output of one BFS traversal.
type Result struct {
	Source int32
	// Parent[v] is the BFS-tree predecessor of v, Source for the
	// source itself, NotVisited for unreachable vertices.
	Parent []int32
	// Level[v] is the distance from Source, NotVisited if unreachable.
	Level []int32
	// Directions[i] records the kernel used for expansion step i+1
	// (paper level numbering: level 1 expands the frontier {source}).
	// Serial and single-direction runs fill it with their direction.
	Directions []Direction
	// StepScans[i] is the number of adjacency entries the bottom-up
	// kernel scanned at step i+1, or 0 for top-down steps. It lets
	// callers cross-check the analytical trace against the kernels.
	StepScans []int64
	// Exchanges records, for partitioned (sharded) traversals, the
	// per-level communication volume: one entry per expansion step, in
	// step order. Non-sharded engines leave it empty. The byte counts
	// are what archsim.Fabric prices when simulating the exchange.
	Exchanges []ExchangeStats
	// VisitedCount is the number of reachable vertices (including the
	// source).
	VisitedCount int64
	// TraversedEdges counts adjacency entries of all reachable
	// vertices; TEPS = TraversedEdges / time per Graph 500.
	TraversedEdges int64
	// Recovery summarizes fault-tolerance work done by a sharded
	// traversal running under a rank-fault schedule: ranks fenced,
	// recoveries replayed, exchange retries, checkpoint volume. Zero
	// for every other engine and for fault-free sharded runs.
	Recovery RecoveryStats
}

// ExchangeStats is one level's cross-rank communication summary from a
// sharded traversal: the compressed frontier deltas all ranks published
// (bottom-up all-gather) and the ghost claim pairs they scattered
// (top-down all-to-all), plus the exactly-once accounting — GhostSent
// counts (vertex, parent) claims received by owners, GhostApplied the
// subset that won their vertex.
type ExchangeStats struct {
	Step int
	Dir  Direction
	// FrontierBytes is the total size of the compressed bitmap deltas
	// exchanged this level (bottom-up levels; 0 for top-down).
	FrontierBytes int64
	// GhostBytes is the total size of the remote claim pairs scattered
	// this level (top-down levels; 0 for bottom-up).
	GhostBytes int64
	// GhostSent counts remote claims delivered to owners; GhostApplied
	// counts the claims that discovered their vertex (the rest lost the
	// visited-bit arbitration — duplicates proposing an already-claimed
	// vertex).
	GhostSent    int64
	GhostApplied int64
}

// TotalBytes returns the level's combined exchanged payload.
func (s ExchangeStats) TotalBytes() int64 { return s.FrontierBytes + s.GhostBytes }

// NumLevels returns the number of expansion steps performed (the
// paper's "level N" count, e.g. 9 in Table IV).
func (r *Result) NumLevels() int { return len(r.Directions) }

// Depth returns the largest assigned level (eccentricity of the source
// within its component), or 0 if only the source is reachable.
func (r *Result) Depth() int32 {
	var d int32
	for _, l := range r.Level {
		if l > d {
			d = l
		}
	}
	return d
}

// finish computes the visited/traversed counters from the level map.
func (r *Result) finish(g *graph.CSR) {
	var visited, traversed int64
	for v, l := range r.Level {
		if l != NotVisited {
			visited++
			traversed += g.Degree(int32(v))
		}
	}
	r.VisitedCount = visited
	r.TraversedEdges = traversed
}

// checkSource validates a source vertex against the graph.
func checkSource(g *graph.CSR, source int32) error {
	if source < 0 || int(source) >= g.NumVertices() {
		return fmt.Errorf("bfs: source %d out of range [0,%d)", source, g.NumVertices())
	}
	return nil
}

// Validate checks that r is a correct BFS traversal of g from
// r.Source, following the Graph 500 validation rules:
//
//  1. the source is its own parent at level 0;
//  2. every other visited vertex has a visited parent one level
//     closer, connected by a real edge;
//  3. levels of adjacent vertices differ by at most one, and no edge
//     joins a visited and an unvisited vertex (so the visited set is
//     exactly the source's component);
//  4. parent and level maps agree on which vertices are visited.
//
// Together these force Level to be the exact BFS distance map.
func Validate(g *graph.CSR, r *Result) error {
	n := g.NumVertices()
	if len(r.Parent) != n || len(r.Level) != n {
		return fmt.Errorf("bfs: result sized for %d vertices, graph has %d", len(r.Parent), n)
	}
	if err := checkSource(g, r.Source); err != nil {
		return err
	}
	if r.Parent[r.Source] != r.Source {
		return errors.New("bfs: source is not its own parent")
	}
	if r.Level[r.Source] != 0 {
		return fmt.Errorf("bfs: source level = %d, want 0", r.Level[r.Source])
	}
	for v := int32(0); v < int32(n); v++ {
		p, l := r.Parent[v], r.Level[v]
		if (p == NotVisited) != (l == NotVisited) {
			return fmt.Errorf("bfs: vertex %d: parent/level disagree on visitedness", v)
		}
		if p == NotVisited || v == r.Source {
			continue
		}
		if p < 0 || int(p) >= n {
			return fmt.Errorf("bfs: vertex %d has out-of-range parent %d", v, p)
		}
		if r.Level[p] == NotVisited {
			return fmt.Errorf("bfs: vertex %d has unvisited parent %d", v, p)
		}
		if r.Level[p]+1 != l {
			return fmt.Errorf("bfs: vertex %d at level %d, parent %d at level %d", v, l, p, r.Level[p])
		}
	}
	// Edge conditions: levels across any edge differ by <= 1,
	// visitedness is uniform within a component, and every claimed
	// tree edge actually exists. Tree edges are confirmed during the
	// full edge scan rather than by per-edge lookup, so validation
	// stays O(V+E) and independent of adjacency ordering.
	treeEdgeSeen := make([]bool, n)
	for u := int32(0); u < int32(n); u++ {
		lu := r.Level[u]
		for _, v := range g.Neighbors(u) {
			lv := r.Level[v]
			if (lu == NotVisited) != (lv == NotVisited) {
				return fmt.Errorf("bfs: edge (%d,%d) joins visited and unvisited", u, v)
			}
			if lu == NotVisited {
				continue
			}
			if diff := lu - lv; diff > 1 || diff < -1 {
				return fmt.Errorf("bfs: edge (%d,%d) spans levels %d and %d", u, v, lu, lv)
			}
			if r.Parent[v] == u {
				treeEdgeSeen[v] = true
			}
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if v != r.Source && r.Level[v] != NotVisited && !treeEdgeSeen[v] {
			return fmt.Errorf("bfs: tree edge (%d,%d) not in graph", r.Parent[v], v)
		}
	}
	return nil
}
