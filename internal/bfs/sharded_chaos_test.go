package bfs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"crossbfs/internal/fault"
	"crossbfs/internal/obs"
)

// chaosSchedules is the injection matrix: single crash, staggered
// double crash, a lagging straggler, dropped collectives, and the
// compound case. Every entry must leave the traversal equivalent to
// the serial reference after recovery.
var chaosSchedules = []string{
	"rankcrash:1@2",
	"rankcrash:0@1",
	"rankcrash:0@2;rankcrash:1@3",
	"ranklag:1x3@2",
	"exchdrop:0.3",
	"rankcrash:1@2;exchdrop:0.2",
}

// mustParseFaults builds a fresh schedule per run: a Schedule is
// stateful and single-owner, so runs never share one.
func mustParseFaults(t *testing.T, spec string, seed uint64) *fault.Schedule {
	t.Helper()
	s, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	return s
}

// TestShardedChaosMatchesSerial is the chaos equivalence property: for
// every graph family, rank count, and fault schedule, the partitioned
// engine under injection either recovers onto survivors or escalates
// with a typed error — and when it completes, its level map and
// invariant-checked parent tree agree with the serial reference
// exactly as a clean run's would. Workspaces are reused across every
// failure path to check the pool hygiene too.
func TestShardedChaosMatchesSerial(t *testing.T) {
	base := runtime.NumGoroutine()
	for name, g := range shardedTestGraphs(t) {
		src := firstUsable(t, g)
		want, err := Serial(g, src)
		if err != nil {
			t.Fatalf("%s: Serial: %v", name, err)
		}
		ws := NewWorkspace(g.NumVertices())
		for _, ranks := range []int{2, 4, 8} {
			for _, spec := range chaosSchedules {
				label := fmt.Sprintf("%s/r%d/%s", name, ranks, spec)
				e := NewShardedEngine(ranks, 14, 24)
				e.SetFaults(mustParseFaults(t, spec, 7))
				r, err := e.RunObserved(context.Background(), g, src, ws, nil)
				if err != nil {
					var fe *fault.Error
					if !errors.As(err, &fe) {
						t.Fatalf("%s: error is %v (%T), want *fault.Error", label, err, err)
					}
					continue
				}
				mustInvariants(t, label, g, r)
				sameTraversal(t, label, want, r)
				crashes, hasDrop := chaosExpectedLost(spec, ranks, r.NumLevels())
				if hasDrop {
					// Exhausted exchange retries fence ranks too, so
					// scheduled crashes are only a lower bound.
					if r.Recovery.RanksLost < crashes || r.Recovery.RanksLost >= ranks {
						t.Errorf("%s: RanksLost = %d, want in [%d,%d)", label, r.Recovery.RanksLost, crashes, ranks)
					}
				} else if r.Recovery.RanksLost != crashes {
					t.Errorf("%s: RanksLost = %d, want %d", label, r.Recovery.RanksLost, crashes)
				}
			}
		}
	}
	settleGoroutines(t, "chaos matrix", base)
}

// chaosExpectedLost counts the scheduled crashes that could actually
// fire: the rank must exist at this configuration, and the crash step
// must not lie past the traversal's last level (a star graph finishes
// in two steps, so a crash at step 3 never triggers). It also reports
// whether the schedule drops exchanges, which can fence further ranks
// nondeterministically.
func chaosExpectedLost(spec string, ranks, levels int) (crashes int, hasDrop bool) {
	s, _ := fault.Parse(spec, 7)
	for _, ev := range s.Events {
		switch ev.Kind {
		case fault.RankCrash:
			if ev.Rank < ranks && ev.Step <= levels {
				crashes++
			}
		case fault.ExchangeDrop:
			hasDrop = true
		}
	}
	return crashes, hasDrop
}

// TestShardedChaosDeterministicReplay pins the replayability contract:
// two runs under the same seeded schedule produce byte-identical
// parent and level arrays and identical recovery stats — the property
// that makes a chaos failure reproducible from its seed. On the path
// graph the parent tree is unique, so it is also compared entry for
// entry against the serial reference.
func TestShardedChaosDeterministicReplay(t *testing.T) {
	// The path graph runs ~300 collective rounds, enough for a
	// sustained drop probability to eventually exhaust every rank's
	// retries — correct escalation, but not the replay scenario — so
	// its schedules stay drop-free.
	graphs := map[string]struct {
		uniqueParents bool
		specs         []string
	}{
		"rmat10": {false, []string{"rankcrash:1@2", "rankcrash:1@2;exchdrop:0.25"}},
		"path":   {true, []string{"rankcrash:1@2", "rankcrash:1@2;rankcrash:0@5"}},
	}
	all := shardedTestGraphs(t)
	for name, tc := range graphs {
		g := all[name]
		uniqueParents := tc.uniqueParents
		src := firstUsable(t, g)
		want, err := Serial(g, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range tc.specs {
			label := name + "/" + spec
			run := func() *Result {
				e := NewShardedEngine(4, 14, 24)
				e.SetFaults(mustParseFaults(t, spec, 42))
				r, err := e.Run(g, src, nil)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return r
			}
			a, b := run(), run()
			if a.Recovery != b.Recovery {
				t.Fatalf("%s: recovery stats diverged between same-seed runs: %+v vs %+v",
					label, a.Recovery, b.Recovery)
			}
			for v := range a.Parent {
				if a.Parent[v] != b.Parent[v] {
					t.Fatalf("%s: Parent[%d] diverged between same-seed runs: %d vs %d",
						label, v, a.Parent[v], b.Parent[v])
				}
				if a.Level[v] != b.Level[v] {
					t.Fatalf("%s: Level[%d] diverged between same-seed runs", label, v)
				}
			}
			sameTraversal(t, label, want, a)
			if a.Recovery.RanksLost == 0 {
				t.Fatalf("%s: schedule injected no crash", label)
			}
			if uniqueParents {
				for v := range want.Parent {
					if a.Parent[v] != want.Parent[v] {
						t.Fatalf("%s: Parent[%d] = %d, serial %d (path parents are unique)",
							label, v, a.Parent[v], want.Parent[v])
					}
				}
			}
		}
	}
}

// TestShardedChaosTotalCollapse checks the last rung: when no survivor
// set can finish — every rank crashed, or every exchange attempt
// dropped — the engine fails with a typed *fault.Error instead of
// hanging or panicking, all rank goroutines unwind, and the workspace
// comes back clean enough for an immediate fault-free run.
func TestShardedChaosTotalCollapse(t *testing.T) {
	base := runtime.NumGoroutine()
	g := testRMAT(t, 10, 8, 11)
	src := firstUsable(t, g)
	want, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(g.NumVertices())
	for _, spec := range []string{
		"rankcrash:0@1;rankcrash:1@1",
		"rankcrash:0@1;rankcrash:1@2",
		"exchdrop:1",
	} {
		e := NewShardedEngine(2, 14, 24)
		e.SetFaults(mustParseFaults(t, spec, 3))
		_, err := e.Run(g, src, ws)
		if err == nil {
			t.Fatalf("%s: total collapse completed, want *fault.Error", spec)
		}
		var fe *fault.Error
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error is %v (%T), want *fault.Error", spec, err, err)
		}
		settleGoroutines(t, spec, base)
		// The workspace survives the failure path: a clean run reusing
		// it must still match serial.
		clean := NewShardedEngine(2, 14, 24)
		r, err := clean.Run(g, src, ws)
		if err != nil {
			t.Fatalf("%s: clean rerun on reused workspace: %v", spec, err)
		}
		mustInvariants(t, spec+"/rerun", g, r)
		sameTraversal(t, spec+"/rerun", want, r)
		if r.Recovery != (RecoveryStats{}) {
			t.Fatalf("%s: clean rerun reports recovery work %+v", spec, r.Recovery)
		}
	}
}

// TestShardedChaosWatchdogFencesLaggard drives the barrier watchdog:
// with a lag long past the stall timeout, the collective detects the
// parked straggler, fences it as failed, and the survivors finish the
// traversal correctly — a detected failure, not a hang.
func TestShardedChaosWatchdogFencesLaggard(t *testing.T) {
	base := runtime.NumGoroutine()
	g := testRMAT(t, 9, 8, 5)
	src := firstUsable(t, g)
	want, err := Serial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	e := NewShardedEngine(4, 14, 24)
	e.SetFaults(mustParseFaults(t, "ranklag:2x50@2", 1))
	e.SetFTOptions(FTOptions{
		LagUnit:      2 * time.Millisecond,  // 50x2ms sleep...
		StallTimeout: 20 * time.Millisecond, // ...against a 20ms deadline
		WatchdogPoll: time.Millisecond,
	})
	r, err := e.Run(g, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, "watchdog", g, r)
	sameTraversal(t, "watchdog", want, r)
	if r.Recovery.RanksLost != 1 {
		t.Fatalf("RanksLost = %d, want 1 (the fenced straggler)", r.Recovery.RanksLost)
	}
	settleGoroutines(t, "watchdog", base)
}

// TestShardedChaosRecoveryEvents checks the recovery telemetry end to
// end: the recorder sees rank_lost/recover/checkpoint events that
// agree with Result.Recovery, and the same stream round-trips through
// TraceWriter into a trace that ValidateTrace accepts and summarizes
// with matching counts.
func TestShardedChaosRecoveryEvents(t *testing.T) {
	g := testRMAT(t, 10, 8, 11)
	src := firstUsable(t, g)
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	rec := &lockedRecorder{}
	e := NewShardedEngine(4, 14, 24)
	e.SetFaults(mustParseFaults(t, "rankcrash:1@2;rankcrash:2@3", 7))
	r, err := e.RunObserved(context.Background(), g, src, nil, obs.Multi(rec, tw))
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var lost, recoverStart, recoverEnd, checkpoints int
	for _, ev := range rec.events {
		switch ev.Kind {
		case obs.KindRankLost:
			lost++
			if ev.Workers < 1 {
				t.Errorf("rank_lost event reports %d survivors", ev.Workers)
			}
		case obs.KindRecoverStart:
			recoverStart++
		case obs.KindRecoverEnd:
			recoverEnd++
		case obs.KindCheckpoint:
			checkpoints++
			if ev.Bytes < 0 || ev.Grains < 1 {
				t.Errorf("checkpoint event with bytes=%d grains=%d", ev.Bytes, ev.Grains)
			}
		}
	}
	if lost != r.Recovery.RanksLost {
		t.Errorf("saw %d rank_lost events, Result.Recovery says %d", lost, r.Recovery.RanksLost)
	}
	if lost != 2 {
		t.Errorf("rank_lost events = %d, want 2", lost)
	}
	if recoverStart == 0 || recoverStart != recoverEnd {
		t.Errorf("recover events unbalanced: %d starts, %d ends", recoverStart, recoverEnd)
	}
	if checkpoints == 0 {
		t.Error("no checkpoint events recorded")
	}
	sum, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}
	if sum.RanksLost != lost {
		t.Errorf("trace summary RanksLost = %d, recorder saw %d", sum.RanksLost, lost)
	}
	if sum.Recoveries != recoverEnd {
		t.Errorf("trace summary Recoveries = %d, recorder saw %d ends", sum.Recoveries, recoverEnd)
	}
	if sum.Checkpoints != checkpoints {
		t.Errorf("trace summary Checkpoints = %d, recorder saw %d", sum.Checkpoints, checkpoints)
	}
}

// TestShardedChaosContextCancel checks that cancellation still wins
// under injection: a context canceled mid-traversal surfaces as the
// context's error (not a fault), and every rank plus the watchdog
// unwinds.
func TestShardedChaosContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	g := testRMAT(t, 10, 8, 11)
	src := firstUsable(t, g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewShardedEngine(4, 14, 24)
	e.SetFaults(mustParseFaults(t, "ranklag:1x2@1;exchdrop:0.2", 7))
	_, err := e.RunContext(ctx, g, src, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	settleGoroutines(t, "chaos cancel", base)
}
