package bfs

import (
	"crossbfs/internal/bitmap"
	"crossbfs/internal/graph"
)

// tdGrain is the frontier block size claimed by one worker at a time.
// Small enough that a block holding a hub vertex does not serialize the
// level, large enough to amortize the claim.
const tdGrain = 256

// topDownLevel expands one level in the top-down direction: every
// frontier vertex offers itself as parent to its unvisited neighbors
// (paper Algorithm 1, lines 7-12). queue holds the current frontier,
// level is the distance to assign to newly found vertices. visited is
// the claim bitmap (bit set <=> vertex has a level). Returns the next
// frontier.
func topDownLevel(g *graph.CSR, r *Result, visited *bitmap.Bitmap, queue []int32, level int32, workers int) []int32 {
	if workers == 1 || resolveWorkers(workers, len(queue)) == 1 {
		return topDownLevelSerial(g, r, visited, queue, level)
	}
	nworkers := resolveWorkers(workers, len(queue))
	locals := make([][]int32, nworkers)
	parallelGrains(len(queue), tdGrain, nworkers, func(worker, start, end int) {
		local := locals[worker]
		for _, u := range queue[start:end] {
			for _, v := range g.Neighbors(u) {
				if visited.GetAtomic(int(v)) {
					continue
				}
				if visited.SetAtomic(int(v)) {
					r.Parent[v] = u
					r.Level[v] = level
					local = append(local, v)
				}
			}
		}
		locals[worker] = local
	})
	var total int
	for _, l := range locals {
		total += len(l)
	}
	next := make([]int32, 0, total)
	for _, l := range locals {
		next = append(next, l...)
	}
	return next
}

func topDownLevelSerial(g *graph.CSR, r *Result, visited *bitmap.Bitmap, queue []int32, level int32) []int32 {
	var next []int32
	for _, u := range queue {
		for _, v := range g.Neighbors(u) {
			if !visited.Get(int(v)) {
				visited.Set(int(v))
				r.Parent[v] = u
				r.Level[v] = level
				next = append(next, v)
			}
		}
	}
	return next
}

// RunTopDown runs a pure top-down BFS (the paper's GPUTD/CPUTD
// baseline algorithm). workers <= 0 uses GOMAXPROCS.
func RunTopDown(g *graph.CSR, source int32, workers int) (*Result, error) {
	return Run(g, source, Options{Policy: AlwaysTopDown, Workers: workers})
}
