package bfs

import (
	"context"

	"crossbfs/internal/bitmap"
	"crossbfs/internal/graph"
)

// tdGrain is the frontier block size claimed by one worker at a time.
// Small enough that a block holding a hub vertex does not serialize the
// level, large enough to amortize the claim.
const tdGrain = 256

// topDownLevel expands one level in the top-down direction: every
// frontier vertex offers itself as parent to its unvisited neighbors
// (paper Algorithm 1, lines 7-12). queue holds the current frontier,
// out receives the next frontier (passed in empty, returned possibly
// regrown), level is the distance to assign to newly found vertices.
// visited is the claim bitmap (bit set <=> vertex has a level). The
// per-worker shard slices live in ws, hoisted to once-per-traversal
// scope — they used to be rebuilt every level, which made the level
// loop itself an allocation hot spot.
//
// Cancellation is observed at grain boundaries (see parallelGrains);
// on error the returned queue is meaningless and the caller must
// abandon the traversal.
func topDownLevel(ctx context.Context, g *graph.CSR, r *Result, visited *bitmap.Bitmap, queue, out []int32, level int32, workers int, ws *Workspace) ([]int32, error) {
	nworkers := resolveWorkers(workers, len(queue))
	if nworkers == 1 {
		return topDownLevelSerial(g, r, visited, queue, out, level), nil
	}
	locals := ws.workerShards(nworkers)
	err := parallelGrains(ctx, len(queue), tdGrain, nworkers, func(worker, start, end int) {
		local := locals[worker]
		for _, u := range queue[start:end] {
			for _, v := range g.Neighbors(u) {
				if visited.GetAtomic(int(v)) {
					continue
				}
				if visited.SetAtomic(int(v)) {
					r.Parent[v] = u
					r.Level[v] = level
					local = append(local, v)
				}
			}
		}
		locals[worker] = local
	})
	if err != nil {
		return nil, err
	}
	for _, l := range locals {
		out = append(out, l...)
	}
	return out, nil
}

func topDownLevelSerial(g *graph.CSR, r *Result, visited *bitmap.Bitmap, queue, out []int32, level int32) []int32 {
	for _, u := range queue {
		for _, v := range g.Neighbors(u) {
			if !visited.Get(int(v)) {
				visited.Set(int(v))
				r.Parent[v] = u
				r.Level[v] = level
				out = append(out, v)
			}
		}
	}
	return out
}

// RunTopDown runs a pure top-down BFS (the paper's GPUTD/CPUTD
// baseline algorithm). workers <= 0 uses GOMAXPROCS.
func RunTopDown(g *graph.CSR, source int32, workers int) (*Result, error) {
	return Run(g, source, Options{Policy: AlwaysTopDown, Workers: workers})
}
