package bfs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"crossbfs/internal/bitmap"
	"crossbfs/internal/fault"
	"crossbfs/internal/graph"
	"crossbfs/internal/invariant"
	"crossbfs/internal/obs"
	"crossbfs/internal/part"
)

// Sharded is the partitioned direction-optimizing engine: N goroutine
// "ranks" each own a contiguous, 64-aligned vertex range of a 1D
// partition (internal/part) and run the top-down/bottom-up level
// kernels over their own sub-CSR, exchanging frontier state once per
// level. It reproduces the distributed-memory formulation of the
// paper's heuristic (Buluç–Beamer, PAPERS.md) inside one process:
//
//   - Top-down levels scatter remote claims: an edge (u, v) whose
//     target v lives on another rank becomes a (v, u) message in the
//     owner's outbox slot, applied by the owner after a barrier — the
//     owner's visited bit arbitrates duplicates, making every ghost
//     update exactly-once no matter how many ranks propose the same v.
//   - Bottom-up levels all-gather the frontier: each rank serializes
//     its owned slice of the current frontier as a compressed word
//     delta (bitmap.AppendDelta) and every rank ORs the others' deltas
//     into a private full-graph replica before scanning its own rows.
//   - The direction is a collective decision: each level the ranks
//     all-reduce |V|cq, |E|cq and the unvisited count, and the last
//     rank to arrive runs the (single, shared) switching policy on the
//     global sums — so every rank changes direction together, and the
//     switch lands exactly where the single-box engine's would
//     (TestShardedDirectionsMatchHybrid pins this).
//
// Sharing discipline: the result's parent/level arrays and the visited
// bitmap are shared across ranks, but every write lands in the
// writer's own [Lo, Hi) range, and the 64-aligned partition boundaries
// mean not even a bitmap word straddles two owners — so the kernels
// use plain stores, no atomics. Cross-rank data moves only through the
// outbox/delta slots, which are written before and read after a
// barrier (the barrier's mutex + broadcast is the happens-before
// edge). `make race` runs this engine through the sharded tests.
type Sharded struct {
	ranks int
	// policy/newPolicy mirror policyEngine: exactly one policy instance
	// decides for all ranks each traversal (the collective's leader
	// calls Choose once per level), so stateful heuristics see the same
	// step sequence they would see on one box.
	policy          Policy
	newPolicy       func() Policy
	name            string
	checkInvariants bool

	// faults is the rank-fault injection schedule; when it carries
	// rank-targeted events (fault.Schedule.HasRankFaults) the engine
	// arms its fault-tolerance machinery: per-level frontier
	// checkpoints, the barrier watchdog, and survivor recovery. See
	// sharded_ft.go and DESIGN.md §4e.
	faults *fault.Schedule
	ftOpts FTOptions

	// Partition cache: RunMany-style workloads traverse one graph from
	// many roots, and the partition depends only on (graph, ranks).
	mu      sync.Mutex
	cachedG *graph.CSR
	cachedP *part.Partitioned
}

// NewShardedEngine returns the partitioned engine with the paper's
// (M, N) switching rule decided collectively across ranks.
func NewShardedEngine(ranks int, m, n float64) *Sharded {
	return &Sharded{
		ranks:  ranks,
		policy: MN{M: m, N: n},
		name:   fmt.Sprintf("sharded(%d,hybrid(%g,%g))", ranks, m, n),
	}
}

// NewShardedAdaptive returns a partitioned engine around a stateful
// switching heuristic: newPolicy runs once per traversal and the
// resulting policy instance makes every level's collective decision.
func NewShardedAdaptive(ranks int, inner string, newPolicy func() Policy) *Sharded {
	return &Sharded{
		ranks:     ranks,
		newPolicy: newPolicy,
		name:      fmt.Sprintf("sharded(%d,%s)", ranks, inner),
	}
}

// Ranks returns the engine's rank count.
func (e *Sharded) Ranks() int { return e.ranks }

// SetFaults installs a fault-injection schedule. Schedules carrying
// rank-targeted events (rankcrash/ranklag/exchdrop) arm the engine's
// checkpoint-and-recover machinery; device-level kinds are ignored
// here (they belong to the simulator ladder in internal/core). Like
// the Schedule itself, an engine with faults installed must not run
// concurrent traversals.
func (e *Sharded) SetFaults(s *fault.Schedule) { e.faults = s }

// SetFTOptions overrides the fault-tolerance tuning knobs (timeouts,
// backoff, lag unit). Zero fields keep their defaults.
func (e *Sharded) SetFTOptions(o FTOptions) { e.ftOpts = o }

// SetCheckInvariants toggles the post-traversal parent-tree check.
func (e *Sharded) SetCheckInvariants(on bool) { e.checkInvariants = on }

// Name implements Engine.
func (e *Sharded) Name() string { return e.name }

// Run implements Engine.
func (e *Sharded) Run(g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunContext(context.Background(), g, source, ws)
}

// RunContext implements Engine.
func (e *Sharded) RunContext(ctx context.Context, g *graph.CSR, source int32, ws *Workspace) (*Result, error) {
	return e.RunObserved(ctx, g, source, ws, nil)
}

// partition returns the cached partition of g, building it on first
// use (or when the engine moves to a different graph).
func (e *Sharded) partition(g *graph.CSR) (*part.Partitioned, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cachedG == g && e.cachedP != nil {
		return e.cachedP, nil
	}
	p, err := part.Partition(g, e.ranks)
	if err != nil {
		return nil, err
	}
	e.cachedG, e.cachedP = g, p
	return p, nil
}

// RunObserved implements Engine. It carries the same fault-tolerance
// contract as RunWithContext: ctx.Err() verbatim on cancellation
// (honored within ctxStride kernel iterations), contained panics as
// *PanicError, and a quiescent, pool-clean workspace on every exit —
// all rank goroutines have terminated before any error returns.
func (e *Sharded) RunObserved(ctx context.Context, g *graph.CSR, source int32, ws *Workspace, rec obs.Recorder) (_ *Result, err error) {
	var (
		o    tobs
		done *Result
	)
	defer func() { o.end(done, err) }()
	defer func() { recoverToError(recover(), &err) }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := checkSource(g, source); err != nil {
		return nil, err
	}
	if e.ranks < 1 {
		return nil, fmt.Errorf("bfs: sharded engine needs >= 1 rank, got %d", e.ranks)
	}
	pol := e.policy
	if e.newPolicy != nil {
		pol = e.newPolicy()
	}
	if pol == nil {
		pol = AlwaysTopDown
	}
	if mn, ok := pol.(MN); ok {
		if err := mn.Validate(); err != nil {
			return nil, err
		}
	}
	p, err := e.partition(g)
	if err != nil {
		return nil, err
	}

	reusedWS := ws != nil
	if ws == nil {
		ws = NewWorkspace(g.NumVertices())
	}
	o = observeStart(rec, g, source, e.name, reusedWS)

	needEdges := true
	if oo, ok := pol.(EdgeCountOptOut); ok {
		needEdges = oo.NeedsFrontierEdges()
	}
	needEdges = needEdges || o.live

	r := ws.begin(g, source)
	ws.visited.Set(int(source))

	c := &shardedRun{
		g: g, p: p, res: r, visited: ws.visited,
		policy: pol, needEdges: needEdges,
		ctx: ctx, o: &o, ranks: e.ranks, source: source,
		outboxes: make([][][]int32, e.ranks),
		deltas:   make([][]byte, e.ranks),
		prevDir:  Direction(-1),
	}
	c.cond = sync.NewCond(&c.mu)
	if e.faults.HasRankFaults() {
		e.faults.Reset()
		c.ft = newShardedFT(e.faults, e.ftOpts, e.ranks)
	}

	states := make([]*rankState, e.ranks)
	for i := range states {
		states[i] = getRankState(e.ranks, g.NumVertices())
	}
	var wg sync.WaitGroup
	if c.ft != nil {
		// The watchdog signals its own exit through ft.wdDone; keeping
		// its lifecycle state off this frame keeps the no-fault path
		// free of the escape-analysis allocation a captured WaitGroup
		// would cost every traversal.
		go c.watchdog(c.ft.wdStop)
	}
	//lint:ctx-ok each rank checks ctx every level and every ctxStride kernel iterations; the spawn loop itself is O(ranks)
	for rank := 0; rank < e.ranks; rank++ {
		wg.Add(1)
		go func(rank int, rs *rankState) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					var perr error
					recoverToError(v, &perr)
					c.fail(perr)
				}
			}()
			c.rankLoop(rank, rs)
		}(rank, states[rank])
	}
	// Every rank goroutine has exited before Run returns — on success,
	// cancellation, and panic alike — so the workspace and the pooled
	// rank states are quiescent whenever the caller sees them again.
	wg.Wait()
	if c.ft != nil {
		close(c.ft.wdStop)
		<-c.ft.wdDone
		r.Recovery = c.ft.stats
	}
	for _, rs := range states {
		putRankState(rs)
	}
	if c.err != nil {
		return nil, c.err
	}

	if e.checkInvariants {
		if err := invariant.Check(g, source, r.Parent, r.Level); err != nil {
			return nil, fmt.Errorf("bfs: sharded post-traversal: %w", err)
		}
	}
	ws.retain(r, ws.queue, ws.spare)
	r.finish(g)
	done = r
	return r, nil
}

// rankState is the pooled per-rank working set: the owned frontier
// queues, the private full-graph frontier replica for bottom-up
// levels, the per-destination outboxes, and the delta scratch buffer.
type rankState struct {
	queue, next []int32
	out         [][]int32
	delta       []byte
	front       *bitmap.Bitmap

	// Fault-tolerance scratch, touched only by rankLoopFT: ck is the
	// checkpoint encode/decode bitmap, segDeltas the per-owned-segment
	// bottom-up delta buffers (indexed by segment id; a rank may own
	// several segments after adopting a dead rank's range).
	ck        *bitmap.Bitmap
	segDeltas [][]byte
}

// rankStatePool recycles rank states across traversals (and across
// engines — the state carries no graph identity; everything is resized
// or truncated before reuse).
var rankStatePool = sync.Pool{New: func() any { return &rankState{} }}

func getRankState(ranks, n int) *rankState {
	rs := rankStatePool.Get().(*rankState)
	if len(rs.out) < ranks {
		grown := make([][]int32, ranks)
		copy(grown, rs.out)
		rs.out = grown
	}
	if rs.front == nil {
		rs.front = bitmap.New(n)
	}
	return rs
}

func putRankState(rs *rankState) { rankStatePool.Put(rs) }

// shardedRun is the shared state of one sharded traversal: the global
// result arrays, the cross-rank exchange slots, and the collective.
type shardedRun struct {
	g         *graph.CSR
	p         *part.Partitioned
	res       *Result
	visited   *bitmap.Bitmap
	policy    Policy
	needEdges bool
	ctx       context.Context
	o         *tobs
	ranks     int
	source    int32

	// Exchange slots, indexed by source rank. A rank writes only its
	// own slot before the exchange barrier and reads the others only
	// after it.
	outboxes [][][]int32 // [src][dst] flat (v, u) claim pairs (top-down)
	deltas   [][]byte    // [src] owned-range frontier word delta (bottom-up)

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
	err     error

	// ft is the fault-tolerance state, nil unless the installed
	// schedule carries rank faults — the no-fault hot path never
	// branches past this nil check. Guarded by mu. See sharded_ft.go.
	ft *shardedFT

	// Collective state, mutated only under mu. The choose round sums
	// the frontier quantities on arrival and the leader runs the
	// policy; the end round sums the level outcome and the leader
	// appends the per-step logs and emits the level event.
	vcq, ecq, unvisited int64
	dir                 Direction
	runDone             bool
	stepStart           time.Time
	prevDir             Direction

	found, scans              int64
	frontierBytes, ghostBytes int64
	ghostSent, ghostApplied   int64
}

// fail records the first error and wakes every rank blocked in a
// barrier. Later failures are dropped: the first error is the cause,
// anything after it is unwinding noise.
func (c *shardedRun) fail(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
}

// round is the collective primitive: every rank runs arrive under the
// lock as it shows up, the last rank to arrive additionally runs
// leader, and then all are released. Any rank's fail() aborts every
// waiter with the recorded error, and a rank arriving after a failure
// returns it immediately — so no round can deadlock on a dead rank.
//
// Under fault tolerance (c.ft != nil) membership is dynamic: the
// round completes when every *live* rank has arrived, and epoch is
// the caller's view of the membership generation. A caller holding a
// stale epoch is rejected before it can contribute (errEpochChanged →
// it unwinds into recovery and re-arrives with fresh sums), and a
// fenced caller gets errFenced and exits. Both checks happen again
// after the wait, so a fence mid-round aborts every waiter — unless
// the round already completed, in which case the membership change
// surfaces at the next round's entry so all survivors agree on the
// replay level.
func (c *shardedRun) round(rank int, epoch uint64, arrive, leader func()) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	ft := c.ft
	target := c.ranks
	if ft != nil {
		if ft.dead[rank] {
			return errFenced
		}
		if ft.epoch != epoch {
			return errEpochChanged
		}
		ft.present[rank] = true
		target = ft.live
	}
	if arrive != nil {
		arrive()
	}
	c.arrived++
	if c.arrived >= target {
		c.arrived = 0
		if ft != nil {
			for i := range ft.present {
				ft.present[i] = false
			}
		}
		if leader != nil {
			leader()
		}
		c.gen++
		c.cond.Broadcast()
		return c.err
	}
	gen := c.gen
	for c.gen == gen && c.err == nil && (ft == nil || (ft.epoch == epoch && !ft.dead[rank])) {
		c.cond.Wait()
	}
	if c.err != nil {
		return c.err
	}
	if c.gen != gen {
		return nil
	}
	if ft.dead[rank] {
		return errFenced
	}
	return errEpochChanged
}

// ctxStride is how many kernel iterations run between context checks
// inside a level; cancellation is honored within one stride.
const ctxStride = 4096

// rankLoop is one rank's whole traversal. Any error has been published
// via fail (or observed from a round) by the time it returns.
func (c *shardedRun) rankLoop(rank int, rs *rankState) {
	if c.ft != nil {
		// Fault tolerance swaps in the multi-segment kernels and the
		// checkpoint/recovery loop; the no-fault hot path below stays
		// untouched.
		c.rankLoopFT(rank, rs)
		return
	}
	sh := c.p.Shards[rank]
	lo, hi := int(sh.Lo), int(sh.Hi)
	loW, hiW := c.p.Layout.WordRange(rank)
	sub := sh.Sub
	layout := &c.p.Layout

	queue := rs.queue[:0]
	next := rs.next[:0]
	// Keep grown buffers pooled no matter which exit path runs.
	defer func() { rs.queue, rs.next = queue, next }()

	unvisitedLocal := int64(hi - lo)
	if sh.Owns(c.source) {
		queue = append(queue, c.source)
		unvisitedLocal--
	}
	step := int32(1)

	for {
		if err := c.ctx.Err(); err != nil {
			c.fail(err)
			return
		}
		var ecq int64
		if c.needEdges {
			for _, v := range queue {
				ecq += sub.Degree(v - int32(lo))
			}
		}
		dir, runDone, err := c.chooseRound(rank, 0, int64(len(queue)), ecq, unvisitedLocal, step)
		if err != nil || runDone {
			return
		}

		next = next[:0]
		var found, scans int64
		var frontierBytes, ghostSentBytes int64
		var ghostRecv, ghostApplied int64

		switch dir {
		case TopDown:
			out := rs.out[:c.ranks]
			for d := range out {
				out[d] = out[d][:0]
			}
			parent, level := c.res.Parent, c.res.Level
			for i, u := range queue {
				if i%ctxStride == ctxStride-1 {
					if err := c.ctx.Err(); err != nil {
						c.fail(err)
						return
					}
				}
				for _, v := range sub.Neighbors(u - int32(lo)) {
					if int(v) >= lo && int(v) < hi {
						if !c.visited.Get(int(v)) {
							c.visited.Set(int(v))
							parent[v] = u   //lint:shared-ok rank-owned row: v is in this rank's [Lo,Hi) and no other rank writes there
							level[v] = step //lint:shared-ok rank-owned row: v is in this rank's [Lo,Hi) and no other rank writes there
							next = append(next, v)
						}
					} else {
						out[layout.Owner(v)] = append(out[layout.Owner(v)], v, u)
					}
				}
			}
			c.outboxes[rank] = out
			for d, pairs := range out {
				if d != rank {
					ghostSentBytes += int64(len(pairs)) * 4
				}
			}
			// Exchange: barrier so every outbox is complete, then apply
			// the claims addressed to this rank.
			applyGhosts := func() error {
				if err := c.round(rank, 0, nil, nil); err != nil {
					return err
				}
				for s := 0; s < c.ranks; s++ {
					if s == rank {
						continue
					}
					in := c.outboxes[s][rank]
					for i := 0; i+1 < len(in); i += 2 {
						v, u := in[i], in[i+1]
						ghostRecv++
						if !c.visited.Get(int(v)) {
							c.visited.Set(int(v))
							parent[v] = u   //lint:shared-ok rank-owned row: the outbox routed v to its owner and only the owner applies it
							level[v] = step //lint:shared-ok rank-owned row: the outbox routed v to its owner and only the owner applies it
							next = append(next, v)
							ghostApplied++
						}
					}
				}
				return nil
			}
			if err := c.observeExchange(rank, step, dir, &ghostSentBytes, applyGhosts); err != nil {
				return
			}
			if c.o.live && c.ranks > 1 {
				c.o.event(obs.Event{
					Kind: obs.KindGhostUpdate, Step: step, Dir: obs.DirNone,
					Index: int32(rank), Scans: ghostRecv, Discovered: ghostApplied,
					Bytes: ghostRecv * 8, Wall: time.Now(),
				})
			}
			found = int64(len(next))

		case BottomUp:
			// Materialize this rank's owned slice of the current
			// frontier, publish it as a compressed word delta, and merge
			// the other ranks' deltas into the private replica.
			rs.front.Resize(c.g.NumVertices()) // clear + fit
			for _, v := range queue {
				rs.front.Set(int(v))
			}
			if c.ranks > 1 {
				delta := rs.front.AppendDelta(rs.delta[:0], loW, hiW)
				rs.delta = delta
				c.deltas[rank] = delta
				frontierBytes = int64(len(delta))
			}
			gatherFrontier := func() error {
				if err := c.round(rank, 0, nil, nil); err != nil {
					return err
				}
				for s := 0; s < c.ranks; s++ {
					if s == rank {
						continue
					}
					sLoW, _ := c.p.Layout.WordRange(s)
					if _, err := rs.front.ApplyDelta(c.deltas[s], sLoW); err != nil {
						err = fmt.Errorf("bfs: sharded rank %d: %w", rank, err)
						c.fail(err)
						return err
					}
				}
				return nil
			}
			if err := c.observeExchange(rank, step, dir, &frontierBytes, gatherFrontier); err != nil {
				return
			}
			// Bottom-up scan of the owned rows against the replica.
			parent, level := c.res.Parent, c.res.Level
			for v := lo; v < hi; v++ {
				if v%ctxStride == ctxStride-1 {
					if err := c.ctx.Err(); err != nil {
						c.fail(err)
						return
					}
				}
				if c.visited.Get(v) {
					continue
				}
				for _, u := range sub.Neighbors(int32(v - lo)) {
					scans++
					if rs.front.Get(int(u)) {
						c.visited.Set(v)
						parent[v] = u   //lint:shared-ok rank-owned row: v iterates this rank's [Lo,Hi) only
						level[v] = step //lint:shared-ok rank-owned row: v iterates this rank's [Lo,Hi) only
						next = append(next, int32(v))
						break
					}
				}
			}
			found = int64(len(next))

		default:
			c.fail(fmt.Errorf("bfs: policy returned unknown direction %d", dir))
			return
		}

		if err := c.endRound(rank, 0, step, dir, found, scans, frontierBytes, ghostSentBytes, ghostRecv, ghostApplied); err != nil {
			return
		}
		unvisitedLocal -= found
		queue, next = next, queue
		step++
	}
}

// chooseRound all-reduces (|V|cq, |E|cq, unvisited) and has the leader
// run the switching policy on the global sums. It returns the
// collective direction and whether the traversal is complete (global
// frontier empty).
func (c *shardedRun) chooseRound(rank int, epoch uint64, vcq, ecq, unvisitedLocal int64, step int32) (Direction, bool, error) {
	err := c.round(rank, epoch, func() {
		c.vcq += vcq
		c.ecq += ecq
		c.unvisited += unvisitedLocal
	}, func() {
		if c.vcq == 0 {
			c.runDone = true
			return
		}
		info := StepInfo{
			Step:              int(step),
			FrontierVertices:  c.vcq,
			FrontierEdges:     -1,
			UnvisitedVertices: c.unvisited,
			TotalVertices:     int64(c.g.NumVertices()),
			TotalEdges:        c.g.NumEdges(),
		}
		if c.needEdges {
			info.FrontierEdges = c.ecq
		}
		c.dir = c.policy.Choose(info)
		if c.o.live {
			c.stepStart = time.Now()
			if c.prevDir >= 0 && c.dir != c.prevDir {
				c.o.event(obs.Event{
					Kind: obs.KindSwitch, Step: step,
					Dir: obs.Direction(c.dir), Wall: c.stepStart,
				})
			}
			c.o.event(obs.Event{
				Kind: obs.KindCollective, Step: step, Dir: obs.Direction(c.dir),
				FrontierVertices: info.FrontierVertices,
				FrontierEdges:    info.FrontierEdges,
				Unvisited:        info.UnvisitedVertices,
				Workers:          int32(c.ranks),
				Wall:             c.stepStart,
			})
		}
		c.prevDir = c.dir
		c.found, c.scans = 0, 0
		c.frontierBytes, c.ghostBytes = 0, 0
		c.ghostSent, c.ghostApplied = 0, 0
	})
	if err != nil {
		return 0, false, err
	}
	// The leader wrote the decision under the lock before releasing the
	// round; re-acquire it for a race-clean read (two instructions, far
	// off the kernels' hot loops).
	c.mu.Lock()
	dir, runDone := c.dir, c.runDone
	c.mu.Unlock()
	return dir, runDone, nil
}

// endRound all-reduces the level outcome; the leader appends the
// per-step direction/scan/exchange logs to the shared result and emits
// the level event, then clears the accumulators for the next level.
func (c *shardedRun) endRound(rank int, epoch uint64, step int32, dir Direction, found, scans, frontierBytes, ghostSentBytes, ghostRecv, ghostApplied int64) error {
	return c.round(rank, epoch, func() {
		c.found += found
		c.scans += scans
		c.frontierBytes += frontierBytes
		c.ghostBytes += ghostSentBytes
		c.ghostSent += ghostRecv
		c.ghostApplied += ghostApplied
	}, func() {
		c.res.Directions = append(c.res.Directions, dir)
		c.res.StepScans = append(c.res.StepScans, c.scans)
		c.res.Exchanges = append(c.res.Exchanges, ExchangeStats{
			Step: int(step), Dir: dir,
			FrontierBytes: c.frontierBytes, GhostBytes: c.ghostBytes,
			GhostSent: c.ghostSent, GhostApplied: c.ghostApplied,
		})
		if c.o.live {
			c.o.event(obs.Event{
				Kind: obs.KindLevel, Step: step, Dir: obs.Direction(dir),
				FrontierVertices: c.vcq,
				FrontierEdges:    c.ecq,
				Discovered:       c.found,
				Unvisited:        c.unvisited,
				Scans:            c.scans,
				Grains:           int64(c.ranks),
				Workers:          int32(c.ranks),
				Wall:             c.stepStart,
				WallDur:          time.Since(c.stepStart),
			})
		}
		c.vcq, c.ecq, c.unvisited = 0, 0, 0
	})
}

// observeExchange wraps one rank's per-level exchange (the barrier
// plus the apply phase in fn) in the paired exchange events. bytes is
// read at emission time so the closer reports what actually shipped.
func (c *shardedRun) observeExchange(rank int, step int32, dir Direction, bytes *int64, fn func() error) error {
	if !c.o.live || c.ranks == 1 {
		return fn()
	}
	start := time.Now()
	c.o.event(obs.Event{
		Kind: obs.KindExchangeStart, Step: step, Dir: obs.Direction(dir),
		Index: int32(rank), Workers: int32(c.ranks), Wall: start,
	})
	defer func() {
		c.o.event(obs.Event{
			Kind: obs.KindExchangeEnd, Step: step, Dir: obs.Direction(dir),
			Index: int32(rank), Bytes: *bytes,
			Wall: time.Now(), WallDur: time.Since(start),
		})
	}()
	return fn()
}
