package bfs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// resolveWorkers maps the user-facing worker count (0 = automatic) to
// an effective one, never exceeding the amount of work available.
func resolveWorkers(requested, workItems int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > workItems {
		w = workItems
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelGrains runs fn over [0, n) split into grain-sized blocks
// claimed dynamically by workers — dynamic scheduling because R-MAT
// frontiers have wildly skewed per-vertex work (a handful of hub
// vertices own most edges).
func parallelGrains(n, grain, workers int, fn func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers = resolveWorkers(workers, (n+grain-1)/grain)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				fn(worker, start, end)
			}
		}(w)
	}
	wg.Wait()
}
