package bfs

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered inside a traversal — a worker
// goroutine or the level loop itself. Converting panics to errors is
// part of the fault-containment contract: a bug (or an injected
// fault) in one traversal must fail that traversal, not kill a
// process serving many.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("bfs: traversal panicked: %v", e.Value)
}

// recoverToError converts a recovered panic value into a *PanicError,
// capturing the stack. Call as: defer func() { recoverToError(recover(), &err) }().
func recoverToError(v any, dst *error) {
	if v == nil {
		return
	}
	*dst = &PanicError{Value: v, Stack: debug.Stack()}
}

// resolveWorkers maps the user-facing worker count (0 = automatic) to
// an effective one, never exceeding the amount of work available.
func resolveWorkers(requested, workItems int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > workItems {
		w = workItems
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelGrains runs fn over [0, n) split into grain-sized blocks
// claimed dynamically by workers — dynamic scheduling because R-MAT
// frontiers have wildly skewed per-vertex work (a handful of hub
// vertices own most edges).
//
// Cancellation and containment contract: workers observe ctx between
// grain claims, so a cancel is honored within one grain of work; a
// panicking worker is recovered and surfaced as a *PanicError. In
// both cases every worker goroutine has exited by the time
// parallelGrains returns (the WaitGroup is unconditional), so callers
// never leak goroutines and the caller's buffers are quiescent — safe
// to reset and return to a pool.
//
// The first stop cause wins: ctx.Err() for cancellation, *PanicError
// for a worker panic. fn must tolerate having processed only a prefix
// of the grains when an error is returned.
func parallelGrains(ctx context.Context, n, grain, workers int, fn func(worker, start, end int)) (err error) {
	if n <= 0 {
		return ctx.Err()
	}
	if grain < 1 {
		grain = 1
	}
	workers = resolveWorkers(workers, (n+grain-1)/grain)
	done := ctx.Done()
	if workers == 1 {
		// Inline fast path: no goroutines, but the same per-grain
		// cancellation points and panic containment as the fan-out path.
		defer func() { recoverToError(recover(), &err) }()
		for start := 0; start < n; start += grain {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			end := start + grain
			if end > n {
				end = n
			}
			fn(0, start, end)
		}
		return nil
	}

	var (
		cursor   atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(e error) {
		errOnce.Do(func() { firstErr = e })
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// A panic in fn must not escape the goroutine (it would
			// kill the process); convert it to the traversal's error
			// and stop the other workers at their next grain claim.
			defer func() {
				if v := recover(); v != nil {
					var perr error
					recoverToError(v, &perr)
					fail(perr)
				}
			}()
			for {
				if stop.Load() {
					return
				}
				select {
				case <-done:
					fail(ctx.Err())
					return
				default:
				}
				start := int(cursor.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				fn(worker, start, end)
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
