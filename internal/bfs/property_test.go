package bfs

import (
	"testing"
	"testing/quick"

	"crossbfs/internal/graph"
	"crossbfs/internal/invariant"
	"crossbfs/internal/xrand"
)

// randomGraph builds an arbitrary (non-R-MAT) undirected graph so the
// properties are not specific to scale-free inputs.
func randomGraph(seed uint64) (*graph.CSR, int32, error) {
	rng := xrand.New(seed)
	n := 2 + rng.Intn(200)
	m := rng.Intn(4 * n)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))}
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		return nil, 0, err
	}
	return g, int32(rng.Intn(n)), nil
}

// TestPropertyAllEnginesAgree: for arbitrary graphs, sources and
// switching parameters, every engine produces the same level map as
// the serial reference and passes Graph 500 validation.
func TestPropertyAllEnginesAgree(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint16, workersRaw uint8) bool {
		g, src, err := randomGraph(seed)
		if err != nil {
			return false
		}
		m := 1 + float64(mRaw%512)
		n := 1 + float64(nRaw%512)
		workers := int(workersRaw%4) + 1

		want, err := Serial(g, src)
		if err != nil {
			return false
		}
		runs := []func() (*Result, error){
			func() (*Result, error) { return RunTopDown(g, src, workers) },
			func() (*Result, error) { return RunBottomUp(g, src, workers) },
			func() (*Result, error) { return RunTopDownEdgeParallel(g, src, workers) },
			func() (*Result, error) { return Hybrid(g, src, m, n, workers) },
			func() (*Result, error) {
				return Run(g, src, Options{Policy: NewAlphaBeta(float64(1+mRaw%30), float64(1+nRaw%40)), Workers: workers})
			},
			func() (*Result, error) {
				return Run(g, src, Options{Policy: NewHongHybrid(), Workers: workers})
			},
		}
		for _, run := range runs {
			got, err := run()
			if err != nil {
				return false
			}
			if Validate(g, got) != nil {
				return false
			}
			if invariant.Check(g, got.Source, got.Parent, got.Level) != nil {
				return false
			}
			for v := range want.Level {
				if want.Level[v] != got.Level[v] {
					return false
				}
			}
			if got.VisitedCount != want.VisitedCount || got.TraversedEdges != want.TraversedEdges {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTraceConsistency: traces of arbitrary graphs satisfy the
// conservation laws regardless of structure.
func TestPropertyTraceConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		g, src, err := randomGraph(seed)
		if err != nil {
			return false
		}
		tr, err := TraceFrom(g, src)
		if err != nil {
			return false
		}
		var frontierSum, edgeSum int64
		for _, s := range tr.Steps {
			frontierSum += s.FrontierVertices
			edgeSum += s.FrontierEdges
			if s.GraphVertices != int64(g.NumVertices()) {
				return false
			}
			if s.BottomUpScans < 0 || s.MaxScan < 0 {
				return false
			}
		}
		return frontierSum == tr.Reachable && edgeSum == tr.EdgesVisited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
