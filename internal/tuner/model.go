package tuner

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"

	"crossbfs/internal/svm"
)

// Model is the trained switching-point predictor: two SVR regressors
// (one for M, one for N) over min-max-scaled Fig. 7 feature vectors.
// Targets are predicted in log space — the (M, N) thresholds act
// through 1/M and 1/N, so ratios, not differences, are what the model
// must capture.
type Model struct {
	MModel *svm.SVR
	NModel *svm.SVR
	Scaler *svm.Scaler
	// MaxM/MaxN clamp predictions to the candidate range used in
	// training; extrapolated switching points outside it are never
	// better than the boundary.
	MaxM, MaxN float64
}

// TrainOptions configure model fitting.
type TrainOptions struct {
	// SVR hyperparameters; zero values select the defaults below,
	// chosen for ~100-200 samples of 12 scaled features.
	C       float64
	Epsilon float64
	Gamma   float64
}

func (o *TrainOptions) setDefaults() {
	if o.C <= 0 {
		o.C = 64
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.05
	}
	if o.Gamma <= 0 {
		o.Gamma = 1.0
	}
}

// Train fits the predictor on labelled samples (Fig. 6, training
// stage).
func Train(samples []Labeled, opts TrainOptions) (*Model, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("tuner: need at least 2 samples, got %d", len(samples))
	}
	opts.setDefaults()

	raw := make([][]float64, len(samples))
	logM := make([]float64, len(samples))
	logN := make([]float64, len(samples))
	maxM, maxN := 1.0, 1.0
	for i, s := range samples {
		if s.Best.M <= 0 || s.Best.N <= 0 {
			return nil, fmt.Errorf("tuner: sample %d has non-positive label %v", i, s.Best)
		}
		raw[i] = s.Vector()
		logM[i] = math.Log(s.Best.M)
		logN[i] = math.Log(s.Best.N)
		maxM = math.Max(maxM, s.Best.M)
		maxN = math.Max(maxN, s.Best.N)
	}

	scaler, err := svm.FitScaler(raw)
	if err != nil {
		return nil, err
	}
	X := scaler.TransformAll(raw)

	params := svm.SVRParams{
		Kernel:  svm.RBF{Gamma: opts.Gamma},
		C:       opts.C,
		Epsilon: opts.Epsilon,
	}
	mModel, err := svm.TrainSVR(X, logM, params)
	if err != nil {
		return nil, fmt.Errorf("tuner: training M model: %w", err)
	}
	nModel, err := svm.TrainSVR(X, logN, params)
	if err != nil {
		return nil, fmt.Errorf("tuner: training N model: %w", err)
	}
	return &Model{MModel: mModel, NModel: nModel, Scaler: scaler, MaxM: maxM, MaxN: maxN}, nil
}

// Predict returns the switching point for a new traversal (Fig. 6,
// on-line stage). Its cost is two kernel expansions over at most the
// training-set size — the "<0.1% of BFS execution time" the paper
// reports.
func (m *Model) Predict(s Sample) SwitchPoint {
	x := m.Scaler.Transform(s.Vector())
	p := SwitchPoint{
		M: math.Exp(m.MModel.Predict(x)),
		N: math.Exp(m.NModel.Predict(x)),
	}
	p.M = clamp(p.M, 1, m.MaxM)
	p.N = clamp(p.N, 1, m.MaxN)
	return p
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func init() {
	// Kernel implementations crossing the gob boundary.
	gob.Register(svm.Linear{})
	gob.Register(svm.RBF{})
}

// Save writes the model to path with encoding/gob.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(m); err != nil {
		f.Close()
		return fmt.Errorf("tuner: encoding model: %w", err)
	}
	return f.Close()
}

// LoadModel reads a model written by Save.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Model
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("tuner: decoding model: %w", err)
	}
	if m.MModel == nil || m.NModel == nil || m.Scaler == nil {
		return nil, errors.New("tuner: model file incomplete")
	}
	return &m, nil
}
