package tuner

import (
	"fmt"
	"math"

	"crossbfs/internal/xrand"
)

// Hyperparameter selection by k-fold cross-validation — the model
// selection step of the libsvm workflow the paper follows (§II-C cites
// the libsvm guide, whose standard recipe is a grid search over C and
// gamma validated by CV).

// CVResult records one grid point's cross-validated error.
type CVResult struct {
	Options TrainOptions
	// RMSE is the root-mean-square error of log-space predictions
	// (the models are trained on log M / log N).
	RMSE float64
}

// DefaultGrid returns the (C, gamma) grid searched by SelectModel:
// three decades of each around the defaults, epsilon fixed.
func DefaultGrid() []TrainOptions {
	var grid []TrainOptions
	for _, c := range []float64{4, 16, 64, 256} {
		for _, gamma := range []float64{0.25, 1, 4} {
			grid = append(grid, TrainOptions{C: c, Gamma: gamma, Epsilon: 0.05})
		}
	}
	return grid
}

// CrossValidate estimates the out-of-sample log-space RMSE of one
// hyperparameter setting with k-fold CV over the labelled samples.
// The fold assignment is deterministic in seed.
func CrossValidate(samples []Labeled, opts TrainOptions, k int, seed uint64) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("tuner: need k >= 2 folds, got %d", k)
	}
	if len(samples) < 2*k {
		return 0, fmt.Errorf("tuner: %d samples too few for %d-fold CV", len(samples), k)
	}
	// Shuffled fold assignment.
	rng := xrand.New(seed ^ 0xcf01d5)
	perm := rng.Perm(len(samples))

	var sumSq float64
	var count int
	for fold := 0; fold < k; fold++ {
		var train, test []Labeled
		for i, idx := range perm {
			if i%k == fold {
				test = append(test, samples[idx])
			} else {
				train = append(train, samples[idx])
			}
		}
		model, err := Train(train, opts)
		if err != nil {
			return 0, fmt.Errorf("tuner: CV fold %d: %w", fold, err)
		}
		for _, s := range test {
			p := model.Predict(s.Sample)
			dM := math.Log(p.M) - math.Log(s.Best.M)
			dN := math.Log(p.N) - math.Log(s.Best.N)
			sumSq += dM*dM + dN*dN
			count += 2
		}
	}
	return math.Sqrt(sumSq / float64(count)), nil
}

// SelectModel grid-searches hyperparameters by k-fold CV, then trains
// the final model on all samples with the winning setting. It returns
// the model, the winning grid point, and every grid point's score.
func SelectModel(samples []Labeled, grid []TrainOptions, k int, seed uint64) (*Model, CVResult, []CVResult, error) {
	if len(grid) == 0 {
		grid = DefaultGrid()
	}
	results := make([]CVResult, 0, len(grid))
	best := CVResult{RMSE: math.Inf(1)}
	for _, opts := range grid {
		rmse, err := CrossValidate(samples, opts, k, seed)
		if err != nil {
			return nil, CVResult{}, nil, err
		}
		r := CVResult{Options: opts, RMSE: rmse}
		results = append(results, r)
		if rmse < best.RMSE {
			best = r
		}
	}
	model, err := Train(samples, best.Options)
	if err != nil {
		return nil, CVResult{}, nil, err
	}
	return model, best, results, nil
}
