package tuner

import (
	"encoding/json"
	"fmt"
	"os"
)

// Corpus persistence: labelling a corpus costs graph generation and
// traces; the labelled samples themselves are tiny. Saving them as
// JSON lets hyperparameter sweeps and retraining reuse one labelling
// pass (and makes the training set inspectable).

// SaveCorpus writes labelled samples as JSON to path.
func SaveCorpus(samples []Labeled, path string) error {
	if len(samples) == 0 {
		return fmt.Errorf("tuner: refusing to save empty corpus")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(samples); err != nil {
		f.Close()
		return fmt.Errorf("tuner: encoding corpus: %w", err)
	}
	return f.Close()
}

// LoadCorpus reads samples written by SaveCorpus.
func LoadCorpus(path string) ([]Labeled, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var samples []Labeled
	if err := json.NewDecoder(f).Decode(&samples); err != nil {
		return nil, fmt.Errorf("tuner: decoding corpus: %w", err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("tuner: corpus file %s is empty", path)
	}
	for i, s := range samples {
		if s.Best.M <= 0 || s.Best.N <= 0 {
			return nil, fmt.Errorf("tuner: corpus sample %d has invalid label %v", i, s.Best)
		}
	}
	return samples, nil
}
