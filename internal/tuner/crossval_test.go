package tuner

import (
	"math"
	"testing"

	"crossbfs/internal/xrand"
)

// syntheticCorpus builds samples whose best M is a smooth function of
// the features, so CV scores are meaningful.
func syntheticCorpus(n int, noise float64, seed uint64) []Labeled {
	rng := xrand.New(seed)
	out := make([]Labeled, n)
	for i := range out {
		v := math.Pow(2, 10+6*rng.Float64())
		e := v * (8 + 24*rng.Float64())
		bw := 30 + 160*rng.Float64()
		m := 5 + bw/4 + noise*rng.NormFloat64()
		if m < 1 {
			m = 1
		}
		out[i] = Labeled{
			Sample: Sample{
				Graph: GraphInfo{NumVertices: v, NumEdges: e, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
				TD:    ArchInfo{PeakGflops: 256, L1KB: 32, BandwidthGBs: bw},
				BU:    ArchInfo{PeakGflops: 3950, L1KB: 64, BandwidthGBs: 188},
			},
			Best: SwitchPoint{M: m, N: m * 1.5},
		}
	}
	return out
}

func TestCrossValidateScoresFinite(t *testing.T) {
	samples := syntheticCorpus(40, 0.5, 1)
	rmse, err := CrossValidate(samples, TrainOptions{C: 64, Gamma: 1, Epsilon: 0.05}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rmse <= 0 || math.IsInf(rmse, 0) || math.IsNaN(rmse) {
		t.Errorf("RMSE = %g", rmse)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	samples := syntheticCorpus(30, 0.3, 2)
	a, err := CrossValidate(samples, TrainOptions{C: 16, Gamma: 1, Epsilon: 0.05}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(samples, TrainOptions{C: 16, Gamma: 1, Epsilon: 0.05}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("CV not deterministic: %g vs %g", a, b)
	}
}

func TestCrossValidateInputChecks(t *testing.T) {
	samples := syntheticCorpus(10, 0.3, 3)
	if _, err := CrossValidate(samples, TrainOptions{}, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(samples[:3], TrainOptions{}, 4, 1); err == nil {
		t.Error("too-few samples accepted")
	}
}

func TestSelectModelPicksReasonableGridPoint(t *testing.T) {
	samples := syntheticCorpus(48, 0.4, 4)
	model, best, results, err := SelectModel(samples, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("nil model")
	}
	if len(results) != len(DefaultGrid()) {
		t.Errorf("%d grid results, want %d", len(results), len(DefaultGrid()))
	}
	// The winner must have the minimum RMSE of the grid.
	for _, r := range results {
		if r.RMSE < best.RMSE {
			t.Errorf("winner RMSE %g beaten by grid point %g", best.RMSE, r.RMSE)
		}
	}
	// The selected model should fit training data reasonably: within
	// a factor 2 on most samples.
	bad := 0
	for _, s := range samples {
		p := model.Predict(s.Sample)
		if p.M > s.Best.M*2 || p.M < s.Best.M/2 {
			bad++
		}
	}
	if bad > len(samples)/4 {
		t.Errorf("%d/%d training predictions off by more than 2x", bad, len(samples))
	}
}

func TestSelectModelBeatsWorstGridPoint(t *testing.T) {
	// CV model selection must not pick a grid point that is clearly
	// dominated: the chosen RMSE should be at most the median of the
	// grid's RMSEs.
	samples := syntheticCorpus(48, 0.4, 5)
	_, best, results, err := SelectModel(samples, nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	for _, r := range results {
		if r.RMSE > best.RMSE {
			worse++
		}
	}
	if worse < len(results)/2 {
		t.Errorf("selected point beats only %d/%d grid points", worse, len(results))
	}
}
