package tuner

import (
	"errors"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/xrand"
)

// StrategyTimes compares the four switching-point selection strategies
// of the paper's Fig. 8 on one traversal: pick randomly, take the
// average over all candidates, predict with the regression model, or
// search exhaustively (the theoretical best). Worst anchors the
// speedup axis, as in the figure.
type StrategyTimes struct {
	Random     float64
	Average    float64
	Regression float64
	Exhaustive float64
	Worst      float64
	// Predicted is the switching point the model chose.
	Predicted SwitchPoint
}

// SpeedupOverWorst returns each strategy's speedup relative to the
// worst candidate, the paper's vertical axis in Fig. 8.
func (s StrategyTimes) SpeedupOverWorst() (random, average, regression, exhaustive float64) {
	return s.Worst / s.Random, s.Worst / s.Average, s.Worst / s.Regression, s.Worst / s.Exhaustive
}

// RegressionQuality returns exhaustive/regression performance — the
// paper reports >= 95% with 140 samples.
func (s StrategyTimes) RegressionQuality() float64 {
	if s.Regression == 0 {
		return 0
	}
	return s.Exhaustive / s.Regression
}

// CompareStrategies prices all four strategies on one traversal and
// architecture pair.
func CompareStrategies(tr *bfs.Trace, td, bu archsim.Arch, link archsim.Link,
	candidates []SwitchPoint, model *Model, gi GraphInfo, rng *xrand.Rand) (StrategyTimes, error) {

	if model == nil {
		return StrategyTimes{}, errors.New("tuner: nil model")
	}
	eval, err := Evaluate(tr, td, bu, link, candidates)
	if err != nil {
		return StrategyTimes{}, err
	}
	_, bestTime := eval.Best()
	_, worstTime := eval.Worst()

	predicted := model.Predict(Sample{Graph: gi, TD: ArchInfoOf(td), BU: ArchInfoOf(bu)})

	return StrategyTimes{
		Random:     eval.Times[rng.Intn(len(eval.Times))],
		Average:    eval.MeanTime(),
		Regression: SwitchTime(tr, td, bu, link, predicted),
		Exhaustive: bestTime,
		Worst:      worstTime,
		Predicted:  predicted,
	}, nil
}
