package tuner

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCorpusSaveLoad(t *testing.T) {
	samples := []Labeled{
		{
			Sample: Sample{
				Graph: GraphInfo{NumVertices: 1024, NumEdges: 16384, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
				TD:    ArchInfo{PeakGflops: 256, L1KB: 32, BandwidthGBs: 34},
				BU:    ArchInfo{PeakGflops: 3950, L1KB: 64, BandwidthGBs: 188},
			},
			Best: SwitchPoint{M: 17.5, N: 12.25},
		},
		{
			Sample: Sample{Graph: GraphInfo{NumVertices: 2048, NumEdges: 32768}},
			Best:   SwitchPoint{M: 30, N: 8},
		},
	}
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := SaveCorpus(samples, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d samples", len(loaded))
	}
	if loaded[0] != samples[0] || loaded[1] != samples[1] {
		t.Errorf("round trip changed samples:\n%+v\nvs\n%+v", loaded, samples)
	}
}

func TestSaveCorpusEmpty(t *testing.T) {
	if err := SaveCorpus(nil, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("empty corpus saved")
	}
}

func TestLoadCorpusErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCorpus(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(empty); err == nil {
		t.Error("empty corpus file accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`[{"Best":{"M":0,"N":1}}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(invalid); err == nil {
		t.Error("non-positive label accepted")
	}
}
