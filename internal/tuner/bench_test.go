package tuner

import (
	"sync"
	"testing"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/rmat"
)

var (
	benchOnce  sync.Once
	benchTrace *bfs.Trace
	benchErr   error
)

func tracedGraph(b *testing.B) *bfs.Trace {
	b.Helper()
	benchOnce.Do(func() {
		g, err := rmat.Generate(rmat.DefaultParams(14, 16))
		if err != nil {
			benchErr = err
			return
		}
		var src int32
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(int32(v)) > 0 {
				src = int32(v)
				break
			}
		}
		benchTrace, benchErr = bfs.TraceFrom(g, src)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTrace
}

// BenchmarkEvaluate1000 is the exhaustive search over the paper's
// 1000-candidate set — the operation that replay makes cheap enough
// to label a whole training corpus.
func BenchmarkEvaluate1000(b *testing.B) {
	tr := tracedGraph(b)
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	link := archsim.PCIe()
	cands := DefaultCandidates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(tr, cpu, gpu, link, cands); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabelBest(b *testing.B) {
	tr := tracedGraph(b)
	cpu := archsim.SandyBridge()
	link := archsim.PCIe()
	cands := CandidateGrid(16, 10, 300, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LabelBest(tr, cpu, cpu, link, cands); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	samples := []Labeled{
		{Sample: Sample{Graph: GraphInfo{NumVertices: 1 << 12, NumEdges: 1 << 16}}, Best: SwitchPoint{M: 10, N: 10}},
		{Sample: Sample{Graph: GraphInfo{NumVertices: 1 << 13, NumEdges: 1 << 17}}, Best: SwitchPoint{M: 20, N: 15}},
		{Sample: Sample{Graph: GraphInfo{NumVertices: 1 << 14, NumEdges: 1 << 18}}, Best: SwitchPoint{M: 40, N: 25}},
	}
	model, err := Train(samples, TrainOptions{})
	if err != nil {
		b.Fatal(err)
	}
	probe := samples[1].Sample
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(probe)
	}
}
