package tuner

import (
	"math"
	"path/filepath"
	"testing"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/rmat"
	"crossbfs/internal/xrand"
)

func TestSampleVectorLayout(t *testing.T) {
	s := Sample{
		Graph: GraphInfo{NumVertices: 32e6, NumEdges: 256e6, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		TD:    ArchInfo{PeakGflops: 512, L1KB: 512, BandwidthGBs: 100},
		BU:    ArchInfo{PeakGflops: 1024, L1KB: 768, BandwidthGBs: 128},
	}
	v := s.Vector()
	if len(v) != NumFeatures {
		t.Fatalf("vector length %d, want %d", len(v), NumFeatures)
	}
	// The paper's §III-D worked example orders features exactly so:
	// (32, 256, 0.57, 0.19, 0.19, 0.05, 512, 512, 100, 1024, 768, 128).
	want := []float64{32e6, 256e6, 0.57, 0.19, 0.19, 0.05, 512, 512, 100, 1024, 768, 128}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("feature %d = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestArchInfoOf(t *testing.T) {
	gpu := archsim.KeplerK20x()
	ai := ArchInfoOf(gpu)
	if ai.PeakGflops != gpu.PeakSPGflops || ai.L1KB != gpu.L1KB || ai.BandwidthGBs != gpu.MeasuredBW {
		t.Errorf("ArchInfoOf = %+v", ai)
	}
}

func TestCandidateGrid(t *testing.T) {
	grid := CandidateGrid(40, 25, 300, 300)
	if len(grid) != 1000 {
		t.Fatalf("grid size %d, want 1000 (the paper's candidate count)", len(grid))
	}
	for _, p := range grid {
		if p.M < 1 || p.M > 300.001 || p.N < 1 || p.N > 300.001 {
			t.Fatalf("candidate %v out of [1,300] range", p)
		}
	}
	// Both endpoints present.
	first, last := grid[0], grid[len(grid)-1]
	if first.M != 1 || first.N != 1 {
		t.Errorf("first candidate %v, want (1,1)", first)
	}
	if math.Abs(last.M-300) > 0.01 || math.Abs(last.N-300) > 0.01 {
		t.Errorf("last candidate %v, want (300,300)", last)
	}
}

func TestCandidateGridDegenerate(t *testing.T) {
	grid := CandidateGrid(1, 1, 300, 300)
	if len(grid) != 1 || grid[0].M != 1 || grid[0].N != 1 {
		t.Errorf("degenerate grid = %v", grid)
	}
}

func testTrace(t *testing.T, scale, ef int, seed uint64) (*bfs.Trace, GraphInfo) {
	t.Helper()
	p := rmat.DefaultParams(scale, ef)
	p.Seed = seed
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var src int32 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			src = int32(v)
			break
		}
	}
	if src < 0 {
		t.Fatal("no edges")
	}
	tr, err := bfs.TraceFrom(g, src)
	if err != nil {
		t.Fatal(err)
	}
	return tr, GraphInfoFor(p, g)
}

func TestEvaluateBounds(t *testing.T) {
	tr, _ := testTrace(t, 12, 16, 1)
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	cands := CandidateGrid(10, 10, 300, 300)
	e, err := Evaluate(tr, cpu, gpu, archsim.PCIe(), cands)
	if err != nil {
		t.Fatal(err)
	}
	_, best := e.Best()
	_, worst := e.Worst()
	if best > worst {
		t.Fatalf("best %g > worst %g", best, worst)
	}
	for i, tt := range e.Times {
		if tt < best || tt > worst {
			t.Errorf("time[%d]=%g outside [best, worst]", i, tt)
		}
	}
	mean := e.MeanTime()
	if mean < best || mean > worst {
		t.Errorf("mean %g outside [best, worst]", mean)
	}
}

func TestEvaluateEmptyCandidates(t *testing.T) {
	tr, _ := testTrace(t, 8, 8, 1)
	if _, err := Evaluate(tr, archsim.SandyBridge(), archsim.SandyBridge(), archsim.PCIe(), nil); err == nil {
		t.Error("empty candidate set accepted")
	}
}

func TestSwitchPointMatters(t *testing.T) {
	// The premise of the whole paper: candidate choice changes
	// cross-architecture runtime substantially.
	tr, _ := testTrace(t, 15, 16, 2)
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	e, err := Evaluate(tr, cpu, gpu, archsim.PCIe(), DefaultCandidates())
	if err != nil {
		t.Fatal(err)
	}
	_, best := e.Best()
	_, worst := e.Worst()
	if worst < 1.5*best {
		t.Errorf("best-to-worst spread only %.2fx; switching point has no effect", worst/best)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Error("empty corpus accepted")
	}
	bad := []Labeled{
		{Sample: Sample{}, Best: SwitchPoint{M: 0, N: 1}},
		{Sample: Sample{}, Best: SwitchPoint{M: 1, N: 1}},
	}
	if _, err := Train(bad, TrainOptions{}); err == nil {
		t.Error("non-positive label accepted")
	}
}

func TestTrainPredictRoundTrip(t *testing.T) {
	// Synthetic corpus where best M is a simple function of features:
	// the model must recover it approximately on training points.
	var samples []Labeled
	for i := 0; i < 40; i++ {
		v := float64(1<<12) * float64(1+i%4)
		e := v * 16
		bw := 30 + float64(i%5)*40
		m := 10 + bw // monotone in bandwidth
		samples = append(samples, Labeled{
			Sample: Sample{
				Graph: GraphInfo{NumVertices: v, NumEdges: e, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
				TD:    ArchInfo{PeakGflops: 256, L1KB: 32, BandwidthGBs: bw},
				BU:    ArchInfo{PeakGflops: 3950, L1KB: 64, BandwidthGBs: 188},
			},
			Best: SwitchPoint{M: m, N: 2 * m},
		})
	}
	model, err := Train(samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:8] {
		p := model.Predict(s.Sample)
		if p.M < s.Best.M/2 || p.M > s.Best.M*2 {
			t.Errorf("predicted M=%.1f for label %.1f (off > 2x)", p.M, s.Best.M)
		}
		if p.N < s.Best.N/2 || p.N > s.Best.N*2 {
			t.Errorf("predicted N=%.1f for label %.1f (off > 2x)", p.N, s.Best.N)
		}
	}
}

func TestPredictClampsToRange(t *testing.T) {
	samples := []Labeled{
		{Sample: Sample{Graph: GraphInfo{NumVertices: 1000, NumEdges: 8000}}, Best: SwitchPoint{M: 10, N: 10}},
		{Sample: Sample{Graph: GraphInfo{NumVertices: 2000, NumEdges: 16000}}, Best: SwitchPoint{M: 20, N: 20}},
		{Sample: Sample{Graph: GraphInfo{NumVertices: 4000, NumEdges: 32000}}, Best: SwitchPoint{M: 40, N: 40}},
	}
	model, err := Train(samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wild extrapolation input: prediction must stay in [1, maxLabel].
	p := model.Predict(Sample{Graph: GraphInfo{NumVertices: 1e12, NumEdges: 1e13}})
	if p.M < 1 || p.M > 40 || p.N < 1 || p.N > 40 {
		t.Errorf("unclamped prediction %v", p)
	}
}

func TestModelSaveLoad(t *testing.T) {
	samples := []Labeled{
		{Sample: Sample{Graph: GraphInfo{NumVertices: 1000, NumEdges: 8000, A: 0.5}}, Best: SwitchPoint{M: 10, N: 30}},
		{Sample: Sample{Graph: GraphInfo{NumVertices: 2000, NumEdges: 16000, A: 0.6}}, Best: SwitchPoint{M: 20, N: 60}},
		{Sample: Sample{Graph: GraphInfo{NumVertices: 4000, NumEdges: 32000, A: 0.7}}, Best: SwitchPoint{M: 40, N: 120}},
	}
	model, err := Train(samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	probe := samples[1].Sample
	a, b := model.Predict(probe), loaded.Predict(probe)
	if math.Abs(a.M-b.M) > 1e-9 || math.Abs(a.N-b.N) > 1e-9 {
		t.Errorf("loaded model predicts %v, original %v", b, a)
	}
}

func TestLoadModelMissing(t *testing.T) {
	if _, err := LoadModel(filepath.Join(t.TempDir(), "none.gob")); err == nil {
		t.Error("missing model file accepted")
	}
}

func TestBuildCorpusSmall(t *testing.T) {
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	spec := CorpusSpec{
		Scales:          []int{9},
		EdgeFactors:     []int{8},
		ProbSets:        [][4]float64{{0.57, 0.19, 0.19, 0.05}},
		Seeds:           []uint64{1},
		SourcesPerGraph: 2,
		ArchPairs:       [][2]archsim.Arch{{cpu, cpu}, {cpu, gpu}},
		Link:            archsim.PCIe(),
		Candidates:      CandidateGrid(8, 8, 300, 300),
	}
	var calls int
	samples, err := BuildCorpus(spec, func(done, total int) {
		calls++
		if total != spec.NumSamples() {
			t.Errorf("progress total %d, want %d", total, spec.NumSamples())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != spec.NumSamples() {
		t.Fatalf("corpus size %d, want %d", len(samples), spec.NumSamples())
	}
	if calls != len(samples) {
		t.Errorf("progress called %d times for %d samples", calls, len(samples))
	}
	for i, s := range samples {
		if s.Best.M < 1 || s.Best.N < 1 {
			t.Errorf("sample %d has invalid label %v", i, s.Best)
		}
		if s.Graph.NumVertices != 512 {
			t.Errorf("sample %d graph info wrong: %+v", i, s.Graph)
		}
	}
}

func TestBuildCorpusRejectsEmptySpec(t *testing.T) {
	if _, err := BuildCorpus(CorpusSpec{}, nil); err == nil {
		t.Error("empty spec accepted")
	}
}

// TestEndToEndRegressionQuality is the paper's headline claim scaled
// down: train on a small corpus, predict switching points for a graph
// configuration not in the corpus, and verify the regression strategy
// lands near the exhaustive optimum and far from the worst.
func TestEndToEndRegressionQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build in -short mode")
	}
	cpu, gpu, mic := archsim.SandyBridge(), archsim.KeplerK20x(), archsim.KnightsCorner()
	spec := CorpusSpec{
		Scales:          []int{11, 12, 13},
		EdgeFactors:     []int{8, 16},
		ProbSets:        [][4]float64{{0.57, 0.19, 0.19, 0.05}},
		Seeds:           []uint64{1},
		SourcesPerGraph: 2,
		ArchPairs: [][2]archsim.Arch{
			{cpu, cpu}, {gpu, gpu}, {mic, mic}, {cpu, gpu}, {cpu, mic}, {gpu, cpu},
		},
		Link:       archsim.PCIe(),
		Candidates: CandidateGrid(16, 12, 300, 300),
	}
	samples, err := BuildCorpus(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Train(samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Held-out configuration: scale and edge factor between and beyond
	// training points.
	tr, gi := testTrace(t, 12, 12, 99)
	rng := xrand.New(42)
	for _, pair := range [][2]archsim.Arch{{cpu, gpu}, {gpu, gpu}} {
		st, err := CompareStrategies(tr, pair[0], pair[1], spec.Link, spec.Candidates, model, gi, rng)
		if err != nil {
			t.Fatal(err)
		}
		if st.Exhaustive > st.Regression {
			t.Errorf("exhaustive %g slower than regression %g: search is broken", st.Exhaustive, st.Regression)
		}
		q := st.RegressionQuality()
		if q < 0.5 {
			t.Errorf("%s/%s: regression reaches only %.0f%% of exhaustive (reg %g best %g worst %g)",
				pair[0].Kind, pair[1].Kind, q*100, st.Regression, st.Exhaustive, st.Worst)
		}
		if st.Regression > st.Average {
			t.Errorf("%s/%s: regression %g worse than average-candidate %g",
				pair[0].Kind, pair[1].Kind, st.Regression, st.Average)
		}
	}
}
