package tuner

import (
	"errors"
	"math"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
)

// Evaluation holds the exhaustive-search outcome over a candidate set
// for one traversal — the data behind the paper's Fig. 8 bars.
type Evaluation struct {
	Candidates []SwitchPoint
	Times      []float64 // simulated seconds per candidate
	BestIdx    int
	WorstIdx   int
}

// Best returns the optimal switching point and its time.
func (e *Evaluation) Best() (SwitchPoint, float64) {
	return e.Candidates[e.BestIdx], e.Times[e.BestIdx]
}

// Worst returns the most harmful switching point and its time.
func (e *Evaluation) Worst() (SwitchPoint, float64) {
	return e.Candidates[e.WorstIdx], e.Times[e.WorstIdx]
}

// MeanTime returns the average time over all candidates (the paper's
// "Average" bar).
func (e *Evaluation) MeanTime() float64 {
	var s float64
	for _, t := range e.Times {
		s += t
	}
	return s / float64(len(e.Times))
}

// TimeOf prices one specific switching point with the evaluation's
// own plan builder semantics (used for the Regression bar).
func (e *Evaluation) TimeOf(p SwitchPoint, tr *bfs.Trace, td, bu archsim.Arch, link archsim.Link) float64 {
	return SwitchTime(tr, td, bu, link, p)
}

// SwitchTime prices one (M, N) on the two-architecture plan: the
// traversal the paper's training samples describe.
func SwitchTime(tr *bfs.Trace, td, bu archsim.Arch, link archsim.Link, p SwitchPoint) float64 {
	plan := core.TwoArchPlan{TDArch: td, BUArch: bu, M: p.M, N: p.N}
	return core.Simulate(tr, plan, link).Total
}

// Evaluate runs the exhaustive search (the paper's hybrid-oracle): it
// prices every candidate switching point against the trace. Because
// pricing replays the trace arithmetically, 1000 candidates cost
// milliseconds, not 1000 BFS executions.
func Evaluate(tr *bfs.Trace, td, bu archsim.Arch, link archsim.Link, candidates []SwitchPoint) (*Evaluation, error) {
	if len(candidates) == 0 {
		return nil, errors.New("tuner: no candidate switching points")
	}
	e := &Evaluation{
		Candidates: candidates,
		Times:      make([]float64, len(candidates)),
	}
	best, worst := math.Inf(1), math.Inf(-1)
	for i, p := range candidates {
		t := SwitchTime(tr, td, bu, link, p)
		e.Times[i] = t
		if t < best {
			best, e.BestIdx = t, i
		}
		if t > worst {
			worst, e.WorstIdx = t, i
		}
	}
	return e, nil
}

// LabelBest returns the training label for one traversal on one
// architecture pair (Fig. 6, step 1). The time landscape over (M, N)
// has wide near-optimal plateaus, so the raw argmin jumps around with
// trace noise; the label is instead the log-space centroid of every
// candidate within 1% of the optimum, which the centroid itself
// (near-)achieves and which varies smoothly with the features.
func LabelBest(tr *bfs.Trace, td, bu archsim.Arch, link archsim.Link, candidates []SwitchPoint) (SwitchPoint, error) {
	e, err := Evaluate(tr, td, bu, link, candidates)
	if err != nil {
		return SwitchPoint{}, err
	}
	_, best := e.Best()
	var sumLogM, sumLogN float64
	count := 0
	for i, t := range e.Times {
		if t <= best*1.01 {
			sumLogM += math.Log(e.Candidates[i].M)
			sumLogN += math.Log(e.Candidates[i].N)
			count++
		}
	}
	return SwitchPoint{
		M: math.Exp(sumLogM / float64(count)),
		N: math.Exp(sumLogN / float64(count)),
	}, nil
}
