// Package tuner implements the paper's adaptive switching-point
// method (§III): label the best (M, N) per (graph, architecture pair)
// by exhaustive search over the simulator (the off-line half of
// Fig. 6), encode samples as the 12-feature vectors of Fig. 7, train
// an SVM regression model, and predict switching points for new
// traversals at runtime (the on-line half).
package tuner

import (
	"fmt"
	"math"

	"crossbfs/internal/archsim"
	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
)

// GraphInfo is the graph half of a training sample (Fig. 7: V, E, A,
// B, C, D).
type GraphInfo struct {
	NumVertices float64
	NumEdges    float64 // directed adjacency entries of the built CSR
	A, B, C, D  float64 // Kronecker construction parameters
}

// GraphInfoFor derives the feature block from generation parameters
// and the built graph.
func GraphInfoFor(p rmat.Params, g *graph.CSR) GraphInfo {
	return GraphInfo{
		NumVertices: float64(g.NumVertices()),
		NumEdges:    float64(g.NumEdges()),
		A:           p.A, B: p.B, C: p.C, D: p.D,
	}
}

// ArchInfo is one architecture block of a training sample (Fig. 7:
// peak performance P, L1 cache size, memory bandwidth B).
type ArchInfo struct {
	PeakGflops   float64
	L1KB         float64
	BandwidthGBs float64
}

// ArchInfoOf extracts the paper's three architecture features.
func ArchInfoOf(a archsim.Arch) ArchInfo {
	return ArchInfo{
		PeakGflops:   a.PeakSPGflops,
		L1KB:         a.L1KB,
		BandwidthGBs: a.MeasuredBW,
	}
}

// Sample is one (graph, top-down architecture, bottom-up architecture)
// observation, the unit of Fig. 7.
type Sample struct {
	Graph GraphInfo
	TD    ArchInfo // platform running top-down steps
	BU    ArchInfo // platform running bottom-up steps
}

// NumFeatures is the width of the encoded sample vector.
const NumFeatures = 12

// Vector encodes the sample in the paper's Fig. 7 layout:
// [V, E, A, B, C, D, P1, L1, B1, P2, L2, B2].
func (s Sample) Vector() []float64 {
	return []float64{
		s.Graph.NumVertices, s.Graph.NumEdges,
		s.Graph.A, s.Graph.B, s.Graph.C, s.Graph.D,
		s.TD.PeakGflops, s.TD.L1KB, s.TD.BandwidthGBs,
		s.BU.PeakGflops, s.BU.L1KB, s.BU.BandwidthGBs,
	}
}

// SwitchPoint is a candidate (M, N) pair for the Fig. 4 rule.
type SwitchPoint struct {
	M, N float64
}

func (p SwitchPoint) String() string { return fmt.Sprintf("(M=%g, N=%g)", p.M, p.N) }

// Labeled is a sample with its exhaustively determined best switching
// point — one row of the paper's training set.
type Labeled struct {
	Sample
	Best SwitchPoint
}

// CandidateGrid enumerates nM x nN switching points with M in
// [1, maxM] and N in [1, maxN], geometrically spaced — the paper
// searches M in [1, 300] (Table III) and picks from 1000 candidates
// (Fig. 8), which a 40x25 grid reproduces. Geometric spacing matches
// the threshold's 1/M semantics: what matters is the ratio.
func CandidateGrid(nM, nN int, maxM, maxN float64) []SwitchPoint {
	ms := geomSpace(1, maxM, nM)
	ns := geomSpace(1, maxN, nN)
	grid := make([]SwitchPoint, 0, len(ms)*len(ns)) //lint:narrow-ok candidate grids are ~40x25; product stays far below 2^31
	for _, m := range ms {
		for _, n := range ns {
			grid = append(grid, SwitchPoint{M: m, N: n})
		}
	}
	return grid
}

// DefaultCandidates is the 1000-point grid used by the Fig. 8
// experiments (40 M values x 25 N values over [1, 300] x [1, 300]).
func DefaultCandidates() []SwitchPoint { return CandidateGrid(40, 25, 300, 300) }

func geomSpace(lo, hi float64, n int) []float64 {
	if n <= 1 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
