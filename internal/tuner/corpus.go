package tuner

import (
	"fmt"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/rmat"
	"crossbfs/internal/xrand"
)

// CorpusSpec describes the training corpus of Fig. 6: a sweep of
// graphs crossed with architecture pairs, each labelled by exhaustive
// search. The paper uses 140 samples; the default spec produces a
// comparable count at laptop scale.
type CorpusSpec struct {
	Scales          []int
	EdgeFactors     []int
	ProbSets        [][4]float64 // Kronecker (A, B, C, D) variants
	Seeds           []uint64
	SourcesPerGraph int
	ArchPairs       [][2]archsim.Arch
	Link            archsim.Link
	Candidates      []SwitchPoint
}

// DefaultCorpusSpec returns a ~144-sample corpus (2 scales x 2 edge
// factors x 2 probability sets x 9 architecture pairs x 1 seed x 2
// sources), sized to build in seconds on one machine.
func DefaultCorpusSpec() CorpusSpec {
	cpu, gpu, mic := archsim.SandyBridge(), archsim.KeplerK20x(), archsim.KnightsCorner()
	var pairs [][2]archsim.Arch
	for _, td := range []archsim.Arch{cpu, gpu, mic} {
		for _, bu := range []archsim.Arch{cpu, gpu, mic} {
			pairs = append(pairs, [2]archsim.Arch{td, bu})
		}
	}
	return CorpusSpec{
		Scales:      []int{13, 14},
		EdgeFactors: []int{8, 16},
		ProbSets: [][4]float64{
			{0.57, 0.19, 0.19, 0.05}, // the paper's Graph 500 setting
			{0.45, 0.22, 0.22, 0.11}, // milder skew
		},
		Seeds:           []uint64{1},
		SourcesPerGraph: 2,
		ArchPairs:       pairs,
		Link:            archsim.PCIe(),
		Candidates:      DefaultCandidates(),
	}
}

// NumSamples returns the corpus size the spec will produce.
func (s CorpusSpec) NumSamples() int {
	//lint:narrow-ok corpus dimensions are config-sized (tens), product stays far below 2^31
	return len(s.Scales) * len(s.EdgeFactors) * len(s.ProbSets) * len(s.Seeds) *
		s.SourcesPerGraph * len(s.ArchPairs)
}

// BuildCorpus generates every graph in the spec, traces it from the
// requested number of sources, and labels the best switching point for
// every architecture pair by exhaustive search. Each graph is
// generated and traced once; labelling replays the trace, so the cost
// is dominated by graph construction, not by the 1000-point search.
// progress, if non-nil, is called after each labelled sample.
func BuildCorpus(spec CorpusSpec, progress func(done, total int)) ([]Labeled, error) {
	if spec.SourcesPerGraph <= 0 {
		spec.SourcesPerGraph = 1
	}
	if len(spec.Candidates) == 0 {
		return nil, fmt.Errorf("tuner: corpus spec has no candidate switching points")
	}
	if len(spec.ArchPairs) == 0 {
		return nil, fmt.Errorf("tuner: corpus spec has no architecture pairs")
	}
	total := spec.NumSamples()
	samples := make([]Labeled, 0, total)
	done := 0

	// One pooled workspace serves every traversal in the sweep: the
	// M/N labelling crosses scales, and the workspace resizes in place
	// instead of reallocating the working set per (graph, source).
	ws := bfs.DefaultPool.Get(0)
	defer bfs.DefaultPool.Put(ws)

	for _, scale := range spec.Scales {
		for _, ef := range spec.EdgeFactors {
			for _, probs := range spec.ProbSets {
				for _, seed := range spec.Seeds {
					p := rmat.Params{
						Scale: scale, EdgeFactor: ef,
						A: probs[0], B: probs[1], C: probs[2], D: probs[3],
						Seed: seed, Permute: true,
					}
					g, err := rmat.Generate(p)
					if err != nil {
						return nil, fmt.Errorf("tuner: generating scale-%d graph: %w", scale, err)
					}
					gi := GraphInfoFor(p, g)
					rng := xrand.New(seed ^ 0x5bf03635)
					for s := 0; s < spec.SourcesPerGraph; s++ {
						src, ok := pickSource(g, rng)
						if !ok {
							continue
						}
						tr, err := bfs.TraceFromWith(g, src, ws)
						if err != nil {
							return nil, fmt.Errorf("tuner: tracing scale-%d graph: %w", scale, err)
						}
						for _, pair := range spec.ArchPairs {
							best, err := LabelBest(tr, pair[0], pair[1], spec.Link, spec.Candidates)
							if err != nil {
								return nil, err
							}
							samples = append(samples, Labeled{
								Sample: Sample{Graph: gi, TD: ArchInfoOf(pair[0]), BU: ArchInfoOf(pair[1])},
								Best:   best,
							})
							done++
							if progress != nil {
								progress(done, total)
							}
						}
					}
				}
			}
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("tuner: corpus spec produced no samples")
	}
	return samples, nil
}

// pickSource draws a random non-isolated vertex, the Graph 500
// sampling rule. Returns ok=false if the graph has no edges.
func pickSource(g interface {
	NumVertices() int
	Degree(int32) int64
}, rng *xrand.Rand) (int32, bool) {
	n := g.NumVertices()
	if n == 0 {
		return 0, false
	}
	for tries := 0; tries < 4*n; tries++ {
		v := int32(rng.Intn(n))
		if g.Degree(v) > 0 {
			return v, true
		}
	}
	return 0, false
}
