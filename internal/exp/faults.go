package exp

import (
	"context"
	"errors"
	"fmt"
	"io"

	"crossbfs/internal/archsim"
	"crossbfs/internal/core"
	"crossbfs/internal/fault"
)

// FaultToleranceRow records how the tuned cross-architecture plan
// degrades under one fault scenario: the priced total, the overhead
// relative to the clean run, and the recovery work (retries at the
// link layer, replans at the planner layer) that bought completion.
type FaultToleranceRow struct {
	Scenario string
	Total    float64 // seconds; 0 when Failed
	Overhead float64 // Total / clean Total; 0 when Failed
	Retries  int
	Replans  int
	Events   int  // fault-log entries
	Failed   bool // no surviving device could finish the traversal
}

// defaultFaultScenarios is the degradation ladder the experiment walks
// when no -faults spec is given: each rung exercises one level of the
// recovery machinery (retry, absorb slowdown, replan, fail typed).
func defaultFaultScenarios() []string {
	return []string{
		"transient:0.05",
		"transient:0.25",
		"slow:KeplerK20xx4",
		"crash:KeplerK20x@3",
		"crash:SandyBridge-8c@1;crash:KeplerK20x@1",
	}
}

// FaultTolerance prices the tuned CPUTD+GPUCB plan under a ladder of
// fault scenarios (or a single user-supplied spec). The trace is
// computed once — fault injection only changes how the simulator
// prices it — so every row answers "same traversal, degraded
// machine". ctx is checked between scenarios so a deadline set on the
// experiment driver cuts the sweep at a row boundary.
func FaultTolerance(ctx context.Context, cfg Config, spec string, seed uint64) ([]FaultToleranceRow, error) {
	cfg.setDefaults()
	_, tr, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	cross, err := tunedCross(tr, archsim.SandyBridge(), archsim.KeplerK20x(), cfg.Link)
	if err != nil {
		return nil, err
	}

	clean := core.Simulate(tr, cross, cfg.Link)
	rows := []FaultToleranceRow{{Scenario: "clean", Total: clean.Total, Overhead: 1}}

	specs := defaultFaultScenarios()
	if spec != "" {
		specs = []string{spec}
	}
	for _, s := range specs {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		sched, err := fault.Parse(s, seed)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s, err)
		}
		t, err := core.SimulateResilient(tr, cross, cfg.Link, core.ResilientOptions{Schedule: sched})
		if err != nil {
			var fe *fault.Error
			if !errors.As(err, &fe) {
				return nil, fmt.Errorf("scenario %q: %w", s, err)
			}
			row := FaultToleranceRow{Scenario: s, Failed: true}
			if t != nil {
				row.Retries, row.Replans, row.Events = t.Retries, t.Replans, len(t.Faults)
			}
			rows = append(rows, row)
			continue
		}
		rows = append(rows, FaultToleranceRow{
			Scenario: s,
			Total:    t.Total,
			Overhead: t.Total / clean.Total,
			Retries:  t.Retries,
			Replans:  t.Replans,
			Events:   len(t.Faults),
		})
	}
	return rows, nil
}

// RenderFaultTolerance prints the degradation ladder as a table.
func RenderFaultTolerance(w io.Writer, rows []FaultToleranceRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "scenario\ttotal\toverhead\tretries\treplans\tevents")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(tw, "%s\tFAILED\t-\t%d\t%d\t%d\n", r.Scenario, r.Retries, r.Replans, r.Events)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.6fs\t%.2fx\t%d\t%d\t%d\n", r.Scenario, r.Total, r.Overhead, r.Retries, r.Replans, r.Events)
	}
	return tw.Flush()
}

// FaultToleranceCSV writes the rows in machine-readable form.
func FaultToleranceCSV(w io.Writer, rows []FaultToleranceRow) error {
	if _, err := fmt.Fprintln(w, "scenario,total_s,overhead,retries,replans,events,failed"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%q,%.9f,%.4f,%d,%d,%d,%t\n",
			r.Scenario, r.Total, r.Overhead, r.Retries, r.Replans, r.Events, r.Failed); err != nil {
			return err
		}
	}
	return nil
}
