package exp

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps the fast tests fast; shape-sensitive tests use the
// default scale and skip under -short.
var smallCfg = Config{Scale: 12, EdgeFactor: 16, Seed: 1, NumRoots: 4}

func TestFrontierProfilesShape(t *testing.T) {
	profiles, err := FrontierProfiles([]int{11, 12}, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("%d profiles, want 2", len(profiles))
	}
	for _, p := range profiles {
		// Figs. 1-2's claim: small at first, peaks in the middle.
		if !p.PeaksInMiddle() {
			t.Errorf("SCALE %d: frontier does not peak in the middle", p.Scale)
		}
		if p.Steps[0].FrontierVertices != 1 {
			t.Errorf("SCALE %d: first frontier has %d vertices, want 1", p.Scale, p.Steps[0].FrontierVertices)
		}
	}
}

func TestDirectionComparisonShape(t *testing.T) {
	rows, err := DirectionComparison(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d levels", len(rows))
	}
	// Fig. 3's claim: top-down wins the first level, bottom-up wins
	// some middle level.
	if rows[0].TopDown >= rows[0].BottomUp {
		t.Errorf("level 1: top-down %g not faster than bottom-up %g", rows[0].TopDown, rows[0].BottomUp)
	}
	buWins := false
	for _, r := range rows[1 : len(rows)-1] {
		if r.BottomUp < r.TopDown {
			buWins = true
		}
	}
	if !buWins {
		t.Error("bottom-up never wins a middle level")
	}
}

func TestBestSwitchingPointsVary(t *testing.T) {
	rows, err := BestSwitchingPoints([]int{13, 14}, []int{16, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.BestM < 1 || r.BestM > 300 {
			t.Errorf("best M %g out of search range", r.BestM)
		}
	}
	// Table III's claim: the best switching point varies across graphs.
	allSame := true
	for _, r := range rows[1:] {
		if r.BestM != rows[0].BestM || r.BestN != rows[0].BestN {
			allSame = false
		}
	}
	if allSame {
		t.Error("best switching point identical for all graphs; Table III's premise lost")
	}
}

func TestStepByStepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale workload")
	}
	res, err := StepByStepOptimization(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) != 8 {
		t.Fatalf("%d approaches, want 8 (Table IV)", len(res.Timings))
	}
	byName := map[string]float64{}
	for _, timing := range res.Timings {
		byName[timing.Plan] = timing.Total
	}
	// Paper Table IV orderings.
	if byName["GPUCB"] >= byName["GPUTD"] || byName["GPUCB"] >= byName["GPUBU"] {
		t.Errorf("GPU combination not fastest on GPU: %v", byName)
	}
	if byName["CPUCB"] >= byName["CPUTD"] || byName["CPUCB"] >= byName["CPUBU"] {
		t.Errorf("CPU combination not fastest on CPU: %v", byName)
	}
	if byName["CPUTD+GPUCB"] >= byName["GPUCB"] || byName["CPUTD+GPUCB"] >= byName["CPUCB"] {
		t.Errorf("cross-architecture combination not fastest: %v", byName)
	}
}

func TestCrossSpeedupsPositive(t *testing.T) {
	rows, err := CrossSpeedups(smallCfg, [][2]int{{13, 16}, {14, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("SCALE %d: cross speedup %.2fx not above 1", r.Scale, r.Speedup)
		}
	}
}

func TestCombinationComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale workload")
	}
	rows, err := CombinationComparison(DefaultConfig(), [][2]int{{17, 16}, {17, 32}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Fig. 9: cross-architecture beats every single-architecture
		// combination; MIC is the slowest.
		if r.SpeedupOverMIC <= 1 || r.SpeedupOverCPU <= 1 || r.SpeedupOverGPU <= 1 {
			t.Errorf("%s: cross not fastest: %+v", r.Label, r)
		}
		if !(r.MIC < r.CPU && r.MIC < r.GPU) {
			t.Errorf("%s: MIC combination not slowest: %+v", r.Label, r)
		}
		if r.SpeedupOverMIC < r.SpeedupOverCPU || r.SpeedupOverMIC < r.SpeedupOverGPU {
			t.Errorf("%s: MIC speedup should dominate: %+v", r.Label, r)
		}
	}
}

func TestStrongScalingMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload")
	}
	// Strong scaling needs a work-dominated graph (the paper uses its
	// largest, SCALE 22); at tiny scales the per-core barrier cost
	// wins and adding cores legitimately hurts.
	rows, err := StrongScaling(Config{Scale: 18, EdgeFactor: 16, Seed: 1, NumRoots: 4})
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string][]float64{}
	for _, r := range rows {
		perf[r.Arch] = append(perf[r.Arch], r.GTEPS)
	}
	// Fig. 10a: performance grows with cores. Allow the curve to
	// flatten at the top (barrier costs and utilization saturate), but
	// no step may regress meaningfully and the full sweep must scale.
	for arch, series := range perf {
		for i := 1; i < len(series); i++ {
			if series[i] < 0.97*series[i-1] {
				t.Errorf("%s: GTEPS %v regresses at step %d", arch, series, i)
			}
		}
		if last, first := series[len(series)-1], series[0]; last < 1.5*first {
			t.Errorf("%s: strong scaling only %.2fx from min to max cores", arch, last/first)
		}
	}
}

func TestWeakScalingHolds(t *testing.T) {
	rows, err := WeakScaling(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string][]float64{}
	for _, r := range rows {
		perf[r.Arch] = append(perf[r.Arch], r.GTEPS)
	}
	// Fig. 10b: performance grows as cores and workload grow together.
	for arch, series := range perf {
		if series[len(series)-1] <= series[0] {
			t.Errorf("%s: weak scaling regressed: %v", arch, series)
		}
	}
}

func TestAveragePerformanceCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-graph workload")
	}
	cfg := DefaultConfig()
	cfg.NumRoots = 4
	rows, err := AveragePerformance(cfg, []int{16, 18})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	small, large := rows[0], rows[1]
	// Table VI: GPU wins the small size, CPU the large one; MIC last.
	if small.GPU <= small.CPU {
		t.Errorf("small size: GPU %.3f not above CPU %.3f", small.GPU, small.CPU)
	}
	if large.CPU <= large.GPU {
		t.Errorf("large size: CPU %.3f not above GPU %.3f", large.CPU, large.GPU)
	}
	for _, r := range rows {
		if r.MIC >= r.CPU || r.MIC >= r.GPU {
			t.Errorf("MIC not slowest at scale %d: %+v", r.Scale, r)
		}
	}
}

func TestExternalComparisons(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale workload")
	}
	rows, err := ExternalComparisons(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d comparison rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s: speedup %.2fx not above 1", r.Name, r.Speedup)
		}
	}
}

func TestStrategyComparisonSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus training")
	}
	model, err := TrainDefaultModel(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := StrategyComparison(smallCfg, model, []int{13}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Exhaustive > r.Regression || r.Exhaustive > r.Average || r.Exhaustive > r.Random {
		t.Errorf("exhaustive is not the lower bound: %+v", r.StrategyTimes)
	}
	if r.Worst < r.Random || r.Worst < r.Regression {
		t.Errorf("worst is not the upper bound: %+v", r.StrategyTimes)
	}
}

func TestRenderers(t *testing.T) {
	profiles, err := FrontierProfiles([]int{10}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFrontierProfiles(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|V|cq") {
		t.Error("frontier render missing header")
	}

	dirs, err := DirectionComparison(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderDirectionTimes(&buf, dirs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bottom-up") {
		t.Error("direction render missing header")
	}

	buf.Reset()
	if err := RenderBestM(&buf, []BestMRow{{Scale: 12, EdgeFactor: 8, BestM: 60, BestN: 10}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "60") {
		t.Error("best-M render missing value")
	}

	buf.Reset()
	if err := RenderCrossSpeedups(&buf, []CrossSpeedupRow{{Vertices: 4096, Edges: 65536, Speedup: 12}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12x") {
		t.Error("cross-speedup render missing value")
	}

	buf.Reset()
	if err := RenderScaling(&buf, []ScalingRow{{Arch: "CPU", Cores: 4, GTEPS: 1.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CPU") {
		t.Error("scaling render missing arch")
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.setDefaults()
	d := DefaultConfig()
	if cfg != d {
		t.Errorf("zero config defaults = %+v, want %+v", cfg, d)
	}
	// Partial overrides survive.
	cfg = Config{Scale: 10}
	cfg.setDefaults()
	if cfg.Scale != 10 || cfg.EdgeFactor != d.EdgeFactor {
		t.Errorf("partial override mangled: %+v", cfg)
	}
}
