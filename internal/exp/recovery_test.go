package exp

import (
	"context"
	"strings"
	"testing"
)

func TestRecoveryLadder(t *testing.T) {
	cfg := Config{Scale: 11, EdgeFactor: 8, Seed: 1, NumRoots: 2}
	rows, err := Recovery(context.Background(), cfg, "", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Per rank count: a clean baseline plus every ladder rung.
	want := 3 * (1 + len(defaultRecoveryScenarios()))
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	recovered, escalated := 0, 0
	for _, r := range rows {
		if r.Scenario == "clean" {
			if r.Overhead != 1 || r.RanksLost != 0 {
				t.Errorf("clean row degraded: %+v", r)
			}
			continue
		}
		if r.Failed {
			t.Errorf("%s ranks %d: failed — escalation should absorb total collapse on this workload", r.Scenario, r.Ranks)
			continue
		}
		// An escalated run prices on a single un-sharded device with no
		// fabric term, so it may legitimately undercut the sharded
		// baseline; every sharded recovery must cost at least clean.
		if !r.Escalated && r.Overhead < 1 {
			t.Errorf("%s ranks %d: overhead %.3fx below clean", r.Scenario, r.Ranks, r.Overhead)
		}
		if r.RanksLost > 0 {
			recovered++
			if r.Recoveries == 0 {
				t.Errorf("%s ranks %d: lost %d ranks but recorded no recoveries", r.Scenario, r.Ranks, r.RanksLost)
			}
			if r.CkptBytes == 0 {
				t.Errorf("%s ranks %d: recovered without checkpoints", r.Scenario, r.Ranks)
			}
		}
		if r.Escalated {
			escalated++
		}
	}
	if recovered == 0 {
		t.Error("no row recorded a survivor recovery")
	}
	// The kill-all rung exceeds the rank count at ranks 2 and 4, so
	// those configurations must escalate to the single-device plan.
	if escalated < 2 {
		t.Errorf("only %d rows escalated, want >= 2", escalated)
	}

	var sb strings.Builder
	if err := RenderRecovery(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "escalated") {
		t.Errorf("render missing escalation marker:\n%s", sb.String())
	}
	var csv strings.Builder
	if err := RecoveryCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != len(rows)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(rows)+1)
	}
}

func TestRecoverySingleSpec(t *testing.T) {
	cfg := Config{Scale: 11, EdgeFactor: 8, Seed: 1, NumRoots: 2}
	rows, err := Recovery(context.Background(), cfg, "rankcrash:1@2", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2 {
		t.Fatalf("%d rows, want 6 (clean + scenario per rank count)", len(rows))
	}
	for _, r := range rows {
		if r.Scenario == "clean" {
			continue
		}
		if r.RanksLost != 1 || r.Recoveries != 1 {
			t.Errorf("ranks %d: recovery stats %+v, want exactly one lost rank", r.Ranks, r)
		}
	}
}
