package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
)

// Real-hardware counterpart of Table IV: wall-clock per-level times of
// the actual Go kernels on the machine running this code. Where the
// simulator answers "what would the paper's devices do", this answers
// "does direction switching pay off for real" — on the test machine it
// does (see EXPERIMENTS.md).

// RealStepByStep holds measured timings for the three engines.
type RealStepByStep struct {
	GraphVertices int
	GraphEdges    int64
	TopDown       *core.MeasuredTiming
	BottomUp      *core.MeasuredTiming
	Hybrid        *core.MeasuredTiming
}

// MeasuredStepByStep runs each engine repeats times on the default
// workload and keeps each engine's best run (standard practice for
// wall-clock microcomparisons).
func MeasuredStepByStep(cfg Config, repeats int) (*RealStepByStep, error) {
	cfg.setDefaults()
	if repeats <= 0 {
		repeats = 3
	}
	g, tr, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	src := tr.Source

	best := func(policy func() bfs.Policy, name string) (*core.MeasuredTiming, error) {
		var winner *core.MeasuredTiming
		for i := 0; i < repeats; i++ {
			res, m, err := core.Measure(g, src, policy(), name, 0)
			if err != nil {
				return nil, err
			}
			if err := bfs.Validate(g, res); err != nil {
				return nil, fmt.Errorf("exp: %s produced invalid result: %w", name, err)
			}
			if winner == nil || m.Total < winner.Total {
				winner = m
			}
		}
		return winner, nil
	}

	out := &RealStepByStep{GraphVertices: g.NumVertices(), GraphEdges: g.NumEdges()}
	if out.TopDown, err = best(func() bfs.Policy { return bfs.AlwaysTopDown }, "top-down"); err != nil {
		return nil, err
	}
	if out.BottomUp, err = best(func() bfs.Policy { return bfs.AlwaysBottomUp }, "bottom-up"); err != nil {
		return nil, err
	}
	if out.Hybrid, err = best(func() bfs.Policy { return bfs.MN{M: 64, N: 64} }, "hybrid"); err != nil {
		return nil, err
	}
	return out, nil
}

// Render prints the measured comparison.
func (r *RealStepByStep) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "graph: %d vertices, %d directed edges (wall clock on this machine)\n",
		r.GraphVertices, r.GraphEdges)
	fmt.Fprintln(tw, "level\ttop-down\tbottom-up\thybrid\t")
	maxLevels := len(r.TopDown.StepWall)
	if n := len(r.BottomUp.StepWall); n > maxLevels {
		maxLevels = n
	}
	if n := len(r.Hybrid.StepWall); n > maxLevels {
		maxLevels = n
	}
	cell := func(m *core.MeasuredTiming, i int) string {
		if i < len(m.StepWall) {
			return m.StepWall[i].String()
		}
		return "-"
	}
	for i := 0; i < maxLevels; i++ {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t\n", i+1,
			cell(r.TopDown, i), cell(r.BottomUp, i), cell(r.Hybrid, i))
	}
	fmt.Fprintf(tw, "total\t%v\t%v\t%v\t\n", r.TopDown.Total, r.BottomUp.Total, r.Hybrid.Total)
	fmt.Fprintf(tw, "MTEPS\t%.0f\t%.0f\t%.0f\t\n",
		r.TopDown.TEPS()/1e6, r.BottomUp.TEPS()/1e6, r.Hybrid.TEPS()/1e6)
	return tw.Flush()
}
