package exp

import (
	"fmt"

	"crossbfs/internal/xmath"
)

// Replication support: the paper reports single runs; this
// reproduction can rerun any scalar experiment metric across seeds and
// report dispersion, so EXPERIMENTS.md claims are not one-seed flukes.

// Replicated summarizes a metric across independent seeds.
type Replicated struct {
	Values []float64
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

func (r Replicated) String() string {
	return fmt.Sprintf("%.3g +/- %.2g (n=%d, range %.3g-%.3g)",
		r.Mean, r.StdDev, len(r.Values), r.Min, r.Max)
}

// ReplicateMetric evaluates metric once per seed and summarizes.
func ReplicateMetric(seeds []uint64, metric func(seed uint64) (float64, error)) (Replicated, error) {
	if len(seeds) == 0 {
		return Replicated{}, fmt.Errorf("exp: no seeds")
	}
	values := make([]float64, 0, len(seeds))
	for _, s := range seeds {
		v, err := metric(s)
		if err != nil {
			return Replicated{}, fmt.Errorf("exp: seed %d: %w", s, err)
		}
		values = append(values, v)
	}
	return Replicated{
		Values: values,
		Mean:   xmath.Mean(values),
		StdDev: xmath.StdDev(values),
		Min:    xmath.Min(values),
		Max:    xmath.Max(values),
	}, nil
}

// CrossSpeedupReplicated reruns the Table V headline (tuned cross plan
// over GPUTD at the config's scale) across seeds.
func CrossSpeedupReplicated(cfg Config, seeds []uint64) (Replicated, error) {
	cfg.setDefaults()
	return ReplicateMetric(seeds, func(seed uint64) (float64, error) {
		c := cfg
		c.Seed = seed
		rows, err := CrossSpeedups(c, [][2]int{{c.Scale, c.EdgeFactor}})
		if err != nil {
			return 0, err
		}
		return rows[0].Speedup, nil
	})
}
