package exp

import (
	"fmt"

	"crossbfs/internal/archsim"
	"crossbfs/internal/core"
)

// MultiCoprocessorRow is one point of the Tianhe-2 extension: the
// cross-architecture combination with k coprocessors.
type MultiCoprocessorRow struct {
	Coprocessors int
	Kind         string
	GTEPS        float64
	SpeedupOver1 float64
}

// MultiCoprocessorScaling extends the paper (§I motivates Tianhe-2's
// three Xeon Phis per node; the evaluation uses one coprocessor) by
// sweeping 1..maxK coprocessors of the given kind on the default
// workload.
func MultiCoprocessorScaling(cfg Config, kind archsim.Kind, maxK int) ([]MultiCoprocessorRow, error) {
	cfg.setDefaults()
	if maxK <= 0 {
		maxK = 3
	}
	_, tr, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	cpu := archsim.SandyBridge()
	var cop archsim.Arch
	switch kind {
	case archsim.GPU:
		cop = archsim.KeplerK20x()
	case archsim.MIC:
		cop = archsim.KnightsCorner()
	default:
		return nil, fmt.Errorf("exp: coprocessor kind must be GPU or MIC, got %s", kind)
	}

	boundary, err := tunedCross(tr, cpu, cop, cfg.Link)
	if err != nil {
		return nil, err
	}

	var rows []MultiCoprocessorRow
	var base float64
	for k := 1; k <= maxK; k++ {
		cops := make([]archsim.Arch, k)
		for i := range cops {
			cops[i] = cop
		}
		// M2 = N2 = 300 pushes the switch to bottom-up as early as the
		// paper's search range allows, routing the scan-heavy levels
		// to the coprocessors — the phase partitioning accelerates.
		// With launch-bound mid levels (small default scales) the
		// sweep otherwise measures only per-device launch overhead.
		timing, err := core.SimulateMulti(tr, core.MultiCross{
			Host: cpu, Coprocessors: cops,
			M1: boundary.M1, N1: boundary.N1, M2: 300, N2: 300,
		}, cfg.Link)
		if err != nil {
			return nil, err
		}
		if k == 1 {
			base = timing.Total
		}
		rows = append(rows, MultiCoprocessorRow{
			Coprocessors: k,
			Kind:         kind.String(),
			GTEPS:        timing.GTEPS(),
			SpeedupOver1: base / timing.Total,
		})
	}
	return rows, nil
}
