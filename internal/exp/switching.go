package exp

import (
	"fmt"

	"crossbfs/internal/archsim"
	"crossbfs/internal/rmat"
	"crossbfs/internal/tuner"
	"crossbfs/internal/xrand"
)

// BestMRow is one cell of Table III: the exhaustively best M for one
// graph on the CPU.
type BestMRow struct {
	Scale      int
	EdgeFactor int
	BestM      float64
	BestN      float64
}

// BestSwitchingPoints drives Table III: best M per (SCALE, edgefactor)
// on CPUs, searched over [1, 300] as the paper extends the range. The
// paper's point is the *variance*: best M swings widely (54-275)
// across graphs, which is why a fixed hand-tuned constant loses.
func BestSwitchingPoints(scales, edgeFactors []int, seed uint64) ([]BestMRow, error) {
	if len(scales) == 0 {
		scales = []int{14, 15, 16}
	}
	if len(edgeFactors) == 0 {
		edgeFactors = []int{8, 16, 32}
	}
	cpu := archsim.SandyBridge()
	link := archsim.PCIe()
	grid := tuner.CandidateGrid(40, 10, 300, 300)
	var rows []BestMRow
	for _, s := range scales {
		for _, ef := range edgeFactors {
			p := rmat.DefaultParams(s, ef)
			p.Seed = seed
			g, err := rmat.Generate(p)
			if err != nil {
				return nil, err
			}
			tr, err := traceFromSampledRoot(g, seed)
			if err != nil {
				return nil, err
			}
			best, err := tuner.LabelBest(tr, cpu, cpu, link, grid)
			if err != nil {
				return nil, err
			}
			rows = append(rows, BestMRow{Scale: s, EdgeFactor: ef, BestM: best.M, BestN: best.N})
		}
	}
	return rows, nil
}

// StrategyRow is one graph's group of bars in Fig. 8.
type StrategyRow struct {
	Label string
	tuner.StrategyTimes
}

// StrategyComparison drives Fig. 8: train the regression model on the
// default corpus, then for each evaluation graph compare Random /
// Average / Regression / Exhaustive switching-point selection over the
// 1000-candidate set on the cross-architecture (CPU-TD, GPU-BU) pair.
// Returns the trained model's rows; model may be nil to train one.
func StrategyComparison(cfg Config, model *tuner.Model, scales []int, edgeFactors []int) ([]StrategyRow, error) {
	cfg.setDefaults()
	if model == nil {
		var err error
		model, err = TrainDefaultModel(nil)
		if err != nil {
			return nil, err
		}
	}
	if len(scales) == 0 {
		scales = []int{14, 15, 16}
	}
	if len(edgeFactors) == 0 {
		edgeFactors = []int{8, 16}
	}
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	candidates := tuner.DefaultCandidates()
	rng := xrand.New(cfg.Seed ^ 0xf1685)

	var rows []StrategyRow
	for _, s := range scales {
		for _, ef := range edgeFactors {
			p := rmat.DefaultParams(s, ef)
			p.Seed = cfg.Seed
			g, err := rmat.Generate(p)
			if err != nil {
				return nil, err
			}
			tr, err := traceFromSampledRoot(g, cfg.Seed)
			if err != nil {
				return nil, err
			}
			gi := tuner.GraphInfoFor(p, g)
			st, err := tuner.CompareStrategies(tr, cpu, gpu, cfg.Link, candidates, model, gi, rng)
			if err != nil {
				return nil, err
			}
			rows = append(rows, StrategyRow{
				Label:         fmt.Sprintf("SCALE=%d ef=%d", s, ef),
				StrategyTimes: st,
			})
		}
	}
	return rows, nil
}

// TrainDefaultModel builds the default corpus and trains the
// switching-point model (the paper's 140-sample off-line stage).
// progress may be nil.
func TrainDefaultModel(progress func(done, total int)) (*tuner.Model, error) {
	samples, err := tuner.BuildCorpus(tuner.DefaultCorpusSpec(), progress)
	if err != nil {
		return nil, err
	}
	return tuner.Train(samples, tuner.TrainOptions{})
}
