package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"crossbfs/internal/core"
)

func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// RenderFrontierProfiles prints Figs. 1/2 as one table per graph.
func RenderFrontierProfiles(w io.Writer, profiles []FrontierProfile) error {
	tw := newTable(w)
	for _, p := range profiles {
		fmt.Fprintf(tw, "SCALE=%d edgefactor=%d\n", p.Scale, p.EdgeFactor)
		fmt.Fprintln(tw, "level\t|V|cq\t|E|cq\t")
		for _, s := range p.Steps {
			fmt.Fprintf(tw, "%d\t%d\t%d\t\n", s.Step, s.FrontierVertices, s.FrontierEdges)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderDirectionTimes prints Fig. 3.
func RenderDirectionTimes(w io.Writer, rows []DirectionTimes) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "level\ttop-down (s)\tbottom-up (s)\tfaster\t")
	for _, r := range rows {
		faster := "top-down"
		if r.BottomUp < r.TopDown {
			faster = "bottom-up"
		}
		fmt.Fprintf(tw, "%d\t%.6f\t%.6f\t%s\t\n", r.Step, r.TopDown, r.BottomUp, faster)
	}
	return tw.Flush()
}

// RenderBestM prints Table III.
func RenderBestM(w io.Writer, rows []BestMRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "SCALE\tedgefactor\tbest M\tbest N\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.0f\t\n", r.Scale, r.EdgeFactor, r.BestM, r.BestN)
	}
	return tw.Flush()
}

// RenderStrategies prints Fig. 8 as speedups over the worst switching
// point, plus the regression-vs-exhaustive quality the paper reports.
func RenderStrategies(w io.Writer, rows []StrategyRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph\trandom\taverage\tregression\texhaustive\tquality\tpredicted\t")
	for _, r := range rows {
		rd, av, rg, ex := r.SpeedupOverWorst()
		fmt.Fprintf(tw, "%s\t%.1fx\t%.1fx\t%.1fx\t%.1fx\t%.0f%%\t%s\t\n",
			r.Label, rd, av, rg, ex, r.RegressionQuality()*100, r.Predicted)
	}
	return tw.Flush()
}

// RenderStepByStep prints Table IV: one row per level, one column per
// approach, speedups at the bottom.
func RenderStepByStep(w io.Writer, t *StepByStep) error {
	tw := newTable(w)
	fmt.Fprintf(tw, "graph: %d vertices, %d directed edges\n", t.GraphVertices, t.GraphEdges)
	fmt.Fprint(tw, "level")
	for _, timing := range t.Timings {
		fmt.Fprintf(tw, "\t%s", timing.Plan)
	}
	fmt.Fprintln(tw, "\t")
	maxSteps := 0
	for _, timing := range t.Timings {
		if len(timing.Steps) > maxSteps {
			maxSteps = len(timing.Steps)
		}
	}
	for i := 0; i < maxSteps; i++ {
		fmt.Fprintf(tw, "%d", i+1)
		for _, timing := range t.Timings {
			if i < len(timing.Steps) {
				st := timing.Steps[i]
				fmt.Fprintf(tw, "\t%.6f %s%s", st.Kernel+st.Transfer, st.Kind, st.Dir)
			} else {
				fmt.Fprint(tw, "\t0")
			}
		}
		fmt.Fprintln(tw, "\t")
	}
	fmt.Fprint(tw, "total")
	for _, timing := range t.Timings {
		fmt.Fprintf(tw, "\t%.6f", timing.Total)
	}
	fmt.Fprintln(tw, "\t")
	fmt.Fprint(tw, "speedup")
	base := t.Timings[0].Total
	for _, timing := range t.Timings {
		fmt.Fprintf(tw, "\t%.1fx", base/timing.Total)
	}
	fmt.Fprintln(tw, "\t")
	return tw.Flush()
}

// RenderCrossSpeedups prints Table V.
func RenderCrossSpeedups(w io.Writer, rows []CrossSpeedupRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "|V|\t|E|\tspeedup of CPUTD+GPUCB over GPUTD\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0fx\t\n", r.Vertices, r.Edges, r.Speedup)
	}
	return tw.Flush()
}

// RenderCombinations prints Fig. 9.
func RenderCombinations(w io.Writer, rows []CombinationRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph\tMIC CB\tCPU CB\tGPU CB\tcross\tcross/MIC\tcross/CPU\tcross/GPU\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.1fx\t%.1fx\t%.1fx\t\n",
			r.Label, r.MIC, r.CPU, r.GPU, r.Cross,
			r.SpeedupOverMIC, r.SpeedupOverCPU, r.SpeedupOverGPU)
	}
	fmt.Fprintln(tw, "(GTEPS per combination; speedups are cross-architecture over each)")
	return tw.Flush()
}

// RenderScaling prints Fig. 10a or 10b.
func RenderScaling(w io.Writer, rows []ScalingRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "arch\tcores\tGTEPS\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t\n", r.Arch, r.Cores, r.GTEPS)
	}
	return tw.Flush()
}

// RenderAvgPerformance prints Table VI.
func RenderAvgPerformance(w io.Writer, rows []AvgPerformanceRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "vertices\tCPU\tGPU\tMIC\t(GTEPS)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t\n", r.Vertices, r.CPU, r.GPU, r.MIC)
	}
	return tw.Flush()
}

// RenderComparisons prints the §V-D rows.
func RenderComparisons(w io.Writer, rows []ComparisonRow) error {
	tw := newTable(w)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1fx\t\n", r.Name, r.Speedup)
	}
	return tw.Flush()
}

// RenderHeuristics prints the heuristic comparison (extension table).
func RenderHeuristics(w io.Writer, rows []HeuristicRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph\tMN-oracle\tMN(64,64)\talpha/beta\tHong\tpure TD\tpure BU\toracle gain\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.2fx\t\n",
			r.Label, r.MNOracle, r.MNFixed, r.AlphaBeta, r.Hong, r.PureTD, r.PureBU, r.OracleGain)
	}
	fmt.Fprintln(tw, "(seconds per traversal on the CPU model; oracle gain = best alternative / tuned MN)")
	return tw.Flush()
}

// RenderMultiCoprocessor prints the Tianhe-2 extension sweep.
func RenderMultiCoprocessor(w io.Writer, rows []MultiCoprocessorRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "coprocessors\tGTEPS\tspeedup over 1\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%dx %s\t%.3f\t%.2fx\t\n", r.Coprocessors, r.Kind, r.GTEPS, r.SpeedupOver1)
	}
	return tw.Flush()
}

// RenderTiming prints one plan's per-level breakdown (bfsrun-style).
func RenderTiming(w io.Writer, t *core.Timing) error {
	tw := newTable(w)
	fmt.Fprintf(tw, "%s\ttotal %.6fs\tGTEPS %.3f\n", t.Plan, t.Total, t.GTEPS())
	for _, st := range t.Steps {
		fmt.Fprintf(tw, "  level %d\t%s %s\t%.6fs", st.Step, st.Kind, st.Dir, st.Kernel)
		if st.Transfer > 0 {
			fmt.Fprintf(tw, "\t+%.6fs transfer", st.Transfer)
		}
		fmt.Fprintln(tw, "\t")
	}
	return tw.Flush()
}

// RenderSharded prints the partitioned-BFS crossover sweep.
func RenderSharded(w io.Writer, rows []ShardedRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "ranks\tfabric\tGTEPS\tkernel s\texchange s\texchanged\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.6f\t%.6f\t%dB\t\n",
			r.Ranks, r.Fabric, r.GTEPS, r.KernelSeconds, r.ExchangeSec, r.ExchangedBytes)
	}
	fmt.Fprintln(tw, "(measured partitioned traversal, priced per fabric; kernel is the slowest shard)")
	return tw.Flush()
}
