package exp

import (
	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/rmat"
)

// ScalingRow is one point of Fig. 10: performance at a core count.
type ScalingRow struct {
	Arch  string
	Cores int
	GTEPS float64
}

// StrongScaling drives Fig. 10a: fixed graph (the paper uses SCALE 22,
// here cfg.Scale), CPU cores 1..8 and MIC cores 1..60. The scaled
// plan is the level-synchronized top-down kernel: it carries the full
// Θ(V+E) work at every scale, so the sweep exercises the compute and
// bandwidth scaling rather than the fixed per-level launch costs that
// dominate a tuned combination on laptop-sized graphs.
func StrongScaling(cfg Config) ([]ScalingRow, error) {
	cfg.setDefaults()
	_, tr, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	run := func(base archsim.Arch, cores []int) error {
		for _, c := range cores {
			plan := core.FixedDirection(base.WithCores(c), bfs.TopDown)
			timing := core.Simulate(tr, plan, cfg.Link)
			rows = append(rows, ScalingRow{Arch: base.Kind.String(), Cores: c, GTEPS: timing.GTEPS()})
		}
		return nil
	}
	if err := run(archsim.SandyBridge(), []int{1, 2, 4, 8}); err != nil {
		return nil, err
	}
	if err := run(archsim.KnightsCorner(), []int{1, 4, 15, 30, 60}); err != nil {
		return nil, err
	}
	return rows, nil
}

// WeakScaling drives Fig. 10b: the workload grows with the core count
// so per-core work stays constant (the paper loads 1M vertices per CPU
// core and 0.25M per MIC core; here scaled down 16x).
func WeakScaling(cfg Config) ([]ScalingRow, error) {
	cfg.setDefaults()
	var rows []ScalingRow
	run := func(base archsim.Arch, scaleByCores map[int]int, order []int) error {
		for _, c := range order {
			p := rmat.DefaultParams(scaleByCores[c], cfg.EdgeFactor)
			p.Seed = cfg.Seed
			g, err := rmat.Generate(p)
			if err != nil {
				return err
			}
			tr, err := traceFromSampledRoot(g, cfg.Seed)
			if err != nil {
				return err
			}
			plan := core.FixedDirection(base.WithCores(c), bfs.TopDown)
			timing := core.Simulate(tr, plan, cfg.Link)
			rows = append(rows, ScalingRow{Arch: base.Kind.String(), Cores: c, GTEPS: timing.GTEPS()})
		}
		return nil
	}
	// CPU: 64K vertices per core -> SCALE 16..19 at 1..8 cores.
	if err := run(archsim.SandyBridge(), map[int]int{1: 16, 2: 17, 4: 18, 8: 19}, []int{1, 2, 4, 8}); err != nil {
		return nil, err
	}
	// MIC: 16K vertices per core -> SCALE 14..20 at 1..60 cores.
	if err := run(archsim.KnightsCorner(), map[int]int{1: 14, 4: 16, 16: 18, 60: 20}, []int{1, 4, 16, 60}); err != nil {
		return nil, err
	}
	return rows, nil
}
