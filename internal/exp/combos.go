package exp

import (
	"fmt"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/rmat"
)

// StepByStep is the Table IV reproduction: per-level times for every
// approach on one graph, each combination using its own tuned
// switching point (the paper's hybrid-oracle treatment).
type StepByStep struct {
	GraphVertices int
	GraphEdges    int64
	Timings       []*core.Timing // one per approach, Table IV column order
}

// StepByStepOptimization drives Table IV. Column order follows the
// paper: GPUTD, GPUBU, GPUCB, CPUTD, CPUBU, CPUCB, CPUTD+GPUBU,
// CPUTD+GPUCB.
func StepByStepOptimization(cfg Config) (*StepByStep, error) {
	cfg.setDefaults()
	g, tr, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()

	gpuCB, _, err := tunedCombination(tr, gpu, cfg.Link)
	if err != nil {
		return nil, err
	}
	cpuCB, _, err := tunedCombination(tr, cpu, cfg.Link)
	if err != nil {
		return nil, err
	}
	cross, err := tunedCross(tr, cpu, gpu, cfg.Link)
	if err != nil {
		return nil, err
	}
	crossBU := core.CrossTDBU{Host: cpu, Coprocessor: gpu, M1: cross.M1, N1: cross.N1}

	plans := []core.Plan{
		core.FixedDirection(gpu, bfs.TopDown),
		core.FixedDirection(gpu, bfs.BottomUp),
		gpuCB,
		core.FixedDirection(cpu, bfs.TopDown),
		core.FixedDirection(cpu, bfs.BottomUp),
		cpuCB,
		crossBU,
		cross,
	}
	out := &StepByStep{GraphVertices: g.NumVertices(), GraphEdges: g.NumEdges()}
	for _, p := range plans {
		out.Timings = append(out.Timings, core.Simulate(tr, p, cfg.Link))
	}
	return out, nil
}

// CrossSpeedupRow is one column of Table V: the tuned cross-
// architecture combination's speedup over the GPU top-down baseline
// for one graph size.
type CrossSpeedupRow struct {
	Scale      int
	EdgeFactor int
	Vertices   int
	Edges      int64
	Speedup    float64 // CPUTD+GPUCB over GPUTD
}

// CrossSpeedups drives Table V over a (|V|, |E|) grid. The paper's
// grid is 2M/4M/8M vertices with 32M-256M edges; the default here is
// the same grid shifted down 5 scales.
func CrossSpeedups(cfg Config, pairs [][2]int) ([]CrossSpeedupRow, error) {
	cfg.setDefaults()
	if len(pairs) == 0 {
		// (scale, edgefactor): mirrors Table V's |V| x |E| ladder,
		// anchored on the configured scale so -scale is honored.
		s := cfg.Scale
		pairs = [][2]int{{s - 1, 16}, {s - 1, 32}, {s - 1, 64}, {s, 16}, {s, 32}, {s, 64}, {s + 1, 16}}
	}
	cpu, gpu := archsim.SandyBridge(), archsim.KeplerK20x()
	var rows []CrossSpeedupRow
	for _, pe := range pairs {
		p := rmat.DefaultParams(pe[0], pe[1])
		p.Seed = cfg.Seed
		g, err := rmat.Generate(p)
		if err != nil {
			return nil, err
		}
		tr, err := traceFromSampledRoot(g, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cross, err := tunedCross(tr, cpu, gpu, cfg.Link)
		if err != nil {
			return nil, err
		}
		baseline := core.Simulate(tr, core.FixedDirection(gpu, bfs.TopDown), cfg.Link)
		crossT := core.Simulate(tr, cross, cfg.Link)
		rows = append(rows, CrossSpeedupRow{
			Scale: pe[0], EdgeFactor: pe[1],
			Vertices: g.NumVertices(), Edges: g.NumEdges(),
			Speedup: baseline.Total / crossT.Total,
		})
	}
	return rows, nil
}

// CombinationRow is one graph's group of bars in Fig. 9: the four
// combinations' performance and the cross-architecture speedup over
// the MIC combination (the number printed on the paper's bars).
type CombinationRow struct {
	Label                string
	MIC, CPU, GPU, Cross float64 // GTEPS
	SpeedupOverMIC       float64
	SpeedupOverCPU       float64
	SpeedupOverGPU       float64
}

// CombinationComparison drives Fig. 9 over a sweep of graphs.
func CombinationComparison(cfg Config, pairs [][2]int) ([]CombinationRow, error) {
	cfg.setDefaults()
	if len(pairs) == 0 {
		// Anchored on the configured scale so -scale is honored.
		s := cfg.Scale
		pairs = [][2]int{{s - 1, 16}, {s - 1, 32}, {s, 8}, {s, 16}, {s, 32}, {s + 1, 8}, {s + 1, 16}}
	}
	cpu, gpu, mic := archsim.SandyBridge(), archsim.KeplerK20x(), archsim.KnightsCorner()
	var rows []CombinationRow
	for _, pe := range pairs {
		p := rmat.DefaultParams(pe[0], pe[1])
		p.Seed = cfg.Seed
		g, err := rmat.Generate(p)
		if err != nil {
			return nil, err
		}
		tr, err := traceFromSampledRoot(g, cfg.Seed)
		if err != nil {
			return nil, err
		}
		micCB, _, err := tunedCombination(tr, mic, cfg.Link)
		if err != nil {
			return nil, err
		}
		cpuCB, _, err := tunedCombination(tr, cpu, cfg.Link)
		if err != nil {
			return nil, err
		}
		gpuCB, _, err := tunedCombination(tr, gpu, cfg.Link)
		if err != nil {
			return nil, err
		}
		cross, err := tunedCross(tr, cpu, gpu, cfg.Link)
		if err != nil {
			return nil, err
		}
		micT := core.Simulate(tr, micCB, cfg.Link)
		cpuT := core.Simulate(tr, cpuCB, cfg.Link)
		gpuT := core.Simulate(tr, gpuCB, cfg.Link)
		crossT := core.Simulate(tr, cross, cfg.Link)
		rows = append(rows, CombinationRow{
			Label: fmt.Sprintf("SCALE=%d ef=%d", pe[0], pe[1]),
			MIC:   micT.GTEPS(), CPU: cpuT.GTEPS(), GPU: gpuT.GTEPS(), Cross: crossT.GTEPS(),
			SpeedupOverMIC: micT.Total / crossT.Total,
			SpeedupOverCPU: cpuT.Total / crossT.Total,
			SpeedupOverGPU: gpuT.Total / crossT.Total,
		})
	}
	return rows, nil
}
