package exp

import (
	"fmt"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/rmat"
)

// HeuristicRow compares switching heuristics on one graph: the
// paper's (M, N) rule with its exhaustively best thresholds, the same
// rule with a fixed untuned threshold, Beamer's alpha/beta (SC'12),
// Hong et al.'s one-way switch (PACT'11), and the pure baselines.
// This extends the paper's related-work discussion (§VI) into a
// measured comparison.
type HeuristicRow struct {
	Label      string
	MNOracle   float64 // seconds, exhaustively tuned (M, N)
	MNFixed    float64 // (M, N) = (64, 64), untuned
	AlphaBeta  float64 // Beamer defaults (14, 24)
	Hong       float64
	PureTD     float64
	PureBU     float64
	OracleGain float64 // best alternative / MNOracle
}

// HeuristicComparison prices all heuristics on the CPU model over a
// sweep of graphs.
func HeuristicComparison(cfg Config, pairs [][2]int) ([]HeuristicRow, error) {
	cfg.setDefaults()
	if len(pairs) == 0 {
		pairs = [][2]int{{14, 16}, {15, 16}, {16, 16}}
	}
	cpu := archsim.SandyBridge()
	var rows []HeuristicRow
	for _, pe := range pairs {
		p := rmat.DefaultParams(pe[0], pe[1])
		p.Seed = cfg.Seed
		g, err := rmat.Generate(p)
		if err != nil {
			return nil, err
		}
		tr, err := traceFromSampledRoot(g, cfg.Seed)
		if err != nil {
			return nil, err
		}
		oracle, _, err := tunedCombination(tr, cpu, cfg.Link)
		if err != nil {
			return nil, err
		}
		sim := func(plan core.Plan) float64 {
			return core.Simulate(tr, plan, cfg.Link).Total
		}
		row := HeuristicRow{
			Label:    fmt.Sprintf("SCALE=%d ef=%d", pe[0], pe[1]),
			MNOracle: sim(oracle),
			MNFixed:  sim(core.Combination(cpu, 64, 64)),
			AlphaBeta: sim(core.PolicyPlan{
				PlanName: "AlphaBeta", Arch: cpu,
				NewPolicy: func() bfs.Policy { return bfs.NewAlphaBeta(0, 0) },
			}),
			Hong: sim(core.PolicyPlan{
				PlanName: "Hong", Arch: cpu,
				NewPolicy: func() bfs.Policy { return bfs.NewHongHybrid() },
			}),
			PureTD: sim(core.FixedDirection(cpu, bfs.TopDown)),
			PureBU: sim(core.FixedDirection(cpu, bfs.BottomUp)),
		}
		bestAlt := row.MNFixed
		for _, alt := range []float64{row.AlphaBeta, row.Hong, row.PureTD, row.PureBU} {
			if alt < bestAlt {
				bestAlt = alt
			}
		}
		row.OracleGain = bestAlt / row.MNOracle
		rows = append(rows, row)
	}
	return rows, nil
}
