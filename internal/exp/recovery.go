package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/fault"
)

// RecoveryRow records how the partitioned engine survives one
// rank-fault scenario at one rank count: the recovery work the real
// traversal performed (ranks fenced, levels replayed, exchange
// retries, checkpoint volume) and the modeled cost relative to the
// clean sharded run of the same workload.
type RecoveryRow struct {
	Scenario   string
	Ranks      int
	RanksLost  int
	Recoveries int
	Retries    int   // exchange attempts re-run after an injected drop
	CkptBytes  int64 // encoded per-level frontier deltas
	Total      float64
	Overhead   float64 // Total / clean sharded Total at this rank count
	Escalated  bool    // all ranks lost; replanned onto a single device
	Failed     bool    // even the escalation could not finish
}

// defaultRecoveryScenarios is the ladder the experiment walks when no
// -faults spec is given: each rung exercises one recovery mechanism
// (checkpoint replay after a crash, staggered double crash, degraded
// collectives under lag, retry/backoff under drops, total collapse).
func defaultRecoveryScenarios() []string {
	return []string{
		"rankcrash:1@2",
		"rankcrash:0@2;rankcrash:1@3",
		"ranklag:1x4@2",
		"exchdrop:0.2",
		"rankcrash:1@2;exchdrop:0.1",
		"rankcrash:0@1;rankcrash:1@1;rankcrash:2@1;rankcrash:3@1",
	}
}

// Recovery runs the partitioned engine for real under a ladder of
// rank-fault scenarios (or a single user-supplied spec) at each rank
// count: crashes, lag, and dropped collectives are injected at the
// exchange seams, survivors replay from per-level checkpoints, and
// every surviving traversal is validated against the Graph 500 rules
// before its row is recorded. ctx is checked between runs so a
// deadline cuts the sweep at a row boundary.
func Recovery(ctx context.Context, cfg Config, spec string, seed uint64) ([]RecoveryRow, error) {
	cfg.setDefaults()
	g, _, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	src, ok := firstUsableSource(g, cfg.Seed)
	if !ok {
		return nil, fmt.Errorf("exp: graph has no non-isolated vertex")
	}
	specs := defaultRecoveryScenarios()
	if spec != "" {
		specs = []string{spec}
	}
	ws := bfs.DefaultPool.Get(g.NumVertices())
	defer bfs.DefaultPool.Put(ws)

	var rows []RecoveryRow
	for _, ranks := range []int{2, 4, 8} {
		plan := core.ShardedPlan{
			Device: archsim.SandyBridge(),
			Ranks:  ranks,
			Fabric: archsim.SMP(ranks),
			M:      bfs.DefaultM,
			N:      bfs.DefaultN,
		}
		_, clean, err := core.ExecuteSharded(ctx, g, src, plan, ws, nil)
		if err != nil {
			return rows, err
		}
		rows = append(rows, RecoveryRow{
			Scenario: "clean", Ranks: ranks, Total: clean.Total, Overhead: 1,
		})
		for _, s := range specs {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			sched, err := fault.Parse(s, seed)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: %w", s, err)
			}
			res, t, err := core.ExecuteShardedResilient(ctx, g, src, plan, ws,
				core.ResilientOptions{Schedule: sched})
			if err != nil {
				var fe *fault.Error
				if !errors.As(err, &fe) {
					return nil, fmt.Errorf("scenario %q: %w", s, err)
				}
				rows = append(rows, RecoveryRow{Scenario: s, Ranks: ranks, Failed: true})
				continue
			}
			if err := bfs.Validate(g, res); err != nil {
				return nil, fmt.Errorf("scenario %q ranks %d: recovered traversal invalid: %w", s, ranks, err)
			}
			rows = append(rows, RecoveryRow{
				Scenario:   s,
				Ranks:      ranks,
				RanksLost:  res.Recovery.RanksLost,
				Recoveries: res.Recovery.Recoveries,
				Retries:    res.Recovery.ExchangeRetries,
				CkptBytes:  res.Recovery.CheckpointBytes,
				Total:      t.Total,
				Overhead:   t.Total / clean.Total,
				Escalated:  strings.HasSuffix(t.Plan, "-degraded"),
			})
		}
	}
	return rows, nil
}

// RenderRecovery prints the rank-fault recovery sweep as a table.
func RenderRecovery(w io.Writer, rows []RecoveryRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "scenario\tranks\tlost\trecoveries\tretries\tckpt\ttotal\toverhead")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(tw, "%s\t%d\tFAILED\t-\t-\t-\t-\t-\n", r.Scenario, r.Ranks)
			continue
		}
		total := fmt.Sprintf("%.6fs", r.Total)
		if r.Escalated {
			total += " (escalated)"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%dB\t%s\t%.2fx\n",
			r.Scenario, r.Ranks, r.RanksLost, r.Recoveries, r.Retries, r.CkptBytes, total, r.Overhead)
	}
	fmt.Fprintln(tw, "(real partitioned traversals under injection; every surviving run re-validated)")
	return tw.Flush()
}

// RecoveryCSV writes the rows in machine-readable form.
func RecoveryCSV(w io.Writer, rows []RecoveryRow) error {
	if _, err := fmt.Fprintln(w, "scenario,ranks,ranks_lost,recoveries,retries,ckpt_bytes,total_s,overhead,escalated,failed"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%q,%d,%d,%d,%d,%d,%.9f,%.4f,%t,%t\n",
			r.Scenario, r.Ranks, r.RanksLost, r.Recoveries, r.Retries, r.CkptBytes,
			r.Total, r.Overhead, r.Escalated, r.Failed); err != nil {
			return err
		}
	}
	return nil
}
