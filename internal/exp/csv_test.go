package exp

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"crossbfs/internal/bfs"
	"crossbfs/internal/tuner"
)

func parseCSV(t *testing.T, data string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	return rows
}

func TestFrontierProfilesCSV(t *testing.T) {
	profiles := []FrontierProfile{{
		Scale: 12, EdgeFactor: 16,
		Steps: []bfs.LevelStats{
			{Step: 1, FrontierVertices: 1, FrontierEdges: 8},
			{Step: 2, FrontierVertices: 8, FrontierEdges: 90},
		},
	}}
	var buf bytes.Buffer
	if err := FrontierProfilesCSV(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 3 {
		t.Fatalf("%d rows, want header + 2", len(rows))
	}
	if rows[0][3] != "frontier_vertices" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[2][4] != "90" {
		t.Errorf("data row = %v", rows[2])
	}
}

func TestDirectionTimesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := DirectionTimesCSV(&buf, []DirectionTimes{{Step: 1, TopDown: 0.001, BottomUp: 0.002}})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 || rows[1][0] != "1" {
		t.Errorf("rows = %v", rows)
	}
}

func TestScalingCSV(t *testing.T) {
	var buf bytes.Buffer
	err := ScalingCSV(&buf, []ScalingRow{{Arch: "CPU", Cores: 8, GTEPS: 1.25}})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if rows[1][0] != "CPU" || rows[1][1] != "8" {
		t.Errorf("rows = %v", rows)
	}
}

func TestCombinationsCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CombinationsCSV(&buf, []CombinationRow{{Label: "g", MIC: 0.1, CPU: 0.5, GPU: 0.7, Cross: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 || rows[0][4] != "cross_gteps" {
		t.Errorf("rows = %v", rows)
	}
}

func TestStrategiesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := StrategiesCSV(&buf, []StrategyRow{{
		Label: "g",
		StrategyTimes: tuner.StrategyTimes{
			Random: 1, Average: 2, Regression: 3, Exhaustive: 4, Worst: 5,
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 || rows[1][5] != "5.000000000" {
		t.Errorf("rows = %v", rows)
	}
}
