package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFaultToleranceLadder(t *testing.T) {
	cfg := Config{Scale: 11, EdgeFactor: 8, Seed: 1, NumRoots: 2}
	rows, err := FaultTolerance(context.Background(), cfg, "", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Clean row plus every rung of the default ladder.
	want := 1 + len(defaultFaultScenarios())
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	if rows[0].Scenario != "clean" || rows[0].Overhead != 1 {
		t.Errorf("first row = %+v, want the clean baseline", rows[0])
	}
	degraded := 0
	for _, r := range rows[1:] {
		if r.Failed {
			continue
		}
		if r.Overhead < 1 {
			t.Errorf("%s: overhead %.3fx below clean", r.Scenario, r.Overhead)
		}
		if r.Retries > 0 || r.Replans > 0 || r.Events > 0 {
			degraded++
		}
	}
	// Low-probability transient rungs may get lucky, but the slowdown
	// and crash rungs always leave a mark.
	if degraded < 2 {
		t.Errorf("only %d rows record degradation: %+v", degraded, rows)
	}
	// The all-dead rung must fail typed, not crash or price garbage.
	last := rows[len(rows)-1]
	if !last.Failed {
		t.Errorf("all-dead scenario %q completed: %+v", last.Scenario, last)
	}

	var sb strings.Builder
	if err := RenderFaultTolerance(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FAILED") {
		t.Errorf("render missing FAILED marker:\n%s", sb.String())
	}
}

func TestFaultToleranceSingleSpec(t *testing.T) {
	cfg := Config{Scale: 11, EdgeFactor: 8, Seed: 1, NumRoots: 2}
	rows, err := FaultTolerance(context.Background(), cfg, "transient:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want clean + 1", len(rows))
	}
	r := rows[1]
	if r.Failed || r.Retries == 0 || r.Replans == 0 {
		t.Errorf("transient:1 row = %+v; want completion with retries and replans", r)
	}
}

func TestFaultToleranceBadSpec(t *testing.T) {
	cfg := Config{Scale: 10, EdgeFactor: 8, Seed: 1, NumRoots: 2}
	if _, err := FaultTolerance(context.Background(), cfg, "crash:GPU", 1); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestFaultToleranceDeadline(t *testing.T) {
	cfg := Config{Scale: 10, EdgeFactor: 8, Seed: 1, NumRoots: 2}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := FaultTolerance(ctx, cfg, "", 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}
