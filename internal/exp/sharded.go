package exp

import (
	"context"
	"fmt"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
)

// ShardedRow is one point of the partitioned-BFS sweep: the real
// sharded traversal on the default workload, priced as Ranks devices
// joined by the named fabric.
type ShardedRow struct {
	Ranks          int
	Fabric         string
	GTEPS          float64
	KernelSeconds  float64 // slowest-shard kernel time per traversal
	ExchangeSec    float64 // fabric time: direction all-reduce + frontier exchange
	ExchangedBytes int64   // measured payload (bitmap deltas + ghost claims)
}

// ShardedCrossover runs the partitioned engine for real at each rank
// count and prices the measured per-level exchange volumes on each
// fabric. The sweep exposes the communication-vs-computation crossover:
// the kernel share shrinks as 1/Ranks while the collective grows with
// the rank count, so a slow fabric inverts the scaling curve that a
// fast one shows.
func ShardedCrossover(cfg Config, rankCounts []int, fabrics []func(int) *archsim.Fabric) ([]ShardedRow, error) {
	cfg.setDefaults()
	if len(rankCounts) == 0 {
		rankCounts = []int{1, 2, 4, 8}
	}
	if len(fabrics) == 0 {
		fabrics = []func(int) *archsim.Fabric{archsim.SMP, archsim.Eth10G}
	}
	g, _, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	src, ok := firstUsableSource(g, cfg.Seed)
	if !ok {
		return nil, fmt.Errorf("exp: graph has no non-isolated vertex")
	}
	ws := bfs.DefaultPool.Get(g.NumVertices())
	defer bfs.DefaultPool.Put(ws)

	var rows []ShardedRow
	for _, ranks := range rankCounts {
		for _, mk := range fabrics {
			plan := core.ShardedPlan{
				Device: archsim.SandyBridge(),
				Ranks:  ranks,
				Fabric: mk(ranks),
				M:      bfs.DefaultM,
				N:      bfs.DefaultN,
			}
			res, timing, err := core.ExecuteSharded(context.Background(), g, src, plan, ws, nil)
			if err != nil {
				return nil, fmt.Errorf("exp: sharded sweep at %d ranks: %w", ranks, err)
			}
			var bytes int64
			for _, ex := range res.Exchanges {
				bytes += ex.TotalBytes()
			}
			rows = append(rows, ShardedRow{
				Ranks:          ranks,
				Fabric:         plan.Fabric.Name,
				GTEPS:          timing.GTEPS(),
				KernelSeconds:  timing.Total - timing.Transfers,
				ExchangeSec:    timing.Transfers,
				ExchangedBytes: bytes,
			})
		}
	}
	return rows, nil
}
