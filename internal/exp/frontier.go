package exp

import (
	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/rmat"
)

// FrontierProfile is one series of Figs. 1 and 2: the per-level
// frontier sizes of one graph scale.
type FrontierProfile struct {
	Scale      int
	EdgeFactor int
	Steps      []bfs.LevelStats
}

// FrontierProfiles drives Figs. 1 and 2: for each SCALE it reports
// |V|cq and |E|cq per level — the bulge ("small at first, peaks in the
// middle") that motivates direction switching. The paper plots SCALE
// 19-23 with edgefactor 16 (2^(SCALE+4) edges).
func FrontierProfiles(scales []int, edgeFactor int, seed uint64) ([]FrontierProfile, error) {
	if len(scales) == 0 {
		scales = []int{13, 14, 15, 16, 17}
	}
	if edgeFactor == 0 {
		edgeFactor = 16
	}
	out := make([]FrontierProfile, 0, len(scales))
	for _, s := range scales {
		p := rmat.DefaultParams(s, edgeFactor)
		p.Seed = seed
		g, err := rmat.Generate(p)
		if err != nil {
			return nil, err
		}
		tr, err := traceFromSampledRoot(g, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, FrontierProfile{Scale: s, EdgeFactor: edgeFactor, Steps: tr.Steps})
	}
	return out, nil
}

// PeaksInMiddle reports whether the profile has the Fig. 1/2 shape:
// the maximum frontier is not at the first or last level.
func (p FrontierProfile) PeaksInMiddle() bool {
	if len(p.Steps) < 3 {
		return false
	}
	peak := 0
	for i, s := range p.Steps {
		if s.FrontierVertices > p.Steps[peak].FrontierVertices {
			peak = i
		}
	}
	return peak > 0 && peak < len(p.Steps)-1
}

// DirectionTimes is one row of Fig. 3: the per-level cost of each
// direction on one architecture.
type DirectionTimes struct {
	Step     int
	TopDown  float64 // seconds
	BottomUp float64
}

// DirectionComparison drives Fig. 3: price every level both ways on
// the CPU model. The figure's claim: bottom-up loses the early levels,
// wins the middle, and loses the tail again.
func DirectionComparison(cfg Config) ([]DirectionTimes, error) {
	cfg.setDefaults()
	_, tr, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	cpu := archsim.SandyBridge()
	out := make([]DirectionTimes, 0, len(tr.Steps))
	for _, s := range tr.Steps {
		out = append(out, DirectionTimes{
			Step:     s.Step,
			TopDown:  cpu.TopDownTime(s),
			BottomUp: cpu.BottomUpTime(s),
		})
	}
	return out, nil
}
