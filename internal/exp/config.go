// Package exp contains one driver per table and figure of the paper's
// evaluation. Each driver returns typed rows; cmd/experiments renders
// them as text and the root benchmark suite wraps them in testing.B
// benches, so paper artifacts regenerate identically from either
// entry point.
//
// Default workloads are scaled down from the paper's SCALE 21-23 to
// SCALE 14-18 (one 15 GB machine) — see DESIGN.md's substitution
// table. The drivers keep the paper's *structure*: same sweeps, same
// comparisons, same metrics.
package exp

import (
	"fmt"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/graph"
	"crossbfs/internal/rmat"
	"crossbfs/internal/tuner"
)

// Config carries the shared experiment parameters.
type Config struct {
	// Scale and EdgeFactor define the default single-graph workload
	// (Table IV's "8M vertices, 128M edges" scaled down).
	Scale      int
	EdgeFactor int
	Seed       uint64
	// NumRoots is the Graph 500 search-key count for TEPS aggregates.
	NumRoots int
	// Link prices cross-architecture transfers.
	Link archsim.Link
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Scale:      17,
		EdgeFactor: 16,
		Seed:       1,
		NumRoots:   16,
		Link:       archsim.PCIe(),
	}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.EdgeFactor == 0 {
		c.EdgeFactor = d.EdgeFactor
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.NumRoots == 0 {
		c.NumRoots = d.NumRoots
	}
	if c.Link == (archsim.Link{}) {
		c.Link = d.Link
	}
}

// workload generates the config's default graph and returns it with a
// trace from the first sampled root.
func (c Config) workload() (*graph.CSR, *bfs.Trace, rmat.Params, error) {
	p := rmat.DefaultParams(c.Scale, c.EdgeFactor)
	p.Seed = c.Seed
	g, err := rmat.Generate(p)
	if err != nil {
		return nil, nil, p, err
	}
	tr, err := traceFromSampledRoot(g, c.Seed)
	if err != nil {
		return nil, nil, p, err
	}
	return g, tr, p, nil
}

func traceFromSampledRoot(g *graph.CSR, seed uint64) (*bfs.Trace, error) {
	src, ok := firstUsableSource(g, seed)
	if !ok {
		return nil, fmt.Errorf("exp: graph has no non-isolated vertex")
	}
	// The sweep drivers call this per generated graph; drawing the
	// traversal buffers from the shared pool keeps the thousand-point
	// experiment loops from churning the allocator.
	ws := bfs.DefaultPool.Get(g.NumVertices())
	defer bfs.DefaultPool.Put(ws)
	return bfs.TraceFromWith(g, src, ws)
}

func firstUsableSource(g *graph.CSR, seed uint64) (int32, bool) {
	// Deterministic but seed-dependent starting offset, then the first
	// non-isolated vertex from there.
	n := g.NumVertices()
	if n == 0 {
		return 0, false
	}
	start := int(seed % uint64(n))
	for i := 0; i < n; i++ {
		v := int32((start + i) % n)
		if g.Degree(v) > 0 {
			return v, true
		}
	}
	return 0, false
}

// tuneGrid is the coarse exhaustive grid used to give every
// combination row its own well-tuned (M, N) — the paper's
// hybrid-oracle treatment for the non-regression experiments.
var tuneGrid = tuner.CandidateGrid(16, 10, 300, 300)

// tunedCombination returns arch's combination plan with its
// exhaustively best switching point for this trace.
func tunedCombination(tr *bfs.Trace, arch archsim.Arch, link archsim.Link) (core.Plan, tuner.SwitchPoint, error) {
	best, err := tuner.LabelBest(tr, arch, arch, link, tuneGrid)
	if err != nil {
		return nil, best, err
	}
	return core.Combination(arch, best.M, best.N), best, nil
}

// tunedCross returns the Algorithm 3 plan with both threshold pairs
// tuned by exhaustive search on this trace.
func tunedCross(tr *bfs.Trace, host, cop archsim.Arch, link archsim.Link) (core.CrossPlan, error) {
	boundary, err := tuner.LabelBest(tr, host, cop, link, tuneGrid)
	if err != nil {
		return core.CrossPlan{}, err
	}
	onCop, err := tuner.LabelBest(tr, cop, cop, link, tuneGrid)
	if err != nil {
		return core.CrossPlan{}, err
	}
	return core.CrossPlan{
		Host: host, Coprocessor: cop,
		M1: boundary.M, N1: boundary.N,
		M2: onCop.M, N2: onCop.N,
	}, nil
}
