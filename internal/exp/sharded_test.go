package exp

import (
	"bytes"
	"strings"
	"testing"

	"crossbfs/internal/archsim"
)

// TestShardedCrossoverShape checks the sweep's structure and the
// crossover property it exists to show: on the slow fabric, the
// exchange term grows with the rank count while the measured payload
// is fabric-independent.
func TestShardedCrossoverShape(t *testing.T) {
	rows, err := ShardedCrossover(smallCfg, []int{1, 2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 3 rank counts x 2 fabrics", len(rows))
	}
	byKey := make(map[string]ShardedRow)
	for _, r := range rows {
		if r.GTEPS <= 0 {
			t.Errorf("%d ranks on %s: GTEPS %g", r.Ranks, r.Fabric, r.GTEPS)
		}
		if r.Ranks == 1 && (r.ExchangeSec != 0 || r.ExchangedBytes != 0) {
			t.Errorf("single rank reports communication: %+v", r)
		}
		if r.Ranks > 1 && r.ExchangedBytes <= 0 {
			t.Errorf("%d ranks on %s: no bytes exchanged", r.Ranks, r.Fabric)
		}
		byKey[r.Fabric+string(rune('0'+r.Ranks))] = r
	}
	// Same traversal, same payload — only the pricing differs per fabric.
	for _, ranks := range []string{"2", "4"} {
		smp, eth := byKey["smp"+ranks], byKey["eth10g"+ranks]
		if smp.ExchangedBytes != eth.ExchangedBytes {
			t.Errorf("%s ranks: smp moved %dB, eth10g %dB — payload should be fabric-independent",
				ranks, smp.ExchangedBytes, eth.ExchangedBytes)
		}
		if eth.ExchangeSec <= smp.ExchangeSec {
			t.Errorf("%s ranks: eth10g exchange %gs not slower than smp %gs",
				ranks, eth.ExchangeSec, smp.ExchangeSec)
		}
	}
	if byKey["eth10g4"].ExchangeSec <= byKey["eth10g2"].ExchangeSec {
		t.Error("eth10g exchange time did not grow from 2 to 4 ranks")
	}
}

func TestShardedCrossoverRejectsBadFabric(t *testing.T) {
	_, err := ShardedCrossover(smallCfg, []int{2}, []func(int) *archsim.Fabric{
		func(int) *archsim.Fabric { return archsim.SMP(3) }, // wrong rank count
	})
	if err == nil {
		t.Fatal("fabric/rank mismatch accepted")
	}
}

func TestRenderShardedAndCSV(t *testing.T) {
	rows := []ShardedRow{
		{Ranks: 2, Fabric: "smp", GTEPS: 0.5, KernelSeconds: 0.001, ExchangeSec: 0.0001, ExchangedBytes: 1024},
	}
	var buf bytes.Buffer
	if err := RenderSharded(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "smp") || !strings.Contains(buf.String(), "1024B") {
		t.Errorf("render missing fields:\n%s", buf.String())
	}
	buf.Reset()
	if err := ShardedCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exchanged_bytes") || !strings.Contains(buf.String(), "1024") {
		t.Errorf("csv missing fields:\n%s", buf.String())
	}
}
