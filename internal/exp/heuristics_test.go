package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestHeuristicComparison(t *testing.T) {
	rows, err := HeuristicComparison(smallCfg, [][2]int{{13, 16}, {14, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The oracle-tuned MN rule is the best of the bunch by
		// construction (it is exhaustively tuned on this very trace).
		for name, alt := range map[string]float64{
			"MN(64,64)": r.MNFixed, "alpha/beta": r.AlphaBeta,
			"Hong": r.Hong, "pure TD": r.PureTD, "pure BU": r.PureBU,
		} {
			if alt < r.MNOracle*0.999 {
				t.Errorf("%s: %s (%g) beats the tuned oracle (%g)", r.Label, name, alt, r.MNOracle)
			}
		}
		// Every switching heuristic should beat at least one pure
		// baseline on an R-MAT graph.
		worstPure := r.PureTD
		if r.PureBU > worstPure {
			worstPure = r.PureBU
		}
		for name, h := range map[string]float64{"alpha/beta": r.AlphaBeta, "Hong": r.Hong} {
			if h > worstPure {
				t.Errorf("%s: %s (%g) loses to the worst pure baseline (%g)", r.Label, name, h, worstPure)
			}
		}
		if r.OracleGain < 1 {
			t.Errorf("%s: oracle gain %.2f < 1", r.Label, r.OracleGain)
		}
	}
}

func TestRenderHeuristics(t *testing.T) {
	rows := []HeuristicRow{{
		Label: "SCALE=13 ef=16", MNOracle: 0.001, MNFixed: 0.002,
		AlphaBeta: 0.0015, Hong: 0.0018, PureTD: 0.004, PureBU: 0.005,
		OracleGain: 1.5,
	}}
	var buf bytes.Buffer
	if err := RenderHeuristics(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alpha/beta") || !strings.Contains(buf.String(), "1.50x") {
		t.Errorf("render output missing fields:\n%s", buf.String())
	}
}

func TestReplicateMetric(t *testing.T) {
	r, err := ReplicateMetric([]uint64{1, 2, 3}, func(seed uint64) (float64, error) {
		return float64(seed * 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean != 4 || r.Min != 2 || r.Max != 6 {
		t.Errorf("replicated = %+v", r)
	}
	if r.String() == "" {
		t.Error("empty string form")
	}
	if _, err := ReplicateMetric(nil, nil); err == nil {
		t.Error("no seeds accepted")
	}
}

func TestCrossSpeedupReplicated(t *testing.T) {
	rep, err := CrossSpeedupReplicated(Config{Scale: 13, EdgeFactor: 16, NumRoots: 2}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Fatalf("%d values", len(rep.Values))
	}
	if rep.Min <= 1 {
		t.Errorf("cross speedup dipped to %.2fx across seeds", rep.Min)
	}
}
