package exp

import (
	"bytes"
	"strings"
	"testing"

	"crossbfs/internal/archsim"
)

func TestMultiCoprocessorScalingGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload")
	}
	cfg := Config{Scale: 18, EdgeFactor: 16, Seed: 1, NumRoots: 2}
	rows, err := MultiCoprocessorScaling(cfg, archsim.GPU, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// With scan-heavy levels routed to the GPUs, adding devices must
	// help (the all-reduce is cheap next to the saved work).
	if rows[2].SpeedupOver1 <= rows[0].SpeedupOver1 {
		t.Errorf("3x GPU speedup %.2f not above 1x baseline", rows[2].SpeedupOver1)
	}
	if rows[2].SpeedupOver1 > 3 {
		t.Errorf("superlinear multi-GPU speedup %.2f: transfer accounting broken?", rows[2].SpeedupOver1)
	}
}

func TestMultiCoprocessorScalingMICLaunchBound(t *testing.T) {
	// The honest negative: the MIC's per-level fork/join cost is not
	// divided by partitioning, so at laptop scale extra MICs must NOT
	// show meaningful gains (within 20% of flat).
	rows, err := MultiCoprocessorScaling(smallCfg, archsim.MIC, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SpeedupOver1 > 1.2 {
			t.Errorf("%dx MIC speedup %.2f: launch-bound workload should stay flat", r.Coprocessors, r.SpeedupOver1)
		}
	}
}

func TestMultiCoprocessorRejectsCPUKind(t *testing.T) {
	if _, err := MultiCoprocessorScaling(smallCfg, archsim.CPU, 2); err == nil {
		t.Error("CPU as coprocessor kind accepted")
	}
}

func TestRenderMultiCoprocessor(t *testing.T) {
	var buf bytes.Buffer
	err := RenderMultiCoprocessor(&buf, []MultiCoprocessorRow{
		{Coprocessors: 2, Kind: "GPU", GTEPS: 1.4, SpeedupOver1: 1.11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2x GPU") || !strings.Contains(buf.String(), "1.11x") {
		t.Errorf("render = %q", buf.String())
	}
}
