package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestMeasuredStepByStep(t *testing.T) {
	r, err := MeasuredStepByStep(smallCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]interface {
		TEPS() float64
	}{
		"top-down": r.TopDown, "bottom-up": r.BottomUp, "hybrid": r.Hybrid,
	} {
		if m.TEPS() <= 0 {
			t.Errorf("%s: degenerate TEPS", name)
		}
	}
	// Same traversal, same number of levels for the two frontier-
	// driven engines (bottom-up may take the same count by
	// construction of level-synchronized BFS).
	if len(r.TopDown.StepWall) != len(r.BottomUp.StepWall) {
		t.Errorf("level counts differ: %d vs %d", len(r.TopDown.StepWall), len(r.BottomUp.StepWall))
	}
	// Wall times are noisy on shared machines, so only a weak sanity
	// bound: the hybrid should never be drastically worse than both
	// pure engines.
	worst := r.TopDown.Total
	if r.BottomUp.Total > worst {
		worst = r.BottomUp.Total
	}
	if r.Hybrid.Total > 3*worst {
		t.Errorf("hybrid %v more than 3x worse than the worst pure engine %v", r.Hybrid.Total, worst)
	}

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MTEPS") {
		t.Error("render missing summary row")
	}
}
