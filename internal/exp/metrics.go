package exp

import (
	"fmt"

	"crossbfs/internal/archsim"
	"crossbfs/internal/bfs"
	"crossbfs/internal/core"
	"crossbfs/internal/graph"
	"crossbfs/internal/graph500"
	"crossbfs/internal/rmat"
	"crossbfs/internal/xmath"
)

// AvgPerformanceRow is one column of Table VI: harmonic-mean GTEPS per
// architecture for one data size, averaged over edge factors and
// Graph 500 roots.
type AvgPerformanceRow struct {
	Scale    int
	Vertices int
	CPU      float64 // GTEPS
	GPU      float64
	MIC      float64
}

// AveragePerformance drives Table VI: tuned combinations on each
// architecture across data sizes (the paper's 2M/4M/8M vertices,
// scaled down), averaged across edge factors {8, 16, 32}.
func AveragePerformance(cfg Config, scales []int) ([]AvgPerformanceRow, error) {
	cfg.setDefaults()
	if len(scales) == 0 {
		scales = []int{16, 17, 18}
	}
	archs := []archsim.Arch{archsim.SandyBridge(), archsim.KeplerK20x(), archsim.KnightsCorner()}
	var rows []AvgPerformanceRow
	for _, s := range scales {
		row := AvgPerformanceRow{Scale: s, Vertices: 1 << uint(s)}
		sums := make(map[archsim.Kind][]float64)
		for _, ef := range []int{8, 16, 32} {
			p := rmat.DefaultParams(s, ef)
			p.Seed = cfg.Seed
			g, err := rmat.Generate(p)
			if err != nil {
				return nil, err
			}
			teps, err := multiPlanTEPS(g, archs, cfg)
			if err != nil {
				return nil, err
			}
			for kind, v := range teps {
				sums[kind] = append(sums[kind], v)
			}
		}
		row.CPU = xmath.Mean(sums[archsim.CPU]) / 1e9
		row.GPU = xmath.Mean(sums[archsim.GPU]) / 1e9
		row.MIC = xmath.Mean(sums[archsim.MIC]) / 1e9
		rows = append(rows, row)
	}
	return rows, nil
}

// multiPlanTEPS traces each sampled root once and prices each
// architecture's tuned combination on it, returning harmonic-mean
// TEPS per architecture.
func multiPlanTEPS(g *graph.CSR, archs []archsim.Arch, cfg Config) (map[archsim.Kind]float64, error) {
	roots := graph500.SampleRoots(g, cfg.NumRoots, cfg.Seed)
	if len(roots) == 0 {
		return nil, fmt.Errorf("exp: no usable roots")
	}
	perArch := make(map[archsim.Kind][]float64)
	ws := bfs.DefaultPool.Get(g.NumVertices())
	defer bfs.DefaultPool.Put(ws)
	for _, root := range roots {
		tr, err := bfs.TraceFromWith(g, root, ws)
		if err != nil {
			return nil, err
		}
		for _, a := range archs {
			plan, _, err := tunedCombination(tr, a, cfg.Link)
			if err != nil {
				return nil, err
			}
			perArch[a.Kind] = append(perArch[a.Kind], core.Simulate(tr, plan, cfg.Link).TEPS())
		}
	}
	out := make(map[archsim.Kind]float64, len(perArch))
	for k, teps := range perArch {
		out[k] = xmath.HarmonicMean(teps)
	}
	return out, nil
}

// ComparisonRow is one line of the §V-D external-baseline comparison.
type ComparisonRow struct {
	Name    string
	Speedup float64 // our best configuration over the baseline
}

// ExternalComparisons drives §V-D: the tuned CPU combination and the
// tuned cross-architecture combination against the Graph 500 reference
// implementation, and the MIC combination against the Gao et al. MIC
// implementation.
func ExternalComparisons(cfg Config) ([]ComparisonRow, error) {
	cfg.setDefaults()
	_, tr, _, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	cpu, gpu, mic := archsim.SandyBridge(), archsim.KeplerK20x(), archsim.KnightsCorner()

	refCPU := core.Simulate(tr, graph500.ReferenceCPUPlan(), cfg.Link).Total
	refMIC := core.Simulate(tr, graph500.GaoMICReferencePlan(), cfg.Link).Total

	cpuCB, _, err := tunedCombination(tr, cpu, cfg.Link)
	if err != nil {
		return nil, err
	}
	micCB, _, err := tunedCombination(tr, mic, cfg.Link)
	if err != nil {
		return nil, err
	}
	cross, err := tunedCross(tr, cpu, gpu, cfg.Link)
	if err != nil {
		return nil, err
	}

	return []ComparisonRow{
		{Name: "CPUCB vs Graph500 reference", Speedup: refCPU / core.Simulate(tr, cpuCB, cfg.Link).Total},
		{Name: "CPUTD+GPUCB vs Graph500 reference", Speedup: refCPU / core.Simulate(tr, cross, cfg.Link).Total},
		{Name: "MICCB vs Gao et al. MIC", Speedup: refMIC / core.Simulate(tr, micCB, cfg.Link).Total},
	}, nil
}
