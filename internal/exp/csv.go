package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers for the figure-shaped experiments, so the series can be
// plotted directly (one row per point, stable headers). The text
// renderers remain the human-facing output.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// FrontierProfilesCSV emits Figs. 1-2 data: scale, level, |V|cq, |E|cq.
func FrontierProfilesCSV(w io.Writer, profiles []FrontierProfile) error {
	var rows [][]string
	for _, p := range profiles {
		for _, s := range p.Steps {
			rows = append(rows, []string{
				strconv.Itoa(p.Scale),
				strconv.Itoa(p.EdgeFactor),
				strconv.Itoa(s.Step),
				strconv.FormatInt(s.FrontierVertices, 10),
				strconv.FormatInt(s.FrontierEdges, 10),
			})
		}
	}
	return writeCSV(w, []string{"scale", "edgefactor", "level", "frontier_vertices", "frontier_edges"}, rows)
}

// DirectionTimesCSV emits Fig. 3 data.
func DirectionTimesCSV(w io.Writer, rows []DirectionTimes) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Step),
			fmt.Sprintf("%.9f", r.TopDown),
			fmt.Sprintf("%.9f", r.BottomUp),
		})
	}
	return writeCSV(w, []string{"level", "topdown_s", "bottomup_s"}, out)
}

// ScalingCSV emits Fig. 10 data.
func ScalingCSV(w io.Writer, rows []ScalingRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Arch,
			strconv.Itoa(r.Cores),
			fmt.Sprintf("%.6f", r.GTEPS),
		})
	}
	return writeCSV(w, []string{"arch", "cores", "gteps"}, out)
}

// CombinationsCSV emits Fig. 9 data.
func CombinationsCSV(w io.Writer, rows []CombinationRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			fmt.Sprintf("%.6f", r.MIC),
			fmt.Sprintf("%.6f", r.CPU),
			fmt.Sprintf("%.6f", r.GPU),
			fmt.Sprintf("%.6f", r.Cross),
		})
	}
	return writeCSV(w, []string{"graph", "mic_gteps", "cpu_gteps", "gpu_gteps", "cross_gteps"}, out)
}

// StrategiesCSV emits Fig. 8 data.
func StrategiesCSV(w io.Writer, rows []StrategyRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			fmt.Sprintf("%.9f", r.Random),
			fmt.Sprintf("%.9f", r.Average),
			fmt.Sprintf("%.9f", r.Regression),
			fmt.Sprintf("%.9f", r.Exhaustive),
			fmt.Sprintf("%.9f", r.Worst),
		})
	}
	return writeCSV(w, []string{"graph", "random_s", "average_s", "regression_s", "exhaustive_s", "worst_s"}, out)
}

// ShardedCSV emits the partitioned-BFS crossover data.
func ShardedCSV(w io.Writer, rows []ShardedRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Ranks),
			r.Fabric,
			fmt.Sprintf("%.6f", r.GTEPS),
			fmt.Sprintf("%.9f", r.KernelSeconds),
			fmt.Sprintf("%.9f", r.ExchangeSec),
			strconv.FormatInt(r.ExchangedBytes, 10),
		})
	}
	return writeCSV(w, []string{"ranks", "fabric", "gteps", "kernel_s", "exchange_s", "exchanged_bytes"}, out)
}
