// Package xmath provides the small set of summary statistics used by
// the benchmark harness: means (arithmetic, geometric, harmonic),
// dispersion, and quantiles. Graph 500 reports the harmonic mean of
// TEPS across search roots, which is why it appears here explicitly.
package xmath

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs, or 0 for an empty
// slice. A zero element makes the result 0 (the limit as any element
// approaches zero). This is the Graph 500 aggregate for TEPS.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x == 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// All elements must be positive; a non-positive element yields 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the sample standard deviation of xs (n-1 divisor),
// or 0 when len(xs) < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Median returns the median of xs, or 0 for an empty slice. It does
// not modify xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, or 0 for an empty slice.
// It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt limits x to [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
