package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9 || math.Abs(a-b) < 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want) {
			t.Errorf("Mean(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 2, 4}); !almostEqual(got, 3/(1+0.5+0.25)) {
		t.Errorf("HarmonicMean = %g", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HarmonicMean(nil) = %g, want 0", got)
	}
	if got := HarmonicMean([]float64{2, 0, 3}); got != 0 {
		t.Errorf("HarmonicMean with zero = %g, want 0", got)
	}
}

func TestHarmonicLeGeoLeArith(t *testing.T) {
	// AM >= GM >= HM for positive values.
	f := func(seed int64) bool {
		xs := make([]float64, 1+int(seed%7+7)%7)
		v := float64(seed%1000+1001) / 7
		for i := range xs {
			v = math.Mod(v*9301+49297, 233280) + 1
			xs[i] = v
		}
		am, gm, hm := Mean(xs), GeoMean(xs), HarmonicMean(xs)
		return am >= gm-1e-9 && gm >= hm-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10) {
		t.Errorf("GeoMean(1,100) = %g, want 10", got)
	}
	if got := GeoMean([]float64{2, -1}); got != 0 {
		t.Errorf("GeoMean with negative = %g, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %g", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, math.Sqrt(32.0/7)) {
		t.Errorf("StdDev = %g", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev of singleton = %g, want 0", got)
	}
}

func TestMedianAndQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %g, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile(0) = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("Quantile(1) = %g, want 5", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated quantile = %g, want 1.5", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 5 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestQuantileMonotone(t *testing.T) {
	xs := []float64{9, 1, 6, 6, 2, 8, 4}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(xs, q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%.2f: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %g", got)
	}
	if got := Clamp(-2, 0, 3); got != 0 {
		t.Errorf("Clamp(-2,0,3) = %g", got)
	}
	if got := Clamp(1, 0, 3); got != 1 {
		t.Errorf("Clamp(1,0,3) = %g", got)
	}
	if got := ClampInt(10, 1, 7); got != 7 {
		t.Errorf("ClampInt(10,1,7) = %d", got)
	}
}
