package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	input := `# a comment
% another comment

10 20
20 30
10 30
`
	edges, n, origIDs, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 3 {
		t.Fatalf("n=%d edges=%d, want 3/3", n, len(edges))
	}
	if origIDs[0] != 10 || origIDs[1] != 20 || origIDs[2] != 30 {
		t.Errorf("origIDs = %v", origIDs)
	}
	if edges[0] != (Edge{From: 0, To: 1}) {
		t.Errorf("first edge = %v", edges[0])
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"one-field line":     "42\n",
		"non-numeric vertex": "a b\n",
		"negative vertex":    "-1 2\n",
		"bad second vertex":  "1 x\n",
	}
	for name, input := range cases {
		if _, _, _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{0, 1}, {1, 2}, {3, 4}, {0, 4}}, BuildOptions{Symmetrize: true})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	edges, n, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Build(n, edges, BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip: %d entries vs %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestLoadEdgeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.el")
	content := "# test graph\n100 200\n200 300\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, origIDs, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 4 {
		t.Errorf("loaded %d vertices, %d entries", g.NumVertices(), g.NumEdges())
	}
	if len(origIDs) != 3 || origIDs[2] != 300 {
		t.Errorf("origIDs = %v", origIDs)
	}
}

func TestLoadEdgeListMissing(t *testing.T) {
	if _, _, err := LoadEdgeList(filepath.Join(t.TempDir(), "none.el")); err == nil {
		t.Error("missing file accepted")
	}
}
