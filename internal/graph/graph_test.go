package graph

import (
	"testing"
	"testing/quick"

	"crossbfs/internal/xrand"
)

// mustBuild builds a graph or fails the test.
func mustBuild(t *testing.T, n int, edges []Edge, opts BuildOptions) *CSR {
	t.Helper()
	g, err := Build(n, edges, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("built graph fails validation: %v", err)
	}
	return g
}

func TestBuildEmptyGraph(t *testing.T) {
	g := mustBuild(t, 0, nil, BuildOptions{})
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestBuildSingleVertex(t *testing.T) {
	g := mustBuild(t, 1, nil, BuildOptions{})
	if g.NumVertices() != 1 || g.Degree(0) != 0 {
		t.Error("single-vertex graph malformed")
	}
}

func TestBuildSymmetrize(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}, {1, 2}}, BuildOptions{Symmetrize: true})
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	for _, e := range [][2]int32{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge (%d,%d)", e[0], e[1])
		}
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge (0,2)")
	}
}

func TestBuildDirected(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.HasEdge(1, 0) {
		t.Error("directed build inserted reverse edge")
	}
}

func TestBuildDropsSelfLoops(t *testing.T) {
	g := mustBuild(t, 2, []Edge{{0, 0}, {0, 1}}, BuildOptions{Symmetrize: true})
	if g.HasEdge(0, 0) {
		t.Error("self loop kept by default")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestBuildKeepsSelfLoopsWhenAsked(t *testing.T) {
	g := mustBuild(t, 2, []Edge{{0, 0}}, BuildOptions{KeepSelfLoops: true})
	if !g.HasEdge(0, 0) {
		t.Error("self loop dropped despite KeepSelfLoops")
	}
}

func TestBuildDeduplicates(t *testing.T) {
	g := mustBuild(t, 2, []Edge{{0, 1}, {0, 1}, {1, 0}}, BuildOptions{Symmetrize: true})
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestBuildKeepDuplicates(t *testing.T) {
	g := mustBuild(t, 2, []Edge{{0, 1}, {0, 1}}, BuildOptions{KeepDuplicates: true})
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d, want 2 with duplicates kept", g.Degree(0))
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 2}}, BuildOptions{}); err == nil {
		t.Error("out-of-range To accepted")
	}
	if _, err := Build(2, []Edge{{-1, 0}}, BuildOptions{}); err == nil {
		t.Error("negative From accepted")
	}
	if _, err := Build(-1, nil, BuildOptions{}); err == nil {
		t.Error("negative vertex count accepted")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{0, 4}, {0, 1}, {0, 3}, {0, 2}}, BuildOptions{})
	adj := g.Neighbors(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("adjacency not strictly sorted: %v", adj)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1}, {1, 2}}, BuildOptions{Symmetrize: true})
	s := g.ComputeStats()
	if s.NumVertices != 4 || s.NumEdges != 4 {
		t.Errorf("stats counts wrong: %+v", s)
	}
	if s.MinDegree != 0 || s.MaxDegree != 2 {
		t.Errorf("stats degrees wrong: %+v", s)
	}
	if s.Isolated != 1 {
		t.Errorf("Isolated = %d, want 1 (vertex 3)", s.Isolated)
	}
	if s.AvgDegree != 1.0 {
		t.Errorf("AvgDegree = %g, want 1", s.AvgDegree)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g := mustBuild(t, 0, nil, BuildOptions{})
	s := g.ComputeStats()
	if s.MinDegree != 0 || s.MaxDegree != 0 || s.AvgDegree != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestMaxDegree(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}}, BuildOptions{Symmetrize: true})
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
}

// TestBuildSymmetrizedIsUndirected: property — in a symmetrized graph,
// every edge has its reverse.
func TestBuildSymmetrizedIsUndirected(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(30)
		m := rng.Intn(100)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))}
		}
		g, err := Build(n, edges, BuildOptions{Symmetrize: true})
		if err != nil {
			return false
		}
		for u := int32(0); u < int32(n); u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBuildPreservesConnectivity: property — every input edge (u,v)
// with u != v appears in the built graph.
func TestBuildPreservesConnectivity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(20)
		m := 1 + rng.Intn(60)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))}
		}
		g, err := Build(n, edges, BuildOptions{})
		if err != nil {
			return false
		}
		for _, e := range edges {
			if e.From != e.To && !g.HasEdge(e.From, e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}, {1, 2}}, BuildOptions{Symmetrize: true})

	bad := &CSR{Offsets: append([]int64(nil), g.Offsets...), Adj: append([]int32(nil), g.Adj...)}
	bad.Adj[0] = 99 // out of range
	if bad.Validate() == nil {
		t.Error("out-of-range neighbor not caught")
	}

	bad2 := &CSR{Offsets: append([]int64(nil), g.Offsets...), Adj: append([]int32(nil), g.Adj...)}
	bad2.Offsets[1] = 100 // non-monotone / out of bounds
	if bad2.Validate() == nil {
		t.Error("bad offsets not caught")
	}

	bad3 := &CSR{Offsets: []int64{1, 2}, Adj: []int32{0, 0}}
	if bad3.Validate() == nil {
		t.Error("offsets not starting at zero not caught")
	}
}
