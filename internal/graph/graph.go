// Package graph provides the Compressed Sparse Row (CSR) graph
// substrate used by every BFS kernel in this repository.
//
// The paper stores graphs in CSR (§V-A: "We use the CSR format to
// store the graph"). A CSR graph keeps all adjacency lists in one
// contiguous array (Adj) indexed by a per-vertex offset array (Offsets),
// which is what makes both the top-down edge scan and the bottom-up
// early-exit scan cache-friendly and trivially shardable.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a directed edge in an edge list. BFS treats graphs as
// undirected; Build symmetrizes unless told otherwise.
type Edge struct {
	From, To int32
}

// CSR is an immutable graph in Compressed Sparse Row form.
// The neighbors of vertex v are Adj[Offsets[v]:Offsets[v+1]], sorted
// ascending. Offsets has NumVertices+1 entries; Adj has NumEdges
// entries (each undirected edge appears twice after symmetrization).
type CSR struct {
	Offsets []int64
	Adj     []int32
}

// NumVertices returns |V|.
func (g *CSR) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the number of directed adjacency entries (twice the
// undirected edge count for a symmetrized graph).
func (g *CSR) NumEdges() int64 { return int64(len(g.Adj)) }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v int32) int64 {
	return g.Offsets[v+1] - g.Offsets[v]
}

// Neighbors returns the adjacency slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(v int32) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// HasEdge reports whether the directed edge (u, v) exists, by binary
// search over u's sorted adjacency list.
func (g *CSR) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *CSR) MaxDegree() int64 {
	var m int64
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > m {
			m = d
		}
	}
	return m
}

// BuildOptions control edge-list to CSR conversion.
type BuildOptions struct {
	// Symmetrize inserts the reverse of every edge so the CSR can be
	// traversed as an undirected graph. This matches Graph 500 kernel 1.
	Symmetrize bool
	// KeepSelfLoops retains (v, v) edges. Graph 500 construction drops
	// them, so the default (false) drops them too.
	KeepSelfLoops bool
	// KeepDuplicates retains parallel edges. Graph 500 construction
	// deduplicates, so the default (false) deduplicates.
	KeepDuplicates bool
}

// Build converts an edge list into a CSR graph with numVertices
// vertices. Vertex IDs must lie in [0, numVertices).
func Build(numVertices int, edges []Edge, opts BuildOptions) (*CSR, error) {
	if numVertices < 0 {
		return nil, errors.New("graph: negative vertex count")
	}
	n := int32(numVertices)
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
	}

	// Count directed entries per vertex.
	offsets := make([]int64, numVertices+1)
	count := func(e Edge) {
		if !opts.KeepSelfLoops && e.From == e.To {
			return
		}
		offsets[e.From+1]++
		if opts.Symmetrize && e.From != e.To {
			offsets[e.To+1]++
		}
	}
	for _, e := range edges {
		count(e)
	}
	for v := 0; v < numVertices; v++ {
		offsets[v+1] += offsets[v]
	}

	adj := make([]int32, offsets[numVertices])
	cursor := make([]int64, numVertices)
	place := func(from, to int32) {
		pos := offsets[from] + cursor[from]
		adj[pos] = to
		cursor[from]++
	}
	for _, e := range edges {
		if !opts.KeepSelfLoops && e.From == e.To {
			continue
		}
		place(e.From, e.To)
		if opts.Symmetrize && e.From != e.To {
			place(e.To, e.From)
		}
	}

	g := &CSR{Offsets: offsets, Adj: adj}
	g.sortAdjacency()
	if !opts.KeepDuplicates {
		g.dedup()
	}
	return g, nil
}

// sortAdjacency sorts each adjacency list ascending.
func (g *CSR) sortAdjacency() {
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
}

// dedup removes duplicate entries from each (sorted) adjacency list,
// compacting Adj and rewriting Offsets.
func (g *CSR) dedup() {
	n := g.NumVertices()
	newOffsets := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		newOffsets[v] = w
		start, end := g.Offsets[v], g.Offsets[v+1]
		for i := start; i < end; i++ {
			if i > start && g.Adj[i] == g.Adj[i-1] {
				continue
			}
			g.Adj[w] = g.Adj[i]
			w++
		}
	}
	newOffsets[n] = w
	g.Offsets = newOffsets
	g.Adj = g.Adj[:w]
}

// Stats summarizes a graph for feature vectors and reports.
type Stats struct {
	NumVertices int
	NumEdges    int64 // directed adjacency entries
	MinDegree   int64
	MaxDegree   int64
	AvgDegree   float64
	Isolated    int // vertices with degree 0
}

// ComputeStats scans the graph once and returns its Stats.
func (g *CSR) ComputeStats() Stats {
	s := Stats{
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		MinDegree:   int64(1) << 62,
	}
	if s.NumVertices == 0 {
		s.MinDegree = 0
		return s
	}
	for v := 0; v < s.NumVertices; v++ {
		d := g.Degree(int32(v))
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.AvgDegree = float64(s.NumEdges) / float64(s.NumVertices)
	return s
}

// Validate checks structural invariants: monotone offsets, in-range
// sorted adjacency. It returns nil for a well-formed CSR.
func (g *CSR) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return errors.New("graph: missing offsets")
	}
	if g.Offsets[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	if g.Offsets[n] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: final offset %d != len(adj) %d", g.Offsets[n], len(g.Adj))
	}
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
		if g.Offsets[v+1] > int64(len(g.Adj)) {
			return fmt.Errorf("graph: offset of vertex %d exceeds adjacency length", v+1)
		}
		adj := g.Neighbors(int32(v))
		for i, u := range adj {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && adj[i-1] > u {
				return fmt.Errorf("graph: adjacency of vertex %d not sorted", v)
			}
		}
	}
	return nil
}
