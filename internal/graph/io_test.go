package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{0, 1}, {1, 2}, {3, 4}, {0, 4}}, BuildOptions{Symmetrize: true})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %d/%d -> %d/%d",
			g.NumVertices(), g.NumEdges(), got.NumVertices(), got.NumEdges())
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		a, b := g.Neighbors(v), got.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency changed", v)
			}
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	g := mustBuild(t, 0, nil, BuildOptions{})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.NumVertices() != 0 {
		t.Error("empty graph round trip gained vertices")
	}
}

func TestSaveLoad(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1}, {2, 3}}, BuildOptions{Symmetrize: true})
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := g.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Error("Save/Load changed edge count")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.csr")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestReadFromBadMagic(t *testing.T) {
	_, err := ReadFrom(strings.NewReader("NOTAGRAPHFILE___penguins"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic error = %v", err)
	}
}

func TestReadFromTruncated(t *testing.T) {
	g := mustBuild(t, 100, []Edge{{0, 1}, {5, 7}, {20, 90}}, BuildOptions{Symmetrize: true})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	full := buf.Bytes()
	// Every truncation point must produce an error, not a panic or a
	// silently wrong graph.
	for _, cut := range []int{0, 4, 8, 16, 24, 30, len(full) / 2, len(full) - 1} {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestReadFromCorruptedAdjacency(t *testing.T) {
	g := mustBuild(t, 8, []Edge{{0, 1}, {1, 2}, {2, 3}}, BuildOptions{Symmetrize: true})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	data := buf.Bytes()
	// Corrupt the last adjacency entry to an out-of-range vertex.
	data[len(data)-1] = 0x7f
	if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
		t.Error("corrupted adjacency accepted")
	}
}

func TestReadFromImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("CSRGRAF1"))
	// Absurd vertex count: must be rejected before allocation.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	buf.Write(make([]byte, 8))
	if _, err := ReadFrom(&buf); err == nil {
		t.Error("implausible header accepted")
	}
}
