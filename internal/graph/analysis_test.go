package graph

import (
	"testing"
)

func TestConnectedComponents(t *testing.T) {
	// Components: {0,1,2}, {3,4}, {5}.
	g := mustBuild(t, 6, []Edge{{0, 1}, {1, 2}, {3, 4}}, BuildOptions{Symmetrize: true})
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first component split")
	}
	if labels[3] != labels[4] {
		t.Error("second component split")
	}
	if labels[0] == labels[3] || labels[3] == labels[5] || labels[0] == labels[5] {
		t.Error("components merged")
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	g := mustBuild(t, 0, nil, BuildOptions{})
	labels, count := g.ConnectedComponents()
	if count != 0 || len(labels) != 0 {
		t.Errorf("empty graph: %d components, %d labels", count, len(labels))
	}
}

func TestLargestComponent(t *testing.T) {
	g := mustBuild(t, 7, []Edge{{0, 1}, {1, 2}, {2, 3}, {4, 5}}, BuildOptions{Symmetrize: true})
	members := g.LargestComponent()
	if len(members) != 4 {
		t.Fatalf("largest component has %d members, want 4", len(members))
	}
	want := map[int32]bool{0: true, 1: true, 2: true, 3: true}
	for _, v := range members {
		if !want[v] {
			t.Errorf("unexpected member %d", v)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star with 3 leaves: hub degree 3, leaves degree 1.
	g := mustBuild(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}}, BuildOptions{Symmetrize: true})
	h := g.DegreeHistogram()
	if len(h) != 4 {
		t.Fatalf("histogram length %d, want 4", len(h))
	}
	if h[1] != 3 || h[3] != 1 || h[0] != 0 || h[2] != 0 {
		t.Errorf("histogram = %v", h)
	}
}

func TestEccentricity(t *testing.T) {
	// Path 0-1-2-3-4.
	g := mustBuild(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, BuildOptions{Symmetrize: true})
	if got := g.Eccentricity(0); got != 4 {
		t.Errorf("Eccentricity(0) = %d, want 4", got)
	}
	if got := g.Eccentricity(2); got != 2 {
		t.Errorf("Eccentricity(2) = %d, want 2", got)
	}
	if got := g.Eccentricity(99); got != 0 {
		t.Errorf("out-of-range eccentricity = %d, want 0", got)
	}
}

func TestApproxDiameter(t *testing.T) {
	// Path graph: double sweep finds the true diameter even from the
	// middle.
	g := mustBuild(t, 6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}, BuildOptions{Symmetrize: true})
	if got := g.ApproxDiameter(3); got != 5 {
		t.Errorf("ApproxDiameter from middle = %d, want 5", got)
	}
	// Isolated source: diameter 0.
	g2 := mustBuild(t, 3, []Edge{{1, 2}}, BuildOptions{Symmetrize: true})
	if got := g2.ApproxDiameter(0); got != 0 {
		t.Errorf("isolated source diameter = %d", got)
	}
}
