package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary CSR container format, little-endian:
//
//	magic   [8]byte  "CSRGRAF1"
//	nverts  uint64
//	nedges  uint64   (len(Adj))
//	offsets [nverts+1]int64
//	adj     [nedges]int32
//
// The format is deliberately dumb: mmap-friendly layout, no
// compression, so cmd/rmatgen output can be large but loads at disk
// bandwidth.

var csrMagic = [8]byte{'C', 'S', 'R', 'G', 'R', 'A', 'F', '1'}

// WriteTo serializes the graph to w in the binary CSR format.
func (g *CSR) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if err := put(csrMagic); err != nil {
		return written, err
	}
	if err := put(uint64(g.NumVertices())); err != nil {
		return written, err
	}
	if err := put(uint64(len(g.Adj))); err != nil {
		return written, err
	}
	if err := put(g.Offsets); err != nil {
		return written, err
	}
	if err := put(g.Adj); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadFrom deserializes a graph written by WriteTo. The result is
// validated structurally so that a truncated or corrupted file is
// reported as an error rather than a later panic.
func ReadFrom(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a CSR graph file)", magic[:])
	}
	var nverts, nedges uint64
	if err := binary.Read(br, binary.LittleEndian, &nverts); err != nil {
		return nil, fmt.Errorf("graph: reading vertex count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &nedges); err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	const maxReasonable = 1 << 40
	if nverts > maxReasonable || nedges > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header (%d vertices, %d edges)", nverts, nedges)
	}
	g := &CSR{
		Offsets: make([]int64, nverts+1),
		Adj:     make([]int32, nedges),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt file: %w", err)
	}
	return g, nil
}

// Save writes the graph to path, creating or truncating it.
func (g *CSR) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from path.
func Load(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
