package graph

import "testing"

func TestSortNeighborsByDegree(t *testing.T) {
	// Vertex 0 adjacent to 1 (deg 1), 2 (deg 3), 3 (deg 2).
	g := mustBuild(t, 6, []Edge{
		{0, 1}, {0, 2}, {0, 3},
		{2, 4}, {2, 5},
		{3, 4},
	}, BuildOptions{Symmetrize: true})
	g.SortNeighborsByDegree()
	adj := g.Neighbors(0)
	if len(adj) != 3 {
		t.Fatalf("degree changed: %v", adj)
	}
	if adj[0] != 2 || adj[1] != 3 || adj[2] != 1 {
		t.Errorf("neighbors of 0 = %v, want [2 3 1] (by descending degree)", adj)
	}
	// Membership still works via the unsorted check.
	if !g.HasEdgeUnsorted(0, 1) || g.HasEdgeUnsorted(0, 4) {
		t.Error("HasEdgeUnsorted wrong after reorder")
	}
	// Restoring id order re-enables binary search.
	g.SortNeighborsByID()
	if !g.HasEdge(0, 3) {
		t.Error("HasEdge broken after restore")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("restored graph invalid: %v", err)
	}
}

func TestSortNeighborsPreservesEdgeMultiset(t *testing.T) {
	g := mustBuild(t, 8, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {5, 6}}, BuildOptions{Symmetrize: true})
	before := g.Clone()
	g.SortNeighborsByDegree()
	if g.NumEdges() != before.NumEdges() {
		t.Fatal("edge count changed")
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, u := range before.Neighbors(v) {
			if !g.HasEdgeUnsorted(v, u) {
				t.Fatalf("edge (%d,%d) lost", v, u)
			}
		}
	}
}

func TestClone(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}}, BuildOptions{Symmetrize: true})
	c := g.Clone()
	c.Adj[0] = 2 // mutate the copy
	if g.Adj[0] == 2 {
		t.Error("clone aliases original storage")
	}
}
