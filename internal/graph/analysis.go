package graph

// Analysis helpers used by the experiment drivers and examples:
// connected components (which also back the Graph 500 rule that search
// keys must reach more than a trivial component), degree histograms
// (Figs. 1-2 depend on the R-MAT skew), and a BFS-based diameter
// estimate.

// ConnectedComponents labels every vertex with a component id in
// [0, count) and returns the labels and the component count.
// Isolated vertices get their own components.
func (g *CSR) ConnectedComponents() (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[start] = id
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if labels[v] == -1 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the vertices of the largest connected
// component (ties broken by lowest component id).
func (g *CSR) LargestComponent() []int32 {
	labels, count := g.ConnectedComponents()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for id, s := range sizes {
		if s > sizes[best] {
			best = id
		}
	}
	var members []int32
	for v, l := range labels {
		if l == int32(best) {
			members = append(members, int32(v))
		}
	}
	return members
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// up to and including the maximum degree.
func (g *CSR) DegreeHistogram() []int64 {
	counts := make([]int64, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(int32(v))]++
	}
	return counts
}

// Eccentricity returns the largest BFS distance from source within its
// component (a lower bound on the graph's diameter).
func (g *CSR) Eccentricity(source int32) int32 {
	n := g.NumVertices()
	if source < 0 || int(source) >= n {
		return 0
	}
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	queue := []int32{source}
	var ecc int32
	for len(queue) > 0 {
		var next []int32
		for _, u := range queue {
			for _, v := range g.Neighbors(u) {
				if level[v] == -1 {
					level[v] = level[u] + 1
					if level[v] > ecc {
						ecc = level[v]
					}
					next = append(next, v)
				}
			}
		}
		queue = next
	}
	return ecc
}

// ApproxDiameter lower-bounds the diameter of the source's component
// with the standard double-sweep: BFS from source, then BFS again from
// the farthest vertex found.
func (g *CSR) ApproxDiameter(source int32) int32 {
	n := g.NumVertices()
	if source < 0 || int(source) >= n {
		return 0
	}
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	queue := []int32{source}
	far := source
	for len(queue) > 0 {
		var next []int32
		for _, u := range queue {
			for _, v := range g.Neighbors(u) {
				if level[v] == -1 {
					level[v] = level[u] + 1
					if level[v] > level[far] {
						far = v
					}
					next = append(next, v)
				}
			}
		}
		queue = next
	}
	return g.Eccentricity(far)
}
