package graph

import (
	"bytes"
	"testing"
)

// Fuzz targets: the two parsers must never panic or return a graph
// that fails validation, no matter the input. Run the seed corpus in
// normal `go test`; explore with `go test -fuzz=FuzzReadFrom`.

func FuzzReadFrom(f *testing.F) {
	// Seeds: a valid file, truncations, and corruptions.
	g, err := Build(5, []Edge{{0, 1}, {1, 2}, {3, 4}}, BuildOptions{Symmetrize: true})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("CSRGRAF1"))
	f.Add([]byte{})
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)-1] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n\n10 20\n")
	f.Add("x y\n")
	f.Add("-1 5\n")
	f.Add("9999999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		edges, n, origIDs, err := ReadEdgeList(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		if len(origIDs) != n {
			t.Fatalf("%d ids for %d vertices", len(origIDs), n)
		}
		for _, e := range edges {
			if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
				t.Fatalf("edge %v outside compacted range [0,%d)", e, n)
			}
		}
		// Accepted edge lists must always build.
		if _, err := Build(n, edges, BuildOptions{Symmetrize: true}); err != nil {
			t.Fatalf("accepted edge list fails to build: %v", err)
		}
	})
}
