package graph

import "sort"

// Adjacency reordering — the "vertices rearrangement" optimization
// family of Chhugani et al. (IPDPS'12), which the paper cites in its
// related work (§VI). Bottom-up BFS scans each unvisited vertex's
// adjacency list in storage order and stops at the first frontier
// member; since high-degree vertices are discovered early in
// direction-optimized traversals of scale-free graphs, placing them
// first in every adjacency list shortens the expected scan. The
// reordering preserves the vertex numbering and the edge set — only
// the within-list order changes — so traversal results are identical;
// only the bottom-up scan counts (and thus simulated times) improve.

// SortNeighborsByDegree reorders every adjacency list so higher-degree
// neighbors come first (ties by vertex id for determinism). Returns
// the receiver for chaining.
//
// Note HasEdge relies on sorted adjacency; after this reordering use
// HasEdgeUnsorted or keep a pristine copy for membership queries.
func (g *CSR) SortNeighborsByDegree() *CSR {
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool {
			di, dj := g.Degree(adj[i]), g.Degree(adj[j])
			if di != dj {
				return di > dj
			}
			return adj[i] < adj[j]
		})
	}
	return g
}

// SortNeighborsByID restores ascending adjacency order (the Build
// default), re-enabling binary-search HasEdge.
func (g *CSR) SortNeighborsByID() *CSR {
	g.sortAdjacency()
	return g
}

// HasEdgeUnsorted reports whether (u, v) exists by linear scan,
// correct regardless of adjacency ordering.
func (g *CSR) HasEdgeUnsorted(u, v int32) bool {
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph, useful before destructive
// reorderings.
func (g *CSR) Clone() *CSR {
	return &CSR{
		Offsets: append([]int64(nil), g.Offsets...),
		Adj:     append([]int32(nil), g.Adj...),
	}
}
