package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Plain-text edge-list support (the format SNAP and most public graph
// datasets use): one "u v" pair per line, '#' or '%' comment lines
// ignored. Vertex ids may be arbitrary non-negative integers; they are
// compacted to a dense [0, n) range and the mapping is returned so
// results can be translated back.

// ReadEdgeList parses a text edge list from r. It returns the edges
// with compacted vertex ids, the number of distinct vertices, and
// origIDs where origIDs[compact] = original id.
func ReadEdgeList(r io.Reader) (edges []Edge, numVertices int, origIDs []int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	compact := make(map[int64]int32)
	lookup := func(orig int64) int32 {
		if id, ok := compact[orig]; ok {
			return id
		}
		id := int32(len(origIDs))
		compact[orig] = id
		origIDs = append(origIDs, orig)
		return id
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, 0, nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, 0, nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		edges = append(edges, Edge{From: lookup(u), To: lookup(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return edges, len(origIDs), origIDs, nil
}

// LoadEdgeList reads a text edge list file and builds a symmetrized,
// deduplicated CSR graph. Returns the graph and the compact->original
// vertex id mapping.
func LoadEdgeList(path string) (*CSR, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	edges, n, origIDs, err := ReadEdgeList(f)
	if err != nil {
		return nil, nil, err
	}
	g, err := Build(n, edges, BuildOptions{Symmetrize: true})
	if err != nil {
		return nil, nil, err
	}
	return g, origIDs, nil
}

// WriteEdgeList writes the graph as a text edge list, each undirected
// edge once (u <= v), with a header comment.
func (g *CSR) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# crossbfs edge list: %d vertices, %d directed entries\n",
		g.NumVertices(), g.NumEdges())
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u <= v {
				fmt.Fprintf(bw, "%d\t%d\n", u, v)
			}
		}
	}
	return bw.Flush()
}
