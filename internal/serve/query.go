package serve

import (
	"context"
	"fmt"
	"time"

	"crossbfs/internal/bfs"
	"crossbfs/internal/obs"
)

// Query kinds (the "kind" field of POST /query).
const (
	// KindReach answers "is target reachable from source, and at what
	// distance" — the OLTP point lookup.
	KindReach = "reach"
	// KindPath returns the BFS tree path source → target.
	KindPath = "path"
	// KindKHop returns the per-level discovery counts out to k hops —
	// the neighborhood-size sweep.
	KindKHop = "khop"
	// KindMulti runs one traversal per source and summarizes each —
	// the OLAP batch shape (bfs.RunMany under one request).
	KindMulti = "multi"
)

// maxMultiSources bounds one multi query's batch so a single request
// cannot monopolize the server (admission counts requests, not roots).
const maxMultiSources = 64

// Query is the POST /query request body. Exactly one kind's operand
// set applies: Target for reach/path, K for khop, Sources for multi.
type Query struct {
	// Graph names the resident graph; may be empty when the server
	// holds exactly one.
	Graph string `json:"graph,omitempty"`
	Kind  string `json:"kind"`
	// Source is the traversal root (reach, path, khop).
	Source int32 `json:"source"`
	// Target is the vertex asked about (reach, path).
	Target int32 `json:"target,omitempty"`
	// K bounds the hop sweep (khop); 0 means the graph's full depth.
	K int32 `json:"k,omitempty"`
	// Sources are the multi-query roots.
	Sources []int32 `json:"sources,omitempty"`
	// DeadlineMS is the per-request deadline in milliseconds; 0 selects
	// the server default, values above the server cap are clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SourceResult is one root's summary inside a multi response.
type SourceResult struct {
	Source  int32 `json:"source"`
	Visited int64 `json:"visited"`
	Depth   int32 `json:"depth"`
	Levels  int32 `json:"levels"`
}

// Response is the POST /query success body. Kind-independent fields
// always appear; the rest are populated per kind.
type Response struct {
	Graph string `json:"graph"`
	Kind  string `json:"kind"`
	// Engine is the kernel the planner ran, e.g. "hybrid(64,64)".
	Engine string `json:"engine"`
	// TraversalID keys this query's events in the flight recorder, so
	// a slow query's trace can be fished out of /debug/flight (multi
	// queries get per-root IDs from the dispatcher and report 0 here).
	TraversalID uint64 `json:"traversal_id,omitempty"`
	// ElapsedUS is the service time: admission wait plus traversal plus
	// result shaping, in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`

	// reach and path.
	Reachable *bool `json:"reachable,omitempty"`
	// Distance is the BFS level of the target (reach, path; -1 when
	// unreachable).
	Distance int32 `json:"distance,omitempty"`
	// Path is the BFS-tree path source → target (path kind).
	Path []int32 `json:"path,omitempty"`

	// khop.
	// LevelCounts[i] is the number of vertices first discovered at
	// level i (LevelCounts[0] is 1, the source), truncated at K.
	LevelCounts []int64 `json:"level_counts,omitempty"`
	// WithinK is the number of vertices within K hops of the source.
	WithinK int64 `json:"within_k,omitempty"`

	// multi.
	Results []SourceResult `json:"results,omitempty"`
}

// validate normalizes the query against the target graph and reports
// the first problem as a client error.
func (q *Query) validate(n int) *Error {
	checkVertex := func(label string, v int32) *Error {
		if v < 0 || int(v) >= n {
			return badRequest(fmt.Sprintf("%s %d out of range [0,%d)", label, v, n))
		}
		return nil
	}
	switch q.Kind {
	case KindReach, KindPath:
		if err := checkVertex("source", q.Source); err != nil {
			return err
		}
		return checkVertex("target", q.Target)
	case KindKHop:
		if q.K < 0 {
			return badRequest(fmt.Sprintf("k must be >= 0, got %d", q.K))
		}
		return checkVertex("source", q.Source)
	case KindMulti:
		if len(q.Sources) == 0 {
			return badRequest("multi query needs at least one source")
		}
		if len(q.Sources) > maxMultiSources {
			return badRequest(fmt.Sprintf("multi query carries %d sources, cap is %d", len(q.Sources), maxMultiSources))
		}
		for _, src := range q.Sources {
			if err := checkVertex("source", src); err != nil {
				return err
			}
		}
		return nil
	case "":
		return badRequest(`query has no "kind" (reach, path, khop, multi)`)
	default:
		return badRequest(fmt.Sprintf("unknown query kind %q (reach, path, khop, multi)", q.Kind))
	}
}

// Query executes one query end to end: graph lookup, validation,
// deadline, admission, workspace lease, traversal, result shaping.
// It is the transport-independent core the HTTP handler wraps, so the
// whole contract is testable without sockets. The returned *Error
// carries the HTTP status; per the faulterr boundary contract every
// error leaving here is typed.
//
//lint:boundary
func (s *Server) Query(ctx context.Context, q Query) (*Response, *Error) {
	started := time.Now()
	s.stats.requests.Add(1)
	s.stats.observeKind(q.Kind)
	resp, err := s.query(ctx, q, started)
	elapsed := time.Since(started).Microseconds()
	if err != nil {
		s.stats.observeOutcome(q.Kind, err.Status, elapsed)
		return nil, err
	}
	resp.ElapsedUS = elapsed
	s.stats.observeOutcome(q.Kind, 200, elapsed)
	return resp, nil
}

func (s *Server) query(ctx context.Context, q Query, started time.Time) (*Response, *Error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.inflight.Done()

	sg, serr := s.lookup(q.Graph)
	if serr != nil {
		return nil, serr
	}
	if serr := q.validate(sg.g.NumVertices()); serr != nil {
		return nil, serr
	}
	if i := kindIndex(q.Kind); i >= 0 {
		sg.queries[i].Inc()
	}

	ctx, cancel := context.WithDeadline(ctx, started.Add(s.deadlineFor(q.DeadlineMS)))
	defer cancel()

	if serr := s.gate.enter(ctx); serr != nil {
		return nil, serr
	}
	defer s.gate.leave()

	resp := &Response{Graph: sg.info.Name, Kind: q.Kind, Engine: sg.engine.Name()}
	if q.Kind == KindMulti {
		if serr := s.runMulti(ctx, sg, q, resp); serr != nil {
			return nil, serr
		}
		return resp, nil
	}

	// Single-traversal kinds lease one workspace and stamp the
	// request's TraversalID over the engine's own draw, so the flight
	// recorder groups the traversal under the ID the response reports.
	id := obs.NextTraversalID()
	resp.TraversalID = id
	rec := obs.WithTraversalID(id, sg.rec)
	ws := s.pool.Get(sg.g.NumVertices())
	defer s.pool.Put(ws)
	r, err := sg.engine.RunObserved(ctx, sg.g, q.Source, ws, rec)
	if err != nil {
		return nil, runError(err)
	}
	switch q.Kind {
	case KindReach:
		shapeReach(r, q.Target, resp)
	case KindPath:
		if serr := shapePath(r, q.Source, q.Target, resp); serr != nil {
			return nil, serr
		}
	case KindKHop:
		shapeKHop(r, q.K, resp)
	}
	return resp, nil
}

// runMulti executes the batch kinds through the RunMany dispatcher:
// per-root workspaces from the server pool, per-root TraversalIDs (so
// sampling and flight grouping see each root as one unit), sequential
// roots — the request already holds exactly one admission slot, and
// fanning a batch across slots it never acquired would let one OLAP
// query starve the OLTP mix.
func (s *Server) runMulti(ctx context.Context, sg *servedGraph, q Query, resp *Response) *Error {
	resp.Results = make([]SourceResult, 0, len(q.Sources))
	opts := bfs.ManyOptions{
		Engine:      sg.engine,
		Concurrency: 1,
		Pool:        s.pool,
		Recorder:    sg.rec,
	}
	err := bfs.RunManyFuncContext(ctx, sg.g, q.Sources, opts, func(i int, root int32, r *bfs.Result) error {
		resp.Results = append(resp.Results, SourceResult{
			Source:  root,
			Visited: r.VisitedCount,
			Depth:   r.Depth(),
			Levels:  int32(r.NumLevels()),
		})
		return nil
	})
	if err != nil {
		return runError(err)
	}
	return nil
}

// shapeReach fills the reach response from a finished traversal.
func shapeReach(r *bfs.Result, target int32, resp *Response) {
	reachable := r.Level[target] != bfs.NotVisited
	resp.Reachable = &reachable
	resp.Distance = r.Level[target]
}

// shapePath walks the BFS tree from target back to source. The walk
// is bounded by the target's level, so a corrupt parent map cannot
// loop; hitting one is an internal error, not a client mistake.
func shapePath(r *bfs.Result, source, target int32, resp *Response) *Error {
	shapeReach(r, target, resp)
	if r.Level[target] == bfs.NotVisited {
		return nil
	}
	hops := int(r.Level[target])
	path := make([]int32, hops+1)
	v := target
	for i := hops; i > 0; i-- {
		path[i] = v
		v = r.Parent[v]
	}
	path[0] = v
	if v != source {
		return &Error{
			Status: 500, Code: "internal",
			Message: fmt.Sprintf("parent walk from %d did not reach source %d", target, source),
		}
	}
	resp.Path = path
	return nil
}

// shapeKHop fills the per-level discovery histogram out to k hops
// from the traversal's level map. k == 0 reports the full depth.
func shapeKHop(r *bfs.Result, k int32, resp *Response) {
	depth := r.Depth()
	if k == 0 || k > depth {
		k = depth
	}
	counts := make([]int64, k+1)
	var within int64
	for _, l := range r.Level {
		if l == bfs.NotVisited {
			continue
		}
		if l <= k {
			counts[l]++
			within++
		}
	}
	resp.LevelCounts = counts
	resp.WithinK = within
}
