package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"crossbfs/internal/bfs"
)

// Error is the typed error the serve layer hands back to clients: an
// HTTP status, a stable machine-readable code, and a human message.
// Handlers encode it as the {"error": {...}} JSON body; the faulterr
// contract (LINTING.md) is satisfied by construction — every error
// crossing the client boundary is a *Error, never a bare fmt.Errorf,
// so callers (and bfsload) switch on Code instead of string-matching.
type Error struct {
	// Status is the HTTP status the handler responds with.
	Status int `json:"-"`
	// Code is the stable identifier: bad_request, unknown_graph,
	// queue_full, deadline, canceled, shutting_down, internal.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// err is the wrapped cause (ctx errors, *bfs.PanicError), kept so
	// errors.Is/As see through the boundary type.
	err error
}

func (e *Error) Error() string {
	if e.err != nil {
		return fmt.Sprintf("serve: %s: %s: %v", e.Code, e.Message, e.err)
	}
	return fmt.Sprintf("serve: %s: %s", e.Code, e.Message)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.err }

func badRequest(msg string) *Error {
	return &Error{Status: http.StatusBadRequest, Code: "bad_request", Message: msg}
}

func unknownGraph(name string) *Error {
	return &Error{
		Status:  http.StatusNotFound,
		Code:    "unknown_graph",
		Message: fmt.Sprintf("no graph %q is loaded (GET /graphs lists them)", name),
	}
}

func queueFull() *Error {
	return &Error{
		Status:  http.StatusTooManyRequests,
		Code:    "queue_full",
		Message: "request queue is full; retry after the hinted delay",
	}
}

func shuttingDown() *Error {
	return &Error{
		Status:  http.StatusServiceUnavailable,
		Code:    "shutting_down",
		Message: "server is draining; no new queries are admitted",
	}
}

// runError classifies an engine error for the client: context
// expiry maps to 504 (the request-level deadline did its job),
// cancellation to 499-style 503, contained kernel panics and anything
// else to 500. The cause stays wrapped for server-side logs.
func runError(err error) *Error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{
			Status: http.StatusGatewayTimeout, Code: "deadline",
			Message: "traversal exceeded the request deadline", err: err,
		}
	case errors.Is(err, context.Canceled):
		return &Error{
			Status: http.StatusServiceUnavailable, Code: "canceled",
			Message: "request was canceled before the traversal finished", err: err,
		}
	default:
		var pe *bfs.PanicError
		if errors.As(err, &pe) {
			return &Error{
				Status: http.StatusInternalServerError, Code: "internal",
				Message: "traversal panicked; see server log", err: err,
			}
		}
		return &Error{
			Status: http.StatusInternalServerError, Code: "internal",
			Message: err.Error(), err: err,
		}
	}
}
