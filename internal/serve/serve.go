package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crossbfs/internal/bfs"
	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
)

// Defaults for Config fields left zero.
const (
	DefaultMaxConcurrent = 0 // 0 resolves to GOMAXPROCS at NewServer
	DefaultQueueDepth    = 64
	DefaultDeadline      = 2 * time.Second
	DefaultMaxDeadline   = 30 * time.Second
	DefaultSampleK       = 8

	DefaultSLOPoll            = 10 * time.Second
	DefaultSLOCooldown        = 10 * time.Minute
	DefaultIncidentCPUProfile = time.Second
)

// Planner cutoffs: graphs below serialCutoff vertices run the serial
// kernel (parallel dispatch overhead dominates at that size — the same
// boundary the tuner's corpus shows), graphs at or above shardCutoff
// run the partitioned engine when the server is configured with ranks.
const (
	serialCutoff = 1 << 12
	shardCutoff  = 1 << 16
)

// Config tunes a Server. The zero value is serviceable: GOMAXPROCS
// execution slots, a 64-deep wait queue, a 2s default / 30s maximum
// per-request deadline, 1-in-8 trace sampling into the default-sized
// flight recorder, and the process-wide workspace pool.
type Config struct {
	// MaxConcurrent is the number of traversals executing at once; 0
	// selects GOMAXPROCS. Each in-flight traversal leases one workspace.
	MaxConcurrent int
	// QueueDepth bounds how many admitted requests may wait for an
	// execution slot; a request beyond it is rejected with 429
	// (ErrQueueFull) instead of queueing without bound. Negative
	// disables waiting entirely (slots only).
	QueueDepth int
	// DefaultDeadline applies when a query carries no deadline_ms;
	// MaxDeadline caps what a query may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Shards, when > 1, lets the planner pick the partitioned engine
	// (that many goroutine ranks) for graphs of shardCutoff vertices
	// or more.
	Shards int
	// SampleK keeps 1-in-K traversals (whole) in the flight recorder;
	// 1 keeps every traversal, 0 selects DefaultSampleK. Metrics are
	// never sampled.
	SampleK int
	// SampleSeed seeds the sampler's keep/drop hash.
	SampleSeed uint64
	// FlightKeep / FlightMaxEvents size the flight recorder ring
	// (<= 0 selects the obs defaults).
	FlightKeep      int
	FlightMaxEvents int
	// Recorder, when non-nil, receives every event the sampled sinks
	// see (after sampling) — the hook cmd/bfsd uses for -trace-stream.
	Recorder obs.Recorder
	// Pool supplies traversal workspaces; nil uses bfs.DefaultPool.
	Pool *bfs.WorkspacePool

	// Objectives are the serving SLOs (parse with ParseObjectives; the
	// selectors must come from that function's vocabulary). When any
	// are set, the server runs a burn-rate evaluator at SLOPoll
	// cadence and serves verdicts on /debug/slo.
	Objectives []obs.Objective
	// SLOPoll is the evaluator's tick interval; 0 selects
	// DefaultSLOPoll.
	SLOPoll time.Duration
	// SLOCooldown spaces breach captures: at most one incident bundle
	// per cooldown. 0 selects DefaultSLOCooldown.
	SLOCooldown time.Duration
	// IncidentDir is where breach captures land (one subdirectory per
	// incident: cpu.pprof, heap.pprof, flight.json, slo.json). Empty
	// disables capture — breaches still evaluate and gauge.
	IncidentDir string
	// IncidentCPUProfile is how long the breach capture profiles the
	// CPU; 0 selects DefaultIncidentCPUProfile.
	IncidentCPUProfile time.Duration
	// OnIncident, when non-nil, is called after each capture attempt
	// with the bundle directory and the capture error, if any (the
	// hook bfsd uses to log incidents).
	OnIncident func(dir string, v obs.Verdict, err error)
}

// GraphInfo describes one resident graph (the /graphs payload).
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	// Engine is the kernel the planner chose for this graph, e.g.
	// "hybrid(64,64)" or "sharded(4,hybrid(64,64))".
	Engine string `json:"engine"`
	// Origin records where the graph came from: an R-MAT spec or a
	// file path.
	Origin string `json:"origin,omitempty"`
}

// servedGraph pairs a resident CSR with the engine the planner chose
// for it at registration time, plus the graph's recorder chain: the
// server-wide chain extended with the engine-labeled registry recorder
// and the per-graph query counters, all interned at AddGraph.
type servedGraph struct {
	info    GraphInfo
	g       *graph.CSR
	engine  bfs.Engine
	rec     obs.Recorder
	queries [kindCount]*obs.Cell // crossbfs_graph_queries_total{graph,kind}
}

// Server is the daemon core: resident graphs, the admission gate, the
// workspace pool, and the telemetry spine. It is safe for concurrent
// use; cmd/bfsd mounts Server.Handler behind net/http.
type Server struct {
	cfg      Config
	metrics  *obs.Metrics
	registry *obs.Registry
	ring     *obs.Ring
	sampler  *obs.Sampler
	// rec is the per-traversal recorder chain: metrics always, the
	// flight ring (and Config.Recorder) behind the 1-in-K sampler.
	// Per-graph chains (servedGraph.rec) extend it with the
	// engine-labeled registry recorder.
	rec   obs.Recorder
	pool  *bfs.WorkspacePool
	gate  *gate
	stats *serveStats
	start time.Time

	// ready is the /readyz state: explicitly armed by the embedder
	// (bfsd, once every graph is loaded) and lowered at Close, so load
	// balancers stop routing before the listener goes away.
	ready atomic.Bool

	// SLO machinery (nil/zero when no objectives are configured).
	slo             *obs.SLO
	sloStop         chan struct{}
	sloDone         chan struct{}
	incidentCell    *obs.Cell
	profiling       atomic.Bool
	lastIncidentDir atomic.Value // string

	mu     sync.RWMutex
	graphs map[string]*servedGraph

	closeMu  sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

// NewServer builds an empty server; register graphs with AddGraph
// before serving queries.
func NewServer(cfg Config) *Server {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = DefaultDeadline
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = DefaultMaxDeadline
	}
	if cfg.DefaultDeadline > cfg.MaxDeadline {
		cfg.DefaultDeadline = cfg.MaxDeadline
	}
	if cfg.SampleK <= 0 {
		cfg.SampleK = DefaultSampleK
	}
	if cfg.Pool == nil {
		cfg.Pool = bfs.DefaultPool
	}
	if cfg.SLOPoll <= 0 {
		cfg.SLOPoll = DefaultSLOPoll
	}
	if cfg.SLOCooldown <= 0 {
		cfg.SLOCooldown = DefaultSLOCooldown
	}
	if cfg.IncidentCPUProfile <= 0 {
		cfg.IncidentCPUProfile = DefaultIncidentCPUProfile
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		metrics:  obs.NewMetrics(),
		registry: reg,
		ring:     obs.NewRing(cfg.FlightKeep, cfg.FlightMaxEvents),
		pool:     cfg.Pool,
		gate:     newGate(cfg.MaxConcurrent, cfg.QueueDepth),
		stats:    newServeStats(reg),
		graphs:   make(map[string]*servedGraph),
		start:    time.Now(),
	}
	s.lastIncidentDir.Store("")
	obs.RegisterRingGauges(reg, s.ring)
	sampled := obs.Recorder(s.ring)
	if cfg.Recorder != nil {
		sampled = obs.Multi(s.ring, cfg.Recorder)
	}
	s.sampler = obs.NewSampler(sampled, cfg.SampleK, cfg.SampleSeed)
	s.rec = obs.Multi(s.sampler, s.metrics)
	s.incidentCell = reg.Counter("crossbfs_incidents_total",
		"Incident bundles captured by the SLO breach hook.").With()
	if len(cfg.Objectives) > 0 {
		s.startSLO()
	}
	return s
}

// AddGraph registers g under name and plans its engine. Registering a
// duplicate name or a nil/empty graph is a configuration mistake and
// returns a *Error (callers surface it at startup, not to clients).
func (s *Server) AddGraph(name, origin string, g *graph.CSR) error {
	if name == "" {
		return badRequest("graph name must not be empty")
	}
	if g == nil || g.NumVertices() == 0 {
		return badRequest(fmt.Sprintf("graph %q is empty", name))
	}
	e, ranks := s.planEngine(g)
	rr := obs.NewRegistryRecorder(s.registry, e.Name())
	if ranks > 1 {
		rr = rr.WithRanks(ranks)
	}
	sg := &servedGraph{
		info: GraphInfo{
			Name:     name,
			Vertices: g.NumVertices(),
			Edges:    g.NumEdges(),
			Engine:   e.Name(),
			Origin:   origin,
		},
		g:      g,
		engine: e,
		rec:    obs.Multi(s.rec, rr),
	}
	qf := s.registry.Counter("crossbfs_graph_queries_total",
		"Queries reaching a resident graph, by graph and kind.", obs.LabelGraph, obs.LabelKind)
	for i, kind := range kindLabels {
		sg.queries[i] = qf.With(name, kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.graphs[name]; dup {
		return badRequest(fmt.Sprintf("graph %q already registered", name))
	}
	s.graphs[name] = sg
	return nil
}

// planEngine is the per-graph kernel planner, mirroring how bfsrun
// sizes kernels to graphs: the serial reference below serialCutoff
// vertices (parallel dispatch costs more than it buys there), the
// partitioned engine at shardCutoff and above when the server is
// configured with ranks, and the direction-optimizing hybrid at the
// repo-wide default (M, N) everywhere else.
// It also reports the rank count (1 for unsharded engines) so the
// graph's labeled recorder can intern per-rank exchange cells.
func (s *Server) planEngine(g *graph.CSR) (bfs.Engine, int) {
	n := g.NumVertices()
	switch {
	case n < serialCutoff:
		return bfs.SerialEngine(), 1
	case s.cfg.Shards > 1 && n >= shardCutoff:
		return bfs.NewShardedEngine(s.cfg.Shards, bfs.DefaultM, bfs.DefaultN), s.cfg.Shards
	default:
		return bfs.DefaultEngine(), 1
	}
}

// lookup resolves a query's graph: the named graph, or the sole
// registered graph when the query names none.
func (s *Server) lookup(name string) (*servedGraph, *Error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.graphs) == 1 {
			for _, sg := range s.graphs {
				return sg, nil
			}
		}
		return nil, badRequest(fmt.Sprintf("query names no graph and the server holds %d; set \"graph\"", len(s.graphs)))
	}
	sg, ok := s.graphs[name]
	if !ok {
		return nil, unknownGraph(name)
	}
	return sg, nil
}

// Graphs lists the resident graphs in name order.
func (s *Server) Graphs() []GraphInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]GraphInfo, 0, len(s.graphs))
	for _, sg := range s.graphs {
		infos = append(infos, sg.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Metrics exposes the server's always-on counter aggregator.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Registry exposes the dimensional metric families (the typed half of
// the /metrics page).
func (s *Server) Registry() *obs.Registry { return s.registry }

// SetReady arms or lowers the /readyz state. A fresh server reports
// not-ready; the embedder arms it once every graph is registered and
// the listener is up. Close lowers it again before draining.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether the server is accepting routed traffic.
func (s *Server) Ready() bool { return s.ready.Load() }

// SLOVerdicts returns the latest SLO evaluations (nil when no
// objectives are configured).
func (s *Server) SLOVerdicts() []obs.Verdict {
	if s.slo == nil {
		return nil
	}
	return s.slo.Verdicts()
}

// FlightRecorder exposes the sampled flight-recorder ring (the
// /debug/flight payload source).
func (s *Server) FlightRecorder() *obs.Ring { return s.ring }

// SamplerStats reports the sampler's seen/kept counters.
func (s *Server) SamplerStats() (seen, kept uint64) {
	return s.sampler.Seen(), s.sampler.Kept()
}

// begin admits one request into the in-flight set; it fails once Close
// has started so shutdown drains deterministically.
func (s *Server) begin() *Error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return shuttingDown()
	}
	s.inflight.Add(1)
	return nil
}

// Close stops admitting queries and waits for the in-flight ones to
// finish. It does not touch the HTTP listener — cmd/bfsd shuts the
// net/http server down first, then Closes the core.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	s.ready.Store(false)
	if s.sloStop != nil {
		close(s.sloStop)
		<-s.sloDone
	}
	s.inflight.Wait()
}

// deadlineFor clamps a query's requested deadline to the configured
// window: 0 selects the default, anything above MaxDeadline is capped.
func (s *Server) deadlineFor(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultDeadline
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxDeadline {
		return s.cfg.MaxDeadline
	}
	return d
}
