package serve

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync/atomic"

	"crossbfs/internal/obs"
)

// gate is the admission controller: maxConcurrent execution slots plus
// a bounded count of waiters. The fast path — a free slot, no queueing
// — is one channel receive and two atomic adds; the overload path
// rejects instead of queueing without bound, which is what keeps p999
// finite when offered load exceeds capacity (the open-loop collapse
// bfsload is built to demonstrate).
type gate struct {
	slots chan struct{}
	depth int64
	// queued is the current number of waiters; running mirrors the
	// occupied slots for the /healthz gauge.
	queued  atomic.Int64
	running atomic.Int64
}

func newGate(maxConcurrent, depth int) *gate {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	g := &gate{slots: make(chan struct{}, maxConcurrent), depth: int64(depth)}
	for i := 0; i < maxConcurrent; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// enter acquires an execution slot, waiting in the bounded queue if
// none is free. It returns queueFull() when the queue is at depth and
// a runError when the context expires while waiting — a request that
// spends its whole deadline queued is a 504 like any other timeout.
// The admitted path is allocation-free (one channel receive, two
// atomic adds); only rejections construct a typed error, which is why
// this is deliberately not a //lint:hot root.
func (g *gate) enter(ctx context.Context) *Error {
	select {
	case <-g.slots:
		g.running.Add(1)
		return nil
	default:
	}
	if g.queued.Add(1) > g.depth {
		g.queued.Add(-1)
		return queueFull()
	}
	defer g.queued.Add(-1)
	select {
	case <-g.slots:
		g.running.Add(1)
		return nil
	case <-ctx.Done():
		return runError(ctx.Err())
	}
}

// leave releases the slot taken by a successful enter.
func (g *gate) leave() {
	g.running.Add(-1)
	g.slots <- struct{}{}
}

// Admission-outcome reason labels, in the order serveStats interns
// their cells. The vocabulary mirrors the legacy counters plus the
// *Error codes: "unavailable" covers 503s (shutting_down, canceled),
// "deadline" the 504s, "queue_full" the 429s.
const (
	reasonOK = iota
	reasonQueueFull
	reasonDeadline
	reasonUnavailable
	reasonClientError
	reasonServerError
	reasonCount
)

var reasonLabels = [reasonCount]string{
	reasonOK:          "ok",
	reasonQueueFull:   "queue_full",
	reasonDeadline:    "deadline",
	reasonUnavailable: "unavailable",
	reasonClientError: "client_error",
	reasonServerError: "server_error",
}

// Query-kind indices for the pre-interned latency cells.
const (
	kindIdxReach = iota
	kindIdxPath
	kindIdxKHop
	kindIdxMulti
	kindCount
)

var kindLabels = [kindCount]string{KindReach, KindPath, KindKHop, KindMulti}

// kindIndex maps a query kind to its cell index, -1 for unknown kinds
// (which never produce OK responses, so they never observe latency).
func kindIndex(kind string) int {
	switch kind {
	case KindReach:
		return kindIdxReach
	case KindPath:
		return kindIdxPath
	case KindKHop:
		return kindIdxKHop
	case KindMulti:
		return kindIdxMulti
	default:
		return -1
	}
}

// classOf buckets kinds into the workload classes bfsload drives:
// point lookups are OLTP, neighborhood sweeps and batches OLAP.
func classOf(kind string) string {
	switch kind {
	case KindReach, KindPath:
		return "oltp"
	default:
		return "olap"
	}
}

// serveStats aggregates the request-level counters the obs.Metrics
// event taxonomy does not cover: admission outcomes, per-kind request
// counts, and service-time latency. The legacy atomics render the flat
// crossbfs_serve_* page byte-identically; the labeled cells carry the
// same stream into the dimensional families (per-class/kind latency
// histograms, outcomes by reason) the exposition page and the SLO
// engine read. Both are pre-resolved, so the hot path stays a handful
// of atomic adds per request.
type serveStats struct {
	requests  atomic.Int64
	ok        atomic.Int64
	clientErr atomic.Int64 // 4xx except 429
	rejected  atomic.Int64 // 429 queue_full
	deadline  atomic.Int64 // 504
	serverErr atomic.Int64 // 5xx

	reach atomic.Int64
	path  atomic.Int64
	khop  atomic.Int64
	multi atomic.Int64

	// latencyHist[b] counts OK responses whose service time had
	// bit-length b in microseconds (bucket b covers [2^(b-1), 2^b)).
	latencyHist [48]atomic.Int64

	// Labeled twins, interned at construction.
	latency  [kindCount]*obs.Cell   // crossbfs_query_latency_seconds{class,kind}
	outcomes [reasonCount]*obs.Cell // crossbfs_admission_outcomes_total{reason}
}

// newServeStats interns the labeled cells on reg. The latency bounds
// are the power-of-two microsecond set (expressed in seconds), bucket
// for bucket the shape of the legacy latencyHist — which is what lets
// client- and server-side quantiles agree to within one bucket.
func newServeStats(reg *obs.Registry) *serveStats {
	t := &serveStats{}
	lat := reg.Histogram("crossbfs_query_latency_seconds",
		"Query service time in seconds (admission wait + traversal + shaping), by workload class and kind.",
		obs.LatencyBuckets(), obs.LabelClass, obs.LabelKind)
	for i, kind := range kindLabels {
		t.latency[i] = lat.With(classOf(kind), kind)
	}
	out := reg.Counter("crossbfs_admission_outcomes_total",
		"Completed requests by admission outcome.", obs.LabelReason)
	for i, reason := range reasonLabels {
		t.outcomes[i] = out.With(reason)
	}
	return t
}

func (t *serveStats) observeKind(kind string) {
	switch kind {
	case KindReach:
		t.reach.Add(1)
	case KindPath:
		t.path.Add(1)
	case KindKHop:
		t.khop.Add(1)
	case KindMulti:
		t.multi.Add(1)
	}
}

// reasonFor maps an HTTP status to its outcome label index.
func reasonFor(status int) int {
	switch {
	case status < 300:
		return reasonOK
	case status == 429:
		return reasonQueueFull
	case status == 504:
		return reasonDeadline
	case status == 503:
		return reasonUnavailable
	case status >= 500:
		return reasonServerError
	default:
		return reasonClientError
	}
}

func (t *serveStats) observeOutcome(kind string, status int, elapsedUS int64) {
	switch {
	case status < 300:
		t.ok.Add(1)
		t.latencyHist[histBucket(elapsedUS)].Add(1)
		if i := kindIndex(kind); i >= 0 {
			t.latency[i].Observe(float64(elapsedUS) * 1e-6)
		}
	case status == 429:
		t.rejected.Add(1)
	case status == 504:
		t.deadline.Add(1)
	case status >= 500:
		t.serverErr.Add(1)
	default:
		t.clientErr.Add(1)
	}
	t.outcomes[reasonFor(status)].Inc()
}

// histBucket maps a non-negative value to its power-of-two bucket,
// clamped to the histogram range (the same shape obs.Metrics uses).
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 0
	for x := uint64(v); x > 0; x >>= 1 {
		b++
	}
	if b >= 48 {
		b = 47
	}
	return b
}

// Snapshot returns the serve-layer counters keyed by stable names.
func (t *serveStats) Snapshot(g *gate) map[string]int64 {
	s := map[string]int64{
		"serve_requests_total":      t.requests.Load(),
		"serve_ok_total":            t.ok.Load(),
		"serve_client_errors_total": t.clientErr.Load(),
		"serve_rejected_total":      t.rejected.Load(),
		"serve_deadline_total":      t.deadline.Load(),
		"serve_server_errors_total": t.serverErr.Load(),
		"serve_reach_total":         t.reach.Load(),
		"serve_path_total":          t.path.Load(),
		"serve_khop_total":          t.khop.Load(),
		"serve_multi_total":         t.multi.Load(),
		"serve_inflight":            g.running.Load(),
		"serve_queued":              g.queued.Load(),
		"serve_slots":               int64(cap(g.slots)),
		"serve_queue_depth":         g.depth,
	}
	for i := range t.latencyHist {
		if v := t.latencyHist[i].Load(); v > 0 {
			s[fmt.Sprintf("serve_latency_us_bucket_2e%02d", i)] = v
		}
	}
	return s
}

// WriteText appends the serve counters to a /metrics scrape in the
// same "crossbfs_<name> <value>" shape obs.Metrics.WriteText uses.
func (t *serveStats) WriteText(w io.Writer, g *gate) error {
	s := t.Snapshot(g)
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "crossbfs_%s %d\n", k, s[k]); err != nil {
			return err
		}
	}
	return nil
}
