package serve

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
)

// gate is the admission controller: maxConcurrent execution slots plus
// a bounded count of waiters. The fast path — a free slot, no queueing
// — is one channel receive and two atomic adds; the overload path
// rejects instead of queueing without bound, which is what keeps p999
// finite when offered load exceeds capacity (the open-loop collapse
// bfsload is built to demonstrate).
type gate struct {
	slots chan struct{}
	depth int64
	// queued is the current number of waiters; running mirrors the
	// occupied slots for the /healthz gauge.
	queued  atomic.Int64
	running atomic.Int64
}

func newGate(maxConcurrent, depth int) *gate {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	g := &gate{slots: make(chan struct{}, maxConcurrent), depth: int64(depth)}
	for i := 0; i < maxConcurrent; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// enter acquires an execution slot, waiting in the bounded queue if
// none is free. It returns queueFull() when the queue is at depth and
// a runError when the context expires while waiting — a request that
// spends its whole deadline queued is a 504 like any other timeout.
// The admitted path is allocation-free (one channel receive, two
// atomic adds); only rejections construct a typed error, which is why
// this is deliberately not a //lint:hot root.
func (g *gate) enter(ctx context.Context) *Error {
	select {
	case <-g.slots:
		g.running.Add(1)
		return nil
	default:
	}
	if g.queued.Add(1) > g.depth {
		g.queued.Add(-1)
		return queueFull()
	}
	defer g.queued.Add(-1)
	select {
	case <-g.slots:
		g.running.Add(1)
		return nil
	case <-ctx.Done():
		return runError(ctx.Err())
	}
}

// leave releases the slot taken by a successful enter.
func (g *gate) leave() {
	g.running.Add(-1)
	g.slots <- struct{}{}
}

// serveStats aggregates the request-level counters the obs.Metrics
// event taxonomy does not cover: admission outcomes, per-kind request
// counts, and a power-of-two latency histogram. Everything is an
// atomic, so the hot path pays two adds per request.
type serveStats struct {
	requests  atomic.Int64
	ok        atomic.Int64
	clientErr atomic.Int64 // 4xx except 429
	rejected  atomic.Int64 // 429 queue_full
	deadline  atomic.Int64 // 504
	serverErr atomic.Int64 // 5xx

	reach atomic.Int64
	path  atomic.Int64
	khop  atomic.Int64
	multi atomic.Int64

	// latencyHist[b] counts OK responses whose service time had
	// bit-length b in microseconds (bucket b covers [2^(b-1), 2^b)).
	latencyHist [48]atomic.Int64
}

func (t *serveStats) observeKind(kind string) {
	switch kind {
	case KindReach:
		t.reach.Add(1)
	case KindPath:
		t.path.Add(1)
	case KindKHop:
		t.khop.Add(1)
	case KindMulti:
		t.multi.Add(1)
	}
}

func (t *serveStats) observeOutcome(status int, elapsedUS int64) {
	switch {
	case status < 300:
		t.ok.Add(1)
		t.latencyHist[histBucket(elapsedUS)].Add(1)
	case status == 429:
		t.rejected.Add(1)
	case status == 504:
		t.deadline.Add(1)
	case status >= 500:
		t.serverErr.Add(1)
	default:
		t.clientErr.Add(1)
	}
}

// histBucket maps a non-negative value to its power-of-two bucket,
// clamped to the histogram range (the same shape obs.Metrics uses).
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 0
	for x := uint64(v); x > 0; x >>= 1 {
		b++
	}
	if b >= 48 {
		b = 47
	}
	return b
}

// Snapshot returns the serve-layer counters keyed by stable names.
func (t *serveStats) Snapshot(g *gate) map[string]int64 {
	s := map[string]int64{
		"serve_requests_total":      t.requests.Load(),
		"serve_ok_total":            t.ok.Load(),
		"serve_client_errors_total": t.clientErr.Load(),
		"serve_rejected_total":      t.rejected.Load(),
		"serve_deadline_total":      t.deadline.Load(),
		"serve_server_errors_total": t.serverErr.Load(),
		"serve_reach_total":         t.reach.Load(),
		"serve_path_total":          t.path.Load(),
		"serve_khop_total":          t.khop.Load(),
		"serve_multi_total":         t.multi.Load(),
		"serve_inflight":            g.running.Load(),
		"serve_queued":              g.queued.Load(),
		"serve_slots":               int64(cap(g.slots)),
		"serve_queue_depth":         g.depth,
	}
	for i := range t.latencyHist {
		if v := t.latencyHist[i].Load(); v > 0 {
			s[fmt.Sprintf("serve_latency_us_bucket_2e%02d", i)] = v
		}
	}
	return s
}

// WriteText appends the serve counters to a /metrics scrape in the
// same "crossbfs_<name> <value>" shape obs.Metrics.WriteText uses.
func (t *serveStats) WriteText(w io.Writer, g *gate) error {
	s := t.Snapshot(g)
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "crossbfs_%s %d\n", k, s[k]); err != nil {
			return err
		}
	}
	return nil
}
