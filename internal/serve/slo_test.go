package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crossbfs/internal/obs"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives([]string{
		"oltp p99 < 2ms over 5m",
		"khop p95 < 50ms over 10m",
		"error ratio < 0.1% over 30m",
	})
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if len(objs) != 3 {
		t.Fatalf("parsed %d objectives, want 3", len(objs))
	}
	if objs[0].Selector != "oltp" || objs[2].Kind != obs.ErrorRatioObjective {
		t.Errorf("objectives = %+v", objs)
	}
}

func TestParseObjectivesRejectsUnknownSelector(t *testing.T) {
	for _, spec := range []string{
		"frontend p99 < 2ms over 5m", // not a class or kind
		"oltp p99 < 2ms",             // grammar error surfaces too
	} {
		if _, err := ParseObjectives([]string{spec}); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", spec)
		}
	}
}

// TestReadyzLifecycle pins the liveness/readiness split: /healthz is
// 200 for the server's whole life, /readyz only between SetReady(true)
// and Close.
func TestReadyzLifecycle(t *testing.T) {
	s := newTestServer(t, Config{}, pathGraph(t, 8))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before arming = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz before arming = %d, want 200", got)
	}
	s.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after arming = %d, want 200", got)
	}
	s.Close()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz after Close = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz after Close = %d, want 200 (liveness outlasts drain)", got)
	}
}

// TestMetricsExpositionValid scrapes a live /metrics page and runs it
// through the exposition validator: the typed families up front must be
// well-formed, and the legacy flat lines after them must parse as
// untyped samples without colliding with any family.
func TestMetricsExpositionValid(t *testing.T) {
	g := mustRMAT(t, 9, 8, 3)
	s := newTestServer(t, Config{}, g)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	src := firstSource(t, g)

	for _, body := range []string{
		fmt.Sprintf(`{"kind":"reach","source":%d,"target":%d}`, src, src),
		fmt.Sprintf(`{"kind":"khop","source":%d,"k":2}`, src),
		`{"kind":"nope","source":0}`,
	} {
		postQuery(t, ts, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	stats, err := obs.ValidateExposition(strings.NewReader(string(page)))
	if err != nil {
		t.Fatalf("/metrics failed exposition validation: %v\npage:\n%s", err, page)
	}
	if stats.Families == 0 || stats.Samples == 0 {
		t.Fatalf("validator saw nothing: %+v", stats)
	}
	for _, want := range []string{
		`crossbfs_query_latency_seconds_bucket{class="oltp",kind="reach",le="+Inf"}`,
		`crossbfs_admission_outcomes_total{reason="ok"}`,
		`crossbfs_admission_outcomes_total{reason="client_error"}`,
		`crossbfs_graph_queries_total{graph="g",kind="reach"} 1`,
		"crossbfs_flight_retained",
		"# TYPE crossbfs_query_latency_seconds histogram",
		// Legacy flat pages must survive verbatim after the families.
		"crossbfs_serve_requests_total 3",
		"crossbfs_traversals_total",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSLOBreachCapturesIncidentBundle drives an impossible objective
// (p99 under a microsecond) against real queries, and expects exactly
// one incident bundle under the cooldown: slo.json, heap.pprof,
// cpu.pprof, flight.json.
func TestSLOBreachCapturesIncidentBundle(t *testing.T) {
	objs, err := ParseObjectives([]string{"total p99 < 1us over 2s"})
	if err != nil {
		t.Fatal(err)
	}
	incidents := make(chan string, 4)
	dir := t.TempDir()
	g := mustRMAT(t, 9, 8, 3)
	s := newTestServer(t, Config{
		Objectives:         objs,
		SLOPoll:            10 * time.Millisecond,
		SLOCooldown:        time.Hour,
		IncidentDir:        dir,
		IncidentCPUProfile: 20 * time.Millisecond,
		OnIncident: func(d string, v obs.Verdict, err error) {
			if err != nil {
				t.Errorf("incident capture: %v", err)
			}
			incidents <- d
		},
	}, g)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	src := firstSource(t, g)

	// Spread queries across poll ticks so the burn windows see traffic
	// deltas, until the breach hook fires.
	var captured string
	deadline := time.After(10 * time.Second)
	body := fmt.Sprintf(`{"kind":"reach","source":%d,"target":%d}`, src, src)
loop:
	for {
		postQuery(t, ts, body)
		select {
		case captured = <-incidents:
			break loop
		case <-deadline:
			t.Fatalf("no incident after 10s; verdicts: %+v", s.SLOVerdicts())
		case <-time.After(5 * time.Millisecond):
		}
	}

	for _, name := range []string{"slo.json", "heap.pprof", "cpu.pprof", "flight.json"} {
		st, err := os.Stat(filepath.Join(captured, name))
		if err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("bundle artifact %s is empty", name)
		}
	}
	var man struct {
		Breach   obs.Verdict   `json:"breach"`
		Verdicts []obs.Verdict `json:"verdicts"`
	}
	raw, err := os.ReadFile(filepath.Join(captured, "slo.json"))
	if err != nil {
		t.Fatalf("slo.json: %v", err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatalf("slo.json does not parse: %v", err)
	}
	if !man.Breach.Breaching || man.Breach.Objective != "total p99 < 1us over 2s" {
		t.Errorf("manifest breach = %+v", man.Breach)
	}

	// The hour-long cooldown means exactly one bundle no matter how long
	// the breach persists.
	time.Sleep(50 * time.Millisecond)
	select {
	case extra := <-incidents:
		t.Fatalf("second incident %s under cooldown", extra)
	default:
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("incident dir holds %d entries, want 1: %v", len(entries), entries)
	}

	// /debug/slo reports the breach and points at the bundle.
	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Objectives      []obs.Verdict `json:"objectives"`
		Incidents       int64         `json:"incidents"`
		LastIncidentDir string        `json:"last_incident_dir"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("/debug/slo: %v", err)
	}
	if len(page.Objectives) != 1 || page.Incidents != 1 || page.LastIncidentDir != captured {
		t.Errorf("/debug/slo = %+v, want 1 objective, 1 incident at %s", page, captured)
	}
}

// TestSLOWithoutObjectivesIsQuiet pins the zero-config path: no
// goroutine, empty /debug/slo, clean Close.
func TestSLOWithoutObjectivesIsQuiet(t *testing.T) {
	s := newTestServer(t, Config{}, pathGraph(t, 8))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if v := s.SLOVerdicts(); len(v) != 0 {
		t.Errorf("verdicts without objectives: %+v", v)
	}
	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Objectives []obs.Verdict `json:"objectives"`
		Incidents  int64         `json:"incidents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Objectives) != 0 || page.Incidents != 0 {
		t.Errorf("/debug/slo = %+v, want empty", page)
	}
	s.Close()
}
