package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"crossbfs/internal/bfs"
	"crossbfs/internal/obs"
)

// postQuery sends one query to a test server and decodes the envelope.
func postQuery(t *testing.T, ts *httptest.Server, body string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(data, &fields); err != nil {
		t.Fatalf("response is not JSON (%v): %s", err, data)
	}
	return resp.StatusCode, fields
}

func errorCode(t *testing.T, fields map[string]json.RawMessage) string {
	t.Helper()
	var env struct {
		Code string `json:"code"`
	}
	if raw, ok := fields["error"]; ok {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("error envelope: %v", err)
		}
	}
	return env.Code
}

func TestHandlerTable(t *testing.T) {
	g := mustRMAT(t, 9, 8, 3)
	s := newTestServer(t, Config{DefaultDeadline: 50 * time.Millisecond}, g)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	src := firstSource(t, g)

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed JSON", `{"kind": "reach", `, 400, "bad_request"},
		{"wrong type", `{"kind": "reach", "source": "zero"}`, 400, "bad_request"},
		{"no kind", `{"source": 1}`, 400, "bad_request"},
		{"unknown kind", `{"kind": "dfs", "source": 1}`, 400, "bad_request"},
		{"unknown graph", `{"graph": "absent", "kind": "reach", "source": 1, "target": 2}`, 404, "unknown_graph"},
		{"vertex out of range", fmt.Sprintf(`{"kind": "reach", "source": %d, "target": 0}`, g.NumVertices()), 400, "bad_request"},
		{"ok reach", fmt.Sprintf(`{"kind": "reach", "source": %d, "target": 0}`, src), 200, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, fields := postQuery(t, ts, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (%v)", status, tc.status, fields)
			}
			if tc.code != "" {
				if code := errorCode(t, fields); code != tc.code {
					t.Errorf("error code = %q, want %q", code, tc.code)
				}
			}
		})
	}

	t.Run("GET /query is rejected", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/query")
		if err != nil {
			t.Fatalf("GET /query: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /query = %d, want 405", resp.StatusCode)
		}
	})
}

func TestHandlerDeadlineIs504(t *testing.T) {
	g := pathGraph(t, 64)
	s := newTestServer(t, Config{DefaultDeadline: 20 * time.Millisecond}, g)
	defer s.Close()
	be := newBlockingEngine()
	defer close(be.release)
	setEngine(t, s, "g", be)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, fields := postQuery(t, ts, `{"kind": "reach", "source": 0, "target": 1}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", status, fields)
	}
	if code := errorCode(t, fields); code != "deadline" {
		t.Errorf("error code = %q, want deadline", code)
	}
}

func TestHandlerQueueFullIs429WithRetryAfter(t *testing.T) {
	g := pathGraph(t, 64)
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1, DefaultDeadline: 5 * time.Second}, g)
	be := newBlockingEngine()
	setEngine(t, s, "g", be)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/query", "application/json",
			strings.NewReader(`{"kind": "reach", "source": 0, "target": 1}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	select {
	case <-be.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("holder never reached the engine")
	}

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"kind": "reach", "source": 0, "target": 1}`))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}

	close(be.release)
	<-done
	s.Close()
}

func TestOperationalEndpoints(t *testing.T) {
	g := mustRMAT(t, 9, 8, 3)
	s := newTestServer(t, Config{SampleK: 1}, g)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	src := firstSource(t, g)

	// Serve a few queries so every endpoint has something to show.
	for i := 0; i < 3; i++ {
		status, _ := postQuery(t, ts, fmt.Sprintf(`{"kind": "reach", "source": %d, "target": %d}`, src, i))
		if status != 200 {
			t.Fatalf("warmup query %d: status %d", i, status)
		}
	}

	t.Run("graphs", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/graphs")
		if err != nil {
			t.Fatalf("GET /graphs: %v", err)
		}
		defer resp.Body.Close()
		var payload struct {
			Graphs []GraphInfo `json:"graphs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatalf("decoding /graphs: %v", err)
		}
		if len(payload.Graphs) != 1 || payload.Graphs[0].Name != "g" {
			t.Fatalf("/graphs = %+v, want one graph named g", payload.Graphs)
		}
		if payload.Graphs[0].Vertices != g.NumVertices() || payload.Graphs[0].Engine == "" {
			t.Errorf("/graphs entry incomplete: %+v", payload.Graphs[0])
		}
	})

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		var h healthzPayload
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decoding /healthz: %v", err)
		}
		if h.Status != "ok" || h.Graphs != 1 || h.Slots < 1 {
			t.Errorf("/healthz = %+v", h)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		text, _ := io.ReadAll(resp.Body)
		for _, want := range []string{"crossbfs_traversals_total", "crossbfs_serve_requests_total", "crossbfs_serve_ok_total"} {
			if !bytes.Contains(text, []byte(want)) {
				t.Errorf("/metrics misses %s", want)
			}
		}
	})

	t.Run("metrics.json", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics.json")
		if err != nil {
			t.Fatalf("GET /metrics.json: %v", err)
		}
		defer resp.Body.Close()
		var snap map[string]int64
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decoding /metrics.json: %v", err)
		}
		if snap["serve_requests_total"] < 3 || snap["traversals_total"] < 3 {
			t.Errorf("metrics.json counters too small: %+v", snap)
		}
	})

	t.Run("flight dump validates", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/debug/flight")
		if err != nil {
			t.Fatalf("GET /debug/flight: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		summary, err := obs.ValidateTrace(data)
		if err != nil {
			t.Fatalf("flight dump fails ValidateTrace: %v\n%s", err, data)
		}
		if summary.Levels < 3 {
			t.Errorf("flight dump has %d level slices, want >= 3", summary.Levels)
		}
	})
}

// TestConcurrentQueriesMatchSerial is the race-mode serving gate: many
// goroutines hammer one server over HTTP with mixed kinds while the
// serial kernel's answers (computed up front, per source) stay the
// referee. Any cross-request workspace bleed, recorder race, or
// admission bug shows up as a wrong answer or a -race report.
func TestConcurrentQueriesMatchSerial(t *testing.T) {
	g := mustRMAT(t, 10, 8, 11)
	s := newTestServer(t, Config{MaxConcurrent: 4, QueueDepth: 256, DefaultDeadline: 10 * time.Second}, g)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Reference traversals from a handful of sources.
	sources := []int32{firstSource(t, g)}
	for v := 0; v < g.NumVertices() && len(sources) < 4; v++ {
		if g.Degree(int32(v)) > 4 && int32(v) != sources[0] {
			sources = append(sources, int32(v))
		}
	}
	refs := make(map[int32]*bfs.Result, len(sources))
	for _, src := range sources {
		ref, err := bfs.Serial(g, src)
		if err != nil {
			t.Fatalf("Serial(%d): %v", src, err)
		}
		refs[src] = ref
	}

	const workers = 8
	const queriesPerWorker = 15
	var wg sync.WaitGroup
	errc := make(chan error, workers*queriesPerWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < queriesPerWorker; i++ {
				src := sources[rng.Intn(len(sources))]
				ref := refs[src]
				target := int32(rng.Intn(g.NumVertices()))
				var body string
				kind := rng.Intn(3)
				switch kind {
				case 0:
					body = fmt.Sprintf(`{"kind": "reach", "source": %d, "target": %d}`, src, target)
				case 1:
					body = fmt.Sprintf(`{"kind": "path", "source": %d, "target": %d}`, src, target)
				default:
					body = fmt.Sprintf(`{"kind": "khop", "source": %d, "k": 2}`, src)
				}
				resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("worker %d: status %d: %s", w, resp.StatusCode, data)
					return
				}
				var r Response
				if err := json.Unmarshal(data, &r); err != nil {
					errc <- fmt.Errorf("worker %d: decode: %v", w, err)
					return
				}
				switch kind {
				case 0:
					wantReach := ref.Level[target] != bfs.NotVisited
					if *r.Reachable != wantReach || r.Distance != ref.Level[target] {
						errc <- fmt.Errorf("reach(%d,%d) = (%v,%d), serial (%v,%d)",
							src, target, *r.Reachable, r.Distance, wantReach, ref.Level[target])
						return
					}
				case 1:
					if ref.Level[target] >= 0 {
						if int32(len(r.Path)-1) != ref.Level[target] {
							errc <- fmt.Errorf("path(%d,%d) has %d hops, serial level %d",
								src, target, len(r.Path)-1, ref.Level[target])
							return
						}
					} else if len(r.Path) != 0 {
						errc <- fmt.Errorf("path(%d,%d) nonempty for unreachable target", src, target)
						return
					}
				default:
					var within int64
					for _, l := range ref.Level {
						if l >= 0 && l <= 2 {
							within++
						}
					}
					if r.WithinK != within {
						errc <- fmt.Errorf("khop(%d,2) = %d, serial %d", src, r.WithinK, within)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestShutdownSettlesGoroutines pins the teardown contract: after the
// HTTP listener closes and Server.Close drains, no serve-layer
// goroutine survives.
func TestShutdownSettlesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	g := mustRMAT(t, 9, 8, 3)
	s := newTestServer(t, Config{MaxConcurrent: 2, QueueDepth: 16}, g)
	ts := httptest.NewServer(s.Handler())
	src := firstSource(t, g)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(ts.URL+"/query", "application/json",
					strings.NewReader(fmt.Sprintf(`{"kind": "reach", "source": %d, "target": %d}`, src, i)))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	ts.Close()
	s.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutine leak across shutdown: %d alive, started with %d", runtime.NumGoroutine(), base)
}
