package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"crossbfs/internal/obs"
)

// SLO wiring: objectives from Config bind to the labeled serveStats
// cells, a ticker drives the burn-rate evaluator, and a breach fires
// the incident capture — CPU + heap pprof plus a flight-ring dump into
// one directory per incident, at most once per cooldown. The capture
// answers "what was the daemon doing when p99 went bad" from a live
// process, no restart, no repro.

// ParseObjectives parses and validates -slo declarations: the
// obs.ParseObjective grammar, with selectors restricted to what the
// serve layer can source — a workload class (oltp, olap), a query kind
// (reach, path, khop, multi), "total", or the error-ratio form.
func ParseObjectives(specs []string) ([]obs.Objective, error) {
	out := make([]obs.Objective, 0, len(specs))
	for _, spec := range specs {
		o, err := obs.ParseObjective(spec)
		if err != nil {
			return nil, err
		}
		if o.Kind == obs.LatencyObjective {
			if _, ok := latencySelectors[o.Selector]; !ok {
				return nil, fmt.Errorf("objective %q: unknown selector %q (want total, all, oltp, olap, reach, path, khop, multi, or error)", spec, o.Selector)
			}
		}
		out = append(out, o)
	}
	return out, nil
}

// latencySelectors maps each latency selector to the kind indices it
// covers.
var latencySelectors = map[string][]int{
	"total":   {kindIdxReach, kindIdxPath, kindIdxKHop, kindIdxMulti},
	"all":     {kindIdxReach, kindIdxPath, kindIdxKHop, kindIdxMulti},
	"oltp":    {kindIdxReach, kindIdxPath},
	"olap":    {kindIdxKHop, kindIdxMulti},
	KindReach: {kindIdxReach},
	KindPath:  {kindIdxPath},
	KindKHop:  {kindIdxKHop},
	KindMulti: {kindIdxMulti},
}

// resolveSource binds one objective to the serveStats counters.
func (t *serveStats) resolveSource(o obs.Objective) (obs.SLOSource, error) {
	if o.Kind == obs.ErrorRatioObjective {
		return func() (total, bad float64) {
			for _, c := range t.outcomes {
				total += c.Value()
			}
			bad = t.outcomes[reasonDeadline].Value() + t.outcomes[reasonServerError].Value()
			return total, bad
		}, nil
	}
	idxs, ok := latencySelectors[o.Selector]
	if !ok {
		return nil, fmt.Errorf("objective %q: unknown selector %q (want total, all, oltp, olap, reach, path, khop, multi, or error)", o.Spec, o.Selector)
	}
	cells := make([]*obs.Cell, len(idxs))
	for i, k := range idxs {
		cells[i] = t.latency[k]
	}
	return obs.LatencySource(o.Threshold, cells...), nil
}

// startSLO builds the evaluator from Config.Objectives, registers the
// burn gauges, and starts the poll loop. Objectives must already be
// valid (ParseObjectives); a selector the stats cannot source is a
// wiring bug and panics at construction, like a bad metric
// registration.
func (s *Server) startSLO() {
	objs := make([]obs.SLOObjective, 0, len(s.cfg.Objectives))
	for _, o := range s.cfg.Objectives {
		src, err := s.stats.resolveSource(o)
		if err != nil {
			panic("serve: " + err.Error())
		}
		objs = append(objs, obs.SLOObjective{Objective: o, Source: src})
	}
	s.slo = obs.NewSLO(objs, obs.SLOOptions{
		Cooldown: s.cfg.SLOCooldown,
		OnBreach: s.captureIncident,
	})
	burn := s.registry.Gauge("crossbfs_slo_burn",
		"Long-window burn rate per SLO objective (1.0 consumes the error budget exactly at the sustainable rate).",
		obs.LabelObjective)
	breaching := s.registry.Gauge("crossbfs_slo_breaching",
		"Whether the SLO objective is currently breaching (both burn windows at or above threshold).",
		obs.LabelObjective)
	for i, o := range s.cfg.Objectives {
		i := i
		burn.WithFunc(func() float64 {
			v, _ := s.slo.Verdict(i)
			return v.BurnLong
		}, o.Spec)
		breaching.WithFunc(func() float64 {
			if v, _ := s.slo.Verdict(i); v.Breaching {
				return 1
			}
			return 0
		}, o.Spec)
	}
	// Prime the verdicts so /debug/slo and the burn gauges answer from
	// the first scrape; a single sample can never breach (burn needs a
	// traffic delta between two samples).
	s.slo.Tick(time.Now())
	s.sloStop = make(chan struct{})
	s.sloDone = make(chan struct{})
	go s.sloLoop()
}

// sloLoop drives the evaluator until Close. It deliberately keys off
// the stop channel, not a context: the loop's lifetime is the
// server's, and Close owns it.
func (s *Server) sloLoop() {
	defer close(s.sloDone)
	t := time.NewTicker(s.cfg.SLOPoll)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			s.slo.Tick(now)
		case <-s.sloStop:
			return
		}
	}
}

// incidentManifest is the slo.json body of a capture.
type incidentManifest struct {
	CapturedAt string        `json:"captured_at"`
	Breach     obs.Verdict   `json:"breach"`
	Verdicts   []obs.Verdict `json:"verdicts"`
}

// captureIncident is the breach hook: one directory per incident under
// Config.IncidentDir holding cpu.pprof (IncidentCPUProfile long),
// heap.pprof, flight.json (the flight-recorder dump), and slo.json
// (the verdicts at breach time). Runs on the SLO loop goroutine, so
// captures serialize naturally; the cooldown spaces them.
func (s *Server) captureIncident(v obs.Verdict) {
	if s.cfg.IncidentDir == "" {
		if s.cfg.OnIncident != nil {
			s.cfg.OnIncident("", v, nil)
		}
		return
	}
	n := s.incidentCell
	dir := filepath.Join(s.cfg.IncidentDir,
		fmt.Sprintf("incident-%s-%03d", time.Now().UTC().Format("20060102T150405"), int(n.Value())+1))
	err := s.writeIncident(dir, v)
	if err == nil {
		n.Inc()
		s.lastIncidentDir.Store(dir)
	}
	if s.cfg.OnIncident != nil {
		s.cfg.OnIncident(dir, v, err)
	}
}

func (s *Server) writeIncident(dir string, v obs.Verdict) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("incident dir: %w", err)
	}
	man := incidentManifest{
		CapturedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Breach:     v,
		Verdicts:   s.slo.Verdicts(),
	}
	manJSON, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "slo.json"), manJSON, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}

	// Flight dump first: it is the cheapest artifact and the one that
	// shows what the traversals were doing.
	ff, err := os.Create(filepath.Join(dir, "flight.json"))
	if err != nil {
		return fmt.Errorf("flight dump: %w", err)
	}
	if err := s.ring.WriteTrace(ff); err != nil {
		ff.Close()
		return fmt.Errorf("flight dump: %w", err)
	}
	if err := ff.Close(); err != nil {
		return fmt.Errorf("flight dump: %w", err)
	}

	// Heap profile (after a GC so live objects dominate).
	hf, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(hf, 0); err != nil {
		hf.Close()
		return fmt.Errorf("heap profile: %w", err)
	}
	if err := hf.Close(); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}

	// CPU profile last: it blocks this goroutine for the profile
	// window. Guarded against a concurrent profiler (pprof allows only
	// one); losing the CPU profile degrades the bundle, it does not
	// void it.
	if !s.profiling.CompareAndSwap(false, true) {
		return nil
	}
	defer s.profiling.Store(false)
	cf, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return fmt.Errorf("cpu profile: %w", err)
	}
	defer cf.Close()
	if err := pprof.StartCPUProfile(cf); err != nil {
		// Another profiler (e.g. a live /debug/pprof client) owns the
		// CPU profile; keep the rest of the bundle.
		os.Remove(filepath.Join(dir, "cpu.pprof"))
		return nil
	}
	time.Sleep(s.cfg.IncidentCPUProfile)
	pprof.StopCPUProfile()
	return nil
}
