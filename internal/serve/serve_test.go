package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"crossbfs/internal/bfs"
	"crossbfs/internal/graph"
	"crossbfs/internal/obs"
	"crossbfs/internal/rmat"
)

// mustRMAT generates the small R-MAT graph most tests serve.
func mustRMAT(t *testing.T, scale, ef int, seed uint64) *graph.CSR {
	t.Helper()
	p := rmat.DefaultParams(scale, ef)
	p.Seed = seed
	g, err := rmat.Generate(p)
	if err != nil {
		t.Fatalf("rmat.Generate: %v", err)
	}
	return g
}

// pathGraph returns 0-1-2-...-(n-1), symmetrized.
func pathGraph(t *testing.T, n int) *graph.CSR {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1)})
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// newTestServer builds a server holding one graph named "g".
func newTestServer(t *testing.T, cfg Config, g *graph.CSR) *Server {
	t.Helper()
	s := NewServer(cfg)
	if err := s.AddGraph("g", "test", g); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	return s
}

// blockingEngine parks every traversal until released (or the context
// expires) — the deterministic way to fill the admission gate and to
// force deadline expiry in tests.
type blockingEngine struct {
	release chan struct{}
	entered chan struct{} // one token per traversal that reached run
}

func newBlockingEngine() *blockingEngine {
	return &blockingEngine{release: make(chan struct{}), entered: make(chan struct{}, 64)}
}

func (e *blockingEngine) Name() string { return "blocking" }

func (e *blockingEngine) Run(g *graph.CSR, source int32, ws *bfs.Workspace) (*bfs.Result, error) {
	return e.RunContext(context.Background(), g, source, ws)
}

func (e *blockingEngine) RunContext(ctx context.Context, g *graph.CSR, source int32, ws *bfs.Workspace) (*bfs.Result, error) {
	select {
	case e.entered <- struct{}{}:
	default:
	}
	select {
	case <-e.release:
		return bfs.SerialEngine().RunContext(ctx, g, source, ws)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *blockingEngine) RunObserved(ctx context.Context, g *graph.CSR, source int32, ws *bfs.Workspace, rec obs.Recorder) (*bfs.Result, error) {
	return e.RunContext(ctx, g, source, ws)
}

// setEngine swaps the planned engine of a registered graph — tests
// use it to make timing-dependent paths deterministic.
func setEngine(t *testing.T, s *Server, name string, e bfs.Engine) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	sg, ok := s.graphs[name]
	if !ok {
		t.Fatalf("setEngine: no graph %q", name)
	}
	sg.engine = e
	sg.info.Engine = e.Name()
}

func TestQueryValidation(t *testing.T) {
	g := pathGraph(t, 64)
	s := newTestServer(t, Config{}, g)
	defer s.Close()

	cases := []struct {
		name string
		q    Query
		code string
	}{
		{"no kind", Query{Source: 1}, "bad_request"},
		{"unknown kind", Query{Kind: "explode", Source: 1}, "bad_request"},
		{"unknown graph", Query{Graph: "nope", Kind: KindReach, Source: 1, Target: 2}, "unknown_graph"},
		{"source out of range", Query{Kind: KindReach, Source: 64, Target: 2}, "bad_request"},
		{"negative source", Query{Kind: KindReach, Source: -1, Target: 2}, "bad_request"},
		{"target out of range", Query{Kind: KindPath, Source: 1, Target: 1 << 20}, "bad_request"},
		{"negative k", Query{Kind: KindKHop, Source: 1, K: -2}, "bad_request"},
		{"multi no sources", Query{Kind: KindMulti}, "bad_request"},
		{"multi too many sources", Query{Kind: KindMulti, Sources: make([]int32, maxMultiSources+1)}, "bad_request"},
		{"multi bad source", Query{Kind: KindMulti, Sources: []int32{1, 99}, DeadlineMS: 100}, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, serr := s.Query(context.Background(), tc.q)
			if serr == nil {
				t.Fatalf("Query(%+v) succeeded, want %s", tc.q, tc.code)
			}
			if serr.Code != tc.code {
				t.Errorf("code = %q, want %q (%v)", serr.Code, tc.code, serr)
			}
			if serr.Status < 400 || serr.Status >= 500 {
				t.Errorf("status = %d, want 4xx", serr.Status)
			}
		})
	}
}

// firstSource returns the first non-isolated vertex (the bfsrun
// source-picking rule) — R-MAT graphs routinely leave vertex 0 with no
// edges.
func firstSource(t *testing.T, g *graph.CSR) int32 {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 0 {
			return int32(v)
		}
	}
	t.Fatal("graph has no edges")
	return 0
}

func TestQueryKindsMatchSerial(t *testing.T) {
	g := mustRMAT(t, 10, 8, 7)
	s := newTestServer(t, Config{}, g)
	defer s.Close()
	src := firstSource(t, g)
	ref, err := bfs.Serial(g, src)
	if err != nil {
		t.Fatalf("Serial: %v", err)
	}

	t.Run("reach", func(t *testing.T) {
		for _, target := range []int32{0, src, int32(g.NumVertices() - 1)} {
			resp, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: src, Target: target})
			if serr != nil {
				t.Fatalf("reach(%d,%d): %v", src, target, serr)
			}
			wantReach := ref.Level[target] != bfs.NotVisited
			if *resp.Reachable != wantReach || resp.Distance != ref.Level[target] {
				t.Errorf("reach(%d,%d) = (%v,%d), serial says (%v,%d)",
					src, target, *resp.Reachable, resp.Distance, wantReach, ref.Level[target])
			}
		}
	})

	t.Run("path", func(t *testing.T) {
		// Find a reachable target a few hops out.
		var target int32 = -1
		for v, l := range ref.Level {
			if l >= 2 {
				target = int32(v)
				break
			}
		}
		if target < 0 {
			t.Skip("graph has no vertex at depth >= 2")
		}
		resp, serr := s.Query(context.Background(), Query{Kind: KindPath, Source: src, Target: target})
		if serr != nil {
			t.Fatalf("path: %v", serr)
		}
		if int32(len(resp.Path)-1) != ref.Level[target] {
			t.Fatalf("path length %d hops, serial level %d", len(resp.Path)-1, ref.Level[target])
		}
		if resp.Path[0] != src || resp.Path[len(resp.Path)-1] != target {
			t.Fatalf("path endpoints %d..%d, want %d..%d", resp.Path[0], resp.Path[len(resp.Path)-1], src, target)
		}
		// Every step must be a real edge with levels ascending by one.
		for i := 1; i < len(resp.Path); i++ {
			u, v := resp.Path[i-1], resp.Path[i]
			if !g.HasEdge(u, v) {
				t.Errorf("path step %d: no edge %d-%d", i, u, v)
			}
			if ref.Level[v] != ref.Level[u]+1 {
				t.Errorf("path step %d: level[%d]=%d, level[%d]=%d", i, u, ref.Level[u], v, ref.Level[v])
			}
		}
	})

	t.Run("khop", func(t *testing.T) {
		const k = 3
		resp, serr := s.Query(context.Background(), Query{Kind: KindKHop, Source: src, K: k})
		if serr != nil {
			t.Fatalf("khop: %v", serr)
		}
		want := make([]int64, k+1)
		var within int64
		for _, l := range ref.Level {
			if l >= 0 && l <= k {
				want[l]++
				within++
			}
		}
		if resp.WithinK != within {
			t.Errorf("within_k = %d, serial says %d", resp.WithinK, within)
		}
		if len(resp.LevelCounts) != len(want) {
			t.Fatalf("level_counts has %d entries, want %d", len(resp.LevelCounts), len(want))
		}
		for i := range want {
			if resp.LevelCounts[i] != want[i] {
				t.Errorf("level_counts[%d] = %d, serial says %d", i, resp.LevelCounts[i], want[i])
			}
		}
	})

	t.Run("multi", func(t *testing.T) {
		sources := []int32{src, 0, src + 1, int32(g.NumVertices() - 1)}
		resp, serr := s.Query(context.Background(), Query{Kind: KindMulti, Sources: sources})
		if serr != nil {
			t.Fatalf("multi: %v", serr)
		}
		if len(resp.Results) != len(sources) {
			t.Fatalf("multi returned %d results, want %d", len(resp.Results), len(sources))
		}
		for i, src := range sources {
			sref, err := bfs.Serial(g, src)
			if err != nil {
				t.Fatalf("Serial(%d): %v", src, err)
			}
			got := resp.Results[i]
			if got.Source != src || got.Visited != sref.VisitedCount || got.Depth != sref.Depth() {
				t.Errorf("multi[%d] = %+v, serial says visited=%d depth=%d",
					i, got, sref.VisitedCount, sref.Depth())
			}
		}
	})
}

func TestQueryDeadline(t *testing.T) {
	g := pathGraph(t, 64)
	s := newTestServer(t, Config{DefaultDeadline: 20 * time.Millisecond}, g)
	defer s.Close()
	be := newBlockingEngine()
	defer close(be.release)
	setEngine(t, s, "g", be)

	_, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 1})
	if serr == nil {
		t.Fatal("query against a parked engine succeeded")
	}
	if serr.Status != 504 || serr.Code != "deadline" {
		t.Fatalf("got status %d code %q, want 504 deadline (%v)", serr.Status, serr.Code, serr)
	}
	if !errors.Is(serr, context.DeadlineExceeded) {
		t.Errorf("error does not unwrap to context.DeadlineExceeded: %v", serr)
	}
}

func TestQueryQueueFull(t *testing.T) {
	g := pathGraph(t, 64)
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1, DefaultDeadline: 5 * time.Second}, g)
	be := newBlockingEngine()
	setEngine(t, s, "g", be)

	// Park one query in the single slot.
	firstDone := make(chan *Error, 1)
	go func() {
		_, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 1})
		firstDone <- serr
	}()
	select {
	case <-be.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first query never reached the engine")
	}

	// With zero queue depth the next query must be rejected immediately.
	_, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 1})
	if serr == nil {
		t.Fatal("second query was admitted past a full gate")
	}
	if serr.Status != 429 || serr.Code != "queue_full" {
		t.Fatalf("got status %d code %q, want 429 queue_full", serr.Status, serr.Code)
	}

	close(be.release)
	if serr := <-firstDone; serr != nil {
		t.Fatalf("parked query failed after release: %v", serr)
	}
	s.Close()
}

func TestQueuedRequestTimesOut(t *testing.T) {
	g := pathGraph(t, 64)
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 4, DefaultDeadline: 30 * time.Millisecond}, g)
	be := newBlockingEngine()
	setEngine(t, s, "g", be)

	hold := make(chan *Error, 1)
	go func() {
		_, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 1, DeadlineMS: 5000})
		hold <- serr
	}()
	select {
	case <-be.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("holder never reached the engine")
	}

	// This one fits in the queue but its deadline expires while waiting:
	// the admission gate must convert that into the same 504.
	_, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 1})
	if serr == nil || serr.Status != 504 {
		t.Fatalf("queued query got %v, want 504", serr)
	}

	close(be.release)
	if serr := <-hold; serr != nil {
		t.Fatalf("holder failed: %v", serr)
	}
	s.Close()
}

func TestServerCloseRejectsAndDrains(t *testing.T) {
	g := pathGraph(t, 64)
	s := newTestServer(t, Config{}, g)
	s.Close()
	_, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 1})
	if serr == nil || serr.Status != 503 || serr.Code != "shutting_down" {
		t.Fatalf("query after Close got %v, want 503 shutting_down", serr)
	}
	// Close is idempotent.
	s.Close()
}

func TestLookupDefaultGraph(t *testing.T) {
	g := pathGraph(t, 64)
	s := NewServer(Config{})
	defer s.Close()
	if err := s.AddGraph("a", "", g); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	// One graph: empty name resolves to it.
	if resp, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 3}); serr != nil {
		t.Fatalf("unnamed query with one graph: %v", serr)
	} else if resp.Graph != "a" {
		t.Fatalf("resolved graph %q, want %q", resp.Graph, "a")
	}
	// Two graphs: empty name is ambiguous.
	if err := s.AddGraph("b", "", g); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	if _, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 3}); serr == nil || serr.Code != "bad_request" {
		t.Fatalf("unnamed query with two graphs got %v, want bad_request", serr)
	}
}

func TestAddGraphRejects(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if err := s.AddGraph("", "", pathGraph(t, 8)); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.AddGraph("g", "", nil); err == nil {
		t.Error("nil graph accepted")
	}
	if err := s.AddGraph("g", "", pathGraph(t, 8)); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	if err := s.AddGraph("g", "", pathGraph(t, 8)); err == nil {
		t.Error("duplicate name accepted")
	}
}

func planName(s *Server, g *graph.CSR) string {
	e, _ := s.planEngine(g)
	return e.Name()
}

func TestPlanEngineCutoffs(t *testing.T) {
	small := NewServer(Config{})
	if name := planName(small, pathGraph(t, 100)); name != "serial" {
		t.Errorf("small graph planned %q, want serial", name)
	}
	big := mustRMAT(t, 11, 4, 1) // 2048 vertices: still below serialCutoff
	if name := planName(small, big); name != "serial" {
		t.Errorf("scale-11 planned %q, want serial", name)
	}
	mid := mustRMAT(t, 13, 4, 1) // 8192: hybrid territory
	if name := planName(small, mid); name == "serial" {
		t.Errorf("scale-13 planned serial, want a parallel kernel")
	}
	sharded := NewServer(Config{Shards: 4})
	huge := mustRMAT(t, 16, 4, 1)
	if name := planName(sharded, huge); name != "sharded(4,hybrid(64,64))" {
		t.Errorf("scale-16 with shards planned %q, want the sharded engine", name)
	}
	// Shards configured but graph below the cutoff: stay unsharded.
	if name := planName(sharded, mid); name == "sharded(4,hybrid(64,64))" {
		t.Errorf("scale-13 with shards planned the sharded engine; cutoff ignored")
	}
}

func TestFlightRecorderRetainsSampledQueries(t *testing.T) {
	g := mustRMAT(t, 9, 8, 3)
	// SampleK 1 keeps every traversal, so the ring must retain the
	// most recent queries and the dump must carry their IDs.
	s := newTestServer(t, Config{SampleK: 1}, g)
	defer s.Close()
	var ids []uint64
	for i := 0; i < 5; i++ {
		resp, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: int32(i)})
		if serr != nil {
			t.Fatalf("query %d: %v", i, serr)
		}
		if resp.TraversalID == 0 {
			t.Fatalf("query %d reported no traversal_id", i)
		}
		ids = append(ids, resp.TraversalID)
	}
	stats := s.FlightRecorder().Stats()
	if stats.Retained != 5 {
		t.Fatalf("ring retained %d traversals, want 5", stats.Retained)
	}
	seen, kept := s.SamplerStats()
	if seen != kept || kept < 5 {
		t.Fatalf("sampler seen=%d kept=%d, want everything kept", seen, kept)
	}
	// The retained groups carry exactly the reported IDs.
	got := map[uint64]bool{}
	s.FlightRecorder().DumpTo(recorderFunc(func(e obs.Event) {
		if e.TraversalID != 0 {
			got[e.TraversalID] = true
		}
	}))
	for _, id := range ids {
		if !got[id] {
			t.Errorf("traversal %d missing from the flight dump", id)
		}
	}
}

// recorderFunc adapts a closure to obs.Recorder.
type recorderFunc func(obs.Event)

func (f recorderFunc) Event(e obs.Event) { f(e) }

func TestMetricsCountTraversals(t *testing.T) {
	g := mustRMAT(t, 9, 8, 3)
	s := newTestServer(t, Config{}, g)
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, serr := s.Query(context.Background(), Query{Kind: KindReach, Source: 0, Target: 1}); serr != nil {
			t.Fatalf("query: %v", serr)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap["traversals_total"] < 4 {
		t.Errorf("traversals_total = %d, want >= 4", snap["traversals_total"])
	}
	ss := s.stats.Snapshot(s.gate)
	if ss["serve_requests_total"] != 4 || ss["serve_ok_total"] != 4 || ss["serve_reach_total"] != 4 {
		t.Errorf("serve counters = req %d ok %d reach %d, want 4/4/4",
			ss["serve_requests_total"], ss["serve_ok_total"], ss["serve_reach_total"])
	}
}
