package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxRequestBody caps a /query body; multi queries with the full
// source cap fit in a fraction of this.
const maxRequestBody = 1 << 20

// retryAfterSeconds is the 429 Retry-After hint. One second is the
// order of the queue's drain time at the default depth and typical
// per-query service times; clients with better information (bfsload's
// open-loop pacer) may ignore it.
const retryAfterSeconds = 1

// Handler returns the daemon's HTTP surface:
//
//	POST /query         run one query (JSON body; see Query)
//	GET  /graphs        list resident graphs
//	GET  /healthz       liveness + admission gauges
//	GET  /readyz        readiness (503 until armed, and again during drain)
//	GET  /metrics       dimensional families (Prometheus text exposition)
//	                    followed by the legacy flat counter page
//	GET  /metrics.json  the flat counters as JSON
//	GET  /debug/flight  flight-recorder dump (Chrome trace JSON)
//	GET  /debug/slo     SLO verdicts: burn rates and breach state
//
// Every response is JSON except /metrics (text) and /debug/flight
// (a trace file). Errors use the {"error": {"code", "message"}}
// envelope with the *Error status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/graphs", s.handleGraphs)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	return mux
}

// writeError encodes a *Error as the JSON error envelope, attaching
// the Retry-After hint to 429s.
func writeError(w http.ResponseWriter, serr *Error) {
	w.Header().Set("Content-Type", "application/json")
	if serr.Status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds))
	}
	w.WriteHeader(serr.Status)
	_ = json.NewEncoder(w).Encode(map[string]*Error{"error": serr})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, &Error{
			Status: http.StatusMethodNotAllowed, Code: "bad_request",
			Message: "use POST with a JSON body",
		})
		return
	}
	var q Query
	body, err := io.ReadAll(io.LimitReader(req.Body, maxRequestBody))
	if err != nil {
		writeError(w, badRequest(fmt.Sprintf("reading body: %v", err)))
		return
	}
	if err := json.Unmarshal(body, &q); err != nil {
		writeError(w, badRequest(fmt.Sprintf("malformed query JSON: %v", err)))
		return
	}
	resp, serr := s.Query(req.Context(), q)
	if serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string][]GraphInfo{"graphs": s.Graphs()})
}

// healthzPayload is the /healthz body: liveness plus the admission
// gauges a load balancer or autoscaler would watch.
type healthzPayload struct {
	Status    string `json:"status"`
	Graphs    int    `json:"graphs"`
	UptimeSec int64  `json:"uptime_sec"`
	Inflight  int64  `json:"inflight"`
	Queued    int64  `json:"queued"`
	Slots     int64  `json:"slots"`
	Queue     int64  `json:"queue_depth"`
	Sampled   uint64 `json:"traversals_sampled"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := len(s.graphs)
	s.mu.RUnlock()
	_, kept := s.SamplerStats()
	writeJSON(w, healthzPayload{
		Status:    "ok",
		Graphs:    n,
		UptimeSec: int64(time.Since(s.start).Seconds()),
		Inflight:  s.gate.running.Load(),
		Queued:    s.gate.queued.Load(),
		Slots:     int64(cap(s.gate.slots)),
		Queue:     s.gate.depth,
		Sampled:   kept,
	})
}

// handleReadyz is the readiness probe: 200 once the embedder has armed
// the server (graphs loaded, listener accepting) and until drain
// starts. Liveness stays on /healthz — a draining daemon is alive but
// must fall out of rotation, which is exactly the split the two probes
// encode.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.Ready() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\"status\":\"unready\"}\n"))
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// handleMetrics scrapes the combined counter page: the dimensional
// families first (valid Prometheus text exposition, HELP/TYPE and all),
// then the legacy flat pages — whose names are disjoint from every
// family, so the whole page still parses as one exposition (the flat
// lines are untyped samples).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.registry.WriteExposition(w)
	_ = s.metrics.WriteText(w)
	_ = s.stats.WriteText(w, s.gate)
}

// handleSLO reports the burn-rate engine's latest verdicts. With no
// objectives configured the payload is an empty list, not an error —
// "nothing to watch" is a valid configuration.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"objectives": s.SLOVerdicts(),
		"incidents":  int64(s.incidentCell.Value()),
		"last_incident_dir": func() string {
			d, _ := s.lastIncidentDir.Load().(string)
			return d
		}(),
	})
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot()
	for k, v := range s.stats.Snapshot(s.gate) {
		snap[k] = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// handleFlight dumps the flight recorder as a standalone Chrome trace:
// the last FlightKeep sampled traversals, loadable in Perfetto and
// checkable with cmd/tracecheck. Dumping is safe while queries run.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.ring.WriteTrace(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}
