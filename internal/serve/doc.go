// Package serve is the BFS-as-a-service layer: everything a
// long-running query daemon needs between a TCP socket and the bfs
// engines, factored so it is testable without opening one.
//
// A Server owns a registry of resident graphs (loaded once at
// startup), a bounded admission gate, a shared workspace pool, and the
// process's telemetry spine. Each query runs as one traversal:
//
//   - the request deadline becomes a context deadline threaded into
//     Engine.RunContext, so a slow traversal stops at its next level
//     boundary and the client gets 504 instead of a stuck connection;
//   - admission is a fixed number of execution slots plus a bounded
//     wait queue — a request that finds the queue full is rejected
//     immediately with 429 and a Retry-After hint, so overload sheds
//     load instead of collapsing into unbounded queueing;
//   - the traversal's workspace is leased from a bfs.WorkspacePool and
//     returned when the response is encoded, so steady-state queries
//     allocate no per-traversal buffers;
//   - the engine is chosen per graph by a small planner (serial for
//     tiny graphs, the direction-optimizing hybrid by default, the
//     sharded engine for large graphs when the server is configured
//     with ranks), mirroring how bfsrun picks kernels;
//   - every traversal reports into internal/obs: always-on Metrics,
//     and a 1-in-K sampled flight recorder (obs.Sampler over obs.Ring)
//     whose retained traversals are dumped by the /debug/flight
//     endpoint for post-hoc latency forensics.
//
// The HTTP surface (Server.Handler) is JSON over POST /query plus the
// operational endpoints /graphs, /healthz, /metrics, /metrics.json,
// and /debug/flight. SERVING.md documents the request and response
// schemas, the status-code contract, and a worked curl session;
// cmd/bfsd is the daemon wrapping this package and cmd/bfsload the
// matching load generator.
package serve
